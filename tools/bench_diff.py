#!/usr/bin/env python3
"""Compare BENCH_*.json files and print per-row deltas and drifts.

Usage:
  bench_diff.py BASELINE.json CURRENT.json
  bench_diff.py --window BASELINE_DIR CURRENT.json
  bench_diff.py --gate t3 CURRENT.json
  bench_diff.py --gate t4 CURRENT.json
  bench_diff.py --gate t5 CURRENT.json
  bench_diff.py --gate obs CURRENT.json

Two-file mode diffs CURRENT against BASELINE row by row. Window mode
diffs CURRENT against a rolling window of baselines kept in
BASELINE_DIR: `<name>.json` is the newest baseline, `<name>.json.1` the
one before it, `.2` older still, and so on (CI rotates them each run).
The per-row delta is printed against the newest baseline; in addition,
any row whose value moved in the SAME direction across every snapshot
from the oldest baseline through the current run (>= 3 points) with a
net relative change >= 5% is flagged as a DRIFT — the slow monotone
regression a single-pair diff waves through.

Understands both JSON shapes the repo produces:
  * google-benchmark output (bench_t1/t2): {"benchmarks": [{"name": ...,
    "real_time": ..., "items_per_second"?: ...}, ...]} — rows are keyed
    by benchmark name; throughput (items_per_second) is compared when
    present, else real_time (lower is better).
  * harness WriteBenchJson output (bench_t3/t4): {"bench": ..., "meta":
    {...}, "rows": [{col: value, ...}], "metrics"?: [...]} — rows are
    keyed by their non-numeric columns; every numeric column is
    compared. An embedded "metrics" snapshot (from --metrics) is diffed
    the same way under a "[metrics] " key prefix.

In diff/window modes the exit code is always 0 (on well-formed input):
the diff is a visibility tool for the CI job log, not a gate — machine
noise on shared runners would make a hard threshold flaky. DRIFT lines
are prefixed so a human (or a log grep) can spot them.

Gate mode (`--gate t3`) IS a hard gate: it enforces the two ROADMAP
scaling acceptance criteria on a BENCH_t3.json produced by
bench_t3_pipeline and exits 1 on violation:
  1. ring-zc throughput (`ring-zc/p{P}s{S}` rows, Melem/s) monotone
     non-decreasing across shard counts at every producer count P >= 4,
     within a 0.90 noise floor per step;
  2. hash partitioning (`hash/p{P}s4` rows) >= the single-thread
     insert-loop baseline at 4 shards for P >= 4, within a 0.95 noise
     floor.
Both rules only score (P, S) points the host can actually run
concurrently (P + S <= meta.hardware_threads) — on smaller machines the
infeasible points are reported as GATE SKIP, not failed, so the gate is
meaningful on big CI runners and vacuous rather than flaky on laptops.

Gate mode (`--gate t4`) enforces wire-codec throughput floors on a
BENCH_t4_wire.json produced by bench_t4_wire_aggregator and exits 1 on
violation:
  1. every `wire/serialize` and `wire/ship` row (one pair per registered
     sketch kind) must reach >= 5 MiB/s;
  2. the `wire/ship` row for count_min must reach >= 10 MiB/s — the
     serializer whose per-cell varint emission used to cap shipping at
     well under 1 MiB/s.
Missing codec rows (no `wire/*` rows at all, or no count_min ship row)
are a FAIL, not a skip: the gate must not pass vacuously when the bench
stops emitting the rows it scores.

Gate mode (`--gate t5`) enforces the aggregation-tier floor on a
BENCH_t5_net.json produced by bench_t5_net_collector: every `net/ship`
row (acked TCP snapshot shipping into a live collector, merge rebuild
included) must reach >= 2 MiB/s, and both gated kinds (count_min, kll)
must be present. The floor sits far below healthy loopback numbers on
purpose — it exists to catch order-of-magnitude regressions without
flaking on slow shared runners. Missing rows FAIL, as for t4.

Gate mode (`--gate obs`) enforces the observability overhead budget on a
BENCH_t3.json: the `ring-zc-obs-on` row's ingest time must be within 3%
of the `ring-zc-obs-off` row's (`time (s)` column). This is the ROADMAP
acceptance criterion ("metrics overhead <= 3% on the hot path") that
bench_t3 prints as PASS/FAIL advice — here it is a hard exit-1 gate.
Missing rows FAIL (the gate must not pass vacuously if bench_t3 stops
emitting the on/off pair).
"""

import json
import os
import re
import sys

DRIFT_THRESHOLD = 0.05  # net relative change for a monotone run to matter
MIN_DRIFT_POINTS = 3    # oldest baseline .. current, inclusive

GATE_STEP_FLOOR = 0.90  # per-step noise floor for the monotone rule
GATE_BASELINE_FLOOR = 0.95  # noise floor for hash-vs-baseline
GATE_MIN_PRODUCERS = 4

GATE_T4_FLOOR_MIBS = 5.0  # every wire/serialize + wire/ship row
GATE_T4_COUNT_MIN_SHIP_MIBS = 10.0  # the row the tentpole optimised
GATE_T5_SHIP_FLOOR_MIBS = 2.0  # every net/ship row (TCP RTT + merge incl.)
GATE_OBS_MAX_OVERHEAD = 0.03  # obs-on ingest time vs obs-off, relative
ZC_ROW_RE = re.compile(r"^ring-zc/p(\d+)s(\d+)$")
HASH_ROW_RE = re.compile(r"^hash/p(\d+)s(\d+)$")


def load(path):
    with open(path) as f:
        return json.load(f)


def is_number(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def google_benchmark_rows(doc):
    """name -> {metric: value} for aggregate-free google-benchmark output."""
    rows = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        metrics = {}
        if is_number(b.get("items_per_second")):
            metrics["items_per_second"] = b["items_per_second"]
        elif is_number(b.get("real_time")):
            metrics["real_time"] = b["real_time"]
        if metrics:
            rows[b.get("name", "?")] = metrics
    return rows


def add_table_rows(rows, table, prefix):
    """Fold a list of {col: value} dicts into rows, keyed by text columns."""
    for row in table:
        key = " ".join(str(v) for v in row.values() if not is_number(v))
        key = prefix + (key or "?")
        # Same textual key on several rows (e.g. a sweep over a numeric
        # knob): disambiguate by order so pairing stays stable.
        if key in rows:
            suffix = 2
            while f"{key} #{suffix}" in rows:
                suffix += 1
            key = f"{key} #{suffix}"
        metrics = {c: v for c, v in row.items() if is_number(v)}
        if metrics:
            rows[key] = metrics
    return rows


def harness_rows(doc):
    """row-key -> {column: value} for WriteBenchJson output."""
    rows = {}
    add_table_rows(rows, doc.get("rows", []), "")
    add_table_rows(rows, doc.get("metrics", []), "[metrics] ")
    return rows


def parse(doc):
    if "benchmarks" in doc:
        return google_benchmark_rows(doc)
    return harness_rows(doc)


def print_diff(baseline, current, header):
    print(header)
    width = max([len(k) for k in current] + [len("row")])
    print(f"{'row':<{width}}  {'metric':<18} {'baseline':>14} "
          f"{'current':>14} {'delta':>8}")
    for key in current:
        if key not in baseline:
            print(f"{key:<{width}}  (new row)")
            continue
        for metric, now in current[key].items():
            was = baseline[key].get(metric)
            if was is None:
                continue
            delta = "   n/a" if was == 0 else f"{100.0 * (now - was) / was:+7.1f}%"
            print(f"{key:<{width}}  {metric:<18} {was:>14.4g} "
                  f"{now:>14.4g} {delta:>8}")
    for key in baseline:
        if key not in current:
            print(f"{key:<{width}}  (row disappeared)")


def monotone_drift(series, threshold=DRIFT_THRESHOLD,
                   min_points=MIN_DRIFT_POINTS):
    """('up'|'down', net_relative_change) for a strictly monotone series
    with enough points and enough net movement, else None."""
    if len(series) < min_points:
        return None
    deltas = [b - a for a, b in zip(series, series[1:])]
    if all(d > 0 for d in deltas):
        direction = "up"
    elif all(d < 0 for d in deltas):
        direction = "down"
    else:
        return None
    first = series[0]
    if first == 0:
        return None
    net = (series[-1] - first) / abs(first)
    if abs(net) < threshold:
        return None
    return direction, net


def find_drifts(snapshots):
    """snapshots: parsed row-dicts ordered oldest -> ... -> current.
    Yields (row_key, metric, direction, net) for every monotone drift on
    a row/metric present in ALL snapshots."""
    drifts = []
    current = snapshots[-1]
    for key in current:
        if not all(key in snap for snap in snapshots):
            continue
        for metric in current[key]:
            if not all(metric in snap[key] for snap in snapshots):
                continue
            series = [snap[key][metric] for snap in snapshots]
            verdict = monotone_drift(series)
            if verdict is not None:
                drifts.append((key, metric, verdict[0], verdict[1]))
    return drifts


def window_baseline_paths(directory, current_path):
    """Baseline files for current_path, newest first: <name>, <name>.1, ..."""
    base = os.path.basename(current_path)
    paths = []
    newest = os.path.join(directory, base)
    if os.path.isfile(newest):
        paths.append(newest)
        i = 1
        while os.path.isfile(os.path.join(directory, f"{base}.{i}")):
            paths.append(os.path.join(directory, f"{base}.{i}"))
            i += 1
    return paths


def run_two_file(baseline_path, current_path):
    baseline = parse(load(baseline_path))
    current = parse(load(current_path))
    print_diff(baseline, current,
               f"# bench diff: {baseline_path} -> {current_path}")
    return 0


def run_window(directory, current_path):
    baselines = window_baseline_paths(directory, current_path)
    current = parse(load(current_path))
    if not baselines:
        print(f"# bench diff: no baseline for "
              f"{os.path.basename(current_path)} in {directory} "
              f"(first run?)")
        return 0
    print_diff(parse(load(baselines[0])), current,
               f"# bench diff: {baselines[0]} -> {current_path} "
               f"(window of {len(baselines)})")
    # Oldest -> newest baseline -> current for the drift scan.
    snapshots = [parse(load(p)) for p in reversed(baselines)] + [current]
    drifts = find_drifts(snapshots)
    if drifts:
        print(f"# monotone drifts over {len(snapshots)} snapshots "
              f"(net change >= {DRIFT_THRESHOLD:.0%}):")
        for key, metric, direction, net in drifts:
            print(f"DRIFT {key}  {metric}  {direction} {net:+.1%} "
                  f"over {len(snapshots)} runs")
    else:
        print(f"# no monotone drifts over {len(snapshots)} snapshots")
    return 0


def gate_points(rows, pattern, throughput_col):
    """(producers, shards) -> Melem/s for rows whose engine matches."""
    points = {}
    for row in rows:
        match = pattern.match(str(row.get("engine", "")))
        if match and is_number(row.get(throughput_col)):
            points[(int(match.group(1)), int(match.group(2)))] = \
                row[throughput_col]
    return points


def run_gate_t3(doc):
    """Returns (violations, skips, checks) line lists for the two scaling
    gates; a violation means exit 1."""
    rows = doc.get("rows", [])
    hw = doc.get("meta", {}).get("hardware_threads")
    if not is_number(hw):
        return (["BENCH_t3.json meta has no hardware_threads — "
                 "cannot scope the gate to feasible points"], [], [])
    violations, skips, checks = [], [], []

    def feasible(producers, shards):
        return producers + shards <= hw

    # Rule 1: ring-zc Melem/s monotone non-decreasing across shards at
    # every producer count >= GATE_MIN_PRODUCERS.
    zc = gate_points(rows, ZC_ROW_RE, "Melem/s")
    for producers in sorted({p for p, _ in zc}):
        if producers < GATE_MIN_PRODUCERS:
            continue
        shard_counts = sorted(s for p, s in zc if p == producers
                              and feasible(producers, s))
        if len(shard_counts) < 2:
            skips.append(f"GATE SKIP ring-zc/p{producers}: "
                         f"<2 feasible shard points on "
                         f"{int(hw)} hardware threads")
            continue
        for prev, cur in zip(shard_counts, shard_counts[1:]):
            was, now = zc[(producers, prev)], zc[(producers, cur)]
            label = (f"ring-zc/p{producers}: s{prev} -> s{cur} "
                     f"{was:.1f} -> {now:.1f} Melem/s")
            if now < GATE_STEP_FLOOR * was:
                violations.append(
                    f"GATE FAIL {label} (< {GATE_STEP_FLOOR:.2f}x step "
                    f"floor — shard scaling regressed)")
            else:
                checks.append(f"GATE OK   {label}")

    # Rule 2: hash partitioning >= insert-loop baseline at 4 shards.
    baseline = None
    for row in rows:
        if row.get("engine") == "insert-loop" and \
                is_number(row.get("Melem/s")):
            baseline = row["Melem/s"]
            break
    hashed = gate_points(rows, HASH_ROW_RE, "Melem/s")
    if baseline is None:
        violations.append("GATE FAIL no insert-loop baseline row in "
                          "BENCH_t3.json")
    else:
        for (producers, shards), melems in sorted(hashed.items()):
            if producers < GATE_MIN_PRODUCERS or shards != 4:
                continue
            if not feasible(producers, shards):
                skips.append(f"GATE SKIP hash/p{producers}s4: infeasible "
                             f"on {int(hw)} hardware threads")
                continue
            label = (f"hash/p{producers}s4: {melems:.1f} vs baseline "
                     f"{baseline:.1f} Melem/s")
            if melems < GATE_BASELINE_FLOOR * baseline:
                violations.append(
                    f"GATE FAIL {label} (< {GATE_BASELINE_FLOOR:.2f}x "
                    f"baseline floor — hash partition below the "
                    f"single-thread insert loop)")
            else:
                checks.append(f"GATE OK   {label}")
        if not any(p >= GATE_MIN_PRODUCERS and s == 4
                   for p, s in hashed):
            skips.append("GATE SKIP hash: no hash/p{P}s4 rows with "
                         f"P >= {GATE_MIN_PRODUCERS}")
    return violations, skips, checks


def run_gate_t4(doc):
    """Wire-codec throughput floors on BENCH_t4_wire.json rows. Returns
    (violations, skips, checks); a violation means exit 1."""
    rows = doc.get("rows", [])
    violations, skips, checks = [], [], []
    wire_rows = [r for r in rows
                 if str(r.get("op", "")).startswith("wire/")
                 and is_number(r.get("MiB/s"))]
    if not wire_rows:
        return (["GATE FAIL no wire/* rows with numeric MiB/s — bench_t4 "
                 "stopped emitting the codec throughput rows this gate "
                 "scores"], [], [])
    count_min_ship = None
    for row in wire_rows:
        op, kind = row["op"], row.get("kind", "?")
        mibs = row["MiB/s"]
        if op == "wire/ship" and kind == "count_min":
            count_min_ship = mibs
        label = f"{op} {kind}: {mibs:.1f} MiB/s"
        if mibs < GATE_T4_FLOOR_MIBS:
            violations.append(
                f"GATE FAIL {label} (< {GATE_T4_FLOOR_MIBS:.1f} MiB/s "
                f"floor — codec throughput regressed)")
        else:
            checks.append(f"GATE OK   {label}")
    if count_min_ship is None:
        violations.append("GATE FAIL no wire/ship row for count_min — "
                          "the gated kind is missing")
    elif count_min_ship < GATE_T4_COUNT_MIN_SHIP_MIBS:
        violations.append(
            f"GATE FAIL wire/ship count_min: {count_min_ship:.1f} MiB/s "
            f"(< {GATE_T4_COUNT_MIN_SHIP_MIBS:.1f} MiB/s floor — the "
            f"bulk-row serializer regressed)")
    else:
        checks.append(f"GATE OK   wire/ship count_min "
                      f"{count_min_ship:.1f} >= "
                      f"{GATE_T4_COUNT_MIN_SHIP_MIBS:.1f} MiB/s")
    return violations, skips, checks


def run_gate_t5(doc):
    """Net-collector ship-throughput floor on BENCH_t5_net.json rows.
    Returns (violations, skips, checks); a violation means exit 1.

    Every `net/ship` row — acked TCP snapshot shipping into a live
    collector, merge rebuild included — must reach
    GATE_T5_SHIP_FLOOR_MIBS. The floor is deliberately far below healthy
    loopback numbers (tens of MiB/s): it catches order-of-magnitude
    regressions (unbuffered per-byte socket writes, a merge rebuild gone
    quadratic, an accidental sleep in the ack path) without flaking on
    slow shared runners. Missing rows are a FAIL, not a skip, and both
    gated kinds must be present."""
    rows = doc.get("rows", [])
    violations, skips, checks = [], [], []
    ship_rows = [r for r in rows
                 if str(r.get("op", "")) == "net/ship"
                 and is_number(r.get("MiB/s"))]
    if not ship_rows:
        return (["GATE FAIL no net/ship rows with numeric MiB/s — "
                 "bench_t5 stopped emitting the ship throughput rows "
                 "this gate scores"], [], [])
    for row in ship_rows:
        kind = row.get("kind", "?")
        shippers = row.get("shippers", "?")
        mibs = row["MiB/s"]
        label = f"net/ship {kind} x{shippers}: {mibs:.1f} MiB/s"
        if mibs < GATE_T5_SHIP_FLOOR_MIBS:
            violations.append(
                f"GATE FAIL {label} (< {GATE_T5_SHIP_FLOOR_MIBS:.1f} "
                f"MiB/s floor — acked ship throughput regressed)")
        else:
            checks.append(f"GATE OK   {label}")
    for kind in ("count_min", "kll"):
        if not any(r.get("kind") == kind for r in ship_rows):
            violations.append(f"GATE FAIL no net/ship row for {kind} — "
                              f"a gated kind is missing")
    return violations, skips, checks


def run_gate_obs(doc):
    """Observability-overhead budget on BENCH_t3.json rows. Returns
    (violations, skips, checks); a violation means exit 1.

    bench_t3 times the identical ring-zc 4-shard ingest twice — metrics
    runtime-disabled (`ring-zc-obs-off`) and enabled (`ring-zc-obs-on`)
    — so the pair isolates the striped-counter hot-path cost from
    machine noise sources the absolute numbers are exposed to. The
    obs-on time must be within GATE_OBS_MAX_OVERHEAD of obs-off.
    Missing either row is a FAIL, not a skip: the gate must not pass
    vacuously when the bench stops emitting the pair it scores."""
    rows = doc.get("rows", [])
    violations, skips, checks = [], [], []
    times = {}
    for row in rows:
        engine = str(row.get("engine", ""))
        if engine in ("ring-zc-obs-on", "ring-zc-obs-off") and \
                is_number(row.get("time (s)")):
            times[engine] = row["time (s)"]
    missing = [e for e in ("ring-zc-obs-off", "ring-zc-obs-on")
               if e not in times]
    if missing:
        return ([f"GATE FAIL missing row(s) with numeric 'time (s)': "
                 f"{', '.join(missing)} — bench_t3 stopped emitting the "
                 f"obs on/off pair this gate scores"], [], [])
    off, on = times["ring-zc-obs-off"], times["ring-zc-obs-on"]
    if off <= 0:
        return (["GATE FAIL ring-zc-obs-off time is not positive — "
                 "cannot compute overhead"], [], [])
    overhead = on / off - 1.0
    label = (f"obs overhead: on {on:.3f}s vs off {off:.3f}s = "
             f"{overhead:+.1%}")
    if overhead > GATE_OBS_MAX_OVERHEAD:
        violations.append(
            f"GATE FAIL {label} (> {GATE_OBS_MAX_OVERHEAD:.0%} budget — "
            f"metrics instrumentation slowed the hot ingest path)")
    else:
        checks.append(f"GATE OK   {label} "
                      f"(<= {GATE_OBS_MAX_OVERHEAD:.0%} budget)")
    return violations, skips, checks


GATES = {"t3": run_gate_t3, "t4": run_gate_t4, "t5": run_gate_t5,
         "obs": run_gate_obs}


def run_gate(bench, current_path):
    if bench not in GATES:
        known = ", ".join(sorted(GATES))
        print(f"unknown gate '{bench}' (defined gates: {known})",
              file=sys.stderr)
        return 2
    violations, skips, checks = GATES[bench](load(current_path))
    print(f"# bench gate: {bench} criteria on {current_path}")
    for line in checks + skips + violations:
        print(line)
    if violations:
        print(f"# gate verdict: FAIL ({len(violations)} violation(s))")
        return 1
    print("# gate verdict: "
          + ("PASS" if checks else "SKIP (no feasible points)"))
    return 0


def main(argv):
    if len(argv) == 4 and argv[1] == "--window":
        return run_window(argv[2], argv[3])
    if len(argv) == 4 and argv[1] == "--gate":
        return run_gate(argv[2], argv[3])
    if len(argv) == 3 and not argv[1].startswith("--"):
        return run_two_file(argv[1], argv[2])
    print(__doc__.strip(), file=sys.stderr)
    return 2


if __name__ == "__main__":
    try:
        sys.exit(main(sys.argv))
    except BrokenPipeError:  # e.g. piped into head
        sys.exit(0)
