#!/usr/bin/env python3
"""Compare two BENCH_*.json files and print per-row deltas.

Usage: bench_diff.py BASELINE.json CURRENT.json

Understands both JSON shapes the repo produces:
  * google-benchmark output (bench_t1..t3): {"benchmarks": [{"name": ...,
    "real_time": ..., "items_per_second"?: ...}, ...]} — rows are keyed by
    benchmark name; throughput (items_per_second) is compared when present,
    else real_time (lower is better).
  * harness WriteBenchJson output (bench_t4_wire): {"bench": ..., "rows":
    [{col: value, ...}, ...]} — rows are keyed by their non-numeric
    columns; every numeric column is compared.

Exit code is always 0: the diff is a visibility tool for the CI job log
(perf regressions across PRs), not a gate — machine noise on shared
runners would make a hard threshold flaky.
"""

import json
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def is_number(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def google_benchmark_rows(doc):
    """name -> {metric: value} for aggregate-free google-benchmark output."""
    rows = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        metrics = {}
        if is_number(b.get("items_per_second")):
            metrics["items_per_second"] = b["items_per_second"]
        elif is_number(b.get("real_time")):
            metrics["real_time"] = b["real_time"]
        if metrics:
            rows[b.get("name", "?")] = metrics
    return rows


def harness_rows(doc):
    """row-key -> {column: value} for WriteBenchJson output."""
    rows = {}
    for row in doc.get("rows", []):
        key = " ".join(str(v) for v in row.values() if not is_number(v))
        key = key or "?"
        # Same textual key on several rows (e.g. a sweep over a numeric
        # knob): disambiguate by order so pairing stays stable.
        if key in rows:
            suffix = 2
            while f"{key} #{suffix}" in rows:
                suffix += 1
            key = f"{key} #{suffix}"
        metrics = {c: v for c, v in row.items() if is_number(v)}
        if metrics:
            rows[key] = metrics
    return rows


def parse(doc):
    if "benchmarks" in doc:
        return google_benchmark_rows(doc)
    return harness_rows(doc)


def main():
    if len(sys.argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    baseline_path, current_path = sys.argv[1], sys.argv[2]
    baseline = parse(load(baseline_path))
    current = parse(load(current_path))

    print(f"# bench diff: {baseline_path} -> {current_path}")
    width = max([len(k) for k in current] + [len("row")])
    print(f"{'row':<{width}}  {'metric':<18} {'baseline':>14} "
          f"{'current':>14} {'delta':>8}")
    for key in current:
        if key not in baseline:
            print(f"{key:<{width}}  (new row)")
            continue
        for metric, now in current[key].items():
            was = baseline[key].get(metric)
            if was is None:
                continue
            delta = "   n/a" if was == 0 else f"{100.0 * (now - was) / was:+7.1f}%"
            print(f"{key:<{width}}  {metric:<18} {was:>14.4g} "
                  f"{now:>14.4g} {delta:>8}")
    for key in baseline:
        if key not in current:
            print(f"{key:<{width}}  (row disappeared)")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. piped into head
        sys.exit(0)
