#!/usr/bin/env python3
"""Unit tests for bench_diff.py: row parsing (both JSON shapes + embedded
metrics), monotone-drift detection, and the rolling-window mode end to
end against temp files. Registered as a ctest so CI runs it with the
C++ suites."""

import contextlib
import io
import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import bench_diff  # noqa: E402


def harness_doc(secs, metrics=None):
    doc = {
        "bench": "t3",
        "meta": {"git_sha": "abc1234", "build_type": "Release"},
        "rows": [
            {"impl": "ring-zc", "shards": "4", "secs": secs,
             "melems_per_sec": 100.0 / secs},
        ],
    }
    if metrics is not None:
        doc["metrics"] = metrics
    return doc


class ParseTest(unittest.TestCase):
    def test_harness_rows_keyed_by_text_columns(self):
        rows = bench_diff.parse(harness_doc(2.0))
        self.assertEqual(list(rows), ["ring-zc 4"])
        self.assertEqual(rows["ring-zc 4"]["secs"], 2.0)
        self.assertEqual(rows["ring-zc 4"]["melems_per_sec"], 50.0)

    def test_duplicate_keys_get_stable_suffixes(self):
        doc = {"rows": [{"impl": "a", "v": 1}, {"impl": "a", "v": 2}]}
        rows = bench_diff.parse(doc)
        self.assertEqual(list(rows), ["a", "a #2"])
        self.assertEqual(rows["a #2"]["v"], 2)

    def test_embedded_metrics_rows_get_prefix(self):
        metrics = [{"metric": "rs_pipeline_ingest_elements_total",
                    "type": "counter", "value": 4096}]
        rows = bench_diff.parse(harness_doc(1.0, metrics))
        key = "[metrics] rs_pipeline_ingest_elements_total counter"
        self.assertIn(key, rows)
        self.assertEqual(rows[key]["value"], 4096)

    def test_google_benchmark_rows_prefer_throughput(self):
        doc = {"benchmarks": [
            {"name": "BM_X", "real_time": 5.0, "items_per_second": 9.0},
            {"name": "BM_Y", "real_time": 7.0},
            {"name": "BM_Y_mean", "real_time": 7.0, "run_type": "aggregate"},
        ]}
        rows = bench_diff.parse(doc)
        self.assertEqual(rows["BM_X"], {"items_per_second": 9.0})
        self.assertEqual(rows["BM_Y"], {"real_time": 7.0})
        self.assertNotIn("BM_Y_mean", rows)

    def test_booleans_are_key_text_not_metrics(self):
        rows = bench_diff.parse({"rows": [{"impl": "a", "ok": True, "v": 3}]})
        self.assertEqual(rows["a True"], {"v": 3})


class DriftTest(unittest.TestCase):
    def test_monotone_up_over_threshold(self):
        self.assertEqual(bench_diff.monotone_drift([1.0, 1.1, 1.2])[0], "up")

    def test_monotone_down(self):
        direction, net = bench_diff.monotone_drift([2.0, 1.5, 1.0])
        self.assertEqual(direction, "down")
        self.assertAlmostEqual(net, -0.5)

    def test_non_monotone_is_ignored(self):
        self.assertIsNone(bench_diff.monotone_drift([1.0, 1.5, 1.2]))

    def test_small_net_change_is_ignored(self):
        self.assertIsNone(bench_diff.monotone_drift([1.00, 1.01, 1.02]))

    def test_too_few_points_is_ignored(self):
        self.assertIsNone(bench_diff.monotone_drift([1.0, 2.0]))

    def test_zero_start_is_ignored(self):
        self.assertIsNone(bench_diff.monotone_drift([0.0, 1.0, 2.0]))

    def test_find_drifts_requires_presence_in_all_snapshots(self):
        snaps = [
            {"a": {"secs": 1.0}},
            {"a": {"secs": 1.2}, "b": {"secs": 9.0}},
            {"a": {"secs": 1.4}, "b": {"secs": 1.0}},
        ]
        drifts = bench_diff.find_drifts(snaps)
        self.assertEqual([(d[0], d[2]) for d in drifts], [("a", "up")])


class WindowTest(unittest.TestCase):
    def write(self, directory, name, doc):
        path = os.path.join(directory, name)
        with open(path, "w") as f:
            json.dump(doc, f)
        return path

    def run_main(self, argv):
        out = io.StringIO()
        with contextlib.redirect_stdout(out):
            code = bench_diff.main(["bench_diff.py"] + argv)
        return code, out.getvalue()

    def test_window_mode_diffs_newest_and_flags_drift(self):
        with tempfile.TemporaryDirectory() as tmp:
            base_dir = os.path.join(tmp, "baselines")
            os.mkdir(base_dir)
            # Rolling window: BENCH_t3.json newest, .1 older, .2 oldest.
            self.write(base_dir, "BENCH_t3.json.2", harness_doc(1.0))
            self.write(base_dir, "BENCH_t3.json.1", harness_doc(1.2))
            self.write(base_dir, "BENCH_t3.json", harness_doc(1.4))
            current = self.write(tmp, "BENCH_t3.json", harness_doc(1.6))
            code, out = self.run_main(["--window", base_dir, current])
            self.assertEqual(code, 0)
            self.assertIn("window of 3", out)
            # secs drifts up (1.0 -> 1.6); throughput drifts down.
            self.assertIn("DRIFT ring-zc 4  secs  up", out)
            self.assertIn("DRIFT ring-zc 4  melems_per_sec  down", out)

    def test_window_mode_without_baselines_is_first_run(self):
        with tempfile.TemporaryDirectory() as tmp:
            base_dir = os.path.join(tmp, "baselines")
            os.mkdir(base_dir)
            current = self.write(tmp, "BENCH_t3.json", harness_doc(1.0))
            code, out = self.run_main(["--window", base_dir, current])
            self.assertEqual(code, 0)
            self.assertIn("first run", out)

    def test_window_mode_no_drift_on_noise(self):
        with tempfile.TemporaryDirectory() as tmp:
            base_dir = os.path.join(tmp, "baselines")
            os.mkdir(base_dir)
            self.write(base_dir, "BENCH_t3.json.1", harness_doc(1.3))
            self.write(base_dir, "BENCH_t3.json", harness_doc(1.1))
            current = self.write(tmp, "BENCH_t3.json", harness_doc(1.2))
            code, out = self.run_main(["--window", base_dir, current])
            self.assertEqual(code, 0)
            self.assertIn("no monotone drifts", out)

    def test_two_file_mode_still_works(self):
        with tempfile.TemporaryDirectory() as tmp:
            a = self.write(tmp, "a.json", harness_doc(1.0))
            b = self.write(tmp, "b.json", harness_doc(2.0))
            code, out = self.run_main([a, b])
            self.assertEqual(code, 0)
            self.assertIn("+100.0%", out)

    def test_bad_usage_exits_2(self):
        code, _ = self.run_main(["--window", "only-one-arg"])
        self.assertEqual(code, 2)


def gate_doc(hardware_threads, zc_melems, hash_melems, baseline=100.0):
    """A minimal BENCH_t3.json: zc_melems maps (P, S) -> Melem/s for
    ring-zc/p{P}s{S} rows, hash_melems maps P -> Melem/s for
    hash/p{P}s4 rows."""
    rows = [{"engine": "insert-loop", "partition": "-", "shards": 1,
             "Melem/s": baseline}]
    for (p, s), melems in zc_melems.items():
        rows.append({"engine": f"ring-zc/p{p}s{s}",
                     "partition": "round-robin", "shards": s,
                     "Melem/s": melems})
    for p, melems in hash_melems.items():
        rows.append({"engine": f"hash/p{p}s4", "partition": "hash",
                     "shards": 4, "Melem/s": melems})
    return {"bench": "t3",
            "meta": {"hardware_threads": hardware_threads},
            "rows": rows}


class GateTest(unittest.TestCase):
    def write(self, directory, doc):
        path = os.path.join(directory, "BENCH_t3.json")
        with open(path, "w") as f:
            json.dump(doc, f)
        return path

    def run_gate(self, doc):
        with tempfile.TemporaryDirectory() as tmp:
            path = self.write(tmp, doc)
            out = io.StringIO()
            with contextlib.redirect_stdout(out):
                code = bench_diff.main(["bench_diff.py", "--gate", "t3",
                                        path])
            return code, out.getvalue()

    def test_monotone_scaling_and_hash_above_baseline_pass(self):
        doc = gate_doc(16,
                       {(4, 1): 100.0, (4, 2): 180.0, (4, 4): 300.0,
                        (4, 8): 500.0},
                       {4: 120.0})
        code, out = self.run_gate(doc)
        self.assertEqual(code, 0)
        self.assertIn("# gate verdict: PASS", out)
        self.assertNotIn("GATE FAIL", out)

    def test_step_within_noise_floor_passes(self):
        # 300 -> 285 is a 5% dip: inside the 0.90 per-step floor.
        doc = gate_doc(16, {(4, 4): 300.0, (4, 8): 285.0}, {4: 120.0})
        code, out = self.run_gate(doc)
        self.assertEqual(code, 0)

    def test_anti_scaling_fails(self):
        # The pre-rewrite shape: throughput falls as shards grow.
        doc = gate_doc(16,
                       {(4, 1): 320.0, (4, 2): 200.0, (4, 4): 120.0,
                        (4, 8): 56.0},
                       {4: 120.0})
        code, out = self.run_gate(doc)
        self.assertEqual(code, 1)
        self.assertIn("GATE FAIL ring-zc/p4", out)
        self.assertIn("# gate verdict: FAIL", out)

    def test_hash_below_baseline_fails(self):
        doc = gate_doc(16, {(4, 4): 300.0, (4, 8): 400.0}, {4: 70.0})
        code, out = self.run_gate(doc)
        self.assertEqual(code, 1)
        self.assertIn("GATE FAIL hash/p4s4", out)

    def test_small_host_skips_instead_of_failing(self):
        # 1 hardware thread: no (P, S) point is feasible — the anti-scaling
        # numbers must NOT fail the gate, they are unmeasurable here.
        doc = gate_doc(1,
                       {(4, 1): 320.0, (4, 2): 200.0, (4, 4): 120.0},
                       {4: 70.0})
        code, out = self.run_gate(doc)
        self.assertEqual(code, 0)
        self.assertIn("GATE SKIP", out)
        self.assertIn("# gate verdict: SKIP", out)

    def test_infeasible_points_are_excluded_not_scored(self):
        # 8 threads: (4, 8) needs 12 — excluded; the feasible prefix
        # (s1, s2, s4) still gates and passes.
        doc = gate_doc(8,
                       {(4, 1): 100.0, (4, 2): 180.0, (4, 4): 300.0,
                        (4, 8): 10.0},
                       {4: 120.0})
        code, out = self.run_gate(doc)
        self.assertEqual(code, 0)
        self.assertIn("s2 -> s4", out)
        self.assertNotIn("s8", out)

    def test_producers_below_four_are_not_gated(self):
        doc = gate_doc(16, {(1, 1): 500.0, (1, 8): 50.0, (2, 4): 90.0},
                       {1: 10.0, 2: 10.0})
        code, out = self.run_gate(doc)
        self.assertEqual(code, 0)
        self.assertIn("SKIP", out)

    def test_missing_hardware_threads_fails_closed(self):
        doc = gate_doc(16, {(4, 4): 300.0, (4, 8): 400.0}, {4: 120.0})
        del doc["meta"]["hardware_threads"]
        code, out = self.run_gate(doc)
        self.assertEqual(code, 1)

    def test_unknown_gate_name_exits_2(self):
        code = bench_diff.main(["bench_diff.py", "--gate", "t9", "x.json"])
        self.assertEqual(code, 2)


def t4_doc(wire_rows):
    """A minimal BENCH_t4_wire.json: wire_rows maps (op, kind) -> MiB/s;
    an aggregate row rides along to prove non-wire rows are not scored."""
    rows = [{"op": "aggregate", "kind": "count_min", "workers": 4,
             "n": 200000, "KiB": 120.0, "ms": 8.0, "MiB/s": 2.0,
             "worst |merged - single|": 0.0, "bound": "exact"}]
    for (op, kind), mibs in wire_rows.items():
        rows.append({"op": op, "kind": kind, "workers": "-", "n": 200000,
                     "KiB": 64.0, "ms": 10.0, "MiB/s": mibs,
                     "worst |merged - single|": "-", "bound": "-"})
    return {"bench": "t4_wire", "meta": {"smoke": "true"}, "rows": rows}


class GateT4Test(unittest.TestCase):
    def run_gate(self, doc):
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "BENCH_t4_wire.json")
            with open(path, "w") as f:
                json.dump(doc, f)
            out = io.StringIO()
            with contextlib.redirect_stdout(out):
                code = bench_diff.main(["bench_diff.py", "--gate", "t4",
                                        path])
            return code, out.getvalue()

    def test_all_rows_above_floors_pass(self):
        doc = t4_doc({("wire/serialize", "count_min"): 900.0,
                      ("wire/ship", "count_min"): 250.0,
                      ("wire/serialize", "kll"): 80.0,
                      ("wire/ship", "kll"): 40.0})
        code, out = self.run_gate(doc)
        self.assertEqual(code, 0)
        self.assertIn("# gate verdict: PASS", out)
        self.assertNotIn("GATE FAIL", out)

    def test_any_kind_below_general_floor_fails(self):
        doc = t4_doc({("wire/serialize", "count_min"): 900.0,
                      ("wire/ship", "count_min"): 250.0,
                      ("wire/ship", "kll"): 3.0})
        code, out = self.run_gate(doc)
        self.assertEqual(code, 1)
        self.assertIn("GATE FAIL wire/ship kll", out)

    def test_count_min_ship_below_its_floor_fails(self):
        # 8 MiB/s clears the 5 MiB/s general floor but not the 10 MiB/s
        # count_min ship floor.
        doc = t4_doc({("wire/serialize", "count_min"): 900.0,
                      ("wire/ship", "count_min"): 8.0})
        code, out = self.run_gate(doc)
        self.assertEqual(code, 1)
        self.assertIn("GATE FAIL wire/ship count_min", out)

    def test_missing_wire_rows_fail_closed(self):
        code, out = self.run_gate(t4_doc({}))
        self.assertEqual(code, 1)
        self.assertIn("no wire/", out)

    def test_missing_count_min_ship_row_fails(self):
        doc = t4_doc({("wire/serialize", "count_min"): 900.0,
                      ("wire/ship", "kll"): 40.0})
        code, out = self.run_gate(doc)
        self.assertEqual(code, 1)
        self.assertIn("count_min", out)
        self.assertIn("# gate verdict: FAIL", out)

    def test_aggregate_rows_are_not_scored(self):
        # The aggregate row in t4_doc sits at 2 MiB/s (below both floors)
        # and must not trip the gate.
        doc = t4_doc({("wire/serialize", "count_min"): 900.0,
                      ("wire/ship", "count_min"): 250.0})
        code, out = self.run_gate(doc)
        self.assertEqual(code, 0)
        self.assertNotIn("aggregate", [l for l in out.splitlines()
                                       if l.startswith("GATE FAIL")])


def t5_doc(ship_rows):
    """A minimal BENCH_t5_net.json: ship_rows maps (kind, shippers) ->
    MiB/s; a net/query row rides along to prove RTT rows are not scored
    by the throughput floor."""
    rows = [{"op": "net/query", "kind": "kll", "shippers": "1", "n": 200,
             "KiB": "-", "ms": 0.08, "MiB/s": "-",
             "worst |merged - single|": "-", "bound": "-"}]
    for (kind, shippers), mibs in ship_rows.items():
        rows.append({"op": "net/ship", "kind": kind,
                     "shippers": str(shippers), "n": 200000, "KiB": 80.0,
                     "ms": 45.0, "MiB/s": mibs,
                     "worst |merged - single|": 0.0, "bound": "exact"})
    return {"bench": "t5_net", "meta": {"smoke": "true"}, "rows": rows}


class GateT5Test(unittest.TestCase):
    def run_gate(self, doc):
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "BENCH_t5_net.json")
            with open(path, "w") as f:
                json.dump(doc, f)
            out = io.StringIO()
            with contextlib.redirect_stdout(out):
                code = bench_diff.main(["bench_diff.py", "--gate", "t5",
                                        path])
            return code, out.getvalue()

    def test_all_ship_rows_above_floor_pass(self):
        doc = t5_doc({("count_min", 1): 90.0, ("count_min", 4): 30.0,
                      ("kll", 1): 88.0, ("kll", 4): 25.0})
        code, out = self.run_gate(doc)
        self.assertEqual(code, 0)
        self.assertIn("# gate verdict: PASS", out)
        self.assertNotIn("GATE FAIL", out)

    def test_any_ship_row_below_floor_fails(self):
        doc = t5_doc({("count_min", 1): 90.0, ("kll", 1): 0.5})
        code, out = self.run_gate(doc)
        self.assertEqual(code, 1)
        self.assertIn("GATE FAIL net/ship kll", out)

    def test_missing_ship_rows_fail_closed(self):
        code, out = self.run_gate(t5_doc({}))
        self.assertEqual(code, 1)
        self.assertIn("no net/ship", out)

    def test_missing_gated_kind_fails(self):
        doc = t5_doc({("count_min", 1): 90.0, ("count_min", 4): 30.0})
        code, out = self.run_gate(doc)
        self.assertEqual(code, 1)
        self.assertIn("no net/ship row for kll", out)

    def test_query_rows_are_not_scored(self):
        # The net/query row carries "-" for MiB/s; it must be ignored,
        # not parsed or failed.
        doc = t5_doc({("count_min", 1): 90.0, ("kll", 1): 88.0})
        code, out = self.run_gate(doc)
        self.assertEqual(code, 0)
        self.assertNotIn("net/query", "".join(
            l for l in out.splitlines() if l.startswith("GATE FAIL")))


def obs_doc(off_secs, on_secs):
    """A minimal BENCH_t3.json carrying the obs on/off ingest pair (plus
    an unrelated engine row to prove only the pair is scored)."""
    rows = [{"engine": "insert-loop", "partition": "-", "shards": 1,
             "time (s)": 9.99, "Melem/s": 100.0}]
    if off_secs is not None:
        rows.append({"engine": "ring-zc-obs-off", "partition": "round-robin",
                     "shards": 4, "time (s)": off_secs})
    if on_secs is not None:
        rows.append({"engine": "ring-zc-obs-on", "partition": "round-robin",
                     "shards": 4, "time (s)": on_secs})
    return {"bench": "t3", "meta": {"hardware_threads": 16}, "rows": rows}


class GateObsTest(unittest.TestCase):
    def run_gate(self, doc):
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "BENCH_t3.json")
            with open(path, "w") as f:
                json.dump(doc, f)
            out = io.StringIO()
            with contextlib.redirect_stdout(out):
                code = bench_diff.main(["bench_diff.py", "--gate", "obs",
                                        path])
            return code, out.getvalue()

    def test_overhead_within_budget_passes(self):
        code, out = self.run_gate(obs_doc(1.000, 1.020))  # +2.0%
        self.assertEqual(code, 0)
        self.assertIn("# gate verdict: PASS", out)
        self.assertNotIn("GATE FAIL", out)

    def test_obs_on_faster_than_off_passes(self):
        # Negative overhead (machine noise in our favor) is fine.
        code, out = self.run_gate(obs_doc(1.000, 0.980))
        self.assertEqual(code, 0)

    def test_overhead_over_budget_fails(self):
        code, out = self.run_gate(obs_doc(1.000, 1.080))  # +8.0%
        self.assertEqual(code, 1)
        self.assertIn("GATE FAIL obs overhead", out)
        self.assertIn("# gate verdict: FAIL", out)

    def test_missing_on_row_fails_closed(self):
        code, out = self.run_gate(obs_doc(1.000, None))
        self.assertEqual(code, 1)
        self.assertIn("ring-zc-obs-on", out)

    def test_missing_both_rows_fails_closed(self):
        code, out = self.run_gate(obs_doc(None, None))
        self.assertEqual(code, 1)
        self.assertIn("ring-zc-obs-off", out)
        self.assertIn("ring-zc-obs-on", out)

    def test_non_positive_off_time_fails_closed(self):
        code, out = self.run_gate(obs_doc(0.0, 1.0))
        self.assertEqual(code, 1)
        self.assertIn("not positive", out)


if __name__ == "__main__":
    unittest.main()
