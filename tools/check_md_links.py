#!/usr/bin/env python3
"""Fails (exit 1) if any relative markdown link in the given files/dirs
points at a path that does not exist.

Usage: tools/check_md_links.py README.md docs

Only relative links are checked (http(s):, mailto: and #anchors are
skipped); an optional #fragment is stripped before the existence test.
"""

import os
import re
import sys

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def collect(paths):
    for path in paths:
        if os.path.isdir(path):
            for root, _, names in os.walk(path):
                for name in sorted(names):
                    if name.endswith(".md"):
                        yield os.path.join(root, name)
        else:
            yield path


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    broken = []
    for md in collect(argv[1:]):
        base = os.path.dirname(md)
        with open(md, encoding="utf-8") as f:
            text = f.read()
        for match in LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            target = target.split("#", 1)[0]
            if not target:
                continue
            resolved = os.path.normpath(os.path.join(base, target))
            if not os.path.exists(resolved):
                line = text.count("\n", 0, match.start()) + 1
                broken.append(f"{md}:{line}: broken link -> {match.group(1)}")
    for item in broken:
        print(item, file=sys.stderr)
    if broken:
        print(f"{len(broken)} broken link(s)", file=sys.stderr)
        return 1
    print("all relative markdown links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
