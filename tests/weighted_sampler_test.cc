#include "core/weighted_reservoir_sampler.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "gtest/gtest.h"

namespace robust_sampling {
namespace {

TEST(WeightedReservoirTest, FirstKElementsAlwaysKept) {
  WeightedReservoirSampler<int64_t> s(5, 1);
  for (int64_t i = 0; i < 5; ++i) {
    s.Insert(i, 1.0 + i);
    EXPECT_TRUE(s.last_kept());
  }
  EXPECT_EQ(s.entries().size(), 5u);
}

TEST(WeightedReservoirTest, SizeCappedAtK) {
  WeightedReservoirSampler<int64_t> s(7, 2);
  for (int64_t i = 0; i < 1000; ++i) s.Insert(i, 1.0);
  EXPECT_EQ(s.entries().size(), 7u);
  EXPECT_EQ(s.stream_size(), 1000u);
}

TEST(WeightedReservoirTest, SampleValuesMatchEntries) {
  WeightedReservoirSampler<int64_t> s(4, 3);
  for (int64_t i = 0; i < 100; ++i) s.Insert(i, 1.0);
  const auto values = s.SampleValues();
  ASSERT_EQ(values.size(), s.entries().size());
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(values[i], s.entries()[i].value);
  }
}

TEST(WeightedReservoirTest, HeapKeepsLargestKeys) {
  WeightedReservoirSampler<int64_t> s(8, 5);
  for (int64_t i = 0; i < 500; ++i) s.Insert(i, 1.0);
  // The heap front is the minimum key of the retained set; every retained
  // key must be >= it.
  const double min_key = s.entries().front().key;
  for (const auto& e : s.entries()) EXPECT_GE(e.key, min_key);
  // Keys are valid A-Res keys: u^{1/w} in (0, 1].
  for (const auto& e : s.entries()) {
    EXPECT_GT(e.key, 0.0);
    EXPECT_LE(e.key, 1.0);
  }
}

TEST(WeightedReservoirTest, UnitWeightsMatchUniformMarginal) {
  // With all weights 1, inclusion probability is k/n per element.
  constexpr size_t kK = 3, kN = 12, kRuns = 30000;
  std::vector<int> counts(kN, 0);
  for (size_t run = 0; run < kRuns; ++run) {
    WeightedReservoirSampler<int64_t> s(kK, 10 + run);
    for (size_t i = 0; i < kN; ++i) s.Insert(static_cast<int64_t>(i));
    for (int64_t v : s.SampleValues()) ++counts[static_cast<size_t>(v)];
  }
  const double expected = static_cast<double>(kRuns) * kK / kN;
  const double sd = std::sqrt(expected * (1.0 - static_cast<double>(kK) / kN));
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_NEAR(counts[i], expected, 6.0 * sd) << "element " << i;
  }
}

TEST(WeightedReservoirTest, HeavierElementsSampledMoreOften) {
  // Element 0 has weight 10, elements 1..9 weight 1; with k = 1 the A-Res
  // selection probability of element 0 is 10/19.
  constexpr size_t kRuns = 20000;
  size_t zero_count = 0;
  for (size_t run = 0; run < kRuns; ++run) {
    WeightedReservoirSampler<int64_t> s(1, 20 + run);
    s.Insert(0, 10.0);
    for (int64_t i = 1; i < 10; ++i) s.Insert(i, 1.0);
    zero_count += s.SampleValues()[0] == 0;
  }
  const double p = 10.0 / 19.0;
  const double sd = std::sqrt(kRuns * p * (1 - p));
  EXPECT_NEAR(static_cast<double>(zero_count), kRuns * p, 6.0 * sd);
}

TEST(WeightedReservoirTest, FirstDrawMatchesWeightedDistribution) {
  // For k = 1 and two elements with weights w0, w1 the winner is element 0
  // with probability w0/(w0+w1) (Efraimidis–Spirakis Theorem 1).
  constexpr size_t kRuns = 20000;
  const double w0 = 3.0, w1 = 1.0;
  size_t zero_wins = 0;
  for (size_t run = 0; run < kRuns; ++run) {
    WeightedReservoirSampler<int64_t> s(1, 30 + run);
    s.Insert(0, w0);
    s.Insert(1, w1);
    zero_wins += s.SampleValues()[0] == 0;
  }
  const double p = w0 / (w0 + w1);
  const double sd = std::sqrt(kRuns * p * (1 - p));
  EXPECT_NEAR(static_cast<double>(zero_wins), kRuns * p, 6.0 * sd);
}

TEST(WeightedReservoirTest, DeterministicGivenSeed) {
  WeightedReservoirSampler<int64_t> a(6, 99), b(6, 99);
  for (int64_t i = 0; i < 500; ++i) {
    a.Insert(i, 1.0 + (i % 5));
    b.Insert(i, 1.0 + (i % 5));
  }
  EXPECT_EQ(a.SampleValues(), b.SampleValues());
}

TEST(WeightedReservoirDeathTest, NonPositiveWeightAborts) {
  WeightedReservoirSampler<int64_t> s(2, 1);
  EXPECT_DEATH(s.Insert(1, 0.0), "positive");
  EXPECT_DEATH(s.Insert(1, -3.0), "positive");
}

TEST(WeightedReservoirDeathTest, ZeroCapacityAborts) {
  EXPECT_DEATH(WeightedReservoirSampler<int64_t>(0, 1), "capacity");
}

}  // namespace
}  // namespace robust_sampling
