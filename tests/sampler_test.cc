#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <numeric>
#include <vector>

#include "core/bernoulli_sampler.h"
#include "core/random.h"
#include "core/reservoir_sampler.h"
#include "core/sampler.h"
#include "gtest/gtest.h"

namespace robust_sampling {
namespace {

static_assert(StreamSampler<BernoulliSampler<int64_t>, int64_t>);
static_assert(StreamSampler<ReservoirSampler<int64_t>, int64_t>);
static_assert(StreamSampler<SkipReservoirSampler<int64_t>, int64_t>);
static_assert(StreamSampler<BernoulliSampler<double>, double>);

// ------------------------------------------------------------- Bernoulli --

TEST(BernoulliSamplerTest, PZeroKeepsNothing) {
  BernoulliSampler<int64_t> s(0.0, 1);
  for (int64_t i = 0; i < 1000; ++i) s.Insert(i);
  EXPECT_TRUE(s.sample().empty());
  EXPECT_EQ(s.stream_size(), 1000u);
  EXPECT_FALSE(s.last_kept());
}

TEST(BernoulliSamplerTest, POneKeepsEverythingInOrder) {
  BernoulliSampler<int64_t> s(1.0, 1);
  std::vector<int64_t> expected;
  for (int64_t i = 0; i < 500; ++i) {
    s.Insert(i * 3);
    expected.push_back(i * 3);
    EXPECT_TRUE(s.last_kept());
  }
  EXPECT_EQ(s.sample(), expected);
}

TEST(BernoulliSamplerTest, SampleSizeConcentratesAroundNp) {
  constexpr size_t kN = 50000;
  constexpr double kP = 0.1;
  BernoulliSampler<int64_t> s(kP, 42);
  for (size_t i = 0; i < kN; ++i) s.Insert(static_cast<int64_t>(i));
  const double expected = kN * kP;
  const double sd = std::sqrt(kN * kP * (1 - kP));
  EXPECT_NEAR(static_cast<double>(s.sample().size()), expected, 6.0 * sd);
}

TEST(BernoulliSamplerTest, SampleIsSubsequenceOfStream) {
  BernoulliSampler<int64_t> s(0.3, 7);
  std::vector<int64_t> stream;
  for (int64_t i = 0; i < 2000; ++i) {
    s.Insert(i);
    stream.push_back(i);
  }
  // Sampled values appear in stream order (a subsequence of 0..1999).
  const auto& sample = s.sample();
  EXPECT_TRUE(std::is_sorted(sample.begin(), sample.end()));
  for (int64_t v : sample) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 2000);
  }
}

TEST(BernoulliSamplerTest, LastKeptMatchesSampleGrowth) {
  BernoulliSampler<int64_t> s(0.5, 9);
  size_t prev = 0;
  for (int64_t i = 0; i < 300; ++i) {
    s.Insert(i);
    const bool grew = s.sample().size() > prev;
    EXPECT_EQ(grew, s.last_kept());
    prev = s.sample().size();
  }
}

TEST(BernoulliSamplerTest, ResetClearsSampleButKeepsP) {
  BernoulliSampler<int64_t> s(0.5, 11);
  for (int64_t i = 0; i < 100; ++i) s.Insert(i);
  s.Reset();
  EXPECT_TRUE(s.sample().empty());
  EXPECT_EQ(s.stream_size(), 0u);
  EXPECT_DOUBLE_EQ(s.p(), 0.5);
}

TEST(BernoulliSamplerTest, DeterministicGivenSeed) {
  BernoulliSampler<int64_t> a(0.4, 123), b(0.4, 123);
  for (int64_t i = 0; i < 1000; ++i) {
    a.Insert(i);
    b.Insert(i);
  }
  EXPECT_EQ(a.sample(), b.sample());
}

TEST(BernoulliSamplerDeathTest, InvalidPAborts) {
  EXPECT_DEATH(BernoulliSampler<int64_t>(1.5, 1), "Bernoulli p");
  EXPECT_DEATH(BernoulliSampler<int64_t>(-0.1, 1), "Bernoulli p");
}

// ------------------------------------------------------------- Reservoir --

TEST(ReservoirSamplerTest, FirstKElementsAlwaysKept) {
  ReservoirSampler<int64_t> s(10, 1);
  for (int64_t i = 0; i < 10; ++i) {
    s.Insert(i);
    EXPECT_TRUE(s.last_kept());
    EXPECT_FALSE(s.last_evicted().has_value());
  }
  std::vector<int64_t> expected(10);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(s.sample(), expected);
}

TEST(ReservoirSamplerTest, SizeNeverExceedsK) {
  ReservoirSampler<int64_t> s(5, 2);
  for (int64_t i = 0; i < 1000; ++i) {
    s.Insert(i);
    EXPECT_LE(s.sample().size(), 5u);
  }
  EXPECT_EQ(s.sample().size(), 5u);
}

TEST(ReservoirSamplerTest, StreamShorterThanKKeepsAll) {
  ReservoirSampler<int64_t> s(100, 3);
  for (int64_t i = 0; i < 30; ++i) s.Insert(i);
  EXPECT_EQ(s.sample().size(), 30u);
}

TEST(ReservoirSamplerTest, EvictionReportedCorrectly) {
  ReservoirSampler<int64_t> s(3, 4);
  for (int64_t i = 0; i < 3; ++i) s.Insert(i);
  for (int64_t i = 3; i < 100; ++i) {
    const auto before = s.sample();
    s.Insert(i);
    if (s.last_kept()) {
      ASSERT_TRUE(s.last_evicted().has_value());
      // Evicted element was in the previous sample; new element is present.
      EXPECT_NE(std::find(before.begin(), before.end(), *s.last_evicted()),
                before.end());
      EXPECT_NE(std::find(s.sample().begin(), s.sample().end(), i),
                s.sample().end());
    } else {
      EXPECT_FALSE(s.last_evicted().has_value());
      EXPECT_EQ(before, s.sample());
    }
  }
}

TEST(ReservoirSamplerTest, EachElementEquallyLikelyInFinalSample) {
  // Distributional test: over many runs, P(element i in final sample) = k/n
  // for every i — the defining property of reservoir sampling.
  constexpr size_t kK = 4, kN = 20, kRuns = 30000;
  std::vector<int> counts(kN, 0);
  for (size_t run = 0; run < kRuns; ++run) {
    ReservoirSampler<int64_t> s(kK, 1000 + run);
    for (size_t i = 0; i < kN; ++i) s.Insert(static_cast<int64_t>(i));
    for (int64_t v : s.sample()) ++counts[static_cast<size_t>(v)];
  }
  const double expected = static_cast<double>(kRuns) * kK / kN;
  const double sd = std::sqrt(expected * (1.0 - static_cast<double>(kK) / kN));
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_NEAR(counts[i], expected, 6.0 * sd) << "element " << i;
  }
}

TEST(ReservoirSamplerTest, KeepProbabilityIsKOverI) {
  // At stream position i > k the keep probability is k/i; estimate it for
  // one fixed position across many independent runs.
  constexpr size_t kK = 5;
  constexpr size_t kI = 50;
  constexpr size_t kRuns = 20000;
  size_t kept = 0;
  for (size_t run = 0; run < kRuns; ++run) {
    ReservoirSampler<int64_t> s(kK, 555 + run);
    for (size_t i = 1; i <= kI; ++i) s.Insert(static_cast<int64_t>(i));
    kept += s.last_kept();
  }
  const double p = static_cast<double>(kK) / kI;
  const double sd = std::sqrt(kRuns * p * (1 - p));
  EXPECT_NEAR(static_cast<double>(kept), kRuns * p, 6.0 * sd);
}

TEST(ReservoirSamplerTest, ResetClearsState) {
  ReservoirSampler<int64_t> s(4, 8);
  for (int64_t i = 0; i < 100; ++i) s.Insert(i);
  s.Reset();
  EXPECT_TRUE(s.sample().empty());
  EXPECT_EQ(s.stream_size(), 0u);
  EXPECT_EQ(s.capacity(), 4u);
}

TEST(ReservoirSamplerDeathTest, ZeroCapacityAborts) {
  EXPECT_DEATH(ReservoirSampler<int64_t>(0, 1), "capacity");
}

// -------------------------------------------------------- Skip reservoir --

TEST(SkipReservoirSamplerTest, FirstKElementsAlwaysKept) {
  SkipReservoirSampler<int64_t> s(8, 1);
  for (int64_t i = 0; i < 8; ++i) {
    s.Insert(i);
    EXPECT_TRUE(s.last_kept());
  }
  EXPECT_EQ(s.sample().size(), 8u);
}

TEST(SkipReservoirSamplerTest, SizeIsExactlyKAfterKElements) {
  SkipReservoirSampler<int64_t> s(6, 2);
  for (int64_t i = 0; i < 5000; ++i) s.Insert(i);
  EXPECT_EQ(s.sample().size(), 6u);
  EXPECT_EQ(s.stream_size(), 5000u);
}

TEST(SkipReservoirSamplerTest, MatchesAlgorithmRDistribution) {
  // Algorithm L must produce the same inclusion distribution as Algorithm R:
  // P(element i in final sample) = k/n.
  constexpr size_t kK = 3, kN = 12, kRuns = 30000;
  std::vector<int> counts(kN, 0);
  for (size_t run = 0; run < kRuns; ++run) {
    SkipReservoirSampler<int64_t> s(kK, 77 + run);
    for (size_t i = 0; i < kN; ++i) s.Insert(static_cast<int64_t>(i));
    for (int64_t v : s.sample()) ++counts[static_cast<size_t>(v)];
  }
  const double expected = static_cast<double>(kRuns) * kK / kN;
  const double sd = std::sqrt(expected * (1.0 - static_cast<double>(kK) / kN));
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_NEAR(counts[i], expected, 6.0 * sd) << "element " << i;
  }
}

TEST(SkipReservoirSamplerTest, DeterministicGivenSeed) {
  SkipReservoirSampler<int64_t> a(10, 99), b(10, 99);
  for (int64_t i = 0; i < 10000; ++i) {
    a.Insert(i);
    b.Insert(i);
  }
  EXPECT_EQ(a.sample(), b.sample());
}

// Parameterized sweep: both reservoir variants preserve the k/n marginal
// for a range of (k, n) shapes.
class ReservoirMarginalTest
    : public ::testing::TestWithParam<std::pair<size_t, size_t>> {};

TEST_P(ReservoirMarginalTest, MeanInclusionCountIsK) {
  const auto [k, n] = GetParam();
  constexpr size_t kRuns = 2000;
  double total = 0.0;
  for (size_t run = 0; run < kRuns; ++run) {
    ReservoirSampler<int64_t> s(k, run * 31 + 1);
    for (size_t i = 0; i < n; ++i) s.Insert(static_cast<int64_t>(i));
    total += static_cast<double>(s.sample().size());
  }
  // Reservoir size is deterministic (= min(k, n)).
  EXPECT_DOUBLE_EQ(total / kRuns, static_cast<double>(std::min(k, n)));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ReservoirMarginalTest,
    ::testing::Values(std::pair<size_t, size_t>{1, 10},
                      std::pair<size_t, size_t>{5, 5},
                      std::pair<size_t, size_t>{10, 1000},
                      std::pair<size_t, size_t>{64, 64},
                      std::pair<size_t, size_t>{100, 17}));

}  // namespace
}  // namespace robust_sampling
