#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "harness/table.h"
#include "harness/trial_runner.h"

namespace robust_sampling {
namespace {

TEST(MarkdownTableTest, RendersHeaderSeparatorAndRows) {
  MarkdownTable t({"a", "bb"});
  t.AddRow({"1", "2"});
  t.AddRow({"333", "4"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("| a   | bb |"), std::string::npos);
  EXPECT_NE(s.find("|-----|----|"), std::string::npos);
  EXPECT_NE(s.find("| 333 | 4  |"), std::string::npos);
  EXPECT_EQ(t.NumRows(), 2u);
}

TEST(MarkdownTableTest, PrintWritesToStream) {
  MarkdownTable t({"x"});
  t.AddRow({"y"});
  std::ostringstream os;
  t.Print(os);
  EXPECT_EQ(os.str(), t.ToString());
}

TEST(MarkdownTableDeathTest, MismatchedRowAborts) {
  MarkdownTable t({"a", "b"});
  EXPECT_DEATH(t.AddRow({"only one"}), "row width");
}

TEST(MarkdownTableTest, ToJsonEmitsNumbersBareAndStringsQuoted) {
  MarkdownTable t({"config", "Melem/s", "speedup", "err"});
  t.AddRow({"pipeline x4", "12.5", "2.81x", "1.23e+18"});
  t.AddRow({"quote\"slash\\", "-3", "nan", "0.5"});
  const std::string json = t.ToJson();
  EXPECT_NE(json.find("\"config\": \"pipeline x4\""), std::string::npos);
  EXPECT_NE(json.find("\"Melem/s\": 12.5"), std::string::npos);
  // "2.81x" is not a number; "1.23e+18" is.
  EXPECT_NE(json.find("\"speedup\": \"2.81x\""), std::string::npos);
  EXPECT_NE(json.find("\"err\": 1.23e+18"), std::string::npos);
  // nan would be invalid bare JSON; it must be quoted.
  EXPECT_NE(json.find("\"nan\""), std::string::npos);
  // JSON forbids leading zeros, so zero-padded cells stay strings.
  MarkdownTable zeros({"id", "v"});
  zeros.AddRow({"007", "0.5"});
  const std::string zjson = zeros.ToJson();
  EXPECT_NE(zjson.find("\"id\": \"007\""), std::string::npos);
  EXPECT_NE(zjson.find("\"v\": 0.5"), std::string::npos);
  EXPECT_NE(json.find("\\\"slash\\\\"), std::string::npos);
  EXPECT_EQ(MarkdownTable({"h"}).ToJson(), "[]");
}

TEST(FormattersTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(0.123456, 3), "0.123");
  EXPECT_EQ(FormatDouble(2.0, 1), "2.0");
}

TEST(FormattersTest, FormatScientific) {
  EXPECT_EQ(FormatScientific(12345.0, 2), "1.23e+04");
}

TEST(FormattersTest, FormatBool) {
  EXPECT_EQ(FormatBool(true), "yes");
  EXPECT_EQ(FormatBool(false), "no");
}

TEST(TrialRunnerTest, AggregatesDeterministically) {
  auto trial = [](uint64_t seed) {
    return static_cast<double>(seed % 100);
  };
  const auto a = RunTrials(50, 7, trial);
  const auto b = RunTrials(50, 7, trial);
  EXPECT_EQ(a.values, b.values);
  EXPECT_EQ(a.values.size(), 50u);
}

TEST(TrialRunnerTest, StatsAreConsistent) {
  size_t counter = 0;
  auto trial = [&counter](uint64_t) {
    return static_cast<double>(counter++);
  };
  const auto stats = RunTrials(5, 1, trial);
  EXPECT_DOUBLE_EQ(stats.min, 0.0);
  EXPECT_DOUBLE_EQ(stats.max, 4.0);
  EXPECT_DOUBLE_EQ(stats.mean, 2.0);
  EXPECT_DOUBLE_EQ(stats.median, 2.0);
}

TEST(TrialRunnerTest, FractionAtMost) {
  size_t counter = 0;
  auto trial = [&counter](uint64_t) {
    return static_cast<double>(counter++);
  };
  const auto stats = RunTrials(10, 1, trial);  // values 0..9
  EXPECT_DOUBLE_EQ(stats.FractionAtMost(4.0), 0.5);
  EXPECT_DOUBLE_EQ(stats.FractionAtLeast(8.0), 0.2);
  EXPECT_DOUBLE_EQ(stats.FractionAtMost(100.0), 1.0);
  EXPECT_DOUBLE_EQ(stats.FractionAtMost(-1.0), 0.0);
}

TEST(TrialRunnerTest, QuantileOfTrialValues) {
  size_t counter = 0;
  auto trial = [&counter](uint64_t) {
    return static_cast<double>(counter++);
  };
  const auto stats = RunTrials(10, 1, trial);
  EXPECT_DOUBLE_EQ(stats.Quantile(0.1), 0.0);
  EXPECT_DOUBLE_EQ(stats.Quantile(1.0), 9.0);
}

TEST(TrialRunnerTest, SeedsAreDistinctAcrossTrials) {
  std::vector<uint64_t> seeds;
  auto trial = [&seeds](uint64_t seed) {
    seeds.push_back(seed);
    return 0.0;
  };
  RunTrials(100, 3, trial);
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(std::unique(seeds.begin(), seeds.end()), seeds.end());
}

}  // namespace
}  // namespace robust_sampling
