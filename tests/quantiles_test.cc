#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/random.h"
#include "gtest/gtest.h"
#include "quantiles/exact_quantiles.h"
#include "quantiles/gk_sketch.h"
#include "quantiles/kll_sketch.h"
#include "quantiles/sample_quantile_sketch.h"
#include "stream/generators.h"

namespace robust_sampling {
namespace {

// ----------------------------------------------------------------- Exact --

TEST(ExactQuantilesTest, SimpleQuantiles) {
  ExactQuantiles q({1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_DOUBLE_EQ(q.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(q.Quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(q.Quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(q.Quantile(0.2), 1.0);
  EXPECT_DOUBLE_EQ(q.Quantile(0.21), 2.0);
}

TEST(ExactQuantilesTest, RankFraction) {
  ExactQuantiles q({10.0, 20.0, 30.0, 40.0});
  EXPECT_DOUBLE_EQ(q.RankFraction(5.0), 0.0);
  EXPECT_DOUBLE_EQ(q.RankFraction(10.0), 0.25);
  EXPECT_DOUBLE_EQ(q.RankFraction(25.0), 0.5);
  EXPECT_DOUBLE_EQ(q.RankFraction(40.0), 1.0);
  EXPECT_DOUBLE_EQ(q.RankFraction(100.0), 1.0);
}

TEST(ExactQuantilesTest, InsertKeepsSortedViewFresh) {
  ExactQuantiles q;
  q.Insert(5.0);
  EXPECT_DOUBLE_EQ(q.Quantile(0.5), 5.0);
  q.Insert(1.0);
  q.Insert(9.0);
  EXPECT_DOUBLE_EQ(q.Quantile(0.5), 5.0);
  q.Insert(0.0);
  EXPECT_DOUBLE_EQ(q.Quantile(0.25), 0.0);
  EXPECT_EQ(q.StreamSize(), 4u);
}

TEST(ExactQuantilesTest, RankErrorHandlesTies) {
  ExactQuantiles q({1.0, 2.0, 2.0, 2.0, 3.0});
  // The value 2 spans rank fractions [0.2, 0.8]; any target inside is 0.
  EXPECT_DOUBLE_EQ(q.RankError(0.5, 2.0), 0.0);
  EXPECT_DOUBLE_EQ(q.RankError(0.2, 2.0), 0.0);
  EXPECT_NEAR(q.RankError(0.1, 2.0), 0.1, 1e-12);
  EXPECT_NEAR(q.RankError(0.9, 2.0), 0.1, 1e-12);
}

TEST(ExactQuantilesTest, QuantileOrderStatisticsDefinition) {
  // Quantile(q) = smallest value with rank fraction >= q.
  ExactQuantiles q({7.0, 7.0, 8.0, 9.0});
  EXPECT_DOUBLE_EQ(q.Quantile(0.5), 7.0);
  EXPECT_DOUBLE_EQ(q.Quantile(0.75), 8.0);
}

// ---------------------------------------------------------------- Sample --

TEST(SampleQuantileSketchTest, ExactWhenSampleHoldsEverything) {
  SampleQuantileSketch s(1000, 3);
  for (int i = 1; i <= 100; ++i) s.Insert(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.Quantile(0.5), 50.0);
  EXPECT_DOUBLE_EQ(s.RankFraction(25.0), 0.25);
}

TEST(SampleQuantileSketchTest, ApproximatesOnRandomStream) {
  const double eps = 0.05, delta = 0.05;
  SampleQuantileSketch s =
      SampleQuantileSketch::ForAccuracy(eps, delta, 1 << 20, 7);
  const auto stream = UniformDoubleStream(200000, 0.0, 1.0, 11);
  ExactQuantiles exact;
  for (double v : stream) {
    s.Insert(v);
    exact.Insert(v);
  }
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    EXPECT_LE(exact.RankError(q, s.Quantile(q)), eps) << "q=" << q;
  }
}

TEST(SampleQuantileSketchTest, SpaceMatchesCorollaryBound) {
  const double eps = 0.1, delta = 0.05;
  SampleQuantileSketch s =
      SampleQuantileSketch::ForAccuracy(eps, delta, 1000000, 7);
  for (int i = 0; i < 100000; ++i) s.Insert(static_cast<double>(i));
  // k = ceil(2 (ln 1e6 + ln 40)/0.01) ~ 3,500; definitely sublinear here.
  EXPECT_LT(s.SpaceItems(), 10000u);
  EXPECT_EQ(s.StreamSize(), 100000u);
}

// -------------------------------------------------------------------- GK --

TEST(GkSketchTest, ExactOnShortStreams) {
  GkSketch g(0.1);
  for (int i = 1; i <= 5; ++i) g.Insert(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(g.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(g.Quantile(1.0), 5.0);
}

TEST(GkSketchTest, RankErrorWithinEpsOnUniformStream) {
  const double eps = 0.02;
  GkSketch g(eps);
  const auto stream = UniformDoubleStream(50000, 0.0, 1.0, 13);
  ExactQuantiles exact;
  for (double v : stream) {
    g.Insert(v);
    exact.Insert(v);
  }
  for (double q : {0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99}) {
    EXPECT_LE(exact.RankError(q, g.Quantile(q)), eps + 1e-9) << "q=" << q;
  }
}

TEST(GkSketchTest, RankErrorWithinEpsOnSortedStream) {
  // Sorted input is the classic worst case for naive summaries.
  const double eps = 0.02;
  GkSketch g(eps);
  ExactQuantiles exact;
  for (int i = 0; i < 30000; ++i) {
    g.Insert(static_cast<double>(i));
    exact.Insert(static_cast<double>(i));
  }
  for (double q : {0.1, 0.5, 0.9}) {
    EXPECT_LE(exact.RankError(q, g.Quantile(q)), eps + 1e-9) << "q=" << q;
  }
}

TEST(GkSketchTest, SpaceIsSublinear) {
  GkSketch g(0.01);
  for (int i = 0; i < 100000; ++i) {
    g.Insert(static_cast<double>((i * 2654435761u) % 1000003));
  }
  EXPECT_LT(g.SpaceItems(), 10000u);  // << 100000 retained items
}

TEST(GkSketchTest, RankFractionMonotone) {
  GkSketch g(0.05);
  const auto stream = UniformDoubleStream(20000, 0.0, 1.0, 17);
  for (double v : stream) g.Insert(v);
  double prev = -1.0;
  for (double x = 0.0; x <= 1.0; x += 0.05) {
    const double r = g.RankFraction(x);
    EXPECT_GE(r, prev - 1e-12);
    prev = r;
  }
}

TEST(GkSketchDeathTest, InvalidEpsAborts) {
  EXPECT_DEATH(GkSketch(0.0), "eps");
  EXPECT_DEATH(GkSketch(1.0), "eps");
}

// ------------------------------------------------------------------- KLL --

TEST(KllSketchTest, ExactOnShortStreams) {
  KllSketch k(200, 3);
  for (int i = 1; i <= 100; ++i) k.Insert(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(k.Quantile(0.5), 50.0);
  EXPECT_DOUBLE_EQ(k.RankFraction(25.0), 0.25);
}

TEST(KllSketchTest, WeightsAlwaysSumToStreamSize) {
  KllSketch k(64, 5);
  for (int i = 0; i < 10000; ++i) {
    k.Insert(static_cast<double>(i % 97));
    if (i % 1000 == 999) {
      // RankFraction(max) must be exactly 1: total weight == n.
      EXPECT_NEAR(k.RankFraction(1e18), 1.0, 1e-12);
    }
  }
}

TEST(KllSketchTest, RankErrorSmallOnUniformStream) {
  KllSketch k(400, 7);
  const auto stream = UniformDoubleStream(100000, 0.0, 1.0, 19);
  ExactQuantiles exact;
  for (double v : stream) {
    k.Insert(v);
    exact.Insert(v);
  }
  // eps ~ c/k; with k=400 expect errors well under 0.05.
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    EXPECT_LE(exact.RankError(q, k.Quantile(q)), 0.05) << "q=" << q;
  }
}

TEST(KllSketchTest, SpaceIsSublinear) {
  KllSketch k(256, 9);
  for (int i = 0; i < 200000; ++i) k.Insert(static_cast<double>(i));
  EXPECT_LT(k.SpaceItems(), 5000u);
  EXPECT_GT(k.NumLevels(), 3u);
}

TEST(KllSketchTest, DeterministicGivenSeed) {
  KllSketch a(64, 42), b(64, 42);
  for (int i = 0; i < 5000; ++i) {
    a.Insert(static_cast<double>(i % 321));
    b.Insert(static_cast<double>(i % 321));
  }
  for (double q : {0.1, 0.5, 0.9}) {
    EXPECT_DOUBLE_EQ(a.Quantile(q), b.Quantile(q));
  }
}

TEST(KllSketchDeathTest, TooSmallKAborts) { EXPECT_DEATH(KllSketch(2, 1), "k >= 4"); }

// ----------------------------------------- Cross-sketch property sweeps --

class AllSketchesTest : public ::testing::TestWithParam<int> {
 protected:
  std::unique_ptr<QuantileSketch> Make() const {
    switch (GetParam()) {
      case 0:
        return std::make_unique<ExactQuantiles>();
      case 1:
        return std::make_unique<SampleQuantileSketch>(2000, 5);
      case 2:
        return std::make_unique<GkSketch>(0.02);
      default:
        return std::make_unique<KllSketch>(400, 5);
    }
  }
};

TEST_P(AllSketchesTest, QuantilesAreMonotoneInQ) {
  auto sketch = Make();
  const auto stream = UniformDoubleStream(30000, 0.0, 100.0, 23);
  for (double v : stream) sketch->Insert(v);
  double prev = -1e300;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const double v = sketch->Quantile(q);
    EXPECT_GE(v, prev - 1e-9) << sketch->Name() << " q=" << q;
    prev = v;
  }
}

TEST_P(AllSketchesTest, QuantileValuesComeFromStreamRange) {
  auto sketch = Make();
  const auto stream = UniformDoubleStream(10000, 5.0, 6.0, 29);
  for (double v : stream) sketch->Insert(v);
  for (double q : {0.0, 0.5, 1.0}) {
    const double v = sketch->Quantile(q);
    EXPECT_GE(v, 5.0) << sketch->Name();
    EXPECT_LT(v, 6.0) << sketch->Name();
  }
}

TEST_P(AllSketchesTest, MedianOfUniformIsNearHalf) {
  auto sketch = Make();
  const auto stream = UniformDoubleStream(50000, 0.0, 1.0, 31);
  for (double v : stream) sketch->Insert(v);
  EXPECT_NEAR(sketch->Quantile(0.5), 0.5, 0.05) << sketch->Name();
}

TEST_P(AllSketchesTest, StreamSizeTracked) {
  auto sketch = Make();
  for (int i = 0; i < 1234; ++i) sketch->Insert(static_cast<double>(i));
  EXPECT_EQ(sketch->StreamSize(), 1234u);
}

INSTANTIATE_TEST_SUITE_P(Sketches, AllSketchesTest,
                         ::testing::Values(0, 1, 2, 3));

}  // namespace
}  // namespace robust_sampling
