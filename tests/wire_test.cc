// Wire subsystem suite: codec primitives, registry-driven snapshot
// round-trips for every registered kind, corruption/truncation rejection
// (clean errors, never UB or aborts), and the pipeline
// Checkpoint -> kill -> Restore -> continue contract (bit-identical to an
// uninterrupted run).

#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "pipeline/sharded_pipeline.h"
#include "pipeline/sketch_config.h"
#include "pipeline/sketch_registry.h"
#include "pipeline/stream_sketch.h"
#include "wire/codec.h"
#include "wire/snapshot.h"

namespace robust_sampling {
namespace {

// --------------------------------------------------------------- codec ----

TEST(WireCodecTest, VarintRoundTripsBoundaryValues) {
  const uint64_t values[] = {0,
                             1,
                             127,
                             128,
                             16383,
                             16384,
                             uint64_t{1} << 32,
                             std::numeric_limits<uint64_t>::max() - 1,
                             std::numeric_limits<uint64_t>::max()};
  wire::BufferSink sink;
  for (uint64_t v : values) wire::PutVarint(sink, v);
  wire::BufferSource source(sink.bytes());
  for (uint64_t v : values) {
    uint64_t got = 0;
    ASSERT_TRUE(wire::GetVarint(source, &got));
    EXPECT_EQ(got, v);
  }
  EXPECT_EQ(source.remaining(), uint64_t{0});
}

TEST(WireCodecTest, ZigzagRoundTripsSignedExtremes) {
  for (int64_t v : {int64_t{0}, int64_t{-1}, int64_t{1},
                    std::numeric_limits<int64_t>::min(),
                    std::numeric_limits<int64_t>::max()}) {
    EXPECT_EQ(wire::ZigzagDecode(wire::ZigzagEncode(v)), v);
  }
}

TEST(WireCodecTest, DoubleRoundTripsExactBits) {
  wire::BufferSink sink;
  const double values[] = {0.0, -0.0, 1.5, -3.25e300,
                           std::numeric_limits<double>::infinity(),
                           std::numeric_limits<double>::denorm_min()};
  for (double v : values) wire::PutDouble(sink, v);
  wire::BufferSource source(sink.bytes());
  for (double v : values) {
    double got = 0.0;
    ASSERT_TRUE(wire::GetDouble(source, &got));
    EXPECT_EQ(std::bit_cast<uint64_t>(got), std::bit_cast<uint64_t>(v));
  }
}

TEST(WireCodecTest, TruncatedReadsFailCleanlyAndPoisonTheSource) {
  wire::BufferSink sink;
  wire::PutVarint(sink, uint64_t{1} << 40);
  std::vector<uint8_t> bytes = sink.bytes();
  bytes.pop_back();
  wire::BufferSource source(bytes);
  uint64_t v = 0;
  EXPECT_FALSE(wire::GetVarint(source, &v));
  EXPECT_TRUE(source.failed());
  // Poisoned: even a read that would fit now fails.
  uint8_t byte = 0;
  EXPECT_FALSE(source.Read(&byte, 0));
}

TEST(WireCodecTest, LengthPrefixesAreValidatedAgainstRemainingBytes) {
  wire::BufferSink sink;
  wire::PutVarint(sink, 1000);  // claims 1000 elements...
  sink.Append("xy", 2);         // ...backed by 2 bytes
  wire::BufferSource source(sink.bytes());
  std::vector<int64_t> out;
  EXPECT_FALSE(wire::GetValueVector(source, &out));
  EXPECT_TRUE(source.failed());
}

TEST(WireCodecTest, CountMapRejectsDuplicatesAndZeroCounts) {
  {
    // v2 shape: count | elements fixed64 row | counts fixed64 row.
    wire::BufferSink sink;
    wire::PutVarint(sink, 2);
    wire::PutFixed64(sink, wire::FixedEncodeValue<int64_t>(7));
    wire::PutFixed64(sink, wire::FixedEncodeValue<int64_t>(7));  // duplicate
    wire::PutFixed64(sink, 3);
    wire::PutFixed64(sink, 5);
    wire::BufferSource source(sink.bytes());
    std::unordered_map<int64_t, uint64_t> map;
    EXPECT_FALSE(wire::GetCountMap(source, &map));
  }
  {
    // Elements must arrive sorted (the canonical writer order).
    wire::BufferSink sink;
    wire::PutVarint(sink, 2);
    wire::PutFixed64(sink, wire::FixedEncodeValue<int64_t>(9));
    wire::PutFixed64(sink, wire::FixedEncodeValue<int64_t>(7));
    wire::PutFixed64(sink, 3);
    wire::PutFixed64(sink, 5);
    wire::BufferSource source(sink.bytes());
    std::unordered_map<int64_t, uint64_t> map;
    EXPECT_FALSE(wire::GetCountMap(source, &map));
  }
  {
    wire::BufferSink sink;
    wire::PutVarint(sink, 1);
    wire::PutFixed64(sink, wire::FixedEncodeValue<int64_t>(7));
    wire::PutFixed64(sink, 0);  // zero count
    wire::BufferSource source(sink.bytes());
    std::unordered_map<int64_t, uint64_t> map;
    EXPECT_FALSE(wire::GetCountMap(source, &map));
  }
  // The v1 upgrade reader applies the same rejections to the interleaved
  // varint shape.
  {
    wire::BufferSink sink;
    wire::PutVarint(sink, 2);
    wire::PutVarint(sink, wire::ZigzagEncode(7));
    wire::PutVarint(sink, 3);
    wire::PutVarint(sink, wire::ZigzagEncode(7));  // duplicate element
    wire::PutVarint(sink, 5);
    wire::BufferSource source(sink.bytes());
    source.set_wire_version(wire::kWireFormatV1);
    std::unordered_map<int64_t, uint64_t> map;
    EXPECT_FALSE(wire::GetCountMap(source, &map));
  }
  {
    wire::BufferSink sink;
    wire::PutVarint(sink, 1);
    wire::PutVarint(sink, wire::ZigzagEncode(7));
    wire::PutVarint(sink, 0);  // zero count
    wire::BufferSource source(sink.bytes());
    source.set_wire_version(wire::kWireFormatV1);
    std::unordered_map<int64_t, uint64_t> map;
    EXPECT_FALSE(wire::GetCountMap(source, &map));
  }
}

TEST(WireCodecTest, BufferedSinkMatchesUnbufferedBytes) {
  wire::BufferSink direct;
  wire::BufferSink base;
  {
    // A tiny window forces flushes, window-straddling appends and
    // bypass-sized appends; bytes out must be identical regardless.
    wire::BufferedSink buffered(base, /*capacity=*/16);
    Rng rng(42);
    for (int i = 0; i < 200; ++i) {
      std::vector<uint8_t> chunk(rng.NextBelow(40),
                                 static_cast<uint8_t>(i));
      direct.Append(chunk.data(), chunk.size());
      buffered.Append(chunk.data(), chunk.size());
    }
  }  // destructor flushes the tail
  EXPECT_EQ(base.bytes(), direct.bytes());
}

TEST(WireCodecTest, BufferedSourceReadsMatchTheUnderlyingBytes) {
  std::vector<uint8_t> data(10000);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>(i * 31);
  }
  wire::BufferSource base(data);
  wire::BufferedSource source(base, /*capacity=*/64);
  std::vector<uint8_t> got;
  Rng rng(7);
  while (got.size() < data.size()) {
    // Read sizes straddle the window (including bypass-sized reads).
    const size_t want = std::min<size_t>(1 + rng.NextBelow(150),
                                         data.size() - got.size());
    std::vector<uint8_t> chunk(want);
    ASSERT_TRUE(source.Read(chunk.data(), want));
    got.insert(got.end(), chunk.begin(), chunk.end());
  }
  EXPECT_EQ(got, data);
  uint8_t extra = 0;
  EXPECT_FALSE(source.Read(&extra, 1));  // past EOF fails cleanly
}

TEST(WireCodecTest, FramedBodyDetectsFlippedBitsAnywhere) {
  std::vector<uint8_t> body = {1, 2, 3, 4, 5, 6, 7, 8};
  wire::BufferSink sink;
  wire::WriteFramedBody(sink, "TEST", body);
  const std::vector<uint8_t> good = sink.bytes();
  {
    std::vector<uint8_t> ok_copy = good;
    wire::BufferSource source(ok_copy);
    std::vector<uint8_t> out;
    uint64_t version = 0;
    EXPECT_TRUE(
        wire::ReadFramedBody(source, "TEST", &out, nullptr, &version));
    EXPECT_EQ(out, body);
    EXPECT_EQ(version, wire::kWireFormatCurrent);
  }
  for (size_t i = 0; i < good.size(); ++i) {
    std::vector<uint8_t> corrupt = good;
    corrupt[i] ^= 0x40;
    wire::BufferSource source(corrupt);
    std::vector<uint8_t> out;
    std::string error;
    EXPECT_FALSE(wire::ReadFramedBody(source, "TEST", &out, &error))
        << "flip at byte " << i << " was accepted";
    EXPECT_FALSE(error.empty());
  }
}

// v1 frames (no encoding byte, varint body length) must keep reading
// through the upgrade path — hand-built exactly as the v1 writer framed.
TEST(WireCodecTest, FramedBodyReadsV1Frames) {
  const std::vector<uint8_t> body = {9, 8, 7, 6, 5};
  wire::BufferSink sink;
  sink.Append("TEST", 4);
  wire::PutVarint(sink, wire::kWireFormatV1);
  wire::PutVarint(sink, body.size());
  sink.Append(body.data(), body.size());
  wire::PutFixed64(sink, wire::Checksum(body));
  wire::BufferSource source(sink.bytes());
  std::vector<uint8_t> out;
  uint64_t version = 0;
  EXPECT_TRUE(wire::ReadFramedBody(source, "TEST", &out, nullptr, &version));
  EXPECT_EQ(out, body);
  EXPECT_EQ(version, wire::kWireFormatV1);
}

TEST(WireCodecTest, UnknownBodyEncodingIsRejected) {
  std::vector<uint8_t> body = {1, 2, 3};
  wire::BufferSink sink;
  wire::WriteFramedBody(sink, "TEST", body);
  std::vector<uint8_t> bytes = sink.bytes();
  // Layout: magic (4) | version varint (1 byte) | encoding byte | ...
  ASSERT_EQ(bytes[5], 0u);
  bytes[5] = 7;
  wire::BufferSource source(bytes);
  std::vector<uint8_t> out;
  std::string error;
  EXPECT_FALSE(wire::ReadFramedBody(source, "TEST", &out, &error));
  EXPECT_NE(error.find("encoding"), std::string::npos) << error;
}

TEST(WireCodecTest, CompressedFramedBodyRoundTripsOrFallsBack) {
  // Highly compressible body, so zstd always wins when available.
  std::vector<uint8_t> body(4096, 0xAB);
  wire::BufferSink sink;
  wire::WriteFramedBody(sink, "TEST", body, wire::BodyEncoding::kZstd);
  const std::vector<uint8_t> good = sink.bytes();
  if (wire::ZstdSupported()) {
    EXPECT_EQ(good[5], 1u);                // encoding byte says zstd
    EXPECT_LT(good.size(), body.size());   // and it actually shrank
  } else {
    EXPECT_EQ(good[5], 0u);  // silent fallback: readable on any build
  }
  {
    std::vector<uint8_t> ok_copy = good;
    wire::BufferSource source(ok_copy);
    std::vector<uint8_t> out;
    EXPECT_TRUE(wire::ReadFramedBody(source, "TEST", &out, nullptr));
    EXPECT_EQ(out, body);
  }
  // Every single-byte flip must reject — the raw-length prefix and the
  // compressed stream included, not just the checksummed stored body.
  for (size_t i = 0; i < good.size(); ++i) {
    std::vector<uint8_t> corrupt = good;
    corrupt[i] ^= 0x40;
    wire::BufferSource source(corrupt);
    std::vector<uint8_t> out;
    std::string error;
    EXPECT_FALSE(wire::ReadFramedBody(source, "TEST", &out, &error))
        << "flip at byte " << i << " was accepted";
  }
}

// ------------------------------------------------- snapshot round trips ----

SketchConfig SmallConfig(const std::string& kind) {
  SketchConfig config;
  config.kind = kind;
  config.eps = 0.1;
  config.delta = 0.05;
  config.universe_size = 512;
  config.capacity = 64;
  config.probability = 0.25;  // read by "bernoulli" only
  config.width = 128;
  config.depth = 3;
  config.seed = 0xC0FFEE;
  return config;
}

std::string TempPath(const std::string& name) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr ? dir : "/tmp") + "/" + name;
}

std::vector<int64_t> TestStream(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<int64_t> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(static_cast<int64_t>(rng.NextBelow(512)) + 1);
  }
  return out;
}

// Asserts that two same-kind sketches answer every supported query
// bit-identically (the round-trip contract).
void ExpectIdenticalAnswers(const StreamSketch<int64_t>& a,
                            const StreamSketch<int64_t>& b,
                            const std::string& context) {
  ASSERT_EQ(a.Capabilities(), b.Capabilities()) << context;
  EXPECT_EQ(a.Name(), b.Name()) << context;
  EXPECT_EQ(a.StreamSize(), b.StreamSize()) << context;
  EXPECT_EQ(a.SpaceItems(), b.SpaceItems()) << context;
  if (a.Supports(kCapSampleView)) {
    const auto va = a.SampleView();
    const auto vb = b.SampleView();
    EXPECT_EQ(va.last_kept, vb.last_kept) << context;
    ASSERT_EQ(va.elements.size(), vb.elements.size()) << context;
    for (size_t i = 0; i < va.elements.size(); ++i) {
      EXPECT_EQ(va.elements[i], vb.elements[i]) << context << " sample[" << i
                                                << "]";
    }
  }
  // Guard on SpaceItems too: a sampler's Quantile requires a non-empty
  // retained sample.
  if (a.Supports(kCapQuantiles) && a.StreamSize() > 0 && a.SpaceItems() > 0) {
    for (double q = 0.05; q < 1.0; q += 0.05) {
      EXPECT_EQ(a.Quantile(q), b.Quantile(q)) << context << " q=" << q;
    }
    for (double x : {0.0, 100.0, 256.0, 511.0}) {
      EXPECT_EQ(a.Rank(x), b.Rank(x)) << context << " rank(" << x << ")";
    }
  }
  if (a.Supports(kCapFrequencies)) {
    for (int64_t x = 1; x <= 512; x += 7) {
      EXPECT_EQ(a.EstimateFrequency(x), b.EstimateFrequency(x))
          << context << " freq(" << x << ")";
    }
  }
  if (a.Supports(kCapHeavyHitters)) {
    const auto ha = a.HeavyHitters(0.001);
    const auto hb = b.HeavyHitters(0.001);
    ASSERT_EQ(ha.size(), hb.size()) << context;
    for (size_t i = 0; i < ha.size(); ++i) {
      EXPECT_EQ(ha[i].element, hb[i].element) << context;
      EXPECT_EQ(ha[i].frequency, hb[i].frequency) << context;
    }
  }
}

TEST(WireSnapshotTest, EveryRegisteredKindRoundTripsBitIdentically) {
  const auto stream = TestStream(20000, 0x5EED);
  for (const auto& kind : SketchRegistry<int64_t>::Global().Kinds()) {
    const SketchConfig config = SmallConfig(kind);
    auto original = SketchRegistry<int64_t>::Global().Create(config);
    ASSERT_TRUE(original.Supports(kCapSerialize)) << kind;
    original.InsertBatch(stream);

    wire::BufferSink sink;
    ASSERT_TRUE(wire::WriteSnapshot(original, config, sink)) << kind;

    wire::BufferSource source(sink.bytes());
    std::string error;
    auto revived = wire::ReadSnapshot<int64_t>(source, &error);
    ASSERT_TRUE(revived.valid()) << kind << ": " << error;
    ExpectIdenticalAnswers(original, revived, kind);
  }
}

// RNG state survives the wire: a revived randomized sketch continues with
// the exact same trajectory as the original, so feeding both the same
// suffix keeps them bit-identical — the property that lets a restored
// robust sampler keep its Theorem 1.2 guarantee.
TEST(WireSnapshotTest, RevivedSketchesContinueTheExactRngTrajectory) {
  const auto prefix = TestStream(8000, 0xAB);
  const auto suffix = TestStream(8000, 0xCD);
  for (const auto& kind : SketchRegistry<int64_t>::Global().Kinds()) {
    const SketchConfig config = SmallConfig(kind);
    auto original = SketchRegistry<int64_t>::Global().Create(config);
    original.InsertBatch(prefix);

    wire::BufferSink sink;
    ASSERT_TRUE(wire::WriteSnapshot(original, config, sink)) << kind;
    wire::BufferSource source(sink.bytes());
    std::string error;
    auto revived = wire::ReadSnapshot<int64_t>(source, &error);
    ASSERT_TRUE(revived.valid()) << kind << ": " << error;

    original.InsertBatch(suffix);
    revived.InsertBatch(suffix);
    ExpectIdenticalAnswers(original, revived, kind + " after suffix");
  }
}

TEST(WireSnapshotTest, EmptySketchesRoundTrip) {
  for (const auto& kind : SketchRegistry<int64_t>::Global().Kinds()) {
    const SketchConfig config = SmallConfig(kind);
    auto original = SketchRegistry<int64_t>::Global().Create(config);
    wire::BufferSink sink;
    ASSERT_TRUE(wire::WriteSnapshot(original, config, sink)) << kind;
    wire::BufferSource source(sink.bytes());
    std::string error;
    auto revived = wire::ReadSnapshot<int64_t>(source, &error);
    ASSERT_TRUE(revived.valid()) << kind << ": " << error;
    EXPECT_EQ(revived.StreamSize(), 0u) << kind;
  }
}

TEST(WireSnapshotTest, DoubleElementKindsRoundTrip) {
  SketchConfig config = SmallConfig("kll");
  auto original = SketchRegistry<double>::Global().Create(config);
  Rng rng(7);
  for (int i = 0; i < 5000; ++i) original.Insert(rng.NextDouble());
  wire::BufferSink sink;
  ASSERT_TRUE(wire::WriteSnapshot(original, config, sink));
  wire::BufferSource source(sink.bytes());
  std::string error;
  auto revived = wire::ReadSnapshot<double>(source, &error);
  ASSERT_TRUE(revived.valid()) << error;
  for (double q = 0.1; q < 1.0; q += 0.1) {
    EXPECT_EQ(original.Quantile(q), revived.Quantile(q)) << q;
  }
}

// --------------------------------------------- corruption / truncation ----

TEST(WireSnapshotTest, TruncationAtEveryPrefixFailsCleanly) {
  for (const auto& kind : SketchRegistry<int64_t>::Global().Kinds()) {
    const SketchConfig config = SmallConfig(kind);
    auto original = SketchRegistry<int64_t>::Global().Create(config);
    original.InsertBatch(TestStream(2000, 0x77));
    wire::BufferSink sink;
    ASSERT_TRUE(wire::WriteSnapshot(original, config, sink));
    const std::vector<uint8_t>& good = sink.bytes();
    for (size_t len = 0; len < good.size(); ++len) {
      std::vector<uint8_t> truncated(good.begin(),
                                     good.begin() + static_cast<long>(len));
      wire::BufferSource source(truncated);
      std::string error;
      auto revived = wire::ReadSnapshot<int64_t>(source, &error);
      EXPECT_FALSE(revived.valid())
          << kind << ": truncation to " << len << " bytes was accepted";
      EXPECT_FALSE(error.empty()) << kind << " len=" << len;
    }
  }
}

TEST(WireSnapshotTest, RandomByteFlipsAreAlwaysRejected) {
  Rng rng(0xBADC0DE);
  for (const auto& kind : SketchRegistry<int64_t>::Global().Kinds()) {
    const SketchConfig config = SmallConfig(kind);
    auto original = SketchRegistry<int64_t>::Global().Create(config);
    original.InsertBatch(TestStream(2000, 0x99));
    wire::BufferSink sink;
    ASSERT_TRUE(wire::WriteSnapshot(original, config, sink));
    for (int trial = 0; trial < 200; ++trial) {
      std::vector<uint8_t> corrupt = sink.bytes();
      const size_t pos = static_cast<size_t>(rng.NextBelow(corrupt.size()));
      const uint8_t mask =
          static_cast<uint8_t>(1u << rng.NextBelow(8));
      corrupt[pos] ^= mask;
      wire::BufferSource source(corrupt);
      std::string error;
      auto revived = wire::ReadSnapshot<int64_t>(source, &error);
      EXPECT_FALSE(revived.valid())
          << kind << ": flip of bit " << static_cast<int>(mask) << " at byte "
          << pos << " was accepted";
    }
  }
}

TEST(WireSnapshotTest, UnknownKindAndBadVersionAreRejected) {
  SketchConfig config = SmallConfig("reservoir");
  auto sketch = SketchRegistry<int64_t>::Global().Create(config);
  {
    // A config naming an unregistered kind: build the snapshot by hand.
    wire::BufferSink payload;
    sketch.SerializeTo(payload);
    SketchConfig alien = config;
    alien.kind = "no_such_kind";
    wire::BufferSink body;
    wire::PutString(body, wire::ElementTypeTag<int64_t>());
    wire::WriteSketchConfig(body, alien);
    wire::PutBytes(body, payload.bytes());
    wire::BufferSink sink;
    wire::WriteFramedBody(sink, wire::kSnapshotMagic, body.bytes());
    wire::BufferSource source(sink.bytes());
    std::string error;
    EXPECT_FALSE(wire::ReadSnapshot<int64_t>(source, &error).valid());
    EXPECT_NE(error.find("unknown sketch kind"), std::string::npos) << error;
  }
  {
    // A newer format version must be rejected, not guessed at.
    wire::BufferSink sink;
    ASSERT_TRUE(wire::WriteSnapshot(sketch, config, sink));
    std::vector<uint8_t> bytes = sink.bytes();
    bytes[4] = 9;  // the version varint sits right after the 4-byte magic
    wire::BufferSource source(bytes);
    std::string error;
    EXPECT_FALSE(wire::ReadSnapshot<int64_t>(source, &error).valid());
    EXPECT_NE(error.find("version"), std::string::npos) << error;
  }
}

// A snapshot written with one element type must not revive as another:
// the envelope carries an element-type tag checked before the config.
TEST(WireSnapshotTest, ElementTypeMismatchIsRejected) {
  SketchConfig config = SmallConfig("reservoir");
  auto sketch = SketchRegistry<int64_t>::Global().Create(config);
  wire::BufferSink sink;
  ASSERT_TRUE(wire::WriteSnapshot(sketch, config, sink));
  wire::BufferSource source(sink.bytes());
  std::string error;
  EXPECT_FALSE(wire::ReadSnapshot<double>(source, &error).valid());
  EXPECT_NE(error.find("element type mismatch"), std::string::npos) << error;
}

// Write/read symmetry: a config outside the wire limits must fail at
// *write* time (nothing emitted), never produce bytes Read would reject.
TEST(WireSnapshotTest, OutOfWireLimitConfigsFailAtWriteTime) {
  SketchConfig config = SmallConfig("space_saving");
  config.capacity = (uint64_t{1} << 26) + 1;  // above the wire capacity cap
  auto sketch = SketchRegistry<int64_t>::Global().Create(config);
  wire::BufferSink sink;
  EXPECT_FALSE(wire::WriteSnapshot(sketch, config, sink));
  EXPECT_TRUE(sink.bytes().empty());

  PipelineOptions options;
  options.num_shards = 2;
  ShardedPipeline<int64_t> pipeline(config, options);
  std::string error;
  const std::string path = TempPath("wire_overlimit.ck");
  EXPECT_FALSE(pipeline.Checkpoint(path, &error));
  EXPECT_NE(error.find("capacity"), std::string::npos) << error;
}

// --------------------------------------------------- fd (pipe) shipping ----

// FdSource knows nothing about its length (remaining() is nullopt), so
// decoding straight off a pipe exercises the codec's hard-cap validation
// branches — the cross-process shipping path of bench_t4.
TEST(WireFdTest, SnapshotShipsThroughAPipe) {
  SketchConfig config = SmallConfig("robust_sample");
  auto original = SketchRegistry<int64_t>::Global().Create(config);
  original.InsertBatch(TestStream(4000, 0xF1D0));

  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  {
    // Snapshot is a few KiB — far below the pipe buffer, so a same-thread
    // write-then-read cannot block.
    wire::FdSink sink(fds[1]);
    ASSERT_TRUE(wire::WriteSnapshot(original, config, sink));
    close(fds[1]);
  }
  wire::FdSource source(fds[0]);
  std::string error;
  auto revived = wire::ReadSnapshot<int64_t>(source, &error);
  close(fds[0]);
  ASSERT_TRUE(revived.valid()) << error;
  EXPECT_GT(source.bytes_read(), 0u);
  ExpectIdenticalAnswers(original, revived, "pipe round trip");
}

// A hung-up reader must latch ok() == false via EPIPE — the default
// SIGPIPE disposition would kill this process, so merely surviving the
// Append is the regression assertion.
TEST(WireFdTest, HungUpReaderLatchesErrorInsteadOfSigpipe) {
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  close(fds[0]);  // the reader goes away
  wire::FdSink sink(fds[1]);
  const uint8_t byte = 0x5A;
  sink.Append(&byte, 1);
  EXPECT_FALSE(sink.ok());
  close(fds[1]);
}

TEST(WireFdTest, TruncatedPipeStreamFailsCleanly) {
  SketchConfig config = SmallConfig("reservoir");
  auto original = SketchRegistry<int64_t>::Global().Create(config);
  original.InsertBatch(TestStream(2000, 0xF1D1));
  wire::BufferSink buffered;
  ASSERT_TRUE(wire::WriteSnapshot(original, config, buffered));

  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  {
    wire::FdSink sink(fds[1]);
    // Ship only half the message, then hang up.
    sink.Append(buffered.bytes().data(), buffered.bytes().size() / 2);
    close(fds[1]);
  }
  wire::FdSource source(fds[0]);
  std::string error;
  EXPECT_FALSE(wire::ReadSnapshot<int64_t>(source, &error).valid());
  EXPECT_FALSE(error.empty());
  close(fds[0]);
}

// Consecutive snapshots on one pipe must ship through a single
// BufferedSource: its read-ahead window may hold the head of the next
// message, so the aggregator's ship protocol keeps one adapter per
// stream. Three messages through one adapter is the regression check.
TEST(WireFdTest, ConsecutiveSnapshotsShipThroughOneBufferedSource) {
  SketchConfig config = SmallConfig("robust_sample");
  auto original = SketchRegistry<int64_t>::Global().Create(config);
  original.InsertBatch(TestStream(3000, 0xB1F));

  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  {
    // Three small snapshots stay far below the pipe buffer, so a
    // same-thread write-then-read cannot block.
    wire::FdSink fd_sink(fds[1]);
    wire::BufferedSink sink(fd_sink);
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(wire::WriteSnapshot(original, config, sink)) << i;
    }
    sink.Flush();
    ASSERT_TRUE(sink.ok());
    close(fds[1]);
  }
  wire::FdSource fd_source(fds[0]);
  wire::BufferedSource source(fd_source);
  for (int i = 0; i < 3; ++i) {
    std::string error;
    auto revived = wire::ReadSnapshot<int64_t>(source, &error);
    ASSERT_TRUE(revived.valid()) << "message " << i << ": " << error;
    ExpectIdenticalAnswers(original, revived, "buffered pipe message");
  }
  uint8_t extra = 0;
  EXPECT_FALSE(source.Read(&extra, 1));  // stream fully consumed
  close(fds[0]);
}

// ------------------------------------------------- compression (zstd) ----

// Snapshots requested with BodyEncoding::kZstd must round-trip with
// identical answers for every kind — compressed when support is compiled
// in, silently falling back to an uncompressed (still readable) frame
// when it is not. Either way no caller ever sees an unreadable file.
TEST(WireCompressionTest, CompressedSnapshotsRoundTripEveryKind) {
  const auto stream = TestStream(8000, 0x25D);
  for (const auto& kind : SketchRegistry<int64_t>::Global().Kinds()) {
    const SketchConfig config = SmallConfig(kind);
    auto original = SketchRegistry<int64_t>::Global().Create(config);
    original.InsertBatch(stream);
    wire::BufferSink sink;
    ASSERT_TRUE(wire::WriteSnapshot(original, config, sink,
                                    wire::BodyEncoding::kZstd))
        << kind;
    const uint8_t encoding = sink.bytes()[5];
    EXPECT_EQ(encoding, wire::ZstdSupported() ? 1u : 0u) << kind;
    wire::BufferSource source(sink.bytes());
    std::string error;
    auto revived = wire::ReadSnapshot<int64_t>(source, &error);
    ASSERT_TRUE(revived.valid()) << kind << ": " << error;
    ExpectIdenticalAnswers(original, revived, kind + " zstd snapshot");
  }
}

// The corruption contract holds for compressed bodies too: every
// truncation prefix and random bit flip must be rejected, never crash,
// never revive.
TEST(WireCompressionTest, CompressedSnapshotTruncationAndFlipsAreRejected) {
  if (!wire::ZstdSupported()) {
    GTEST_SKIP() << "zstd not compiled in; kZstd falls back to uncompressed "
                    "frames already covered by the v2 sweeps";
  }
  const SketchConfig config = SmallConfig("robust_sample");
  auto original = SketchRegistry<int64_t>::Global().Create(config);
  original.InsertBatch(TestStream(4000, 0x25E));
  wire::BufferSink sink;
  ASSERT_TRUE(wire::WriteSnapshot(original, config, sink,
                                  wire::BodyEncoding::kZstd));
  ASSERT_EQ(sink.bytes()[5], 1u);  // actually compressed
  const std::vector<uint8_t> good = sink.bytes();
  for (size_t len = 0; len < good.size(); ++len) {
    std::vector<uint8_t> truncated(good.begin(), good.begin() + len);
    wire::BufferSource source(truncated);
    std::string error;
    EXPECT_FALSE(wire::ReadSnapshot<int64_t>(source, &error).valid())
        << "prefix of " << len << " bytes was accepted";
  }
  Rng rng(0x25F);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<uint8_t> corrupt = good;
    const size_t pos = static_cast<size_t>(rng.NextBelow(corrupt.size()));
    corrupt[pos] ^= static_cast<uint8_t>(1u << rng.NextBelow(8));
    wire::BufferSource source(corrupt);
    std::string error;
    EXPECT_FALSE(wire::ReadSnapshot<int64_t>(source, &error).valid())
        << "flip at byte " << pos << " was accepted";
  }
}

// ------------------------------------------------- checkpoint / restore ----

// Checkpoint -> kill -> Restore -> continue must equal a run that never
// stopped, bit for bit, for every registered kind (everything is
// deterministic given the seed, and the checkpoint carries the RNG state).
TEST(WireCheckpointTest, RestoredPipelineContinuesBitIdentically) {
  constexpr size_t kBatches = 40;
  constexpr size_t kBatchSize = 500;
  for (const auto& kind : SketchRegistry<int64_t>::Global().Kinds()) {
    const SketchConfig config = SmallConfig(kind);
    PipelineOptions options;
    options.num_shards = 3;
    options.ring_capacity = 8;

    std::vector<std::vector<int64_t>> batches;
    for (size_t b = 0; b < kBatches; ++b) {
      batches.push_back(TestStream(kBatchSize, 0xF00D + b));
    }

    // Reference: uninterrupted run.
    ShardedPipeline<int64_t> uninterrupted(config, options);
    for (const auto& batch : batches) uninterrupted.Ingest(batch);
    auto expected = uninterrupted.Snapshot();

    // Interrupted run: first half, checkpoint, "crash" (destroy), restore,
    // second half.
    const std::string path = TempPath("wire_checkpoint_" + kind + ".ck");
    {
      ShardedPipeline<int64_t> first(config, options);
      for (size_t b = 0; b < kBatches / 2; ++b) first.Ingest(batches[b]);
      std::string error;
      ASSERT_TRUE(first.Checkpoint(path, &error)) << kind << ": " << error;
    }
    std::string error;
    auto restored =
        ShardedPipeline<int64_t>::Restore(path, options, &error);
    ASSERT_NE(restored, nullptr) << kind << ": " << error;
    EXPECT_EQ(restored->total_ingested(), kBatches / 2 * kBatchSize) << kind;
    for (size_t b = kBatches / 2; b < kBatches; ++b) {
      restored->Ingest(batches[b]);
    }
    auto actual = restored->Snapshot();
    ExpectIdenticalAnswers(expected, actual, kind + " checkpoint/restore");
    std::remove(path.c_str());
  }
}

TEST(WireCheckpointTest, CheckpointIsRepeatableAndRestorableMidStream) {
  const SketchConfig config = SmallConfig("robust_sample");
  PipelineOptions options;
  options.num_shards = 2;
  const std::string path = TempPath("wire_checkpoint_repeat.ck");
  ShardedPipeline<int64_t> pipeline(config, options);
  std::string error;
  for (int round = 0; round < 3; ++round) {
    pipeline.Ingest(TestStream(1000, 0x1000 + round));
    ASSERT_TRUE(pipeline.Checkpoint(path, &error)) << error;
  }
  auto restored = ShardedPipeline<int64_t>::Restore(path, options, &error);
  ASSERT_NE(restored, nullptr) << error;
  ExpectIdenticalAnswers(pipeline.Snapshot(), restored->Snapshot(),
                         "repeated checkpoint");
  std::remove(path.c_str());
}

// A zstd-compressed checkpoint must restore and continue bit-identically
// to an uninterrupted run — same contract as the uncompressed path. This
// is the round trip the sanitizer CI job exercises under ASan when
// libzstd is present (and the fallback path when it is not).
TEST(WireCheckpointTest, ZstdCheckpointRestoresBitIdentically) {
  const SketchConfig config = SmallConfig("robust_sample");
  PipelineOptions options;
  options.num_shards = 2;
  constexpr size_t kBatches = 8;

  std::vector<std::vector<int64_t>> batches;
  for (size_t b = 0; b < kBatches; ++b) {
    batches.push_back(TestStream(500, 0x25D0 + b));
  }
  ShardedPipeline<int64_t> uninterrupted(config, options);
  for (const auto& batch : batches) uninterrupted.Ingest(batch);

  const std::string path = TempPath("wire_checkpoint_zstd.ck");
  std::string error;
  {
    ShardedPipeline<int64_t> first(config, options);
    for (size_t b = 0; b < kBatches / 2; ++b) first.Ingest(batches[b]);
    ASSERT_TRUE(
        first.Checkpoint(path, &error, wire::BodyEncoding::kZstd))
        << error;
  }
  auto restored = ShardedPipeline<int64_t>::Restore(path, options, &error);
  ASSERT_NE(restored, nullptr) << error;
  for (size_t b = kBatches / 2; b < kBatches; ++b) {
    restored->Ingest(batches[b]);
  }
  ExpectIdenticalAnswers(uninterrupted.Snapshot(), restored->Snapshot(),
                         "zstd checkpoint/restore");
  std::remove(path.c_str());
}

TEST(WireCheckpointTest, RestoreRejectsBadInputs) {
  const SketchConfig config = SmallConfig("reservoir");
  PipelineOptions options;
  options.num_shards = 2;
  std::string error;

  // Missing file.
  EXPECT_EQ(ShardedPipeline<int64_t>::Restore(TempPath("wire_missing.ck"),
                                              options, &error),
            nullptr);
  EXPECT_FALSE(error.empty());

  const std::string path = TempPath("wire_checkpoint_bad.ck");
  {
    ShardedPipeline<int64_t> pipeline(config, options);
    pipeline.Ingest(TestStream(2000, 0x31));
    ASSERT_TRUE(pipeline.Checkpoint(path, &error)) << error;
  }
  // Shard-count mismatch.
  PipelineOptions wrong = options;
  wrong.num_shards = 4;
  EXPECT_EQ(ShardedPipeline<int64_t>::Restore(path, wrong, &error), nullptr);
  EXPECT_NE(error.find("shards"), std::string::npos) << error;

  // Element-type mismatch: an int64 checkpoint must not revive as double.
  EXPECT_EQ(ShardedPipeline<double>::Restore(path, options, &error), nullptr);
  EXPECT_NE(error.find("element type mismatch"), std::string::npos) << error;

  // Corrupted file: flip one byte in the middle.
  {
    wire::FileSource file(path);
    ASSERT_TRUE(file.open());
  }
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 40, SEEK_SET);
  const int c = std::fgetc(f);
  std::fseek(f, 40, SEEK_SET);
  std::fputc(c ^ 0x10, f);
  std::fclose(f);
  EXPECT_EQ(ShardedPipeline<int64_t>::Restore(path, options, &error),
            nullptr);
  EXPECT_FALSE(error.empty());
  std::remove(path.c_str());
}

// ------------------------------------------------- flight recorder ----

// A forced wire-codec failure must leave a flight-recorder dump naming
// the failing frame — the observability contract for corrupt snapshots
// and checkpoints (no silent rejection).
TEST(WireFlightRecorderTest, CorruptSnapshotLeavesDumpNamingTheFrame) {
  const SketchConfig config = SmallConfig("reservoir");
  auto sketch = SketchRegistry<int64_t>::Global().Create(config);
  sketch.InsertBatch(TestStream(1000, 0x77));
  wire::BufferSink sink;
  ASSERT_TRUE(wire::WriteSnapshot(sketch, config, sink));

  // Flip one byte in the middle of the body so the envelope checksum
  // catches it.
  std::vector<uint8_t> corrupt(sink.bytes().begin(), sink.bytes().end());
  corrupt[corrupt.size() / 2] ^= 0x40;

  std::string captured;
  obs::FlightRecorder::Global().SetErrorHook(
      [&captured](const std::string& dump) { captured = dump; });
  wire::BufferSource source(corrupt);
  std::string error;
  EXPECT_FALSE(wire::ReadSnapshot<int64_t>(source, &error).valid());
  obs::FlightRecorder::Global().SetErrorHook(nullptr);

#if RS_METRICS_ENABLED
  EXPECT_NE(error.find("checksum mismatch"), std::string::npos) << error;
  // The dump names the snapshot frame magic and the rejection reason.
  EXPECT_NE(captured.find("frame RSNP"), std::string::npos) << captured;
  EXPECT_NE(captured.find("checksum mismatch"), std::string::npos)
      << captured;
#else
  EXPECT_TRUE(captured.empty());
#endif
}

TEST(WireFlightRecorderTest, CorruptCheckpointLeavesDumpNamingTheFrame) {
  const SketchConfig config = SmallConfig("reservoir");
  PipelineOptions options;
  options.num_shards = 2;
  const std::string path = TempPath("wire_fr_checkpoint.ck");
  std::string error;
  {
    ShardedPipeline<int64_t> pipeline(config, options);
    pipeline.Ingest(TestStream(2000, 0x88));
    ASSERT_TRUE(pipeline.Checkpoint(path, &error)) << error;
  }
  // Truncate the file so the framed read fails partway.
  ASSERT_EQ(truncate(path.c_str(), 20), 0);

  std::string captured;
  obs::FlightRecorder::Global().SetErrorHook(
      [&captured](const std::string& dump) { captured = dump; });
  EXPECT_EQ(ShardedPipeline<int64_t>::Restore(path, options, &error),
            nullptr);
  obs::FlightRecorder::Global().SetErrorHook(nullptr);
  std::remove(path.c_str());

#if RS_METRICS_ENABLED
  EXPECT_NE(captured.find("frame RSCK"), std::string::npos) << captured;
#else
  EXPECT_TRUE(captured.empty());
#endif
}

}  // namespace
}  // namespace robust_sampling
