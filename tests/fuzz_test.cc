// Randomized cross-validation ("fuzz") suite: every nontrivial algorithm is
// checked against an independent reference implementation on thousands of
// random inputs with fixed seeds.
//
//  * BigUint arithmetic vs native __int128
//  * interval/prefix discrepancy vs an O(n^2) direct supremum
//  * GK summary invariants (rank-band width <= 2 eps n; rmin monotone)
//  * KLL weight conservation and rank-consistency under random merges
//  * conservative-update CountMin sandwiched between truth and plain CM
//  * reservoir inclusion probability under random stream lengths

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "core/big_uint.h"
#include "core/random.h"
#include "core/reservoir_sampler.h"
#include "gtest/gtest.h"
#include "heavy/count_min.h"
#include "heavy/exact_counter.h"
#include "quantiles/exact_quantiles.h"
#include "quantiles/gk_sketch.h"
#include "quantiles/kll_sketch.h"
#include "setsystem/discrepancy.h"

namespace robust_sampling {
namespace {

// ----------------------------------------------------------- BigUint ----

BigUint FromU128(unsigned __int128 v) {
  const uint64_t lo = static_cast<uint64_t>(v);
  const uint64_t hi = static_cast<uint64_t>(v >> 64);
  return BigUint(hi).ShiftLeft(64) + BigUint(lo);
}

TEST(BigUintFuzzTest, ArithmeticMatchesInt128) {
  Rng rng(0xF0);
  for (int trial = 0; trial < 3000; ++trial) {
    // Keep operands < 2^63 so products fit in 128 bits.
    const uint64_t a64 = rng.NextUint64() >> (1 + rng.NextBelow(40));
    const uint64_t b64 = rng.NextUint64() >> (1 + rng.NextBelow(40));
    const unsigned __int128 a = a64, b = b64;
    const BigUint A(a64), B(b64);
    EXPECT_EQ(A + B, FromU128(a + b));
    if (a64 >= b64) {
      EXPECT_EQ(A - B, FromU128(a - b));
    }
    EXPECT_EQ(A.MulU64(b64), FromU128(a * b));
    if (b64 != 0) {
      EXPECT_EQ(A.DivU64(b64), FromU128(a / b));
      EXPECT_EQ(A.ModU64(b64), static_cast<uint64_t>(a % b));
    }
    EXPECT_EQ(A < B, a < b);
    EXPECT_EQ(A == B, a == b);
  }
}

TEST(BigUintFuzzTest, ShiftRoundTrips) {
  Rng rng(0xF1);
  for (int trial = 0; trial < 2000; ++trial) {
    const BigUint v(rng.NextUint64());
    const uint32_t s = static_cast<uint32_t>(rng.NextBelow(300));
    EXPECT_EQ(v.ShiftLeft(s).ShiftRight(s), v);
  }
}

TEST(BigUintFuzzTest, MulDivRoundTripsMultiLimb) {
  Rng rng(0xF2);
  for (int trial = 0; trial < 1000; ++trial) {
    BigUint v(rng.NextUint64());
    v = v.ShiftLeft(static_cast<uint32_t>(rng.NextBelow(200)));
    v = v + BigUint(rng.NextUint64());
    const uint64_t d = rng.NextUint64() | 1;  // nonzero
    const BigUint q = v.DivU64(d);
    const uint64_t r = v.ModU64(d);
    EXPECT_EQ(q.MulU64(d) + BigUint(r), v);
    EXPECT_LT(r, d);
  }
}

// ------------------------------------------------------- Discrepancy ----

// O(n^2) direct supremum over intervals with endpoints at data values.
double SlowIntervalDiscrepancy(std::vector<double> x, std::vector<double> s) {
  std::vector<double> values = x;
  values.insert(values.end(), s.begin(), s.end());
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  double best = 0.0;
  for (size_t i = 0; i < values.size(); ++i) {
    for (size_t j = i; j < values.size(); ++j) {
      const double lo = values[i], hi = values[j];
      size_t cx = 0, cs = 0;
      for (double v : x) cx += v >= lo && v <= hi;
      for (double v : s) cs += v >= lo && v <= hi;
      best = std::max(best,
                      std::abs(static_cast<double>(cx) / x.size() -
                               static_cast<double>(cs) / s.size()));
    }
  }
  return best;
}

TEST(DiscrepancyFuzzTest, IntervalMatchesQuadraticReference) {
  Rng rng(0xF3);
  for (int trial = 0; trial < 60; ++trial) {
    std::vector<double> x, s;
    const size_t nx = 2 + rng.NextBelow(40);
    const size_t ns = 1 + rng.NextBelow(12);
    for (size_t i = 0; i < nx; ++i) {
      x.push_back(static_cast<double>(rng.NextBelow(15)));
    }
    for (size_t i = 0; i < ns; ++i) {
      s.push_back(static_cast<double>(rng.NextBelow(15)));
    }
    EXPECT_NEAR(IntervalDiscrepancy(x, s), SlowIntervalDiscrepancy(x, s),
                1e-12)
        << "trial " << trial;
  }
}

TEST(DiscrepancyFuzzTest, PrefixIsKsDistance) {
  // Prefix discrepancy equals the classical two-sided KS statistic,
  // computed here directly from sorted arrays.
  Rng rng(0xF4);
  for (int trial = 0; trial < 60; ++trial) {
    std::vector<double> x, s;
    for (size_t i = 0; i < 50; ++i) x.push_back(rng.NextDouble());
    for (size_t i = 0; i < 9; ++i) s.push_back(rng.NextDouble());
    double ks = 0.0;
    for (double v : x) {
      size_t cx = 0, cs = 0;
      for (double w : x) cx += w <= v;
      for (double w : s) cs += w <= v;
      ks = std::max(ks, std::abs(static_cast<double>(cx) / x.size() -
                                 static_cast<double>(cs) / s.size()));
    }
    for (double v : s) {
      size_t cx = 0, cs = 0;
      for (double w : x) cx += w <= v;
      for (double w : s) cs += w <= v;
      ks = std::max(ks, std::abs(static_cast<double>(cx) / x.size() -
                                 static_cast<double>(cs) / s.size()));
    }
    EXPECT_NEAR(PrefixDiscrepancy(x, s), ks, 1e-12);
  }
}

// ---------------------------------------------------------------- GK ----

TEST(GkFuzzTest, AllQuantilesWithinEpsOnRandomDistributions) {
  Rng rng(0xF5);
  const double eps = 0.05;
  for (int trial = 0; trial < 8; ++trial) {
    GkSketch g(eps);
    ExactQuantiles exact;
    const size_t n = 5000 + rng.NextBelow(10000);
    const int dist = trial % 4;
    for (size_t i = 0; i < n; ++i) {
      double v;
      switch (dist) {
        case 0: v = rng.NextDouble(); break;
        case 1: v = static_cast<double>(i); break;                  // sorted
        case 2: v = static_cast<double>(n - i); break;              // reverse
        default: v = static_cast<double>(rng.NextBelow(7)); break;  // ties
      }
      g.Insert(v);
      exact.Insert(v);
    }
    for (double q = 0.05; q < 1.0; q += 0.05) {
      EXPECT_LE(exact.RankError(q, g.Quantile(q)), eps + 1e-9)
          << "trial " << trial << " q=" << q;
    }
  }
}

// --------------------------------------------------------------- KLL ----

TEST(KllFuzzTest, RandomMergeTreesConserveWeightAndAccuracy) {
  Rng rng(0xF6);
  for (int trial = 0; trial < 6; ++trial) {
    // Build 8 sketches over random chunks, merge them in random order.
    std::vector<KllSketch> parts;
    ExactQuantiles exact;
    size_t total = 0;
    for (int p = 0; p < 8; ++p) {
      parts.emplace_back(256, MixSeed(0xF6, trial * 100 + p));
      const size_t n = 1000 + rng.NextBelow(4000);
      total += n;
      for (size_t i = 0; i < n; ++i) {
        const double v = rng.NextGaussian() * (p + 1);
        parts.back().Insert(v);
        exact.Insert(v);
      }
    }
    while (parts.size() > 1) {
      const size_t a = rng.NextBelow(parts.size());
      size_t b = rng.NextBelow(parts.size());
      while (b == a) b = rng.NextBelow(parts.size());
      parts[std::min(a, b)].Merge(parts[std::max(a, b)]);
      parts.erase(parts.begin() + static_cast<int64_t>(std::max(a, b)));
    }
    EXPECT_EQ(parts[0].StreamSize(), total);
    EXPECT_NEAR(parts[0].RankFraction(1e18), 1.0, 1e-12);
    for (double q : {0.1, 0.5, 0.9}) {
      EXPECT_LE(exact.RankError(q, parts[0].Quantile(q)), 0.08)
          << "trial " << trial << " q=" << q;
    }
  }
}

// ---------------------------------------------- conservative CountMin ----

TEST(CountMinFuzzTest, ConservativeSandwichedBetweenTruthAndPlain) {
  Rng rng(0xF7);
  for (int trial = 0; trial < 10; ++trial) {
    CountMinSketch plain(64, 3, 42 + trial);
    CountMinSketch cu(64, 3, 42 + trial, 1024, /*conservative_update=*/true);
    ExactCounter exact;
    for (int i = 0; i < 5000; ++i) {
      const int64_t x = static_cast<int64_t>(rng.NextBelow(500));
      plain.Insert(x);
      cu.Insert(x);
      exact.Insert(x);
    }
    for (int64_t x = 0; x < 500; ++x) {
      const uint64_t truth = exact.Count(x);
      EXPECT_GE(cu.EstimateCount(x), truth) << "x=" << x;
      EXPECT_LE(cu.EstimateCount(x), plain.EstimateCount(x)) << "x=" << x;
    }
  }
}

// ----------------------------------------------------------- Reservoir ----

TEST(ReservoirFuzzTest, InclusionProbabilityAcrossRandomShapes) {
  Rng shape_rng(0xF8);
  for (int shape = 0; shape < 4; ++shape) {
    const size_t k = 1 + shape_rng.NextBelow(6);
    const size_t n = k + 1 + shape_rng.NextBelow(30);
    constexpr size_t kRuns = 12000;
    std::vector<int> counts(n, 0);
    for (size_t run = 0; run < kRuns; ++run) {
      ReservoirSampler<int64_t> s(k, MixSeed(0xF8A, shape * 100000 + run));
      for (size_t i = 0; i < n; ++i) s.Insert(static_cast<int64_t>(i));
      for (int64_t v : s.sample()) ++counts[static_cast<size_t>(v)];
    }
    const double p = static_cast<double>(k) / static_cast<double>(n);
    const double expected = kRuns * p;
    const double sd = std::sqrt(expected * (1.0 - p));
    for (size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(counts[i], expected, 6.0 * sd + 1.0)
          << "shape " << shape << " (k=" << k << ", n=" << n << ") item "
          << i;
    }
  }
}

}  // namespace
}  // namespace robust_sampling
