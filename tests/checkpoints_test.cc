#include "core/checkpoints.h"

#include <cmath>

#include "gtest/gtest.h"

namespace robust_sampling {
namespace {

TEST(CheckpointScheduleTest, GeometricStartsAtFirstEndsAtN) {
  const auto s = CheckpointSchedule::Geometric(10, 1000, 0.25);
  ASSERT_FALSE(s.points().empty());
  EXPECT_EQ(s.points().front(), 10u);
  EXPECT_EQ(s.points().back(), 1000u);
}

TEST(CheckpointScheduleTest, GeometricIsStrictlyIncreasing) {
  const auto s = CheckpointSchedule::Geometric(5, 100000, 0.1);
  for (size_t i = 1; i < s.points().size(); ++i) {
    EXPECT_LT(s.points()[i - 1], s.points()[i]);
  }
}

TEST(CheckpointScheduleTest, GeometricGapRatioBounded) {
  const double beta = 0.25;
  const auto s = CheckpointSchedule::Geometric(8, 1 << 20, beta);
  for (size_t i = 1; i < s.points().size(); ++i) {
    const double ratio = static_cast<double>(s.points()[i]) /
                         static_cast<double>(s.points()[i - 1]);
    // Each checkpoint is the largest integer <= (1+beta) * previous (but
    // always advances by >= 1), so the ratio never exceeds 1 + beta.
    EXPECT_LE(ratio, 1.0 + beta + 1e-12);
  }
}

TEST(CheckpointScheduleTest, GeometricCountIsLogarithmic) {
  const size_t n = 1 << 20;
  const double beta = 0.25;
  const auto s = CheckpointSchedule::Geometric(16, n, beta);
  // t ~ log_{1+beta}(n/first) plus the initial rounding regime; a generous
  // upper bound of 4x suffices to confirm logarithmic (not linear) growth.
  const double expected =
      std::log(static_cast<double>(n) / 16.0) / std::log1p(beta);
  EXPECT_LT(static_cast<double>(s.size()), 4.0 * expected + 20.0);
}

TEST(CheckpointScheduleTest, GeometricDegenerateFirstEqualsN) {
  const auto s = CheckpointSchedule::Geometric(50, 50, 0.25);
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s.points()[0], 50u);
}

TEST(CheckpointScheduleTest, GeometricAlwaysAdvancesForTinyBeta) {
  // With beta so small that (1+beta)*i floors back to i, the schedule must
  // still advance by one each step.
  const auto s = CheckpointSchedule::Geometric(1, 20, 1e-9);
  EXPECT_EQ(s.size(), 20u);
  for (size_t i = 0; i < s.size(); ++i) EXPECT_EQ(s.points()[i], i + 1);
}

TEST(CheckpointScheduleTest, EveryStride) {
  const auto s = CheckpointSchedule::Every(10, 35);
  const std::vector<size_t> expected{10, 20, 30, 35};
  EXPECT_EQ(s.points(), expected);
}

TEST(CheckpointScheduleTest, EveryStrideDividesN) {
  const auto s = CheckpointSchedule::Every(5, 20);
  const std::vector<size_t> expected{5, 10, 15, 20};
  EXPECT_EQ(s.points(), expected);
}

TEST(CheckpointScheduleTest, AllCoversEveryRound) {
  const auto s = CheckpointSchedule::All(7);
  ASSERT_EQ(s.size(), 7u);
  for (size_t i = 1; i <= 7; ++i) EXPECT_TRUE(s.Contains(i));
}

TEST(CheckpointScheduleTest, ContainsFindsOnlyScheduledRounds) {
  const auto s = CheckpointSchedule::Every(10, 100);
  EXPECT_TRUE(s.Contains(10));
  EXPECT_TRUE(s.Contains(100));
  EXPECT_FALSE(s.Contains(11));
  EXPECT_FALSE(s.Contains(0));
  EXPECT_FALSE(s.Contains(101));
}

TEST(CheckpointScheduleDeathTest, InvalidArgumentsAbort) {
  EXPECT_DEATH(CheckpointSchedule::Geometric(0, 10, 0.5), "first");
  EXPECT_DEATH(CheckpointSchedule::Geometric(11, 10, 0.5), "first");
  EXPECT_DEATH(CheckpointSchedule::Geometric(1, 10, 0.0), "beta");
  EXPECT_DEATH(CheckpointSchedule::Every(0, 10), "stride");
}

// Theorem 1.4 shape check across (n, beta) grid.
class GeometricScheduleSweep
    : public ::testing::TestWithParam<std::pair<size_t, double>> {};

TEST_P(GeometricScheduleSweep, EndsAtNAndRatioBounded) {
  const auto [n, beta] = GetParam();
  const size_t first = 4;
  if (first > n) GTEST_SKIP();
  const auto s = CheckpointSchedule::Geometric(first, n, beta);
  EXPECT_EQ(s.points().back(), n);
  for (size_t i = 1; i < s.points().size(); ++i) {
    EXPECT_LE(static_cast<double>(s.points()[i]),
              (1.0 + beta) * static_cast<double>(s.points()[i - 1]) + 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, GeometricScheduleSweep,
    ::testing::Values(std::pair<size_t, double>{100, 0.05},
                      std::pair<size_t, double>{1000, 0.1},
                      std::pair<size_t, double>{10000, 0.25},
                      std::pair<size_t, double>{100000, 0.5},
                      std::pair<size_t, double>{12345, 0.0125}));

}  // namespace
}  // namespace robust_sampling
