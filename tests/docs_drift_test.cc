// Registry-vs-docs drift guard: every sketch kind and adversary kind
// registered in the global registries must be documented (as an inline
// `key` code span) in docs/registry.md. Runs as an ordinary unit test so
// CI fails the moment a new kind lands without documentation.
//
// The docs path is injected by CMake as RS_SOURCE_DIR (the repository
// root), so the test works from any build directory.

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "attacklab/adversary_registry.h"
#include "core/big_uint.h"
#include "gtest/gtest.h"
#include "obs/catalog.h"
#include "pipeline/sketch_registry.h"

namespace robust_sampling {
namespace {

std::string ReadDoc(const std::string& relative) {
  const std::string path = std::string(RS_SOURCE_DIR) + "/" + relative;
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << "cannot open " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::string ReadRegistryDoc() { return ReadDoc("docs/registry.md"); }

// `key` must appear as an inline code span — the convention every
// registry table in docs/registry.md uses.
bool DocumentsKey(const std::string& doc, const std::string& key) {
  return doc.find("`" + key + "`") != std::string::npos;
}

TEST(DocsDriftTest, EverySketchKindIsDocumented) {
  const std::string doc = ReadRegistryDoc();
  ASSERT_FALSE(doc.empty());
  // int64_t registers the full built-in set (samplers + kll + the three
  // frequency summaries); double and BigUint register subsets of it.
  for (const auto& kind : SketchRegistry<int64_t>::Global().Kinds()) {
    EXPECT_TRUE(DocumentsKey(doc, kind))
        << "sketch kind '" << kind
        << "' is registered but not documented in docs/registry.md";
  }
}

TEST(DocsDriftTest, EveryAdversaryKindIsDocumented) {
  const std::string doc = ReadRegistryDoc();
  ASSERT_FALSE(doc.empty());
  for (const auto& kind : AdversaryRegistry<int64_t>::Global().Kinds()) {
    EXPECT_TRUE(DocumentsKey(doc, kind))
        << "adversary kind '" << kind
        << "' is registered but not documented in docs/registry.md";
  }
  for (const auto& kind : AdversaryRegistry<BigUint>::Global().Kinds()) {
    EXPECT_TRUE(DocumentsKey(doc, kind)) << kind;
  }
}

// The capability matrix must stay in step with the capability enum: each
// capability column keyword appears in the doc.
TEST(DocsDriftTest, CapabilityMatrixCoversTheCapabilityEnum) {
  const std::string doc = ReadRegistryDoc();
  for (const char* name : {"SampleView", "Quantile", "EstimateFrequency",
                           "HeavyHitters", "SerializeTo", "DeserializeFrom"}) {
    EXPECT_TRUE(doc.find(name) != std::string::npos)
        << "capability '" << name << "' missing from docs/registry.md";
  }
}

// Every metric in the obs catalog must be documented in
// docs/observability.md — same inline-code-span convention as the
// registry doc. The catalog is static data, so this holds in both
// RS_METRICS build modes.
TEST(DocsDriftTest, EveryRegisteredMetricIsDocumented) {
  const std::string doc = ReadDoc("docs/observability.md");
  ASSERT_FALSE(doc.empty());
  const auto descriptors = obs::AllMetricDescriptors();
  ASSERT_GE(descriptors.size(), 20u);
  for (const auto& d : descriptors) {
    EXPECT_TRUE(DocumentsKey(doc, d.name))
        << "metric '" << d.name
        << "' is registered but not documented in docs/observability.md";
  }
}

}  // namespace
}  // namespace robust_sampling
