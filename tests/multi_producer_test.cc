// Multi-producer ingestion correctness: P producer threads publishing
// concurrently through their own SPSC ring columns (the P x S fan-in
// matrix) must lose nothing, duplicate nothing, and keep every control-
// surface contract — mid-stream snapshots, per-producer flush fencing,
// and checkpoint/restore — while the workers race them. Tiny ring
// capacities keep every blocking edge hot.
//
// Also the bit-identity oracle for the vectorized hash-partition pass:
// with a single producer, the counting-sort scatter must yield exactly
// the per-shard sequences of the per-element routing path, asserted as
// checkpoint *byte* equality for CountMin and SpaceSaving.
//
// This file is part of the TSan CI job (test regex `^(pipeline|obs|
// multi_producer)`): the per-lane pushed/completed flush fence replaced a
// plain uint64_t `pushed` that raced once Flush could run concurrently
// with ingestion — FlushRacesIngestionCleanly is the regression test that
// fails under TSan on the old protocol.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/random.h"
#include "gtest/gtest.h"
#include "pipeline/sharded_pipeline.h"
#include "pipeline/stream_sketch.h"
#include "stream/generators.h"

namespace robust_sampling {
namespace {

std::string TempPath(const std::string& name) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr ? dir : "/tmp") + "/" + name;
}

std::vector<char> ReadAllBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
}

SketchConfig CountMinConfig(uint64_t seed) {
  SketchConfig config;
  config.kind = "count_min";
  config.width = 256;
  config.depth = 4;
  config.seed = seed;
  return config;
}

/// Runs P producer threads, each ingesting its contiguous slice of
/// `stream` through its own registered handle in seeded-random batch
/// sizes (mixing copying and borrowed ingestion — the stream outlives the
/// pipeline, satisfying the borrow contract). Returns after all joined.
void RunProducers(ShardedPipeline<int64_t>& pipeline,
                  std::span<const int64_t> stream, size_t num_producers,
                  uint64_t seed) {
  std::vector<std::thread> threads;
  const size_t chunk = stream.size() / num_producers;
  for (size_t p = 0; p < num_producers; ++p) {
    const size_t begin = p * chunk;
    const size_t end =
        p + 1 == num_producers ? stream.size() : begin + chunk;
    threads.emplace_back([&pipeline, stream, begin, end, seed, p] {
      auto& producer = pipeline.RegisterProducer();
      Rng rng(MixSeed(seed, uint64_t{p}));
      size_t offset = begin;
      while (offset < end) {
        const size_t len =
            std::min<size_t>(1 + rng.NextBelow(501), end - offset);
        if (rng.NextBelow(2) == 0) {
          producer.Ingest(stream.subspan(offset, len));
        } else {
          producer.IngestBorrowed(stream.subspan(offset, len));
        }
        offset += len;
      }
    });
  }
  for (auto& t : threads) t.join();
}

// --- no loss, no duplication ------------------------------------------------

// CountMin is linear, so its state is invariant under any reordering of
// the same element multiset: a 4-shard hash-partitioned pipeline fed by 4
// racing producers must answer every frequency query exactly like a
// 1-shard reference fed serially — any lost or duplicated element would
// shift some counter.
TEST(MultiProducerTest, NoLossNoDuplicateAgainstSerialReference) {
  constexpr size_t kProducers = 4;
  const auto stream = ZipfIntStream(160000, 5000, 1.2, 1201);

  PipelineOptions options;
  options.num_shards = 4;
  options.partition = PartitionPolicy::kHash;
  options.ring_capacity = 2;  // tiny rings: constant backpressure
  options.max_producers = kProducers;
  ShardedPipeline<int64_t> pipeline(CountMinConfig(1297), options);
  RunProducers(pipeline, stream, kProducers, 1301);

  PipelineOptions reference_options;
  reference_options.num_shards = 1;
  ShardedPipeline<int64_t> reference(CountMinConfig(1297),
                                     reference_options);
  reference.Ingest(stream);

  EXPECT_EQ(pipeline.total_ingested(), stream.size());
  EXPECT_EQ(pipeline.registered_producers(), kProducers);
  const auto sizes = pipeline.ShardStreamSizes();
  size_t total = 0;
  for (size_t s : sizes) total += s;
  EXPECT_EQ(total, stream.size());

  const auto merged = pipeline.Snapshot();
  const auto single = reference.Snapshot();
  ASSERT_EQ(merged.StreamSize(), single.StreamSize());
  for (int64_t x = 1; x <= 5000; x += 7) {
    ASSERT_EQ(merged.EstimateFrequency(x), single.EstimateFrequency(x))
        << x;
  }
}

// Round-robin with a sampler: conservation (StreamSize == everything the
// producers pushed) under racing producers and single-slot rings.
TEST(MultiProducerTest, RoundRobinConservesEveryElement) {
  constexpr size_t kProducers = 4;
  const auto stream = UniformIntStream(200000, 1 << 20, 1303);
  SketchConfig config;
  config.kind = "robust_sample";
  config.eps = 0.1;
  config.delta = 0.05;
  config.seed = 1307;
  PipelineOptions options;
  options.num_shards = 4;
  options.ring_capacity = 1;  // single-slot: worst-case contention
  options.max_producers = kProducers;
  ShardedPipeline<int64_t> pipeline(config, options);
  RunProducers(pipeline, stream, kProducers, 1309);
  EXPECT_EQ(pipeline.total_ingested(), stream.size());
  EXPECT_EQ(pipeline.Snapshot().StreamSize(), stream.size());
}

// --- control surface under concurrent producers -----------------------------

// Snapshots taken from a control thread while 4 producers race: each one
// flushes first, so observed StreamSize must be monotone non-decreasing
// and end exactly at the stream length after the producers join.
TEST(MultiProducerTest, MidStreamSnapshotsAreMonotoneUnderIngestion) {
  constexpr size_t kProducers = 4;
  const auto stream = UniformIntStream(150000, 1 << 20, 1319);
  PipelineOptions options;
  options.num_shards = 2;
  options.partition = PartitionPolicy::kHash;
  options.ring_capacity = 2;
  options.max_producers = kProducers;
  ShardedPipeline<int64_t> pipeline(CountMinConfig(1321), options);

  std::atomic<bool> done{false};
  size_t last = 0;
  bool monotone = true;
  std::thread snapshotter([&] {
    while (!done.load(std::memory_order_relaxed)) {
      const size_t size = pipeline.Snapshot().StreamSize();
      if (size < last) monotone = false;
      last = size;
    }
  });
  RunProducers(pipeline, stream, kProducers, 1327);
  done.store(true, std::memory_order_relaxed);
  snapshotter.join();
  EXPECT_TRUE(monotone);
  EXPECT_LE(last, stream.size());
  EXPECT_EQ(pipeline.Snapshot().StreamSize(), stream.size());
}

// Checkpoints written while producers are still publishing must be
// valid, restorable files (the flush-fenced prefix plus possibly more,
// nothing half-folded); a checkpoint after quiescence must capture the
// exact final state.
TEST(MultiProducerTest, CheckpointRestoreUnderConcurrentIngestion) {
  constexpr size_t kProducers = 4;
  const auto stream = ZipfIntStream(120000, 4000, 1.2, 1361);
  const std::string mid_path = TempPath("multi_producer_mid.ck");
  const std::string final_path = TempPath("multi_producer_final.ck");

  PipelineOptions options;
  options.num_shards = 2;
  options.partition = PartitionPolicy::kHash;
  options.ring_capacity = 4;
  options.max_producers = kProducers;
  ShardedPipeline<int64_t> pipeline(CountMinConfig(1367), options);

  std::atomic<bool> done{false};
  std::thread checkpointer([&] {
    std::string error;
    while (!done.load(std::memory_order_relaxed)) {
      ASSERT_TRUE(pipeline.Checkpoint(mid_path, &error)) << error;
    }
  });
  RunProducers(pipeline, stream, kProducers, 1373);
  done.store(true, std::memory_order_relaxed);
  checkpointer.join();

  // The mid-stream checkpoint restores into a queryable pipeline whose
  // stream size never exceeds what was published.
  std::string error;
  auto mid = ShardedPipeline<int64_t>::Restore(mid_path, options, &error);
  ASSERT_NE(mid, nullptr) << error;
  EXPECT_LE(mid->Snapshot().StreamSize(), stream.size());
  EXPECT_LE(mid->total_ingested(), stream.size());

  // Producers quiescent: the checkpoint is exact and the restored
  // pipeline continues ingestion.
  ASSERT_TRUE(pipeline.Checkpoint(final_path, &error)) << error;
  auto restored =
      ShardedPipeline<int64_t>::Restore(final_path, options, &error);
  ASSERT_NE(restored, nullptr) << error;
  EXPECT_EQ(restored->Snapshot().StreamSize(), stream.size());
  for (int64_t x = 1; x <= 4000; x += 13) {
    ASSERT_EQ(restored->Snapshot().EstimateFrequency(x),
              pipeline.Snapshot().EstimateFrequency(x))
        << x;
  }
  restored->Ingest(std::span<const int64_t>(stream.data(), 1000));
  EXPECT_EQ(restored->Snapshot().StreamSize(), stream.size() + 1000);
  std::remove(mid_path.c_str());
  std::remove(final_path.c_str());
}

// --- vectorized hash partition bit-identity ---------------------------------

// The counting-sort scatter and the per-element routing loop must deliver
// the same elements in the same order to every shard. Order matters for
// SpaceSaving (evictions depend on arrival order), so checkpoint *byte*
// equality across the two paths is the strongest possible statement:
// every shard's full serialized state — counters, heap order and all — is
// identical.
void ExpectPartitionPathsBitIdentical(const SketchConfig& config) {
  const auto stream = ZipfIntStream(100000, 3000, 1.1, 1399);
  auto run = [&](bool vectorized) {
    PipelineOptions options;
    options.num_shards = 4;
    options.partition = PartitionPolicy::kHash;
    options.ring_capacity = 8;
    options.vectorized_hash_partition = vectorized;
    ShardedPipeline<int64_t> pipeline(config, options);
    Rng rng(1409);  // same batch boundaries for both runs
    size_t offset = 0;
    while (offset < stream.size()) {
      const size_t len = std::min<size_t>(1 + rng.NextBelow(777),
                                          stream.size() - offset);
      pipeline.Ingest(std::span<const int64_t>(stream.data() + offset, len));
      offset += len;
    }
    const std::string path = TempPath(
        "multi_producer_identity_" + config.kind +
        (vectorized ? "_vec.ck" : "_ref.ck"));
    std::string error;
    EXPECT_TRUE(pipeline.Checkpoint(path, &error)) << error;
    std::vector<char> bytes = ReadAllBytes(path);
    std::remove(path.c_str());
    EXPECT_FALSE(bytes.empty());
    return bytes;
  };
  EXPECT_EQ(run(true), run(false)) << config.kind;
}

TEST(MultiProducerTest, VectorizedPartitionBitIdenticalCountMin) {
  ExpectPartitionPathsBitIdentical(CountMinConfig(1423));
}

TEST(MultiProducerTest, VectorizedPartitionBitIdenticalSpaceSaving) {
  SketchConfig config;
  config.kind = "space_saving";
  config.capacity = 64;
  config.seed = 1427;
  ExpectPartitionPathsBitIdentical(config);
}

// --- flush fencing ----------------------------------------------------------

// Regression test for the latent Flush race: the old protocol read a
// plain (non-atomic) per-shard `pushed` counter while the producer thread
// incremented it — a data race TSan reports the moment Flush runs
// concurrently with ingestion. The per-lane atomic pushed/completed fence
// must keep this exact interleaving clean AND honor the semantic
// contract: Flush observes every element published before it.
TEST(MultiProducerTest, FlushRacesIngestionCleanly) {
  const auto stream = UniformIntStream(120000, 1 << 20, 1429);
  PipelineOptions options;
  options.num_shards = 4;
  options.partition = PartitionPolicy::kHash;
  options.ring_capacity = 2;
  options.max_producers = 2;
  ShardedPipeline<int64_t> pipeline(CountMinConfig(1433), options);

  constexpr size_t kBatch = 256;
  constexpr size_t kPrefixBatches = 100;  // flag raised after this many
  std::atomic<size_t> published_before_flag{0};
  std::atomic<bool> flag{false};
  std::thread producer([&] {
    auto& handle = pipeline.RegisterProducer();
    size_t published = 0;
    for (size_t i = 0; i + kBatch <= stream.size(); i += kBatch) {
      handle.Ingest(std::span<const int64_t>(stream.data() + i, kBatch));
      published += kBatch;
      if (i / kBatch + 1 == kPrefixBatches) {
        published_before_flag.store(published, std::memory_order_release);
        flag.store(true, std::memory_order_release);
      }
    }
  });

  // Race Flush against the ingesting producer the whole way through (the
  // TSan half of the regression), then verify the fence semantics once
  // the flag is up.
  while (!flag.load(std::memory_order_acquire)) {
    pipeline.Flush();
  }
  pipeline.Flush();
  const size_t fenced = published_before_flag.load(std::memory_order_acquire);
  // Every element published before the Flush must already be folded; the
  // snapshot may contain more (the producer kept going), never less.
  EXPECT_GE(pipeline.Snapshot().StreamSize(), fenced);
  producer.join();
  pipeline.Flush();
  EXPECT_EQ(pipeline.Snapshot().StreamSize(), pipeline.total_ingested());
}

}  // namespace
}  // namespace robust_sampling
