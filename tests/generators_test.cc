#include "stream/generators.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>

#include "core/random.h"
#include "gtest/gtest.h"
#include "stream/zipf.h"

namespace robust_sampling {
namespace {

TEST(ZipfDistributionTest, ProbabilitiesSumToOne) {
  ZipfDistribution z(100, 1.1);
  double total = 0.0;
  for (int64_t i = 1; i <= 100; ++i) total += z.Probability(i);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfDistributionTest, ProbabilitiesAreDecreasing) {
  ZipfDistribution z(50, 1.0);
  for (int64_t i = 2; i <= 50; ++i) {
    EXPECT_LE(z.Probability(i), z.Probability(i - 1) + 1e-15);
  }
}

TEST(ZipfDistributionTest, ZeroExponentIsUniform) {
  ZipfDistribution z(10, 0.0);
  for (int64_t i = 1; i <= 10; ++i) {
    EXPECT_NEAR(z.Probability(i), 0.1, 1e-12);
  }
}

TEST(ZipfDistributionTest, SamplesMatchProbabilities) {
  ZipfDistribution z(20, 1.2);
  Rng rng(5);
  constexpr int kDraws = 200000;
  std::vector<int> counts(21, 0);
  for (int i = 0; i < kDraws; ++i) {
    const int64_t v = z.Sample(rng);
    ASSERT_GE(v, 1);
    ASSERT_LE(v, 20);
    ++counts[v];
  }
  for (int64_t i = 1; i <= 20; ++i) {
    const double expected = kDraws * z.Probability(i);
    EXPECT_NEAR(counts[i], expected, 6.0 * std::sqrt(expected) + 6.0)
        << "element " << i;
  }
}

TEST(ZipfDistributionTest, HeadDominatesForLargeExponent) {
  ZipfDistribution z(1000, 2.0);
  EXPECT_GT(z.Probability(1), 0.5);
}

TEST(UniformIntStreamTest, RangeAndDeterminism) {
  const auto a = UniformIntStream(1000, 50, 7);
  const auto b = UniformIntStream(1000, 50, 7);
  EXPECT_EQ(a, b);
  for (int64_t v : a) {
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 50);
  }
}

TEST(UniformIntStreamTest, CoversUniverse) {
  const auto s = UniformIntStream(5000, 10, 11);
  std::vector<int> counts(11, 0);
  for (int64_t v : s) ++counts[v];
  for (int64_t i = 1; i <= 10; ++i) EXPECT_GT(counts[i], 0);
}

TEST(ZipfIntStreamTest, SkewedTowardSmallElements) {
  const auto s = ZipfIntStream(10000, 1000, 1.5, 13);
  size_t head = 0;
  for (int64_t v : s) head += v <= 10;
  // Zipf(1.5) over 1000 elements puts well over half the mass on the top 10.
  EXPECT_GT(head, s.size() / 2);
}

TEST(SortedIntStreamTest, AscendingWithWraparound) {
  const auto s = SortedIntStream(25, 10);
  for (size_t i = 0; i < s.size(); ++i) {
    EXPECT_EQ(s[i], static_cast<int64_t>(i % 10) + 1);
  }
}

TEST(GaussianIntStreamTest, ClampedAndCentered) {
  const auto s = GaussianIntStream(20000, 1000, 0.5, 0.1, 17);
  double sum = 0.0;
  for (int64_t v : s) {
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 1000);
    sum += static_cast<double>(v);
  }
  EXPECT_NEAR(sum / static_cast<double>(s.size()), 500.0, 5.0);
}

TEST(UniformDoubleStreamTest, RangeRespected) {
  const auto s = UniformDoubleStream(5000, -2.0, 3.0, 19);
  for (double v : s) {
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
  const double mean = std::accumulate(s.begin(), s.end(), 0.0) / s.size();
  EXPECT_NEAR(mean, 0.5, 0.1);
}

TEST(UniformPointStreamTest, DimsAndRange) {
  const auto s = UniformPointStream(1000, 3, 0.0, 1.0, 23);
  for (const Point& p : s) {
    ASSERT_EQ(p.size(), 3u);
    for (double c : p) {
      EXPECT_GE(c, 0.0);
      EXPECT_LT(c, 1.0);
    }
  }
}

TEST(GaussianMixturePointStreamTest, PointsClusterAroundCenters) {
  const std::vector<Point> centers{{0.0, 0.0}, {10.0, 10.0}};
  const auto s = GaussianMixturePointStream(4000, centers, 0.5, 29);
  size_t near_any = 0;
  for (const Point& p : s) {
    for (const Point& c : centers) {
      const double dx = p[0] - c[0], dy = p[1] - c[1];
      if (std::sqrt(dx * dx + dy * dy) < 3.0) {
        ++near_any;
        break;
      }
    }
  }
  // With sd = 0.5, essentially every point is within 3.0 of its center.
  EXPECT_GT(near_any, s.size() * 99 / 100);
}

TEST(GaussianMixturePointStreamTest, BothCentersUsed) {
  const std::vector<Point> centers{{0.0, 0.0}, {10.0, 10.0}};
  const auto s = GaussianMixturePointStream(1000, centers, 0.1, 31);
  size_t near_first = 0;
  for (const Point& p : s) near_first += p[0] < 5.0;
  EXPECT_GT(near_first, 300u);
  EXPECT_LT(near_first, 700u);
}

TEST(GeneratorDeathTest, InvalidParametersAbort) {
  EXPECT_DEATH(UniformIntStream(10, 0, 1), "universe_size");
  EXPECT_DEATH(ZipfDistribution(10, -1.0), "non-negative");
  EXPECT_DEATH(UniformDoubleStream(10, 1.0, 1.0, 1), "lo < hi");
  EXPECT_DEATH(GaussianMixturePointStream(10, {}, 1.0, 1), "empty");
}

}  // namespace
}  // namespace robust_sampling
