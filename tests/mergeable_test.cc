// Tests for the mergeable-summary operations (KLL::Merge,
// MisraGries::Merge): merged sketches must summarize the concatenated
// streams within their error budgets.

#include <algorithm>
#include <cstdint>
#include <vector>

#include "gtest/gtest.h"
#include "heavy/exact_counter.h"
#include "heavy/misra_gries.h"
#include "quantiles/exact_quantiles.h"
#include "quantiles/kll_sketch.h"
#include "stream/generators.h"

namespace robust_sampling {
namespace {

TEST(KllMergeTest, StreamSizeIsSumOfParts) {
  KllSketch a(64, 1), b(64, 2);
  for (int i = 0; i < 1000; ++i) a.Insert(static_cast<double>(i));
  for (int i = 0; i < 500; ++i) b.Insert(static_cast<double>(i));
  a.Merge(b);
  EXPECT_EQ(a.StreamSize(), 1500u);
  // Weight conservation: max rank is exactly 1.
  EXPECT_NEAR(a.RankFraction(1e18), 1.0, 1e-12);
}

TEST(KllMergeTest, MergeWithEmptyIsIdentity) {
  KllSketch a(64, 3), empty(64, 4);
  for (int i = 0; i < 2000; ++i) a.Insert(static_cast<double>(i % 101));
  const double before = a.Quantile(0.5);
  a.Merge(empty);
  EXPECT_DOUBLE_EQ(a.Quantile(0.5), before);
  EXPECT_EQ(a.StreamSize(), 2000u);
}

TEST(KllMergeTest, MergedQuantilesApproximateConcatenation) {
  // Two disjoint halves: [0,1) and [1,2).
  KllSketch a(512, 5), b(512, 6);
  ExactQuantiles exact;
  const auto lo = UniformDoubleStream(30000, 0.0, 1.0, 7);
  const auto hi = UniformDoubleStream(30000, 1.0, 2.0, 8);
  for (double v : lo) {
    a.Insert(v);
    exact.Insert(v);
  }
  for (double v : hi) {
    b.Insert(v);
    exact.Insert(v);
  }
  a.Merge(b);
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    EXPECT_LE(exact.RankError(q, a.Quantile(q)), 0.05) << "q=" << q;
  }
}

TEST(KllMergeTest, RepeatedMergesStaySublinear) {
  KllSketch total(256, 9);
  size_t n = 0;
  for (int part = 0; part < 16; ++part) {
    KllSketch piece(256, 100 + part);
    for (int i = 0; i < 5000; ++i) {
      piece.Insert(static_cast<double>((i * 37 + part) % 1009));
    }
    n += 5000;
    total.Merge(piece);
  }
  EXPECT_EQ(total.StreamSize(), n);
  EXPECT_LT(total.SpaceItems(), 5000u);
  EXPECT_NEAR(total.RankFraction(1e18), 1.0, 1e-12);
}

TEST(MisraGriesMergeTest, CountsAddAndSpaceStaysBounded) {
  MisraGries a(10), b(10);
  for (int i = 0; i < 500; ++i) a.Insert(1);
  for (int i = 0; i < 300; ++i) b.Insert(1);
  for (int i = 0; i < 200; ++i) b.Insert(2);
  a.Merge(b);
  EXPECT_EQ(a.StreamSize(), 1000u);
  EXPECT_LE(a.SpaceItems(), 10u);
  // Element 1 has true frequency 0.8; MG error <= 1/11.
  EXPECT_NEAR(a.EstimateFrequency(1), 0.8, 1.0 / 11.0 + 1e-12);
}

TEST(MisraGriesMergeTest, MergedErrorBoundHolds) {
  // Error of the merged summary <= (n1 + n2)/(k + 1).
  const size_t k = 20;
  MisraGries a(k), b(k);
  ExactCounter exact;
  const auto s1 = ZipfIntStream(20000, 5000, 1.2, 11);
  const auto s2 = ZipfIntStream(20000, 5000, 0.8, 13);
  for (int64_t v : s1) {
    a.Insert(v);
    exact.Insert(v);
  }
  for (int64_t v : s2) {
    b.Insert(v);
    exact.Insert(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.StreamSize(), 40000u);
  EXPECT_LE(a.SpaceItems(), k);
  const double bound = 1.0 / (static_cast<double>(k) + 1.0);
  for (int64_t x = 1; x <= 20; ++x) {
    // Never overestimates; undercounts by at most n/(k+1).
    EXPECT_LE(a.EstimateFrequency(x),
              exact.EstimateFrequency(x) + 1e-12);
    EXPECT_GE(a.EstimateFrequency(x),
              exact.EstimateFrequency(x) - bound - 1e-12);
  }
}

TEST(MisraGriesMergeTest, MajoritySurvivesMerge) {
  MisraGries a(1), b(1);
  for (int i = 0; i < 700; ++i) a.Insert(42);
  for (int i = 0; i < 200; ++i) a.Insert(7);
  for (int i = 0; i < 600; ++i) b.Insert(42);
  for (int i = 0; i < 300; ++i) b.Insert(9);
  a.Merge(b);
  const auto hh = a.HeavyHitters(0.05);
  ASSERT_EQ(hh.size(), 1u);
  EXPECT_EQ(hh[0].element, 42);
}

TEST(MisraGriesMergeDeathTest, MismatchedSizesAbort) {
  MisraGries a(5), b(6);
  EXPECT_DEATH(a.Merge(b), "different sizes");
}

}  // namespace
}  // namespace robust_sampling
