#include "core/estimators.h"

#include <cmath>
#include <cstdint>
#include <vector>

#include "core/reservoir_sampler.h"
#include "gtest/gtest.h"
#include "stream/generators.h"

namespace robust_sampling {
namespace {

TEST(HoeffdingHalfWidthTest, MatchesClosedForm) {
  EXPECT_DOUBLE_EQ(HoeffdingHalfWidth(100, 0.05),
                   std::sqrt(std::log(2.0 / 0.05) / 200.0));
}

TEST(HoeffdingHalfWidthTest, ShrinksWithSampleSize) {
  EXPECT_GT(HoeffdingHalfWidth(10, 0.05), HoeffdingHalfWidth(1000, 0.05));
}

TEST(HoeffdingHalfWidthTest, GrowsWithConfidence) {
  EXPECT_LT(HoeffdingHalfWidth(100, 0.1), HoeffdingHalfWidth(100, 0.001));
}

TEST(EstimateRangeTest, ExactOnFullSample) {
  const std::vector<int64_t> sample{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  const auto est = EstimateRange<int64_t>(
      sample, 10, [](const int64_t& v) { return v <= 4; }, 0.05);
  EXPECT_DOUBLE_EQ(est.density, 0.4);
  EXPECT_DOUBLE_EQ(est.count, 4.0);
  EXPECT_GT(est.half_width, 0.0);
  EXPECT_LT(est.density_lo(), 0.4);
  EXPECT_GT(est.density_hi(), 0.4);
}

TEST(EstimateRangeTest, CountScalesWithStreamSize) {
  const std::vector<int64_t> sample{1, 2, 3, 4};
  const auto est = EstimateRange<int64_t>(
      sample, 1000, [](const int64_t& v) { return v % 2 == 0; }, 0.1);
  EXPECT_DOUBLE_EQ(est.count, 500.0);
}

TEST(EstimateRangeTest, CoverageOnReservoirSamples) {
  // The Hoeffding interval from a reservoir sample covers the true density
  // for a post-specified range in well over 1 - delta of trials.
  const double delta = 0.1;
  const size_t n = 20000;
  int covered = 0;
  constexpr int kTrials = 60;
  for (int t = 0; t < kTrials; ++t) {
    const auto stream = UniformIntStream(n, 1000, 50 + t);
    ReservoirSampler<int64_t> res(400, 90 + t);
    size_t true_hits = 0;
    for (int64_t v : stream) {
      res.Insert(v);
      true_hits += v <= 250;
    }
    const double truth = static_cast<double>(true_hits) / n;
    const auto est = EstimateRange<int64_t>(
        res.sample(), n, [](const int64_t& v) { return v <= 250; }, delta);
    covered += truth >= est.density_lo() && truth <= est.density_hi();
  }
  EXPECT_GE(static_cast<double>(covered) / kTrials, 1.0 - 2.0 * delta);
}

TEST(EstimateRankFractionTest, MatchesPredicateForm) {
  const std::vector<int64_t> sample{10, 20, 30, 40};
  const auto est = EstimateRankFraction<int64_t>(sample, 100, 25, 0.05);
  EXPECT_DOUBLE_EQ(est.density, 0.5);
  EXPECT_DOUBLE_EQ(est.count, 50.0);
}

TEST(EstimateRangeDeathTest, EmptySampleAborts) {
  const std::vector<int64_t> empty;
  EXPECT_DEATH(EstimateRange<int64_t>(
                   empty, 10, [](const int64_t&) { return true; }, 0.05),
               "empty sample");
}

}  // namespace
}  // namespace robust_sampling
