#include "setsystem/vc_dimension.h"

#include <cstdint>
#include <vector>

#include "gtest/gtest.h"
#include "setsystem/explicit_family.h"
#include "setsystem/halfspace_family.h"
#include "setsystem/interval_family.h"
#include "setsystem/prefix_family.h"
#include "setsystem/rectangle_family.h"
#include "setsystem/singleton_family.h"

namespace robust_sampling {
namespace {

std::vector<int64_t> Candidates(int64_t lo, int64_t hi, int64_t step = 1) {
  std::vector<int64_t> out;
  for (int64_t v = lo; v <= hi; v += step) out.push_back(v);
  return out;
}

TEST(IsShatteredTest, EmptySetIsShattered) {
  PrefixFamily f(10);
  EXPECT_TRUE(IsShattered(f, std::vector<int64_t>{}));
}

TEST(IsShatteredTest, SinglePointShatteredByPrefixes) {
  PrefixFamily f(10);
  // Need both {} and {5}: [1,4] excludes 5, [1,5] includes it.
  EXPECT_TRUE(IsShattered(f, std::vector<int64_t>{5}));
}

TEST(IsShatteredTest, TwoPointsNotShatteredByPrefixes) {
  PrefixFamily f(10);
  // No prefix contains 7 but not 3.
  EXPECT_FALSE(IsShattered(f, std::vector<int64_t>{3, 7}));
}

TEST(IsShatteredTest, TwoPointsShatteredByIntervals) {
  IntervalFamily f(10);
  EXPECT_TRUE(IsShattered(f, std::vector<int64_t>{3, 7}));
}

TEST(IsShatteredTest, ThreePointsNotShatteredByIntervals) {
  IntervalFamily f(10);
  // No interval contains 2 and 8 but not 5.
  EXPECT_FALSE(IsShattered(f, std::vector<int64_t>{2, 5, 8}));
}

TEST(VcDimensionTest, PrefixFamilyHasVcDimensionOne) {
  // The Theorem 1.3 set system: VC-dimension exactly 1 despite |R| = N.
  PrefixFamily f(30);
  EXPECT_EQ(VcDimension(f, Candidates(1, 30)), 1);
}

TEST(VcDimensionTest, IntervalFamilyHasVcDimensionTwo) {
  IntervalFamily f(20);
  EXPECT_EQ(VcDimension(f, Candidates(1, 20)), 2);
}

TEST(VcDimensionTest, SingletonFamilyHasVcDimensionOne) {
  SingletonFamily f(15);
  EXPECT_EQ(VcDimension(f, Candidates(1, 15)), 1);
}

TEST(VcDimensionTest, Boxes1DHaveVcDimensionTwo) {
  RectangleFamily f(8, 1);
  std::vector<Point> candidates;
  for (int64_t v = 1; v <= 8; ++v) {
    candidates.push_back(Point{static_cast<double>(v)});
  }
  EXPECT_EQ(VcDimension(f, candidates), 2);
}

TEST(VcDimensionTest, Boxes2DHaveVcDimensionFour) {
  // Axis-aligned rectangles in the plane have VC-dimension 4; witness: the
  // four "compass" points of a diamond.
  RectangleFamily f(7, 2);
  const std::vector<Point> diamond{
      {4.0, 1.0}, {7.0, 4.0}, {4.0, 7.0}, {1.0, 4.0}};
  EXPECT_TRUE(IsShattered(f, diamond));
  // Five points can never be shattered by boxes in 2-D.
  std::vector<Point> five = diamond;
  five.push_back(Point{4.0, 4.0});
  EXPECT_FALSE(IsShattered(f, five));
}

TEST(VcDimensionTest, PowerSetShattersEverything) {
  // Explicit family of all 2^4 subsets of {1,2,3,4}: VC-dim = 4.
  std::vector<ExplicitFamily<int64_t>::Predicate> preds;
  for (uint32_t mask = 0; mask < 16; ++mask) {
    preds.push_back([mask](const int64_t& x) {
      return x >= 1 && x <= 4 && ((mask >> (x - 1)) & 1u) != 0;
    });
  }
  ExplicitFamily<int64_t> f("powerset", std::move(preds));
  EXPECT_EQ(VcDimension(f, Candidates(1, 4)), 4);
}

TEST(VcDimensionTest, SingleRangeFamilyHasVcDimensionAtMostOne) {
  ExplicitFamily<int64_t> f("half", {[](const int64_t& x) { return x > 5; }});
  // Only two patterns ({}, {x}) ever arise; one point is shattered iff some
  // range contains it and some range (none here besides) excludes it — with
  // a single range no point achieves both patterns... except pattern {} is
  // realized only if the range excludes the point.
  // Point 3: range excludes it -> only pattern {} arises. Not shattered.
  EXPECT_FALSE(IsShattered(f, std::vector<int64_t>{3}));
  // Point 7 is included by the range but nothing excludes it.
  EXPECT_FALSE(IsShattered(f, std::vector<int64_t>{7}));
  EXPECT_EQ(VcDimension(f, Candidates(1, 10)), 0);
}

TEST(VcDimensionTest, MaxDimCapRespected) {
  IntervalFamily f(20);
  EXPECT_EQ(VcDimension(f, Candidates(1, 20), /*max_dim=*/1), 1);
}

TEST(VcDimensionTest, Halfspaces2DShatterThreePointsNotFour) {
  // Halfspaces in the plane have VC-dimension 3. A finely discretized
  // family shatters a triangle; no four points are shattered by any
  // halfspace family (the XOR pattern on a convex quadrilateral, or the
  // inside point of a triangle, is unrealizable).
  HalfspaceFamily2D family(64, 64, -3.0, 3.0);
  const std::vector<Point> triangle{{0.0, 1.0}, {-1.0, -1.0}, {1.0, -1.0}};
  EXPECT_TRUE(IsShattered(family, triangle));
  const std::vector<Point> square{
      {1.0, 1.0}, {-1.0, 1.0}, {-1.0, -1.0}, {1.0, -1.0}};
  EXPECT_FALSE(IsShattered(family, square));
  std::vector<Point> with_center = triangle;
  with_center.push_back(Point{0.0, 0.0});
  EXPECT_FALSE(IsShattered(family, with_center));
}

TEST(VcDimensionTest, CoarseHalfspaceFamilyHasLowerEffectiveDimension) {
  // With a single direction the family is a 1-D threshold family:
  // VC-dimension 1 on collinear points.
  HalfspaceFamily2D family(1, 64, -3.0, 3.0);
  const std::vector<Point> pts{{-1.0, 0.0}, {0.0, 0.0}, {1.0, 0.0}};
  EXPECT_TRUE(IsShattered(family, {pts[1]}));
  EXPECT_FALSE(IsShattered(family, {pts[0], pts[2]}));
}

TEST(VcDimensionTest, CardinalityVsVcContrast) {
  // The paper's core contrast, verified concretely: growing the universe
  // blows up ln|R| while the VC-dimension stays 1.
  PrefixFamily small(10);
  PrefixFamily large(100000);
  EXPECT_EQ(VcDimension(small, Candidates(1, 10)), 1);
  EXPECT_EQ(VcDimension(large, Candidates(1, 100000, 9973)), 1);
  EXPECT_GT(large.LogCardinality(), 4.0 * small.LogCardinality());
}

}  // namespace
}  // namespace robust_sampling
