#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <set>
#include <vector>

#include "core/random.h"
#include "gtest/gtest.h"
#include "heavy/count_min.h"
#include "heavy/exact_counter.h"
#include "heavy/misra_gries.h"
#include "heavy/sample_heavy_hitters.h"
#include "heavy/space_saving.h"
#include "stream/generators.h"

namespace robust_sampling {
namespace {

std::vector<int64_t> SkewedStream() {
  // 1000 copies of element 1, 500 of 2, 100 of 3, plus 400 singletons.
  std::vector<int64_t> s;
  s.insert(s.end(), 1000, 1);
  s.insert(s.end(), 500, 2);
  s.insert(s.end(), 100, 3);
  for (int64_t i = 0; i < 400; ++i) s.push_back(1000 + i);
  // Deterministic shuffle.
  Rng rng(99);
  std::shuffle(s.begin(), s.end(), rng);
  return s;
}

// ----------------------------------------------------------------- Exact --

TEST(ExactCounterTest, CountsAndFrequencies) {
  ExactCounter c;
  for (int64_t v : {1, 1, 2, 3, 1}) c.Insert(v);
  EXPECT_EQ(c.Count(1), 3u);
  EXPECT_EQ(c.Count(2), 1u);
  EXPECT_EQ(c.Count(9), 0u);
  EXPECT_DOUBLE_EQ(c.EstimateFrequency(1), 0.6);
  EXPECT_DOUBLE_EQ(c.EstimateFrequency(9), 0.0);
  EXPECT_EQ(c.StreamSize(), 5u);
}

TEST(ExactCounterTest, HeavyHittersSortedByFrequency) {
  ExactCounter c;
  for (int64_t v : SkewedStream()) c.Insert(v);
  const auto hh = c.HeavyHitters(0.04);
  ASSERT_EQ(hh.size(), 3u);
  EXPECT_EQ(hh[0].element, 1);
  EXPECT_EQ(hh[1].element, 2);
  EXPECT_EQ(hh[2].element, 3);
  EXPECT_GE(hh[0].frequency, hh[1].frequency);
}

TEST(ExactCounterTest, EmptyStreamHasNoHitters) {
  ExactCounter c;
  EXPECT_TRUE(c.HeavyHitters(0.1).empty());
}

// ----------------------------------------------------------- Misra-Gries --

TEST(MisraGriesTest, NeverOverestimates) {
  MisraGries mg(10);
  ExactCounter exact;
  for (int64_t v : SkewedStream()) {
    mg.Insert(v);
    exact.Insert(v);
  }
  for (int64_t x : {int64_t{1}, int64_t{2}, int64_t{3}, int64_t{1000}}) {
    EXPECT_LE(mg.EstimateFrequency(x), exact.EstimateFrequency(x) + 1e-12);
  }
}

TEST(MisraGriesTest, ErrorBoundedByOneOverKPlusOne) {
  MisraGries mg(19);  // error < n/(k+1) = 5% of n
  ExactCounter exact;
  for (int64_t v : SkewedStream()) {
    mg.Insert(v);
    exact.Insert(v);
  }
  const double bound = 1.0 / 20.0;
  for (int64_t x = 1; x <= 3; ++x) {
    EXPECT_GE(mg.EstimateFrequency(x),
              exact.EstimateFrequency(x) - bound - 1e-12);
  }
}

TEST(MisraGriesTest, SpaceNeverExceedsK) {
  MisraGries mg(7);
  for (int64_t v : UniformIntStream(10000, 1000, 5)) {
    mg.Insert(v);
    EXPECT_LE(mg.SpaceItems(), 7u);
  }
}

TEST(MisraGriesTest, FindsTheMajorityElement) {
  MisraGries mg(1);
  std::vector<int64_t> s;
  s.insert(s.end(), 600, 42);
  s.insert(s.end(), 400, 7);
  Rng rng(3);
  std::shuffle(s.begin(), s.end(), rng);
  for (int64_t v : s) mg.Insert(v);
  const auto hh = mg.HeavyHitters(0.05);
  ASSERT_EQ(hh.size(), 1u);
  EXPECT_EQ(hh[0].element, 42);
}

// ----------------------------------------------------------- SpaceSaving --

TEST(SpaceSavingTest, NeverUnderestimates) {
  SpaceSaving ss(10);
  ExactCounter exact;
  for (int64_t v : SkewedStream()) {
    ss.Insert(v);
    exact.Insert(v);
  }
  for (int64_t x : {int64_t{1}, int64_t{2}, int64_t{3}}) {
    // Tracked elements overestimate (untracked report 0).
    if (ss.EstimateFrequency(x) > 0) {
      EXPECT_GE(ss.EstimateFrequency(x),
                exact.EstimateFrequency(x) - 1e-12);
    }
  }
}

TEST(SpaceSavingTest, OverestimateBoundedByNOverK) {
  SpaceSaving ss(20);
  ExactCounter exact;
  for (int64_t v : SkewedStream()) {
    ss.Insert(v);
    exact.Insert(v);
  }
  for (int64_t x : {int64_t{1}, int64_t{2}, int64_t{3}}) {
    EXPECT_LE(ss.EstimateFrequency(x),
              exact.EstimateFrequency(x) + 1.0 / 20.0 + 1e-12);
  }
}

TEST(SpaceSavingTest, ExactlyKCountersRetained) {
  SpaceSaving ss(5);
  for (int64_t v : UniformIntStream(1000, 100, 7)) ss.Insert(v);
  EXPECT_EQ(ss.SpaceItems(), 5u);
}

TEST(SpaceSavingTest, HeavyElementAlwaysTracked) {
  SpaceSaving ss(10);
  for (int64_t v : SkewedStream()) ss.Insert(v);
  EXPECT_GT(ss.EstimateFrequency(1), 0.0);
  const auto hh = ss.HeavyHitters(0.3);
  ASSERT_FALSE(hh.empty());
  EXPECT_EQ(hh[0].element, 1);
}

// -------------------------------------------------------------- CountMin --

TEST(CountMinTest, NeverUnderestimates) {
  CountMinSketch cm(256, 4, 11);
  ExactCounter exact;
  for (int64_t v : SkewedStream()) {
    cm.Insert(v);
    exact.Insert(v);
  }
  for (int64_t x = 1; x <= 3; ++x) {
    EXPECT_GE(cm.EstimateCount(x), exact.Count(x));
  }
}

TEST(CountMinTest, AccurateOnSkewedStreamWithAmpleWidth) {
  CountMinSketch cm(2048, 5, 13);
  ExactCounter exact;
  for (int64_t v : SkewedStream()) {
    cm.Insert(v);
    exact.Insert(v);
  }
  for (int64_t x = 1; x <= 3; ++x) {
    EXPECT_NEAR(cm.EstimateFrequency(x), exact.EstimateFrequency(x), 0.01);
  }
}

TEST(CountMinTest, BucketsAreStablePerRow) {
  CountMinSketch cm(64, 3, 17);
  for (size_t r = 0; r < 3; ++r) {
    EXPECT_EQ(cm.Bucket(r, 12345), cm.Bucket(r, 12345));
    EXPECT_LT(cm.Bucket(r, 12345), 64u);
  }
}

TEST(CountMinTest, HeavyHittersFindsPlantedElement) {
  CountMinSketch cm(1024, 4, 19);
  for (int64_t v : SkewedStream()) cm.Insert(v);
  const auto hh = cm.HeavyHitters(0.3);
  ASSERT_FALSE(hh.empty());
  EXPECT_EQ(hh[0].element, 1);
}

TEST(CountMinTest, AdaptiveCollisionStuffingInflatesTarget) {
  // The Hardt–Woodruff-style vulnerability, concretely: an adversary that
  // can query the sketch finds elements colliding with a target in every
  // row and inserts only those; the target's estimate grows although it
  // was never inserted.
  CountMinSketch cm(32, 2, 23);
  const int64_t target = 7;
  // Find colliders by brute force using the public Bucket() accessor —
  // exactly what an adaptive adversary observing estimates could infer.
  std::vector<int64_t> colliders;
  for (int64_t x = 1000; colliders.size() < 50 && x < 2000000; ++x) {
    bool collides_everywhere = true;
    for (size_t r = 0; r < cm.depth(); ++r) {
      if (cm.Bucket(r, x) != cm.Bucket(r, target)) {
        collides_everywhere = false;
        break;
      }
    }
    if (collides_everywhere) colliders.push_back(x);
  }
  ASSERT_FALSE(colliders.empty());
  for (int round = 0; round < 20; ++round) {
    for (int64_t c : colliders) cm.Insert(c);
  }
  // Target was never inserted, yet its estimated frequency is large.
  EXPECT_GT(cm.EstimateFrequency(target), 0.5);
}

// --------------------------------------------------------------- Sampled --

TEST(SampleHeavyHittersTest, MatchesExactOnSkewedStream) {
  SampleHeavyHitters shh =
      SampleHeavyHitters::ForAccuracy(0.15, 0.05, 1 << 20, 29);
  ExactCounter exact;
  for (int64_t v : SkewedStream()) {
    shh.Insert(v);
    exact.Insert(v);
  }
  const double alpha = 0.25;
  const auto report = shh.Report(alpha, 0.15);
  // Element 1 (frequency 0.5) must be reported.
  ASSERT_FALSE(report.empty());
  std::set<int64_t> reported;
  for (const auto& h : report) reported.insert(h.element);
  EXPECT_TRUE(reported.count(1));
  // Nothing with true frequency <= alpha - eps = 0.10 may be reported.
  for (const auto& h : report) {
    EXPECT_GT(exact.EstimateFrequency(h.element), alpha - 0.15);
  }
}

TEST(SampleHeavyHittersTest, FrequencyEstimateTracksExact) {
  SampleHeavyHitters shh(2000, 31);
  ExactCounter exact;
  for (int64_t v : ZipfIntStream(50000, 1000, 1.3, 33)) {
    shh.Insert(v);
    exact.Insert(v);
  }
  for (int64_t x = 1; x <= 5; ++x) {
    EXPECT_NEAR(shh.EstimateFrequency(x), exact.EstimateFrequency(x), 0.05);
  }
}

TEST(SampleHeavyHittersTest, SpaceEqualsReservoirCapacity) {
  SampleHeavyHitters shh(100, 35);
  for (int64_t v : UniformIntStream(10000, 50, 37)) shh.Insert(v);
  EXPECT_EQ(shh.SpaceItems(), 100u);
}

// --------------------------------------------- Cross-algorithm contracts --

class AllEstimatorsTest : public ::testing::TestWithParam<int> {
 protected:
  std::unique_ptr<FrequencyEstimator> Make() const {
    switch (GetParam()) {
      case 0:
        return std::make_unique<ExactCounter>();
      case 1:
        return std::make_unique<MisraGries>(50);
      case 2:
        return std::make_unique<SpaceSaving>(50);
      case 3:
        return std::make_unique<CountMinSketch>(1024, 4, 41);
      default:
        return std::make_unique<SampleHeavyHitters>(3000, 43);
    }
  }
};

TEST_P(AllEstimatorsTest, MajorityElementAlwaysReported) {
  auto est = Make();
  std::vector<int64_t> s;
  s.insert(s.end(), 6000, 5);
  for (int64_t i = 0; i < 4000; ++i) s.push_back(100 + i % 500);
  Rng rng(45);
  std::shuffle(s.begin(), s.end(), rng);
  for (int64_t v : s) est->Insert(v);
  const auto hh = est->HeavyHitters(0.3);
  ASSERT_FALSE(hh.empty()) << est->Name();
  EXPECT_EQ(hh[0].element, 5) << est->Name();
  EXPECT_NEAR(hh[0].frequency, 0.6, 0.1) << est->Name();
}

TEST_P(AllEstimatorsTest, FrequenciesAreInUnitInterval) {
  auto est = Make();
  for (int64_t v : UniformIntStream(5000, 100, 47)) est->Insert(v);
  for (int64_t x = 1; x <= 100; ++x) {
    const double f = est->EstimateFrequency(x);
    EXPECT_GE(f, 0.0) << est->Name();
    EXPECT_LE(f, 1.0) << est->Name();
  }
}

TEST_P(AllEstimatorsTest, StreamSizeTracked) {
  auto est = Make();
  for (int64_t i = 0; i < 777; ++i) est->Insert(i % 13);
  EXPECT_EQ(est->StreamSize(), 777u);
}

INSTANTIATE_TEST_SUITE_P(Estimators, AllEstimatorsTest,
                         ::testing::Values(0, 1, 2, 3, 4));

}  // namespace
}  // namespace robust_sampling
