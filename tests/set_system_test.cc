#include <cmath>
#include <cstdint>
#include <set>
#include <utility>

#include "gtest/gtest.h"
#include "setsystem/explicit_family.h"
#include "setsystem/halfspace_family.h"
#include "setsystem/interval_family.h"
#include "setsystem/prefix_family.h"
#include "setsystem/rectangle_family.h"
#include "setsystem/singleton_family.h"

namespace robust_sampling {
namespace {

// ---------------------------------------------------------------- Prefix --

TEST(PrefixFamilyTest, CardinalityEqualsUniverse) {
  PrefixFamily f(100);
  EXPECT_EQ(f.NumRanges(), 100u);
  EXPECT_NEAR(f.LogCardinality(), std::log(100.0), 1e-12);
}

TEST(PrefixFamilyTest, MembershipIsPrefix) {
  PrefixFamily f(10);
  // Range index 4 is [1, 5].
  EXPECT_EQ(f.RangeEnd(4), 5);
  for (int64_t x = 1; x <= 5; ++x) EXPECT_TRUE(f.Contains(4, x));
  for (int64_t x = 6; x <= 10; ++x) EXPECT_FALSE(f.Contains(4, x));
  EXPECT_FALSE(f.Contains(4, 0));  // below the universe
}

TEST(PrefixFamilyTest, FullRangeContainsEverything) {
  PrefixFamily f(50);
  for (int64_t x = 1; x <= 50; ++x) EXPECT_TRUE(f.Contains(49, x));
}

TEST(PrefixFamilyTest, NameMentionsUniverse) {
  EXPECT_NE(PrefixFamily(42).Name().find("42"), std::string::npos);
}

// -------------------------------------------------------------- Interval --

TEST(IntervalFamilyTest, CardinalityIsTriangular) {
  IntervalFamily f(10);
  EXPECT_EQ(f.NumRanges(), 55u);  // 10*11/2
}

TEST(IntervalFamilyTest, RangeBoundsRoundTripAllIndices) {
  const int64_t n = 20;
  IntervalFamily f(n);
  std::set<std::pair<int64_t, int64_t>> seen;
  for (uint64_t r = 0; r < f.NumRanges(); ++r) {
    const auto [a, b] = f.RangeBounds(r);
    EXPECT_GE(a, 1);
    EXPECT_LE(a, b);
    EXPECT_LE(b, n);
    seen.insert({a, b});
  }
  // Every (a, b) pair appears exactly once.
  EXPECT_EQ(seen.size(), f.NumRanges());
}

TEST(IntervalFamilyTest, LexicographicOrder) {
  IntervalFamily f(4);
  EXPECT_EQ(f.RangeBounds(0), (std::pair<int64_t, int64_t>{1, 1}));
  EXPECT_EQ(f.RangeBounds(3), (std::pair<int64_t, int64_t>{1, 4}));
  EXPECT_EQ(f.RangeBounds(4), (std::pair<int64_t, int64_t>{2, 2}));
  EXPECT_EQ(f.RangeBounds(9), (std::pair<int64_t, int64_t>{4, 4}));
}

TEST(IntervalFamilyTest, MembershipMatchesBounds) {
  IntervalFamily f(15);
  for (uint64_t r = 0; r < f.NumRanges(); ++r) {
    const auto [a, b] = f.RangeBounds(r);
    for (int64_t x = 1; x <= 15; ++x) {
      EXPECT_EQ(f.Contains(r, x), x >= a && x <= b);
    }
  }
}

// ------------------------------------------------------------- Singleton --

TEST(SingletonFamilyTest, EachRangeHasExactlyOneElement) {
  SingletonFamily f(12);
  EXPECT_EQ(f.NumRanges(), 12u);
  for (uint64_t r = 0; r < f.NumRanges(); ++r) {
    int64_t members = 0;
    for (int64_t x = 1; x <= 12; ++x) members += f.Contains(r, x);
    EXPECT_EQ(members, 1);
    EXPECT_TRUE(f.Contains(r, f.RangeElement(r)));
  }
}

// ------------------------------------------------------------- Rectangle --

TEST(RectangleFamilyTest, CardinalityOneDim) {
  RectangleFamily f(10, 1);
  EXPECT_EQ(f.NumRanges(), 55u);
  EXPECT_NEAR(f.LogCardinality(), std::log(55.0), 1e-12);
}

TEST(RectangleFamilyTest, CardinalityTwoDims) {
  RectangleFamily f(4, 2);
  EXPECT_EQ(f.NumRanges(), 100u);  // (4*5/2)^2
  EXPECT_NEAR(f.LogCardinality(), 2.0 * std::log(10.0), 1e-12);
}

TEST(RectangleFamilyTest, BoxDecodeRoundTripsAllIndices2D) {
  RectangleFamily f(3, 2);
  std::set<std::pair<std::pair<int64_t, int64_t>,
                     std::pair<int64_t, int64_t>>>
      seen;
  for (uint64_t r = 0; r < f.NumRanges(); ++r) {
    const auto box = f.RangeBox(r);
    ASSERT_EQ(box.lo.size(), 2u);
    for (int j = 0; j < 2; ++j) {
      EXPECT_GE(box.lo[j], 1);
      EXPECT_LE(box.lo[j], box.hi[j]);
      EXPECT_LE(box.hi[j], 3);
    }
    seen.insert({{box.lo[0], box.hi[0]}, {box.lo[1], box.hi[1]}});
  }
  EXPECT_EQ(seen.size(), f.NumRanges());
}

TEST(RectangleFamilyTest, ContainsChecksAllDims) {
  RectangleFamily f(5, 2);
  RectangleFamily::Box box;
  box.lo = {2, 3};
  box.hi = {4, 5};
  EXPECT_TRUE(box.Contains(Point{3.0, 4.0}));
  EXPECT_TRUE(box.Contains(Point{2.0, 3.0}));  // boundary inclusive
  EXPECT_TRUE(box.Contains(Point{4.0, 5.0}));
  EXPECT_FALSE(box.Contains(Point{1.0, 4.0}));
  EXPECT_FALSE(box.Contains(Point{3.0, 2.0}));
  EXPECT_FALSE(box.Contains(Point{5.0, 4.0}));
}

TEST(RectangleFamilyTest, FractionalPointsUseRealComparison) {
  RectangleFamily::Box box;
  box.lo = {1};
  box.hi = {2};
  EXPECT_TRUE(box.Contains(Point{1.5}));
  EXPECT_FALSE(box.Contains(Point{2.5}));
}

TEST(RectangleFamilyDeathTest, OverflowingFamilyAborts) {
  EXPECT_DEATH(RectangleFamily(100000, 4), "overflows");
}

// ------------------------------------------------------------- Halfspace --

TEST(HalfspaceFamilyTest, CardinalityIsDirectionsTimesOffsets) {
  HalfspaceFamily2D f(8, 11, -1.0, 1.0);
  EXPECT_EQ(f.NumRanges(), 88u);
}

TEST(HalfspaceFamilyTest, DirectionsAreUnitVectors) {
  HalfspaceFamily2D f(16, 5, -2.0, 2.0);
  for (int j = 0; j < 16; ++j) {
    double nx, ny;
    f.Direction(j, &nx, &ny);
    EXPECT_NEAR(nx * nx + ny * ny, 1.0, 1e-12);
  }
}

TEST(HalfspaceFamilyTest, OffsetsSpanTheGrid) {
  HalfspaceFamily2D f(1, 5, 0.0, 1.0);
  EXPECT_DOUBLE_EQ(f.Range(0).offset, 0.0);
  EXPECT_DOUBLE_EQ(f.Range(4).offset, 1.0);
  EXPECT_DOUBLE_EQ(f.Range(2).offset, 0.5);
}

TEST(HalfspaceFamilyTest, MembershipMatchesInnerProduct) {
  HalfspaceFamily2D f(4, 3, -1.0, 1.0);
  // Direction 0 is (1, 0): halfspace x <= t.
  const auto h = f.Range(2);  // direction 0, offset t = 1.0
  EXPECT_DOUBLE_EQ(h.nx, 1.0);
  EXPECT_NEAR(h.ny, 0.0, 1e-12);
  EXPECT_TRUE(f.Contains(2, Point{0.5, 100.0}));
  EXPECT_FALSE(f.Contains(2, Point{1.5, 0.0}));
}

TEST(HalfspaceFamilyTest, OppositeDirectionsGiveComplementaryHalfspaces) {
  HalfspaceFamily2D f(4, 3, -10.0, 10.0);
  // Directions 0 and 2 are (1,0) and (-1,0).
  const Point p{3.0, 0.0};
  // x <= 10 contains p; -x <= -10 (i.e. x >= 10) does not.
  EXPECT_TRUE(f.Contains(2, p));
  const uint64_t idx_opposite = 2 * 3 + 0;  // direction 2, offset -10
  EXPECT_FALSE(f.Contains(idx_opposite, p));
}

// -------------------------------------------------------------- Explicit --

TEST(ExplicitFamilyTest, PredicatesDefineMembership) {
  ExplicitFamily<int64_t> f("parity", {[](const int64_t& x) {
                              return x % 2 == 0;
                            }});
  EXPECT_EQ(f.NumRanges(), 1u);
  EXPECT_TRUE(f.Contains(0, 4));
  EXPECT_FALSE(f.Contains(0, 5));
  f.AddRange([](const int64_t& x) { return x > 10; });
  EXPECT_EQ(f.NumRanges(), 2u);
  EXPECT_TRUE(f.Contains(1, 11));
  EXPECT_EQ(f.Name(), "parity");
}

TEST(ExplicitFamilyDeathTest, EmptyFamilyAborts) {
  EXPECT_DEATH(ExplicitFamily<int64_t>("empty", {}), "at least one range");
}

}  // namespace
}  // namespace robust_sampling
