#include "distributed/distributed_reservoir.h"

#include "core/reservoir_sampler.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <set>
#include <vector>

#include "gtest/gtest.h"

namespace robust_sampling {
namespace {

TEST(DistributedReservoirTest, HoldsEverythingWhileUnderCapacity) {
  DistributedReservoir dr(3, 100, 1);
  for (int64_t i = 0; i < 50; ++i) dr.Insert(static_cast<int>(i % 3), i);
  auto sample = dr.Sample();
  std::sort(sample.begin(), sample.end());
  ASSERT_EQ(sample.size(), 50u);
  for (int64_t i = 0; i < 50; ++i) EXPECT_EQ(sample[i], i);
}

TEST(DistributedReservoirTest, SampleSizeIsExactlyK) {
  DistributedReservoir dr(4, 16, 2);
  for (int64_t i = 0; i < 5000; ++i) dr.Insert(static_cast<int>(i % 4), i);
  EXPECT_EQ(dr.Sample().size(), 16u);
  EXPECT_EQ(dr.total_items(), 5000u);
}

TEST(DistributedReservoirTest, SampleIsSubsetOfUnion) {
  DistributedReservoir dr(5, 20, 3);
  std::set<int64_t> universe;
  for (int64_t i = 0; i < 2000; ++i) {
    dr.Insert(static_cast<int>(i % 5), i * 7);
    universe.insert(i * 7);
  }
  for (int64_t v : dr.Sample()) EXPECT_TRUE(universe.count(v));
}

TEST(DistributedReservoirTest, UniformMarginalAcrossSites) {
  // P(item in final sample) = k/n for every item, regardless of which site
  // it arrived at.
  constexpr size_t kK = 4, kN = 20, kRuns = 20000;
  std::vector<int> counts(kN, 0);
  for (size_t run = 0; run < kRuns; ++run) {
    DistributedReservoir dr(3, kK, 100 + run);
    for (size_t i = 0; i < kN; ++i) {
      dr.Insert(static_cast<int>(i % 3), static_cast<int64_t>(i));
    }
    for (int64_t v : dr.Sample()) ++counts[static_cast<size_t>(v)];
  }
  const double expected = static_cast<double>(kRuns) * kK / kN;
  const double sd = std::sqrt(expected * (1.0 - static_cast<double>(kK) / kN));
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_NEAR(counts[i], expected, 6.0 * sd) << "item " << i;
  }
}

TEST(DistributedReservoirTest, MessageCountIsSublinear) {
  // Expected forwards ~ k + k ln(n/k) + m stale-threshold extras; far
  // below n for large n.
  constexpr size_t kK = 32;
  constexpr size_t kN = 100000;
  DistributedReservoir dr(8, kK, 5);
  for (size_t i = 0; i < kN; ++i) {
    dr.Insert(static_cast<int>(i % 8), static_cast<int64_t>(i));
  }
  const double budget =
      10.0 * (static_cast<double>(kK) *
                  (1.0 + std::log(static_cast<double>(kN) / kK)) +
              8.0);
  EXPECT_LT(static_cast<double>(dr.messages_sent()), budget);
  EXPECT_LT(dr.messages_sent(), kN / 10);
  // Broadcasts are bounded by accepted updates.
  EXPECT_LE(dr.broadcasts(), dr.messages_sent());
  EXPECT_GE(dr.broadcasts(), 1u);
}

TEST(DistributedReservoirTest, SingleSiteMatchesReservoirSemantics) {
  DistributedReservoir dr(1, 10, 7);
  for (int64_t i = 0; i < 1000; ++i) dr.Insert(0, i);
  EXPECT_EQ(dr.Sample().size(), 10u);
}

TEST(DistributedReservoirTest, DeterministicGivenSeed) {
  DistributedReservoir a(4, 8, 11), b(4, 8, 11);
  for (int64_t i = 0; i < 2000; ++i) {
    a.Insert(static_cast<int>(i % 4), i);
    b.Insert(static_cast<int>(i % 4), i);
  }
  auto sa = a.Sample(), sb = b.Sample();
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());
  EXPECT_EQ(sa, sb);
  EXPECT_EQ(a.messages_sent(), b.messages_sent());
}

TEST(DistributedReservoirTest, SkewedSiteLoadsStillUniform) {
  // Site 0 receives 90% of items; inclusion must still be uniform over
  // items (tag-based bottom-k is oblivious to placement).
  constexpr size_t kK = 5, kN = 20, kRuns = 20000;
  std::vector<int> counts(kN, 0);
  for (size_t run = 0; run < kRuns; ++run) {
    DistributedReservoir dr(2, kK, 900 + run);
    for (size_t i = 0; i < kN; ++i) {
      dr.Insert(i % 10 == 9 ? 1 : 0, static_cast<int64_t>(i));
    }
    for (int64_t v : dr.Sample()) ++counts[static_cast<size_t>(v)];
  }
  const double expected = static_cast<double>(kRuns) * kK / kN;
  const double sd = std::sqrt(expected * (1.0 - static_cast<double>(kK) / kN));
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_NEAR(counts[i], expected, 6.0 * sd) << "item " << i;
  }
}

TEST(DistributedReservoirTest, MessageBoundHoldsAcrossSeeds) {
  // The CTW16 communication bound is distributional: expected forwards are
  // k(1 + ln(n/k)) plus one stale-threshold extra per site, broadcasts at
  // most one per accepted forward. One lucky seed proving it is not
  // evidence — sweep seeds and require every run inside a 10x envelope
  // and the broadcast <= forward ordering throughout.
  constexpr size_t kK = 32;
  constexpr size_t kN = 50000;
  constexpr int kSites = 8;
  const double budget =
      10.0 * (static_cast<double>(kK) *
                  (1.0 + std::log(static_cast<double>(kN) / kK)) +
              kSites);
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    DistributedReservoir dr(kSites, kK, seed);
    for (size_t i = 0; i < kN; ++i) {
      dr.Insert(static_cast<int>(i % kSites), static_cast<int64_t>(i));
    }
    EXPECT_LT(static_cast<double>(dr.messages_sent()), budget)
        << "seed " << seed;
    EXPECT_LE(dr.broadcasts(), dr.messages_sent()) << "seed " << seed;
    EXPECT_EQ(dr.Sample().size(), kK) << "seed " << seed;
  }
}

TEST(DistributedReservoirTest, CoordinatorSampleMatchesSingleStreamReference) {
  // The coordinator's bottom-k sample must follow the same uniform
  // without-replacement law as a single-stream Algorithm R reservoir over
  // the identical stream: compare the empirical per-item inclusion counts
  // of the two samplers head to head. Both estimate k/n per item; their
  // difference is centered at 0 with variance at most twice a binomial's.
  constexpr size_t kK = 4, kN = 20, kRuns = 20000;
  std::vector<int> distributed_counts(kN, 0), reference_counts(kN, 0);
  for (size_t run = 0; run < kRuns; ++run) {
    DistributedReservoir dr(3, kK, 40000 + run);
    ReservoirSampler<int64_t> reference(kK, 70000 + run);
    for (size_t i = 0; i < kN; ++i) {
      dr.Insert(static_cast<int>(i % 3), static_cast<int64_t>(i));
      reference.Insert(static_cast<int64_t>(i));
    }
    for (int64_t v : dr.Sample()) ++distributed_counts[static_cast<size_t>(v)];
    for (int64_t v : reference.sample()) {
      ++reference_counts[static_cast<size_t>(v)];
    }
  }
  const double p = static_cast<double>(kK) / kN;
  const double diff_sd = std::sqrt(2.0 * kRuns * p * (1.0 - p));
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_NEAR(distributed_counts[i], reference_counts[i], 6.0 * diff_sd)
        << "item " << i;
  }
}

TEST(DistributedReservoirDeathTest, InvalidArgumentsAbort) {
  EXPECT_DEATH(DistributedReservoir(0, 4, 1), "site");
  EXPECT_DEATH(DistributedReservoir(2, 0, 1), "capacity");
  DistributedReservoir dr(2, 4, 1);
  EXPECT_DEATH(dr.Insert(2, 5), "site");
}

}  // namespace
}  // namespace robust_sampling
