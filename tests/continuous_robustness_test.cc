// Tests for Theorem 1.4: continuous robustness of reservoir sampling, the
// geometric checkpoint machinery, and the impossibility of continuous
// robustness for Bernoulli sampling (footnote 4).

#include <cmath>
#include <cstdint>
#include <vector>

#include "adversary/basic_adversaries.h"
#include "adversary/bisection_adversary.h"
#include "core/adversarial_game.h"
#include "core/bernoulli_sampler.h"
#include "core/checkpoints.h"
#include "core/reservoir_sampler.h"
#include "core/sample_bounds.h"
#include "gtest/gtest.h"
#include "harness/trial_runner.h"
#include "setsystem/discrepancy.h"

namespace robust_sampling {
namespace {

DiscrepancyFn<int64_t> PrefixFn() {
  return [](const std::vector<int64_t>& x, const std::vector<int64_t>& s) {
    return PrefixDiscrepancy(x, s);
  };
}

TEST(ContinuousRobustnessTest, SizedReservoirIsContinuouslyRobustStatic) {
  // Theorem 1.4 with a static (oblivious) stream, checked at *every* round.
  const double eps = 0.25, delta = 0.1;
  const size_t n = 2000;
  const int64_t universe = 1 << 20;
  const size_t k = ReservoirContinuousK(
      eps, delta, std::log(static_cast<double>(universe)), n, /*c=*/4.0);
  const auto stats = RunTrials(10, 31, [&](uint64_t seed) {
    UniformAdversary adv(universe, MixSeed(seed, 3));
    ReservoirSampler<int64_t> sampler(k, seed);
    const auto r = RunContinuousAdaptiveGame(
        sampler, adv, n, PrefixFn(), eps, CheckpointSchedule::All(n));
    return r.max_discrepancy;
  });
  EXPECT_GE(stats.FractionAtMost(eps), 0.8)
      << "worst max-discrepancy " << stats.max;
}

TEST(ContinuousRobustnessTest, SizedReservoirIsContinuouslyRobustAdaptive) {
  // Same property against the bisection attack (which exhausts on this
  // universe, as any adaptive strategy must when k is this large).
  const double eps = 0.25, delta = 0.1;
  const size_t n = 2000;
  const int64_t universe = 1 << 20;
  const size_t k = ReservoirContinuousK(
      eps, delta, std::log(static_cast<double>(universe)), n, /*c=*/4.0);
  const auto stats = RunTrials(10, 37, [&](uint64_t seed) {
    BisectionAdversaryInt64 adv(universe, 0.9);
    ReservoirSampler<int64_t> sampler(k, seed);
    const auto r = RunContinuousAdaptiveGame(
        sampler, adv, n, PrefixFn(), eps, CheckpointSchedule::All(n));
    return r.max_discrepancy;
  });
  EXPECT_GE(stats.FractionAtMost(eps), 0.8)
      << "worst max-discrepancy " << stats.max;
}

TEST(ContinuousRobustnessTest, GeometricCheckpointsCertifyAllRounds) {
  // The Theorem 1.4 argument, empirically: if the geometric (eps/4)
  // schedule sees discrepancy <= eps/2 at every checkpoint, then every
  // round's discrepancy is <= eps (Claims 6.1-6.3 bridge the gaps).
  const double eps = 0.3;
  const size_t n = 1500;
  const int64_t universe = 1 << 16;
  const size_t k = ReservoirContinuousK(
      eps, 0.1, std::log(static_cast<double>(universe)), n, /*c=*/4.0);
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    // Run twice with identical seeds: once geometric, once exhaustive.
    UniformAdversary adv_a(universe, MixSeed(seed, 7));
    ReservoirSampler<int64_t> s_a(k, seed);
    const auto geo = RunContinuousAdaptiveGame(
        s_a, adv_a, n, PrefixFn(), eps / 2.0,
        CheckpointSchedule::Geometric(k, n, eps / 4.0));
    UniformAdversary adv_b(universe, MixSeed(seed, 7));
    ReservoirSampler<int64_t> s_b(k, seed);
    const auto all = RunContinuousAdaptiveGame(
        s_b, adv_b, n, PrefixFn(), eps, CheckpointSchedule::All(n));
    if (geo.continuously_approximating) {
      EXPECT_TRUE(all.continuously_approximating)
          << "checkpoints passed at eps/2 but some round exceeded eps "
          << "(seed " << seed << ", max " << all.max_discrepancy << ")";
    }
  }
}

TEST(ContinuousRobustnessTest, GeometricScheduleIsExponentiallySparser) {
  const size_t n = 1 << 20;
  const auto geo = CheckpointSchedule::Geometric(100, n, 0.0625);
  const auto all = CheckpointSchedule::All(n);
  EXPECT_LT(geo.size() * 1000, all.size());
}

TEST(ContinuousRobustnessTest, BernoulliCannotBeContinuouslyRobust) {
  // Footnote 4: with probability 1 - p the first element is not sampled,
  // so S_1 is empty (discrepancy 1 > eps) — Bernoulli sampling fails
  // continuous robustness for any p < 1 - delta.
  const double p = 0.3;
  constexpr size_t kRuns = 2000;
  size_t violations = 0;
  for (size_t run = 0; run < kRuns; ++run) {
    BernoulliSampler<int64_t> sampler(p, 1000 + run);
    StaticAdversary<int64_t> adv(std::vector<int64_t>(10, 5));
    const auto r = RunContinuousAdaptiveGame(
        sampler, adv, 10, PrefixFn(), 0.5, CheckpointSchedule::All(10));
    violations += !r.continuously_approximating;
  }
  // Violation probability >= 1 - p = 0.7.
  EXPECT_GT(static_cast<double>(violations) / kRuns, 0.6);
}

TEST(ContinuousRobustnessTest, ViolationsLocalizedEarlyForReservoir) {
  // A reservoir is exact for the first k rounds, so with a sufficient k
  // any continuous violation can only occur after round k.
  const size_t k = 50, n = 1000;
  UniformAdversary adv(1 << 12, 17);
  ReservoirSampler<int64_t> sampler(k, 19);
  const auto r = RunContinuousAdaptiveGame(
      sampler, adv, n, PrefixFn(), 1e-9, CheckpointSchedule::All(n));
  // With eps ~ 0 the first violation happens as soon as sampling begins —
  // i.e. strictly after the exact phase of k rounds.
  ASSERT_GT(r.first_violation_round, 0u);
  EXPECT_GT(r.first_violation_round, k);
}

TEST(ContinuousRobustnessTest, MaxDiscrepancyDecreasesWithK) {
  const size_t n = 1500;
  const int64_t universe = 1 << 16;
  auto run_with_k = [&](size_t k) {
    const auto stats = RunTrials(8, 59, [&](uint64_t seed) {
      UniformAdversary adv(universe, MixSeed(seed, 9));
      ReservoirSampler<int64_t> sampler(k, seed);
      return RunContinuousAdaptiveGame(sampler, adv, n, PrefixFn(), 1.0,
                                       CheckpointSchedule::Geometric(
                                           k, n, 0.25))
          .max_discrepancy;
    });
    return stats.mean;
  };
  const double coarse = run_with_k(20);
  const double fine = run_with_k(500);
  EXPECT_LT(fine, coarse);
}

}  // namespace
}  // namespace robust_sampling
