// Property-based tests: invariants that must hold across parameter sweeps
// and adversary choices, including the deterministic combinatorial claims
// (6.1, 6.2) underlying Theorem 1.4 and the adversary-independence of the
// samplers' acceptance coins.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <tuple>
#include <vector>

#include "adversary/basic_adversaries.h"
#include "adversary/bisection_adversary.h"
#include "core/adversarial_game.h"
#include "core/bernoulli_sampler.h"
#include "core/random.h"
#include "core/reservoir_sampler.h"
#include "core/sample_bounds.h"
#include "gtest/gtest.h"
#include "harness/trial_runner.h"
#include "setsystem/discrepancy.h"

namespace robust_sampling {
namespace {

DiscrepancyFn<int64_t> PrefixFn() {
  return [](const std::vector<int64_t>& x, const std::vector<int64_t>& s) {
    return PrefixDiscrepancy(x, s);
  };
}

// ---------------------------------------------------- Claim 6.1 and 6.2 --

TEST(ClaimSixOneTest, SwappingVValuesMovesDensityByAtMostVOverK) {
  Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t k = 20 + rng.NextBelow(30);
    std::vector<int64_t> t(k), t2;
    for (auto& v : t) v = static_cast<int64_t>(rng.NextBelow(100)) + 1;
    t2 = t;
    const size_t v = rng.NextBelow(k);  // change up to v values
    for (size_t i = 0; i < v; ++i) {
      t2[rng.NextBelow(k)] = static_cast<int64_t>(rng.NextBelow(100)) + 1;
    }
    // Count how many positions actually differ.
    size_t diff = 0;
    for (size_t i = 0; i < k; ++i) diff += t[i] != t2[i];
    // For every prefix range [1, b], |d(T) - d(T')| <= diff/k.
    for (int64_t b = 1; b <= 100; b += 7) {
      size_t c1 = 0, c2 = 0;
      for (size_t i = 0; i < k; ++i) {
        c1 += t[i] <= b;
        c2 += t2[i] <= b;
      }
      const double d1 = static_cast<double>(c1) / k;
      const double d2 = static_cast<double>(c2) / k;
      EXPECT_LE(std::abs(d1 - d2),
                static_cast<double>(diff) / k + 1e-12);
    }
  }
}

TEST(ClaimSixTwoTest, ExtendingTheStreamDegradesApproximationByBeta) {
  // If T is an alpha-approximation of X and X' extends X by at most beta*|X|
  // elements, then T is an (alpha + beta)-approximation of X'.
  Rng rng(2);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<int64_t> x;
    const size_t n = 200 + rng.NextBelow(200);
    for (size_t i = 0; i < n; ++i) {
      x.push_back(static_cast<int64_t>(rng.NextBelow(50)) + 1);
    }
    // T = a random subsequence.
    std::vector<int64_t> t;
    for (int64_t v : x) {
      if (rng.NextBernoulli(0.2)) t.push_back(v);
    }
    if (t.empty()) continue;
    const double alpha = PrefixDiscrepancy(x, t);
    // Extend by beta fraction.
    const double beta = 0.25;
    std::vector<int64_t> x_ext = x;
    const size_t extra = static_cast<size_t>(beta * static_cast<double>(n));
    for (size_t i = 0; i < extra; ++i) {
      x_ext.push_back(static_cast<int64_t>(rng.NextBelow(50)) + 1);
    }
    const double alpha_ext = PrefixDiscrepancy(x_ext, t);
    EXPECT_LE(alpha_ext, alpha + beta + 1e-12) << "trial " << trial;
  }
}

// ------------------------------------- Adversary-independence of coins --

TEST(CoinIndependenceTest, BernoulliSampleSizeDistributionUnderAttack) {
  // The number of kept elements is Bin(n, p) no matter what the adversary
  // does (coins are independent of values) — here under the bisection
  // attack.
  constexpr size_t kN = 2000;
  constexpr double kP = 0.1;
  const auto stats = RunTrials(60, 11, [&](uint64_t seed) {
    BisectionAdversaryInt64 adv(int64_t{1} << 60, 1.0 - kP);
    BernoulliSampler<int64_t> sampler(kP, seed);
    const auto r = RunAdaptiveGame(sampler, adv, kN, PrefixFn(), 0.5);
    return static_cast<double>(r.sample.size());
  });
  const double mean = kN * kP;
  const double sd = std::sqrt(kN * kP * (1 - kP));
  EXPECT_NEAR(stats.mean, mean, 4.0 * sd / std::sqrt(60.0));
}

TEST(CoinIndependenceTest, ReservoirAcceptRateUnderAttackMatchesKOverI) {
  // P(round i accepted) = k/i regardless of the adversary.
  constexpr size_t kK = 10;
  constexpr size_t kI = 200;
  constexpr size_t kRuns = 4000;
  size_t accepted = 0;
  for (size_t run = 0; run < kRuns; ++run) {
    BisectionAdversaryInt64 adv(int64_t{1} << 60, 0.9);
    ReservoirSampler<int64_t> sampler(kK, 100 + run);
    for (size_t i = 1; i <= kI; ++i) {
      const int64_t x = adv.NextElement(sampler.sample(), i);
      sampler.Insert(x);
      adv.Observe(sampler.sample(), sampler.last_kept(), i);
    }
    accepted += sampler.last_kept();
  }
  const double p = static_cast<double>(kK) / kI;
  const double sd = std::sqrt(kRuns * p * (1 - p));
  EXPECT_NEAR(static_cast<double>(accepted), kRuns * p, 6.0 * sd);
}

// ------------------------------------------ Lemma 4.1 robustness sweep --

struct RobustnessCase {
  double eps;
  double delta;
  int adversary;  // 0 = uniform, 1 = greedy-gap, 2 = bisection
};

class SingleRangeRobustnessTest
    : public ::testing::TestWithParam<RobustnessCase> {
 protected:
  // Gap on the fixed target range R = [1, 100] within universe [1, 1000].
  static double TargetGap(const std::vector<int64_t>& x,
                          const std::vector<int64_t>& s) {
    if (s.empty()) return 1.0;
    size_t cx = 0, cs = 0;
    for (int64_t v : x) cx += v <= 100;
    for (int64_t v : s) cs += v <= 100;
    return std::abs(static_cast<double>(cx) / static_cast<double>(x.size()) -
                    static_cast<double>(cs) / static_cast<double>(s.size()));
  }

  std::unique_ptr<Adversary<int64_t>> MakeAdversary(int kind,
                                                    uint64_t seed) const {
    switch (kind) {
      case 0:
        return std::make_unique<UniformAdversary>(1000, seed);
      case 1:
        return std::make_unique<GreedyGapAdversary<int64_t>>(
            [](const int64_t& v) { return v <= 100; }, 50, 500);
      default:
        return std::make_unique<BisectionAdversaryInt64>(1000, 0.5);
    }
  }
};

TEST_P(SingleRangeRobustnessTest, ReservoirGapWithinEps) {
  const auto param = GetParam();
  const size_t k = ReservoirSingleRangeK(param.eps, param.delta);
  const size_t n = 2500;
  const auto stats = RunTrials(12, 900 + param.adversary, [&](uint64_t seed) {
    auto adv = MakeAdversary(param.adversary, MixSeed(seed, 5));
    ReservoirSampler<int64_t> sampler(k, seed);
    const auto r = RunAdaptiveGame(sampler, *adv, n, PrefixFn(), param.eps);
    return TargetGap(r.stream, r.sample);
  });
  // Lemma 4.1 promises gap <= eps with prob >= 1 - delta; empirically
  // require >= 1 - 2.5*delta over 12 trials.
  EXPECT_GE(stats.FractionAtMost(param.eps),
            1.0 - 2.5 * param.delta - 1e-9)
      << "eps=" << param.eps << " delta=" << param.delta
      << " adversary=" << param.adversary << " mean gap=" << stats.mean;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SingleRangeRobustnessTest,
    ::testing::Values(RobustnessCase{0.2, 0.1, 0},
                      RobustnessCase{0.2, 0.1, 1},
                      RobustnessCase{0.2, 0.1, 2},
                      RobustnessCase{0.15, 0.2, 0},
                      RobustnessCase{0.15, 0.2, 1},
                      RobustnessCase{0.15, 0.2, 2},
                      RobustnessCase{0.3, 0.05, 1},
                      RobustnessCase{0.3, 0.05, 2}));

// -------------------------------------------------- Discrepancy algebra --

TEST(DiscrepancyAlgebraTest, IdenticalMultisetsHaveZeroDiscrepancy) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<int64_t> x;
    for (int i = 0; i < 100; ++i) {
      x.push_back(static_cast<int64_t>(rng.NextBelow(30)) + 1);
    }
    std::vector<int64_t> shuffled = x;
    std::shuffle(shuffled.begin(), shuffled.end(), rng);
    EXPECT_DOUBLE_EQ(PrefixDiscrepancy(x, shuffled), 0.0);
    EXPECT_DOUBLE_EQ(IntervalDiscrepancy(x, shuffled), 0.0);
    EXPECT_DOUBLE_EQ(SingletonDiscrepancy(x, shuffled), 0.0);
  }
}

TEST(DiscrepancyAlgebraTest, DiscrepancyIsSymmetricInArguments) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<int64_t> x, s;
    for (int i = 0; i < 80; ++i) {
      x.push_back(static_cast<int64_t>(rng.NextBelow(40)) + 1);
    }
    for (int i = 0; i < 30; ++i) {
      s.push_back(static_cast<int64_t>(rng.NextBelow(40)) + 1);
    }
    EXPECT_NEAR(PrefixDiscrepancy(x, s), PrefixDiscrepancy(s, x), 1e-12);
    EXPECT_NEAR(IntervalDiscrepancy(x, s), IntervalDiscrepancy(s, x), 1e-12);
  }
}

TEST(DiscrepancyAlgebraTest, BoundedByOne) {
  Rng rng(9);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<int64_t> x{1}, s{1000000};
    for (int i = 0; i < 50; ++i) {
      x.push_back(static_cast<int64_t>(rng.NextBelow(1000)) + 1);
      s.push_back(static_cast<int64_t>(rng.NextBelow(1000)) + 1000000);
    }
    const double d = PrefixDiscrepancy(x, s);
    EXPECT_LE(d, 1.0 + 1e-12);
    EXPECT_GE(d, 0.0);
  }
}

TEST(DiscrepancyAlgebraTest, DisjointSupportsHaveDiscrepancyOne) {
  const std::vector<int64_t> x{1, 2, 3};
  const std::vector<int64_t> s{10, 11};
  EXPECT_DOUBLE_EQ(PrefixDiscrepancy(x, s), 1.0);
  // Worst singleton is a sample value: |0 - 1/2| = 1/2.
  EXPECT_DOUBLE_EQ(SingletonDiscrepancy(x, s), 0.5);
}

// Reservoir robustness across eps sweep with the full prefix family over a
// small universe (exact |R| known, so Theorem 1.2 is applied faithfully).
class FullFamilyRobustnessTest : public ::testing::TestWithParam<double> {};

TEST_P(FullFamilyRobustnessTest, ReservoirMeetsTheoremOneTwoOnSmallUniverse) {
  const double eps = GetParam();
  const double delta = 0.1;
  const int64_t universe = 64;
  const size_t k = ReservoirRobustK(eps, delta, std::log(64.0));
  const size_t n = 3000;
  const auto stats = RunTrials(10, 77, [&](uint64_t seed) {
    // Bisection over the small universe: it will exhaust, but remains a
    // legal adaptive strategy; robustness must hold against it regardless.
    BisectionAdversaryInt64 adv(universe, 0.5);
    ReservoirSampler<int64_t> sampler(k, seed);
    return RunAdaptiveGame(sampler, adv, n, PrefixFn(), eps).discrepancy;
  });
  EXPECT_GE(stats.FractionAtMost(eps), 0.8) << "eps=" << eps;
}

INSTANTIATE_TEST_SUITE_P(EpsSweep, FullFamilyRobustnessTest,
                         ::testing::Values(0.1, 0.15, 0.2, 0.3));

}  // namespace
}  // namespace robust_sampling
