// Tests for the sharded stream-ingestion pipeline: partitioning and
// bookkeeping, weight conservation through Snapshot() for every registered
// sketch kind, determinism under fixed seeds, and the headline statistical
// contract — a merged N-shard snapshot must match single-stream
// RobustSample density estimates within eps on both i.i.d. and
// adversarially generated (BisectionAdversary) streams.

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "adversary/bisection_adversary.h"
#include "core/reservoir_sampler.h"
#include "core/robust_sample.h"
#include "gtest/gtest.h"
#include "pipeline/sharded_pipeline.h"
#include "pipeline/sketch_registry.h"
#include "pipeline/stream_sketch.h"
#include "stream/generators.h"

namespace robust_sampling {
namespace {

void IngestInBatches(ShardedPipeline<int64_t>& pipeline,
                     const std::vector<int64_t>& stream,
                     size_t batch_size) {
  for (size_t i = 0; i < stream.size(); i += batch_size) {
    const size_t len = std::min(batch_size, stream.size() - i);
    pipeline.Ingest(std::span<const int64_t>(stream.data() + i, len));
  }
}

TEST(ShardedPipelineTest, RoundRobinBalancesShards) {
  SketchConfig config;
  config.kind = "reservoir";
  config.capacity = 64;
  PipelineOptions options;
  options.num_shards = 4;
  options.partition = PartitionPolicy::kRoundRobin;
  ShardedPipeline<int64_t> pipeline(config, options);
  const auto stream = UniformIntStream(40000, 1 << 20, 71);
  IngestInBatches(pipeline, stream, 1000);
  const auto sizes = pipeline.ShardStreamSizes();
  ASSERT_EQ(sizes.size(), 4u);
  size_t total = 0;
  for (size_t s : sizes) {
    EXPECT_EQ(s, 10000u);
    total += s;
  }
  EXPECT_EQ(total, 40000u);
  EXPECT_EQ(pipeline.total_ingested(), 40000u);
}

TEST(ShardedPipelineTest, HashPartitionIsContentAddressed) {
  SketchConfig config;
  config.kind = "misra_gries";
  config.capacity = 10;
  PipelineOptions options;
  options.num_shards = 4;
  options.partition = PartitionPolicy::kHash;
  // The same element must always land on the same shard: a stream of one
  // repeated value leaves exactly one shard non-empty.
  ShardedPipeline<int64_t> pipeline(config, options);
  const std::vector<int64_t> stream(5000, 42);
  IngestInBatches(pipeline, stream, 500);
  const auto sizes = pipeline.ShardStreamSizes();
  size_t non_empty = 0;
  for (size_t s : sizes) non_empty += s > 0;
  EXPECT_EQ(non_empty, 1u);
  EXPECT_EQ(pipeline.Snapshot().StreamSize(), 5000u);
}

// Weight conservation: for every registered kind, the merged snapshot
// answers for the entire ingested stream.
TEST(ShardedPipelineTest, SnapshotConservesStreamSizeForEveryKind) {
  const auto stream = UniformIntStream(10000, 1 << 16, 73);
  for (const auto& kind : SketchRegistry<int64_t>::Global().Kinds()) {
    SketchConfig config;
    config.kind = kind;
    config.probability = 0.02;
    config.seed = 17;
    PipelineOptions options;
    options.num_shards = 3;
    options.partition = PartitionPolicy::kHash;
    ShardedPipeline<int64_t> pipeline(config, options);
    IngestInBatches(pipeline, stream, 997);
    const auto snapshot = pipeline.Snapshot();
    EXPECT_EQ(snapshot.StreamSize(), stream.size()) << kind;
  }
}

TEST(ShardedPipelineTest, SnapshotIsRepeatableAndNonDisruptive) {
  SketchConfig config;
  config.kind = "robust_sample";
  config.seed = 77;
  PipelineOptions options;
  options.num_shards = 2;
  ShardedPipeline<int64_t> pipeline(config, options);
  const auto stream = UniformIntStream(50000, 1 << 20, 79);
  IngestInBatches(pipeline, stream, 2048);
  const auto snap1 = pipeline.Snapshot();
  const auto snap2 = pipeline.Snapshot();
  // Snapshots without intervening ingestion are identical (samples read
  // through the erased SampleView — no downcast).
  EXPECT_TRUE(std::ranges::equal(snap1.SampleView().elements,
                                 snap2.SampleView().elements));
  // ...and do not disturb continued ingestion.
  IngestInBatches(pipeline, stream, 2048);
  EXPECT_EQ(pipeline.Snapshot().StreamSize(), 100000u);
}

// The satellite determinism requirement: fixed seeds (and fixed batch
// boundaries) produce a bit-for-bit identical merged snapshot.
TEST(ShardedPipelineTest, FixedSeedsGiveIdenticalMergedSnapshots) {
  const auto stream = UniformIntStream(60000, 1 << 20, 83);
  for (PartitionPolicy policy :
       {PartitionPolicy::kHash, PartitionPolicy::kRoundRobin}) {
    SketchConfig config;
    config.kind = "robust_sample";
    config.eps = 0.1;
    config.delta = 0.05;
    config.seed = 12345;
    PipelineOptions options;
    options.num_shards = 4;
    options.partition = policy;
    ShardedPipeline<int64_t> p1(config, options);
    ShardedPipeline<int64_t> p2(config, options);
    IngestInBatches(p1, stream, 1 << 12);
    IngestInBatches(p2, stream, 1 << 12);
    const auto s1 = p1.Snapshot();
    const auto s2 = p2.Snapshot();
    EXPECT_TRUE(std::ranges::equal(s1.SampleView().elements,
                                   s2.SampleView().elements));
    EXPECT_EQ(s1.StreamSize(), s2.StreamSize());
  }
}

// Shared harness for the eps-accuracy contract: both the single-stream
// RobustSample and the merged N-shard snapshot must estimate prefix-range
// densities of `stream` within eps of the exact value.
void ExpectPipelineMatchesSingleStream(const std::vector<int64_t>& stream,
                                       uint64_t universe_size, double eps,
                                       size_t num_shards,
                                       PartitionPolicy policy) {
  const double delta = 0.05;
  SketchConfig config;
  config.kind = "robust_sample";
  config.eps = eps;
  config.delta = delta;
  config.universe_size = universe_size;
  config.seed = 4242;
  PipelineOptions options;
  options.num_shards = num_shards;
  options.partition = policy;
  ShardedPipeline<int64_t> pipeline(config, options);
  IngestInBatches(pipeline, stream, 4096);
  const auto snapshot = pipeline.Snapshot();
  auto single = RobustSample<int64_t>::ForQuantiles(eps, delta,
                                                    universe_size, 4242);
  for (int64_t v : stream) single.Insert(v);
  ASSERT_EQ(snapshot.StreamSize(), stream.size());
  ASSERT_EQ(single.stream_size(), stream.size());
  // Probe prefix ranges at the stream's own empirical quantiles, where
  // densities are far from 0/1 and estimation is hardest. The merged
  // snapshot answers through the erased query surface (Rank == prefix
  // density), the single-stream reference through EstimateDensity.
  std::vector<int64_t> sorted = stream;
  std::sort(sorted.begin(), sorted.end());
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    const int64_t threshold =
        sorted[static_cast<size_t>(q * (sorted.size() - 1))];
    size_t truth = 0;
    for (int64_t v : stream) truth += v <= threshold;
    const double true_density =
        static_cast<double>(truth) / static_cast<double>(stream.size());
    const auto le = [threshold](int64_t v) { return v <= threshold; };
    EXPECT_NEAR(snapshot.Rank(static_cast<double>(threshold)),
                true_density, eps)
        << "merged, q=" << q;
    EXPECT_NEAR(single.EstimateDensity(le), true_density, eps)
        << "single, q=" << q;
  }
}

TEST(ShardedPipelineAccuracyTest, MergedSnapshotMatchesSingleStreamIid) {
  const uint64_t universe = uint64_t{1} << 20;
  const auto stream =
      UniformIntStream(200000, static_cast<int64_t>(universe), 89);
  ExpectPipelineMatchesSingleStream(stream, universe, 0.1, 4,
                                    PartitionPolicy::kRoundRobin);
  ExpectPipelineMatchesSingleStream(stream, universe, 0.1, 4,
                                    PartitionPolicy::kHash);
}

TEST(ShardedPipelineAccuracyTest, MergedSnapshotMatchesSingleStreamSkewed) {
  const uint64_t universe = uint64_t{1} << 20;
  const auto stream =
      ZipfIntStream(150000, static_cast<int64_t>(universe), 1.1, 91);
  ExpectPipelineMatchesSingleStream(stream, universe, 0.1, 8,
                                    PartitionPolicy::kHash);
}

// Adversarial streams: run the paper's bisection attack against a
// deliberately under-provisioned victim reservoir to obtain a stream
// crafted to skew samples, then check that properly sized samplers —
// single-stream and sharded+merged alike — still estimate its prefix
// densities within eps.
TEST(ShardedPipelineAccuracyTest,
     MergedSnapshotMatchesSingleStreamOnBisectionAdversaryStream) {
  const uint64_t universe = uint64_t{1} << 40;
  const size_t n = 30000;
  BisectionAdversaryInt64 adversary(static_cast<int64_t>(universe), 0.5);
  ReservoirSampler<int64_t> victim(50, 97);  // far below Theorem 1.2 sizing
  std::vector<int64_t> stream;
  stream.reserve(n);
  for (size_t round = 1; round <= n; ++round) {
    const int64_t x = adversary.NextElement(victim.sample(), round);
    victim.Insert(x);
    stream.push_back(x);
    adversary.Observe(victim.sample(), victim.last_kept(), round);
  }
  ExpectPipelineMatchesSingleStream(stream, universe, 0.1, 4,
                                    PartitionPolicy::kHash);
  ExpectPipelineMatchesSingleStream(stream, universe, 0.1, 4,
                                    PartitionPolicy::kRoundRobin);
}

// CountMin shards share hash rows (seeded from config.seed), so the
// merged snapshot must equal a single sketch of the whole stream —
// deterministically, since CountMin is linear.
TEST(ShardedPipelineTest, CountMinSnapshotEqualsSingleSketch) {
  SketchConfig config;
  config.kind = "count_min";
  config.width = 512;
  config.depth = 3;
  config.seed = 101;
  PipelineOptions options;
  options.num_shards = 4;
  options.partition = PartitionPolicy::kHash;
  ShardedPipeline<int64_t> pipeline(config, options);
  const auto stream = ZipfIntStream(50000, 2000, 1.2, 103);
  IngestInBatches(pipeline, stream, 1 << 12);
  const auto snapshot = pipeline.Snapshot();
  CountMinSketch single(512, 3, 101);
  for (int64_t v : stream) single.Insert(v);
  EXPECT_EQ(snapshot.StreamSize(), single.StreamSize());
  for (int64_t x = 1; x <= 2000; x += 13) {
    EXPECT_DOUBLE_EQ(snapshot.EstimateFrequency(x),
                     single.EstimateFrequency(x))
        << x;
  }
}

TEST(ShardedPipelineTest, SingleShardDegeneratesGracefully) {
  SketchConfig config;
  config.kind = "reservoir";
  config.capacity = 128;
  PipelineOptions options;
  options.num_shards = 1;
  ShardedPipeline<int64_t> pipeline(config, options);
  const auto stream = UniformIntStream(30000, 1 << 16, 107);
  IngestInBatches(pipeline, stream, 512);
  const auto snapshot = pipeline.Snapshot();
  EXPECT_EQ(snapshot.StreamSize(), 30000u);
  EXPECT_EQ(snapshot.SpaceItems(), 128u);
}

TEST(ShardedPipelineTest, StopDrainsOutstandingBatchesAndIsIdempotent) {
  SketchConfig config;
  config.kind = "reservoir";
  config.capacity = 64;
  PipelineOptions options;
  options.num_shards = 4;
  options.ring_capacity = 2;  // force backpressure
  ShardedPipeline<int64_t> pipeline(config, options);
  const auto stream = UniformIntStream(100000, 1 << 20, 109);
  IngestInBatches(pipeline, stream, 256);
  pipeline.Stop();
  pipeline.Stop();
  EXPECT_EQ(pipeline.Snapshot().StreamSize(), 100000u);
}

}  // namespace
}  // namespace robust_sampling
