// End-to-end checks of the paper's headline claims, run as small versions
// of the bench/ experiments: Theorem 1.2 (robust sample sizes defeat the
// attack), Theorem 1.3 (undersized samples are defeated — over the
// exponentially large universes the theorem requires), and the Section 1.2
// applications under adversarial streams.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "adversary/basic_adversaries.h"
#include "adversary/bisection_adversary.h"
#include "attacklab/any_sampler.h"
#include "core/adversarial_game.h"
#include "core/bernoulli_sampler.h"
#include "core/big_uint.h"
#include "core/reservoir_sampler.h"
#include "core/sample_bounds.h"
#include "gtest/gtest.h"
#include "harness/trial_runner.h"
#include "quantiles/exact_quantiles.h"
#include "setsystem/discrepancy.h"

namespace robust_sampling {
namespace {

DiscrepancyFn<int64_t> PrefixFnInt() {
  return [](const std::vector<int64_t>& x, const std::vector<int64_t>& s) {
    return PrefixDiscrepancy(x, s);
  };
}

DiscrepancyFn<BigUint> PrefixFnBig() {
  return [](const std::vector<BigUint>& x, const std::vector<BigUint>& s) {
    return PrefixDiscrepancy(x, s);
  };
}

// Bisection attack against ReservoirSample(k) over a universe with
// ln N = log_universe; returns the final prefix discrepancy. The sampler
// is created from the registry and played through the type-erased
// AnySampler surface — the same path the AttackLab driver and the sharded
// pipeline use (registry factories match the direct constructors, so the
// games are seed-for-seed identical to concrete-type play).
double AttackReservoirOnce(size_t k, size_t n, double split,
                           double log_universe, uint64_t seed) {
  BisectionAdversaryBig adv(BigUint::ApproxExp(log_universe), split);
  SketchConfig config;
  config.kind = "reservoir";
  config.capacity = k;
  config.log_universe = log_universe;
  AnySampler<BigUint> sampler =
      AnySampler<BigUint>::FromConfig(config, seed);
  return RunAdaptiveGame(sampler, adv, n, PrefixFnBig(), 0.25).discrepancy;
}

double AttackBernoulliOnce(double p, size_t n, double split,
                           double log_universe, uint64_t seed) {
  BisectionAdversaryBig adv(BigUint::ApproxExp(log_universe), split);
  SketchConfig config;
  config.kind = "bernoulli";
  config.probability = p;
  config.log_universe = log_universe;
  AnySampler<BigUint> sampler =
      AnySampler<BigUint>::FromConfig(config, seed);
  return RunAdaptiveGame(sampler, adv, n, PrefixFnBig(), 0.25).discrepancy;
}

TEST(TheoremOneTwoTest, RobustReservoirSurvivesBisectionAttack) {
  // k sized by Theorem 1.2 for the prefix family over a universe with
  // ln N = 60. At this k the attack cannot sustain its range (it needs
  // ln N >> k' per accepted element), so it stalls and the sample stays
  // representative — exactly the theorem's message.
  const double eps = 0.25, delta = 0.1;
  const double log_universe = 60.0;
  const size_t k = ReservoirRobustK(eps, delta, log_universe);
  const size_t n = 4000;
  const double split = 1.0 - std::log(static_cast<double>(n)) / n;
  const auto stats = RunTrials(10, 1001, [&](uint64_t seed) {
    return AttackReservoirOnce(k, n, split, log_universe, seed);
  });
  // Theorem 1.2 promises failure probability <= delta = 0.1; allow slack.
  EXPECT_GE(stats.FractionAtMost(eps), 0.8)
      << "mean discrepancy " << stats.mean;
}

TEST(TheoremOneTwoTest, RobustBernoulliSurvivesBisectionAttack) {
  const double eps = 0.25, delta = 0.1;
  const double log_universe = 60.0;
  const size_t n = 20000;  // large enough that the required p is < 1
  const double p = BernoulliRobustP(eps, delta, log_universe, n);
  ASSERT_LT(p, 1.0);
  const double p_prime =
      std::max(p, std::log(static_cast<double>(n)) / n);
  const auto stats = RunTrials(10, 2001, [&](uint64_t seed) {
    return AttackBernoulliOnce(p, n, 1.0 - p_prime, log_universe, seed);
  });
  EXPECT_GE(stats.FractionAtMost(eps), 0.8)
      << "mean discrepancy " << stats.mean;
}

TEST(TheoremOneThreeTest, UndersizedReservoirIsDefeated) {
  // k far below ln N / ln n with a universe large enough for the attack to
  // run all n rounds: discrepancy exceeds 1/2 (Theorem 1.3, part 2).
  const size_t n = 4000;
  const size_t k = 3;
  const double log_universe = 300.0;
  const auto stats = RunTrials(10, 3001, [&](uint64_t seed) {
    return AttackReservoirOnce(k, n, 0.99, log_universe, seed);
  });
  EXPECT_GE(stats.FractionAtLeast(0.5), 0.9)
      << "mean discrepancy " << stats.mean;
}

TEST(TheoremOneThreeTest, UndersizedBernoulliIsDefeated) {
  const size_t n = 4000;
  const double p_prime = std::log(static_cast<double>(n)) / n;
  const double log_universe = 300.0;
  const auto stats = RunTrials(10, 4001, [&](uint64_t seed) {
    return AttackBernoulliOnce(p_prime, n, 1.0 - p_prime, log_universe,
                               seed);
  });
  EXPECT_GE(stats.FractionAtLeast(0.5), 0.9)
      << "mean discrepancy " << stats.mean;
}

TEST(TheoremOneThreeTest, AttackedSampleIsExactlyTheSmallestElements) {
  // The Bernoulli attack's signature end state (Claim 5.2): the sample is
  // precisely the |S| smallest stream elements.
  BisectionAdversaryBig adv(BigUint::ApproxExp(300.0), 0.99);
  BernoulliSampler<BigUint> sampler(0.01, 77);
  const auto result =
      RunAdaptiveGame(sampler, adv, 2000, PrefixFnBig(), 0.25);
  ASSERT_FALSE(adv.exhausted());
  ASSERT_FALSE(result.sample.empty());
  auto sorted_stream = result.stream;
  std::sort(sorted_stream.begin(), sorted_stream.end());
  auto sorted_sample = result.sample;
  std::sort(sorted_sample.begin(), sorted_sample.end());
  for (size_t i = 0; i < sorted_sample.size(); ++i) {
    EXPECT_EQ(sorted_sample[i], sorted_stream[i]);
  }
  EXPECT_GT(result.discrepancy, 0.9);
}

TEST(StaticVsAdaptiveTest, StaticSampleSizeSufficesOnlyWithoutAdaptivity) {
  // E6's core contrast at test scale: the prefix family has VC-dimension 1,
  // so the *static* bound gives a small k. An oblivious stream is handled
  // fine at that size; the adaptive bisection attack (over a universe sized
  // so it can run) is not.
  const double eps = 0.25, delta = 0.1;
  const size_t k = ReservoirStaticK(eps, delta, /*vc_dimension=*/1.0);
  const size_t n = 4000;
  const auto static_stats = RunTrials(10, 5001, [&](uint64_t seed) {
    UniformAdversary adv(1 << 30, MixSeed(seed, 1));
    ReservoirSampler<int64_t> sampler(k, seed);
    return RunAdaptiveGame(sampler, adv, n, PrefixFnInt(), eps).discrepancy;
  });
  EXPECT_GE(static_stats.FractionAtMost(eps), 0.8);
  // The adaptive attack at the same k: needs ln N ~ k ln n room. The
  // robust (Theorem 1.2) size for this universe would be ~2*ln N/eps^2,
  // far above the static k — so the attack wins here.
  const double log_universe = 3000.0;
  ASSERT_GT(ReservoirRobustK(eps, delta, log_universe), 10 * k);
  const auto adaptive_stats = RunTrials(10, 6001, [&](uint64_t seed) {
    return AttackReservoirOnce(k, n, 0.99, log_universe, seed);
  });
  EXPECT_LE(adaptive_stats.FractionAtMost(eps), 0.5)
      << "attack failed to beat the static-size sample; mean discrepancy "
      << adaptive_stats.mean;
}

TEST(QuantileApplicationTest, AttackedReservoirQuantilesStayAccurate) {
  // Corollary 1.5 at test scale: a reservoir sized for the prefix family
  // over the attack universe gives eps-accurate quantiles under attack.
  const double eps = 0.2, delta = 0.1;
  const double log_universe = 60.0;
  const size_t k =
      ReservoirRobustK(eps, delta, log_universe);  // Cor. 1.5 form
  const size_t n = 6000;
  BisectionAdversaryBig adv(BigUint::ApproxExp(log_universe), 0.995);
  ReservoirSampler<BigUint> sampler(k, 88);
  const auto result = RunAdaptiveGame(sampler, adv, n, PrefixFnBig(), eps);
  // Rank error of the sample median within eps.
  auto sorted_stream = result.stream;
  std::sort(sorted_stream.begin(), sorted_stream.end());
  auto sample = result.sample;
  std::sort(sample.begin(), sample.end());
  const BigUint& sample_median = sample[sample.size() / 2];
  // Rank of the sample median in the stream.
  const auto lo = std::lower_bound(sorted_stream.begin(), sorted_stream.end(),
                                   sample_median);
  const auto hi = std::upper_bound(sorted_stream.begin(), sorted_stream.end(),
                                   sample_median);
  const double f_lo =
      static_cast<double>(lo - sorted_stream.begin()) / n;
  const double f_hi =
      static_cast<double>(hi - sorted_stream.begin()) / n;
  const double rank_error =
      std::max(0.0, std::max(f_lo - 0.5, 0.5 - f_hi));
  EXPECT_LE(rank_error, eps);
}

TEST(GreedyGapAdversaryTest, SingleRangeAttackBoundedByLemma41) {
  // Lemma 4.1: against a single fixed range, even an adaptive adversary
  // cannot push the density gap past eps at k = 2 ln(2/delta)/eps^2.
  const double eps = 0.2, delta = 0.1;
  const size_t k = ReservoirSingleRangeK(eps, delta);
  const size_t n = 3000;
  const auto stats = RunTrials(15, 7001, [&](uint64_t seed) {
    GreedyGapAdversary<int64_t> adv(
        [](const int64_t& v) { return v <= 100; }, 50, 1000);
    ReservoirSampler<int64_t> sampler(k, seed);
    const auto result = RunAdaptiveGame(sampler, adv, n, PrefixFnInt(), eps);
    size_t in_stream = 0, in_sample = 0;
    for (int64_t v : result.stream) in_stream += v <= 100;
    for (int64_t v : result.sample) in_sample += v <= 100;
    const double dx = static_cast<double>(in_stream) / n;
    const double ds = static_cast<double>(in_sample) /
                      static_cast<double>(result.sample.size());
    return std::abs(dx - ds);
  });
  EXPECT_GE(stats.FractionAtMost(eps), 0.85) << "mean gap " << stats.mean;
}

}  // namespace
}  // namespace robust_sampling
