#include "core/big_uint.h"

#include <cmath>
#include <cstdint>

#include "gtest/gtest.h"

namespace robust_sampling {
namespace {

TEST(BigUintTest, DefaultIsZero) {
  BigUint z;
  EXPECT_TRUE(z.IsZero());
  EXPECT_EQ(z.BitLength(), 0u);
  EXPECT_EQ(z.ToHexString(), "0");
  EXPECT_EQ(z.ToDouble(), 0.0);
}

TEST(BigUintTest, SmallValues) {
  BigUint v(255);
  EXPECT_FALSE(v.IsZero());
  EXPECT_EQ(v.BitLength(), 8u);
  EXPECT_EQ(v.ToHexString(), "ff");
  EXPECT_EQ(v.ToDouble(), 255.0);
}

TEST(BigUintTest, Pow2) {
  EXPECT_EQ(BigUint::Pow2(0), BigUint(1));
  EXPECT_EQ(BigUint::Pow2(10), BigUint(1024));
  const BigUint big = BigUint::Pow2(200);
  EXPECT_EQ(big.BitLength(), 201u);
  EXPECT_NEAR(big.Log(), 200.0 * std::log(2.0), 1e-9);
}

TEST(BigUintTest, ComparisonTotalOrder) {
  const BigUint a(5), b(7), c = BigUint::Pow2(100);
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_LT(a, c);
  EXPECT_LE(a, a);
  EXPECT_GT(c, a);
  EXPECT_GE(b, b);
  EXPECT_EQ(a, BigUint(5));
  EXPECT_NE(a, b);
}

TEST(BigUintTest, AddSmall) {
  EXPECT_EQ(BigUint(3) + BigUint(4), BigUint(7));
  EXPECT_EQ(BigUint(0) + BigUint(9), BigUint(9));
}

TEST(BigUintTest, AddWithCarryAcrossLimbs) {
  const BigUint max64(UINT64_MAX);
  const BigUint sum = max64 + BigUint(1);
  EXPECT_EQ(sum, BigUint::Pow2(64));
}

TEST(BigUintTest, SubInverseOfAdd) {
  const BigUint a = BigUint::Pow2(130) + BigUint(12345);
  const BigUint b = BigUint::Pow2(65) + BigUint(99);
  EXPECT_EQ((a + b) - b, a);
  EXPECT_EQ((a + b) - a, b);
  EXPECT_EQ(a - a, BigUint(0));
}

TEST(BigUintTest, SubBorrowAcrossLimbs) {
  const BigUint p64 = BigUint::Pow2(64);
  EXPECT_EQ(p64 - BigUint(1), BigUint(UINT64_MAX));
}

TEST(BigUintTest, MulU64Basic) {
  EXPECT_EQ(BigUint(6).MulU64(7), BigUint(42));
  EXPECT_EQ(BigUint(42).MulU64(0), BigUint(0));
  EXPECT_EQ(BigUint(0).MulU64(42), BigUint(0));
}

TEST(BigUintTest, MulU64Carry) {
  // (2^64 - 1) * 2 = 2^65 - 2
  const BigUint r = BigUint(UINT64_MAX).MulU64(2);
  EXPECT_EQ(r, BigUint::Pow2(65) - BigUint(2));
}

TEST(BigUintTest, DivU64Basic) {
  EXPECT_EQ(BigUint(42).DivU64(7), BigUint(6));
  EXPECT_EQ(BigUint(43).DivU64(7), BigUint(6));  // floor
  EXPECT_EQ(BigUint(6).DivU64(7), BigUint(0));
}

TEST(BigUintTest, DivU64MultiLimb) {
  const BigUint a = BigUint::Pow2(130);
  EXPECT_EQ(a.DivU64(2), BigUint::Pow2(129));
  // Round-trip: (a / 3) * 3 + (a mod 3) == a.
  const BigUint q = a.DivU64(3);
  EXPECT_EQ(q.MulU64(3) + BigUint(a.ModU64(3)), a);
}

TEST(BigUintTest, ModU64) {
  EXPECT_EQ(BigUint(10).ModU64(3), 1u);
  EXPECT_EQ(BigUint::Pow2(64).ModU64(10), 6u);  // 2^64 mod 10 = 6
}

TEST(BigUintTest, Shifts) {
  const BigUint a(0xABCD);
  EXPECT_EQ(a.ShiftLeft(4).ToHexString(), "abcd0");
  EXPECT_EQ(a.ShiftRight(4).ToHexString(), "abc");
  EXPECT_EQ(a.ShiftLeft(64).ShiftRight(64), a);
  EXPECT_EQ(a.ShiftRight(100), BigUint(0));
  EXPECT_EQ(a.ShiftLeft(0), a);
  EXPECT_EQ(a.ShiftRight(0), a);
}

TEST(BigUintTest, ShiftAcrossLimbs) {
  const BigUint a = BigUint(1).ShiftLeft(100);
  EXPECT_EQ(a, BigUint::Pow2(100));
  EXPECT_EQ(a.ShiftRight(37), BigUint::Pow2(63));
}

TEST(BigUintTest, LogMatchesForSmallValues) {
  for (uint64_t v : {1ULL, 2ULL, 10ULL, 12345ULL, 1ULL << 50}) {
    EXPECT_NEAR(BigUint(v).Log(), std::log(static_cast<double>(v)), 1e-9);
  }
}

TEST(BigUintTest, LogOfHugeValue) {
  // ln(2^1000) = 1000 ln 2.
  EXPECT_NEAR(BigUint::Pow2(1000).Log(), 1000.0 * std::log(2.0), 1e-6);
}

TEST(BigUintTest, ApproxExpRoundTripsThroughLog) {
  for (double x : {1.0, 10.0, 50.0, 166.0, 500.0, 2000.0}) {
    const BigUint v = BigUint::ApproxExp(x);
    EXPECT_FALSE(v.IsZero());
    // floor() shifts the log down by up to ln(v+1) - ln(v) ~ e^{-x}.
    const double floor_slack = std::max(1e-6, 1.5 * std::exp(-x));
    EXPECT_NEAR(v.Log(), x, floor_slack) << "x=" << x;
  }
}

TEST(BigUintTest, ApproxExpSmall) {
  EXPECT_EQ(BigUint::ApproxExp(0.0), BigUint(1));
  // floor(e^1) = 2.
  EXPECT_EQ(BigUint::ApproxExp(1.0), BigUint(2));
}

TEST(BigUintTest, ToDoubleLargeValue) {
  const BigUint v = BigUint::Pow2(100);
  EXPECT_NEAR(v.ToDouble(), std::ldexp(1.0, 100), std::ldexp(1.0, 50));
}

TEST(BigUintTest, HexStringMultiLimb) {
  const BigUint v = BigUint::Pow2(64) + BigUint(0xF);
  EXPECT_EQ(v.ToHexString(), "1000000000000000f");
}

TEST(BigUintDeathTest, SubUnderflowAborts) {
  EXPECT_DEATH(BigUint(1) - BigUint(2), "underflow");
}

TEST(BigUintDeathTest, DivByZeroAborts) {
  EXPECT_DEATH(BigUint(1).DivU64(0), "division by zero");
}

}  // namespace
}  // namespace robust_sampling
