// Golden-blob corpus: frozen wire-format-v1 snapshot and checkpoint
// files under tests/golden/, written by the v1 writer before the v2
// format landed. Every test here proves the CURRENT reader still revives
// them with byte-for-byte-equivalent state — the schema-evolution
// contract of docs/wire.md ("readers upgrade, blobs never rot"). The
// blobs must never be regenerated: a regenerated blob silently tests the
// current writer against the current reader, which is a different (and
// much weaker) claim.

#include <cstdint>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "core/random.h"
#include "pipeline/sharded_pipeline.h"
#include "pipeline/sketch_config.h"
#include "pipeline/sketch_registry.h"
#include "pipeline/stream_sketch.h"
#include "wire/codec.h"
#include "wire/snapshot.h"

namespace robust_sampling {
namespace {

// Exactly the configuration the generator used when the corpus was
// frozen (2026-08, wire format v1). Do not change any value: the blobs
// embed it, and revival compares against sketches rebuilt from it.
SketchConfig GoldenConfig(const std::string& kind) {
  SketchConfig config;
  config.kind = kind;
  config.eps = 0.1;
  config.delta = 0.05;
  config.universe_size = 512;
  config.capacity = 64;
  config.probability = 0.25;
  config.width = 128;
  config.depth = 3;
  config.seed = 0xC0FFEE;
  return config;
}

// The exact stream the corpus was built from.
std::vector<int64_t> GoldenStream(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<int64_t> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(static_cast<int64_t>(rng.NextBelow(512)) + 1);
  }
  return out;
}

std::string GoldenPath(const std::string& file) {
  return std::string(RS_SOURCE_DIR) + "/tests/golden/" + file;
}

// Same full-query comparison as wire_test: two same-kind sketches must
// answer every supported query bit-identically.
void ExpectIdenticalAnswers(const StreamSketch<int64_t>& a,
                            const StreamSketch<int64_t>& b,
                            const std::string& context) {
  ASSERT_EQ(a.Capabilities(), b.Capabilities()) << context;
  EXPECT_EQ(a.Name(), b.Name()) << context;
  EXPECT_EQ(a.StreamSize(), b.StreamSize()) << context;
  EXPECT_EQ(a.SpaceItems(), b.SpaceItems()) << context;
  if (a.Supports(kCapSampleView)) {
    const auto va = a.SampleView();
    const auto vb = b.SampleView();
    EXPECT_EQ(va.last_kept, vb.last_kept) << context;
    ASSERT_EQ(va.elements.size(), vb.elements.size()) << context;
    for (size_t i = 0; i < va.elements.size(); ++i) {
      EXPECT_EQ(va.elements[i], vb.elements[i])
          << context << " sample[" << i << "]";
    }
  }
  if (a.Supports(kCapQuantiles) && a.StreamSize() > 0 && a.SpaceItems() > 0) {
    for (double q = 0.05; q < 1.0; q += 0.05) {
      EXPECT_EQ(a.Quantile(q), b.Quantile(q)) << context << " q=" << q;
    }
    for (double x : {0.0, 100.0, 256.0, 511.0}) {
      EXPECT_EQ(a.Rank(x), b.Rank(x)) << context << " rank(" << x << ")";
    }
  }
  if (a.Supports(kCapFrequencies)) {
    for (int64_t x = 1; x <= 512; x += 7) {
      EXPECT_EQ(a.EstimateFrequency(x), b.EstimateFrequency(x))
          << context << " freq(" << x << ")";
    }
  }
  if (a.Supports(kCapHeavyHitters)) {
    const auto ha = a.HeavyHitters(0.001);
    const auto hb = b.HeavyHitters(0.001);
    ASSERT_EQ(ha.size(), hb.size()) << context;
    for (size_t i = 0; i < ha.size(); ++i) {
      EXPECT_EQ(ha[i].element, hb[i].element) << context;
      EXPECT_EQ(ha[i].frequency, hb[i].frequency) << context;
    }
  }
}

// Every kind has a v1 snapshot blob, and the current (v2) reader revives
// it into exactly the state the v1 writer serialized: identical answers
// to a freshly built sketch over the same stream, and a re-serialization
// (v2) byte-identical to the fresh sketch's — i.e. the upgrade read lost
// nothing and invented nothing.
TEST(GoldenBlobTest, V1SnapshotsReviveByteEquivalentlyOnTheV2Reader) {
  const auto stream = GoldenStream(2000, 0x601D);
  for (const auto& kind : SketchRegistry<int64_t>::Global().Kinds()) {
    const SketchConfig config = GoldenConfig(kind);
    auto fresh = SketchRegistry<int64_t>::Global().Create(config);
    fresh.InsertBatch(stream);

    wire::FileSource source(GoldenPath("v1_" + kind + ".snap"));
    ASSERT_TRUE(source.open())
        << "missing golden blob for " << kind
        << " — the corpus under tests/golden/ is frozen, never regenerate";
    std::string error;
    auto revived = wire::ReadSnapshot<int64_t>(source, &error);
    ASSERT_TRUE(revived.valid()) << kind << ": " << error;
    ExpectIdenticalAnswers(fresh, revived, kind + " v1 golden snapshot");

    // Byte-level equivalence: the revived state re-serializes (with the
    // current writer) to exactly what the fresh sketch serializes to.
    wire::BufferSink from_revived;
    wire::BufferSink from_fresh;
    ASSERT_TRUE(wire::WriteSnapshot(revived, config, from_revived)) << kind;
    ASSERT_TRUE(wire::WriteSnapshot(fresh, config, from_fresh)) << kind;
    EXPECT_EQ(from_revived.bytes(), from_fresh.bytes())
        << kind << ": v1 revival diverged from fresh state at byte level";
  }
}

// Every kind has a v1 checkpoint blob (2 shards, the full golden stream
// in 4 batches). Restoring it on the current reader and continuing with
// a suffix must equal a pipeline that ingested prefix + suffix without
// interruption — the cross-version continuation contract.
TEST(GoldenBlobTest, V1CheckpointsRestoreAndContinueOnTheV2Reader) {
  const auto stream = GoldenStream(2000, 0x601D);
  const auto suffix = GoldenStream(1000, 0x601E);
  for (const auto& kind : SketchRegistry<int64_t>::Global().Kinds()) {
    const SketchConfig config = GoldenConfig(kind);
    PipelineOptions options;
    options.num_shards = 2;  // the corpus was checkpointed with 2 shards

    // Reference: uninterrupted run over the same batch sequence the
    // generator used, then the suffix.
    ShardedPipeline<int64_t> uninterrupted(config, options);
    for (size_t b = 0; b < 4; ++b) {
      uninterrupted.Ingest(std::vector<int64_t>(
          stream.begin() + b * 500, stream.begin() + (b + 1) * 500));
    }
    uninterrupted.Ingest(suffix);

    std::string error;
    auto restored = ShardedPipeline<int64_t>::Restore(
        GoldenPath("v1_" + kind + ".ck"), options, &error);
    ASSERT_NE(restored, nullptr) << kind << ": " << error;
    EXPECT_EQ(restored->total_ingested(), stream.size()) << kind;
    restored->Ingest(suffix);

    ExpectIdenticalAnswers(uninterrupted.Snapshot(), restored->Snapshot(),
                           kind + " v1 golden checkpoint");
  }
}

// The corpus covers every kind the registry knows — a newly registered
// kind must get a golden pair cut from the release that introduces it
// (at its then-current format version).
TEST(GoldenBlobTest, CorpusCoversEveryRegisteredKind) {
  for (const auto& kind : SketchRegistry<int64_t>::Global().Kinds()) {
    for (const std::string ext : {".snap", ".ck"}) {
      wire::FileSource probe(GoldenPath("v1_" + kind + ext));
      EXPECT_TRUE(probe.open()) << "no golden blob v1_" << kind << ext;
    }
  }
}

}  // namespace
}  // namespace robust_sampling
