// AttackLab subsystem tests: the string-keyed adversary registry, the
// type-erased game sampler, the GameDriver, and the RunTrialsParallel
// determinism contract (parallel trials bit-match serial trials).

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "attacklab/adversary_registry.h"
#include "attacklab/any_sampler.h"
#include "attacklab/game_driver.h"
#include "attacklab/game_spec.h"
#include "core/big_uint.h"
#include "core/random.h"
#include "core/sample_bounds.h"
#include "gtest/gtest.h"
#include "harness/trial_runner.h"

namespace robust_sampling {
namespace {

// A 64-trial bisection-vs-reservoir game spec small enough for CI.
GameSpec SmallBisectionSpec() {
  GameSpec spec;
  spec.sketch.kind = "reservoir";
  spec.sketch.capacity = 8;
  spec.sketch.universe_size = uint64_t{1} << 62;
  spec.adversary = "bisection";
  spec.n = 256;
  spec.eps = 0.25;
  spec.trials = 64;
  spec.base_seed = 0xA77AC;
  return spec;
}

TEST(RunTrialsParallelTest, BitMatchesSerialOnBisectionGame) {
  GameSpec spec = SmallBisectionSpec();
  auto trial = [&spec](uint64_t seed) {
    return PlayOne<int64_t>(spec, seed).max_discrepancy;
  };
  const TrialStats serial = RunTrials(spec.trials, spec.base_seed, trial);
  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}}) {
    const TrialStats parallel =
        RunTrialsParallel(spec.trials, spec.base_seed, trial, threads);
    EXPECT_EQ(serial.values, parallel.values) << threads << " threads";
    EXPECT_DOUBLE_EQ(serial.mean, parallel.mean);
    EXPECT_DOUBLE_EQ(serial.median, parallel.median);
  }
}

TEST(GameDriverTest, PlayGameIsThreadCountInvariant) {
  GameSpec spec = SmallBisectionSpec();
  spec.threads = 1;
  const GameReport serial = PlayGame<int64_t>(spec);
  spec.threads = 4;
  const GameReport parallel = PlayGame<int64_t>(spec);
  ASSERT_EQ(serial.outcomes.size(), parallel.outcomes.size());
  EXPECT_EQ(serial.discrepancy.values, parallel.discrepancy.values);
  for (size_t t = 0; t < serial.outcomes.size(); ++t) {
    EXPECT_EQ(serial.outcomes[t].final_discrepancy,
              parallel.outcomes[t].final_discrepancy);
    EXPECT_EQ(serial.outcomes[t].accepted_count,
              parallel.outcomes[t].accepted_count);
    EXPECT_EQ(serial.outcomes[t].sample_is_smallest,
              parallel.outcomes[t].sample_is_smallest);
  }
  EXPECT_EQ(serial.sketch_name, parallel.sketch_name);
  EXPECT_EQ(serial.adversary_name, parallel.adversary_name);
}

// The paper's separation, end to end through both registries: the Fig. 3
// bisection attack drives an undersized plain reservoir past eps while the
// Theorem 1.2-sized RobustSample stays below.
TEST(GameDriverTest, BisectionSeparatesPlainReservoirFromRobustSample) {
  GameSpec spec;
  spec.adversary = "bisection";
  spec.n = 2000;
  spec.eps = 0.5;
  spec.trials = 4;
  spec.base_seed = 0x5E9A;
  spec.sketch.log_universe = 200.0;  // Theorem 1.3-scale universe.

  spec.sketch.kind = "reservoir";
  spec.sketch.capacity = 4;
  const GameReport attacked = PlayGame<BigUint>(spec);
  EXPECT_GT(attacked.discrepancy.min, spec.eps)
      << "bisection should defeat an undersized plain reservoir";
  EXPECT_EQ(attacked.FractionRobust(spec.eps), 0.0);

  spec.sketch.kind = "robust_sample";
  spec.sketch.capacity = 0;
  spec.sketch.eps = 0.5;
  spec.sketch.delta = 0.2;
  const GameReport robust = PlayGame<BigUint>(spec);
  EXPECT_LE(robust.discrepancy.max, spec.eps)
      << "Theorem 1.2 sizing must survive the same attack";
  EXPECT_EQ(robust.FractionRobust(spec.eps), 1.0);

  // Against a Bernoulli sampler (no eviction) the attack leaves the Claim
  // 5.2 signature: the final sample is exactly the smallest elements.
  spec.sketch.kind = "bernoulli";
  spec.sketch.probability = std::log(2000.0) / 2000.0;
  const GameReport bern = PlayGame<BigUint>(spec);
  EXPECT_EQ(bern.FractionSampleIsSmallest(), 1.0);
  EXPECT_GT(bern.discrepancy.min, spec.eps);
}

TEST(GameDriverTest, AcceptedCountStaysNearTheoremBound) {
  GameSpec spec = SmallBisectionSpec();
  spec.trials = 16;
  const GameReport report = PlayGame<int64_t>(spec);
  // Theorem 1.3's analysis: k' <= 4 k ln n with probability >= 1/2; the
  // mean should sit well under the bound.
  const double bound = 4.0 * 8 * std::log(256.0);
  EXPECT_LT(report.MeanAcceptedCount(), bound);
  EXPECT_GT(report.MeanAcceptedCount(), 8.0);
}

TEST(GameDriverTest, BatchedGameIsDeterministicAndRateLimitsAdversary) {
  GameSpec spec = SmallBisectionSpec();
  spec.batch = 16;
  spec.trials = 8;
  const GameReport a = PlayGame<int64_t>(spec);
  const GameReport b = PlayGame<int64_t>(spec);
  EXPECT_EQ(a.discrepancy.values, b.discrepancy.values);
  for (const GameOutcome& o : a.outcomes) {
    EXPECT_GE(o.final_discrepancy, 0.0);
    EXPECT_LE(o.final_discrepancy, 1.0);
  }
  // One observation per stream: the adversary learns nothing and plays a
  // fixed stream — strictly weaker than the per-element game.
  GameSpec blind = spec;
  blind.batch = blind.n;
  const GameReport rate_limited = PlayGame<int64_t>(blind);
  GameSpec per_element = spec;
  per_element.batch = 0;
  const GameReport adaptive = PlayGame<int64_t>(per_element);
  EXPECT_LT(rate_limited.discrepancy.mean, adaptive.discrepancy.mean);
}

TEST(GameDriverTest, ContinuousGameWithGeometricSchedule) {
  GameSpec spec;
  spec.sketch.kind = "reservoir";
  spec.sketch.capacity = ReservoirContinuousK(0.25, 0.1, std::log(1 << 20),
                                              1000, /*c=*/4.0);
  spec.sketch.universe_size = 1 << 20;
  spec.adversary = "uniform";
  spec.n = 1000;
  spec.eps = 0.25;
  spec.schedule = ScheduleKind::kGeometric;
  spec.trials = 4;
  const GameReport report = PlayGame<int64_t>(spec);
  EXPECT_EQ(report.FractionContinuouslyApproximating(), 1.0);
  // The geometric schedule is exponentially sparser than checking all n.
  EXPECT_LT(BuildSchedule(spec).size(), spec.n / 4);
}

// Footnote 4: Bernoulli sampling is not continuously robust — a constant
// stream (static adversary over a one-element universe) violates the very
// first prefix with probability 1 - p.
TEST(GameDriverTest, BernoulliIsNotContinuouslyRobust) {
  GameSpec spec;
  spec.sketch.kind = "bernoulli";
  spec.sketch.probability = 0.3;
  spec.sketch.universe_size = 1;
  spec.adversary = "static";
  spec.n = 16;
  spec.eps = 0.5;
  spec.schedule = ScheduleKind::kAll;
  spec.trials = 100;
  const GameReport report = PlayGame<int64_t>(spec);
  EXPECT_LT(report.FractionContinuouslyApproximating(), 0.6);
}

TEST(AdversaryRegistryTest, BuiltinsPerElementType) {
  const auto int_kinds = AdversaryRegistry<int64_t>::Global().Kinds();
  EXPECT_EQ(int_kinds, (std::vector<std::string>{"bisection", "greedy-gap",
                                                 "static", "uniform"}));
  EXPECT_TRUE(AdversaryRegistry<BigUint>::Global().Contains("bisection"));
  EXPECT_TRUE(AdversaryRegistry<double>::Global().Contains("greedy-gap"));
  EXPECT_FALSE(AdversaryRegistry<BigUint>::Global().Contains("uniform"));
  // Element types with no bisection domain still get a working (empty)
  // registry for custom strategies — Global() must compile and hold no
  // built-ins rather than static_asserting.
  EXPECT_TRUE(AdversaryRegistry<float>::Global().Kinds().empty());
}

TEST(AdversaryRegistryTest, CustomRegistrationAndCountingWrapper) {
  AdversaryRegistry<int64_t> registry;
  registry.Register("always-one", [](const GameSpec&, uint64_t) {
    return AnyAdversary<int64_t>::Wrap(
        StaticAdversary<int64_t>(std::vector<int64_t>(64, 1)));
  });
  GameSpec spec;
  spec.adversary = "always-one";
  spec.n = 64;
  AnyAdversary<int64_t> adv = registry.Create(spec, 1);
  AnySampler<int64_t> sampler =
      AnySampler<int64_t>::FromConfig(spec.sketch, 1);
  const auto r = RunAdaptiveGame<int64_t>(
      sampler, adv, spec.n, MakeDiscrepancyFn<int64_t>(spec.discrepancy),
      spec.eps);
  EXPECT_EQ(r.stream, std::vector<int64_t>(64, 1));
  EXPECT_EQ(adv.accepted_count(), sampler.sample().size());
}

TEST(AnySamplerTest, ResolvedParametersMatchRegistryDefaults) {
  SketchConfig config;
  config.kind = "reservoir";
  config.eps = 0.2;
  config.delta = 0.1;
  config.universe_size = 1 << 20;
  const auto sampler = AnySampler<int64_t>::FromConfig(config, 7);
  EXPECT_EQ(sampler.capacity(), ResolvedCapacity(config));
  EXPECT_EQ(sampler.capacity(),
            ReservoirRobustK(0.2, 0.1, std::log(1 << 20)));

  SketchConfig bern;
  bern.kind = "bernoulli";
  bern.expected_stream_size = 10'000;
  const auto bsampler = AnySampler<int64_t>::FromConfig(bern, 7);
  EXPECT_DOUBLE_EQ(bsampler.probability(), ResolvedProbability(bern));
}

TEST(AnySamplerTest, LogUniverseOverrideSizesBeyondUint64) {
  SketchConfig config;
  config.kind = "robust_sample";
  config.eps = 0.5;
  config.delta = 0.2;
  config.log_universe = 200.0;  // |R| = e^200 >> 2^64.
  const auto sampler = AnySampler<BigUint>::FromConfig(config, 7);
  EXPECT_EQ(sampler.capacity(), ReservoirRobustK(0.5, 0.2, 200.0));
}

TEST(AnySamplerDeathTest, RejectsSampleFreeKinds) {
  SketchConfig config;
  config.kind = "kll";
  EXPECT_DEATH(AnySampler<double>::FromConfig(config, 1),
               "adversary-visible");
}

// A sliding-window "sampler" with its own adapter type — none of the three
// built-in sampler adapters. Exposing the SampleView capability hook is
// all it takes for the kind to face adversaries: AnySampler binds to the
// erased hook, so there is no dynamic_cast (and no adapter allowlist) on
// the query path.
class LastKAdapter {
 public:
  explicit LastKAdapter(size_t k) : k_(k) {}
  void Insert(const int64_t& x) {
    ++n_;
    window_.push_back(x);
    if (window_.size() > k_) window_.erase(window_.begin());
  }
  void InsertBatch(std::span<const int64_t> xs) {
    for (int64_t x : xs) Insert(x);
  }
  void MergeFrom(const LastKAdapter& other) {
    for (int64_t x : other.window_) Insert(x);
    n_ += other.n_ - other.window_.size();
  }
  size_t StreamSize() const { return n_; }
  size_t SpaceItems() const { return window_.size(); }
  std::string Name() const {
    return "last_k(k=" + std::to_string(k_) + ")";
  }
  SketchSampleView<int64_t> SampleView() const {
    // Every insertion is kept (possibly evicting the oldest element).
    return {std::span<const int64_t>(window_), true};
  }

 private:
  size_t k_;
  size_t n_ = 0;
  std::vector<int64_t> window_;
};

// The acceptance contract of the queryable-runtime refactor: a custom
// registry kind plays a full game through AnySampler::FromConfig /
// PlayGame, exactly like the built-ins.
TEST(AnySamplerTest, CustomRegisteredKindPlaysAFullGame) {
  auto& registry = SketchRegistry<int64_t>::Global();
  if (!registry.Contains("test_last_k")) {
    registry.Register("test_last_k",
                      [](const SketchConfig& c, uint64_t) {
                        return StreamSketch<int64_t>::Wrap(
                            LastKAdapter(c.capacity));
                      });
  }
  GameSpec spec;
  spec.sketch.kind = "test_last_k";
  spec.sketch.capacity = 32;
  spec.sketch.universe_size = 1 << 16;
  spec.adversary = "uniform";
  spec.n = 512;
  spec.eps = 0.5;
  spec.trials = 4;
  const GameReport report = PlayGame<int64_t>(spec);
  EXPECT_EQ(report.sketch_name, "last_k(k=32)");
  EXPECT_EQ(report.outcomes.size(), 4u);
  for (const GameOutcome& o : report.outcomes) {
    EXPECT_EQ(o.sample_size, 32u);
    // last_kept is always true for a sliding window, so the adversary
    // observed an acceptance every round.
    EXPECT_EQ(o.accepted_count, spec.n);
    EXPECT_GE(o.final_discrepancy, 0.0);
    EXPECT_LE(o.final_discrepancy, 1.0);
  }
  // The last-k window of a uniform stream is still uniform over the
  // universe, so prefix discrepancy stays moderate (this is not a robust
  // sampler — the bound here just sanity-checks the game plumbing).
  EXPECT_LE(report.discrepancy.mean, 0.5);
}

TEST(GameSpecTest, DeriveBisectionSplitMatchesHandDerivation) {
  GameSpec spec;
  spec.n = 8000;
  spec.sketch.kind = "reservoir";
  spec.sketch.capacity = 16;
  const double k_accepted = 16.0 * (1.0 + std::log(8000.0 / 16.0));
  EXPECT_DOUBLE_EQ(DeriveBisectionSplit(spec),
                   std::min(1.0 - 1e-6, std::max(0.5, 1.0 - k_accepted / 8000.0)));

  GameSpec bern;
  bern.n = 20000;
  bern.sketch.kind = "bernoulli";
  bern.sketch.probability = 1e-5;  // below the ln n / n floor
  EXPECT_DOUBLE_EQ(DeriveBisectionSplit(bern),
                   1.0 - std::log(20000.0) / 20000.0);

  GameSpec fixed;
  fixed.split = 0.75;
  EXPECT_DOUBLE_EQ(DeriveBisectionSplit(fixed), 0.75);
}

TEST(GameSpecTest, BuildScheduleVariants) {
  GameSpec spec;
  spec.sketch.kind = "reservoir";
  spec.sketch.capacity = 10;
  spec.n = 1000;
  spec.eps = 0.25;
  spec.schedule = ScheduleKind::kGeometric;
  const auto geo = BuildSchedule(spec);
  EXPECT_EQ(geo.points().front(), 10u);
  EXPECT_EQ(geo.points().back(), 1000u);
  spec.schedule = ScheduleKind::kEvery;
  EXPECT_EQ(BuildSchedule(spec).points().front(), 50u);
  spec.schedule = ScheduleKind::kAll;
  EXPECT_EQ(BuildSchedule(spec).size(), 1000u);
}

TEST(GameDriverTest, GreedyGapPlaysThroughRegistry) {
  GameSpec spec;
  spec.sketch.kind = "reservoir";
  spec.sketch.capacity = 32;
  spec.sketch.universe_size = 1 << 16;
  spec.adversary = "greedy-gap";
  spec.n = 512;
  spec.trials = 4;
  const GameReport report = PlayGame<int64_t>(spec);
  EXPECT_GE(report.discrepancy.min, 0.0);
  EXPECT_LE(report.discrepancy.max, 1.0);
  EXPECT_EQ(report.adversary_name, "greedy-gap");
}

}  // namespace
}  // namespace robust_sampling
