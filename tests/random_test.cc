#include "core/random.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <set>
#include <vector>

#include "gtest/gtest.h"

namespace robust_sampling {
namespace {

TEST(SplitMix64Test, IsDeterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(SplitMix64Test, DifferentSeedsDiffer) {
  SplitMix64 a(1), b(2);
  EXPECT_NE(a.Next(), b.Next());
}

TEST(SplitMix64Test, KnownVector) {
  // Reference value for seed 0 from the public-domain reference code.
  SplitMix64 sm(0);
  EXPECT_EQ(sm.Next(), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(sm.Next(), 0x6e789e6aa1b965f4ULL);
}

TEST(Xoshiro256ppTest, IsDeterministic) {
  Rng a(7), b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(Xoshiro256ppTest, DifferentSeedsProduceDifferentStreams) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 64; ++i) differing += a.NextUint64() != b.NextUint64();
  EXPECT_GT(differing, 60);
}

TEST(Xoshiro256ppTest, NextBelowRespectsBound) {
  Rng rng(3);
  for (uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBelow(bound), bound);
    }
  }
}

TEST(Xoshiro256ppTest, NextBelowOneIsAlwaysZero) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.NextBelow(1), 0u);
}

TEST(Xoshiro256ppTest, NextBelowIsApproximatelyUniform) {
  Rng rng(17);
  constexpr uint64_t kBuckets = 10;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.NextBelow(kBuckets)];
  const double expected = static_cast<double>(kDraws) / kBuckets;
  for (uint64_t b = 0; b < kBuckets; ++b) {
    EXPECT_NEAR(counts[b], expected, 5.0 * std::sqrt(expected))
        << "bucket " << b;
  }
}

TEST(Xoshiro256ppTest, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Xoshiro256ppTest, NextDoubleMeanIsHalf) {
  Rng rng(19);
  double sum = 0.0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / kDraws, 0.5, 0.01);
}

TEST(Xoshiro256ppTest, NextDoubleInRange) {
  Rng rng(23);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDoubleIn(-3.0, 7.5);
    EXPECT_GE(d, -3.0);
    EXPECT_LT(d, 7.5);
  }
}

TEST(Xoshiro256ppTest, BernoulliEdgeCases) {
  Rng rng(29);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
    EXPECT_FALSE(rng.NextBernoulli(-0.5));
    EXPECT_TRUE(rng.NextBernoulli(1.5));
  }
}

TEST(Xoshiro256ppTest, BernoulliMatchesProbability) {
  Rng rng(31);
  constexpr int kDraws = 200000;
  for (double p : {0.1, 0.5, 0.9}) {
    int hits = 0;
    for (int i = 0; i < kDraws; ++i) hits += rng.NextBernoulli(p);
    EXPECT_NEAR(static_cast<double>(hits) / kDraws, p, 0.01) << "p=" << p;
  }
}

TEST(Xoshiro256ppTest, GaussianMomentsMatchStandardNormal) {
  Rng rng(37);
  constexpr int kDraws = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / kDraws, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / kDraws, 1.0, 0.03);
}

TEST(Xoshiro256ppTest, JumpChangesState) {
  Rng a(41), b(41);
  b.Jump();
  EXPECT_NE(a.NextUint64(), b.NextUint64());
}

TEST(Xoshiro256ppTest, SplitProducesIndependentStreams) {
  Rng base(43);
  Rng s0 = base.Split(0);
  Rng s1 = base.Split(1);
  // Split must not advance the parent.
  Rng base2(43);
  EXPECT_EQ(base.NextUint64(), base2.NextUint64());
  int differing = 0;
  for (int i = 0; i < 64; ++i) differing += s0.NextUint64() != s1.NextUint64();
  EXPECT_GT(differing, 60);
}

TEST(Xoshiro256ppTest, SatisfiesUniformRandomBitGenerator) {
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == UINT64_MAX);
  Rng rng(47);
  std::vector<int> v{1, 2, 3, 4, 5};
  std::shuffle(v.begin(), v.end(), rng);  // compiles and runs
  EXPECT_EQ(v.size(), 5u);
}

TEST(MixSeedTest, DistinctPairsGiveDistinctSeeds) {
  std::set<uint64_t> seen;
  for (uint64_t a = 0; a < 50; ++a) {
    for (uint64_t b = 0; b < 50; ++b) {
      seen.insert(MixSeed(a, b));
    }
  }
  EXPECT_EQ(seen.size(), 2500u);
}

TEST(MixSeedTest, Deterministic) {
  EXPECT_EQ(MixSeed(123, 456), MixSeed(123, 456));
  EXPECT_NE(MixSeed(123, 456), MixSeed(456, 123));
}

}  // namespace
}  // namespace robust_sampling
