// Aggregation-tier suite: socket transport semantics, the ship/query
// protocol, fault-proxy failure modes (every one must end in recovery via
// backoff or a clean fail-closed rejection — no hang, no crash, no
// silently wrong merge), keep-latest shipper degradation, and the
// collector's checkpoint / kill -9 / restore contract.

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "core/random.h"
#include "net/collector.h"
#include "net/fault_proxy.h"
#include "net/protocol.h"
#include "net/snapshot_shipper.h"
#include "net/socket_io.h"
#include "obs/catalog.h"
#include "obs/metrics.h"
#include "pipeline/sketch_config.h"
#include "pipeline/sketch_registry.h"
#include "pipeline/stream_sketch.h"
#include "wire/codec.h"
#include "wire/snapshot.h"

namespace robust_sampling {
namespace {

SketchConfig KllConfig() {
  SketchConfig config;
  config.kind = "kll";
  config.capacity = 256;
  config.universe_size = 1024;
  config.seed = 0x4E7;
  return config;
}

SketchConfig CountMinConfig() {
  SketchConfig config;
  config.kind = "count_min";
  config.width = 512;
  config.depth = 4;
  config.universe_size = 1024;
  config.seed = 0x4E7;
  return config;
}

std::vector<int64_t> TestStream(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<int64_t> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(static_cast<int64_t>(rng.NextBelow(1024)) + 1);
  }
  return out;
}

StreamSketch<int64_t> MakeSketch(const SketchConfig& config,
                                 const std::vector<int64_t>& stream) {
  StreamSketch<int64_t> sketch =
      SketchRegistry<int64_t>::Global().Create(config);
  sketch.InsertBatch(stream);
  return sketch;
}

std::vector<uint8_t> SnapshotBytes(const StreamSketch<int64_t>& sketch,
                                   const SketchConfig& config) {
  wire::BufferSink sink;
  EXPECT_TRUE(wire::WriteSnapshot(sketch, config, sink));
  return sink.TakeBytes();
}

std::string TempPath(const std::string& name) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr ? dir : "/tmp") + "/" + name;
}

/// Binds an ephemeral loopback port, closes it, and returns the number —
/// a port a collector can claim a moment later (loopback test idiom).
uint16_t ReservePort() {
  uint16_t port = 0;
  const int fd = net::ListenLoopback(0, &port);
  EXPECT_GE(fd, 0);
  close(fd);
  return port;
}

// ----------------------------------------------------------- transport ----

TEST(SocketIoTest, SinkAndSourceRoundTripAcrossLoopback) {
  uint16_t port = 0;
  const int listen_fd = net::ListenLoopback(0, &port);
  ASSERT_GE(listen_fd, 0);
  const int client = net::ConnectWithDeadline("127.0.0.1", port, 1000);
  ASSERT_GE(client, 0);
  const int server = net::AcceptWithTimeout(listen_fd, 1000);
  ASSERT_GE(server, 0);

  net::SocketSink sink(client);
  wire::PutVarint(sink, 12345);
  wire::PutString(sink, "loopback");
  ASSERT_TRUE(sink.ok());

  net::SocketSource source(server);
  uint64_t v = 0;
  std::string s;
  EXPECT_TRUE(wire::GetVarint(source, &v));
  EXPECT_EQ(v, uint64_t{12345});
  EXPECT_TRUE(wire::GetString(source, &s));
  EXPECT_EQ(s, "loopback");
  EXPECT_GT(source.bytes_read(), uint64_t{0});
  EXPECT_EQ(source.remaining(), std::nullopt);

  close(client);
  close(server);
  close(listen_fd);
}

TEST(SocketIoTest, ReadDeadlinePoisonsSourceInsteadOfHanging) {
  uint16_t port = 0;
  const int listen_fd = net::ListenLoopback(0, &port);
  ASSERT_GE(listen_fd, 0);
  const int client = net::ConnectWithDeadline("127.0.0.1", port, 1000);
  ASSERT_GE(client, 0);
  const int server = net::AcceptWithTimeout(listen_fd, 1000);
  ASSERT_GE(server, 0);

  // The peer never writes: a half-open read must fail within the
  // deadline, not block forever.
  ASSERT_TRUE(net::SetSocketDeadlines(server, /*recv_timeout_ms=*/100,
                                      /*send_timeout_ms=*/100));
  net::SocketSource source(server);
  uint8_t byte = 0;
  EXPECT_FALSE(source.Read(&byte, 1));
  EXPECT_TRUE(source.failed());

  close(client);
  close(server);
  close(listen_fd);
}

TEST(SocketIoTest, ConnectToDeadPortFailsFast) {
  const uint16_t dead = ReservePort();  // bound then released: nobody home
  EXPECT_LT(net::ConnectWithDeadline("127.0.0.1", dead, 200), 0);
}

TEST(SocketIoTest, WriteToClosedPeerLatchesSinkNotSigpipe) {
  uint16_t port = 0;
  const int listen_fd = net::ListenLoopback(0, &port);
  ASSERT_GE(listen_fd, 0);
  const int client = net::ConnectWithDeadline("127.0.0.1", port, 1000);
  ASSERT_GE(client, 0);
  const int server = net::AcceptWithTimeout(listen_fd, 1000);
  ASSERT_GE(server, 0);
  close(server);

  // Large repeated writes eventually hit the reset; the sink must latch
  // failed, and the process must not die of SIGPIPE.
  net::SocketSink sink(client);
  const std::vector<uint8_t> chunk(64 * 1024, 0xAB);
  for (int i = 0; i < 64 && sink.ok(); ++i) {
    sink.Append(chunk.data(), chunk.size());
  }
  EXPECT_FALSE(sink.ok());

  close(client);
  close(listen_fd);
}

// ------------------------------------------------------------ protocol ----

TEST(NetProtocolTest, MessageRoundTripAndUnknownTypeRejected) {
  wire::BufferSink sink;
  const std::vector<uint8_t> payload = {1, 2, 3, 4};
  ASSERT_TRUE(net::WriteMessage(sink, net::MessageType::kShip, payload));

  wire::BufferSource source(sink.bytes());
  net::MessageType type;
  std::vector<uint8_t> got;
  std::string error;
  ASSERT_TRUE(net::ReadMessage(source, &type, &got, &error));
  EXPECT_EQ(type, net::MessageType::kShip);
  EXPECT_EQ(got, payload);

  // A frame whose body carries an unknown type parses as a frame but is
  // rejected at the protocol layer.
  wire::BufferSink bad_body;
  wire::PutVarint(bad_body, 99);
  wire::BufferSink bad_frame;
  ASSERT_TRUE(
      wire::WriteFramedBody(bad_frame, net::kNetMagic, bad_body.bytes()));
  wire::BufferSource bad_source(bad_frame.bytes());
  EXPECT_FALSE(net::ReadMessage(bad_source, &type, &got, &error));
  EXPECT_NE(error.find("unknown type"), std::string::npos);
}

TEST(NetProtocolTest, CorruptFrameFailsClosed) {
  wire::BufferSink sink;
  ASSERT_TRUE(net::WriteStatusMessage(sink, net::MessageType::kShipAck,
                                      net::Status::kOk));
  std::vector<uint8_t> bytes = sink.bytes();
  bytes[bytes.size() / 2] ^= 0x40;  // flip one bit mid-frame
  wire::BufferSource source(bytes);
  net::MessageType type;
  std::vector<uint8_t> payload;
  std::string error;
  EXPECT_FALSE(net::ReadMessage(source, &type, &payload, &error));
  EXPECT_FALSE(error.empty());
}

// ------------------------------------------------- ship + query happy ----

TEST(CollectorTest, TwoShippersMergeAndServeQueries) {
  net::CollectorOptions options;
  net::Collector<int64_t> collector(options);
  ASSERT_TRUE(collector.Start());

  const SketchConfig config = CountMinConfig();
  const std::vector<int64_t> stream_a = TestStream(4000, 11);
  const std::vector<int64_t> stream_b = TestStream(4000, 22);
  StreamSketch<int64_t> sketch_a = MakeSketch(config, stream_a);
  StreamSketch<int64_t> sketch_b = MakeSketch(config, stream_b);

  net::ShipperOptions ship_a;
  ship_a.port = collector.port();
  ship_a.shipper_id = 1;
  net::ShipperOptions ship_b = ship_a;
  ship_b.shipper_id = 2;
  net::SnapshotShipper shipper_a(ship_a);
  net::SnapshotShipper shipper_b(ship_b);
  shipper_a.Start();
  shipper_b.Start();
  shipper_a.Offer(SnapshotBytes(sketch_a, config));
  shipper_b.Offer(SnapshotBytes(sketch_b, config));
  ASSERT_TRUE(shipper_a.WaitUntilDrained(5000));
  ASSERT_TRUE(shipper_b.WaitUntilDrained(5000));
  shipper_a.Stop();
  shipper_b.Stop();

  EXPECT_EQ(collector.accepted_snapshots(), uint64_t{2});
  EXPECT_EQ(collector.known_shippers(), size_t{2});

  // Reference: the same two snapshots merged locally in the collector's
  // order (shipper_id ascending) must answer identically over the wire.
  StreamSketch<int64_t> reference = MakeSketch(config, stream_a);
  reference.MergeFrom(sketch_b);

  net::CollectorClient<int64_t> client;
  ASSERT_TRUE(client.Connect("127.0.0.1", collector.port()));
  for (int64_t x : {int64_t{1}, int64_t{7}, int64_t{512}, int64_t{1024}}) {
    double over_wire = -1.0;
    ASSERT_TRUE(client.EstimateFrequency(x, &over_wire));
    EXPECT_DOUBLE_EQ(over_wire, reference.EstimateFrequency(x)) << x;
  }
  std::vector<HeavyHitter> wire_hits;
  ASSERT_TRUE(client.HeavyHitters(0.001, &wire_hits));
  const std::vector<HeavyHitter> local_hits = reference.HeavyHitters(0.001);
  ASSERT_EQ(wire_hits.size(), local_hits.size());
  for (size_t i = 0; i < wire_hits.size(); ++i) {
    EXPECT_EQ(wire_hits[i].element, local_hits[i].element);
    EXPECT_DOUBLE_EQ(wire_hits[i].frequency, local_hits[i].frequency);
  }

  // Quantile on a frequency sketch: clean kUnsupported, not an abort.
  double q = 0.0;
  net::Status status = net::Status::kOk;
  EXPECT_FALSE(client.Quantile(0.5, &q, &status));
  EXPECT_EQ(status, net::Status::kUnsupported);
  collector.Stop();
}

TEST(CollectorTest, QuantileQueriesMatchLocalMerge) {
  net::CollectorOptions options;
  net::Collector<int64_t> collector(options);
  ASSERT_TRUE(collector.Start());

  const SketchConfig config = KllConfig();
  const std::vector<int64_t> stream = TestStream(8000, 33);
  StreamSketch<int64_t> sketch = MakeSketch(config, stream);

  net::ShipperOptions ship;
  ship.port = collector.port();
  ship.shipper_id = 7;
  net::SnapshotShipper shipper(ship);
  shipper.Start();
  shipper.Offer(SnapshotBytes(sketch, config));
  ASSERT_TRUE(shipper.WaitUntilDrained(5000));
  shipper.Stop();

  net::CollectorClient<int64_t> client;
  ASSERT_TRUE(client.Connect("127.0.0.1", collector.port()));
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    double over_wire = -1.0;
    ASSERT_TRUE(client.Quantile(q, &over_wire));
    EXPECT_DOUBLE_EQ(over_wire, sketch.Quantile(q)) << q;
  }
  collector.Stop();
}

TEST(CollectorTest, QueryBeforeAnyShipReportsEmpty) {
  net::Collector<int64_t> collector(net::CollectorOptions{});
  ASSERT_TRUE(collector.Start());
  net::CollectorClient<int64_t> client;
  ASSERT_TRUE(client.Connect("127.0.0.1", collector.port()));
  double q = 0.0;
  net::Status status = net::Status::kOk;
  EXPECT_FALSE(client.Quantile(0.5, &q, &status));
  EXPECT_EQ(status, net::Status::kEmpty);
  collector.Stop();
}

// ------------------------------------------------ degradation / outbox ----

TEST(ShipperTest, KeepLatestOutboxSupersedesWhileCollectorDown) {
  const uint16_t port = ReservePort();  // nobody listening yet
  const SketchConfig config = CountMinConfig();

  net::ShipperOptions options;
  options.port = port;
  options.shipper_id = 1;
  options.connect_timeout_ms = 100;
  options.backoff_initial_ms = 5;
  options.backoff_max_ms = 40;
  net::SnapshotShipper shipper(options);
  shipper.Start();

  // Five successive states offered into a dead port: the outbox keeps
  // only the newest, counting the rest as superseded (bounded memory,
  // honest accounting).
  std::vector<int64_t> cumulative;
  std::vector<uint8_t> latest;
  for (int i = 0; i < 5; ++i) {
    const std::vector<int64_t> more = TestStream(500, 100 + i);
    cumulative.insert(cumulative.end(), more.begin(), more.end());
    latest = SnapshotBytes(MakeSketch(config, cumulative), config);
    shipper.Offer(latest);
  }
  EXPECT_FALSE(shipper.WaitUntilDrained(300));  // degraded, visibly
  EXPECT_GE(shipper.superseded(), uint64_t{3});
  EXPECT_GE(shipper.reconnect_attempts(), uint64_t{2});
  EXPECT_EQ(shipper.shipped(), uint64_t{0});

  // Collector comes up on the same port: backoff recovers, only the
  // latest cumulative state arrives, and it answers like a local revive.
  net::CollectorOptions coptions;
  coptions.port = port;
  net::Collector<int64_t> collector(coptions);
  ASSERT_TRUE(collector.Start());
  ASSERT_TRUE(shipper.WaitUntilDrained(10000));
  shipper.Stop();
  EXPECT_EQ(collector.accepted_snapshots(), uint64_t{1});

  StreamSketch<int64_t> reference = MakeSketch(config, cumulative);
  const auto freq = collector.EstimateFrequency(7);
  ASSERT_TRUE(freq.has_value());
  EXPECT_DOUBLE_EQ(*freq, reference.EstimateFrequency(7));
  collector.Stop();
}

// ------------------------------------------------------- fault matrix ----

struct FaultCase {
  net::FaultMode mode;
  const char* name;
};

/// Shared skeleton: shipper -> proxy(faulty connection first, then clean
/// ones) -> collector. Every mode must converge to exactly the reference
/// answers with no hang and no garbage merge.
void RunFaultRecovery(net::FaultMode mode) {
  net::Collector<int64_t> collector(net::CollectorOptions{});
  ASSERT_TRUE(collector.Start());

  net::FaultProxyOptions poptions;
  poptions.upstream_port = collector.port();
  poptions.seed = 0xFA01;
  poptions.schedule = {mode, mode, net::FaultMode::kPass};
  net::FaultProxy proxy(poptions);
  ASSERT_TRUE(proxy.Start());

  const SketchConfig config = CountMinConfig();
  const std::vector<int64_t> stream = TestStream(4000, 55);
  StreamSketch<int64_t> sketch = MakeSketch(config, stream);

  net::ShipperOptions soptions;
  soptions.port = proxy.port();
  soptions.shipper_id = 3;
  soptions.connect_timeout_ms = 300;
  soptions.io_timeout_ms = 400;  // bounds the blackhole ack wait
  soptions.backoff_initial_ms = 5;
  soptions.backoff_max_ms = 50;
  net::SnapshotShipper shipper(soptions);
  shipper.Start();
  shipper.Offer(SnapshotBytes(sketch, config));

  // Two faulty connections then a clean one: the shipper must push
  // through within the drain window or the mode failed to recover.
  ASSERT_TRUE(shipper.WaitUntilDrained(20000)) << "mode did not recover";
  EXPECT_EQ(shipper.shipped(), uint64_t{1});
  if (mode != net::FaultMode::kDelay) {
    // Delay is survivable in-band (the io deadline outlasts it); every
    // other mode kills the first two connections, forcing retries.
    EXPECT_GE(shipper.failures() + shipper.reconnect_attempts(),
              uint64_t{2});
  }
  shipper.Stop();

  // The merge is the clean snapshot, never a corrupted one.
  ASSERT_EQ(collector.accepted_snapshots(), uint64_t{1});
  const auto freq = collector.EstimateFrequency(7);
  ASSERT_TRUE(freq.has_value());
  EXPECT_DOUBLE_EQ(*freq, sketch.EstimateFrequency(7));
  if (mode == net::FaultMode::kBitFlip || mode == net::FaultMode::kTruncate) {
    EXPECT_GE(collector.rejects(), uint64_t{1});
  }
  proxy.Stop();
  collector.Stop();
}

TEST(FaultMatrixTest, DropBlackholeRecoversViaAckDeadline) {
  RunFaultRecovery(net::FaultMode::kDrop);
}

TEST(FaultMatrixTest, DelayedLinkStillDelivers) {
  RunFaultRecovery(net::FaultMode::kDelay);
}

TEST(FaultMatrixTest, MidFrameTruncationFailsClosedThenRecovers) {
  RunFaultRecovery(net::FaultMode::kTruncate);
}

TEST(FaultMatrixTest, BitFlipRejectedByChecksumThenRecovers) {
  RunFaultRecovery(net::FaultMode::kBitFlip);
}

TEST(FaultMatrixTest, HardCloseRecoversViaBackoff) {
  RunFaultRecovery(net::FaultMode::kHardClose);
}

TEST(FaultMatrixTest, ReconnectStormSettlesWithoutDuplicateState) {
  // A long run of consecutive hard-closes: the shipper storms through
  // reconnects with growing backoff and still lands exactly one copy.
  net::Collector<int64_t> collector(net::CollectorOptions{});
  ASSERT_TRUE(collector.Start());
  net::FaultProxyOptions poptions;
  poptions.upstream_port = collector.port();
  poptions.schedule.assign(6, net::FaultMode::kHardClose);
  poptions.schedule.push_back(net::FaultMode::kPass);
  net::FaultProxy proxy(poptions);
  ASSERT_TRUE(proxy.Start());

  const SketchConfig config = CountMinConfig();
  StreamSketch<int64_t> sketch = MakeSketch(config, TestStream(2000, 66));
  net::ShipperOptions soptions;
  soptions.port = proxy.port();
  soptions.shipper_id = 9;
  soptions.io_timeout_ms = 300;
  soptions.backoff_initial_ms = 2;
  soptions.backoff_max_ms = 30;
  net::SnapshotShipper shipper(soptions);
  shipper.Start();
  shipper.Offer(SnapshotBytes(sketch, config));
  ASSERT_TRUE(shipper.WaitUntilDrained(30000));
  shipper.Stop();
  EXPECT_GE(shipper.reconnect_attempts(), uint64_t{7});
  EXPECT_EQ(collector.accepted_snapshots(), uint64_t{1});
  EXPECT_EQ(collector.known_shippers(), size_t{1});
  proxy.Stop();
  collector.Stop();
}

TEST(CollectorTest, HalfOpenPeerDoesNotBlockOtherShippers) {
  net::Collector<int64_t> collector(net::CollectorOptions{});
  ASSERT_TRUE(collector.Start());

  // A peer that connects and then goes silent forever.
  const int mute = net::ConnectWithDeadline("127.0.0.1", collector.port(),
                                            1000);
  ASSERT_GE(mute, 0);

  // A real shipper must still get through concurrently.
  const SketchConfig config = CountMinConfig();
  StreamSketch<int64_t> sketch = MakeSketch(config, TestStream(1000, 77));
  net::ShipperOptions soptions;
  soptions.port = collector.port();
  soptions.shipper_id = 4;
  net::SnapshotShipper shipper(soptions);
  shipper.Start();
  shipper.Offer(SnapshotBytes(sketch, config));
  EXPECT_TRUE(shipper.WaitUntilDrained(5000));
  shipper.Stop();
  EXPECT_EQ(collector.accepted_snapshots(), uint64_t{1});
  close(mute);
  collector.Stop();
}

// --------------------------------------------- checkpoint / kill -9 ----

TEST(CollectorCheckpointTest, CorruptCheckpointStartsEmptyNotWrong) {
  const std::string path = TempPath("net_collector_corrupt.ck");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const char garbage[] = "not a checkpoint at all";
    std::fwrite(garbage, 1, sizeof(garbage), f);
    std::fclose(f);
  }
  net::CollectorOptions options;
  options.checkpoint_path = path;
  net::Collector<int64_t> collector(options);
  ASSERT_TRUE(collector.Start());  // fail closed: up, but empty
  EXPECT_EQ(collector.known_shippers(), size_t{0});
  EXPECT_FALSE(collector.Quantile(0.5).has_value());
  collector.Stop();
  std::remove(path.c_str());
}

TEST(CollectorCheckpointTest, CheckpointRestoresIdenticalAnswers) {
  const std::string path = TempPath("net_collector_roundtrip.ck");
  std::remove(path.c_str());
  const SketchConfig config = KllConfig();
  const std::vector<int64_t> stream = TestStream(6000, 88);
  StreamSketch<int64_t> sketch = MakeSketch(config, stream);

  uint16_t port = 0;
  {
    net::CollectorOptions options;
    options.checkpoint_path = path;
    net::Collector<int64_t> collector(options);
    ASSERT_TRUE(collector.Start());
    port = collector.port();
    net::ShipperOptions soptions;
    soptions.port = port;
    soptions.shipper_id = 5;
    net::SnapshotShipper shipper(soptions);
    shipper.Start();
    shipper.Offer(SnapshotBytes(sketch, config));
    ASSERT_TRUE(shipper.WaitUntilDrained(5000));
    shipper.Stop();
    collector.Stop();  // checkpoint_every_snapshots=1 already wrote it
  }

  // A brand-new collector restores the identical merged state from disk
  // before any shipper reconnects.
  net::CollectorOptions options;
  options.checkpoint_path = path;
  net::Collector<int64_t> restored(options);
  ASSERT_TRUE(restored.Start());
  EXPECT_EQ(restored.known_shippers(), size_t{1});
  for (double q : {0.1, 0.5, 0.9}) {
    const auto got = restored.Quantile(q);
    ASSERT_TRUE(got.has_value());
    EXPECT_DOUBLE_EQ(*got, sketch.Quantile(q)) << q;
  }
  restored.Stop();
  std::remove(path.c_str());
}

// The acceptance-criteria scenario: collector kill -9'd mid-merge (child
// process), restarted against the same checkpoint + port, shippers
// reconnect and re-ship cumulative state, queries agree with a
// single-process run. The child forks BEFORE this process creates any
// threads (fork-with-threads is UB-adjacent under the sanitizers).
TEST(CollectorCheckpointTest, Kill9MidMergeRestoresAndConverges) {
  const std::string path = TempPath("net_collector_kill9.ck");
  std::remove(path.c_str());
  const uint16_t port = ReservePort();

  int ready_pipe[2];
  ASSERT_EQ(pipe(ready_pipe), 0);
  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Child: run a checkpointing collector until killed.
    close(ready_pipe[0]);
    net::CollectorOptions options;
    options.port = port;
    options.checkpoint_path = path;
    net::Collector<int64_t> collector(options);
    if (!collector.Start()) _exit(1);
    const char ready = 'R';
    if (write(ready_pipe[1], &ready, 1) != 1) _exit(1);
    for (;;) pause();  // SIGKILL is the only exit
  }
  close(ready_pipe[1]);
  char ready = 0;
  ASSERT_EQ(read(ready_pipe[0], &ready, 1), 1);
  close(ready_pipe[0]);

  const SketchConfig config = KllConfig();
  const std::vector<int64_t> first_half = TestStream(4000, 99);
  std::vector<int64_t> full = first_half;
  const std::vector<int64_t> second_half = TestStream(4000, 101);
  full.insert(full.end(), second_half.begin(), second_half.end());

  // Phase 1: ship the first half, acked + checkpointed by the child.
  StreamSketch<int64_t> first_sketch = MakeSketch(config, first_half);
  {
    net::ShipperOptions soptions;
    soptions.port = port;
    soptions.shipper_id = 6;
    net::SnapshotShipper shipper(soptions);
    shipper.Start();
    shipper.Offer(SnapshotBytes(first_sketch, config));
    ASSERT_TRUE(shipper.WaitUntilDrained(10000));
    shipper.Stop();
  }

  // kill -9 mid-run: no destructors, no flush, no goodbye.
  ASSERT_EQ(kill(child, SIGKILL), 0);
  int wstatus = 0;
  ASSERT_EQ(waitpid(child, &wstatus, 0), child);
  ASSERT_TRUE(WIFSIGNALED(wstatus));

  // Phase 2: restart in-process on the same port + checkpoint. The
  // restored state must answer exactly like the pre-kill merge...
  net::CollectorOptions options;
  options.port = port;
  options.checkpoint_path = path;
  net::Collector<int64_t> restored(options);
  ASSERT_TRUE(restored.Start());
  EXPECT_EQ(restored.known_shippers(), size_t{1});
  {
    const auto got = restored.Quantile(0.5);
    ASSERT_TRUE(got.has_value());
    EXPECT_DOUBLE_EQ(*got, first_sketch.Quantile(0.5));
  }

  // ...and after the shipper re-ships cumulative state, match a
  // single-process run over the full stream exactly (one shipper, so the
  // merge IS the single sketch).
  StreamSketch<int64_t> full_sketch = MakeSketch(config, full);
  {
    net::ShipperOptions soptions;
    soptions.port = port;
    soptions.shipper_id = 6;
    soptions.backoff_initial_ms = 5;
    net::SnapshotShipper shipper(soptions);
    shipper.Start();
    shipper.Offer(SnapshotBytes(full_sketch, config));
    ASSERT_TRUE(shipper.WaitUntilDrained(10000));
    shipper.Stop();
  }
  net::CollectorClient<int64_t> client;
  ASSERT_TRUE(client.Connect("127.0.0.1", port));
  for (double q : {0.05, 0.25, 0.5, 0.75, 0.95}) {
    double over_wire = -1.0;
    ASSERT_TRUE(client.Quantile(q, &over_wire));
    EXPECT_DOUBLE_EQ(over_wire, full_sketch.Quantile(q)) << q;
  }
  restored.Stop();
  std::remove(path.c_str());
}

TEST(CollectorCheckpointTest, PreFreshnessCheckpointStillRestores) {
  // Hand-craft a v1 checkpoint body — count | id | seq | frame, no
  // freshness stamps — and let the restore fall back to the old layout.
  const std::string path = TempPath("net_collector_v1.ck");
  std::remove(path.c_str());
  const SketchConfig config = KllConfig();
  const std::vector<int64_t> stream = TestStream(3000, 91);
  StreamSketch<int64_t> sketch = MakeSketch(config, stream);
  {
    wire::BufferSink body;
    wire::PutVarint(body, 1);   // one entry
    wire::PutVarint(body, 13);  // shipper id
    wire::PutVarint(body, 2);   // seq
    wire::PutBytes(body, SnapshotBytes(sketch, config));
    wire::FileSink file(path);
    ASSERT_TRUE(wire::WriteFramedBody(
        file, net::internal::kCollectorCheckpointMagic, body.bytes()));
    ASSERT_TRUE(file.SyncAndClose());
  }

  net::CollectorOptions options;
  options.checkpoint_path = path;
  net::Collector<int64_t> collector(options);
  ASSERT_TRUE(collector.Start());
  EXPECT_EQ(collector.known_shippers(), size_t{1});
  const auto got = collector.Quantile(0.5);
  ASSERT_TRUE(got.has_value());
  EXPECT_DOUBLE_EQ(*got, sketch.Quantile(0.5));
  collector.Stop();
  std::remove(path.c_str());
}

// ------------------------------------------------ freshness / v2 ships ----

TEST(FreshnessTest, QueryResultsCarryTheShippedWatermark) {
  net::Collector<int64_t> collector(net::CollectorOptions{});
  ASSERT_TRUE(collector.Start());

  const SketchConfig config = CountMinConfig();
  const std::vector<int64_t> stream_a = TestStream(4000, 111);
  const std::vector<int64_t> stream_b = TestStream(6000, 112);

  net::ShipperOptions ship_a;
  ship_a.port = collector.port();
  ship_a.shipper_id = 31;
  net::ShipperOptions ship_b = ship_a;
  ship_b.shipper_id = 32;
  net::SnapshotShipper shipper_a(ship_a);
  net::SnapshotShipper shipper_b(ship_b);
  shipper_a.Start();
  shipper_b.Start();
  shipper_a.Offer(SnapshotBytes(MakeSketch(config, stream_a), config),
                  /*total_ingested=*/stream_a.size());
  shipper_b.Offer(SnapshotBytes(MakeSketch(config, stream_b), config),
                  /*total_ingested=*/stream_b.size());
  ASSERT_TRUE(shipper_a.WaitUntilDrained(5000));
  ASSERT_TRUE(shipper_b.WaitUntilDrained(5000));
  shipper_a.Stop();
  shipper_b.Stop();

  // Every answer is annotated: the watermark floor is the LEAST advanced
  // shipper (what the merge is guaranteed to cover), and both shipped in
  // the past so staleness is strictly positive.
  net::CollectorClient<int64_t> client;
  ASSERT_TRUE(client.Connect("127.0.0.1", collector.port()));
  double out = 0.0;
  net::QueryFreshness fresh;
  ASSERT_TRUE(client.EstimateFrequency(int64_t{7}, &out, nullptr, &fresh));
  EXPECT_EQ(fresh.contributing_shippers, uint64_t{2});
  EXPECT_EQ(fresh.min_watermark, uint64_t{4000});
  EXPECT_GT(fresh.max_staleness_ns, uint64_t{0});

  // The annotation rides error statuses too: an unsupported query still
  // tells the caller how fresh the view it could not serve was.
  double q = 0.0;
  net::Status status = net::Status::kOk;
  net::QueryFreshness fresh_on_error;
  EXPECT_FALSE(client.Quantile(0.5, &q, &status, &fresh_on_error));
  EXPECT_EQ(status, net::Status::kUnsupported);
  EXPECT_EQ(fresh_on_error.min_watermark, uint64_t{4000});
  EXPECT_EQ(fresh_on_error.contributing_shippers, uint64_t{2});
  collector.Stop();
}

TEST(FreshnessTest, StalenessGaugesMoveUnderTheFaultMatrix) {
  // A faulted link forces supersession: snapshot A dies on two hard-closed
  // connections while B replaces it, so the collector's first accepted
  // ship arrives with seq 2 — one snapshot superseded (seq_lag 1) and the
  // full watermark caught up in one merge (elements_behind 3000).
  net::Collector<int64_t> collector(net::CollectorOptions{});
  ASSERT_TRUE(collector.Start());

  net::FaultProxyOptions poptions;
  poptions.upstream_port = collector.port();
  poptions.seed = 0xFA02;
  poptions.schedule = {net::FaultMode::kHardClose, net::FaultMode::kHardClose,
                       net::FaultMode::kPass, net::FaultMode::kPass};
  net::FaultProxy proxy(poptions);
  ASSERT_TRUE(proxy.Start());

  const SketchConfig config = CountMinConfig();
  const std::vector<int64_t> first_part = TestStream(1000, 121);
  std::vector<int64_t> cumulative = first_part;
  const std::vector<int64_t> second_part = TestStream(2000, 122);
  cumulative.insert(cumulative.end(), second_part.begin(), second_part.end());

  constexpr uint64_t kShipperId = 41;  // unique: gauges are process-global
  net::ShipperOptions soptions;
  soptions.port = proxy.port();
  soptions.shipper_id = kShipperId;
  soptions.connect_timeout_ms = 300;
  soptions.io_timeout_ms = 400;
  soptions.backoff_initial_ms = 5;
  soptions.backoff_max_ms = 50;
  net::SnapshotShipper shipper(soptions);
  shipper.Start();
  shipper.Offer(SnapshotBytes(MakeSketch(config, first_part), config),
                /*total_ingested=*/first_part.size());
  shipper.Offer(SnapshotBytes(MakeSketch(config, cumulative), config),
                /*total_ingested=*/cumulative.size());
  ASSERT_TRUE(shipper.WaitUntilDrained(20000));
  shipper.Stop();

  // Only the latest cumulative snapshot lands (seq 2 of 2 offered).
  EXPECT_EQ(collector.accepted_snapshots(), uint64_t{1});
  EXPECT_GE(shipper.superseded(), uint64_t{1});

#if RS_METRICS_ENABLED
  // RefreshFreshnessLocked ran at merge time, so the per-shipper gauges
  // already reflect the degraded delivery.
  EXPECT_EQ(obs::NetStalenessSeqLag(kShipperId).Value(), 1);
  EXPECT_EQ(obs::NetStalenessElementsBehind(kShipperId).Value(), 3000);
  EXPECT_GT(obs::NetStalenessNs(kShipperId).Value(), 0);
  // The e2e produce->merge histogram saw exactly the merged ship.
  EXPECT_GE(obs::NetE2eProduceMergeNs().Read().count, uint64_t{1});
#endif

  // The wire annotation agrees with the gauges.
  net::CollectorClient<int64_t> client;
  ASSERT_TRUE(client.Connect("127.0.0.1", collector.port()));
  double out = 0.0;
  net::QueryFreshness fresh;
  ASSERT_TRUE(client.EstimateFrequency(int64_t{7}, &out, nullptr, &fresh));
  EXPECT_EQ(fresh.contributing_shippers, uint64_t{1});
  EXPECT_EQ(fresh.min_watermark, cumulative.size());
  EXPECT_GT(fresh.max_staleness_ns, uint64_t{0});
  proxy.Stop();
  collector.Stop();
}

TEST(FreshnessTest, V1ShipFrameWithoutFreshnessTailStillAccepted) {
  // Wire-evolution contract (docs/wire.md): a v2 reader accepts v1
  // payloads. Hand-craft the pre-freshness kShip layout — shipper_id, seq,
  // snapshot frame, nothing after — and deliver it over a raw socket.
  net::Collector<int64_t> collector(net::CollectorOptions{});
  ASSERT_TRUE(collector.Start());

  const SketchConfig config = CountMinConfig();
  const std::vector<int64_t> stream = TestStream(3000, 131);
  StreamSketch<int64_t> sketch = MakeSketch(config, stream);

  const int fd = net::ConnectWithDeadline("127.0.0.1", collector.port(),
                                          1000);
  ASSERT_GE(fd, 0);
  net::SetSocketDeadlines(fd, 5000, 5000);
  {
    wire::BufferSink payload;
    wire::PutVarint(payload, 51);  // shipper_id
    wire::PutVarint(payload, 1);   // seq
    wire::PutBytes(payload, SnapshotBytes(sketch, config));
    // v1 ends here: no produced_ns, no total_ingested.
    net::SocketSink sink(fd);
    ASSERT_TRUE(
        net::WriteMessage(sink, net::MessageType::kShip, payload.bytes()));
    ASSERT_TRUE(sink.ok());
  }
  {
    net::SocketSource source(fd);
    net::MessageType type;
    std::vector<uint8_t> ack;
    std::string error;
    ASSERT_TRUE(net::ReadMessage(source, &type, &ack, &error)) << error;
    ASSERT_EQ(type, net::MessageType::kShipAck);
    net::Status status = net::Status::kMalformed;
    ASSERT_TRUE(net::ParseStatusPayload(ack, &status));
    EXPECT_EQ(status, net::Status::kOk);
  }
  close(fd);

  // The v1 ship merged for real, and its absent stamps read as zero in
  // the freshness annotation (min_watermark 0 = "not tracked").
  EXPECT_EQ(collector.accepted_snapshots(), uint64_t{1});
  const auto freq = collector.EstimateFrequency(7);
  ASSERT_TRUE(freq.has_value());
  EXPECT_DOUBLE_EQ(*freq, sketch.EstimateFrequency(7));

  net::CollectorClient<int64_t> client;
  ASSERT_TRUE(client.Connect("127.0.0.1", collector.port()));
  double out = 0.0;
  net::QueryFreshness fresh;
  fresh.min_watermark = 99;
  fresh.max_staleness_ns = 99;
  ASSERT_TRUE(client.EstimateFrequency(int64_t{7}, &out, nullptr, &fresh));
  EXPECT_EQ(fresh.contributing_shippers, uint64_t{1});
  EXPECT_EQ(fresh.min_watermark, uint64_t{0});
  EXPECT_EQ(fresh.max_staleness_ns, uint64_t{0});
  collector.Stop();
}

// --------------------------------------------------- embedded admin ----

/// Minimal HTTP/1.0 GET against the collector's embedded admin plane
/// (obs_admin_test covers the server itself; this covers the embedding).
std::string HttpGetBody(uint16_t port, const std::string& path,
                        int* status_out) {
  const int fd = net::ConnectWithDeadline("127.0.0.1", port, 2000);
  EXPECT_GE(fd, 0);
  if (fd < 0) return "";
  net::SetSocketDeadlines(fd, 5000, 5000);
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  EXPECT_TRUE(wire::WriteAllFd(fd, request.data(), request.size(),
                               /*socket_nosignal=*/true));
  std::string response;
  char buf[4096];
  ssize_t n = 0;
  while ((n = read(fd, buf, sizeof(buf))) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  close(fd);
  const size_t header_end = response.find("\r\n\r\n");
  if (header_end == std::string::npos || response.size() < 12) return "";
  *status_out = std::atoi(response.substr(9, 3).c_str());
  return response.substr(header_end + 4);
}

TEST(CollectorAdminTest, EmbeddedPlaneServesShippersView) {
  net::CollectorOptions options;
  options.admin_port = 0;  // ephemeral
  net::Collector<int64_t> collector(options);
  ASSERT_TRUE(collector.Start());
  ASSERT_NE(collector.admin_port(), 0);

  const SketchConfig config = CountMinConfig();
  const std::vector<int64_t> stream = TestStream(2500, 141);
  net::ShipperOptions soptions;
  soptions.port = collector.port();
  soptions.shipper_id = 61;
  net::SnapshotShipper shipper(soptions);
  shipper.Start();
  shipper.Offer(SnapshotBytes(MakeSketch(config, stream), config),
                /*total_ingested=*/stream.size());
  ASSERT_TRUE(shipper.WaitUntilDrained(5000));
  shipper.Stop();

  int status = 0;
  const std::string body =
      HttpGetBody(collector.admin_port(), "/shippers", &status);
  EXPECT_EQ(status, 200);
  EXPECT_NE(body.find("\"shipper\":61"), std::string::npos) << body;
  EXPECT_NE(body.find("\"total_ingested\":2500"), std::string::npos) << body;
  EXPECT_NE(body.find("\"seq\":1"), std::string::npos) << body;
  EXPECT_NE(body.find("\"contributing_shippers\":1"), std::string::npos)
      << body;
  EXPECT_NE(body.find("\"min_watermark\":2500"), std::string::npos) << body;

  int health_status = 0;
  const std::string health =
      HttpGetBody(collector.admin_port(), "/healthz", &health_status);
  EXPECT_EQ(health_status, 200);
  EXPECT_EQ(health, "ok\n");

  // Stop tears the plane down with the collector.
  const uint16_t admin_port = collector.admin_port();
  collector.Stop();
  EXPECT_LT(net::ConnectWithDeadline("127.0.0.1", admin_port, 200), 0);
}

TEST(CollectorAdminTest, DisabledByDefault) {
  net::Collector<int64_t> collector(net::CollectorOptions{});
  ASSERT_TRUE(collector.Start());
  EXPECT_EQ(collector.admin_port(), 0);
  collector.Stop();
}

}  // namespace
}  // namespace robust_sampling
