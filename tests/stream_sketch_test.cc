// Tests for the pipeline's type-erased sketch layer: the StreamSketch<T>
// wrapper, the string-keyed SketchRegistry, the batched-insertion hot
// paths (InsertBatch must match per-element insertion in distribution),
// and the new Merge operations on the core samplers and sketches.

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <span>
#include <vector>

#include "core/bernoulli_sampler.h"
#include "core/reservoir_sampler.h"
#include "core/robust_sample.h"
#include "gtest/gtest.h"
#include "heavy/count_min.h"
#include "heavy/exact_counter.h"
#include "pipeline/sketch_registry.h"
#include "pipeline/stream_sketch.h"
#include "stream/generators.h"

namespace robust_sampling {
namespace {

TEST(SketchRegistryTest, GlobalRegistryKnowsAllBuiltinKinds) {
  const auto kinds = SketchRegistry<int64_t>::Global().Kinds();
  for (const char* kind :
       {"robust_sample", "reservoir", "bernoulli", "kll", "count_min",
        "misra_gries", "space_saving"}) {
    EXPECT_TRUE(std::count(kinds.begin(), kinds.end(), kind) == 1)
        << "missing kind: " << kind;
  }
}

TEST(SketchRegistryTest, CreatesEveryKindAndIngestsBatches) {
  const auto stream = UniformIntStream(5000, 1 << 16, 21);
  for (const auto& kind : SketchRegistry<int64_t>::Global().Kinds()) {
    SketchConfig config;
    config.kind = kind;
    config.probability = 0.05;  // used by "bernoulli" only
    config.seed = 7;
    StreamSketch<int64_t> sketch =
        SketchRegistry<int64_t>::Global().Create(config);
    ASSERT_TRUE(sketch.valid()) << kind;
    sketch.InsertBatch(stream);
    EXPECT_EQ(sketch.StreamSize(), stream.size()) << kind;
    EXPECT_GT(sketch.SpaceItems(), 0u) << kind;
    EXPECT_FALSE(sketch.Name().empty()) << kind;
  }
}

TEST(SketchRegistryDeathTest, UnknownKindAborts) {
  SketchConfig config;
  config.kind = "no_such_sketch";
  EXPECT_DEATH(SketchRegistry<int64_t>::Global().Create(config),
               "unknown sketch kind");
}

TEST(SketchRegistryTest, CustomKindCanBeRegistered) {
  SketchRegistry<int64_t> registry;  // empty, not the global one
  registry.Register("my_reservoir",
                    [](const SketchConfig& c, uint64_t seed) {
                      return StreamSketch<int64_t>::Wrap(
                          ReservoirAdapter<int64_t>(
                              ReservoirSampler<int64_t>(c.capacity, seed)));
                    });
  EXPECT_TRUE(registry.Contains("my_reservoir"));
  SketchConfig config;
  config.kind = "my_reservoir";
  config.capacity = 32;
  auto sketch = registry.Create(config, 5);
  for (int64_t i = 0; i < 100; ++i) sketch.Insert(i);
  EXPECT_EQ(sketch.StreamSize(), 100u);
  EXPECT_EQ(sketch.SpaceItems(), 32u);
}

TEST(StreamSketchTest, TryAsDowncastsToTheWrappedAdapter) {
  SketchConfig config;
  config.kind = "reservoir";
  config.capacity = 16;
  auto sketch = SketchRegistry<int64_t>::Global().Create(config);
  EXPECT_NE(sketch.TryAs<ReservoirAdapter<int64_t>>(), nullptr);
  EXPECT_EQ(sketch.TryAs<RobustSampleAdapter<int64_t>>(), nullptr);
}

TEST(StreamSketchTest, CopyIsDeep) {
  SketchConfig config;
  config.kind = "reservoir";
  config.capacity = 8;
  auto a = SketchRegistry<int64_t>::Global().Create(config);
  for (int64_t i = 0; i < 100; ++i) a.Insert(i);
  StreamSketch<int64_t> b = a;
  for (int64_t i = 0; i < 50; ++i) b.Insert(i);
  EXPECT_EQ(a.StreamSize(), 100u);
  EXPECT_EQ(b.StreamSize(), 150u);
}

TEST(StreamSketchDeathTest, MergingDifferentKindsAborts) {
  SketchConfig reservoir_config;
  reservoir_config.kind = "reservoir";
  reservoir_config.capacity = 16;
  SketchConfig kll_config;
  kll_config.kind = "kll";
  auto a = SketchRegistry<int64_t>::Global().Create(reservoir_config);
  auto b = SketchRegistry<int64_t>::Global().Create(kll_config);
  EXPECT_DEATH(a.MergeFrom(b), "different kinds");
}

// --- batched insertion: exact bookkeeping -------------------------------

TEST(ReservoirBatchTest, FillPhaseAndSizesAreExact) {
  ReservoirSampler<int64_t> s(100, 3);
  std::vector<int64_t> small(40);
  std::iota(small.begin(), small.end(), 0);
  s.InsertBatch(small);
  // Below capacity: everything is kept, in order.
  EXPECT_EQ(s.sample(), small);
  EXPECT_EQ(s.stream_size(), 40u);
  std::vector<int64_t> more(300);
  std::iota(more.begin(), more.end(), 40);
  s.InsertBatch(more);
  EXPECT_EQ(s.sample().size(), 100u);
  EXPECT_EQ(s.stream_size(), 340u);
}

TEST(BernoulliBatchTest, DegenerateProbabilitiesAreExact) {
  std::vector<int64_t> batch(1000, 7);
  BernoulliSampler<int64_t> none(0.0, 1);
  none.InsertBatch(batch);
  EXPECT_TRUE(none.sample().empty());
  EXPECT_EQ(none.stream_size(), 1000u);
  BernoulliSampler<int64_t> all(1.0, 1);
  all.InsertBatch(batch);
  EXPECT_EQ(all.sample().size(), 1000u);
  EXPECT_EQ(all.stream_size(), 1000u);
}

// --- batched insertion: distributional equivalence ----------------------

// InsertBatch uses geometric skip sampling instead of per-element coins;
// the kept-position distribution must still match Algorithm R's. With
// k draws from a uniform stream the sample mean is a cheap, sensitive
// statistic: over `trials` independent runs the grand mean concentrates
// around the stream mean with sd ~= range / sqrt(12 k trials).
TEST(ReservoirBatchTest, BatchSamplesAreUniformOverTheStream) {
  const size_t k = 200;
  const size_t n = 20000;
  const int trials = 40;
  std::vector<int64_t> stream(n);
  std::iota(stream.begin(), stream.end(), 1);  // 1..n, mean (n+1)/2
  double grand_mean = 0.0;
  for (int t = 0; t < trials; ++t) {
    ReservoirSampler<int64_t> s(k, 1000 + static_cast<uint64_t>(t));
    // Vary the batch boundaries so every code path (fill, skip, batch
    // truncation) participates.
    const size_t cut = 97 + static_cast<size_t>(t) * 13;
    s.InsertBatch(std::span<const int64_t>(stream.data(), cut));
    s.InsertBatch(
        std::span<const int64_t>(stream.data() + cut, n - cut));
    double mean = 0.0;
    for (int64_t v : s.sample()) mean += static_cast<double>(v);
    grand_mean += mean / static_cast<double>(k);
  }
  grand_mean /= trials;
  const double expected = (static_cast<double>(n) + 1.0) / 2.0;
  // sd of the grand mean ~= n / sqrt(12 k trials) ~= 65; allow 5 sigma.
  EXPECT_NEAR(grand_mean, expected, 5.0 * 65.0);
}

TEST(BernoulliBatchTest, BatchSampleSizeMatchesBinomialMean) {
  const double p = 0.01;
  const size_t n = 100000;
  const int trials = 20;
  const auto stream = UniformIntStream(n, 1 << 20, 5);
  double mean_size = 0.0;
  for (int t = 0; t < trials; ++t) {
    BernoulliSampler<int64_t> s(p, 2000 + static_cast<uint64_t>(t));
    s.InsertBatch(stream);
    EXPECT_EQ(s.stream_size(), n);
    mean_size += static_cast<double>(s.sample().size());
  }
  mean_size /= trials;
  // Binomial(n, p): mean 1000, sd ~= 31.5; the mean of `trials` runs has
  // sd ~= 7; allow 5 sigma.
  EXPECT_NEAR(mean_size, static_cast<double>(n) * p, 5.0 * 7.1);
}

// --- merge semantics ----------------------------------------------------

TEST(ReservoirMergeTest, SizesAndWeightsAreExact) {
  ReservoirSampler<int64_t> a(64, 11), b(64, 12);
  for (int64_t i = 0; i < 1000; ++i) a.Insert(i);
  for (int64_t i = 0; i < 500; ++i) b.Insert(1000 + i);
  a.Merge(b);
  EXPECT_EQ(a.stream_size(), 1500u);
  EXPECT_EQ(a.sample().size(), 64u);
}

TEST(ReservoirMergeTest, MergeWithShorterThanCapacityStream) {
  ReservoirSampler<int64_t> a(64, 13), b(64, 14);
  for (int64_t i = 0; i < 10; ++i) a.Insert(i);
  for (int64_t i = 0; i < 20; ++i) b.Insert(100 + i);
  a.Merge(b);
  EXPECT_EQ(a.stream_size(), 30u);
  // Union fits in the reservoir: the merged sample is the whole union.
  EXPECT_EQ(a.sample().size(), 30u);
  std::vector<int64_t> sorted = a.sample();
  std::sort(sorted.begin(), sorted.end());
  for (int64_t i = 0; i < 10; ++i) EXPECT_EQ(sorted[i], i);
  for (int64_t i = 0; i < 20; ++i) EXPECT_EQ(sorted[10 + i], 100 + i);
}

// The merged reservoir must be a *uniform* sample of the union: with
// stream A of size 2n and stream B of size n, elements of A should make
// up 2/3 of the merged sample on average.
TEST(ReservoirMergeTest, MergedSampleWeightsStreamsByLength) {
  const size_t k = 128;
  const int trials = 50;
  double frac_a = 0.0;
  for (int t = 0; t < trials; ++t) {
    ReservoirSampler<int64_t> a(k, 300 + static_cast<uint64_t>(t));
    ReservoirSampler<int64_t> b(k, 900 + static_cast<uint64_t>(t));
    for (int64_t i = 0; i < 20000; ++i) a.Insert(i);          // A: values < 1e6
    for (int64_t i = 0; i < 10000; ++i) b.Insert(1000000 + i);  // B: >= 1e6
    a.Merge(b);
    size_t hits = 0;
    for (int64_t v : a.sample()) hits += v < 1000000;
    frac_a += static_cast<double>(hits) / static_cast<double>(k);
  }
  frac_a /= trials;
  // sd of the mean fraction ~= sqrt(2/9 / (k * trials)) ~= 0.0059.
  EXPECT_NEAR(frac_a, 2.0 / 3.0, 5.0 * 0.0059);
}

TEST(ReservoirMergeDeathTest, MismatchedCapacitiesAbort) {
  ReservoirSampler<int64_t> a(8, 1), b(16, 2);
  EXPECT_DEATH(a.Merge(b), "different capacities");
}

TEST(BernoulliMergeTest, SamplesConcatenateAndSizesAdd) {
  BernoulliSampler<int64_t> a(0.1, 31), b(0.1, 32);
  const auto s1 = UniformIntStream(5000, 1000, 33);
  const auto s2 = UniformIntStream(3000, 1000, 34);
  a.InsertBatch(s1);
  b.InsertBatch(s2);
  const size_t size_a = a.sample().size();
  const size_t size_b = b.sample().size();
  a.Merge(b);
  EXPECT_EQ(a.stream_size(), 8000u);
  EXPECT_EQ(a.sample().size(), size_a + size_b);
}

// CountMin is a linear sketch: merging two sketches built with the same
// seed must equal the sketch of the concatenated stream, counter for
// counter — a fully deterministic identity.
TEST(CountMinMergeTest, MergeEqualsSketchOfConcatenation) {
  const uint64_t seed = 99;
  CountMinSketch a(256, 3, seed), b(256, 3, seed), both(256, 3, seed);
  const auto s1 = ZipfIntStream(20000, 2000, 1.1, 41);
  const auto s2 = ZipfIntStream(15000, 2000, 0.9, 43);
  for (int64_t v : s1) {
    a.Insert(v);
    both.Insert(v);
  }
  for (int64_t v : s2) {
    b.Insert(v);
    both.Insert(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.StreamSize(), both.StreamSize());
  for (int64_t x = 1; x <= 2000; x += 17) {
    EXPECT_EQ(a.EstimateCount(x), both.EstimateCount(x)) << "x=" << x;
  }
}

TEST(CountMinMergeDeathTest, DifferentSeedsAbort) {
  CountMinSketch a(64, 2, 1), b(64, 2, 2);
  EXPECT_DEATH(a.Merge(b), "different hash rows");
}

TEST(SpaceSavingMergeTest, MergedErrorBoundHolds) {
  const size_t k = 20;
  SpaceSaving a(k), b(k);
  ExactCounter exact;
  const auto s1 = ZipfIntStream(20000, 5000, 1.2, 51);
  const auto s2 = ZipfIntStream(20000, 5000, 0.8, 53);
  for (int64_t v : s1) {
    a.Insert(v);
    exact.Insert(v);
  }
  for (int64_t v : s2) {
    b.Insert(v);
    exact.Insert(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.StreamSize(), 40000u);
  EXPECT_LE(a.SpaceItems(), k);
  // SpaceSaving overestimates by at most n/k in total after a merge.
  const double bound = 1.0 / static_cast<double>(k);
  for (int64_t x = 1; x <= 20; ++x) {
    const double est = a.EstimateFrequency(x);
    const double truth = exact.EstimateFrequency(x);
    EXPECT_GE(est + 1e-12, truth == 0.0 ? 0.0 : truth - bound) << "x=" << x;
    EXPECT_LE(est, truth + bound + 1e-12) << "x=" << x;
  }
}

// RobustSample::Merge preserves the Theorem 1.2 contract: the merged
// sample of two disjoint halves estimates range densities of the full
// stream within eps.
TEST(RobustSampleMergeTest, MergedDensityEstimatesStayEpsAccurate) {
  const double eps = 0.1;
  auto a = RobustSample<int64_t>::ForQuantiles(eps, 0.05, 1 << 20, 61);
  auto b = RobustSample<int64_t>::ForQuantiles(eps, 0.05, 1 << 20, 62);
  const auto s1 = UniformIntStream(60000, 1 << 20, 63);
  const auto s2 = GaussianIntStream(40000, 1 << 20, 0.3, 0.1, 64);
  a.InsertBatch(s1);
  b.InsertBatch(s2);
  a.Merge(b);
  EXPECT_EQ(a.stream_size(), 100000u);
  for (int64_t threshold : {1 << 17, 1 << 18, 1 << 19}) {
    size_t truth = 0;
    for (int64_t v : s1) truth += v <= threshold;
    for (int64_t v : s2) truth += v <= threshold;
    const double true_density = static_cast<double>(truth) / 100000.0;
    const double est =
        a.EstimateDensity([threshold](int64_t v) { return v <= threshold; });
    EXPECT_NEAR(est, true_density, eps) << "threshold=" << threshold;
  }
}

}  // namespace
}  // namespace robust_sampling
