// Stress tests for the pipeline's lock-free data plane (spsc_ring.h +
// batch_pool.h): no loss under tiny ring capacities and random batch
// sizes with concurrent mid-stream snapshots, bit-identical determinism
// under fixed batch sizes, bit-identical merged CountMin vs a 1-shard
// reference, and the steady-state zero-allocation guarantee of Ingest
// (asserted with a thread-local counting operator new).
//
// This file is part of the TSan CI job: the ring's acquire/release
// hand-off, the pool's refcounted recycling, and the flush protocol are
// all exercised here under racing producer/consumer threads.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <span>
#include <thread>
#include <vector>

#include "core/random.h"
#include "gtest/gtest.h"
#include "obs/catalog.h"
#include "obs/metrics.h"
#include "pipeline/batch_pool.h"
#include "pipeline/sharded_pipeline.h"
#include "pipeline/spsc_ring.h"
#include "pipeline/stream_sketch.h"
#include "stream/generators.h"

// --- thread-local allocation counter ---------------------------------------
// Counts heap allocations made by *this* thread, so the producer-side
// zero-allocation assertion is immune to whatever the worker threads (or
// gtest internals on other threads) allocate.

namespace {
thread_local uint64_t t_alloc_count = 0;
}  // namespace

void* operator new(std::size_t size) {
  ++t_alloc_count;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  ++t_alloc_count;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace robust_sampling {
namespace {

// --- SpscRing unit stress ---------------------------------------------------

TEST(SpscRingTest, SingleThreadedFifoAndCapacity) {
  SpscRing<int> ring(3);  // rounds up to 4
  EXPECT_EQ(ring.capacity(), 4u);
  for (int i = 0; i < 4; ++i) {
    int v = i;
    EXPECT_TRUE(ring.TryPush(v));
  }
  int overflow = 99;
  EXPECT_FALSE(ring.TryPush(overflow));
  EXPECT_EQ(overflow, 99);  // untouched on failure
  for (int i = 0; i < 4; ++i) {
    int out = -1;
    EXPECT_TRUE(ring.TryPop(out));
    EXPECT_EQ(out, i);
  }
  int out = -1;
  EXPECT_FALSE(ring.TryPop(out));
}

// Two racing threads, blocking edges on both sides (capacity 2 forces the
// producer to wait; bursty consumption forces the consumer to wait), every
// value accounted for exactly once, in order.
TEST(SpscRingTest, BlockingProducerConsumerTransfersEverythingInOrder) {
  SpscRing<uint64_t> ring(2);
  static constexpr uint64_t kCount = 200000;
  std::thread consumer([&ring] {
    uint64_t expected = 0;
    uint64_t v;
    while (ring.Pop(v)) {
      ASSERT_EQ(v, expected);
      ++expected;
    }
    EXPECT_EQ(expected, kCount);
  });
  for (uint64_t i = 0; i < kCount; ++i) ring.Push(i);
  ring.Close();
  consumer.join();
}

// --- BatchPool unit stress --------------------------------------------------

TEST(BatchPoolTest, BuffersRecycleWhenLastSliceReleases) {
  BatchPool<int64_t> pool;
  BatchBuffer<int64_t>* buffer = pool.Acquire();
  buffer->data.assign({1, 2, 3, 4, 5, 6});
  BatchSlice<int64_t> lo = pool.MakeSlice(buffer, 0, 3);
  BatchSlice<int64_t> hi = pool.MakeSlice(buffer, 3, 3);
  pool.Release(buffer);  // producer ref dropped; slices keep it alive
  EXPECT_EQ(lo.span()[0], 1);
  EXPECT_EQ(hi.span()[2], 6);
  lo.Release();
  // Still one outstanding slice: the buffer must not have recycled — a
  // fresh Acquire creates a second buffer instead of reusing this one.
  BatchBuffer<int64_t>* other = pool.Acquire();
  EXPECT_NE(other, buffer);
  EXPECT_EQ(pool.AllocatedBuffers(), 2u);
  hi.Release();  // last ref: recycles
  pool.Release(other);
  BatchBuffer<int64_t>* reused = pool.Acquire();
  EXPECT_TRUE(reused == buffer || reused == other);
  EXPECT_EQ(pool.AllocatedBuffers(), 2u);
  pool.Release(reused);
}

TEST(BatchPoolTest, ConcurrentReleaseFromManyThreadsRecyclesOnce) {
  BatchPool<int64_t> pool;
  for (int round = 0; round < 200; ++round) {
    BatchBuffer<int64_t>* buffer = pool.Acquire();
    buffer->data.assign(64, round);
    std::vector<BatchSlice<int64_t>> slices;
    for (size_t s = 0; s < 4; ++s) {
      slices.push_back(pool.MakeSlice(buffer, s * 16, 16));
    }
    pool.Release(buffer);
    std::vector<std::thread> threads;
    for (auto& slice : slices) {
      threads.emplace_back([&slice, round] {
        ASSERT_EQ(slice.span()[0], round);
        slice.Release();
      });
    }
    for (auto& t : threads) t.join();
  }
  // One buffer in flight at a time -> the pool never grew past one.
  EXPECT_EQ(pool.AllocatedBuffers(), 1u);
}

// --- pipeline stress --------------------------------------------------------

void StressOnePolicy(PartitionPolicy policy) {
  SketchConfig config;
  config.kind = "robust_sample";
  config.eps = 0.1;
  config.delta = 0.05;
  config.universe_size = uint64_t{1} << 20;
  config.seed = 2027;
  PipelineOptions options;
  options.num_shards = 4;
  options.partition = policy;
  options.ring_capacity = 2;  // tiny ring: constant backpressure edges
  ShardedPipeline<int64_t> pipeline(config, options);

  const auto stream = UniformIntStream(400000, 1 << 20, 2029);
  Rng rng(31337);
  size_t offset = 0;
  size_t batches = 0;
  while (offset < stream.size()) {
    // Random batch sizes, including the 1-element edge.
    const size_t len = std::min<size_t>(1 + rng.NextBelow(701),
                                        stream.size() - offset);
    pipeline.Ingest(std::span<const int64_t>(stream.data() + offset, len));
    offset += len;
    if (++batches % 64 == 0) {
      // Mid-stream snapshot while the workers are busy: must observe
      // exactly the elements ingested so far (Snapshot flushes).
      ASSERT_EQ(pipeline.Snapshot().StreamSize(), offset);
      ASSERT_EQ(pipeline.Capabilities(),
                pipeline.Snapshot().Capabilities());
    }
  }
  EXPECT_EQ(pipeline.total_ingested(), stream.size());
  const auto sizes = pipeline.ShardStreamSizes();
  size_t total = 0;
  for (size_t s : sizes) total += s;
  EXPECT_EQ(total, stream.size());  // no loss, no duplication
  EXPECT_EQ(pipeline.Snapshot().StreamSize(), stream.size());
}

TEST(PipelineStressTest, TinyRingRandomBatchesMidStreamSnapshotsRoundRobin) {
  StressOnePolicy(PartitionPolicy::kRoundRobin);
}

TEST(PipelineStressTest, TinyRingRandomBatchesMidStreamSnapshotsHash) {
  StressOnePolicy(PartitionPolicy::kHash);
}

// Capabilities() is served from a construction-time cache, so unlike the
// old implementation (which read shard 0's live sketch) it may race with
// ingestion freely. This test is the TSan guard for that fix.
TEST(PipelineStressTest, CapabilitiesIsSafeDuringIngestion) {
  SketchConfig config;
  config.kind = "robust_sample";
  config.seed = 41;
  PipelineOptions options;
  options.num_shards = 2;
  options.ring_capacity = 2;
  ShardedPipeline<int64_t> pipeline(config, options);
  const auto stream = UniformIntStream(200000, 1 << 20, 43);
  const uint32_t expected = pipeline.Capabilities();
  std::atomic<bool> done{false};
  std::thread reader([&] {
    while (!done.load(std::memory_order_relaxed)) {
      ASSERT_EQ(pipeline.Capabilities(), expected);
    }
  });
  for (size_t i = 0; i < stream.size(); i += 512) {
    pipeline.Ingest(std::span<const int64_t>(
        stream.data() + i, std::min<size_t>(512, stream.size() - i)));
  }
  pipeline.Flush();
  done.store(true, std::memory_order_relaxed);
  reader.join();
  EXPECT_NE(expected & kCapSampleView, 0u);
}

// Determinism through the new data plane: fixed seed + fixed batch sizes
// => bit-identical merged samples, even with mid-stream snapshots and a
// tiny ring racing the workers.
TEST(PipelineStressTest, FixedBatchSizesAreBitIdenticalAcrossRuns) {
  const auto stream = UniformIntStream(150000, 1 << 20, 47);
  for (PartitionPolicy policy :
       {PartitionPolicy::kRoundRobin, PartitionPolicy::kHash}) {
    SketchConfig config;
    config.kind = "robust_sample";
    config.eps = 0.1;
    config.delta = 0.05;
    config.seed = 53;
    PipelineOptions options;
    options.num_shards = 4;
    options.partition = policy;
    options.ring_capacity = 2;
    auto run = [&](bool take_mid_stream_snapshots) {
      ShardedPipeline<int64_t> pipeline(config, options);
      size_t batches = 0;
      for (size_t i = 0; i < stream.size(); i += 1024) {
        pipeline.Ingest(std::span<const int64_t>(
            stream.data() + i, std::min<size_t>(1024, stream.size() - i)));
        if (take_mid_stream_snapshots && ++batches % 32 == 0) {
          pipeline.Snapshot();
        }
      }
      const auto snapshot = pipeline.Snapshot();
      const auto view = snapshot.SampleView().elements;
      return std::vector<int64_t>(view.begin(), view.end());
    };
    const auto a = run(false);
    const auto b = run(true);  // snapshots must not perturb the sample
    EXPECT_EQ(a, b);
    EXPECT_FALSE(a.empty());
  }
}

// IngestBorrowed (zero-copy, caller-owned memory) must route, backpressure
// and seed exactly like Ingest: all three feeding disciplines — copying,
// borrowed, and alternating per batch — produce bit-identical merged
// samples.
TEST(PipelineStressTest, BorrowedIngestBitIdenticalToCopyingIngest) {
  const auto stream = UniformIntStream(200000, 1 << 20, 73);
  SketchConfig config;
  config.kind = "robust_sample";
  config.eps = 0.1;
  config.delta = 0.05;
  config.seed = 79;
  PipelineOptions options;
  options.num_shards = 4;
  options.ring_capacity = 4;
  enum class Feed { kCopy, kBorrow, kMix };
  auto run = [&](Feed feed) {
    ShardedPipeline<int64_t> pipeline(config, options);
    size_t batches = 0;
    for (size_t i = 0; i < stream.size(); i += 2048) {
      const std::span<const int64_t> batch(
          stream.data() + i, std::min<size_t>(2048, stream.size() - i));
      const bool borrow =
          feed == Feed::kBorrow || (feed == Feed::kMix && ++batches % 2);
      if (borrow) {
        pipeline.IngestBorrowed(batch);
      } else {
        pipeline.Ingest(batch);
      }
    }
    const auto snapshot = pipeline.Snapshot();  // flushes: borrow contract
    const auto view = snapshot.SampleView().elements;
    return std::vector<int64_t>(view.begin(), view.end());
  };
  const auto copied = run(Feed::kCopy);
  const auto borrowed = run(Feed::kBorrow);
  const auto mixed = run(Feed::kMix);
  EXPECT_EQ(copied, borrowed);
  EXPECT_EQ(copied, mixed);
  EXPECT_FALSE(copied.empty());
}

// CountMin is linear and its shards share hash rows, so an N-shard merged
// snapshot must be *bit-identical* to a 1-shard reference pipeline fed
// the same batches.
TEST(PipelineStressTest, MergedCountMinBitIdenticalToSingleShardReference) {
  SketchConfig config;
  config.kind = "count_min";
  config.width = 256;
  config.depth = 4;
  config.seed = 59;
  PipelineOptions sharded_options;
  sharded_options.num_shards = 4;
  sharded_options.partition = PartitionPolicy::kHash;
  sharded_options.ring_capacity = 2;
  PipelineOptions reference_options;
  reference_options.num_shards = 1;
  ShardedPipeline<int64_t> sharded(config, sharded_options);
  ShardedPipeline<int64_t> reference(config, reference_options);
  const auto stream = ZipfIntStream(120000, 5000, 1.2, 61);
  for (size_t i = 0; i < stream.size(); i += 997) {
    const size_t len = std::min<size_t>(997, stream.size() - i);
    sharded.Ingest(std::span<const int64_t>(stream.data() + i, len));
    reference.Ingest(std::span<const int64_t>(stream.data() + i, len));
  }
  const auto merged = sharded.Snapshot();
  const auto single = reference.Snapshot();
  ASSERT_EQ(merged.StreamSize(), single.StreamSize());
  for (int64_t x = 1; x <= 5000; x += 7) {
    ASSERT_EQ(merged.EstimateFrequency(x), single.EstimateFrequency(x))
        << x;
  }
}

// The allocation-free steady state: with a pre-warmed pool, the producer
// thread performs ZERO heap allocations per Ingest, for both partitioning
// policies. (Thread-local counter: worker-thread allocations, if any, are
// out of scope — the contract is about the ingestion hot path.)
void ExpectZeroProducerAllocations(PartitionPolicy policy) {
  constexpr size_t kBatch = 4096;
  SketchConfig config;
  config.kind = "robust_sample";
  config.eps = 0.1;
  config.delta = 0.05;
  config.seed = 67;
  PipelineOptions options;
  options.num_shards = 4;
  options.partition = policy;
  options.ring_capacity = 8;
  options.prewarm_batch_elements = kBatch;  // all allocation at setup time
  ShardedPipeline<int64_t> pipeline(config, options);
  const auto stream = UniformIntStream(kBatch, 1 << 20, 71);
  const size_t pooled_before = pipeline.PooledBuffers();

  // Short warm-up (not strictly required with prewarm, but keeps the
  // assertion about steady state rather than first-touch).
  for (int i = 0; i < 8; ++i) pipeline.Ingest(stream);
  pipeline.Flush();

  const uint64_t allocs_before = t_alloc_count;
  for (int i = 0; i < 512; ++i) pipeline.Ingest(stream);
  const uint64_t allocs_after = t_alloc_count;
  pipeline.Flush();

  EXPECT_EQ(allocs_after - allocs_before, 0u)
      << "steady-state Ingest allocated on the producer thread";
  EXPECT_EQ(pipeline.PooledBuffers(), pooled_before)
      << "pool grew past its pre-warmed size";
  EXPECT_EQ(pipeline.total_ingested(), 520 * kBatch);
  EXPECT_EQ(pipeline.Snapshot().StreamSize(), 520 * kBatch);
}

TEST(PipelineStressTest, SteadyStateIngestIsAllocationFreeRoundRobin) {
  ExpectZeroProducerAllocations(PartitionPolicy::kRoundRobin);
}

TEST(PipelineStressTest, SteadyStateIngestIsAllocationFreeHash) {
  ExpectZeroProducerAllocations(PartitionPolicy::kHash);
}

// The zero-allocation contract extends to the multi-producer hot path:
// every registered producer owns its own pre-warmed pool and its own
// partition scratch, so each producer *thread* performs zero heap
// allocations per Ingest in steady state (asserted per thread with the
// thread-local counter — worker-thread recycling is out of scope).
TEST(PipelineStressTest, SteadyStateMultiProducerIngestIsAllocationFree) {
  constexpr size_t kBatch = 4096;
  constexpr size_t kProducers = 2;
  SketchConfig config;
  config.kind = "count_min";
  config.width = 256;
  config.depth = 4;
  config.seed = 97;
  PipelineOptions options;
  options.num_shards = 2;
  options.partition = PartitionPolicy::kHash;  // exercises scatter scratch
  options.ring_capacity = 8;
  options.prewarm_batch_elements = kBatch;
  options.max_producers = kProducers;
  ShardedPipeline<int64_t> pipeline(config, options);
  const auto stream = UniformIntStream(kBatch, 1 << 20, 101);
  const size_t pooled_before = pipeline.PooledBuffers();

  std::vector<std::thread> threads;
  for (size_t p = 0; p < kProducers; ++p) {
    threads.emplace_back([&pipeline, &stream] {
      auto& producer = pipeline.RegisterProducer();
      // Warm-up: first hashed batches size the partition scratch vectors
      // (their capacity is sticky afterwards).
      for (int i = 0; i < 16; ++i) producer.Ingest(stream);
      const uint64_t allocs_before = t_alloc_count;
      for (int i = 0; i < 256; ++i) producer.Ingest(stream);
      const uint64_t allocs_after = t_alloc_count;
      EXPECT_EQ(allocs_after - allocs_before, 0u)
          << "steady-state multi-producer Ingest allocated on its "
             "producer thread";
    });
  }
  for (auto& t : threads) t.join();
  pipeline.Flush();
  EXPECT_EQ(pipeline.PooledBuffers(), pooled_before)
      << "a producer pool grew past its pre-warmed size";
  EXPECT_EQ(pipeline.total_ingested(), kProducers * 272 * kBatch);
  EXPECT_EQ(pipeline.Snapshot().StreamSize(), kProducers * 272 * kBatch);
}

// --- seeded schedule fuzzer -------------------------------------------------

// Property test: randomized interleavings of RegisterProducer / Ingest /
// Flush / Snapshot / Checkpoint / ShardStreamSizes across random
// topologies (shards, ring sizes, producer counts, both partition
// policies, both hash-partition implementations). Two invariants checked
// on every schedule:
//   1. conservation — after the producers join, total_ingested and the
//      merged snapshot's StreamSize equal the stream length exactly;
//   2. flush fencing — every element whose Ingest call returned before a
//      Flush is folded by the time that Flush returns (observed via the
//      per-shard stream sizes, which flush first).
void FuzzOneSchedule(uint64_t seed) {
  Rng rng(seed);
  const size_t num_producers = 1 + rng.NextBelow(4);
  SketchConfig config;
  config.kind = "count_min";  // linear: conservation is exact
  config.width = 128;
  config.depth = 4;
  config.seed = MixSeed(seed, 0xfu);
  PipelineOptions options;
  options.num_shards = 1 + rng.NextBelow(4);
  options.partition = rng.NextBelow(2) == 0 ? PartitionPolicy::kHash
                                            : PartitionPolicy::kRoundRobin;
  options.ring_capacity = 1 + rng.NextBelow(4);
  options.max_producers = num_producers;
  options.vectorized_hash_partition = rng.NextBelow(2) == 0;
  ShardedPipeline<int64_t> pipeline(config, options);

  const auto stream = UniformIntStream(60000, 1 << 20, MixSeed(seed, 0x5u));
  // Elements whose Ingest has RETURNED (bumped after the call), the
  // fuzzer's published-before-flush clock.
  std::atomic<size_t> published{0};
  std::atomic<size_t> active{0};

  std::vector<std::thread> threads;
  const size_t chunk = stream.size() / num_producers;
  for (size_t p = 0; p < num_producers; ++p) {
    const size_t begin = p * chunk;
    const size_t end = p + 1 == num_producers ? stream.size() : begin + chunk;
    active.fetch_add(1, std::memory_order_relaxed);
    threads.emplace_back([&, begin, end, p] {
      // RegisterProducer itself is part of the fuzzed schedule: it races
      // the control actions below and other registrations.
      Rng thread_rng(MixSeed(seed, 0x100 + p));
      auto& producer = pipeline.RegisterProducer();
      size_t offset = begin;
      while (offset < end) {
        const size_t len =
            std::min<size_t>(1 + thread_rng.NextBelow(301), end - offset);
        const auto batch = std::span<const int64_t>(
            stream.data() + offset, len);
        if (thread_rng.NextBelow(2) == 0) {
          producer.Ingest(batch);
        } else {
          producer.IngestBorrowed(batch);
        }
        offset += len;
        published.fetch_add(len, std::memory_order_acq_rel);
      }
      active.fetch_sub(1, std::memory_order_release);
    });
  }

  // Control-plane driver: random control actions racing the producers.
  const std::string path =
      "/tmp/pipeline_fuzz_" + std::to_string(seed) + ".ck";
  std::string error;
  bool checkpointed = false;
  while (active.load(std::memory_order_acquire) != 0) {
    switch (rng.NextBelow(4)) {
      case 0: {
        const size_t before = published.load(std::memory_order_acquire);
        pipeline.Flush();
        const auto sizes = pipeline.ShardStreamSizes();
        size_t folded = 0;
        for (size_t s : sizes) folded += s;
        ASSERT_GE(folded, before)
            << "Flush missed elements published before it (seed " << seed
            << ")";
        break;
      }
      case 1:
        ASSERT_LE(pipeline.Snapshot().StreamSize(), stream.size());
        break;
      case 2:
        ASSERT_TRUE(pipeline.Checkpoint(path, &error)) << error;
        checkpointed = true;
        break;
      case 3:
        ASSERT_LE(pipeline.ShardQueueDepth(rng.NextBelow(
                      options.num_shards)),
                  num_producers * pipeline.options().ring_capacity * 2);
        break;
    }
  }
  for (auto& t : threads) t.join();

  pipeline.Flush();
  EXPECT_EQ(pipeline.total_ingested(), stream.size());
  EXPECT_EQ(pipeline.Snapshot().StreamSize(), stream.size());
  if (checkpointed) {
    auto restored =
        ShardedPipeline<int64_t>::Restore(path, options, &error);
    ASSERT_NE(restored, nullptr) << error;
    EXPECT_LE(restored->Snapshot().StreamSize(), stream.size());
  }
  std::remove(path.c_str());
}

TEST(PipelineStressTest, FuzzedControlScheduleSeed1) { FuzzOneSchedule(1); }
TEST(PipelineStressTest, FuzzedControlScheduleSeed2) { FuzzOneSchedule(2); }
TEST(PipelineStressTest, FuzzedControlScheduleSeed3) { FuzzOneSchedule(3); }

// Rejection (oversized batch, dropped at the door) and backpressure (ring
// full, producer blocks but nothing is lost) are different events and must
// be counted separately — the silent-drop blind spot the obs/ layer
// closes. A single-slot ring with max-size batches makes stalls certain;
// an over-limit batch makes rejection certain.
TEST(PipelineStressTest, RejectionAndBackpressureAreDistinctlyCounted) {
  SketchConfig config;
  config.kind = "count_min";
  config.width = 256;
  config.depth = 4;
  config.seed = 91;
  PipelineOptions options;
  options.num_shards = 1;
  options.ring_capacity = 1;
  options.max_batch_elements = 1 << 16;
  ShardedPipeline<int64_t> pipeline(config, options);
  const auto stream = UniformIntStream(1 << 16, 1 << 20, 93);

#if RS_METRICS_ENABLED
  const uint64_t rejected_before = obs::PipelineRejectedBatches().Value();
  const uint64_t stalls_before = obs::PipelineBackpressureStalls().Value();
#endif

  // Oversized batches: refused by both ingest paths, nothing queued or
  // sketched, and the return value says so.
  const std::vector<int64_t> oversized(options.max_batch_elements + 1, 7);
  EXPECT_FALSE(pipeline.Ingest(oversized));
  EXPECT_FALSE(pipeline.IngestBorrowed(std::span<const int64_t>(oversized)));
  EXPECT_EQ(pipeline.rejected_batches(), 2u);
  EXPECT_EQ(pipeline.backpressure_waits(), 0u);
  EXPECT_EQ(pipeline.total_ingested(), 0u);

  // Admitted max-size batches through a single-slot ring: the producer
  // outruns the worker and must block at least once — and loses nothing.
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(pipeline.Ingest(stream));
  }
  pipeline.Flush();
  EXPECT_GT(pipeline.backpressure_waits(), 0u);
  EXPECT_EQ(pipeline.rejected_batches(), 2u);
  EXPECT_EQ(pipeline.total_ingested(), 50u * stream.size());
  EXPECT_EQ(pipeline.Snapshot().StreamSize(), 50u * stream.size());

#if RS_METRICS_ENABLED
  // The obs counters saw exactly this pipeline's events (tests in this
  // binary run sequentially, so deltas are attributable).
  EXPECT_EQ(obs::PipelineRejectedBatches().Value() - rejected_before, 2u);
  EXPECT_EQ(obs::PipelineBackpressureStalls().Value() - stalls_before,
            pipeline.backpressure_waits());
  EXPECT_GE(obs::PipelineRingOccupancyHwm().Value(), 1);
#endif
}

}  // namespace
}  // namespace robust_sampling
