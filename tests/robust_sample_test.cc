#include "core/robust_sample.h"

#include <cmath>
#include <cstdint>

#include "adversary/bisection_adversary.h"
#include "core/sample_bounds.h"
#include "gtest/gtest.h"
#include "setsystem/discrepancy.h"
#include "stream/generators.h"

namespace robust_sampling {
namespace {

TEST(RobustSampleTest, CapacityMatchesTheoremOneTwo) {
  RobustSample<int64_t>::Options options;
  options.eps = 0.1;
  options.delta = 0.05;
  options.log_cardinality = 12.0;
  options.seed = 1;
  const auto s = RobustSample<int64_t>::ForSetSystem(options);
  EXPECT_EQ(s.capacity(), ReservoirRobustK(0.1, 0.05, 12.0));
  EXPECT_DOUBLE_EQ(s.eps(), 0.1);
  EXPECT_DOUBLE_EQ(s.delta(), 0.05);
}

TEST(RobustSampleTest, ForQuantilesUsesPrefixCardinality) {
  const auto s =
      RobustSample<int64_t>::ForQuantiles(0.1, 0.05, 1 << 20, 1);
  EXPECT_EQ(s.capacity(), QuantileSketchK(0.1, 0.05, 1 << 20));
}

TEST(RobustSampleTest, ForFrequenciesBakesInEpsOverThree) {
  const auto s =
      RobustSample<int64_t>::ForFrequencies(0.09, 0.05, 1 << 20, 1);
  EXPECT_EQ(s.capacity(), HeavyHitterK(0.09, 0.05, 1 << 20));
}

TEST(RobustSampleTest, DensityEstimatesAreAccurateOnStaticStream) {
  auto s = RobustSample<int64_t>::ForQuantiles(0.05, 0.05, 1000, 3);
  const auto stream = UniformIntStream(100000, 1000, 5);
  size_t truth_hits = 0;
  for (int64_t x : stream) {
    s.Insert(x);
    truth_hits += x <= 250;
  }
  const double truth =
      static_cast<double>(truth_hits) / static_cast<double>(stream.size());
  const double est =
      s.EstimateDensity([](const int64_t& v) { return v <= 250; });
  EXPECT_NEAR(est, truth, 0.05);
  EXPECT_NEAR(s.EstimateCount([](const int64_t& v) { return v <= 250; }),
              truth * 100000.0, 0.05 * 100000.0);
}

TEST(RobustSampleTest, EmptyStreamEstimatesZero) {
  const auto s = RobustSample<int64_t>::ForQuantiles(0.1, 0.1, 100, 7);
  EXPECT_DOUBLE_EQ(
      s.EstimateDensity([](const int64_t&) { return true; }), 0.0);
  EXPECT_EQ(s.stream_size(), 0u);
}

TEST(RobustSampleTest, SurvivesBisectionAttack) {
  // The facade's whole reason to exist: adversarial robustness out of the
  // box. Attack over the int64 universe it was configured for.
  const double eps = 0.2;
  auto s = RobustSample<int64_t>::ForQuantiles(eps, 0.1,
                                               uint64_t{1} << 40, 9);
  BisectionAdversaryInt64 adv(int64_t{1} << 40, 0.9);
  std::vector<int64_t> stream;
  for (size_t i = 1; i <= 5000; ++i) {
    const int64_t x = adv.NextElement(s.sample(), i);
    s.Insert(x);
    stream.push_back(x);
    adv.Observe(s.sample(), s.reservoir().last_kept(), i);
  }
  EXPECT_LE(PrefixDiscrepancy(stream, s.sample()), eps);
}

TEST(RobustSampleTest, SampleVisibleToAdversaryMatchesReservoir) {
  auto s = RobustSample<int64_t>::ForQuantiles(0.2, 0.1, 1000, 11);
  for (int64_t i = 0; i < 100; ++i) s.Insert(i);
  EXPECT_EQ(s.sample(), s.reservoir().sample());
}

}  // namespace
}  // namespace robust_sampling
