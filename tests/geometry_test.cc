#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numbers>
#include <vector>

#include "core/random.h"
#include "geometry/center_point.h"
#include "geometry/clustering.h"
#include "geometry/range_counting.h"
#include "gtest/gtest.h"
#include "stream/generators.h"

namespace robust_sampling {
namespace {

// -------------------------------------------------------- Range counting --

TEST(RangeCountingTest, ExactBoxCount) {
  const std::vector<Point> pts{{1, 1}, {2, 2}, {3, 3}, {4, 4}};
  RectangleFamily::Box box;
  box.lo = {2, 2};
  box.hi = {3, 3};
  EXPECT_EQ(ExactBoxCount(pts, box), 2u);
}

TEST(RangeCountingTest, ExactWhenSampleHoldsEverything) {
  SampleRangeCounter counter(10000, 3);
  std::vector<Point> pts;
  for (int64_t i = 1; i <= 100; ++i) {
    const Point p{static_cast<double>(i % 10 + 1),
                  static_cast<double>(i % 7 + 1)};
    pts.push_back(p);
    counter.Insert(p);
  }
  RectangleFamily::Box box;
  box.lo = {1, 1};
  box.hi = {5, 4};
  EXPECT_DOUBLE_EQ(counter.EstimateCount(box),
                   static_cast<double>(ExactBoxCount(pts, box)));
}

TEST(RangeCountingTest, ApproximatesCountsOnUniformPoints) {
  const double eps = 0.05;
  SampleRangeCounter counter =
      SampleRangeCounter::ForAccuracy(eps, 0.05, 64, 2, 7);
  const auto pts = UniformPointStream(100000, 2, 1.0, 65.0, 11);
  for (const Point& p : pts) counter.Insert(p);
  RectangleFamily family(64, 2);
  Rng rng(13);
  for (int trial = 0; trial < 20; ++trial) {
    const auto box = family.RangeBox(rng.NextBelow(family.NumRanges()));
    const double exact = static_cast<double>(ExactBoxCount(pts, box));
    const double est = counter.EstimateCount(box);
    EXPECT_NEAR(est, exact, eps * static_cast<double>(pts.size()))
        << "trial " << trial;
  }
}

TEST(RangeCountingTest, DensityInUnitInterval) {
  SampleRangeCounter counter(100, 17);
  for (const Point& p : UniformPointStream(5000, 2, 0.0, 10.0, 19)) {
    counter.Insert(p);
  }
  RectangleFamily::Box box;
  box.lo = {1, 1};
  box.hi = {5, 5};
  const double d = counter.EstimateDensity(box);
  EXPECT_GE(d, 0.0);
  EXPECT_LE(d, 1.0);
}

// ---------------------------------------------------------- Center point --

TEST(CenterPointTest, CentroidOfSymmetricCloudIsDeep) {
  // Points on a circle: the center has depth ~1/2 under any direction.
  std::vector<Point> pts;
  for (int i = 0; i < 360; ++i) {
    const double t = i * std::numbers::pi / 180.0;
    pts.push_back(Point{std::cos(t), std::sin(t)});
  }
  EXPECT_GT(TukeyDepth2D(pts, Point{0.0, 0.0}, 32), 0.45);
}

TEST(CenterPointTest, ExtremePointIsShallow) {
  std::vector<Point> pts;
  for (int i = 0; i < 100; ++i) {
    pts.push_back(Point{static_cast<double>(i % 10),
                        static_cast<double>(i / 10)});
  }
  // A point far outside the cloud has depth ~0 (some halfspace containing
  // it contains almost nothing).
  EXPECT_LT(TukeyDepth2D(pts, Point{100.0, 100.0}, 32), 0.05);
}

TEST(CenterPointTest, IsBetaCenterThreshold) {
  std::vector<Point> pts;
  for (int i = 0; i < 360; ++i) {
    const double t = i * std::numbers::pi / 180.0;
    pts.push_back(Point{std::cos(t), std::sin(t)});
  }
  EXPECT_TRUE(IsBetaCenter2D(pts, Point{0.0, 0.0}, 0.4, 32));
  EXPECT_FALSE(IsBetaCenter2D(pts, Point{2.0, 0.0}, 0.4, 32));
}

TEST(CenterPointTest, ApproximateCenterIsAOneThirdCenter) {
  // The planar centerpoint theorem guarantees a 1/3-center exists; our
  // candidate search must find a point of depth >= ~1/3 on benign data.
  const auto pts = UniformPointStream(500, 2, 0.0, 1.0, 23);
  const Point c = ApproximateCenter2D(pts, 16);
  EXPECT_GE(TukeyDepth2D(pts, c, 16), 1.0 / 3.0 - 0.02);
}

TEST(CenterPointTest, CenterOfSampleIsCenterOfPopulation) {
  // The paper's application: a (beta + eps)-center of a representative
  // sample is a beta-center of the full set.
  const auto all = UniformPointStream(20000, 2, 0.0, 1.0, 29);
  const std::vector<Point> sample(all.begin(), all.begin() + 1000);
  const Point c = ApproximateCenter2D(sample, 16);
  const double depth_sample = TukeyDepth2D(sample, c, 16);
  const double depth_all = TukeyDepth2D(all, c, 16);
  EXPECT_GE(depth_all, depth_sample - 0.05);
}

TEST(CenterPointDeathTest, EmptyInputsAbort) {
  EXPECT_DEATH(TukeyDepth2D({}, Point{0, 0}, 8), "empty");
  EXPECT_DEATH(ApproximateCenter2D({}, 8), "empty");
}

// ------------------------------------------------------------ Clustering --

TEST(ClusteringTest, SquaredDistanceBasics) {
  EXPECT_DOUBLE_EQ(SquaredDistance({0, 0}, {3, 4}), 25.0);
  EXPECT_DOUBLE_EQ(SquaredDistance({1, 1}, {1, 1}), 0.0);
}

TEST(ClusteringTest, CostZeroWhenCentersCoverPoints) {
  const std::vector<Point> pts{{0, 0}, {5, 5}};
  EXPECT_DOUBLE_EQ(KMeansCost(pts, pts), 0.0);
}

TEST(ClusteringTest, KMeansRecoversWellSeparatedClusters) {
  const std::vector<Point> centers{{0.0, 0.0}, {100.0, 0.0}, {0.0, 100.0}};
  const auto pts = GaussianMixturePointStream(3000, centers, 1.0, 31);
  const auto result = KMeans(pts, 3, 33);
  ASSERT_EQ(result.centers.size(), 3u);
  // Every true center is close to some found center.
  for (const Point& c : centers) {
    double best = 1e300;
    for (const Point& f : result.centers) {
      best = std::min(best, std::sqrt(SquaredDistance(c, f)));
    }
    EXPECT_LT(best, 2.0);
  }
  // Cost ~ dims * sd^2 = 2.
  EXPECT_LT(result.cost, 4.0);
}

TEST(ClusteringTest, MoreCentersNeverIncreaseCostMuch) {
  const auto pts = UniformPointStream(2000, 2, 0.0, 10.0, 37);
  const double c2 = KMeans(pts, 2, 39).cost;
  const double c8 = KMeans(pts, 8, 39).cost;
  EXPECT_LT(c8, c2 + 1e-9);
}

TEST(ClusteringTest, SampleClusteringApproximatesFullClustering) {
  // The paper's clustering-on-a-sample framework: centers fit on a sample
  // have near-optimal cost on the full data.
  const std::vector<Point> centers{{0.0, 0.0}, {50.0, 0.0}, {25.0, 40.0}};
  const auto all = GaussianMixturePointStream(20000, centers, 2.0, 41);
  const std::vector<Point> sample(all.begin(), all.begin() + 1000);
  const auto full_fit = KMeans(all, 3, 43);
  const auto sample_fit = KMeans(sample, 3, 43);
  const double cost_extrapolated = KMeansCost(all, sample_fit.centers);
  EXPECT_LT(cost_extrapolated, 1.5 * full_fit.cost + 1.0);
}

TEST(ClusteringTest, DeterministicGivenSeed) {
  const auto pts = UniformPointStream(500, 2, 0.0, 1.0, 47);
  const auto a = KMeans(pts, 4, 49);
  const auto b = KMeans(pts, 4, 49);
  EXPECT_EQ(a.centers, b.centers);
  EXPECT_DOUBLE_EQ(a.cost, b.cost);
}

TEST(ClusteringDeathTest, InvalidArgumentsAbort) {
  const std::vector<Point> pts{{0, 0}};
  EXPECT_DEATH(KMeans(pts, 2, 1), "fewer points than clusters");
}

}  // namespace
}  // namespace robust_sampling
