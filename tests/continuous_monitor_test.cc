#include "core/continuous_monitor.h"

#include <cstdint>
#include <vector>

#include "core/random.h"
#include "core/reservoir_sampler.h"
#include "core/sample_bounds.h"
#include "gtest/gtest.h"
#include "setsystem/discrepancy.h"

namespace robust_sampling {
namespace {

ContinuousMonitor<int64_t>::DiscrepancyEvaluator PrefixEval() {
  return [](const std::vector<int64_t>& x, const std::vector<int64_t>& s) {
    return PrefixDiscrepancy(x, s);
  };
}

TEST(ContinuousMonitorTest, ChecksOnlyAtScheduledRounds) {
  const size_t n = 1000, k = 50;
  ContinuousMonitor<int64_t> monitor(0.25, k, n, PrefixEval());
  ReservoirSampler<int64_t> sampler(k, 1);
  size_t checks = 0;
  for (size_t i = 1; i <= n; ++i) {
    sampler.Insert(static_cast<int64_t>(i % 97));
    checks += monitor.Observe(static_cast<int64_t>(i % 97),
                              sampler.sample());
  }
  EXPECT_EQ(checks, monitor.checks_performed());
  EXPECT_EQ(monitor.checks_performed(), monitor.planned_checks());
  EXPECT_EQ(monitor.rounds(), n);
  // Geometric schedule: far fewer checks than rounds.
  EXPECT_LT(monitor.planned_checks(), n / 10);
}

TEST(ContinuousMonitorTest, CertifiesWellSizedReservoir) {
  const double eps = 0.25;
  const size_t n = 2000;
  const size_t k = ReservoirContinuousK(eps, 0.1, std::log(4096.0), n, 4.0);
  ContinuousMonitor<int64_t> monitor(eps, k, n, PrefixEval());
  ReservoirSampler<int64_t> sampler(k, 2);
  Rng rng(3);
  for (size_t i = 1; i <= n; ++i) {
    const int64_t x = static_cast<int64_t>(rng.NextBelow(4096)) + 1;
    sampler.Insert(x);
    monitor.Observe(x, sampler.sample());
  }
  EXPECT_TRUE(monitor.certified());
  EXPECT_LE(monitor.max_checkpoint_discrepancy(), eps / 2.0);
  EXPECT_EQ(monitor.first_violation_round(), 0u);
}

TEST(ContinuousMonitorTest, FlagsUndersizedReservoir) {
  const double eps = 0.1;
  const size_t n = 2000, k = 4;
  ContinuousMonitor<int64_t> monitor(eps, k, n, PrefixEval());
  ReservoirSampler<int64_t> sampler(k, 4);
  Rng rng(5);
  for (size_t i = 1; i <= n; ++i) {
    const int64_t x = static_cast<int64_t>(rng.NextBelow(1 << 16)) + 1;
    sampler.Insert(x);
    monitor.Observe(x, sampler.sample());
  }
  EXPECT_FALSE(monitor.certified());
  EXPECT_GT(monitor.first_violation_round(), 0u);
  EXPECT_GT(monitor.max_checkpoint_discrepancy(), eps / 2.0);
  EXPECT_GE(monitor.worst_round(), monitor.first_violation_round() > 0
                ? k
                : size_t{0});
}

TEST(ContinuousMonitorTest, WorstRoundTracksMaximum) {
  const size_t n = 500, k = 10;
  ContinuousMonitor<int64_t> monitor(0.5, k, n, PrefixEval());
  ReservoirSampler<int64_t> sampler(k, 6);
  for (size_t i = 1; i <= n; ++i) {
    const int64_t x = static_cast<int64_t>(i);
    sampler.Insert(x);
    monitor.Observe(x, sampler.sample());
  }
  if (monitor.max_checkpoint_discrepancy() > 0.0) {
    EXPECT_GT(monitor.worst_round(), 0u);
    EXPECT_LE(monitor.worst_round(), n);
  }
}

TEST(ContinuousMonitorDeathTest, InvalidEpsAborts) {
  EXPECT_DEATH(ContinuousMonitor<int64_t>(0.0, 10, 100, PrefixEval()),
               "eps");
  EXPECT_DEATH(ContinuousMonitor<int64_t>(1.0, 10, 100, PrefixEval()),
               "eps");
}

}  // namespace
}  // namespace robust_sampling
