#include "core/adversarial_game.h"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "adversary/basic_adversaries.h"
#include "core/bernoulli_sampler.h"
#include "core/reservoir_sampler.h"
#include "gtest/gtest.h"
#include "setsystem/discrepancy.h"

namespace robust_sampling {
namespace {

DiscrepancyFn<int64_t> PrefixFn() {
  return [](const std::vector<int64_t>& x, const std::vector<int64_t>& s) {
    return PrefixDiscrepancy(x, s);
  };
}

TEST(AdaptiveGameTest, StreamHasExactlyNElements) {
  StaticAdversary<int64_t> adv(std::vector<int64_t>(100, 7));
  ReservoirSampler<int64_t> sampler(10, 1);
  const auto result = RunAdaptiveGame(sampler, adv, 100, PrefixFn(), 0.1);
  EXPECT_EQ(result.stream.size(), 100u);
  EXPECT_EQ(result.sample.size(), 10u);
}

TEST(AdaptiveGameTest, ConstantStreamIsPerfectlyRepresented) {
  StaticAdversary<int64_t> adv(std::vector<int64_t>(200, 42));
  ReservoirSampler<int64_t> sampler(5, 2);
  const auto result = RunAdaptiveGame(sampler, adv, 200, PrefixFn(), 0.1);
  EXPECT_DOUBLE_EQ(result.discrepancy, 0.0);
  EXPECT_TRUE(result.is_approximation);
}

TEST(AdaptiveGameTest, StaticAdversaryReplaysItsStream) {
  std::vector<int64_t> fixed{3, 1, 4, 1, 5, 9, 2, 6};
  StaticAdversary<int64_t> adv(fixed);
  BernoulliSampler<int64_t> sampler(0.5, 3);
  const auto result = RunAdaptiveGame(sampler, adv, 8, PrefixFn(), 0.5);
  EXPECT_EQ(result.stream, fixed);
}

TEST(AdaptiveGameTest, UniformAdversaryStaysInUniverse) {
  UniformAdversary adv(50, 11);
  ReservoirSampler<int64_t> sampler(20, 4);
  const auto result = RunAdaptiveGame(sampler, adv, 500, PrefixFn(), 0.5);
  for (int64_t v : result.stream) {
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 50);
  }
}

TEST(AdaptiveGameTest, BernoulliSamplerSampleIsSubsequence) {
  UniformAdversary adv(100, 13);
  BernoulliSampler<int64_t> sampler(0.2, 5);
  const auto result = RunAdaptiveGame(sampler, adv, 1000, PrefixFn(), 0.5);
  // Every sampled element appears in the stream (multiset inclusion via
  // sorted merge).
  auto stream = result.stream;
  auto sample = result.sample;
  std::sort(stream.begin(), stream.end());
  std::sort(sample.begin(), sample.end());
  EXPECT_TRUE(std::includes(stream.begin(), stream.end(), sample.begin(),
                            sample.end()));
}

TEST(AdaptiveGameTest, IsApproximationThresholdRespected) {
  // Sample = stream -> discrepancy 0 -> approximation at any eps.
  StaticAdversary<int64_t> adv(std::vector<int64_t>{1, 2, 3});
  ReservoirSampler<int64_t> sampler(3, 1);
  const auto result = RunAdaptiveGame(sampler, adv, 3, PrefixFn(), 0.01);
  EXPECT_TRUE(result.is_approximation);
}

TEST(AdaptiveGameTest, GreedyGapAdversaryBuildsValidStream) {
  GreedyGapAdversary<int64_t> adv(
      [](const int64_t& v) { return v <= 10; }, 5, 20);
  ReservoirSampler<int64_t> sampler(8, 6);
  const auto result = RunAdaptiveGame(sampler, adv, 300, PrefixFn(), 0.5);
  for (int64_t v : result.stream) {
    EXPECT_TRUE(v == 5 || v == 20);
  }
}

TEST(ContinuousGameTest, AllScheduleChecksEveryRound) {
  StaticAdversary<int64_t> adv(std::vector<int64_t>(50, 9));
  ReservoirSampler<int64_t> sampler(5, 7);
  const auto result = RunContinuousAdaptiveGame(
      sampler, adv, 50, PrefixFn(), 0.1, CheckpointSchedule::All(50));
  // Constant stream: zero discrepancy at every prefix.
  EXPECT_DOUBLE_EQ(result.max_discrepancy, 0.0);
  EXPECT_TRUE(result.continuously_approximating);
  EXPECT_EQ(result.first_violation_round, 0u);
}

TEST(ContinuousGameTest, ViolationRecordedNotFatal) {
  // Reservoir of size 1 on an increasing stream: after enough rounds some
  // prefix will be badly represented at eps = 0.05.
  StaticAdversary<int64_t> adv([] {
    std::vector<int64_t> v;
    for (int64_t i = 1; i <= 200; ++i) v.push_back(i);
    return v;
  }());
  ReservoirSampler<int64_t> sampler(1, 8);
  const auto result = RunContinuousAdaptiveGame(
      sampler, adv, 200, PrefixFn(), 0.05, CheckpointSchedule::All(200));
  EXPECT_FALSE(result.continuously_approximating);
  EXPECT_GT(result.first_violation_round, 0u);
  EXPECT_GE(result.max_discrepancy, 0.05);
  EXPECT_EQ(result.stream.size(), 200u);  // game ran to completion
}

TEST(ContinuousGameTest, WorstRoundIsACheckedRound) {
  StaticAdversary<int64_t> adv([] {
    std::vector<int64_t> v;
    for (int64_t i = 1; i <= 300; ++i) v.push_back(i % 37 + 1);
    return v;
  }());
  ReservoirSampler<int64_t> sampler(10, 9);
  const auto schedule = CheckpointSchedule::Geometric(10, 300, 0.25);
  const auto result = RunContinuousAdaptiveGame(sampler, adv, 300, PrefixFn(),
                                                0.9, schedule);
  EXPECT_TRUE(schedule.Contains(result.worst_round));
}

TEST(ContinuousGameTest, GeometricScheduleMaxBoundedByAllScheduleMax) {
  // Checking fewer rounds can only lower the observed max.
  auto make_stream = [] {
    std::vector<int64_t> v;
    for (int64_t i = 1; i <= 400; ++i) v.push_back((i * 17) % 100 + 1);
    return v;
  };
  StaticAdversary<int64_t> adv_all(make_stream());
  ReservoirSampler<int64_t> s_all(12, 10);
  const auto all = RunContinuousAdaptiveGame(
      s_all, adv_all, 400, PrefixFn(), 0.9, CheckpointSchedule::All(400));
  StaticAdversary<int64_t> adv_geo(make_stream());
  ReservoirSampler<int64_t> s_geo(12, 10);  // same seed -> same trajectory
  const auto geo = RunContinuousAdaptiveGame(
      s_geo, adv_geo, 400, PrefixFn(), 0.9,
      CheckpointSchedule::Geometric(12, 400, 0.25));
  EXPECT_LE(geo.max_discrepancy, all.max_discrepancy + 1e-12);
}

TEST(ContinuousGameDeathTest, ScheduleBeyondNAborts) {
  StaticAdversary<int64_t> adv(std::vector<int64_t>(10, 1));
  ReservoirSampler<int64_t> sampler(2, 1);
  EXPECT_DEATH(RunContinuousAdaptiveGame(sampler, adv, 5, PrefixFn(), 0.1,
                                         CheckpointSchedule::All(10)),
               "past the stream length");
}

}  // namespace
}  // namespace robust_sampling
