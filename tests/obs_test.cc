// Tests for src/obs/: striped counters/gauges/histograms, the registry's
// deterministic exports, the flight recorder, and the RS_METRICS=OFF
// no-op surface. The concurrency tests double as the TSan target for the
// striped-update design (ci runs this binary under -DRS_TSAN=ON).

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "obs/catalog.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace robust_sampling {
namespace obs {
namespace {

// --- catalog: static data, identical in both build modes ------------------

TEST(ObsCatalogTest, DescriptorsAreUniqueAndWellFormed) {
  const auto& catalog = AllMetricDescriptors();
  ASSERT_GE(catalog.size(), 20u);
  std::set<std::string> names;
  for (const MetricDescriptor& d : catalog) {
    EXPECT_TRUE(names.insert(d.name).second) << "duplicate name " << d.name;
    EXPECT_TRUE(std::string(d.name).starts_with("rs_")) << d.name;
    const std::string type = d.type;
    EXPECT_TRUE(type == "counter" || type == "gauge" || type == "histogram")
        << d.name << " has type " << type;
    EXPECT_FALSE(std::string(d.help).empty()) << d.name;
  }
}

TEST(ObsCatalogTest, AccessorsReturnStableInstances) {
  Counter& a = PipelineIngestBatches();
  Counter& b = PipelineIngestBatches();
  EXPECT_EQ(&a, &b);
  Histogram& h1 = WireSerializeNs("robust_sample");
  Histogram& h2 = WireSerializeNs("robust_sample");
  EXPECT_EQ(&h1, &h2);
}

#if RS_METRICS_ENABLED

// --- primitives under concurrency -----------------------------------------

TEST(ObsMetricsTest, CounterIsExactAfterConcurrentIncrements) {
  Counter counter;
  constexpr size_t kThreads = 8;
  constexpr uint64_t kPerThread = 100'000;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (uint64_t i = 0; i < kPerThread; ++i) counter.Increment();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.Value(), kThreads * kPerThread);
}

TEST(ObsMetricsTest, HistogramIsExactAfterConcurrentObserves) {
  Histogram histogram;
  constexpr size_t kThreads = 4;
  constexpr uint64_t kPerThread = 50'000;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        histogram.Observe(t * 1000 + (i % 7));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const Histogram::Aggregate agg = histogram.Read();
  EXPECT_EQ(agg.count, kThreads * kPerThread);
  uint64_t bucket_total = 0;
  for (size_t b = 0; b < kHistogramBuckets; ++b) bucket_total += agg.buckets[b];
  EXPECT_EQ(bucket_total, agg.count);
  EXPECT_GT(agg.sum, 0u);
}

TEST(ObsMetricsTest, GaugeSetMaxIsMonotoneUnderConcurrency) {
  Gauge gauge;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&gauge, t] {
      for (int64_t v = 0; v < 10'000; ++v) gauge.SetMax(t * 10'000 + v);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(gauge.Value(), 3 * 10'000 + 9'999);
}

TEST(ObsMetricsTest, HistogramBucketsAreLog2Spaced) {
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 1u);
  EXPECT_EQ(Histogram::BucketIndex(2), 2u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 3u);
  EXPECT_EQ(Histogram::BucketIndex(1023), 10u);
  EXPECT_EQ(Histogram::BucketIndex(1024), 11u);
  // Values past the last finite bucket land in the +Inf overflow bucket.
  EXPECT_EQ(Histogram::BucketIndex(~uint64_t{0}), kHistogramBuckets - 1);
  EXPECT_EQ(Histogram::BucketUpperBound(1), 1u);
  EXPECT_EQ(Histogram::BucketUpperBound(10), 1023u);
}

TEST(ObsMetricsTest, HistogramQuantilesReturnBucketUpperBounds) {
  Histogram histogram;
  for (int i = 0; i < 90; ++i) histogram.Observe(100);   // bucket 7 (<=127)
  for (int i = 0; i < 10; ++i) histogram.Observe(5000);  // bucket 13 (<=8191)
  const Histogram::Aggregate agg = histogram.Read();
  EXPECT_EQ(agg.ApproxQuantile(0.5), 127u);
  EXPECT_EQ(agg.ApproxQuantile(0.99), 8191u);
  EXPECT_EQ(agg.ApproxMax(), 8191u);
}

TEST(ObsMetricsTest, RuntimeDisableStopsUpdates) {
  Counter counter;
  counter.Increment();
  SetRuntimeEnabled(false);
  counter.Increment(100);
  SetRuntimeEnabled(true);
  counter.Increment();
  EXPECT_EQ(counter.Value(), 2u);
}

// --- registry ---------------------------------------------------------------

TEST(ObsRegistryTest, SameNameSameInstanceLabeledDistinct) {
  MetricRegistry& registry = MetricRegistry::Global();
  Counter* a = registry.GetCounter("rs_test_repeat_total", "help");
  Counter* b = registry.GetCounter("rs_test_repeat_total");
  EXPECT_EQ(a, b);
  Counter* labeled_x =
      registry.GetCounter("rs_test_labeled_total", "", {"kind", "x"});
  Counter* labeled_y =
      registry.GetCounter("rs_test_labeled_total", "", {"kind", "y"});
  EXPECT_NE(labeled_x, labeled_y);
  EXPECT_EQ(labeled_x,
            registry.GetCounter("rs_test_labeled_total", "", {"kind", "x"}));
}

TEST(ObsRegistryTest, SnapshotsAreDeterministicAndSorted) {
  MetricRegistry& registry = MetricRegistry::Global();
  registry.GetCounter("rs_test_det_b_total")->Increment(2);
  registry.GetCounter("rs_test_det_a_total")->Increment(1);
  registry.GetHistogram("rs_test_det_h_ns")->Observe(42);
  const std::string first = registry.ToJson();
  const std::string second = registry.ToJson();
  EXPECT_EQ(first, second);
  const std::vector<std::string> names = registry.Names();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  EXPECT_LT(first.find("rs_test_det_a_total"),
            first.find("rs_test_det_b_total"));
}

TEST(ObsRegistryTest, PrometheusTextExposesSeries) {
  MetricRegistry& registry = MetricRegistry::Global();
  registry.GetCounter("rs_test_prom_total", "a counter")->Increment(7);
  registry.GetHistogram("rs_test_prom_ns", "a histogram")->Observe(100);
  const std::string text = registry.ToPrometheusText();
  EXPECT_NE(text.find("# HELP rs_test_prom_total a counter"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE rs_test_prom_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("rs_test_prom_total 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE rs_test_prom_ns histogram"), std::string::npos);
  EXPECT_NE(text.find("rs_test_prom_ns_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("rs_test_prom_ns_sum 100"), std::string::npos);
  EXPECT_NE(text.find("rs_test_prom_ns_count 1"), std::string::npos);
}

TEST(ObsRegistryTest, ToJsonRowsCarryNumericCells) {
  MetricRegistry& registry = MetricRegistry::Global();
  registry.GetCounter("rs_test_json_total")->Increment(5);
  const std::string json = registry.ToJson();
  // The value cell must be an unquoted number for bench_diff to compare.
  EXPECT_NE(json.find("\"metric\": \"rs_test_json_total\", \"type\": "
                      "\"counter\", \"value\": 5"),
            std::string::npos)
      << json;
}

// --- flight recorder --------------------------------------------------------

TEST(ObsFlightRecorderTest, DumpMergesThreadsInSequenceOrder) {
  FlightRecorder& recorder = FlightRecorder::Global();
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&recorder, t] {
      for (int i = 0; i < 8; ++i) {
        recorder.Record(TraceEventKind::kMark, "obs_test",
                        "thread " + std::to_string(t));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const std::string dump = recorder.Dump();
  for (int t = 0; t < 4; ++t) {
    EXPECT_NE(dump.find("thread " + std::to_string(t)), std::string::npos);
  }
}

TEST(ObsFlightRecorderTest, RingOverwritesOldestEvents) {
  FlightRecorder& recorder = FlightRecorder::Global();
  recorder.Record(TraceEventKind::kMark, "obs_test", "overwritten-marker");
  for (size_t i = 0; i < kFlightRecorderRingEvents + 8; ++i) {
    recorder.Record(TraceEventKind::kMark, "obs_test", "filler");
  }
  // This thread's ring holds only the newest kFlightRecorderRingEvents
  // events, so the early marker is gone.
  EXPECT_EQ(recorder.Dump().find("overwritten-marker"), std::string::npos);
}

TEST(ObsFlightRecorderTest, ErrorHookReceivesDumpNamingTheFailure) {
  FlightRecorder& recorder = FlightRecorder::Global();
  std::string captured;
  recorder.SetErrorHook([&captured](const std::string& dump) {
    captured = dump;
  });
  recorder.Record(TraceEventKind::kMark, "obs_test", "context before");
  recorder.RecordError("obs_test", "the failing operation", 17);
  recorder.SetErrorHook(nullptr);
  EXPECT_NE(captured.find("context before"), std::string::npos);
  EXPECT_NE(captured.find("the failing operation"), std::string::npos);
  EXPECT_NE(captured.find("ERROR"), std::string::npos);
  EXPECT_NE(captured.find("(arg=17)"), std::string::npos);
}

TEST(ObsFlightRecorderTest, TraceSpanRecordsBeginAndEnd) {
  FlightRecorder& recorder = FlightRecorder::Global();
  { TraceSpan span("obs_test", "span-under-test"); }
  const std::string dump = recorder.Dump();
  const size_t begin = dump.find("begin");
  EXPECT_NE(begin, std::string::npos);
  EXPECT_NE(dump.find("span-under-test"), std::string::npos);
  EXPECT_NE(dump.find("end"), std::string::npos);
}

// --- Prometheus exposition conformance ---------------------------------------
//
// /metrics is consumed by real scrapers, so the text format is a contract:
// every line is a comment or a well-formed series, histogram buckets are
// cumulative and monotone, le="+Inf" equals _count, and label values
// escape backslash/quote/newline. This test parses the whole export.

namespace prom {

// Parses `name{key="value",...} 123` series lines. Returns false on any
// structural violation.
struct Series {
  std::string name;
  std::vector<std::pair<std::string, std::string>> labels;  // still escaped
  uint64_t value = 0;
};

bool IsNameStart(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
         c == ':';
}
bool IsNameChar(char c) { return IsNameStart(c) || (c >= '0' && c <= '9'); }

bool ParseSeriesLine(const std::string& line, Series* out) {
  size_t i = 0;
  if (i >= line.size() || !IsNameStart(line[i])) return false;
  while (i < line.size() && IsNameChar(line[i])) ++i;
  out->name = line.substr(0, i);
  if (i < line.size() && line[i] == '{') {
    ++i;
    while (i < line.size() && line[i] != '}') {
      const size_t key_start = i;
      while (i < line.size() && IsNameChar(line[i])) ++i;
      if (i == key_start || i + 1 >= line.size() || line[i] != '=' ||
          line[i + 1] != '"') {
        return false;
      }
      const std::string key = line.substr(key_start, i - key_start);
      i += 2;
      std::string value;
      while (i < line.size() && line[i] != '"') {
        if (line[i] == '\\') {
          // Escapes are exactly \\, \", \n per the exposition format.
          if (i + 1 >= line.size()) return false;
          const char esc = line[i + 1];
          if (esc != '\\' && esc != '"' && esc != 'n') return false;
          value += line[i];
          value += esc;
          i += 2;
        } else if (line[i] == '\n') {
          return false;  // raw newline inside a label value
        } else {
          value += line[i++];
        }
      }
      if (i >= line.size()) return false;  // unterminated value
      ++i;                                 // closing quote
      out->labels.emplace_back(key, value);
      if (i < line.size() && line[i] == ',') ++i;
    }
    if (i >= line.size() || line[i] != '}') return false;
    ++i;
  }
  if (i >= line.size() || line[i] != ' ') return false;
  ++i;
  const size_t value_start = i;
  while (i < line.size() && line[i] >= '0' && line[i] <= '9') ++i;
  if (i == value_start || i != line.size()) return false;
  out->value = std::stoull(line.substr(value_start));
  return true;
}

std::string BaseName(const std::string& series_name) {
  for (const char* suffix : {"_bucket", "_sum", "_count"}) {
    const std::string s(suffix);
    if (series_name.size() > s.size() &&
        series_name.compare(series_name.size() - s.size(), s.size(), s) ==
            0) {
      return series_name.substr(0, series_name.size() - s.size());
    }
  }
  return series_name;
}

}  // namespace prom

TEST(ObsPrometheusConformanceTest, ExpositionParsesAndHistogramsAreSound) {
  MetricRegistry& registry = MetricRegistry::Global();
  registry.GetCounter("rs_test_conf_total", "conformance counter")
      ->Increment(3);
  Histogram* histogram =
      registry.GetHistogram("rs_test_conf_ns", "conformance histogram");
  histogram->Observe(1);
  histogram->Observe(100);
  histogram->Observe(1'000'000);

  const std::string text = registry.ToPrometheusText();
  ASSERT_FALSE(text.empty());
  ASSERT_EQ(text.back(), '\n') << "export must end with a newline";

  std::map<std::string, std::string> type_of;       // base name -> TYPE
  std::map<std::string, std::vector<prom::Series>> buckets_of;
  std::map<std::string, uint64_t> count_of;
  std::map<std::string, uint64_t> sum_of;

  size_t start = 0;
  while (start < text.size()) {
    const size_t end = text.find('\n', start);
    ASSERT_NE(end, std::string::npos) << "line without newline";
    const std::string line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty()) continue;
    if (line.rfind("# HELP ", 0) == 0) continue;
    if (line.rfind("# TYPE ", 0) == 0) {
      const std::string rest = line.substr(7);
      const size_t space = rest.find(' ');
      ASSERT_NE(space, std::string::npos) << line;
      const std::string type = rest.substr(space + 1);
      EXPECT_TRUE(type == "counter" || type == "gauge" ||
                  type == "histogram")
          << line;
      type_of[rest.substr(0, space)] = type;
      continue;
    }
    ASSERT_NE(line[0], '#') << "unknown comment form: " << line;
    prom::Series series;
    ASSERT_TRUE(prom::ParseSeriesLine(line, &series)) << line;
    const std::string base = prom::BaseName(series.name);
    // Every series must be announced by a TYPE line for its base name
    // (series are grouped after their TYPE header, map is fine).
    ASSERT_TRUE(type_of.count(base) == 1 || type_of.count(series.name) == 1)
        << "series without TYPE: " << line;
    const std::string type =
        type_of.count(series.name) == 1 ? type_of[series.name]
                                        : type_of[base];
    if (type == "histogram") {
      if (series.name == base + "_bucket") {
        buckets_of[base].push_back(series);
      } else if (series.name == base + "_count") {
        count_of[base] = series.value;
      } else if (series.name == base + "_sum") {
        sum_of[base] = series.value;
      } else {
        FAIL() << "histogram series with bad suffix: " << line;
      }
    }
  }

  // Histogram soundness: buckets cumulative + monotone, last le is +Inf
  // and equals _count.
  ASSERT_TRUE(buckets_of.count("rs_test_conf_ns") == 1);
  for (const auto& [base, buckets] : buckets_of) {
    ASSERT_FALSE(buckets.empty()) << base;
    ASSERT_TRUE(count_of.count(base) == 1) << base << " missing _count";
    ASSERT_TRUE(sum_of.count(base) == 1) << base << " missing _sum";
    uint64_t prev = 0;
    std::string last_le;
    for (const prom::Series& bucket : buckets) {
      std::string le;
      for (const auto& [key, value] : bucket.labels) {
        if (key == "le") le = value;
      }
      ASSERT_FALSE(le.empty()) << base << " bucket without le label";
      EXPECT_GE(bucket.value, prev)
          << base << " buckets are not cumulative-monotone at le=" << le;
      prev = bucket.value;
      last_le = le;
    }
    EXPECT_EQ(last_le, "+Inf") << base;
    EXPECT_EQ(prev, count_of[base])
        << base << ": le=\"+Inf\" bucket must equal _count";
  }
  EXPECT_EQ(count_of["rs_test_conf_ns"], 3u);
}

TEST(ObsPrometheusConformanceTest, LabelAndHelpValuesAreEscaped) {
  MetricRegistry& registry = MetricRegistry::Global();
  registry
      .GetCounter("rs_test_conf_esc_total", "help with \\ and\nnewline",
                  {"kind", "a\"b\\c\nd"})
      ->Increment();
  const std::string text = registry.ToPrometheusText();
  // Label value: " -> \" , \ -> \\ , newline -> literal \n.
  EXPECT_NE(text.find("rs_test_conf_esc_total{kind=\"a\\\"b\\\\c\\nd\"} 1"),
            std::string::npos)
      << text;
  // HELP text: \ -> \\ and newline -> \n (quotes stay raw there).
  EXPECT_NE(
      text.find("# HELP rs_test_conf_esc_total help with \\\\ and\\nnewline"),
      std::string::npos)
      << text;
}

// --- chrome-trace export ------------------------------------------------------

namespace json {

// Minimal recursive-descent validator — accepts exactly the JSON grammar,
// no extensions. Returns true iff `text` is one valid JSON value.
struct Cursor {
  const std::string& text;
  size_t i = 0;
  bool Eof() const { return i >= text.size(); }
  char Peek() const { return text[i]; }
};

void SkipWs(Cursor* c) {
  while (!c->Eof() && (c->Peek() == ' ' || c->Peek() == '\t' ||
                       c->Peek() == '\n' || c->Peek() == '\r')) {
    ++c->i;
  }
}

bool ParseValue(Cursor* c, int depth);

bool ParseString(Cursor* c) {
  if (c->Eof() || c->Peek() != '"') return false;
  ++c->i;
  while (!c->Eof() && c->Peek() != '"') {
    const char ch = c->Peek();
    if (static_cast<unsigned char>(ch) < 0x20) return false;  // raw control
    if (ch == '\\') {
      ++c->i;
      if (c->Eof()) return false;
      const char esc = c->Peek();
      if (esc == 'u') {
        for (int k = 0; k < 4; ++k) {
          ++c->i;
          if (c->Eof() || !std::isxdigit(static_cast<unsigned char>(
                              c->Peek()))) {
            return false;
          }
        }
      } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
                 esc != 'f' && esc != 'n' && esc != 'r' && esc != 't') {
        return false;
      }
    }
    ++c->i;
  }
  if (c->Eof()) return false;
  ++c->i;  // closing quote
  return true;
}

bool ParseNumber(Cursor* c) {
  const size_t start = c->i;
  if (!c->Eof() && c->Peek() == '-') ++c->i;
  while (!c->Eof() && std::isdigit(static_cast<unsigned char>(c->Peek()))) {
    ++c->i;
  }
  if (!c->Eof() && c->Peek() == '.') {
    ++c->i;
    while (!c->Eof() &&
           std::isdigit(static_cast<unsigned char>(c->Peek()))) {
      ++c->i;
    }
  }
  if (!c->Eof() && (c->Peek() == 'e' || c->Peek() == 'E')) {
    ++c->i;
    if (!c->Eof() && (c->Peek() == '+' || c->Peek() == '-')) ++c->i;
    while (!c->Eof() &&
           std::isdigit(static_cast<unsigned char>(c->Peek()))) {
      ++c->i;
    }
  }
  return c->i > start;
}

bool ParseLiteral(Cursor* c, const char* literal) {
  const size_t len = std::strlen(literal);
  if (c->text.compare(c->i, len, literal) != 0) return false;
  c->i += len;
  return true;
}

bool ParseValue(Cursor* c, int depth) {
  if (depth > 64) return false;
  SkipWs(c);
  if (c->Eof()) return false;
  const char ch = c->Peek();
  if (ch == '"') return ParseString(c);
  if (ch == '{') {
    ++c->i;
    SkipWs(c);
    if (!c->Eof() && c->Peek() == '}') {
      ++c->i;
      return true;
    }
    while (true) {
      SkipWs(c);
      if (!ParseString(c)) return false;
      SkipWs(c);
      if (c->Eof() || c->Peek() != ':') return false;
      ++c->i;
      if (!ParseValue(c, depth + 1)) return false;
      SkipWs(c);
      if (c->Eof()) return false;
      if (c->Peek() == ',') {
        ++c->i;
        continue;
      }
      if (c->Peek() == '}') {
        ++c->i;
        return true;
      }
      return false;
    }
  }
  if (ch == '[') {
    ++c->i;
    SkipWs(c);
    if (!c->Eof() && c->Peek() == ']') {
      ++c->i;
      return true;
    }
    while (true) {
      if (!ParseValue(c, depth + 1)) return false;
      SkipWs(c);
      if (c->Eof()) return false;
      if (c->Peek() == ',') {
        ++c->i;
        continue;
      }
      if (c->Peek() == ']') {
        ++c->i;
        return true;
      }
      return false;
    }
  }
  if (ch == 't') return ParseLiteral(c, "true");
  if (ch == 'f') return ParseLiteral(c, "false");
  if (ch == 'n') return ParseLiteral(c, "null");
  return ParseNumber(c);
}

bool IsValid(const std::string& text) {
  Cursor c{text};
  if (!ParseValue(&c, 0)) return false;
  SkipWs(&c);
  return c.Eof();
}

}  // namespace json

TEST(ObsChromeTraceTest, DumpIsValidJsonWithSpanBeginEndPairs) {
  FlightRecorder& recorder = FlightRecorder::Global();
  // A detail that stresses JSON escaping: quote, backslash, newline, tab.
  recorder.Record(TraceEventKind::kMark, "obs_test",
                  "escape \"quote\" back\\slash\nnewline\ttab");
  { TraceSpan span("obs_test", "traced-span"); }
  const std::string trace = recorder.DumpChromeTraceJson();
  ASSERT_TRUE(json::IsValid(trace)) << trace;
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"displayTimeUnit\""), std::string::npos);
  // The span contributes a B/E pair; the mark an instant.
  EXPECT_NE(trace.find("\"ph\":\"B\""), std::string::npos) << trace;
  EXPECT_NE(trace.find("\"ph\":\"E\""), std::string::npos) << trace;
  EXPECT_NE(trace.find("\"ph\":\"i\""), std::string::npos) << trace;
  EXPECT_NE(trace.find("traced-span"), std::string::npos);
  EXPECT_NE(trace.find("\"tid\":"), std::string::npos);
  EXPECT_NE(trace.find("\"ts\":"), std::string::npos);
  // The escaped detail must round-trip as JSON escapes, not raw bytes.
  EXPECT_NE(trace.find("escape \\\"quote\\\" back\\\\slash\\nnewline"),
            std::string::npos)
      << trace;
}

TEST(ObsChromeTraceTest, ThreadsGetDistinctTids) {
  FlightRecorder& recorder = FlightRecorder::Global();
  std::thread other([&recorder] {
    recorder.Record(TraceEventKind::kMark, "obs_test", "from-other-thread");
  });
  other.join();
  recorder.Record(TraceEventKind::kMark, "obs_test", "from-main-thread");
  const std::string trace = recorder.DumpChromeTraceJson();
  ASSERT_TRUE(json::IsValid(trace)) << trace;
  // Extract the tid that follows each marker's event; they must differ.
  auto tid_near = [&trace](const std::string& marker) {
    const size_t at = trace.find(marker);
    EXPECT_NE(at, std::string::npos) << marker;
    const size_t tid_at = trace.find("\"tid\":", at);
    EXPECT_NE(tid_at, std::string::npos);
    return std::stoull(trace.substr(tid_at + 6));
  };
  EXPECT_NE(tid_near("from-other-thread"), tid_near("from-main-thread"));
}

// --- last-error post-mortem ---------------------------------------------------

TEST(ObsFlightRecorderTest, LastErrorDumpRetainsThePostMortem) {
  FlightRecorder& recorder = FlightRecorder::Global();
  // Silence the default print-once path for this test.
  recorder.SetErrorHook([](const std::string&) {});
  recorder.Record(TraceEventKind::kMark, "obs_test", "pre-error context");
  recorder.RecordError("obs_test", "retained failure", 42);
  recorder.SetErrorHook(nullptr);
  const std::string dump = recorder.LastErrorDump();
  ASSERT_FALSE(dump.empty());
  EXPECT_NE(dump.find("retained failure"), std::string::npos);
  EXPECT_NE(dump.find("pre-error context"), std::string::npos);
  // A later non-error record must not clear the retained post-mortem.
  recorder.Record(TraceEventKind::kMark, "obs_test", "after-error");
  EXPECT_NE(recorder.LastErrorDump().find("retained failure"),
            std::string::npos);
}

TEST(ObsFlightRecorderTest, SpanDetailHoldsAtLeast90Chars) {
  // TraceSpan and TraceEvent share kTraceDetailBytes; before unification
  // the span buffer silently truncated at 64 bytes.
  static_assert(kTraceDetailBytes >= 96);
  FlightRecorder& recorder = FlightRecorder::Global();
  std::string long_detail = "span-detail-";
  while (long_detail.size() < 90) long_detail += "x";
  { TraceSpan span("obs_test", long_detail); }
  EXPECT_NE(recorder.Dump().find(long_detail), std::string::npos)
      << "span detail truncated below " << long_detail.size() << " chars";
}

#else  // !RS_METRICS_ENABLED

// The OFF build keeps the whole API callable but inert: no counts, empty
// exports, empty dumps. This is what the ci metrics-off job asserts.

TEST(ObsOffTest, UpdatesAreNoOps) {
  Counter counter;
  counter.Increment(100);
  EXPECT_EQ(counter.Value(), 0u);
  Gauge gauge;
  gauge.SetMax(5);
  EXPECT_EQ(gauge.Value(), 0);
  Histogram histogram;
  histogram.Observe(42);
  EXPECT_EQ(histogram.Read().count, 0u);
  EXPECT_EQ(NowNanos(), 0u);
}

TEST(ObsOffTest, ExportsAreEmpty) {
  MetricRegistry& registry = MetricRegistry::Global();
  registry.GetCounter("rs_test_off_total")->Increment();
  EXPECT_EQ(registry.ToJson(), "[]");
  EXPECT_EQ(registry.ToPrometheusText(), "");
  EXPECT_TRUE(registry.Names().empty());
}

TEST(ObsOffTest, FlightRecorderIsInert) {
  FlightRecorder& recorder = FlightRecorder::Global();
  recorder.Record(TraceEventKind::kMark, "obs_test", "ignored");
  recorder.RecordError("obs_test", "ignored too");
  EXPECT_EQ(recorder.Dump(), "");
  EXPECT_EQ(recorder.LastErrorDump(), "");
  { TraceSpan span("obs_test", "ignored span"); }
  EXPECT_EQ(recorder.Dump(), "");
  // The chrome-trace export stays valid (empty) JSON so tooling that
  // unconditionally loads it keeps working against an OFF build.
  EXPECT_EQ(recorder.DumpChromeTraceJson(), "{\"traceEvents\":[]}");
}

#endif  // RS_METRICS_ENABLED

}  // namespace
}  // namespace obs
}  // namespace robust_sampling
