// Tests for src/obs/: striped counters/gauges/histograms, the registry's
// deterministic exports, the flight recorder, and the RS_METRICS=OFF
// no-op surface. The concurrency tests double as the TSan target for the
// striped-update design (ci runs this binary under -DRS_TSAN=ON).

#include <algorithm>
#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/catalog.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace robust_sampling {
namespace obs {
namespace {

// --- catalog: static data, identical in both build modes ------------------

TEST(ObsCatalogTest, DescriptorsAreUniqueAndWellFormed) {
  const auto& catalog = AllMetricDescriptors();
  ASSERT_GE(catalog.size(), 20u);
  std::set<std::string> names;
  for (const MetricDescriptor& d : catalog) {
    EXPECT_TRUE(names.insert(d.name).second) << "duplicate name " << d.name;
    EXPECT_TRUE(std::string(d.name).starts_with("rs_")) << d.name;
    const std::string type = d.type;
    EXPECT_TRUE(type == "counter" || type == "gauge" || type == "histogram")
        << d.name << " has type " << type;
    EXPECT_FALSE(std::string(d.help).empty()) << d.name;
  }
}

TEST(ObsCatalogTest, AccessorsReturnStableInstances) {
  Counter& a = PipelineIngestBatches();
  Counter& b = PipelineIngestBatches();
  EXPECT_EQ(&a, &b);
  Histogram& h1 = WireSerializeNs("robust_sample");
  Histogram& h2 = WireSerializeNs("robust_sample");
  EXPECT_EQ(&h1, &h2);
}

#if RS_METRICS_ENABLED

// --- primitives under concurrency -----------------------------------------

TEST(ObsMetricsTest, CounterIsExactAfterConcurrentIncrements) {
  Counter counter;
  constexpr size_t kThreads = 8;
  constexpr uint64_t kPerThread = 100'000;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (uint64_t i = 0; i < kPerThread; ++i) counter.Increment();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.Value(), kThreads * kPerThread);
}

TEST(ObsMetricsTest, HistogramIsExactAfterConcurrentObserves) {
  Histogram histogram;
  constexpr size_t kThreads = 4;
  constexpr uint64_t kPerThread = 50'000;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        histogram.Observe(t * 1000 + (i % 7));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const Histogram::Aggregate agg = histogram.Read();
  EXPECT_EQ(agg.count, kThreads * kPerThread);
  uint64_t bucket_total = 0;
  for (size_t b = 0; b < kHistogramBuckets; ++b) bucket_total += agg.buckets[b];
  EXPECT_EQ(bucket_total, agg.count);
  EXPECT_GT(agg.sum, 0u);
}

TEST(ObsMetricsTest, GaugeSetMaxIsMonotoneUnderConcurrency) {
  Gauge gauge;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&gauge, t] {
      for (int64_t v = 0; v < 10'000; ++v) gauge.SetMax(t * 10'000 + v);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(gauge.Value(), 3 * 10'000 + 9'999);
}

TEST(ObsMetricsTest, HistogramBucketsAreLog2Spaced) {
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 1u);
  EXPECT_EQ(Histogram::BucketIndex(2), 2u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 3u);
  EXPECT_EQ(Histogram::BucketIndex(1023), 10u);
  EXPECT_EQ(Histogram::BucketIndex(1024), 11u);
  // Values past the last finite bucket land in the +Inf overflow bucket.
  EXPECT_EQ(Histogram::BucketIndex(~uint64_t{0}), kHistogramBuckets - 1);
  EXPECT_EQ(Histogram::BucketUpperBound(1), 1u);
  EXPECT_EQ(Histogram::BucketUpperBound(10), 1023u);
}

TEST(ObsMetricsTest, HistogramQuantilesReturnBucketUpperBounds) {
  Histogram histogram;
  for (int i = 0; i < 90; ++i) histogram.Observe(100);   // bucket 7 (<=127)
  for (int i = 0; i < 10; ++i) histogram.Observe(5000);  // bucket 13 (<=8191)
  const Histogram::Aggregate agg = histogram.Read();
  EXPECT_EQ(agg.ApproxQuantile(0.5), 127u);
  EXPECT_EQ(agg.ApproxQuantile(0.99), 8191u);
  EXPECT_EQ(agg.ApproxMax(), 8191u);
}

TEST(ObsMetricsTest, RuntimeDisableStopsUpdates) {
  Counter counter;
  counter.Increment();
  SetRuntimeEnabled(false);
  counter.Increment(100);
  SetRuntimeEnabled(true);
  counter.Increment();
  EXPECT_EQ(counter.Value(), 2u);
}

// --- registry ---------------------------------------------------------------

TEST(ObsRegistryTest, SameNameSameInstanceLabeledDistinct) {
  MetricRegistry& registry = MetricRegistry::Global();
  Counter* a = registry.GetCounter("rs_test_repeat_total", "help");
  Counter* b = registry.GetCounter("rs_test_repeat_total");
  EXPECT_EQ(a, b);
  Counter* labeled_x =
      registry.GetCounter("rs_test_labeled_total", "", {"kind", "x"});
  Counter* labeled_y =
      registry.GetCounter("rs_test_labeled_total", "", {"kind", "y"});
  EXPECT_NE(labeled_x, labeled_y);
  EXPECT_EQ(labeled_x,
            registry.GetCounter("rs_test_labeled_total", "", {"kind", "x"}));
}

TEST(ObsRegistryTest, SnapshotsAreDeterministicAndSorted) {
  MetricRegistry& registry = MetricRegistry::Global();
  registry.GetCounter("rs_test_det_b_total")->Increment(2);
  registry.GetCounter("rs_test_det_a_total")->Increment(1);
  registry.GetHistogram("rs_test_det_h_ns")->Observe(42);
  const std::string first = registry.ToJson();
  const std::string second = registry.ToJson();
  EXPECT_EQ(first, second);
  const std::vector<std::string> names = registry.Names();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  EXPECT_LT(first.find("rs_test_det_a_total"),
            first.find("rs_test_det_b_total"));
}

TEST(ObsRegistryTest, PrometheusTextExposesSeries) {
  MetricRegistry& registry = MetricRegistry::Global();
  registry.GetCounter("rs_test_prom_total", "a counter")->Increment(7);
  registry.GetHistogram("rs_test_prom_ns", "a histogram")->Observe(100);
  const std::string text = registry.ToPrometheusText();
  EXPECT_NE(text.find("# HELP rs_test_prom_total a counter"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE rs_test_prom_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("rs_test_prom_total 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE rs_test_prom_ns histogram"), std::string::npos);
  EXPECT_NE(text.find("rs_test_prom_ns_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("rs_test_prom_ns_sum 100"), std::string::npos);
  EXPECT_NE(text.find("rs_test_prom_ns_count 1"), std::string::npos);
}

TEST(ObsRegistryTest, ToJsonRowsCarryNumericCells) {
  MetricRegistry& registry = MetricRegistry::Global();
  registry.GetCounter("rs_test_json_total")->Increment(5);
  const std::string json = registry.ToJson();
  // The value cell must be an unquoted number for bench_diff to compare.
  EXPECT_NE(json.find("\"metric\": \"rs_test_json_total\", \"type\": "
                      "\"counter\", \"value\": 5"),
            std::string::npos)
      << json;
}

// --- flight recorder --------------------------------------------------------

TEST(ObsFlightRecorderTest, DumpMergesThreadsInSequenceOrder) {
  FlightRecorder& recorder = FlightRecorder::Global();
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&recorder, t] {
      for (int i = 0; i < 8; ++i) {
        recorder.Record(TraceEventKind::kMark, "obs_test",
                        "thread " + std::to_string(t));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const std::string dump = recorder.Dump();
  for (int t = 0; t < 4; ++t) {
    EXPECT_NE(dump.find("thread " + std::to_string(t)), std::string::npos);
  }
}

TEST(ObsFlightRecorderTest, RingOverwritesOldestEvents) {
  FlightRecorder& recorder = FlightRecorder::Global();
  recorder.Record(TraceEventKind::kMark, "obs_test", "overwritten-marker");
  for (size_t i = 0; i < kFlightRecorderRingEvents + 8; ++i) {
    recorder.Record(TraceEventKind::kMark, "obs_test", "filler");
  }
  // This thread's ring holds only the newest kFlightRecorderRingEvents
  // events, so the early marker is gone.
  EXPECT_EQ(recorder.Dump().find("overwritten-marker"), std::string::npos);
}

TEST(ObsFlightRecorderTest, ErrorHookReceivesDumpNamingTheFailure) {
  FlightRecorder& recorder = FlightRecorder::Global();
  std::string captured;
  recorder.SetErrorHook([&captured](const std::string& dump) {
    captured = dump;
  });
  recorder.Record(TraceEventKind::kMark, "obs_test", "context before");
  recorder.RecordError("obs_test", "the failing operation", 17);
  recorder.SetErrorHook(nullptr);
  EXPECT_NE(captured.find("context before"), std::string::npos);
  EXPECT_NE(captured.find("the failing operation"), std::string::npos);
  EXPECT_NE(captured.find("ERROR"), std::string::npos);
  EXPECT_NE(captured.find("(arg=17)"), std::string::npos);
}

TEST(ObsFlightRecorderTest, TraceSpanRecordsBeginAndEnd) {
  FlightRecorder& recorder = FlightRecorder::Global();
  { TraceSpan span("obs_test", "span-under-test"); }
  const std::string dump = recorder.Dump();
  const size_t begin = dump.find("begin");
  EXPECT_NE(begin, std::string::npos);
  EXPECT_NE(dump.find("span-under-test"), std::string::npos);
  EXPECT_NE(dump.find("end"), std::string::npos);
}

#else  // !RS_METRICS_ENABLED

// The OFF build keeps the whole API callable but inert: no counts, empty
// exports, empty dumps. This is what the ci metrics-off job asserts.

TEST(ObsOffTest, UpdatesAreNoOps) {
  Counter counter;
  counter.Increment(100);
  EXPECT_EQ(counter.Value(), 0u);
  Gauge gauge;
  gauge.SetMax(5);
  EXPECT_EQ(gauge.Value(), 0);
  Histogram histogram;
  histogram.Observe(42);
  EXPECT_EQ(histogram.Read().count, 0u);
  EXPECT_EQ(NowNanos(), 0u);
}

TEST(ObsOffTest, ExportsAreEmpty) {
  MetricRegistry& registry = MetricRegistry::Global();
  registry.GetCounter("rs_test_off_total")->Increment();
  EXPECT_EQ(registry.ToJson(), "[]");
  EXPECT_EQ(registry.ToPrometheusText(), "");
  EXPECT_TRUE(registry.Names().empty());
}

TEST(ObsOffTest, FlightRecorderIsInert) {
  FlightRecorder& recorder = FlightRecorder::Global();
  recorder.Record(TraceEventKind::kMark, "obs_test", "ignored");
  recorder.RecordError("obs_test", "ignored too");
  EXPECT_EQ(recorder.Dump(), "");
  { TraceSpan span("obs_test", "ignored span"); }
  EXPECT_EQ(recorder.Dump(), "");
}

#endif  // RS_METRICS_ENABLED

}  // namespace
}  // namespace obs
}  // namespace robust_sampling
