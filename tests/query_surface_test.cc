// Tests for the type-erased query surface: every registry built-in either
// answers SampleView / Quantile / EstimateFrequency / HeavyHitters or
// cleanly reports the capability as unsupported (Capabilities() bitmask +
// aborting erased call), sample-backed answers agree with ground truth,
// and merged ShardedPipeline snapshots answer within eps of single-stream
// estimates — all with zero downcasts.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "heavy/exact_counter.h"
#include "heavy/space_saving.h"
#include "pipeline/sharded_pipeline.h"
#include "pipeline/sketch_registry.h"
#include "pipeline/stream_sketch.h"
#include "stream/generators.h"
#include "stream/zipf.h"

namespace robust_sampling {
namespace {

SketchConfig ConfigFor(const std::string& kind) {
  SketchConfig config;
  config.kind = kind;
  config.probability = 0.2;  // read by "bernoulli" only
  config.capacity = 64;      // read by reservoir/kll/mg/ss
  config.seed = 11;
  return config;
}

// The expected capability sets of the seven built-ins for int64_t
// elements (all serializable — int64_t is a wire value). A kind missing
// from this map fails the test — keeping the matrix in sync with the
// registry is the point.
const std::map<std::string, uint32_t>& ExpectedCaps() {
  static const std::map<std::string, uint32_t> caps = {
      {"robust_sample", kCapSampleView | kCapQuantiles | kCapFrequencies |
                            kCapHeavyHitters | kCapSerialize},
      {"reservoir", kCapSampleView | kCapQuantiles | kCapFrequencies |
                        kCapHeavyHitters | kCapSerialize},
      {"bernoulli", kCapSampleView | kCapQuantiles | kCapFrequencies |
                        kCapHeavyHitters | kCapSerialize},
      {"kll", kCapQuantiles | kCapSerialize},
      {"count_min", kCapFrequencies | kCapHeavyHitters | kCapSerialize},
      {"misra_gries", kCapFrequencies | kCapHeavyHitters | kCapSerialize},
      {"space_saving", kCapFrequencies | kCapHeavyHitters | kCapSerialize},
  };
  return caps;
}

TEST(QuerySurfaceTest, EveryBuiltinDeclaresTheExpectedCapabilities) {
  for (const auto& kind : SketchRegistry<int64_t>::Global().Kinds()) {
    const auto it = ExpectedCaps().find(kind);
    ASSERT_NE(it, ExpectedCaps().end())
        << "kind '" << kind << "' missing from the expected capability "
        << "matrix — update this test and docs/registry.md";
    const auto sketch =
        SketchRegistry<int64_t>::Global().Create(ConfigFor(kind));
    EXPECT_EQ(sketch.Capabilities(), it->second) << kind;
  }
}

// Every built-in answers each supported query group after ingesting a
// batch, with sane values; the groups it does not support are reported
// via Supports() == false (the aborting path is covered by the death test
// below).
TEST(QuerySurfaceTest, EveryBuiltinAnswersItsSupportedQueries) {
  const auto stream = UniformIntStream(4000, 1000, 21);
  for (const auto& kind : SketchRegistry<int64_t>::Global().Kinds()) {
    auto sketch = SketchRegistry<int64_t>::Global().Create(ConfigFor(kind));
    sketch.InsertBatch(stream);
    if (sketch.Supports(kCapSampleView)) {
      const SketchSampleView<int64_t> view = sketch.SampleView();
      EXPECT_EQ(view.elements.size(), sketch.SpaceItems()) << kind;
      for (int64_t v : view.elements) {
        EXPECT_GE(v, 1);
        EXPECT_LE(v, 1000);
      }
    }
    if (sketch.Supports(kCapQuantiles)) {
      const double median = sketch.Quantile(0.5);
      EXPECT_GE(median, 1.0) << kind;
      EXPECT_LE(median, 1000.0) << kind;
      EXPECT_LE(sketch.Rank(0.0), sketch.Rank(1000.0)) << kind;
      EXPECT_DOUBLE_EQ(sketch.Rank(1000.0), 1.0) << kind;
    }
    if (sketch.Supports(kCapFrequencies)) {
      const double f = sketch.EstimateFrequency(500);
      EXPECT_GE(f, 0.0) << kind;
      EXPECT_LE(f, 1.0) << kind;
    }
    if (sketch.Supports(kCapHeavyHitters)) {
      // A uniform stream over 1000 values has no 0.5-heavy element.
      EXPECT_TRUE(sketch.HeavyHitters(0.5).empty()) << kind;
    }
  }
}

TEST(QuerySurfaceDeathTest, UnsupportedQueriesAbortWithAClearMessage) {
  auto kll = SketchRegistry<int64_t>::Global().Create(ConfigFor("kll"));
  kll.Insert(1);
  EXPECT_FALSE(kll.Supports(kCapSampleView));
  EXPECT_DEATH(kll.SampleView(), "no sample view");
  EXPECT_DEATH(kll.EstimateFrequency(1), "frequency queries");
  EXPECT_DEATH(kll.HeavyHitters(0.1), "heavy-hitter queries");
  auto cm = SketchRegistry<int64_t>::Global().Create(ConfigFor("count_min"));
  EXPECT_DEATH(cm.Quantile(0.5), "quantile queries");
  EXPECT_DEATH(cm.Rank(0.5), "quantile queries");
}

// With capacity >= stream length the reservoir retains everything, so the
// sample-backed query hooks must answer *exactly*.
TEST(QuerySurfaceTest, SampleBackedAnswersAreExactWhenSampleIsWhole) {
  SketchConfig config;
  config.kind = "reservoir";
  config.capacity = 1000;
  config.seed = 31;
  auto sketch = SketchRegistry<int64_t>::Global().Create(config);
  std::vector<int64_t> stream;
  ExactCounter exact;
  for (int64_t i = 0; i < 500; ++i) {
    // 0..499 with element 7 tripled: one clear heavy hitter.
    stream.push_back(i);
    if (i % 5 == 0) stream.push_back(7);
  }
  sketch.InsertBatch(stream);
  for (int64_t v : stream) exact.Insert(v);
  std::vector<int64_t> sorted = stream;
  std::sort(sorted.begin(), sorted.end());
  for (double q : {0.1, 0.5, 0.9}) {
    const size_t rank = static_cast<size_t>(
        std::max<int64_t>(0, static_cast<int64_t>(
                                 std::ceil(q * sorted.size())) -
                                 1));
    EXPECT_DOUBLE_EQ(sketch.Quantile(q),
                     static_cast<double>(sorted[rank]))
        << q;
  }
  EXPECT_DOUBLE_EQ(sketch.EstimateFrequency(7),
                   exact.EstimateFrequency(7));
  const auto hh = sketch.HeavyHitters(0.1);
  ASSERT_EQ(hh.size(), 1u);
  EXPECT_EQ(hh[0].element, 7);
  EXPECT_DOUBLE_EQ(hh[0].frequency, exact.EstimateFrequency(7));
}

// The headline serving contract: a merged N-shard snapshot answers
// quantile (Rank) queries within eps of single-shard ground truth,
// entirely through the erased API (ShardedPipeline::Query, no TryAs<>).
TEST(QuerySurfaceTest, MergedSnapshotRankAgreesWithGroundTruthWithinEps) {
  const double eps = 0.1;
  const uint64_t universe = uint64_t{1} << 20;
  const auto stream =
      UniformIntStream(150000, static_cast<int64_t>(universe), 41);
  SketchConfig config;
  config.kind = "robust_sample";
  config.eps = eps;
  config.delta = 0.05;
  config.universe_size = universe;
  config.seed = 43;
  PipelineOptions options;
  options.num_shards = 4;
  ShardedPipeline<int64_t> pipeline(config, options);
  for (size_t i = 0; i < stream.size(); i += 4096) {
    const size_t len = std::min<size_t>(4096, stream.size() - i);
    pipeline.Ingest(std::span<const int64_t>(stream.data() + i, len));
  }
  ASSERT_TRUE(pipeline.Capabilities() & kCapQuantiles);
  std::vector<int64_t> sorted = stream;
  std::sort(sorted.begin(), sorted.end());
  for (double q : {0.1, 0.5, 0.9}) {
    const int64_t threshold =
        sorted[static_cast<size_t>(q * (sorted.size() - 1))];
    size_t truth = 0;
    for (int64_t v : stream) truth += v <= threshold;
    const double true_density =
        static_cast<double>(truth) / static_cast<double>(stream.size());
    const double est = pipeline.Query([&](const StreamSketch<int64_t>& s) {
      return s.Rank(static_cast<double>(threshold));
    });
    EXPECT_NEAR(est, true_density, eps) << "q=" << q;
  }
}

// CountMin shards share hash rows, so merged-snapshot frequency answers
// must equal a single sketch of the whole stream exactly — checked purely
// through the erased surface on both sides.
TEST(QuerySurfaceTest, MergedCountMinFrequenciesEqualSingleSketch) {
  SketchConfig config;
  config.kind = "count_min";
  config.width = 512;
  config.depth = 3;
  config.seed = 53;
  PipelineOptions options;
  options.num_shards = 4;
  options.partition = PartitionPolicy::kHash;
  ShardedPipeline<int64_t> pipeline(config, options);
  const auto stream = ZipfIntStream(40000, 2000, 1.2, 59);
  pipeline.Ingest(stream);
  const StreamSketch<int64_t> merged = pipeline.Snapshot();
  StreamSketch<int64_t> single =
      SketchRegistry<int64_t>::Global().Create(config);
  single.InsertBatch(stream);
  for (int64_t x = 1; x <= 2000; x += 37) {
    EXPECT_DOUBLE_EQ(merged.EstimateFrequency(x),
                     single.EstimateFrequency(x))
        << x;
  }
}

// Merged heavy-hitter reports (SpaceSaving, hash-partitioned so each
// element's counts concentrate on one shard) recover the same heavy set a
// single-stream summary finds.
TEST(QuerySurfaceTest, MergedHeavyHittersMatchSingleStreamSummary) {
  SketchConfig config;
  config.kind = "space_saving";
  config.capacity = 200;
  PipelineOptions options;
  options.num_shards = 4;
  options.partition = PartitionPolicy::kHash;
  ShardedPipeline<int64_t> pipeline(config, options);
  const auto stream = ZipfIntStream(60000, 5000, 1.3, 61);
  pipeline.Ingest(stream);
  const auto merged_hh = pipeline.Query([](const StreamSketch<int64_t>& s) {
    return s.HeavyHitters(0.05);
  });
  SpaceSaving single(200);
  for (int64_t v : stream) single.Insert(v);
  std::set<int64_t> merged_set, single_set;
  for (const auto& h : merged_hh) merged_set.insert(h.element);
  for (const auto& h : single.HeavyHitters(0.05)) {
    single_set.insert(h.element);
  }
  EXPECT_EQ(merged_set, single_set);
}

// Custom kinds ride the same rails: an adapter defined here (not in the
// library) gets its capability hooks discovered at Wrap time.
class MaxTrackerAdapter {
 public:
  void Insert(const int64_t& x) {
    ++n_;
    max_ = std::max(max_, x);
  }
  void InsertBatch(std::span<const int64_t> xs) {
    for (int64_t x : xs) Insert(x);
  }
  void MergeFrom(const MaxTrackerAdapter& other) {
    n_ += other.n_;
    max_ = std::max(max_, other.max_);
  }
  size_t StreamSize() const { return n_; }
  size_t SpaceItems() const { return 1; }
  std::string Name() const { return "max_tracker"; }
  // One capability only: every rank mass sits at the maximum.
  double Quantile(double) const { return static_cast<double>(max_); }
  double Rank(double x) const {
    return static_cast<double>(max_) <= x ? 1.0 : 0.0;
  }

 private:
  size_t n_ = 0;
  int64_t max_ = std::numeric_limits<int64_t>::min();
};

TEST(QuerySurfaceTest, CustomAdapterCapabilitiesAreDiscoveredAtWrapTime) {
  auto sketch =
      StreamSketch<int64_t>::Wrap(MaxTrackerAdapter());
  sketch.InsertBatch(std::vector<int64_t>{3, 9, 4});
  EXPECT_EQ(sketch.Capabilities(),
            static_cast<uint32_t>(kCapQuantiles));
  EXPECT_DOUBLE_EQ(sketch.Quantile(0.5), 9.0);
  EXPECT_DOUBLE_EQ(sketch.Rank(8.0), 0.0);
  EXPECT_DOUBLE_EQ(sketch.Rank(9.0), 1.0);
  EXPECT_FALSE(sketch.Supports(kCapSampleView));
}

}  // namespace
}  // namespace robust_sampling
