#include "adversary/bisection_adversary.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "core/adversarial_game.h"
#include "core/bernoulli_sampler.h"
#include "core/big_uint.h"
#include "core/reservoir_sampler.h"
#include "gtest/gtest.h"
#include "setsystem/discrepancy.h"

namespace robust_sampling {
namespace {

// Claim 5.2, checked literally: after the game, every sampled element is
// strictly smaller than every unsampled element (for Bernoulli sampling,
// where the sample only grows).
template <typename T>
void ExpectSampledBelowUnsampled(const std::vector<T>& stream,
                                 const std::vector<T>& sample) {
  std::vector<T> sorted_sample = sample;
  std::sort(sorted_sample.begin(), sorted_sample.end());
  if (sorted_sample.empty()) return;
  const T& max_sampled = sorted_sample.back();
  // Count occurrences to handle multiset semantics: every stream element
  // <= max_sampled must be in the sample.
  size_t stream_below = 0;
  for (const T& v : stream) stream_below += !(max_sampled < v);
  EXPECT_EQ(stream_below, sample.size());
}

TEST(BisectionDoubleTest, MidpointAttackMakesSampleTheSmallest) {
  // The intro's attack: Bernoulli sampling on [0,1], midpoint splits.
  constexpr size_t kN = 40;  // well within double precision for split 0.5
  BisectionAdversaryDouble adv(0.0, 1.0, 0.5);
  BernoulliSampler<double> sampler(0.5, 17);
  const auto result = RunAdaptiveGame<double>(
      sampler, adv, kN,
      [](const std::vector<double>& x, const std::vector<double>& s) {
        return PrefixDiscrepancy(x, s);
      },
      0.5);
  EXPECT_FALSE(adv.exhausted());
  ExpectSampledBelowUnsampled(result.stream, result.sample);
  // Discrepancy = 1 - |S|/n, which is large for p = 1/2 only if |S| < n/2;
  // at minimum it's positive unless everything was sampled.
  if (result.sample.size() < kN) {
    EXPECT_NEAR(result.discrepancy,
                1.0 - static_cast<double>(result.sample.size()) / kN, 1e-12);
  }
}

TEST(BisectionDoubleTest, ExhaustionIsDetectedAndNonFatal) {
  // Force precision exhaustion with a long stream; attack must stall, not
  // crash or emit out-of-range values.
  BisectionAdversaryDouble adv(0.0, 1.0, 0.5);
  BernoulliSampler<double> sampler(0.5, 23);
  for (size_t i = 1; i <= 5000; ++i) {
    const double x = adv.NextElement(sampler.sample(), i);
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, 1.0);
    sampler.Insert(x);
    adv.Observe(sampler.sample(), sampler.last_kept(), i);
  }
  EXPECT_TRUE(adv.exhausted());
}

TEST(BisectionInt64Test, InvariantHoldsThroughoutGame) {
  constexpr int64_t kUniverse = int64_t{1} << 60;
  constexpr size_t kN = 50;
  BisectionAdversaryInt64 adv(kUniverse, 0.5);
  BernoulliSampler<int64_t> sampler(0.5, 31);
  std::vector<int64_t> stream;
  for (size_t i = 1; i <= kN; ++i) {
    const int64_t x = adv.NextElement(sampler.sample(), i);
    EXPECT_GE(x, 1);
    EXPECT_LE(x, kUniverse);
    sampler.Insert(x);
    stream.push_back(x);
    adv.Observe(sampler.sample(), sampler.last_kept(), i);
    // Claim 5.2 invariant at every round.
    for (int64_t v : sampler.sample()) EXPECT_LE(v, adv.a());
  }
  EXPECT_FALSE(adv.exhausted());
  ExpectSampledBelowUnsampled(stream, sampler.sample());
}

TEST(BisectionInt64Test, SmallUniverseExhaustsGracefully) {
  BisectionAdversaryInt64 adv(16, 0.5);
  BernoulliSampler<int64_t> sampler(0.5, 37);
  for (size_t i = 1; i <= 100; ++i) {
    const int64_t x = adv.NextElement(sampler.sample(), i);
    EXPECT_GE(x, 1);
    EXPECT_LE(x, 16);
    sampler.Insert(x);
    adv.Observe(sampler.sample(), sampler.last_kept(), i);
  }
  EXPECT_TRUE(adv.exhausted());  // log2(16) = 4 < 100 rounds
}

TEST(BisectionInt64Test, UnbalancedSplitUsesFewerBitsPerUnsampledRound) {
  // With split = 1 - p' close to 1, unsampled rounds (the common case at
  // small p) shrink the range by only (1 - split): range lasts longer.
  const int64_t universe = int64_t{1} << 40;
  BisectionAdversaryInt64 balanced(universe, 0.5);
  BisectionAdversaryInt64 skewed(universe, 0.9);
  BernoulliSampler<int64_t> s1(0.0, 1), s2(0.0, 1);  // never samples
  size_t balanced_rounds = 0, skewed_rounds = 0;
  for (size_t i = 1; i <= 2000; ++i) {
    if (!balanced.exhausted()) {
      s1.Insert(balanced.NextElement(s1.sample(), i));
      balanced.Observe(s1.sample(), s1.last_kept(), i);
      if (!balanced.exhausted()) balanced_rounds = i;
    }
    if (!skewed.exhausted()) {
      s2.Insert(skewed.NextElement(s2.sample(), i));
      skewed.Observe(s2.sample(), s2.last_kept(), i);
      if (!skewed.exhausted()) skewed_rounds = i;
    }
  }
  EXPECT_GT(skewed_rounds, 2 * balanced_rounds);
}

TEST(BisectionBigTest, MatchesInt64OnSmallUniverse) {
  // Same universe, same sampler coins -> identical streams.
  const int64_t universe = 1 << 20;
  BisectionAdversaryInt64 advi(universe, 0.75);
  BisectionAdversaryBig advb(BigUint(static_cast<uint64_t>(universe)), 0.75);
  BernoulliSampler<int64_t> si(0.3, 41);
  BernoulliSampler<BigUint> sb(0.3, 41);
  for (size_t i = 1; i <= 60; ++i) {
    const int64_t xi = advi.NextElement(si.sample(), i);
    const BigUint xb = advb.NextElement(sb.sample(), i);
    // The two arithmetic paths may round differently by at most 1 (double
    // vs fixed-point multiply); require near-agreement of the trajectory.
    const double diff = std::abs(static_cast<double>(xi) - xb.ToDouble());
    EXPECT_LE(diff, 2.0) << "round " << i;
    si.Insert(xi);
    sb.Insert(xb);
    advi.Observe(si.sample(), si.last_kept(), i);
    advb.Observe(sb.sample(), sb.last_kept(), i);
  }
}

TEST(BisectionBigTest, SustainsTheoreticalUniverseSizes) {
  // ln N = 2(ln n)^2 + 4 ln n for n = 500: the regime of Theorem 1.3.
  constexpr size_t kN = 500;
  const double ln_n = std::log(static_cast<double>(kN));
  const double ln_universe = 2.0 * ln_n * ln_n + 4.0 * ln_n;
  const BigUint universe = BigUint::ApproxExp(ln_universe);
  const double p_prime = std::max(0.02, ln_n / static_cast<double>(kN));
  BisectionAdversaryBig adv(universe, 1.0 - p_prime);
  BernoulliSampler<BigUint> sampler(0.02, 43);
  std::vector<BigUint> stream;
  for (size_t i = 1; i <= kN; ++i) {
    BigUint x = adv.NextElement(sampler.sample(), i);
    sampler.Insert(x);
    stream.push_back(std::move(x));
    adv.Observe(sampler.sample(), sampler.last_kept(), i);
  }
  EXPECT_FALSE(adv.exhausted());
  ExpectSampledBelowUnsampled(stream, sampler.sample());
  // The sample is tiny and consists of the smallest elements: prefix
  // discrepancy is ~ 1 - |S|/n, i.e. the sample is maximally
  // unrepresentative.
  const double disc = PrefixDiscrepancy(stream, sampler.sample());
  EXPECT_GT(disc, 0.9);
}

TEST(BisectionReservoirTest, AttackConfinesSampleToEarlySmallElements) {
  // Theorem 1.3 part 2: against ReservoirSample the ever-sampled elements
  // are the k' smallest, with k' ~ k ln n; the final sample is a subset.
  // The reservoir accepts ~k ln n elements, so the attack needs
  // ln N > k' * ln(1/(1-split)) + n * ln(1/split): use a BigUint universe.
  constexpr size_t kN = 2000;
  constexpr size_t kK = 5;
  const BigUint universe = BigUint::ApproxExp(300.0);
  BisectionAdversaryBig adv(universe, 0.99);
  ReservoirSampler<BigUint> sampler(kK, 47);
  std::vector<BigUint> stream;
  for (size_t i = 1; i <= kN; ++i) {
    BigUint x = adv.NextElement(sampler.sample(), i);
    sampler.Insert(x);
    stream.push_back(std::move(x));
    adv.Observe(sampler.sample(), sampler.last_kept(), i);
  }
  ASSERT_FALSE(adv.exhausted());
  // All sampled elements lie at or below the adversary's lower frontier.
  for (const BigUint& v : sampler.sample()) EXPECT_LE(v, adv.a());
  // Discrepancy is large: the sample sits inside the k' smallest elements
  // where k' <= O(k ln n) << n.
  const double disc = PrefixDiscrepancy(stream, sampler.sample());
  EXPECT_GT(disc, 0.5);
}

TEST(BisectionAdversaryTest, NamesAreDescriptive) {
  BisectionAdversaryDouble d(0.0, 1.0, 0.5);
  BisectionAdversaryInt64 i(100, 0.5);
  BisectionAdversaryBig b(BigUint(100), 0.5);
  EXPECT_NE(d.Name().find("bisection"), std::string::npos);
  EXPECT_NE(i.Name().find("bisection"), std::string::npos);
  EXPECT_NE(b.Name().find("bisection"), std::string::npos);
}

TEST(BisectionAdversaryDeathTest, InvalidParametersAbort) {
  EXPECT_DEATH(BisectionAdversaryDouble(1.0, 0.0, 0.5), "non-degenerate");
  EXPECT_DEATH(BisectionAdversaryDouble(0.0, 1.0, 0.0), "split");
  EXPECT_DEATH(BisectionAdversaryInt64(1, 0.5), ">= 2");
  EXPECT_DEATH(BisectionAdversaryBig(BigUint(1), 0.5), ">= 2");
}

}  // namespace
}  // namespace robust_sampling
