#include "core/sample_bounds.h"

#include <cmath>

#include "gtest/gtest.h"

namespace robust_sampling {
namespace {

constexpr double kEps = 0.1;
constexpr double kDelta = 0.05;

TEST(SampleBoundsTest, BernoulliRobustPMatchesFormula) {
  const double log_r = std::log(1000.0);
  const uint64_t n = 100000;
  const double expected =
      10.0 * (log_r + std::log(4.0 / kDelta)) / (kEps * kEps * n);
  EXPECT_DOUBLE_EQ(BernoulliRobustP(kEps, kDelta, log_r, n), expected);
}

TEST(SampleBoundsTest, BernoulliRobustPCappedAtOne) {
  // Tiny stream: the formula exceeds 1 and must clamp.
  EXPECT_DOUBLE_EQ(BernoulliRobustP(kEps, kDelta, 20.0, 10), 1.0);
}

TEST(SampleBoundsTest, ReservoirRobustKMatchesFormula) {
  const double log_r = std::log(1000.0);
  const double raw = 2.0 * (log_r + std::log(2.0 / kDelta)) / (kEps * kEps);
  EXPECT_EQ(ReservoirRobustK(kEps, kDelta, log_r),
            static_cast<size_t>(std::ceil(raw)));
}

TEST(SampleBoundsTest, SingleRangeIsZeroLogCardinality) {
  EXPECT_DOUBLE_EQ(BernoulliSingleRangeP(kEps, kDelta, 1000),
                   BernoulliRobustP(kEps, kDelta, 0.0, 1000));
  EXPECT_EQ(ReservoirSingleRangeK(kEps, kDelta),
            ReservoirRobustK(kEps, kDelta, 0.0));
}

TEST(SampleBoundsTest, RobustKGrowsWithCardinality) {
  EXPECT_LT(ReservoirRobustK(kEps, kDelta, std::log(10.0)),
            ReservoirRobustK(kEps, kDelta, std::log(1e6)));
}

TEST(SampleBoundsTest, RobustKShrinksWithEps) {
  EXPECT_GT(ReservoirRobustK(0.01, kDelta, 1.0),
            ReservoirRobustK(0.2, kDelta, 1.0));
}

TEST(SampleBoundsTest, StaticBoundsUseVcDimension) {
  // Static bound grows linearly in d.
  const size_t k1 = ReservoirStaticK(kEps, kDelta, 1.0);
  const size_t k10 = ReservoirStaticK(kEps, kDelta, 10.0);
  EXPECT_LT(k1, k10);
  const double p1 = BernoulliStaticP(kEps, kDelta, 1.0, 100000);
  const double p10 = BernoulliStaticP(kEps, kDelta, 10.0, 100000);
  EXPECT_LT(p1, p10);
}

TEST(SampleBoundsTest, StaticVsAdaptiveGapForPrefixSystem) {
  // The paper's headline: for the prefix system over a huge universe
  // (VC dim 1, ln|R| = ln N), the adaptive bound dwarfs the static bound.
  const double ln_n_universe = 200.0;  // ln N for an exponential universe
  const size_t static_k = ReservoirStaticK(kEps, kDelta, 1.0, 2.0);
  const size_t robust_k = ReservoirRobustK(kEps, kDelta, ln_n_universe);
  EXPECT_GT(robust_k, 10 * static_k);
}

TEST(SampleBoundsTest, ContinuousKExceedsPlainRobustK) {
  const double log_r = std::log(1000.0);
  EXPECT_GE(ReservoirContinuousK(kEps, kDelta, log_r, 1 << 20),
            ReservoirRobustK(kEps, kDelta, log_r));
}

TEST(SampleBoundsTest, ContinuousKGrowsOnlyDoublyLogInN) {
  const double log_r = 1.0;
  const size_t k_small = ReservoirContinuousK(kEps, kDelta, log_r, 1 << 10);
  const size_t k_large = ReservoirContinuousK(kEps, kDelta, log_r, 1 << 30);
  // ln ln n grows from ln(10 ln 2) ~ 1.94 to ln(30 ln 2) ~ 3.03: the bound
  // should grow, but by far less than the 2^20x growth of n.
  EXPECT_GT(k_large, k_small);
  EXPECT_LT(static_cast<double>(k_large),
            1.5 * static_cast<double>(k_small));
}

TEST(SampleBoundsTest, AttackThresholdBernoulliMatchesFormula) {
  const double log_r = 60.0;
  const uint64_t n = 10000;
  EXPECT_DOUBLE_EQ(AttackThresholdBernoulliP(log_r, n, 1.0),
                   log_r / (n * std::log(static_cast<double>(n))));
}

TEST(SampleBoundsTest, AttackThresholdReservoirMatchesFormula) {
  const double log_r = 60.0;
  const uint64_t n = 10000;
  EXPECT_EQ(AttackThresholdReservoirK(log_r, n, 1.0),
            static_cast<size_t>(std::floor(
                log_r / std::log(static_cast<double>(n)))));
}

TEST(SampleBoundsTest, AttackThresholdAtLeastOne) {
  EXPECT_GE(AttackThresholdReservoirK(0.1, 1000000), 1u);
}

TEST(SampleBoundsTest, QuantileSketchKIsPrefixInstantiation) {
  const uint64_t universe = 1 << 20;
  EXPECT_EQ(QuantileSketchK(kEps, kDelta, universe),
            ReservoirRobustK(kEps, kDelta,
                             std::log(static_cast<double>(universe))));
}

TEST(SampleBoundsTest, HeavyHitterKUsesEpsOverThree) {
  const uint64_t universe = 1 << 20;
  EXPECT_EQ(HeavyHitterK(kEps, kDelta, universe),
            ReservoirRobustK(kEps / 3.0, kDelta,
                             std::log(static_cast<double>(universe))));
}

TEST(SampleBoundsTest, AttackMinUniverseSizeMatchesN6LnN) {
  const uint64_t n = 100;
  const double expected = std::ceil(std::pow(100.0, 6.0) * std::log(100.0));
  EXPECT_DOUBLE_EQ(AttackMinUniverseSize(n), expected);
}

TEST(SampleBoundsDeathTest, InvalidParametersAbort) {
  EXPECT_DEATH(ReservoirRobustK(0.0, kDelta, 1.0), "eps");
  EXPECT_DEATH(ReservoirRobustK(1.0, kDelta, 1.0), "eps");
  EXPECT_DEATH(ReservoirRobustK(kEps, 0.0, 1.0), "delta");
  EXPECT_DEATH(ReservoirRobustK(kEps, kDelta, -1.0), "log_cardinality");
  EXPECT_DEATH(BernoulliRobustP(kEps, kDelta, 1.0, 0), "n >= 1");
}

// Monotonicity sweep over (eps, delta) grids: all bounds are monotone in
// the accuracy parameters.
class BoundsMonotonicityTest
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(BoundsMonotonicityTest, TighterAccuracyNeedsLargerSample) {
  const auto [eps, delta] = GetParam();
  const double log_r = std::log(500.0);
  // Halving eps increases k; halving delta increases k.
  EXPECT_LE(ReservoirRobustK(eps, delta, log_r),
            ReservoirRobustK(eps / 2.0, delta, log_r));
  EXPECT_LE(ReservoirRobustK(eps, delta, log_r),
            ReservoirRobustK(eps, delta / 2.0, log_r));
  EXPECT_LE(BernoulliRobustP(eps, delta, log_r, 1000000),
            BernoulliRobustP(eps / 2.0, delta, log_r, 1000000));
  EXPECT_LE(ReservoirContinuousK(eps, delta, log_r, 100000),
            ReservoirContinuousK(eps / 2.0, delta, log_r, 100000));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BoundsMonotonicityTest,
    ::testing::Values(std::pair<double, double>{0.2, 0.1},
                      std::pair<double, double>{0.1, 0.05},
                      std::pair<double, double>{0.05, 0.01},
                      std::pair<double, double>{0.3, 0.3},
                      std::pair<double, double>{0.02, 0.001}));

}  // namespace
}  // namespace robust_sampling
