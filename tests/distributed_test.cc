#include "distributed/load_balancer.h"

#include <cmath>
#include <cstdint>
#include <numeric>

#include "gtest/gtest.h"
#include "stream/generators.h"

namespace robust_sampling {
namespace {

TEST(LoadBalancerTest, EveryQueryGoesToExactlyOneServer) {
  LoadBalancedCluster cluster(4, 7);
  for (int64_t q : UniformIntStream(1000, 100, 9)) cluster.Route(q);
  const auto loads = cluster.Loads();
  EXPECT_EQ(std::accumulate(loads.begin(), loads.end(), size_t{0}), 1000u);
  EXPECT_EQ(cluster.TotalQueries(), 1000u);
}

TEST(LoadBalancerTest, RouteReturnsLastServer) {
  LoadBalancedCluster cluster(8, 11);
  for (int64_t q = 0; q < 50; ++q) {
    const int s = cluster.Route(q);
    EXPECT_EQ(s, cluster.last_server());
    EXPECT_GE(s, 0);
    EXPECT_LT(s, 8);
    EXPECT_EQ(cluster.ServerStream(s).back(), q);
  }
}

TEST(LoadBalancerTest, LoadsAreBalanced) {
  LoadBalancedCluster cluster(10, 13);
  constexpr size_t kQueries = 100000;
  for (size_t i = 0; i < kQueries; ++i) {
    cluster.Route(static_cast<int64_t>(i));
  }
  const double expected = kQueries / 10.0;
  const double sd = std::sqrt(expected * 0.9);
  for (size_t load : cluster.Loads()) {
    EXPECT_NEAR(static_cast<double>(load), expected, 6.0 * sd);
  }
}

TEST(LoadBalancerTest, ServerSubstreamsPreserveArrivalOrder) {
  LoadBalancedCluster cluster(3, 17);
  for (int64_t q = 0; q < 500; ++q) cluster.Route(q);
  for (int s = 0; s < 3; ++s) {
    const auto& stream = cluster.ServerStream(s);
    for (size_t i = 1; i < stream.size(); ++i) {
      EXPECT_LT(stream[i - 1], stream[i]);  // increasing query ids
    }
  }
}

TEST(LoadBalancerTest, StaticStreamsGiveRepresentativeServers) {
  // Section 1.2: each server's substream is a Bernoulli(1/K) sample of the
  // stream; for a static (oblivious) workload, all servers are
  // representative once n/K is large.
  LoadBalancedCluster cluster(5, 19);
  for (int64_t q : ZipfIntStream(50000, 1000, 1.1, 21)) cluster.Route(q);
  for (double disc : cluster.PerServerPrefixDiscrepancy()) {
    EXPECT_LT(disc, 0.03);
  }
}

TEST(LoadBalancerTest, SingleServerSeesEverything) {
  LoadBalancedCluster cluster(1, 23);
  for (int64_t q = 0; q < 100; ++q) cluster.Route(q);
  EXPECT_EQ(cluster.ServerStream(0).size(), 100u);
  EXPECT_DOUBLE_EQ(cluster.PerServerPrefixDiscrepancy()[0], 0.0);
}

TEST(LoadBalancerTest, DeterministicGivenSeed) {
  LoadBalancedCluster a(4, 29), b(4, 29);
  for (int64_t q = 0; q < 1000; ++q) {
    EXPECT_EQ(a.Route(q), b.Route(q));
  }
}

TEST(LoadBalancerDeathTest, InvalidArgumentsAbort) {
  EXPECT_DEATH(LoadBalancedCluster(0, 1), "at least one server");
  LoadBalancedCluster cluster(2, 1);
  EXPECT_DEATH(cluster.ServerStream(2), "server");
  EXPECT_DEATH(cluster.ServerStream(-1), "server");
}

}  // namespace
}  // namespace robust_sampling
