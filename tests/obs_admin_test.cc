// Tests for src/obs/admin_server.*: the HTTP/1.0 introspection plane.
// Exercises the real socket path end to end — every request here opens a
// TCP connection to the loopback listener, exactly like curl in the CI
// smoke job. The name matches the ^obs ctest regex, so this whole binary
// also runs under TSan (admin accept thread vs Start/Stop races).

#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <string>

#include "gtest/gtest.h"
#include "net/socket_io.h"
#include "obs/admin_server.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace robust_sampling {
namespace obs {
namespace {

struct HttpResponse {
  int status = 0;
  std::string headers;  // raw header block (status line included)
  std::string body;
};

// Sends `raw_request` to the admin port and reads to EOF (the server is
// HTTP/1.0 and closes after one response). Returns false on socket error.
bool RawRequest(uint16_t port, const std::string& raw_request,
                HttpResponse* out) {
  const int fd = net::ConnectWithDeadline("127.0.0.1", port, 2000);
  if (fd < 0) return false;
  net::SetSocketDeadlines(fd, 5000, 5000);
  size_t sent = 0;
  while (sent < raw_request.size()) {
    const ssize_t n =
        send(fd, raw_request.data() + sent, raw_request.size() - sent, 0);
    if (n <= 0) {
      close(fd);
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  while (true) {
    const ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n < 0) {
      close(fd);
      return false;
    }
    if (n == 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  close(fd);
  const size_t header_end = response.find("\r\n\r\n");
  if (header_end == std::string::npos) return false;
  out->headers = response.substr(0, header_end);
  out->body = response.substr(header_end + 4);
  // Status line: "HTTP/1.0 NNN Reason".
  if (out->headers.rfind("HTTP/1.0 ", 0) != 0 || out->headers.size() < 12) {
    return false;
  }
  out->status = std::stoi(out->headers.substr(9, 3));
  return true;
}

bool Get(uint16_t port, const std::string& path, HttpResponse* out) {
  return RawRequest(port, "GET " + path + " HTTP/1.0\r\n\r\n", out);
}

class AdminServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::string error;
    ASSERT_TRUE(server_.Start(&error)) << error;
    ASSERT_NE(server_.port(), 0);
  }
  void TearDown() override { server_.Stop(); }

  AdminServer server_;  // default options: ephemeral loopback port
};

TEST_F(AdminServerTest, HealthzReturnsOk) {
  HttpResponse response;
  ASSERT_TRUE(Get(server_.port(), "/healthz", &response));
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.body, "ok\n");
  EXPECT_NE(response.headers.find("Content-Type: text/plain"),
            std::string::npos);
  EXPECT_NE(response.headers.find("Content-Length: 3"), std::string::npos);
}

TEST_F(AdminServerTest, MetricsServesPrometheusExposition) {
  MetricRegistry::Global()
      .GetCounter("rs_test_admin_total", "admin endpoint test counter")
      ->Increment(9);
  HttpResponse response;
  ASSERT_TRUE(Get(server_.port(), "/metrics", &response));
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.headers.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
#if RS_METRICS_ENABLED
  EXPECT_NE(response.body.find("rs_test_admin_total 9"), std::string::npos)
      << response.body;
  EXPECT_NE(response.body.find("# TYPE rs_test_admin_total counter"),
            std::string::npos);
#else
  // The OFF build serves the endpoint with an empty exposition.
  EXPECT_EQ(response.body, "");
#endif
}

TEST_F(AdminServerTest, TraceJsonIsServed) {
  { TraceSpan span("obs_admin_test", "admin-trace-span"); }
  HttpResponse response;
  ASSERT_TRUE(Get(server_.port(), "/trace.json", &response));
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.headers.find("Content-Type: application/json"),
            std::string::npos);
  // Validity of the JSON itself is asserted in obs_test; here we check
  // the endpoint serves the export (and the OFF build a valid stub).
  EXPECT_EQ(response.body.rfind("{\"traceEvents\":[", 0), 0u)
      << response.body.substr(0, 64);
  EXPECT_EQ(response.body.back(), '}');
#if RS_METRICS_ENABLED
  EXPECT_NE(response.body.find("admin-trace-span"), std::string::npos);
#endif
}

TEST_F(AdminServerTest, TraceIncludesLastErrorPostMortem) {
  FlightRecorder::Global().SetErrorHook([](const std::string&) {});
  FlightRecorder::Global().RecordError("obs_admin_test",
                                       "admin-visible failure", 7);
  FlightRecorder::Global().SetErrorHook(nullptr);
  HttpResponse response;
  ASSERT_TRUE(Get(server_.port(), "/trace", &response));
  EXPECT_EQ(response.status, 200);
#if RS_METRICS_ENABLED
  EXPECT_NE(response.body.find("admin-visible failure"), std::string::npos);
  EXPECT_NE(response.body.find("last error post-mortem"), std::string::npos);
#endif
}

TEST_F(AdminServerTest, UnknownPathReturns404) {
  HttpResponse response;
  ASSERT_TRUE(Get(server_.port(), "/nope", &response));
  EXPECT_EQ(response.status, 404);
  // The 404 body lists the known paths, as a discoverability aid.
  EXPECT_NE(response.body.find("/metrics"), std::string::npos);
  EXPECT_NE(response.body.find("/healthz"), std::string::npos);
}

TEST_F(AdminServerTest, NonGetReturns405) {
  HttpResponse response;
  ASSERT_TRUE(RawRequest(server_.port(),
                         "POST /metrics HTTP/1.0\r\n\r\n", &response));
  EXPECT_EQ(response.status, 405);
}

TEST_F(AdminServerTest, MalformedRequestReturns400) {
  HttpResponse response;
  ASSERT_TRUE(RawRequest(server_.port(), "garbage\r\n\r\n", &response));
  EXPECT_EQ(response.status, 400);
}

TEST_F(AdminServerTest, QueryStringIsIgnored) {
  HttpResponse response;
  ASSERT_TRUE(Get(server_.port(), "/healthz?verbose=1", &response));
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.body, "ok\n");
}

TEST_F(AdminServerTest, RegisteredHandlerServesCustomPath) {
  server_.RegisterHandler("/custom", "application/json",
                          [] { return std::string("{\"hello\":true}"); });
  HttpResponse response;
  ASSERT_TRUE(Get(server_.port(), "/custom", &response));
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.body, "{\"hello\":true}");
  EXPECT_NE(response.headers.find("Content-Type: application/json"),
            std::string::npos);
}

TEST(AdminServerLifecycleTest, RepeatedStartStopIsClean) {
  // Each cycle binds a fresh ephemeral port, serves one request, and
  // stops; leaks or thread races here are what ASan/TSan watch for.
  for (int cycle = 0; cycle < 3; ++cycle) {
    AdminServer server;
    std::string error;
    ASSERT_TRUE(server.Start(&error)) << "cycle " << cycle << ": " << error;
    HttpResponse response;
    ASSERT_TRUE(Get(server.port(), "/healthz", &response));
    EXPECT_EQ(response.status, 200);
    server.Stop();
  }
}

TEST(AdminServerLifecycleTest, StopWithoutRequestsIsPrompt) {
  AdminServer server;
  ASSERT_TRUE(server.Start());
  server.Stop();  // must not hang on the idle accept loop
  server.Stop();  // idempotent
}

TEST(AdminServerLifecycleTest, FixedPortConflictFailsWithError) {
  AdminServer first;
  ASSERT_TRUE(first.Start());
  AdminServerOptions conflicting;
  conflicting.port = first.port();
  AdminServer second(conflicting);
  std::string error;
  EXPECT_FALSE(second.Start(&error));
  EXPECT_FALSE(error.empty());
  first.Stop();
}

}  // namespace
}  // namespace obs
}  // namespace robust_sampling
