#include "setsystem/discrepancy.h"

#include <cstdint>
#include <vector>

#include "core/random.h"
#include "gtest/gtest.h"
#include "setsystem/explicit_family.h"
#include "setsystem/interval_family.h"
#include "setsystem/prefix_family.h"
#include "setsystem/singleton_family.h"

namespace robust_sampling {
namespace {

// Brute-force reference implementations over the discrete universe [1, N].
double BrutePrefix(const std::vector<int64_t>& x, const std::vector<int64_t>& s,
                   int64_t universe) {
  PrefixFamily f(universe);
  return ExplicitDiscrepancyExact(f, x, s);
}

double BruteInterval(const std::vector<int64_t>& x,
                     const std::vector<int64_t>& s, int64_t universe) {
  IntervalFamily f(universe);
  return ExplicitDiscrepancyExact(f, x, s);
}

double BruteSingleton(const std::vector<int64_t>& x,
                      const std::vector<int64_t>& s, int64_t universe) {
  SingletonFamily f(universe);
  return ExplicitDiscrepancyExact(f, x, s);
}

TEST(DiscrepancyTest, EmptyStreamIsZero) {
  EXPECT_DOUBLE_EQ(PrefixDiscrepancy<int64_t>({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(IntervalDiscrepancy<int64_t>({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(SingletonDiscrepancy<int64_t>({}, {}), 0.0);
}

TEST(DiscrepancyTest, EmptySampleIsOne) {
  EXPECT_DOUBLE_EQ(PrefixDiscrepancy<int64_t>({1, 2, 3}, {}), 1.0);
  EXPECT_DOUBLE_EQ(IntervalDiscrepancy<int64_t>({1, 2, 3}, {}), 1.0);
  EXPECT_DOUBLE_EQ(SingletonDiscrepancy<int64_t>({1, 2, 3}, {}), 1.0);
}

TEST(DiscrepancyTest, SampleEqualsStreamIsZero) {
  const std::vector<int64_t> x{5, 1, 9, 1, 7};
  EXPECT_DOUBLE_EQ(PrefixDiscrepancy(x, x), 0.0);
  EXPECT_DOUBLE_EQ(IntervalDiscrepancy(x, x), 0.0);
  EXPECT_DOUBLE_EQ(SingletonDiscrepancy(x, x), 0.0);
}

TEST(DiscrepancyTest, PrefixKnownValue) {
  // Stream 1..4, sample {1}: worst prefix is [1,1]: |1/4 - 1| = 3/4.
  EXPECT_DOUBLE_EQ(PrefixDiscrepancy<int64_t>({1, 2, 3, 4}, {1}), 0.75);
}

TEST(DiscrepancyTest, PrefixSampleOfSmallestElements) {
  // The attack's end state: sample = k smallest of n.
  std::vector<int64_t> stream, sample;
  for (int64_t i = 1; i <= 100; ++i) stream.push_back(i);
  for (int64_t i = 1; i <= 10; ++i) sample.push_back(i);
  // At b = 10: d(X) = 0.1, d(S) = 1.0 -> discrepancy 0.9 = 1 - k/n.
  EXPECT_DOUBLE_EQ(PrefixDiscrepancy(stream, sample), 0.9);
}

TEST(DiscrepancyTest, IntervalCatchesMiddleGap) {
  // Sample misses the middle mass: interval [5, 6] has stream density 1/2
  // and sample density 0.
  const std::vector<int64_t> stream{1, 5, 6, 9};
  const std::vector<int64_t> sample{1, 9};
  EXPECT_DOUBLE_EQ(IntervalDiscrepancy(stream, sample), 0.5);
}

TEST(DiscrepancyTest, IntervalAtLeastPrefix) {
  // Prefixes are intervals [min, b], so interval discrepancy >= prefix
  // discrepancy... (on the same data).
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<int64_t> x, s;
    for (int i = 0; i < 200; ++i) {
      x.push_back(static_cast<int64_t>(rng.NextBelow(50)) + 1);
    }
    for (int i = 0; i < 20; ++i) {
      s.push_back(static_cast<int64_t>(rng.NextBelow(50)) + 1);
    }
    EXPECT_GE(IntervalDiscrepancy(x, s) + 1e-12, PrefixDiscrepancy(x, s));
  }
}

TEST(DiscrepancyTest, PrefixMatchesBruteForceOnRandomInputs) {
  Rng rng(7);
  for (int trial = 0; trial < 30; ++trial) {
    const int64_t universe = 12;
    std::vector<int64_t> x, s;
    const size_t nx = 1 + rng.NextBelow(40);
    const size_t ns = 1 + rng.NextBelow(10);
    for (size_t i = 0; i < nx; ++i) {
      x.push_back(static_cast<int64_t>(rng.NextBelow(universe)) + 1);
    }
    for (size_t i = 0; i < ns; ++i) {
      s.push_back(static_cast<int64_t>(rng.NextBelow(universe)) + 1);
    }
    EXPECT_NEAR(PrefixDiscrepancy(x, s), BrutePrefix(x, s, universe), 1e-12)
        << "trial " << trial;
  }
}

TEST(DiscrepancyTest, IntervalMatchesBruteForceOnRandomInputs) {
  Rng rng(11);
  for (int trial = 0; trial < 30; ++trial) {
    const int64_t universe = 10;
    std::vector<int64_t> x, s;
    const size_t nx = 1 + rng.NextBelow(30);
    const size_t ns = 1 + rng.NextBelow(8);
    for (size_t i = 0; i < nx; ++i) {
      x.push_back(static_cast<int64_t>(rng.NextBelow(universe)) + 1);
    }
    for (size_t i = 0; i < ns; ++i) {
      s.push_back(static_cast<int64_t>(rng.NextBelow(universe)) + 1);
    }
    EXPECT_NEAR(IntervalDiscrepancy(x, s), BruteInterval(x, s, universe),
                1e-12)
        << "trial " << trial;
  }
}

TEST(DiscrepancyTest, SingletonMatchesBruteForceOnRandomInputs) {
  Rng rng(13);
  for (int trial = 0; trial < 30; ++trial) {
    const int64_t universe = 8;
    std::vector<int64_t> x, s;
    const size_t nx = 1 + rng.NextBelow(30);
    const size_t ns = 1 + rng.NextBelow(8);
    for (size_t i = 0; i < nx; ++i) {
      x.push_back(static_cast<int64_t>(rng.NextBelow(universe)) + 1);
    }
    for (size_t i = 0; i < ns; ++i) {
      s.push_back(static_cast<int64_t>(rng.NextBelow(universe)) + 1);
    }
    EXPECT_NEAR(SingletonDiscrepancy(x, s), BruteSingleton(x, s, universe),
                1e-12)
        << "trial " << trial;
  }
}

TEST(DiscrepancyTest, WorksOnDoubles) {
  const std::vector<double> x{0.1, 0.2, 0.3, 0.4};
  const std::vector<double> s{0.1, 0.2};
  // Prefix at 0.2: |0.5 - 1.0| = 0.5.
  EXPECT_DOUBLE_EQ(PrefixDiscrepancy(x, s), 0.5);
}

TEST(DiscrepancyTest, SortedVariantsRequireNoCopy) {
  const std::vector<int64_t> x{1, 2, 3, 4, 5};
  const std::vector<int64_t> s{1, 3, 5};
  EXPECT_DOUBLE_EQ(PrefixDiscrepancySorted(x, s), PrefixDiscrepancy(x, s));
  EXPECT_DOUBLE_EQ(IntervalDiscrepancySorted(x, s), IntervalDiscrepancy(x, s));
}

TEST(DiscrepancyTest, ExplicitExactSimpleFamily) {
  ExplicitFamily<int64_t> f("evens", {[](const int64_t& v) {
                              return v % 2 == 0;
                            }});
  // Stream half even; sample all odd -> |0.5 - 0| = 0.5.
  const std::vector<int64_t> x{1, 2, 3, 4};
  const std::vector<int64_t> s{1, 3};
  EXPECT_DOUBLE_EQ(ExplicitDiscrepancyExact(f, x, s), 0.5);
}

TEST(DiscrepancyTest, SampledNeverExceedsExact) {
  IntervalFamily f(30);
  Rng rng(17);
  std::vector<int64_t> x, s;
  for (int i = 0; i < 100; ++i) {
    x.push_back(static_cast<int64_t>(rng.NextBelow(30)) + 1);
  }
  for (int i = 0; i < 10; ++i) {
    s.push_back(static_cast<int64_t>(rng.NextBelow(30)) + 1);
  }
  const double exact = ExplicitDiscrepancyExact(f, x, s);
  const double sampled = ExplicitDiscrepancySampled(f, x, s, 50, 99);
  EXPECT_LE(sampled, exact + 1e-12);
  // With max_ranges >= |R| the sampled version is exact.
  EXPECT_DOUBLE_EQ(ExplicitDiscrepancySampled(f, x, s, 10000, 99), exact);
}

TEST(DiscrepancyTest, HalfspaceDiscrepancyZeroForIdenticalSets) {
  HalfspaceFamily2D f(8, 21, -2.0, 2.0);
  const std::vector<Point> pts{{0.0, 0.0}, {1.0, 1.0}, {-1.0, 0.5}};
  EXPECT_DOUBLE_EQ(HalfspaceDiscrepancy(f, pts, pts), 0.0);
}

TEST(DiscrepancyTest, HalfspaceDiscrepancyMatchesBruteForce) {
  HalfspaceFamily2D f(6, 9, -1.5, 1.5);
  Rng rng(23);
  std::vector<Point> x, s;
  for (int i = 0; i < 40; ++i) {
    x.push_back(Point{rng.NextDoubleIn(-1, 1), rng.NextDoubleIn(-1, 1)});
  }
  for (int i = 0; i < 8; ++i) {
    s.push_back(Point{rng.NextDoubleIn(-1, 1), rng.NextDoubleIn(-1, 1)});
  }
  EXPECT_NEAR(HalfspaceDiscrepancy(f, x, s),
              ExplicitDiscrepancyExact(f, x, s), 1e-12);
}

TEST(DiscrepancyTest, BoxDiscrepancy1DMatchesInterval) {
  // In 1-D, box discrepancy over data-snapped boxes equals interval
  // discrepancy on the values.
  const std::vector<double> xv{1, 2, 3, 4, 5, 6};
  const std::vector<double> sv{1, 6};
  std::vector<Point> x, s;
  for (double v : xv) x.push_back(Point{v});
  for (double v : sv) s.push_back(Point{v});
  EXPECT_NEAR(BoxDiscrepancyExact(x, s, 1),
              IntervalDiscrepancy<double>(xv, sv), 1e-12);
}

TEST(DiscrepancyTest, BoxDiscrepancy2DDetectsMissingQuadrant) {
  // Stream covers four quadrant corners; sample misses one.
  const std::vector<Point> x{{0, 0}, {0, 1}, {1, 0}, {1, 1}};
  const std::vector<Point> s{{0, 0}, {0, 1}, {1, 0}};
  // Worst box is {1}x{1}: stream density 1/4, sample density 0.
  EXPECT_NEAR(BoxDiscrepancyExact(x, s, 2), 0.25, 1e-12);
}

}  // namespace
}  // namespace robust_sampling
