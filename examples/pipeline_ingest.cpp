// Pipeline quickstart: high-throughput sharded ingestion with mergeable
// snapshots.
//
// 1. Describe the sketch you want with a SketchConfig (any registered
//    kind: robust_sample, reservoir, bernoulli, kll, count_min,
//    misra_gries, space_saving).
// 2. Stand up a ShardedPipeline: N worker shards, each owning an
//    independently seeded instance, fed through SPSC rings by batched
//    ingestion into the samplers' skip-sampling InsertBatch hot path.
//    Batches you own for the duration (like the vector below) can go in
//    zero-copy via IngestBorrowed; transient batches go through Ingest,
//    which materializes them once into a pooled, refcounted buffer
//    shared by all shards (docs/pipeline.md has the full design).
// 3. Take a Snapshot() at any point: per-shard states merge into one
//    summary of the entire stream (for reservoirs, an exactly uniform
//    sample of the union — Theorem 1.2 sizing applies unchanged), and
//    query it through the type-erased surface (Rank / Quantile /
//    HeavyHitters, gated by Capabilities()) — no downcasts.
//
// Build & run:  ./build/example_pipeline_ingest

#include <cstdint>
#include <iostream>
#include <span>
#include <vector>

#include "pipeline/sharded_pipeline.h"
#include "pipeline/sketch_registry.h"
#include "pipeline/stream_sketch.h"
#include "stream/generators.h"

int main() {
  namespace rs = robust_sampling;

  // --- 1. Declare the sketch ------------------------------------------
  rs::SketchConfig config;
  config.kind = "robust_sample";  // Theorem 1.2-sized reservoir sample
  config.eps = 0.1;
  config.delta = 0.05;
  config.universe_size = uint64_t{1} << 20;  // prefix family, ln|R| = ln|U|
  config.seed = 7;
  std::cout << "sketch: " << rs::DescribeSketchConfig(config) << "\n";

  // --- 2. Run batches through a 4-shard pipeline ----------------------
  rs::PipelineOptions options;
  options.num_shards = 4;
  options.partition = rs::PartitionPolicy::kRoundRobin;
  rs::ShardedPipeline<int64_t> pipeline(config, options);

  const auto stream = rs::UniformIntStream(
      2'000'000, static_cast<int64_t>(config.universe_size), /*seed=*/11);
  const size_t batch = 1 << 16;
  for (size_t i = 0; i < stream.size(); i += batch) {
    const size_t len = std::min(batch, stream.size() - i);
    // `stream` outlives the next Flush/Snapshot, so the shards can read
    // it in place — zero-copy. (With transient batch memory, call
    // pipeline.Ingest(...) instead; the snapshots are bit-identical.)
    pipeline.IngestBorrowed(std::span<const int64_t>(stream.data() + i, len));
  }

  // --- 3. Merge the shards and query the global sample ----------------
  rs::StreamSketch<int64_t> snapshot = pipeline.Snapshot();
  std::cout << "ingested " << snapshot.StreamSize() << " elements across "
            << pipeline.num_shards() << " shards; merged sample holds "
            << snapshot.SpaceItems() << " of them\n";

  // Rank(x) is the merged sample's prefix-density estimate; the same
  // handle would answer Quantile / EstimateFrequency / HeavyHitters.
  for (int64_t shift : {18, 19}) {
    const int64_t threshold = int64_t{1} << shift;
    const double density = snapshot.Rank(static_cast<double>(threshold));
    std::cout << "estimated density of [1, 2^" << shift << "]: " << density
              << "  (truth for uniform data: "
              << static_cast<double>(threshold) /
                     static_cast<double>(config.universe_size)
              << ", guarantee: +/-" << config.eps << ")\n";
  }

  // Any registered kind runs behind the same interface — e.g. heavy
  // hitters via SpaceSaving, merged across the same sharded topology.
  rs::SketchConfig hh_config;
  hh_config.kind = "space_saving";
  hh_config.eps = 0.01;  // 100 counters
  rs::ShardedPipeline<int64_t> hh_pipeline(hh_config, options);
  const auto skewed = rs::ZipfIntStream(500'000, 100'000, 1.3, /*seed=*/13);
  hh_pipeline.Ingest(skewed);
  const auto hh_snapshot = hh_pipeline.Snapshot();
  std::cout << "\ntop heavy hitters of a Zipf(1.3) stream ("
            << hh_snapshot.Name() << "):\n";
  int shown = 0;
  for (const auto& hit : hh_snapshot.HeavyHitters(0.02)) {
    std::cout << "  element " << hit.element << "  freq ~ " << hit.frequency
              << "\n";
    if (++shown == 5) break;
  }
  return 0;
}
