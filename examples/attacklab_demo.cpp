// AttackLab quickstart: one command that plays the paper's two-player game
// (Fig. 1) for two sampler configurations against the Fig. 3 bisection
// attack and prints the robust / non-robust separation:
//
//   * an undersized plain reservoir (k = 4) is driven far past eps, while
//   * a RobustSample sized by Theorem 1.2 for the same set system stays
//     eps-accurate in every trial.
//
// Both samplers and the adversary are instantiated by string key from
// SketchRegistry / AdversaryRegistry; trials run on all hardware threads
// with results identical to a serial run (see RunTrialsParallel).
//
//   ./build/example_attacklab_demo

#include <cstdint>
#include <iostream>

#include "attacklab/game_driver.h"
#include "core/big_uint.h"
#include "harness/table.h"

int main() {
  using namespace robust_sampling;

  GameSpec spec;
  spec.adversary = "bisection";
  spec.n = 2000;
  spec.eps = 0.5;              // game verdict threshold
  spec.trials = 8;
  spec.base_seed = 0xDE30;
  spec.sketch.log_universe = 200.0;  // ln N = 200: Theorem 1.3 scale

  std::cout << "# AttackLab: bisection attack vs reservoir sampling\n"
            << "prefix family with ln N = " << spec.sketch.log_universe
            << ", n = " << spec.n << ", eps = " << spec.eps << ", "
            << spec.trials << " trials per row\n\n";

  MarkdownTable table({"sampler", "adversary", "mean disc", "min disc",
                       "Pr[disc<=eps]", "robust"});
  // Row 1: plain reservoir, far below the Theorem 1.2 size.
  spec.sketch.kind = "reservoir";
  spec.sketch.capacity = 4;
  const GameReport attacked = PlayGame<BigUint>(spec);
  table.AddRow({attacked.sketch_name, attacked.adversary_name,
                FormatDouble(attacked.discrepancy.mean, 4),
                FormatDouble(attacked.discrepancy.min, 4),
                FormatDouble(attacked.FractionRobust(spec.eps), 2),
                FormatBool(attacked.FractionRobust(spec.eps) >= 0.9)});

  // Row 2: RobustSample, sized by Theorem 1.2 for ln|R| = 200.
  spec.sketch.kind = "robust_sample";
  spec.sketch.capacity = 0;
  spec.sketch.eps = 0.5;
  spec.sketch.delta = 0.2;
  const GameReport robust = PlayGame<BigUint>(spec);
  table.AddRow({robust.sketch_name, robust.adversary_name,
                FormatDouble(robust.discrepancy.mean, 4),
                FormatDouble(robust.discrepancy.min, 4),
                FormatDouble(robust.FractionRobust(spec.eps), 2),
                FormatBool(robust.FractionRobust(spec.eps) >= 0.9)});
  table.Print(std::cout);

  std::cout << "\nSeparation: the adaptive adversary defeats the "
               "classically-sized sample and loses to the Theorem 1.2 "
               "size — the paper's headline result, reproduced in one "
               "command.\n";

  const bool separated = attacked.FractionRobust(spec.eps) == 0.0 &&
                         robust.FractionRobust(spec.eps) == 1.0;
  if (!separated) {
    std::cerr << "FAILED: expected a clean robust/non-robust separation\n";
    return 1;
  }
  return 0;
}
