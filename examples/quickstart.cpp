// Quickstart: the library in five minutes.
//
// 1. Size a reservoir with Theorem 1.2 so it is robust against *adaptive*
//    adversaries (not just fixed streams).
// 2. Stream data through it.
// 3. Check the sample really is an eps-approximation.
// 4. Watch the Fig. 3 bisection attack defeat an undersized sample.
//
// Build & run:  ./build/examples/example_quickstart

#include <cmath>
#include <cstdint>
#include <iostream>
#include <vector>

#include "adversary/bisection_adversary.h"
#include "core/adversarial_game.h"
#include "core/big_uint.h"
#include "core/reservoir_sampler.h"
#include "core/sample_bounds.h"
#include "setsystem/discrepancy.h"
#include "stream/generators.h"

int main() {
  namespace rs = robust_sampling;

  // --- 1. Pick a target guarantee and size the sample ----------------
  const double eps = 0.1;    // max density error for every range
  const double delta = 0.05;  // failure probability
  const int64_t universe = 1 << 20;
  // Set system: all prefixes [1, b] of the universe (quantile semantics).
  // ln|R| = ln universe; Theorem 1.2 gives the adversarially robust size.
  const double log_r = std::log(static_cast<double>(universe));
  const size_t k = rs::ReservoirRobustK(eps, delta, log_r);
  std::cout << "Theorem 1.2 reservoir size for (eps=" << eps
            << ", delta=" << delta << ", ln|R|=" << log_r << "): k = " << k
            << "\n";

  // --- 2. Stream data through the sampler ----------------------------
  rs::ReservoirSampler<int64_t> sampler(k, /*seed=*/1);
  const auto stream = rs::ZipfIntStream(200000, universe, 1.05, /*seed=*/2);
  for (int64_t x : stream) sampler.Insert(x);
  std::cout << "Streamed " << sampler.stream_size() << " elements; sample "
            << "holds " << sampler.sample().size() << ".\n";

  // --- 3. Verify the eps-approximation property ----------------------
  const double disc = rs::PrefixDiscrepancy(stream, sampler.sample());
  std::cout << "Prefix (Kolmogorov-Smirnov) discrepancy: " << disc
            << (disc <= eps ? "  <= eps: representative sample."
                            : "  > eps (should happen w.p. <= delta).")
            << "\n\n";

  // --- 4. The attack: why the VC-sized sample is not enough ----------
  // An adversary that sees the sample after every insertion runs the
  // paper's bisection strategy (Fig. 3). Against a small sample it ends
  // with the sample = the smallest elements of the stream.
  const size_t small_k = 8;
  rs::ReservoirSampler<rs::BigUint> victim(small_k, /*seed=*/3);
  rs::BisectionAdversaryBig attacker(rs::BigUint::ApproxExp(300.0), 0.99);
  const auto result = rs::RunAdaptiveGame<rs::BigUint>(
      victim, attacker, /*n=*/4000,
      [](const std::vector<rs::BigUint>& x,
         const std::vector<rs::BigUint>& s) {
        return rs::PrefixDiscrepancy(x, s);
      },
      eps);
  std::cout << "Bisection attack vs k=" << small_k
            << " reservoir: discrepancy = " << result.discrepancy
            << " (maximally unrepresentative; Theorem 1.3).\n";
  std::cout << "The fix is not more VC dimension - it is k = "
               "Theta(ln|R|/eps^2) (Theorem 1.2).\n";
  return 0;
}
