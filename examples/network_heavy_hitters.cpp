// Scenario: a network device samples packets to find heavy-hitter flows
// (paper intro: "A network device routes traffic according to statistics
// pulled from a sampled substream of packets"; an adversary generating a
// small amount of adversarial traffic [NY15] must not be able to hide a
// heavy flow or frame an innocent one).
//
// Demonstrates Corollary 1.6: the reservoir-sampled frequency estimator
// honors the (alpha, eps) heavy-hitter contract under adaptive traffic,
// side by side with the deterministic Misra-Gries baseline; a CountMin
// sketch is shown being framed by collision stuffing.
//
// Build & run:  ./build/examples/example_network_heavy_hitters

#include <cstdint>
#include <iostream>
#include <vector>

#include "core/random.h"
#include "core/sample_bounds.h"
#include "heavy/count_min.h"
#include "heavy/exact_counter.h"
#include "heavy/misra_gries.h"
#include "heavy/sample_heavy_hitters.h"
#include "stream/zipf.h"

int main() {
  namespace rs = robust_sampling;
  const double alpha = 0.1;  // "heavy" = >= 10% of packets
  const double eps = 0.09;
  const double delta = 0.05;
  const int64_t flows = 1 << 16;
  const size_t n = 120000;

  const size_t k = rs::HeavyHitterK(eps, delta, flows);
  std::cout << "Flow monitoring: " << n << " packets over " << flows
            << " flows; Cor. 1.6 sample size k = " << k << ".\n";

  rs::SampleHeavyHitters sampled(k, /*seed=*/5);
  rs::MisraGries mg(100);
  rs::ExactCounter exact;
  rs::ZipfDistribution zipf(flows, 1.1);
  rs::Rng rng(17);

  // Adaptive attacker: watches the sampled estimate of flow 2 and tries to
  // keep it looking light while actually pushing it heavy (every 3rd
  // packet is attacker-controlled).
  const int64_t target = 2;
  for (size_t i = 0; i < n; ++i) {
    int64_t flow;
    if (i % 3 == 2) {
      const double est = sampled.EstimateFrequency(target);
      const double truth = exact.EstimateFrequency(target);
      flow = est >= truth ? zipf.Sample(rng) : target;
    } else {
      flow = zipf.Sample(rng);
    }
    sampled.Insert(flow);
    mg.Insert(flow);
    exact.Insert(flow);
  }

  std::cout << "\nTrue heavy flows (f >= " << alpha << "):\n";
  for (const auto& h : exact.HeavyHitters(alpha)) {
    std::printf("  flow %-6lld f = %.4f\n",
                static_cast<long long>(h.element), h.frequency);
  }

  std::cout << "\nReported by the robust sample (threshold alpha - eps/3):\n";
  bool contract_ok = true;
  for (const auto& h : sampled.Report(alpha, eps)) {
    const double truth = exact.EstimateFrequency(h.element);
    std::printf("  flow %-6lld sample f = %.4f  (true f = %.4f)\n",
                static_cast<long long>(h.element), h.frequency, truth);
    if (truth <= alpha - eps) contract_ok = false;
  }
  for (const auto& h : exact.HeavyHitters(alpha)) {
    bool found = false;
    for (const auto& r : sampled.Report(alpha, eps)) {
      found |= r.element == h.element;
    }
    if (!found) contract_ok = false;
  }
  std::cout << "(alpha, eps) contract " << (contract_ok ? "HELD" : "BROKEN")
            << " under adaptive traffic.\n";

  std::cout << "\nMisra-Gries (deterministic, inherently robust) reports:\n";
  for (const auto& h : mg.HeavyHitters(alpha - eps / 3)) {
    std::printf("  flow %-6lld est f = %.4f\n",
                static_cast<long long>(h.element), h.frequency);
  }

  // Contrast: framing an innocent flow on a CountMin sketch.
  rs::CountMinSketch cm(64, 2, 23);
  const int64_t innocent = 424242;
  std::vector<int64_t> colliders;
  for (int64_t x = 1; colliders.size() < 16 && x < 10000000; ++x) {
    bool all = true;
    for (size_t r = 0; r < cm.depth(); ++r) {
      all &= cm.Bucket(r, x) == cm.Bucket(r, innocent);
    }
    if (all) colliders.push_back(x);
  }
  for (int round = 0; round < 50; ++round) {
    for (int64_t c : colliders) cm.Insert(c);
  }
  std::cout << "\nCountMin contrast: flow " << innocent
            << " was never sent, yet its estimated frequency is "
            << cm.EstimateFrequency(innocent)
            << " after adaptive collision stuffing - linear sketches are "
               "not adversarially robust [HW13].\n";
  return 0;
}
