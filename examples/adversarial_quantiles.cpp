// Scenario: a high-frequency trading monitor keeps running quantiles of an
// order-price stream (paper intro: "A competitor might fool the sampling
// algorithm by observing its requests and modifying future stock orders
// accordingly"). The competitor sees which orders the monitor retained and
// plays the bisection strategy to push the monitor's median estimate off.
//
// Demonstrates Corollary 1.5: a reservoir sized by the *cardinality* bound
// keeps every quantile within eps rank error under the attack, while an
// undersized reservoir would be fooled; the GK deterministic summary is
// shown as the (more expensive per element) robust reference.
//
// Build & run:  ./build/examples/example_adversarial_quantiles

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <iostream>
#include <vector>

#include "adversary/bisection_adversary.h"
#include "core/random.h"
#include "core/reservoir_sampler.h"
#include "core/sample_bounds.h"
#include "quantiles/exact_quantiles.h"
#include "quantiles/gk_sketch.h"

int main() {
  namespace rs = robust_sampling;
  const double eps = 0.1, delta = 0.05;
  const size_t n = 50000;

  // Prices are doubles in (0, 1); the effective well-ordered universe an
  // attacker can exploit at double precision has ln|U| ~ 40.
  const size_t k = rs::ReservoirRobustK(eps, delta, 40.0);
  std::cout << "Monitoring " << n << " orders with a Cor. 1.5 reservoir of "
            << k << " orders (and a GK summary for reference).\n";

  rs::ReservoirSampler<double> monitor(k, /*seed=*/7);
  rs::GkSketch gk(eps / 2);
  rs::ExactQuantiles truth;
  rs::BisectionAdversaryDouble competitor(0.0, 1.0, 0.9);
  rs::Rng filler(99);

  for (size_t i = 1; i <= n; ++i) {
    // The competitor sees the monitor's retained orders and reacts; once
    // it runs out of price precision it blends into background traffic.
    double price = competitor.NextElement(monitor.sample(), i);
    if (competitor.exhausted()) price = filler.NextDouble();
    monitor.Insert(price);
    gk.Insert(price);
    truth.Insert(price);
    competitor.Observe(monitor.sample(), monitor.last_kept(), i);
  }

  std::cout << "\nquantile | truth    | reservoir | GK       | rank err "
               "(reservoir)\n";
  std::vector<double> sample = monitor.sample();
  std::sort(sample.begin(), sample.end());
  double worst = 0.0;
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    const double m = static_cast<double>(sample.size());
    int64_t idx = static_cast<int64_t>(std::ceil(q * m)) - 1;
    idx = std::clamp(idx, int64_t{0},
                     static_cast<int64_t>(sample.size()) - 1);
    const double est = sample[static_cast<size_t>(idx)];
    const double err = truth.RankError(q, est);
    worst = std::max(worst, err);
    std::printf("   %4.2f  | %.6f | %.6f  | %.6f | %.4f\n", q,
                truth.Quantile(q), est, gk.Quantile(q), err);
  }
  std::cout << "\nWorst rank error " << worst << " vs target eps = " << eps
            << (worst <= eps ? "  -> the competitor learned nothing useful."
                             : "  -> sample too small!")
            << "\n";
  return 0;
}
