// Scenario: a distributed database front-end routes each incoming query to
// one of K query-processing servers uniformly at random (paper Section
// 1.2, "Sampling in modern data-processing systems"). Each server tunes
// its query optimizer from the substream it sees — which is exactly a
// Bernoulli(1/K) sample of the workload. Is that safe if the workload
// shifts adversarially?
//
// The example routes an adaptive workload (an adversary observing the
// routing decisions and bisecting against server 0), then checks that
// every server's substream still represents the global workload.
//
// Build & run:  ./build/examples/example_distributed_load_balancing

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <iostream>
#include <vector>

#include "adversary/bisection_adversary.h"
#include "core/sample_bounds.h"
#include "distributed/load_balancer.h"
#include "setsystem/discrepancy.h"
#include "stream/generators.h"

int main() {
  namespace rs = robust_sampling;
  const int servers = 8;
  const size_t n = 160000;
  const double eps = 0.05;

  rs::LoadBalancedCluster cluster(servers, /*seed=*/3);

  // Adversarial mix: half Zipf background, half chosen by an attacker who
  // sees where every query landed and runs the bisection strategy against
  // server 0 ("sampled" = landed on server 0).
  rs::BisectionAdversaryInt64 attacker(int64_t{1} << 62,
                                       1.0 - 1.0 / servers);
  const auto background = rs::ZipfIntStream(n, 1 << 20, 1.1, /*seed=*/9);
  for (size_t i = 1; i <= n; ++i) {
    int64_t query;
    if (i % 2 == 0) {
      query = attacker.NextElement(cluster.ServerStream(0), i);
    } else {
      query = background[i - 1];
    }
    const int server = cluster.Route(query);
    if (i % 2 == 0) {
      attacker.Observe(cluster.ServerStream(0), server == 0, i);
    }
  }

  std::cout << "Routed " << cluster.TotalQueries() << " queries to "
            << servers << " servers.\n\nserver | load   | KS discrepancy "
            << "vs global workload\n";
  const auto loads = cluster.Loads();
  const auto discs = cluster.PerServerPrefixDiscrepancy();
  double worst = 0.0;
  for (int s = 0; s < servers; ++s) {
    worst = std::max(worst, discs[s]);
    std::printf("  %2d   | %6zu | %.4f%s\n", s, loads[s], discs[s],
                s == 0 ? "   <- under direct attack" : "");
  }

  const double p_needed = rs::BernoulliRobustP(
      eps, 0.05, 62.0 * std::log(2.0), n);
  std::cout << "\nWorst per-server discrepancy: " << worst << " (target eps "
            << eps << ").\n";
  std::cout << "Theory check (Thm 1.2): routing fraction 1/K = "
            << 1.0 / servers << " vs required p = " << p_needed << " -> "
            << (1.0 / servers >= p_needed ? "provably robust."
                                          : "below the proven bound.")
            << "\n";
  std::cout << "Random routing keeps every optimizer's view representative "
               "- even the attacked server's. Random sampling is not a "
               "risk here (paper Section 1.2).\n";
  return 0;
}
