#ifndef ROBUST_SAMPLING_PIPELINE_SKETCH_CONFIG_H_
#define ROBUST_SAMPLING_PIPELINE_SKETCH_CONFIG_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/random.h"

namespace robust_sampling {

/// Declarative description of one sketch/sampler instance, consumed by
/// SketchRegistry<T>::Create. One struct covers every built-in kind; each
/// factory reads the fields it needs and ignores the rest, deriving
/// unset capacities from the paper's bounds (core/sample_bounds.h).
///
/// Every built-in kind, the knobs it reads, their defaults and valid
/// ranges are documented in docs/registry.md.
struct SketchConfig {
  /// Registry key. Built-ins: "robust_sample", "reservoir", "bernoulli",
  /// "kll", "count_min", "misra_gries", "space_saving".
  std::string kind = "robust_sample";

  /// Accuracy / failure-probability targets, both in (0, 1). Used to derive
  /// capacities that are left at 0 (Theorem 1.2 / Corollary 1.5 / 1.6
  /// sizing for the samplers, eps-driven counter budgets for the
  /// deterministic summaries).
  double eps = 0.1;
  double delta = 0.05;

  /// Universe size |U| for set-system sizing (prefix/singleton families:
  /// ln|R| = ln|U|).
  uint64_t universe_size = uint64_t{1} << 20;

  /// Direct ln|R| override for set systems whose cardinality exceeds what
  /// a uint64 universe_size can express (Theorem 1.3's universes have
  /// ln N = Theta((ln n)^2), far past 2^64). When > 0 it takes precedence
  /// over ln(universe_size) everywhere a factory needs ln|R|.
  double log_universe = -1.0;

  /// Explicit capacity: reservoir k / KLL k / Misra-Gries / SpaceSaving
  /// counter budget. 0 means "derive from eps/delta/universe_size".
  size_t capacity = 0;

  /// Bernoulli sampling probability; negative means "derive from
  /// eps/delta/universe_size/expected_stream_size via Theorem 1.2".
  double probability = -1.0;

  /// Anticipated stream length, needed only to derive a Bernoulli p.
  uint64_t expected_stream_size = 10'000'000;

  /// CountMin geometry.
  size_t width = 2048;
  size_t depth = 4;

  /// Base seed. Per-shard instances are seeded with MixSeed(seed, shard);
  /// sketches whose mergeability requires shared randomness (CountMin row
  /// hashes) use `seed` directly so all shards agree.
  uint64_t seed = Rng::kDefaultSeed;
};

/// Human-readable one-line description ("kind(param=..., ...)"), for bench
/// and example output. Aborts on invalid eps/delta.
std::string DescribeSketchConfig(const SketchConfig& config);

/// The ln|R| this config resolves to: `log_universe` when set (> 0),
/// otherwise ln(universe_size).
double EffectiveLogUniverse(const SketchConfig& config);

}  // namespace robust_sampling

#endif  // ROBUST_SAMPLING_PIPELINE_SKETCH_CONFIG_H_
