#ifndef ROBUST_SAMPLING_PIPELINE_SKETCH_REGISTRY_H_
#define ROBUST_SAMPLING_PIPELINE_SKETCH_REGISTRY_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/check.h"
#include "core/sample_bounds.h"
#include "pipeline/sketch_config.h"
#include "pipeline/stream_sketch.h"

namespace robust_sampling {

/// String-keyed factory registry: instantiates any supported sketch kind
/// from a SketchConfig, behind the type-erased StreamSketch<T> interface.
/// This is how the pipeline (and any config-driven service layer above it)
/// names algorithms without compile-time coupling to their types.
///
/// `Global()` returns the process-wide registry for element type T with
/// the built-in kinds pre-registered; `Register` adds custom kinds (e.g.
/// an application-specific sketch) at runtime. Creation is thread-safe;
/// registration is serialized with creation by a mutex.
///
/// Custom kinds get queryability for free: whatever optional capability
/// hooks their adapter implements (SampleView / Quantile / Rank /
/// EstimateFrequency / HeavyHitters / SerializeTo+DeserializeFrom — see
/// pipeline/stream_sketch.h) are discovered at Wrap time and served
/// through the erased handle, which also qualifies sample-view-capable
/// kinds for AttackLab games via AnySampler<T>::FromConfig and
/// serialize-capable kinds for cross-process revival via
/// wire::ReadSnapshot (a snapshot blob names its kind key, and this
/// registry reconstructs the instance before its state is loaded). No
/// registry-side declaration is needed.
///
/// Seeding contract: `Create(config, instance_seed)` passes
/// `instance_seed` to sketches whose randomness must be *independent*
/// across instances (samplers, KLL compaction coins) and `config.seed` to
/// randomness that must be *shared* for mergeability (CountMin row
/// hashes). ShardedPipeline derives instance seeds as
/// MixSeed(config.seed, shard).
template <typename T>
class SketchRegistry {
 public:
  using Factory =
      std::function<StreamSketch<T>(const SketchConfig&, uint64_t)>;

  /// The process-wide registry for element type T.
  static SketchRegistry& Global() {
    static SketchRegistry* registry = new SketchRegistry(BuiltinsTag{});
    return *registry;
  }

  /// An empty registry (no built-ins); mainly for tests.
  SketchRegistry() = default;

  /// Registers a new kind. Aborts on duplicate keys or empty factories.
  void Register(const std::string& kind, Factory factory) {
    RS_CHECK_MSG(static_cast<bool>(factory), "null sketch factory");
    std::lock_guard<std::mutex> lock(mu_);
    const bool inserted =
        factories_.emplace(kind, std::move(factory)).second;
    RS_CHECK_MSG(inserted, "duplicate sketch kind registration");
  }

  bool Contains(const std::string& kind) const {
    std::lock_guard<std::mutex> lock(mu_);
    return factories_.count(kind) > 0;
  }

  /// All registered kinds, sorted.
  std::vector<std::string> Kinds() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::string> out;
    out.reserve(factories_.size());
    for (const auto& [kind, factory] : factories_) out.push_back(kind);
    return out;
  }

  /// Instantiates `config.kind` with the given instance seed. Aborts on
  /// unknown kinds.
  StreamSketch<T> Create(const SketchConfig& config,
                         uint64_t instance_seed) const {
    Factory factory;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = factories_.find(config.kind);
      RS_CHECK_MSG(it != factories_.end(), "unknown sketch kind");
      factory = it->second;
    }
    return factory(config, instance_seed);
  }

  /// Instantiates `config.kind` seeded with config.seed.
  StreamSketch<T> Create(const SketchConfig& config) const {
    return Create(config, config.seed);
  }

 private:
  struct BuiltinsTag {};

  static double LogUniverse(const SketchConfig& c) {
    return EffectiveLogUniverse(c);
  }

  static size_t CounterBudget(const SketchConfig& c) {
    if (c.capacity > 0) return c.capacity;
    return static_cast<size_t>(std::ceil(1.0 / c.eps));
  }

  explicit SketchRegistry(BuiltinsTag) {
    Register("robust_sample",
             [](const SketchConfig& c, uint64_t seed) {
               typename RobustSample<T>::Options options;
               options.eps = c.eps;
               options.delta = c.delta;
               options.log_cardinality = LogUniverse(c);
               options.seed = seed;
               return StreamSketch<T>::Wrap(RobustSampleAdapter<T>(
                   RobustSample<T>::ForSetSystem(options)));
             });
    Register("reservoir",
             [](const SketchConfig& c, uint64_t seed) {
               const size_t k =
                   c.capacity > 0
                       ? c.capacity
                       : ReservoirRobustK(c.eps, c.delta, LogUniverse(c));
               return StreamSketch<T>::Wrap(
                   ReservoirAdapter<T>(ReservoirSampler<T>(k, seed)));
             });
    Register("bernoulli",
             [](const SketchConfig& c, uint64_t seed) {
               const double p =
                   c.probability >= 0.0
                       ? c.probability
                       : BernoulliRobustP(c.eps, c.delta, LogUniverse(c),
                                          c.expected_stream_size);
               return StreamSketch<T>::Wrap(
                   BernoulliAdapter<T>(BernoulliSampler<T>(p, seed)));
             });
    if constexpr (std::is_convertible_v<T, double>) {
      Register("kll", [](const SketchConfig& c, uint64_t seed) {
        const size_t k =
            c.capacity > 0
                ? c.capacity
                : std::max<size_t>(
                      8, static_cast<size_t>(std::ceil(2.0 / c.eps)));
        return StreamSketch<T>::Wrap(KllAdapter<T>(KllSketch(k, seed)));
      });
    }
    if constexpr (std::is_convertible_v<T, int64_t>) {
      Register("count_min", [](const SketchConfig& c, uint64_t) {
        // Row hashes come from config.seed (not the instance seed) so that
        // per-shard instances agree and stay mergeable.
        return StreamSketch<T>::Wrap(CountMinAdapter<T>(
            CountMinSketch(c.width, c.depth, c.seed)));
      });
      Register("misra_gries", [](const SketchConfig& c, uint64_t) {
        return StreamSketch<T>::Wrap(
            MisraGriesAdapter<T>(MisraGries(CounterBudget(c))));
      });
      Register("space_saving", [](const SketchConfig& c, uint64_t) {
        return StreamSketch<T>::Wrap(
            SpaceSavingAdapter<T>(SpaceSaving(CounterBudget(c))));
      });
    }
  }

  mutable std::mutex mu_;
  std::map<std::string, Factory> factories_;
};

}  // namespace robust_sampling

#endif  // ROBUST_SAMPLING_PIPELINE_SKETCH_REGISTRY_H_
