#ifndef ROBUST_SAMPLING_PIPELINE_STREAM_SKETCH_H_
#define ROBUST_SAMPLING_PIPELINE_STREAM_SKETCH_H_

#include <concepts>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/bernoulli_sampler.h"
#include "core/check.h"
#include "core/reservoir_sampler.h"
#include "core/robust_sample.h"
#include "heavy/count_min.h"
#include "heavy/misra_gries.h"
#include "heavy/space_saving.h"
#include "quantiles/kll_sketch.h"

namespace robust_sampling {

/// The uniform surface every pipeline-driveable sketch adapter must offer.
/// Adapters (below) bridge concrete samplers/sketches — whatever their
/// native element type and merge spelling — onto this shape.
template <typename A, typename T>
concept SketchAdapter = requires(A a, const A ca, const T& x,
                                 std::span<const T> xs) {
  { a.Insert(x) };
  { a.InsertBatch(xs) };
  { a.MergeFrom(ca) };
  { ca.StreamSize() } -> std::convertible_to<size_t>;
  { ca.SpaceItems() } -> std::convertible_to<size_t>;
  { ca.Name() } -> std::convertible_to<std::string>;
} && std::copy_constructible<A>;

/// Type-erased handle to one streaming sketch/sampler instance.
///
/// The pipeline drives heterogeneous summaries (reservoir samples, KLL,
/// CountMin, ...) through this one interface: batched insertion, merge of
/// same-kind instances, and size introspection. Queries remain
/// kind-specific — callers downcast with `TryAs<Adapter>()` and use the
/// adapter's `sketch()` accessor, so the type-erasure tax is paid only on
/// the ingest boundary (once per batch), never per element or per query.
///
/// Copying a StreamSketch deep-copies the underlying sketch (used by
/// ShardedPipeline::Snapshot to fold per-shard states without disturbing
/// ingestion).
template <typename T>
class StreamSketch {
 public:
  /// Empty handle; every operation except `valid()` aborts until assigned.
  StreamSketch() = default;

  /// Wraps an adapter instance.
  template <SketchAdapter<T> A>
  static StreamSketch Wrap(A adapter) {
    StreamSketch s;
    s.model_ = std::make_unique<Model<A>>(std::move(adapter));
    return s;
  }

  StreamSketch(const StreamSketch& other)
      : model_(other.model_ ? other.model_->Clone() : nullptr) {}
  StreamSketch& operator=(const StreamSketch& other) {
    if (this != &other) {
      model_ = other.model_ ? other.model_->Clone() : nullptr;
    }
    return *this;
  }
  StreamSketch(StreamSketch&&) noexcept = default;
  StreamSketch& operator=(StreamSketch&&) noexcept = default;

  bool valid() const { return model_ != nullptr; }

  /// Processes one stream element.
  void Insert(const T& x) {
    RS_CHECK_MSG(model_ != nullptr, "empty StreamSketch");
    model_->Insert(x);
  }

  /// Processes a batch of stream elements (the pipeline hot path).
  void InsertBatch(std::span<const T> xs) {
    RS_CHECK_MSG(model_ != nullptr, "empty StreamSketch");
    model_->InsertBatch(xs);
  }

  /// Folds `other` into this sketch. Both handles must wrap the same
  /// adapter type (verified at runtime); the underlying Merge defines the
  /// semantics (uniform subsample of the union, counter addition, ...).
  void MergeFrom(const StreamSketch& other) {
    RS_CHECK_MSG(model_ != nullptr && other.model_ != nullptr,
                 "empty StreamSketch");
    model_->MergeFrom(*other.model_);
  }

  /// Number of stream elements processed.
  size_t StreamSize() const {
    RS_CHECK_MSG(model_ != nullptr, "empty StreamSketch");
    return model_->StreamSize();
  }

  /// Number of items/counters currently retained.
  size_t SpaceItems() const {
    RS_CHECK_MSG(model_ != nullptr, "empty StreamSketch");
    return model_->SpaceItems();
  }

  /// Algorithm name for reports.
  std::string Name() const {
    RS_CHECK_MSG(model_ != nullptr, "empty StreamSketch");
    return model_->Name();
  }

  /// Downcast to a concrete adapter for kind-specific queries; nullptr if
  /// this handle wraps a different adapter type.
  template <SketchAdapter<T> A>
  A* TryAs() {
    auto* m = dynamic_cast<Model<A>*>(model_.get());
    return m ? &m->adapter() : nullptr;
  }
  template <SketchAdapter<T> A>
  const A* TryAs() const {
    const auto* m = dynamic_cast<const Model<A>*>(model_.get());
    return m ? &m->adapter() : nullptr;
  }

  /// Downcast that aborts instead of returning nullptr.
  template <SketchAdapter<T> A>
  A& As() {
    A* a = TryAs<A>();
    RS_CHECK_MSG(a != nullptr, "StreamSketch wraps a different sketch type");
    return *a;
  }
  template <SketchAdapter<T> A>
  const A& As() const {
    const A* a = TryAs<A>();
    RS_CHECK_MSG(a != nullptr, "StreamSketch wraps a different sketch type");
    return *a;
  }

 private:
  struct Concept {
    virtual ~Concept() = default;
    virtual void Insert(const T& x) = 0;
    virtual void InsertBatch(std::span<const T> xs) = 0;
    virtual void MergeFrom(const Concept& other) = 0;
    virtual size_t StreamSize() const = 0;
    virtual size_t SpaceItems() const = 0;
    virtual std::string Name() const = 0;
    virtual std::unique_ptr<Concept> Clone() const = 0;
  };

  template <SketchAdapter<T> A>
  struct Model final : Concept {
    explicit Model(A a) : adapter_(std::move(a)) {}
    void Insert(const T& x) override { adapter_.Insert(x); }
    void InsertBatch(std::span<const T> xs) override {
      adapter_.InsertBatch(xs);
    }
    void MergeFrom(const Concept& other) override {
      const auto* peer = dynamic_cast<const Model*>(&other);
      RS_CHECK_MSG(peer != nullptr,
                   "cannot merge StreamSketches of different kinds");
      adapter_.MergeFrom(peer->adapter_);
    }
    size_t StreamSize() const override { return adapter_.StreamSize(); }
    size_t SpaceItems() const override { return adapter_.SpaceItems(); }
    std::string Name() const override { return adapter_.Name(); }
    std::unique_ptr<Concept> Clone() const override {
      return std::make_unique<Model>(adapter_);
    }
    A& adapter() { return adapter_; }
    const A& adapter() const { return adapter_; }

    A adapter_;
  };

  std::unique_ptr<Concept> model_;
};

// ---------------------------------------------------------------------------
// Built-in adapters. Each wraps one concrete summary and exposes it through
// `sketch()` for kind-specific queries (EstimateDensity, Quantile, ...).
// ---------------------------------------------------------------------------

/// RobustSample<T> behind the uniform surface (the paper's Theorem 1.2
/// sampler; merge = uniform subsample of the union at unchanged eps/delta).
template <typename T>
class RobustSampleAdapter {
 public:
  explicit RobustSampleAdapter(RobustSample<T> s) : s_(std::move(s)) {}
  void Insert(const T& x) { s_.Insert(x); }
  void InsertBatch(std::span<const T> xs) { s_.InsertBatch(xs); }
  void MergeFrom(const RobustSampleAdapter& other) { s_.Merge(other.s_); }
  size_t StreamSize() const { return s_.stream_size(); }
  size_t SpaceItems() const { return s_.sample().size(); }
  std::string Name() const {
    return "robust_sample(k=" + std::to_string(s_.capacity()) + ")";
  }
  RobustSample<T>& sketch() { return s_; }
  const RobustSample<T>& sketch() const { return s_; }

 private:
  RobustSample<T> s_;
};

/// Plain ReservoirSampler<T> (Algorithm R) behind the uniform surface.
template <typename T>
class ReservoirAdapter {
 public:
  explicit ReservoirAdapter(ReservoirSampler<T> s) : s_(std::move(s)) {}
  void Insert(const T& x) { s_.Insert(x); }
  void InsertBatch(std::span<const T> xs) { s_.InsertBatch(xs); }
  void MergeFrom(const ReservoirAdapter& other) { s_.Merge(other.s_); }
  size_t StreamSize() const { return s_.stream_size(); }
  size_t SpaceItems() const { return s_.sample().size(); }
  std::string Name() const {
    return "reservoir(k=" + std::to_string(s_.capacity()) + ")";
  }
  ReservoirSampler<T>& sketch() { return s_; }
  const ReservoirSampler<T>& sketch() const { return s_; }

 private:
  ReservoirSampler<T> s_;
};

/// BernoulliSampler<T> behind the uniform surface.
template <typename T>
class BernoulliAdapter {
 public:
  explicit BernoulliAdapter(BernoulliSampler<T> s) : s_(std::move(s)) {}
  void Insert(const T& x) { s_.Insert(x); }
  void InsertBatch(std::span<const T> xs) { s_.InsertBatch(xs); }
  void MergeFrom(const BernoulliAdapter& other) { s_.Merge(other.s_); }
  size_t StreamSize() const { return s_.stream_size(); }
  size_t SpaceItems() const { return s_.sample().size(); }
  std::string Name() const {
    return "bernoulli(p=" + std::to_string(s_.p()) + ")";
  }
  BernoulliSampler<T>& sketch() { return s_; }
  const BernoulliSampler<T>& sketch() const { return s_; }

 private:
  BernoulliSampler<T> s_;
};

/// KllSketch behind the uniform surface; stream elements convert to double.
template <typename T>
  requires std::convertible_to<T, double>
class KllAdapter {
 public:
  explicit KllAdapter(KllSketch s) : s_(std::move(s)) {}
  void Insert(const T& x) { s_.Insert(static_cast<double>(x)); }
  void InsertBatch(std::span<const T> xs) {
    if constexpr (std::same_as<T, double>) {
      s_.InsertBatch(xs);
    } else {
      for (const T& x : xs) s_.Insert(static_cast<double>(x));
    }
  }
  void MergeFrom(const KllAdapter& other) { s_.Merge(other.s_); }
  size_t StreamSize() const { return s_.StreamSize(); }
  size_t SpaceItems() const { return s_.SpaceItems(); }
  std::string Name() const { return s_.Name(); }
  KllSketch& sketch() { return s_; }
  const KllSketch& sketch() const { return s_; }

 private:
  KllSketch s_;
};

/// Shared shape for the three int64-keyed frequency summaries.
template <typename T, typename S>
  requires std::convertible_to<T, int64_t>
class FrequencyAdapter {
 public:
  explicit FrequencyAdapter(S s) : s_(std::move(s)) {}
  void Insert(const T& x) { s_.Insert(static_cast<int64_t>(x)); }
  void InsertBatch(std::span<const T> xs) {
    if constexpr (std::same_as<T, int64_t>) {
      s_.InsertBatch(xs);
    } else {
      for (const T& x : xs) s_.Insert(static_cast<int64_t>(x));
    }
  }
  void MergeFrom(const FrequencyAdapter& other) { s_.Merge(other.s_); }
  size_t StreamSize() const { return s_.StreamSize(); }
  size_t SpaceItems() const { return s_.SpaceItems(); }
  std::string Name() const { return s_.Name(); }
  S& sketch() { return s_; }
  const S& sketch() const { return s_; }

 private:
  S s_;
};

template <typename T>
using CountMinAdapter = FrequencyAdapter<T, CountMinSketch>;
template <typename T>
using MisraGriesAdapter = FrequencyAdapter<T, MisraGries>;
template <typename T>
using SpaceSavingAdapter = FrequencyAdapter<T, SpaceSaving>;

}  // namespace robust_sampling

#endif  // ROBUST_SAMPLING_PIPELINE_STREAM_SKETCH_H_
