#ifndef ROBUST_SAMPLING_PIPELINE_STREAM_SKETCH_H_
#define ROBUST_SAMPLING_PIPELINE_STREAM_SKETCH_H_

#include <algorithm>
#include <cmath>
#include <concepts>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/bernoulli_sampler.h"
#include "core/check.h"
#include "core/reservoir_sampler.h"
#include "core/robust_sample.h"
#include "heavy/count_min.h"
#include "heavy/frequency_estimator.h"
#include "heavy/misra_gries.h"
#include "heavy/space_saving.h"
#include "quantiles/kll_sketch.h"
#include "wire/codec.h"

namespace robust_sampling {

/// The uniform surface every pipeline-driveable sketch adapter must offer.
/// Adapters (below) bridge concrete samplers/sketches — whatever their
/// native element type and merge spelling — onto this shape.
template <typename A, typename T>
concept SketchAdapter = requires(A a, const A ca, const T& x,
                                 std::span<const T> xs) {
  { a.Insert(x) };
  { a.InsertBatch(xs) };
  { a.MergeFrom(ca) };
  { ca.StreamSize() } -> std::convertible_to<size_t>;
  { ca.SpaceItems() } -> std::convertible_to<size_t>;
  { ca.Name() } -> std::convertible_to<std::string>;
} && std::copy_constructible<A>;

// ---------------------------------------------------------------------------
// Optional query capabilities.
//
// Beyond the mandatory ingest surface above, an adapter may implement any of
// four query hooks. StreamSketch<T>::Wrap discovers them per adapter type
// with `if constexpr` / requires-clauses — no inheritance, no registration —
// and exposes them through the type-erased handle, so callers probe
// `Capabilities()` instead of downcasting. This is the sanctioned extension
// point for custom sketch kinds (see docs/registry.md for the built-in
// capability matrix).
// ---------------------------------------------------------------------------

/// Bitmask of the optional query capabilities a sketch supports.
enum SketchCapability : uint32_t {
  /// `SampleView()`: the retained elements + whether the last insert was
  /// kept — the full adversary-visible state of the paper's Section 2 game.
  kCapSampleView = 1u << 0,
  /// `Quantile(q)` / `Rank(x)` over a double-ordered domain.
  kCapQuantiles = 1u << 1,
  /// `EstimateFrequency(x)`: relative frequency of one element.
  kCapFrequencies = 1u << 2,
  /// `HeavyHitters(phi)`: all elements at estimated frequency >= phi.
  kCapHeavyHitters = 1u << 3,
  /// `SerializeTo(sink)` / `DeserializeFrom(source)`: full state (RNG
  /// included) crosses process boundaries via the wire codec; the basis of
  /// snapshot shipping and pipeline checkpoint/restore (src/wire/).
  kCapSerialize = 1u << 4,
};

/// The adversary-visible state of a sampling sketch (paper Section 2: the
/// state sigma_i *is* the current sample, observed in full after every
/// insertion). `elements` views the adapter's own storage and is valid until
/// the next non-const operation on the sketch.
template <typename T>
struct SketchSampleView {
  std::span<const T> elements;
  /// Whether the most recently inserted element entered the sample (for a
  /// batch: whether the batch's final element did).
  bool last_kept = false;
};

/// Adapter hook: expose the retained sample (samplers only).
template <typename A, typename T>
concept SampleViewableAdapter = requires(const A ca) {
  { ca.SampleView() } -> std::convertible_to<SketchSampleView<T>>;
};

/// Adapter hook: rank/quantile queries over a double-ordered domain.
template <typename A>
concept QuantileQueryableAdapter = requires(const A ca, double q) {
  { ca.Quantile(q) } -> std::convertible_to<double>;
  { ca.Rank(q) } -> std::convertible_to<double>;
};

/// Adapter hook: per-element relative-frequency estimates.
template <typename A, typename T>
concept FrequencyQueryableAdapter = requires(const A ca, const T& x) {
  { ca.EstimateFrequency(x) } -> std::convertible_to<double>;
};

/// Adapter hook: heavy-hitter reports.
template <typename A>
concept HeavyHitterQueryableAdapter = requires(const A ca, double phi) {
  { ca.HeavyHitters(phi) } -> std::convertible_to<std::vector<HeavyHitter>>;
};

/// Adapter hook: wire serialization. SerializeTo writes the adapter's full
/// state (sink tracks media errors); DeserializeFrom replaces it, returning
/// false — never aborting — on malformed bytes. Implementations must
/// round-trip exactly: a revived sketch answers every query identically
/// and, where randomized, continues with the same RNG trajectory.
template <typename A>
concept SerializableAdapter = requires(const A ca, A a, wire::ByteSink& sink,
                                       wire::ByteSource& source) {
  { ca.SerializeTo(sink) };
  { a.DeserializeFrom(source) } -> std::convertible_to<bool>;
};

namespace sample_query {

// Shared sample-based query implementations: the paper's whole point is
// that a (robust) uniform sample answers quantile, frequency and
// heavy-hitter queries for the stream (Corollaries 1.5 / 1.6), so the three
// sampler adapters route their query hooks through these helpers.

/// Empirical q-quantile of the sample, with the QuantileSketch convention
/// (smallest value whose rank fraction is >= q).
template <typename T>
  requires std::convertible_to<T, double>
double Quantile(std::span<const T> sample, double q) {
  RS_CHECK_MSG(!sample.empty(), "quantile query on an empty sample");
  std::vector<double> sorted;
  sorted.reserve(sample.size());
  for (const T& v : sample) sorted.push_back(static_cast<double>(v));
  std::sort(sorted.begin(), sorted.end());
  const double m = static_cast<double>(sorted.size());
  int64_t idx = static_cast<int64_t>(std::ceil(q * m)) - 1;
  idx = std::clamp(idx, int64_t{0},
                   static_cast<int64_t>(sorted.size()) - 1);
  return sorted[static_cast<size_t>(idx)];
}

/// Fraction of sample elements <= x (the sample's estimate of the stream's
/// prefix density d_{(-inf, x]}).
template <typename T>
  requires std::convertible_to<T, double>
double Rank(std::span<const T> sample, double x) {
  if (sample.empty()) return 0.0;
  size_t hits = 0;
  for (const T& v : sample) hits += static_cast<double>(v) <= x;
  return static_cast<double>(hits) / static_cast<double>(sample.size());
}

/// Relative frequency of x within the sample (the Corollary 1.6 estimator
/// for the stream frequency of x).
template <typename T>
  requires std::equality_comparable<T>
double Frequency(std::span<const T> sample, const T& x) {
  if (sample.empty()) return 0.0;
  size_t hits = 0;
  for (const T& v : sample) hits += v == x;
  return static_cast<double>(hits) / static_cast<double>(sample.size());
}

/// All elements whose sample frequency is >= phi, in canonical report
/// order. For the (alpha, eps) contract, query at phi = alpha - eps/3
/// (Corollary 1.6's slack).
template <typename T>
  requires std::convertible_to<T, int64_t>
std::vector<HeavyHitter> HeavyHitters(std::span<const T> sample,
                                      double phi) {
  std::vector<HeavyHitter> out;
  if (sample.empty()) return out;
  std::unordered_map<int64_t, size_t> counts;
  for (const T& v : sample) ++counts[static_cast<int64_t>(v)];
  const double m = static_cast<double>(sample.size());
  for (const auto& [element, count] : counts) {
    const double freq = static_cast<double>(count) / m;
    if (freq >= phi) out.push_back(HeavyHitter{element, freq});
  }
  SortHeavyHitters(&out);
  return out;
}

}  // namespace sample_query

/// CRTP mixin supplying the full sample-backed query hook set to sampler
/// adapters. `Derived::sketch()` must expose `sample()` (a vector of
/// retained elements) and `last_kept()`; each hook is enabled exactly when
/// T supports it, so the capability concepts above see the right subset.
/// Keeping the three sampler adapters on one implementation guarantees
/// they answer queries identically (the Corollary 1.5 / 1.6 estimators).
template <typename Derived, typename T>
class SampleQueryHooks {
 public:
  SketchSampleView<T> SampleView() const {
    return {std::span<const T>(self().sketch().sample()),
            self().sketch().last_kept()};
  }
  /// Requires a non-empty sample (the QuantileSketch convention: a
  /// quantile of nothing has no value; Rank/Frequency degrade to 0.0).
  double Quantile(double q) const
    requires std::convertible_to<T, double>
  {
    return sample_query::Quantile<T>(self().sketch().sample(), q);
  }
  double Rank(double x) const
    requires std::convertible_to<T, double>
  {
    return sample_query::Rank<T>(self().sketch().sample(), x);
  }
  double EstimateFrequency(const T& x) const
    requires std::equality_comparable<T>
  {
    return sample_query::Frequency<T>(self().sketch().sample(), x);
  }
  std::vector<HeavyHitter> HeavyHitters(double phi) const
    requires std::convertible_to<T, int64_t>
  {
    return sample_query::HeavyHitters<T>(self().sketch().sample(), phi);
  }

 private:
  const Derived& self() const {
    return static_cast<const Derived&>(*this);
  }
};

/// Type-erased handle to one streaming sketch/sampler instance.
///
/// The pipeline drives heterogeneous summaries (reservoir samples, KLL,
/// CountMin, ...) through this one interface: batched insertion, merge of
/// same-kind instances, size introspection — and *queries*. Every optional
/// query hook the wrapped adapter implements (SampleView / Quantile / Rank /
/// EstimateFrequency / HeavyHitters) is surfaced here; `Capabilities()`
/// reports which ones, so callers probe support without downcasting. This
/// makes a merged ShardedPipeline snapshot directly servable and lets any
/// registered kind — including custom ones — face AttackLab adversaries.
/// The type-erasure tax is paid per batch and per query, never per element.
///
/// `TryAs<Adapter>()` remains as an interop escape hatch for
/// adapter-specific state that is not a query (none of the in-tree callers
/// need it on the query path anymore).
///
/// Copying a StreamSketch deep-copies the underlying sketch (used by
/// ShardedPipeline::Snapshot to fold per-shard states without disturbing
/// ingestion).
template <typename T>
class StreamSketch {
 public:
  /// Empty handle; every operation except `valid()` aborts until assigned.
  StreamSketch() = default;

  /// Wraps an adapter instance, discovering its query capabilities.
  template <SketchAdapter<T> A>
  static StreamSketch Wrap(A adapter) {
    StreamSketch s;
    s.model_ = std::make_unique<Model<A>>(std::move(adapter));
    return s;
  }

  StreamSketch(const StreamSketch& other)
      : model_(other.model_ ? other.model_->Clone() : nullptr) {}
  StreamSketch& operator=(const StreamSketch& other) {
    if (this != &other) {
      model_ = other.model_ ? other.model_->Clone() : nullptr;
    }
    return *this;
  }
  StreamSketch(StreamSketch&&) noexcept = default;
  StreamSketch& operator=(StreamSketch&&) noexcept = default;

  bool valid() const { return model_ != nullptr; }

  /// Processes one stream element.
  void Insert(const T& x) {
    RS_CHECK_MSG(model_ != nullptr, "empty StreamSketch");
    model_->Insert(x);
  }

  /// Processes a batch of stream elements (the pipeline hot path).
  void InsertBatch(std::span<const T> xs) {
    RS_CHECK_MSG(model_ != nullptr, "empty StreamSketch");
    model_->InsertBatch(xs);
  }

  /// Folds `other` into this sketch. Both handles must wrap the same
  /// adapter type (verified at runtime); the underlying Merge defines the
  /// semantics (uniform subsample of the union, counter addition, ...).
  void MergeFrom(const StreamSketch& other) {
    RS_CHECK_MSG(model_ != nullptr && other.model_ != nullptr,
                 "empty StreamSketch");
    model_->MergeFrom(*other.model_);
  }

  /// Number of stream elements processed.
  size_t StreamSize() const {
    RS_CHECK_MSG(model_ != nullptr, "empty StreamSketch");
    return model_->StreamSize();
  }

  /// Number of items/counters currently retained.
  size_t SpaceItems() const {
    RS_CHECK_MSG(model_ != nullptr, "empty StreamSketch");
    return model_->SpaceItems();
  }

  /// Algorithm name for reports.
  std::string Name() const {
    RS_CHECK_MSG(model_ != nullptr, "empty StreamSketch");
    return model_->Name();
  }

  // --- query surface ------------------------------------------------------

  /// Bitmask of the SketchCapability hooks the wrapped adapter implements.
  uint32_t Capabilities() const {
    RS_CHECK_MSG(model_ != nullptr, "empty StreamSketch");
    return model_->Capabilities();
  }

  /// Whether the wrapped adapter implements `capability`.
  bool Supports(SketchCapability capability) const {
    return (Capabilities() & capability) != 0;
  }

  /// The adversary-visible sample (Section 2 observation contract).
  /// Requires kCapSampleView; the view stays valid until the next non-const
  /// operation on this sketch.
  SketchSampleView<T> SampleView() const {
    RS_CHECK_MSG(Supports(kCapSampleView),
                 ("sketch has no sample view: " + Name()).c_str());
    return model_->SampleView();
  }

  /// Estimated q-quantile of the stream. Requires kCapQuantiles.
  double Quantile(double q) const {
    RS_CHECK_MSG(Supports(kCapQuantiles),
                 ("sketch does not support quantile queries: " + Name())
                     .c_str());
    return model_->Quantile(q);
  }

  /// Estimated fraction of stream elements <= x. Requires kCapQuantiles.
  double Rank(double x) const {
    RS_CHECK_MSG(Supports(kCapQuantiles),
                 ("sketch does not support quantile queries: " + Name())
                     .c_str());
    return model_->Rank(x);
  }

  /// Estimated relative frequency of x. Requires kCapFrequencies.
  double EstimateFrequency(const T& x) const {
    RS_CHECK_MSG(Supports(kCapFrequencies),
                 ("sketch does not support frequency queries: " + Name())
                     .c_str());
    return model_->EstimateFrequency(x);
  }

  /// Elements at estimated frequency >= phi, in canonical report order.
  /// Requires kCapHeavyHitters.
  std::vector<HeavyHitter> HeavyHitters(double phi) const {
    RS_CHECK_MSG(Supports(kCapHeavyHitters),
                 ("sketch does not support heavy-hitter queries: " + Name())
                     .c_str());
    return model_->HeavyHitters(phi);
  }

  // --- wire surface -------------------------------------------------------

  /// Writes the wrapped adapter's full state to `sink` (payload bytes
  /// only — wire/snapshot.h adds the self-describing envelope). Requires
  /// kCapSerialize; check `sink.ok()` afterwards for media errors.
  void SerializeTo(wire::ByteSink& sink) const {
    RS_CHECK_MSG(Supports(kCapSerialize),
                 ("sketch is not serializable: " + Name()).c_str());
    model_->SerializeTo(sink);
  }

  /// Replaces the wrapped adapter's state from payload bytes previously
  /// written by `SerializeTo` on the same kind. Returns false on malformed
  /// input (the handle stays valid, contents unspecified); never aborts on
  /// bad bytes. Requires kCapSerialize.
  bool DeserializeFrom(wire::ByteSource& source) {
    RS_CHECK_MSG(Supports(kCapSerialize),
                 ("sketch is not serializable: " + Name()).c_str());
    return model_->DeserializeFrom(source);
  }

  // --- interop escape hatch ----------------------------------------------

  /// Downcast to a concrete adapter for adapter-specific state beyond the
  /// query surface; nullptr if this handle wraps a different adapter type.
  template <SketchAdapter<T> A>
  A* TryAs() {
    auto* m = dynamic_cast<Model<A>*>(model_.get());
    return m ? &m->adapter() : nullptr;
  }
  template <SketchAdapter<T> A>
  const A* TryAs() const {
    const auto* m = dynamic_cast<const Model<A>*>(model_.get());
    return m ? &m->adapter() : nullptr;
  }

  /// Downcast that aborts instead of returning nullptr.
  template <SketchAdapter<T> A>
  A& As() {
    A* a = TryAs<A>();
    RS_CHECK_MSG(a != nullptr, "StreamSketch wraps a different sketch type");
    return *a;
  }
  template <SketchAdapter<T> A>
  const A& As() const {
    const A* a = TryAs<A>();
    RS_CHECK_MSG(a != nullptr, "StreamSketch wraps a different sketch type");
    return *a;
  }

 private:
  struct Concept {
    virtual ~Concept() = default;
    virtual void Insert(const T& x) = 0;
    virtual void InsertBatch(std::span<const T> xs) = 0;
    virtual void MergeFrom(const Concept& other) = 0;
    virtual size_t StreamSize() const = 0;
    virtual size_t SpaceItems() const = 0;
    virtual std::string Name() const = 0;
    virtual uint32_t Capabilities() const = 0;
    virtual SketchSampleView<T> SampleView() const = 0;
    virtual double Quantile(double q) const = 0;
    virtual double Rank(double x) const = 0;
    virtual double EstimateFrequency(const T& x) const = 0;
    virtual std::vector<HeavyHitter> HeavyHitters(double phi) const = 0;
    virtual void SerializeTo(wire::ByteSink& sink) const = 0;
    virtual bool DeserializeFrom(wire::ByteSource& source) = 0;
    virtual std::unique_ptr<Concept> Clone() const = 0;
  };

  template <SketchAdapter<T> A>
  struct Model final : Concept {
    explicit Model(A a) : adapter_(std::move(a)) {}
    void Insert(const T& x) override { adapter_.Insert(x); }
    void InsertBatch(std::span<const T> xs) override {
      adapter_.InsertBatch(xs);
    }
    void MergeFrom(const Concept& other) override {
      const auto* peer = dynamic_cast<const Model*>(&other);
      RS_CHECK_MSG(peer != nullptr,
                   "cannot merge StreamSketches of different kinds");
      adapter_.MergeFrom(peer->adapter_);
    }
    size_t StreamSize() const override { return adapter_.StreamSize(); }
    size_t SpaceItems() const override { return adapter_.SpaceItems(); }
    std::string Name() const override { return adapter_.Name(); }

    uint32_t Capabilities() const override {
      uint32_t caps = 0;
      if constexpr (SampleViewableAdapter<A, T>) caps |= kCapSampleView;
      if constexpr (QuantileQueryableAdapter<A>) caps |= kCapQuantiles;
      if constexpr (FrequencyQueryableAdapter<A, T>) caps |= kCapFrequencies;
      if constexpr (HeavyHitterQueryableAdapter<A>) caps |= kCapHeavyHitters;
      if constexpr (SerializableAdapter<A>) caps |= kCapSerialize;
      return caps;
    }
    SketchSampleView<T> SampleView() const override {
      if constexpr (SampleViewableAdapter<A, T>) {
        return adapter_.SampleView();
      } else {
        RS_CHECK_MSG(false, "sketch has no sample view");
        return {};
      }
    }
    double Quantile(double q) const override {
      if constexpr (QuantileQueryableAdapter<A>) {
        return adapter_.Quantile(q);
      } else {
        RS_CHECK_MSG(false, "sketch does not support quantile queries");
        return 0.0;
      }
    }
    double Rank(double x) const override {
      if constexpr (QuantileQueryableAdapter<A>) {
        return adapter_.Rank(x);
      } else {
        RS_CHECK_MSG(false, "sketch does not support quantile queries");
        return 0.0;
      }
    }
    double EstimateFrequency(const T& x) const override {
      if constexpr (FrequencyQueryableAdapter<A, T>) {
        return adapter_.EstimateFrequency(x);
      } else {
        RS_CHECK_MSG(false, "sketch does not support frequency queries");
        return 0.0;
      }
    }
    std::vector<HeavyHitter> HeavyHitters(double phi) const override {
      if constexpr (HeavyHitterQueryableAdapter<A>) {
        return adapter_.HeavyHitters(phi);
      } else {
        RS_CHECK_MSG(false, "sketch does not support heavy-hitter queries");
        return {};
      }
    }
    void SerializeTo(wire::ByteSink& sink) const override {
      if constexpr (SerializableAdapter<A>) {
        adapter_.SerializeTo(sink);
      } else {
        RS_CHECK_MSG(false, "sketch is not serializable");
      }
    }
    bool DeserializeFrom(wire::ByteSource& source) override {
      if constexpr (SerializableAdapter<A>) {
        return adapter_.DeserializeFrom(source);
      } else {
        RS_CHECK_MSG(false, "sketch is not serializable");
        return false;
      }
    }

    std::unique_ptr<Concept> Clone() const override {
      return std::make_unique<Model>(adapter_);
    }
    A& adapter() { return adapter_; }
    const A& adapter() const { return adapter_; }

    A adapter_;
  };

  std::unique_ptr<Concept> model_;
};

// ---------------------------------------------------------------------------
// Built-in adapters. Each wraps one concrete summary; queries flow through
// the capability hooks (the `sketch()` accessor remains for interop with
// code that needs the concrete type).
// ---------------------------------------------------------------------------

/// RobustSample<T> behind the uniform surface (the paper's Theorem 1.2
/// sampler; merge = uniform subsample of the union at unchanged eps/delta).
/// Full query capability set: the robust sample *is* the answer store for
/// quantile / frequency / heavy-hitter queries (Corollaries 1.5, 1.6).
template <typename T>
class RobustSampleAdapter
    : public SampleQueryHooks<RobustSampleAdapter<T>, T> {
 public:
  explicit RobustSampleAdapter(RobustSample<T> s) : s_(std::move(s)) {}
  void Insert(const T& x) { s_.Insert(x); }
  void InsertBatch(std::span<const T> xs) { s_.InsertBatch(xs); }
  void MergeFrom(const RobustSampleAdapter& other) { s_.Merge(other.s_); }
  size_t StreamSize() const { return s_.stream_size(); }
  size_t SpaceItems() const { return s_.sample().size(); }
  std::string Name() const {
    return "robust_sample(k=" + std::to_string(s_.capacity()) + ")";
  }

  void SerializeTo(wire::ByteSink& sink) const
    requires wire::WireValue<T>
  {
    s_.SerializeTo(sink);
  }
  bool DeserializeFrom(wire::ByteSource& source)
    requires wire::WireValue<T>
  {
    return s_.DeserializeFrom(source);
  }

  RobustSample<T>& sketch() { return s_; }
  const RobustSample<T>& sketch() const { return s_; }

 private:
  RobustSample<T> s_;
};

/// Plain ReservoirSampler<T> (Algorithm R) behind the uniform surface.
/// Same query capability set as RobustSampleAdapter (whether the answers
/// are adversarially trustworthy depends on how k was sized).
template <typename T>
class ReservoirAdapter
    : public SampleQueryHooks<ReservoirAdapter<T>, T> {
 public:
  explicit ReservoirAdapter(ReservoirSampler<T> s) : s_(std::move(s)) {}
  void Insert(const T& x) { s_.Insert(x); }
  void InsertBatch(std::span<const T> xs) { s_.InsertBatch(xs); }
  void MergeFrom(const ReservoirAdapter& other) { s_.Merge(other.s_); }
  size_t StreamSize() const { return s_.stream_size(); }
  size_t SpaceItems() const { return s_.sample().size(); }
  std::string Name() const {
    return "reservoir(k=" + std::to_string(s_.capacity()) + ")";
  }

  void SerializeTo(wire::ByteSink& sink) const
    requires wire::WireValue<T>
  {
    s_.SerializeTo(sink);
  }
  bool DeserializeFrom(wire::ByteSource& source)
    requires wire::WireValue<T>
  {
    return s_.DeserializeFrom(source);
  }

  ReservoirSampler<T>& sketch() { return s_; }
  const ReservoirSampler<T>& sketch() const { return s_; }

 private:
  ReservoirSampler<T> s_;
};

/// BernoulliSampler<T> behind the uniform surface.
template <typename T>
class BernoulliAdapter
    : public SampleQueryHooks<BernoulliAdapter<T>, T> {
 public:
  explicit BernoulliAdapter(BernoulliSampler<T> s) : s_(std::move(s)) {}
  void Insert(const T& x) { s_.Insert(x); }
  void InsertBatch(std::span<const T> xs) { s_.InsertBatch(xs); }
  void MergeFrom(const BernoulliAdapter& other) { s_.Merge(other.s_); }
  size_t StreamSize() const { return s_.stream_size(); }
  size_t SpaceItems() const { return s_.sample().size(); }
  std::string Name() const {
    return "bernoulli(p=" + std::to_string(s_.p()) + ")";
  }

  void SerializeTo(wire::ByteSink& sink) const
    requires wire::WireValue<T>
  {
    s_.SerializeTo(sink);
  }
  bool DeserializeFrom(wire::ByteSource& source)
    requires wire::WireValue<T>
  {
    return s_.DeserializeFrom(source);
  }

  BernoulliSampler<T>& sketch() { return s_; }
  const BernoulliSampler<T>& sketch() const { return s_; }

 private:
  BernoulliSampler<T> s_;
};

/// KllSketch behind the uniform surface; stream elements convert to double.
/// Quantile-capable only: KLL retains no adversary-visible sample.
template <typename T>
  requires std::convertible_to<T, double>
class KllAdapter {
 public:
  explicit KllAdapter(KllSketch s) : s_(std::move(s)) {}
  void Insert(const T& x) { s_.Insert(static_cast<double>(x)); }
  void InsertBatch(std::span<const T> xs) {
    if constexpr (std::same_as<T, double>) {
      s_.InsertBatch(xs);
    } else {
      for (const T& x : xs) s_.Insert(static_cast<double>(x));
    }
  }
  void MergeFrom(const KllAdapter& other) { s_.Merge(other.s_); }
  size_t StreamSize() const { return s_.StreamSize(); }
  size_t SpaceItems() const { return s_.SpaceItems(); }
  std::string Name() const { return s_.Name(); }

  double Quantile(double q) const { return s_.Quantile(q); }
  double Rank(double x) const { return s_.RankFraction(x); }

  void SerializeTo(wire::ByteSink& sink) const { s_.SerializeTo(sink); }
  bool DeserializeFrom(wire::ByteSource& source) {
    return s_.DeserializeFrom(source);
  }

  KllSketch& sketch() { return s_; }
  const KllSketch& sketch() const { return s_; }

 private:
  KllSketch s_;
};

/// Shared shape for the three int64-keyed frequency summaries.
/// Frequency/heavy-hitter capable; no sample view, no quantiles.
template <typename T, typename S>
  requires std::convertible_to<T, int64_t>
class FrequencyAdapter {
 public:
  explicit FrequencyAdapter(S s) : s_(std::move(s)) {}
  void Insert(const T& x) { s_.Insert(static_cast<int64_t>(x)); }
  void InsertBatch(std::span<const T> xs) {
    if constexpr (std::same_as<T, int64_t>) {
      s_.InsertBatch(xs);
    } else {
      for (const T& x : xs) s_.Insert(static_cast<int64_t>(x));
    }
  }
  void MergeFrom(const FrequencyAdapter& other) { s_.Merge(other.s_); }
  size_t StreamSize() const { return s_.StreamSize(); }
  size_t SpaceItems() const { return s_.SpaceItems(); }
  std::string Name() const { return s_.Name(); }

  double EstimateFrequency(const T& x) const {
    return s_.EstimateFrequency(static_cast<int64_t>(x));
  }
  std::vector<HeavyHitter> HeavyHitters(double phi) const {
    return s_.HeavyHitters(phi);
  }

  void SerializeTo(wire::ByteSink& sink) const { s_.SerializeTo(sink); }
  bool DeserializeFrom(wire::ByteSource& source) {
    return s_.DeserializeFrom(source);
  }

  S& sketch() { return s_; }
  const S& sketch() const { return s_; }

 private:
  S s_;
};

template <typename T>
using CountMinAdapter = FrequencyAdapter<T, CountMinSketch>;
template <typename T>
using MisraGriesAdapter = FrequencyAdapter<T, MisraGries>;
template <typename T>
using SpaceSavingAdapter = FrequencyAdapter<T, SpaceSaving>;

}  // namespace robust_sampling

#endif  // ROBUST_SAMPLING_PIPELINE_STREAM_SKETCH_H_
