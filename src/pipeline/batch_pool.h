#ifndef ROBUST_SAMPLING_PIPELINE_BATCH_POOL_H_
#define ROBUST_SAMPLING_PIPELINE_BATCH_POOL_H_

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

#include "core/check.h"

namespace robust_sampling {

template <typename T>
class BatchPool;

/// One pooled, reusable batch buffer. `data` keeps its capacity across
/// recycles, so after warm-up a fill is a plain memcpy into already-mapped
/// pages — no allocation, no page faults. Recycled back to its pool when
/// the reference count (producer ref + one per outstanding BatchSlice)
/// drops to zero.
template <typename T>
struct BatchBuffer {
  std::vector<T> data;
  std::atomic<size_t> refs{0};
  BatchPool<T>* pool = nullptr;
};

/// Move-only shared view of a contiguous segment of a pooled buffer.
///
/// This is what travels through the shard rings: under round-robin
/// partitioning every shard's slice aliases the *same* BatchBuffer (the
/// batch is materialized once, not once per shard), and the buffer returns
/// to the pool when the last shard releases its slice. Thread-safe in the
/// shared_ptr sense: distinct slices of one buffer may be released from
/// distinct threads concurrently.
template <typename T>
class BatchSlice {
 public:
  BatchSlice() = default;

  /// A slice that borrows caller-owned memory instead of a pooled buffer:
  /// no refcount, Release() is a no-op, and the caller must keep the
  /// memory valid until the consumer is done with it (the pipeline's
  /// IngestBorrowed contract: until the next Flush / Snapshot / Stop).
  static BatchSlice Borrowed(const T* data, size_t size) {
    return BatchSlice(nullptr, data, size);
  }

  BatchSlice(BatchSlice&& other) noexcept
      : buffer_(std::exchange(other.buffer_, nullptr)),
        data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)) {}

  BatchSlice& operator=(BatchSlice&& other) noexcept {
    if (this != &other) {
      Release();
      buffer_ = std::exchange(other.buffer_, nullptr);
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
    }
    return *this;
  }

  BatchSlice(const BatchSlice&) = delete;
  BatchSlice& operator=(const BatchSlice&) = delete;

  ~BatchSlice() { Release(); }

  /// The viewed elements; valid until Release() / destruction.
  std::span<const T> span() const { return {data_, size_}; }

  bool empty() const { return size_ == 0; }

  /// Drops this slice's reference; the buffer recycles when the count hits
  /// zero. Idempotent; the slice views nothing afterwards.
  void Release();

 private:
  friend class BatchPool<T>;
  BatchSlice(BatchBuffer<T>* buffer, const T* data, size_t size)
      : buffer_(buffer), data_(data), size_(size) {}

  BatchBuffer<T>* buffer_ = nullptr;
  const T* data_ = nullptr;
  size_t size_ = 0;
};

/// Freelist of refcounted batch buffers, owned by ONE producer thread.
///
/// Steady-state protocol (per producer batch):
///   1. `Acquire()` — pop a warm buffer (refcount starts at 1, the
///      producer's own reference),
///   2. fill `buffer->data` (capacity is retained, so no allocation),
///   3. `MakeSlice(buffer, offset, len)` once per consumer — each slice
///      holds one reference,
///   4. `Release(buffer)` — drop the producer reference; from here the
///      buffer lives exactly as long as its slices.
///
/// Thread contract: Acquire/MakeSlice/Reserve are producer-side (one
/// thread — in the multi-producer pipeline each registered producer owns
/// its own pool, so producers never contend with each other); Release may
/// be called from any thread (consumers recycle from the shard workers).
///
/// Two-level freelist: the producer keeps a private `local_free_` list it
/// pops without any lock; consumers return buffers to a mutex-protected
/// `returned_` stack, which the producer splices into its private list in
/// one lock acquisition only when the private list runs dry. Steady state
/// therefore costs the producer ~one mutex op per in-flight cycle instead
/// of two per batch, and the refcount itself stays lock-free. The pool
/// grows on demand: allocation happens only while it is colder than the
/// pipeline's high-water mark of in-flight batches.
template <typename T>
class BatchPool {
 public:
  BatchPool() = default;

  BatchPool(const BatchPool&) = delete;
  BatchPool& operator=(const BatchPool&) = delete;

  /// All buffers must be released (no outstanding slices) at destruction.
  ~BatchPool() = default;

  /// Pre-warms the pool: ensures at least `count` buffers exist, each with
  /// room for `element_capacity` elements. Optional — the pool grows on
  /// demand — but lets latency-sensitive callers move every allocation to
  /// setup time.
  void Reserve(size_t count, size_t element_capacity) {
    std::lock_guard<std::mutex> lock(mu_);
    while (all_.size() < count) {
      auto owned = std::make_unique<BatchBuffer<T>>();
      owned->pool = this;
      local_free_.push_back(owned.get());
      all_.push_back(std::move(owned));
    }
    for (const auto& buffer : all_) {
      if (buffer->data.capacity() < element_capacity) {
        buffer->data.reserve(element_capacity);
      }
    }
    // Room for every buffer on either list, so steady-state splices and
    // returns never reallocate the list storage itself.
    local_free_.reserve(all_.size());
    returned_.reserve(all_.size());
  }

  /// Producer: returns a buffer with refcount 1 (the producer reference).
  /// Contents of `data` are unspecified; fill with assign/clear+push_back.
  BatchBuffer<T>* Acquire() {
    if (!local_free_.empty()) {
      BatchBuffer<T>* buffer = local_free_.back();
      local_free_.pop_back();
      buffer->refs.store(1, std::memory_order_relaxed);
      return buffer;
    }
    {
      // Private list dry: splice everything the consumers returned.
      std::lock_guard<std::mutex> lock(mu_);
      local_free_.insert(local_free_.end(), returned_.begin(),
                         returned_.end());
      returned_.clear();
    }
    if (!local_free_.empty()) {
      BatchBuffer<T>* buffer = local_free_.back();
      local_free_.pop_back();
      buffer->refs.store(1, std::memory_order_relaxed);
      return buffer;
    }
    // Cold path: the pool is below the in-flight high-water mark.
    auto owned = std::make_unique<BatchBuffer<T>>();
    owned->pool = this;
    owned->refs.store(1, std::memory_order_relaxed);
    BatchBuffer<T>* buffer = owned.get();
    std::lock_guard<std::mutex> lock(mu_);
    all_.push_back(std::move(owned));
    return buffer;
  }

  /// Producer: a new shared view of buffer->data[offset, offset + len).
  /// The buffer must still hold the producer reference.
  BatchSlice<T> MakeSlice(BatchBuffer<T>* buffer, size_t offset,
                          size_t len) {
    RS_CHECK_MSG(offset + len <= buffer->data.size(),
                 "batch slice out of range");
    buffer->refs.fetch_add(1, std::memory_order_relaxed);
    return BatchSlice<T>(buffer, buffer->data.data() + offset, len);
  }

  /// Drops one reference; recycles the buffer onto the return stack when
  /// the count reaches zero. Called from any thread.
  void Release(BatchBuffer<T>* buffer) {
    if (buffer->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(mu_);
      returned_.push_back(buffer);
    }
  }

  /// Buffers ever created (monotone; == freelist size when idle). A flat
  /// value across steady-state batches is the allocation-free evidence the
  /// tests assert on.
  size_t AllocatedBuffers() const {
    std::lock_guard<std::mutex> lock(mu_);
    return all_.size();
  }

 private:
  std::vector<std::unique_ptr<BatchBuffer<T>>> all_;  // guarded by mu_

  // Producer-private freelist: popped/refilled only by the owning
  // producer thread, never under the lock.
  std::vector<BatchBuffer<T>*> local_free_;

  // Consumer return stack, guarded by mu_; spliced into local_free_ when
  // the private list runs dry.
  mutable std::mutex mu_;
  std::vector<BatchBuffer<T>*> returned_;
};

template <typename T>
void BatchSlice<T>::Release() {
  if (buffer_ != nullptr) {
    BatchBuffer<T>* buffer = std::exchange(buffer_, nullptr);
    data_ = nullptr;
    size_ = 0;
    buffer->pool->Release(buffer);
  }
}

}  // namespace robust_sampling

#endif  // ROBUST_SAMPLING_PIPELINE_BATCH_POOL_H_
