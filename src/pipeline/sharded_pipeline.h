#ifndef ROBUST_SAMPLING_PIPELINE_SHARDED_PIPELINE_H_
#define ROBUST_SAMPLING_PIPELINE_SHARDED_PIPELINE_H_

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/check.h"
#include "core/random.h"
#include "obs/catalog.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "pipeline/batch_pool.h"
#include "pipeline/sketch_config.h"
#include "pipeline/sketch_registry.h"
#include "pipeline/spsc_ring.h"
#include "pipeline/stream_sketch.h"
#include "wire/codec.h"
#include "wire/snapshot.h"

namespace robust_sampling {

/// How Ingest routes elements to shards.
enum class PartitionPolicy {
  /// Content-addressed: element x always lands on shard hash(x) % N.
  /// Deterministic per element regardless of batch boundaries or which
  /// producer delivered it; the right choice when per-shard sketches
  /// answer per-key questions (CountMin, heavy hitters) or when replay
  /// determinism across different batch sizes matters.
  kHash,
  /// Each batch is split into N contiguous chunks, one per shard — zero
  /// per-element routing work and zero-copy fan-out (the chunks are span
  /// slices of one shared buffer), the throughput choice for samplers (a
  /// uniform sample of a union does not care how the union was cut).
  kRoundRobin,
};

/// Tuning for ShardedPipeline.
struct PipelineOptions {
  /// Number of worker shards (each owns one sketch instance and one
  /// thread). Requires >= 1.
  size_t num_shards = 4;
  PartitionPolicy partition = PartitionPolicy::kRoundRobin;
  /// Backpressure bound, expressed as ring capacity: each producer's SPSC
  /// ring into each shard holds at most this many outstanding batch
  /// slices (rounded up to a power of two); that producer's Ingest blocks
  /// while its target ring is full. Requires >= 1.
  size_t ring_capacity = 64;
  /// Pool pre-warm hint: when > 0, the constructor preallocates enough
  /// pooled batch buffers (each with room for this many elements) to cover
  /// each producer's worst-case in-flight load, so steady-state Ingest
  /// performs zero heap allocations from the first batch onward. When 0,
  /// the pools warm up on demand instead (allocation-free only after the
  /// in-flight high-water mark has been seen).
  size_t prewarm_batch_elements = 0;
  /// Admission bound: batches larger than this are *rejected* by
  /// Ingest/IngestBorrowed (return false, nothing queued, counted in
  /// rejected_batches()) rather than silently accepted into one oversized
  /// pooled buffer. 0 disables the bound. Rejection is distinct from
  /// backpressure, which delays but never drops.
  size_t max_batch_elements = 0;
  /// Fan-in width P: the maximum number of producer handles
  /// (RegisterProducer()) this pipeline supports. Every producer gets its
  /// own private SPSC ring into every shard (a P x num_shards matrix), so
  /// producers never contend with each other on the hot path; shard
  /// workers drain their column round-robin. The pipeline-level
  /// Ingest/IngestBorrowed calls are an alias for producer 0's handle.
  /// Requires >= 1. Memory cost is one ring per (producer, shard) pair,
  /// paid at construction.
  size_t max_producers = 1;
  /// Hash-partition strategy: true (default) buckets an entire batch into
  /// per-shard runs in one counting-sort-style pass over a single pooled
  /// buffer; false keeps the per-element routing loop into per-shard
  /// staging buffers (the pre-multi-producer reference path, retained so
  /// tests can assert the two are bit-identical).
  bool vectorized_hash_partition = true;
};

/// Sharded, batched, multi-producer stream-ingestion engine.
///
/// N worker shards each own an independently seeded sketch (instantiated
/// from one SketchConfig via SketchRegistry<T>). Up to P producers
/// (RegisterProducer()) each own a private fixed-capacity SPSC ring into
/// every shard — a P x N fan-in matrix with no shared MPSC point anywhere
/// on the hot path: a publish is one release store into a ring only its
/// owner ever pushes to, and each shard's worker drains its column of P
/// rings round-robin, parking on a per-shard FanInGate when the whole
/// column is empty. Batches are refcounted pooled buffers (one pool per
/// producer; batch_pool.h) sliced per shard; `IngestBorrowed` feeds
/// caller-owned memory with no copy at all. `Snapshot()` folds the
/// per-shard states into one merged StreamSketch answering for the entire
/// stream.
///
/// Adversarial-robustness note: sharding changes *when* an adversary can
/// observe state (between batches rather than between elements) but not
/// the distribution of any per-shard sample, and the merged snapshot of
/// per-shard reservoirs is distributed exactly as one global reservoir
/// over the union (ReservoirSampler::Merge). Theorem 1.2 sizing therefore
/// applies to the merged sample unchanged (see docs/pipeline.md).
///
/// Threading contract: each Producer handle is single-threaded (one
/// producer thread per handle; handles are independent). The control
/// surface — Flush/Snapshot/Query/Checkpoint/ShardStreamSizes — may be
/// called from any thread, concurrently with active producers: Flush
/// fences *per producer* (every batch whose Ingest call happened-before
/// the Flush is folded before Flush returns; concurrent publishes may or
/// may not be included). Stop requires all producers quiescent.
/// Determinism: with fixed config.seed, fixed batch sizes and a single
/// producer, the merged snapshot is bit-for-bit reproducible under either
/// partitioning policy (kHash is additionally batch-size-invariant, and
/// its per-shard multisets are producer-interleaving-invariant).
template <typename T>
class ShardedPipeline {
 public:
  /// A registered producer's private ingestion handle: one SPSC ring per
  /// shard, a private batch pool, a private round-robin cursor and
  /// private scatter scratch — nothing here is shared with any other
  /// producer, so P producers publish with zero cross-producer contention.
  /// Single-threaded: one thread per handle at a time.
  class Producer {
   public:
    Producer(const Producer&) = delete;
    Producer& operator=(const Producer&) = delete;

    /// Partitions one batch across the shards: one copy into a pooled
    /// buffer, then per-shard span slices (no per-shard copies, no
    /// allocation in steady state). Blocks when this producer's target
    /// ring is full (backpressure). Returns false — with nothing queued —
    /// only when the batch exceeds `options.max_batch_elements`.
    bool Ingest(std::span<const T> batch) {
      RS_CHECK_MSG(!pipeline_->stopped_.load(std::memory_order_relaxed),
                   "Ingest after Stop");
      if (batch.empty()) return true;
      if (!Admit(batch.size())) return false;
      if (pipeline_->options_.partition == PartitionPolicy::kRoundRobin ||
          pipeline_->shards_.size() == 1) {
        IngestShared(batch);
      } else {
        IngestHashed(batch);
      }
      return true;
    }

    /// True zero-copy ingestion for callers that own stable batch memory
    /// (replaying an in-memory stream, arena-backed network buffers, ...):
    /// shards receive span slices of the *caller's* memory — nothing is
    /// materialized, pooled, or copied. Lifetime contract: `batch` must
    /// stay valid until the next Flush() (or Snapshot()/Query()/Stop(),
    /// which flush). Under kHash the scatter is content-addressed, so the
    /// partition pass still writes into a pooled buffer; the borrowed
    /// fast path applies to kRoundRobin and single-shard topologies.
    /// Routing, determinism, admission and backpressure are identical to
    /// Ingest — the two can be mixed freely.
    bool IngestBorrowed(std::span<const T> batch) {
      RS_CHECK_MSG(!pipeline_->stopped_.load(std::memory_order_relaxed),
                   "Ingest after Stop");
      if (batch.empty()) return true;
      if (!Admit(batch.size())) return false;
      if (pipeline_->options_.partition != PartitionPolicy::kRoundRobin &&
          pipeline_->shards_.size() > 1) {
        IngestHashed(batch);
        return true;
      }
      ScatterRoundRobin(batch.size(), [&](size_t offset, size_t len) {
        return BatchSlice<T>::Borrowed(batch.data() + offset, len);
      });
      return true;
    }

    /// This producer's column index in the P x S ring matrix.
    size_t index() const { return index_; }

   private:
    friend class ShardedPipeline;

    /// One (producer, shard) cell of the fan-in matrix: the private ring
    /// plus the flush protocol's per-lane counters. `pushed` has a single
    /// writer (the owning producer), `completed` has a single writer (the
    /// shard worker); Flush reads both with acquire loads — this is the
    /// per-producer fence that replaces the old single-producer plain
    /// `pushed` counter (which raced once Flush could run concurrently
    /// with another producer's ingestion).
    struct Lane {
      explicit Lane(size_t ring_capacity) : ring(ring_capacity) {}
      SpscRing<BatchSlice<T>> ring;
      alignas(64) std::atomic<uint64_t> pushed{0};
      alignas(64) std::atomic<uint64_t> completed{0};
    };

    Producer(ShardedPipeline* pipeline, size_t index)
        : pipeline_(pipeline), index_(index) {
      const PipelineOptions& options = pipeline->options_;
      lanes_.reserve(options.num_shards);
      for (size_t s = 0; s < options.num_shards; ++s) {
        auto lane = std::make_unique<Lane>(options.ring_capacity);
        lane->ring.AttachConsumerGate(&pipeline->shards_[s]->gate);
        lanes_.push_back(std::move(lane));
      }
      staging_.resize(options.num_shards, nullptr);
      elements_metric_ = &obs::PipelineProducerElements(index);
    }

    /// Admission check shared by Ingest/IngestBorrowed: counts the accept
    /// or the rejection (rejected work must be *visible*, not inferred
    /// from missing elements).
    bool Admit(size_t batch_size) {
      const PipelineOptions& options = pipeline_->options_;
      if (options.max_batch_elements != 0 &&
          batch_size > options.max_batch_elements) {
        pipeline_->rejected_batches_.fetch_add(1, std::memory_order_relaxed);
        obs::PipelineRejectedBatches().Increment();
        return false;
      }
      pipeline_->total_ingested_.fetch_add(batch_size,
                                           std::memory_order_relaxed);
      obs::PipelineIngestBatches().Increment();
      obs::PipelineIngestElements().Increment(batch_size);
      elements_metric_->Increment(batch_size);
      return true;
    }

    /// The round-robin routing arithmetic, shared by the pooled and
    /// borrowed paths so their shard assignment stays bit-identical (the
    /// Ingest/IngestBorrowed snapshot-equality contract). `make_slice`
    /// builds the slice for one contiguous chunk [offset, offset + len).
    template <typename SliceFactory>
    void ScatterRoundRobin(size_t batch_size, SliceFactory&& make_slice) {
      const size_t n = pipeline_->shards_.size();
      const size_t start = static_cast<size_t>(
          rr_start_.load(std::memory_order_relaxed));
      const size_t base = batch_size / n;
      const size_t rem = batch_size % n;
      size_t offset = 0;
      for (size_t i = 0; i < n && offset < batch_size; ++i) {
        const size_t shard = (start + i) % n;
        const size_t len = base + (i < rem ? 1 : 0);
        if (len == 0) continue;
        PushSlice(shard, make_slice(offset, len));
        offset += len;
      }
      // Rotate so that sub-chunk-size batches do not pile onto shard 0.
      // Atomic only because Checkpoint may read the cursor concurrently;
      // this producer thread is the sole writer.
      rr_start_.store((start + 1) % n, std::memory_order_relaxed);
    }

    /// Round-robin (and the single-shard fast path of either policy): the
    /// batch is materialized once into one pooled buffer and every shard
    /// receives a span slice of it.
    void IngestShared(std::span<const T> batch) {
      BatchBuffer<T>* buffer = pool_.Acquire();
      buffer->data.assign(batch.begin(), batch.end());
      ScatterRoundRobin(batch.size(), [&](size_t offset, size_t len) {
        return pool_.MakeSlice(buffer, offset, len);
      });
      pool_.Release(buffer);  // drop the producer ref; slices keep it alive
    }

    void IngestHashed(std::span<const T> batch) {
      obs::ScopedLatencyTimer timer(obs::PipelinePartitionNs());
      if (pipeline_->options_.vectorized_hash_partition) {
        IngestHashedVectorized(batch);
      } else {
        IngestHashedPerElement(batch);
      }
    }

    /// Vectorized hash partition: one counting-sort-style pass buckets the
    /// whole batch into per-shard contiguous runs of a single pooled
    /// buffer, then publishes one slice per non-empty run. Three tight
    /// loops (hash+count, prefix-sum, scatter) with no per-element
    /// branching on ring state — this replaces the per-element
    /// route-then-append loop that serialized the old hash path. Scratch
    /// vectors keep their capacity across batches (allocation-free after
    /// warm-up). Bit-identical to the per-element path: the scatter is
    /// stable, so each shard receives the same elements in the same order.
    void IngestHashedVectorized(std::span<const T> batch) {
      const size_t n = pipeline_->shards_.size();
      const size_t m = batch.size();
      shard_of_.resize(m);
      counts_.assign(n, 0);
      for (size_t i = 0; i < m; ++i) {
        const auto s = static_cast<uint32_t>(HashElement(batch[i]) % n);
        shard_of_[i] = s;
        ++counts_[s];
      }
      run_start_.resize(n);
      run_cursor_.resize(n);
      size_t offset = 0;
      for (size_t s = 0; s < n; ++s) {
        run_start_[s] = offset;
        run_cursor_[s] = offset;
        offset += counts_[s];
      }
      BatchBuffer<T>* buffer = pool_.Acquire();
      buffer->data.resize(m);
      T* out = buffer->data.data();
      for (size_t i = 0; i < m; ++i) {
        out[run_cursor_[shard_of_[i]]++] = batch[i];
      }
      for (size_t s = 0; s < n; ++s) {
        if (counts_[s] == 0) continue;
        PushSlice(s, pool_.MakeSlice(buffer, run_start_[s], counts_[s]));
      }
      pool_.Release(buffer);
    }

    /// Per-element hash scatter (reference path): route each element as it
    /// is seen into per-shard pooled staging buffers. Retained behind
    /// `vectorized_hash_partition = false` as the bit-identity oracle for
    /// the vectorized pass (tests/multi_producer_test.cc).
    void IngestHashedPerElement(std::span<const T> batch) {
      const size_t n = pipeline_->shards_.size();
      for (size_t s = 0; s < n; ++s) {
        staging_[s] = pool_.Acquire();
        staging_[s]->data.clear();
      }
      for (const T& x : batch) {
        staging_[static_cast<size_t>(HashElement(x) % n)]->data.push_back(x);
      }
      for (size_t s = 0; s < n; ++s) {
        BatchBuffer<T>* buffer = std::exchange(staging_[s], nullptr);
        if (!buffer->data.empty()) {
          PushSlice(s, pool_.MakeSlice(buffer, 0, buffer->data.size()));
        }
        pool_.Release(buffer);
      }
    }

    void PushSlice(size_t shard, BatchSlice<T> slice) {
      Lane& lane = *lanes_[shard];
      if (lane.ring.Push(std::move(slice))) {
        pipeline_->backpressure_waits_.fetch_add(1,
                                                 std::memory_order_relaxed);
        obs::PipelineBackpressureStalls().Increment();
      }
      // Single writer; release pairs with Flush's acquire load so a fence
      // ordered after this Ingest observes the publish.
      lane.pushed.store(lane.pushed.load(std::memory_order_relaxed) + 1,
                        std::memory_order_release);
      obs::PipelineRingOccupancyHwm().SetMax(
          static_cast<int64_t>(lane.ring.SizeApprox()));
    }

    ShardedPipeline* pipeline_;
    size_t index_;
    BatchPool<T> pool_;  // declared before lanes_: outlives the slices
    std::vector<std::unique_ptr<Lane>> lanes_;  // one ring per shard
    // Round-robin cursor; atomic only for the Checkpoint read, the owning
    // producer thread is the sole writer.
    std::atomic<uint64_t> rr_start_{0};
    std::vector<BatchBuffer<T>*> staging_;  // per-element hash reference
    // Vectorized-partition scratch (capacity sticky across batches).
    std::vector<uint32_t> shard_of_;
    std::vector<size_t> counts_;
    std::vector<size_t> run_start_;
    std::vector<size_t> run_cursor_;
    obs::Counter* elements_metric_ = nullptr;
  };

  ShardedPipeline(const SketchConfig& config, const PipelineOptions& options)
      : config_(config), options_(options) {
    RS_CHECK_MSG(options.num_shards >= 1, "need at least one shard");
    RS_CHECK_MSG(options.ring_capacity >= 1, "ring capacity must be >= 1");
    RS_CHECK_MSG(options.max_producers >= 1, "need at least one producer");
    const auto& registry = SketchRegistry<T>::Global();
    shards_.reserve(options.num_shards);
    for (size_t s = 0; s < options.num_shards; ++s) {
      auto shard = std::make_unique<Shard>(s);
      shard->sketch =
          registry.Create(config, MixSeed(config.seed, uint64_t{s}));
      shard->elements_metric = &obs::PipelineShardElements(s);
      shards_.push_back(std::move(shard));
    }
    // Cached once, before any worker can touch a sketch: Capabilities()
    // must not read a live sketch concurrently with InsertBatch.
    capabilities_ = shards_[0]->sketch.Capabilities();
    // The whole P x S lane matrix exists before any worker starts, so
    // RegisterProducer is a wait-free index handout and workers can scan
    // a fixed set of rings without ever racing a growing container.
    producers_.reserve(options.max_producers);
    for (size_t p = 0; p < options.max_producers; ++p) {
      producers_.push_back(
          std::unique_ptr<Producer>(new Producer(this, p)));
    }
    if (options.prewarm_batch_elements > 0) {
      // Worst-case in-flight buffers per producer: every ring slot in its
      // row plus one batch in each worker's hands plus the one being
      // filled (the per-element hash reference path pins one buffer per
      // shard per batch; the vectorized and round-robin paths strictly
      // fewer).
      const size_t ring_cap = producers_[0]->lanes_[0]->ring.capacity();
      for (auto& producer : producers_) {
        producer->pool_.Reserve(options.num_shards * (ring_cap + 2) + 2,
                                options.prewarm_batch_elements);
      }
    }
    for (size_t s = 0; s < options.num_shards; ++s) {
      shards_[s]->worker = std::thread(&ShardedPipeline::WorkerLoop, this,
                                       shards_[s].get());
    }
  }

  ~ShardedPipeline() { Stop(); }

  ShardedPipeline(const ShardedPipeline&) = delete;
  ShardedPipeline& operator=(const ShardedPipeline&) = delete;

  /// Claims the next free producer column (0, 1, 2, ... in registration
  /// order) and returns its handle, valid for the pipeline's lifetime.
  /// Thread-safe and wait-free (the lane matrix is preallocated). Checks
  /// that at most `options.max_producers` handles are ever claimed.
  /// Producer 0 doubles as the pipeline-level Ingest/IngestBorrowed path —
  /// claim it *either* via RegisterProducer *or* via the pipeline-level
  /// calls, not both from different threads.
  Producer& RegisterProducer() {
    const size_t index = registered_.fetch_add(1, std::memory_order_relaxed);
    RS_CHECK_MSG(index < producers_.size(),
                 "RegisterProducer beyond options.max_producers");
    return *producers_[index];
  }

  /// Producer handles claimed so far (monotone).
  size_t registered_producers() const {
    return registered_.load(std::memory_order_relaxed);
  }

  /// Single-producer convenience: producer 0's Ingest. See
  /// Producer::Ingest for semantics.
  bool Ingest(std::span<const T> batch) {
    return producers_.front()->Ingest(batch);
  }

  /// Single-producer convenience: producer 0's IngestBorrowed.
  bool IngestBorrowed(std::span<const T> batch) {
    return producers_.front()->IngestBorrowed(batch);
  }

  /// Blocks until every batch published before this call has been folded
  /// into its shard's sketch. The fence is per producer lane: for each
  /// (producer, shard) pair the pushed counter is read once (acquire) and
  /// the wait is for the worker's completion counter to reach it — so
  /// Flush never chases a producer that keeps publishing, it just
  /// guarantees the happened-before prefix. Callable from any thread,
  /// concurrently with active producers.
  void Flush() {
    std::lock_guard<std::mutex> control(control_mu_);
    FlushLocked();
  }

  /// Flushes, then folds the per-shard sketches (in shard order) into one
  /// merged summary of the whole stream. Ingestion state is untouched —
  /// snapshots can be taken mid-stream and repeatedly; each call returns
  /// an independent deep copy. Safe concurrently with active producers:
  /// each shard sketch is copied under that shard's sketch lock (workers
  /// take the same lock per batch, so a copy never observes a half-folded
  /// batch). The returned handle carries the full erased query surface
  /// (Quantile / Rank / EstimateFrequency / HeavyHitters / SampleView,
  /// per Capabilities()).
  StreamSketch<T> Snapshot() {
    std::lock_guard<std::mutex> control(control_mu_);
    return SnapshotLocked();
  }

  /// Serving path: flushes, merges, and evaluates `query` against the
  /// merged snapshot, e.g.
  ///
  ///     double median = pipeline.Query(
  ///         [](const StreamSketch<int64_t>& s) { return s.Quantile(0.5); });
  ///
  /// Each call pays one flush + merge; batch related reads into one lambda
  /// (or hold a Snapshot()) rather than issuing many point queries. The
  /// snapshot dies when Query returns, so the lambda must return owning
  /// values — returning SampleView / span is rejected at compile time;
  /// copy the elements out or hold a Snapshot() instead.
  template <typename Fn>
  auto Query(Fn&& query) {
    using Result =
        std::remove_cvref_t<std::invoke_result_t<Fn&&,
                                                 const StreamSketch<T>&>>;
    static_assert(!std::is_same_v<Result, SketchSampleView<T>> &&
                      !std::is_same_v<Result, std::span<const T>>,
                  "Query() destroys the merged snapshot on return; a view "
                  "result would dangle. Copy the sample into a vector, or "
                  "hold pipeline.Snapshot() yourself.");
    const StreamSketch<T> snapshot = Snapshot();
    return std::forward<Fn>(query)(snapshot);
  }

  /// The query capabilities of the configured sketch kind (identical on
  /// every shard and on merged snapshots). Cached at construction — never
  /// touches a live sketch, so it is safe to call concurrently with
  /// ingestion.
  uint32_t Capabilities() const { return capabilities_; }

  /// Flushes remaining work and joins the worker threads. Idempotent;
  /// called by the destructor. Requires every producer quiescent (no
  /// Ingest during or after Stop). Snapshot() remains valid afterwards.
  void Stop() {
    if (stopped_.exchange(true)) return;
    closed_.store(true, std::memory_order_release);
    for (auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->gate.mu);
      shard->gate.cv.notify_all();
    }
    for (auto& shard : shards_) {
      if (shard->worker.joinable()) shard->worker.join();
    }
  }

  // --- durability (wire/) -------------------------------------------------

  /// Atomically persists the pipeline's complete ingestion state to
  /// `path`: the SketchConfig, shard topology (producer 0's round-robin
  /// cursor included) and every shard sketch's full wire state — RNG
  /// words and all, so a restored robust sampler continues the exact
  /// sampling trajectory and keeps its Theorem 1.2 adversarial guarantee.
  ///
  /// Crash safety: bytes go to `path + ".tmp"` first, are fsync'd, and the
  /// file is renamed over `path` (with a directory fsync), so a crash
  /// mid-checkpoint leaves the previous checkpoint intact; a torn or
  /// corrupted file is rejected by Restore via the envelope checksum.
  ///
  /// Flushes first, then freezes every shard (all sketch locks held in
  /// shard order) while serializing, so the captured states form one
  /// consistent cut even while other producers keep ingesting: the
  /// checkpoint contains every batch published before the call, plus
  /// possibly some later ones, and nothing half-folded. For an *exact*
  /// cut, quiesce the producers first (single-producer callers get this
  /// for free). Returns false with a reason in `error` if the configured
  /// kind is not serializable or on I/O failure. Not to be confused with
  /// the Theorem 1.4 *analysis* CheckpointSchedule in core/checkpoints.h —
  /// see docs/wire.md.
  ///
  /// `encoding` selects the framed-body encoding (kZstd falls back to
  /// uncompressed when support is missing or compression does not shrink
  /// the body — Restore handles either transparently).
  bool Checkpoint(const std::string& path, std::string* error = nullptr,
                  wire::BodyEncoding encoding = wire::BodyEncoding::kNone) {
    obs::ScopedLatencyTimer timer(obs::PipelineCheckpointNs());
    obs::TraceSpan span("pipeline", "checkpoint");
    std::lock_guard<std::mutex> control(control_mu_);
    if ((capabilities_ & kCapSerialize) == 0) {
      return CheckpointFail(
          error, "sketch kind is not serializable: " + config_.kind);
    }
    // Same validation Restore applies: a config outside the wire limits
    // must fail *now*, not produce a checkpoint that can never revive.
    if (!wire::ValidateWireConfig(config_, error)) {
      obs::FlightRecorder::Global().RecordError(
          "pipeline", "checkpoint rejected: config outside wire limits");
      return false;
    }
    FlushLocked();
    wire::BufferSink body;
    {
      // Freeze all shards for the duration of serialization (workers take
      // one sketch lock at a time, so ordered acquisition cannot
      // deadlock); concurrent producers stall on full rings at worst.
      std::vector<std::unique_lock<std::mutex>> frozen;
      frozen.reserve(shards_.size());
      for (auto& shard : shards_) {
        frozen.emplace_back(shard->sketch_mu);
      }
      wire::PutString(body, wire::ElementTypeTag<T>());
      wire::WriteSketchConfig(body, config_);
      wire::PutVarint(body, shards_.size());
      wire::PutVarint(body,
                      producers_[0]->rr_start_.load(std::memory_order_relaxed));
      wire::PutVarint(body, total_ingested_.load(std::memory_order_relaxed));
      for (auto& shard : shards_) {
        wire::BufferSink payload;
        shard->sketch.SerializeTo(payload);
        wire::PutBytes(body, payload.bytes());
      }
    }
    obs::PipelineCheckpointBytes().Observe(body.bytes().size());
    const std::string tmp = path + ".tmp";
    {
      wire::FileSink file(tmp);
      // An over-limit body must fail *here*, leaving the previous good
      // checkpoint in place — never produce a file Restore would reject.
      if (!wire::WriteFramedBody(file, kCheckpointMagic, body.bytes(),
                                 encoding) ||
          !file.SyncAndClose()) {
        std::remove(tmp.c_str());
        return CheckpointFail(error, "cannot write checkpoint: " + tmp);
      }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
      std::remove(tmp.c_str());
      return CheckpointFail(error,
                            "cannot rename checkpoint into place: " + path);
    }
    SyncParentDirectory(path);
    return true;
  }

  /// Rebuilds a pipeline from a Checkpoint() file: revives the stored
  /// config, reconstructs the shard sketches through SketchRegistry<T>,
  /// and resumes exactly where the checkpointed pipeline stopped —
  /// continuing ingestion yields bit-identical snapshots to a run that
  /// never stopped (asserted in tests/wire_test.cc). `options.num_shards`
  /// must match the checkpoint's shard count (state is per-shard);
  /// the remaining options — max_producers included — are free to differ
  /// (the persisted round-robin cursor restores into producer 0, the
  /// handle that continues a single-producer trajectory bit-identically).
  /// Returns nullptr with a reason in `error` on any malformed, truncated
  /// or incompatible file.
  static std::unique_ptr<ShardedPipeline> Restore(
      const std::string& path, const PipelineOptions& options,
      std::string* error = nullptr) {
    obs::ScopedLatencyTimer timer(obs::PipelineRestoreNs());
    obs::TraceSpan span("pipeline", "restore");
    wire::FileSource file(path);
    if (!file.open()) {
      RestoreFail(error, "cannot open checkpoint: " + path);
      return nullptr;
    }
    std::vector<uint8_t> body;
    uint64_t version = wire::kWireFormatCurrent;
    if (!wire::ReadFramedBody(file, kCheckpointMagic, &body, error,
                              &version)) {
      // The codec already recorded the frame-level error event.
      return nullptr;
    }
    // The frame version governs the nested payload encodings too — stamp
    // it onto the body and every per-shard payload source.
    wire::BufferSource source(body);
    source.set_wire_version(version);
    SketchConfig config;
    if (!wire::ReadRevivalPrologue(source, &config, error,
                                   SketchRegistry<T>::Global())) {
      // Keep the prologue's specific reason in *error; just trace it.
      obs::FlightRecorder::Global().RecordError(
          "pipeline", "restore: checkpoint prologue rejected");
      return nullptr;
    }
    uint64_t num_shards = 0, rr_start = 0, total_ingested = 0;
    if (!wire::GetVarint(source, &num_shards) ||
        !wire::GetVarint(source, &rr_start) ||
        !wire::GetVarint(source, &total_ingested) || num_shards < 1 ||
        rr_start >= num_shards) {
      RestoreFail(error, "malformed checkpoint topology");
      return nullptr;
    }
    if (num_shards != options.num_shards) {
      RestoreFail(error, "checkpoint has " + std::to_string(num_shards) +
                             " shards, options request " +
                             std::to_string(options.num_shards));
      return nullptr;
    }
    auto pipeline = std::make_unique<ShardedPipeline>(config, options);
    if ((pipeline->capabilities_ & kCapSerialize) == 0) {
      RestoreFail(error, "kind is not serializable for this element type: " +
                             config.kind);
      return nullptr;
    }
    // Workers are parked on their fan-in gates and only touch a sketch
    // after a push, so replacing shard states here is race-free; the
    // ring's release/acquire hand-off publishes these writes to the
    // workers.
    for (auto& shard : pipeline->shards_) {
      std::vector<uint8_t> payload;
      if (!wire::GetBytes(source, &payload, wire::kMaxBodyBytes)) {
        RestoreFail(error, "malformed shard payload");
        return nullptr;
      }
      wire::BufferSource payload_source(payload);
      payload_source.set_wire_version(version);
      if (!shard->sketch.DeserializeFrom(payload_source) ||
          payload_source.remaining() != uint64_t{0}) {
        RestoreFail(error, "malformed shard sketch state");
        return nullptr;
      }
    }
    if (source.remaining() != uint64_t{0}) {
      RestoreFail(error, "trailing bytes after checkpoint body");
      return nullptr;
    }
    pipeline->producers_[0]->rr_start_.store(rr_start,
                                             std::memory_order_relaxed);
    pipeline->total_ingested_.store(total_ingested,
                                    std::memory_order_relaxed);
    return pipeline;
  }

  /// Elements handed to Ingest so far across all producers (including
  /// ones still queued; excluding rejected batches).
  size_t total_ingested() const {
    return total_ingested_.load(std::memory_order_relaxed);
  }

  /// Batches refused by Ingest/IngestBorrowed (any producer) for
  /// exceeding options.max_batch_elements. These were *dropped at the
  /// door* — nothing from them was queued or sketched.
  size_t rejected_batches() const {
    return rejected_batches_.load(std::memory_order_relaxed);
  }

  /// Publishes that found their target shard ring full and had to block.
  /// Nonzero means producers outran workers (backpressure engaged); unlike
  /// rejection, no data was lost.
  size_t backpressure_waits() const {
    return backpressure_waits_.load(std::memory_order_relaxed);
  }

  /// Approximate queued batch slices in shard `s`'s fan-in column, summed
  /// over all producer rings. Monitoring only.
  size_t ShardQueueDepth(size_t s) const {
    size_t depth = 0;
    for (const auto& producer : producers_) {
      depth += producer->lanes_[s]->ring.SizeApprox();
    }
    return depth;
  }

  /// Per-shard stream sizes (flushes first).
  std::vector<size_t> ShardStreamSizes() {
    std::lock_guard<std::mutex> control(control_mu_);
    FlushLocked();
    std::vector<size_t> out;
    out.reserve(shards_.size());
    for (auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->sketch_mu);
      out.push_back(shard->sketch.StreamSize());
    }
    return out;
  }

  /// Pooled batch buffers created so far, across all producer pools. Flat
  /// across steady-state batches — the pipeline's allocation-free
  /// evidence (asserted in tests).
  size_t PooledBuffers() const {
    size_t total = 0;
    for (const auto& producer : producers_) {
      total += producer->pool_.AllocatedBuffers();
    }
    return total;
  }

  size_t num_shards() const { return shards_.size(); }
  size_t max_producers() const { return producers_.size(); }
  const SketchConfig& config() const { return config_; }
  const PipelineOptions& options() const { return options_; }

 private:
  static constexpr char kCheckpointMagic[4] = {'R', 'S', 'C', 'K'};

  static bool Fail(std::string* error, std::string reason) {
    if (error != nullptr) *error = std::move(reason);
    return false;
  }

  static bool CheckpointFail(std::string* error, std::string reason) {
    obs::FlightRecorder::Global().RecordError("pipeline",
                                              "checkpoint: " + reason);
    return Fail(error, std::move(reason));
  }

  static void RestoreFail(std::string* error, std::string reason) {
    obs::FlightRecorder::Global().RecordError("pipeline",
                                              "restore: " + reason);
    Fail(error, std::move(reason));
  }

  /// Makes the rename itself durable: fsync the containing directory so
  /// the new directory entry survives a crash.
  static void SyncParentDirectory(const std::string& path) {
    const size_t slash = path.find_last_of('/');
    const std::string dir =
        slash == std::string::npos ? "." : path.substr(0, slash + 1);
    const int fd = open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd >= 0) {
      fsync(fd);
      close(fd);
    }
  }

  struct Shard {
    explicit Shard(size_t index) : index(index) {}

    const size_t index;

    /// The fan-in column's shared consumer-side wakeup channel: every
    /// producer's ring into this shard notifies here, and the worker
    /// parks here when the whole column is empty.
    FanInGate gate;

    /// Guards the sketch at batch granularity: the worker holds it across
    /// each InsertBatch, Snapshot/Checkpoint hold it while copying or
    /// serializing. Uncontended (a few ns per batch) unless a control
    /// call is actively reading — this is what makes Snapshot and
    /// Checkpoint safe while *other* producers keep ingesting.
    std::mutex sketch_mu;
    StreamSketch<T> sketch;
    std::thread worker;

    // Flush wakeup channel: the worker notifies after each completion iff
    // a flusher declared itself waiting (same Dekker-style protocol as
    // the ring's blocked edge). The per-lane pushed/completed counters
    // that the flusher actually fences on live in Producer::Lane.
    std::mutex done_mu;
    std::condition_variable done_cv;
    std::atomic<bool> flush_waiting{false};

    // Cached at construction so the worker's per-batch increment never
    // takes the registry lock (null only before the constructor wires it).
    obs::Counter* elements_metric = nullptr;
  };

  static uint64_t HashElement(const T& x) {
    if constexpr (std::is_integral_v<T>) {
      // std::hash of an integer is typically the identity; mix so that
      // dense key ranges spread evenly across shards.
      return MixSeed(static_cast<uint64_t>(x), 0x9e3779b97f4a7c15ULL);
    } else {
      return MixSeed(static_cast<uint64_t>(std::hash<T>{}(x)),
                     0x9e3779b97f4a7c15ULL);
    }
  }

  /// See Flush(). Caller holds control_mu_.
  void FlushLocked() {
    obs::ScopedLatencyTimer timer(obs::PipelineFlushNs());
    for (auto& shard : shards_) {
      for (auto& producer : producers_) {
        auto& lane = *producer->lanes_[shard->index];
        const uint64_t target = lane.pushed.load(std::memory_order_acquire);
        if (lane.completed.load(std::memory_order_acquire) >= target) {
          continue;
        }
        std::unique_lock<std::mutex> lock(shard->done_mu);
        shard->flush_waiting.store(true, std::memory_order_relaxed);
        std::atomic_thread_fence(std::memory_order_seq_cst);
        shard->done_cv.wait(lock, [&lane, target] {
          return lane.completed.load(std::memory_order_acquire) >= target;
        });
        shard->flush_waiting.store(false, std::memory_order_relaxed);
      }
    }
  }

  /// See Snapshot(). Caller holds control_mu_.
  StreamSketch<T> SnapshotLocked() {
    FlushLocked();
    StreamSketch<T> merged = CopyShardSketch(0);
    for (size_t s = 1; s < shards_.size(); ++s) {
      const StreamSketch<T> piece = CopyShardSketch(s);
      merged.MergeFrom(piece);
    }
    return merged;
  }

  StreamSketch<T> CopyShardSketch(size_t s) {
    std::lock_guard<std::mutex> lock(shards_[s]->sketch_mu);
    return shards_[s]->sketch;
  }

  /// Shard worker: drains its column of the P x S ring matrix round-robin
  /// (rotating the sweep start for fairness), folds each slice under the
  /// shard's sketch lock, and parks on the shard's FanInGate when the
  /// whole column is empty. Exits once the pipeline is closed and a full
  /// sweep finds nothing left.
  void WorkerLoop(Shard* shard) {
    const size_t num_producers = producers_.size();
    BatchSlice<T> slice;
    size_t sweep_start = 0;
    auto sweep = [&]() -> bool {
      bool did_work = false;
      for (size_t i = 0; i < num_producers; ++i) {
        const size_t p = (sweep_start + i) % num_producers;
        auto& lane = *producers_[p]->lanes_[shard->index];
        if (lane.ring.TryPop(slice)) {
          did_work = true;
          ProcessSlice(shard, lane, slice);
        }
      }
      sweep_start = (sweep_start + 1) % num_producers;
      return did_work;
    };
    auto column_empty = [&]() -> bool {
      for (size_t p = 0; p < num_producers; ++p) {
        if (!producers_[p]->lanes_[shard->index]->ring.EmptyApprox()) {
          return false;
        }
      }
      return true;
    };
    for (;;) {
      if (sweep()) continue;
      if (closed_.load(std::memory_order_acquire)) {
        // Producers are quiescent by the Stop contract: one clean sweep
        // after observing closed_ proves the column is drained.
        if (!sweep()) return;
        continue;
      }
      // Declare-then-recheck against every producer's publish-then-check
      // (seq_cst fences on both sides): either a producer sees the
      // waiting flag and notifies the gate, or we see its new tail here
      // and never sleep.
      shard->gate.waiting.store(true, std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_seq_cst);
      if (column_empty() && !closed_.load(std::memory_order_relaxed)) {
        std::unique_lock<std::mutex> lock(shard->gate.mu);
        shard->gate.cv.wait(lock, [&] {
          return closed_.load(std::memory_order_relaxed) || !column_empty();
        });
      }
      shard->gate.waiting.store(false, std::memory_order_relaxed);
    }
  }

  void ProcessSlice(Shard* shard, typename Producer::Lane& lane,
                    BatchSlice<T>& slice) {
    const size_t n = slice.span().size();
    {
      std::lock_guard<std::mutex> lock(shard->sketch_mu);
      shard->sketch.InsertBatch(slice.span());
    }
    shard->elements_metric->Increment(n);
    slice.Release();  // recycle the buffer before signaling completion
    lane.completed.fetch_add(1, std::memory_order_release);
    // Wake a Flush() waiter, if any (same declare/recheck protocol as
    // the ring's blocked edge).
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (shard->flush_waiting.load(std::memory_order_relaxed)) {
      std::lock_guard<std::mutex> lock(shard->done_mu);
      shard->done_cv.notify_all();
    }
  }

  SketchConfig config_;
  PipelineOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  // The P producer columns; the full matrix is built at construction (see
  // RegisterProducer). Destroyed after shards_ workers are joined via
  // ~ShardedPipeline -> Stop(), and declared after shards_ so shard
  // destruction (which no longer touches lanes) is ordering-safe either
  // way.
  std::vector<std::unique_ptr<Producer>> producers_;
  std::atomic<size_t> registered_{0};
  std::atomic<uint64_t> total_ingested_{0};
  std::atomic<uint64_t> rejected_batches_{0};
  std::atomic<uint64_t> backpressure_waits_{0};
  std::atomic<bool> stopped_{false};
  std::atomic<bool> closed_{false};
  // Serializes the control surface (Flush/Snapshot/Checkpoint/...)
  // against itself; producers never take it.
  std::mutex control_mu_;
  uint32_t capabilities_ = 0;
};

}  // namespace robust_sampling

#endif  // ROBUST_SAMPLING_PIPELINE_SHARDED_PIPELINE_H_
