#ifndef ROBUST_SAMPLING_PIPELINE_SHARDED_PIPELINE_H_
#define ROBUST_SAMPLING_PIPELINE_SHARDED_PIPELINE_H_

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/check.h"
#include "core/random.h"
#include "obs/catalog.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "pipeline/batch_pool.h"
#include "pipeline/sketch_config.h"
#include "pipeline/sketch_registry.h"
#include "pipeline/spsc_ring.h"
#include "pipeline/stream_sketch.h"
#include "wire/codec.h"
#include "wire/snapshot.h"

namespace robust_sampling {

/// How Ingest routes elements to shards.
enum class PartitionPolicy {
  /// Content-addressed: element x always lands on shard hash(x) % N.
  /// Deterministic per element regardless of batch boundaries; the right
  /// choice when per-shard sketches answer per-key questions (CountMin,
  /// heavy hitters) or when replay determinism across different batch
  /// sizes matters.
  kHash,
  /// Each batch is split into N contiguous chunks, one per shard — zero
  /// per-element routing work and zero-copy fan-out (the chunks are span
  /// slices of one shared buffer), the throughput choice for samplers (a
  /// uniform sample of a union does not care how the union was cut).
  kRoundRobin,
};

/// Tuning for ShardedPipeline.
struct PipelineOptions {
  /// Number of worker shards (each owns one sketch instance and one
  /// thread). Requires >= 1.
  size_t num_shards = 4;
  PartitionPolicy partition = PartitionPolicy::kRoundRobin;
  /// Backpressure bound, expressed as ring capacity: each shard's SPSC
  /// ring holds at most this many outstanding batch slices (rounded up to
  /// a power of two); Ingest blocks while the target ring is full.
  /// Requires >= 1.
  size_t ring_capacity = 64;
  /// Pool pre-warm hint: when > 0, the constructor preallocates enough
  /// pooled batch buffers (each with room for this many elements) to cover
  /// the pipeline's worst-case in-flight load, so steady-state Ingest
  /// performs zero heap allocations from the first batch onward. When 0,
  /// the pool warms up on demand instead (allocation-free only after the
  /// in-flight high-water mark has been seen).
  size_t prewarm_batch_elements = 0;
  /// Admission bound: batches larger than this are *rejected* by
  /// Ingest/IngestBorrowed (return false, nothing queued, counted in
  /// rejected_batches()) rather than silently accepted into one oversized
  /// pooled buffer. 0 disables the bound. Rejection is distinct from
  /// backpressure, which delays but never drops.
  size_t max_batch_elements = 0;
};

/// Sharded, batched stream-ingestion engine.
///
/// N worker shards each own an independently seeded sketch (instantiated
/// from one SketchConfig via SketchRegistry<T>) and a fixed-capacity
/// single-producer/single-consumer ring (spsc_ring.h) of batch slices.
/// The producer thread calls `Ingest(batch)`, which materializes the batch
/// once into a refcounted pooled buffer (batch_pool.h) and hands each
/// shard a span slice of it; workers drain their rings through the
/// sketch's `InsertBatch` hot path and the buffer recycles when its last
/// slice is released. Steady state performs no heap allocation and no
/// per-element or per-shard locking — the ring hand-off is futex-free
/// atomics; the only locks on the copying path are the once-per-batch
/// pool acquire/release handoffs (IngestBorrowed under kRoundRobin skips
/// even those). `Snapshot()` folds the per-shard states into one merged
/// StreamSketch answering for the entire stream.
///
/// Adversarial-robustness note: sharding changes *when* an adversary can
/// observe state (between batches rather than between elements) but not
/// the distribution of any per-shard sample, and the merged snapshot of
/// per-shard reservoirs is distributed exactly as one global reservoir
/// over the union (ReservoirSampler::Merge). Theorem 1.2 sizing therefore
/// applies to the merged sample unchanged (see docs/pipeline.md).
///
/// Threading contract: Ingest/Flush/Snapshot/Stop must be called from one
/// producer thread (or externally serialized); the shard workers are
/// internal. Determinism: with fixed config.seed and fixed batch sizes,
/// the merged snapshot is bit-for-bit reproducible under either
/// partitioning policy (kHash is additionally batch-size-invariant).
template <typename T>
class ShardedPipeline {
 public:
  ShardedPipeline(const SketchConfig& config, const PipelineOptions& options)
      : config_(config), options_(options) {
    RS_CHECK_MSG(options.num_shards >= 1, "need at least one shard");
    RS_CHECK_MSG(options.ring_capacity >= 1, "ring capacity must be >= 1");
    const auto& registry = SketchRegistry<T>::Global();
    shards_.reserve(options.num_shards);
    for (size_t s = 0; s < options.num_shards; ++s) {
      auto shard = std::make_unique<Shard>(options.ring_capacity);
      shard->sketch =
          registry.Create(config, MixSeed(config.seed, uint64_t{s}));
      shard->elements_metric = &obs::PipelineShardElements(s);
      shards_.push_back(std::move(shard));
    }
    // Cached once, before any worker can touch a sketch: Capabilities()
    // must not read a live sketch concurrently with InsertBatch.
    capabilities_ = shards_[0]->sketch.Capabilities();
    staging_.resize(options.num_shards, nullptr);
    if (options.prewarm_batch_elements > 0) {
      // Worst-case in-flight buffers: every ring slot plus one batch in
      // each worker's hands plus the one being filled (kHash pins one
      // buffer per shard per batch; kRoundRobin strictly fewer).
      const size_t ring_cap = shards_[0]->ring.capacity();
      pool_.Reserve(options.num_shards * (ring_cap + 2) + 2,
                    options.prewarm_batch_elements);
    }
    for (size_t s = 0; s < options.num_shards; ++s) {
      shards_[s]->worker = std::thread(&ShardedPipeline::WorkerLoop, this,
                                       shards_[s].get());
    }
  }

  ~ShardedPipeline() { Stop(); }

  ShardedPipeline(const ShardedPipeline&) = delete;
  ShardedPipeline& operator=(const ShardedPipeline&) = delete;

  /// Partitions one batch across the shards: one copy into a pooled
  /// buffer, then per-shard span slices (no per-shard copies, no
  /// allocation in steady state). Blocks when a target ring is full
  /// (backpressure). Returns false — with nothing queued — only when the
  /// batch exceeds `options.max_batch_elements` (see rejected_batches()).
  bool Ingest(std::span<const T> batch) {
    RS_CHECK_MSG(!stopped_, "Ingest after Stop");
    if (batch.empty()) return true;
    if (!Admit(batch.size())) return false;
    total_ingested_ += batch.size();
    if (options_.partition == PartitionPolicy::kRoundRobin ||
        shards_.size() == 1) {
      IngestShared(batch);
    } else {
      IngestHashed(batch);
    }
    return true;
  }

  /// True zero-copy ingestion for callers that own stable batch memory
  /// (replaying an in-memory stream, arena-backed network buffers, ...):
  /// shards receive span slices of the *caller's* memory — nothing is
  /// materialized, pooled, or copied, and the skip-sampling InsertBatch
  /// hot paths then touch only the O(k log n) elements they actually
  /// sample instead of paying O(n) memory traffic.
  ///
  /// Lifetime contract: `batch` must stay valid until the next Flush()
  /// (or Snapshot()/Query()/Stop(), which flush). Routing, determinism,
  /// and backpressure are identical to Ingest — the two can be mixed
  /// freely and produce bit-identical snapshots. Under kHash the scatter
  /// is content-addressed, so per-shard staging copies are still made
  /// (into pooled buffers); the borrowed fast path applies to kRoundRobin
  /// and single-shard topologies. Admission (max_batch_elements) and the
  /// false-on-reject contract are identical to Ingest.
  bool IngestBorrowed(std::span<const T> batch) {
    RS_CHECK_MSG(!stopped_, "Ingest after Stop");
    if (batch.empty()) return true;
    if (!Admit(batch.size())) return false;
    total_ingested_ += batch.size();
    if (options_.partition != PartitionPolicy::kRoundRobin &&
        shards_.size() > 1) {
      IngestHashed(batch);
      return true;
    }
    ScatterRoundRobin(batch.size(), [&](size_t offset, size_t len) {
      return BatchSlice<T>::Borrowed(batch.data() + offset, len);
    });
    return true;
  }

  /// Blocks until every queued batch has been folded into its shard's
  /// sketch and all workers are idle.
  void Flush() {
    obs::ScopedLatencyTimer timer(obs::PipelineFlushNs());
    for (auto& shard : shards_) {
      if (shard->completed.load(std::memory_order_acquire) == shard->pushed) {
        continue;
      }
      std::unique_lock<std::mutex> lock(shard->done_mu);
      shard->flush_waiting.store(true, std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_seq_cst);
      shard->done_cv.wait(lock, [&shard] {
        return shard->completed.load(std::memory_order_acquire) ==
               shard->pushed;
      });
      shard->flush_waiting.store(false, std::memory_order_relaxed);
    }
  }

  /// Flushes, then folds the per-shard sketches (in shard order) into one
  /// merged summary of the whole stream. Ingestion state is untouched —
  /// snapshots can be taken mid-stream and repeatedly; each call returns
  /// an independent deep copy. The returned handle carries the full erased
  /// query surface (Quantile / Rank / EstimateFrequency / HeavyHitters /
  /// SampleView, per Capabilities()) — merged snapshots are directly
  /// servable, no downcasting.
  StreamSketch<T> Snapshot() {
    Flush();
    // Post-flush the workers are quiescent (completed == pushed, with
    // acquire/release ordering on `completed` making their sketch writes
    // visible), so the copies need no locks.
    StreamSketch<T> merged = shards_[0]->sketch;
    for (size_t s = 1; s < shards_.size(); ++s) {
      merged.MergeFrom(shards_[s]->sketch);
    }
    return merged;
  }

  /// Serving path: flushes, merges, and evaluates `query` against the
  /// merged snapshot, e.g.
  ///
  ///     double median = pipeline.Query(
  ///         [](const StreamSketch<int64_t>& s) { return s.Quantile(0.5); });
  ///
  /// Each call pays one flush + merge; batch related reads into one lambda
  /// (or hold a Snapshot()) rather than issuing many point queries. The
  /// snapshot dies when Query returns, so the lambda must return owning
  /// values — returning SampleView / span is rejected at compile time;
  /// copy the elements out or hold a Snapshot() instead.
  template <typename Fn>
  auto Query(Fn&& query) {
    using Result =
        std::remove_cvref_t<std::invoke_result_t<Fn&&,
                                                 const StreamSketch<T>&>>;
    static_assert(!std::is_same_v<Result, SketchSampleView<T>> &&
                      !std::is_same_v<Result, std::span<const T>>,
                  "Query() destroys the merged snapshot on return; a view "
                  "result would dangle. Copy the sample into a vector, or "
                  "hold pipeline.Snapshot() yourself.");
    const StreamSketch<T> snapshot = Snapshot();
    return std::forward<Fn>(query)(snapshot);
  }

  /// The query capabilities of the configured sketch kind (identical on
  /// every shard and on merged snapshots). Cached at construction — never
  /// touches a live sketch, so it is safe to call concurrently with
  /// ingestion.
  uint32_t Capabilities() const { return capabilities_; }

  /// Flushes remaining work and joins the worker threads. Idempotent;
  /// called by the destructor. Snapshot() remains valid afterwards.
  void Stop() {
    if (stopped_) return;
    stopped_ = true;
    for (auto& shard : shards_) shard->ring.Close();
    for (auto& shard : shards_) {
      if (shard->worker.joinable()) shard->worker.join();
    }
  }

  // --- durability (wire/) -------------------------------------------------

  /// Atomically persists the pipeline's complete ingestion state to
  /// `path`: the SketchConfig, shard topology (round-robin cursor
  /// included) and every shard sketch's full wire state — RNG words and
  /// all, so a restored robust sampler continues the exact sampling
  /// trajectory and keeps its Theorem 1.2 adversarial guarantee.
  ///
  /// Crash safety: bytes go to `path + ".tmp"` first, are fsync'd, and the
  /// file is renamed over `path` (with a directory fsync), so a crash
  /// mid-checkpoint leaves the previous checkpoint intact; a torn or
  /// corrupted file is rejected by Restore via the envelope checksum.
  ///
  /// Flushes first (same producer-thread contract as Snapshot). Returns
  /// false with a reason in `error` if the configured kind is not
  /// serializable or on I/O failure. Not to be confused with the
  /// Theorem 1.4 *analysis* CheckpointSchedule in core/checkpoints.h —
  /// see docs/wire.md.
  bool Checkpoint(const std::string& path, std::string* error = nullptr) {
    obs::ScopedLatencyTimer timer(obs::PipelineCheckpointNs());
    obs::TraceSpan span("pipeline", "checkpoint");
    if ((capabilities_ & kCapSerialize) == 0) {
      return CheckpointFail(
          error, "sketch kind is not serializable: " + config_.kind);
    }
    // Same validation Restore applies: a config outside the wire limits
    // must fail *now*, not produce a checkpoint that can never revive.
    if (!wire::ValidateWireConfig(config_, error)) {
      obs::FlightRecorder::Global().RecordError(
          "pipeline", "checkpoint rejected: config outside wire limits");
      return false;
    }
    Flush();
    wire::BufferSink body;
    wire::PutString(body, wire::ElementTypeTag<T>());
    wire::WriteSketchConfig(body, config_);
    wire::PutVarint(body, shards_.size());
    wire::PutVarint(body, rr_start_);
    wire::PutVarint(body, total_ingested_);
    for (auto& shard : shards_) {
      wire::BufferSink payload;
      shard->sketch.SerializeTo(payload);
      wire::PutBytes(body, payload.bytes());
    }
    obs::PipelineCheckpointBytes().Observe(body.bytes().size());
    const std::string tmp = path + ".tmp";
    {
      wire::FileSink file(tmp);
      // An over-limit body must fail *here*, leaving the previous good
      // checkpoint in place — never produce a file Restore would reject.
      if (!wire::WriteFramedBody(file, kCheckpointMagic,
                                 kCheckpointFormatVersion, body.bytes()) ||
          !file.SyncAndClose()) {
        std::remove(tmp.c_str());
        return CheckpointFail(error, "cannot write checkpoint: " + tmp);
      }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
      std::remove(tmp.c_str());
      return CheckpointFail(error,
                            "cannot rename checkpoint into place: " + path);
    }
    SyncParentDirectory(path);
    return true;
  }

  /// Rebuilds a pipeline from a Checkpoint() file: revives the stored
  /// config, reconstructs the shard sketches through SketchRegistry<T>,
  /// and resumes exactly where the checkpointed pipeline stopped —
  /// continuing ingestion yields bit-identical snapshots to a run that
  /// never stopped (asserted in tests/wire_test.cc). `options.num_shards`
  /// must match the checkpoint's shard count (state is per-shard);
  /// the remaining options are free to differ. Returns nullptr with a
  /// reason in `error` on any malformed, truncated or incompatible file.
  static std::unique_ptr<ShardedPipeline> Restore(
      const std::string& path, const PipelineOptions& options,
      std::string* error = nullptr) {
    obs::ScopedLatencyTimer timer(obs::PipelineRestoreNs());
    obs::TraceSpan span("pipeline", "restore");
    wire::FileSource file(path);
    if (!file.open()) {
      RestoreFail(error, "cannot open checkpoint: " + path);
      return nullptr;
    }
    std::vector<uint8_t> body;
    if (!wire::ReadFramedBody(file, kCheckpointMagic,
                              kCheckpointFormatVersion, &body, error)) {
      // The codec already recorded the frame-level error event.
      return nullptr;
    }
    wire::BufferSource source(body);
    SketchConfig config;
    if (!wire::ReadRevivalPrologue(source, &config, error,
                                   SketchRegistry<T>::Global())) {
      // Keep the prologue's specific reason in *error; just trace it.
      obs::FlightRecorder::Global().RecordError(
          "pipeline", "restore: checkpoint prologue rejected");
      return nullptr;
    }
    uint64_t num_shards = 0, rr_start = 0, total_ingested = 0;
    if (!wire::GetVarint(source, &num_shards) ||
        !wire::GetVarint(source, &rr_start) ||
        !wire::GetVarint(source, &total_ingested) || num_shards < 1 ||
        rr_start >= num_shards) {
      RestoreFail(error, "malformed checkpoint topology");
      return nullptr;
    }
    if (num_shards != options.num_shards) {
      RestoreFail(error, "checkpoint has " + std::to_string(num_shards) +
                             " shards, options request " +
                             std::to_string(options.num_shards));
      return nullptr;
    }
    auto pipeline = std::make_unique<ShardedPipeline>(config, options);
    if ((pipeline->capabilities_ & kCapSerialize) == 0) {
      RestoreFail(error, "kind is not serializable for this element type: " +
                             config.kind);
      return nullptr;
    }
    // Workers are parked in Pop and only touch a sketch after a push, so
    // replacing shard states here is race-free; the ring's release/acquire
    // hand-off publishes these writes to the workers.
    for (auto& shard : pipeline->shards_) {
      std::vector<uint8_t> payload;
      if (!wire::GetBytes(source, &payload, wire::kMaxBodyBytes)) {
        RestoreFail(error, "malformed shard payload");
        return nullptr;
      }
      wire::BufferSource payload_source(payload);
      if (!shard->sketch.DeserializeFrom(payload_source) ||
          payload_source.remaining() != uint64_t{0}) {
        RestoreFail(error, "malformed shard sketch state");
        return nullptr;
      }
    }
    if (source.remaining() != uint64_t{0}) {
      RestoreFail(error, "trailing bytes after checkpoint body");
      return nullptr;
    }
    pipeline->rr_start_ = static_cast<size_t>(rr_start);
    pipeline->total_ingested_ = static_cast<size_t>(total_ingested);
    return pipeline;
  }

  /// Elements handed to Ingest so far (including ones still queued;
  /// excluding rejected batches).
  size_t total_ingested() const { return total_ingested_; }

  /// Batches refused by Ingest/IngestBorrowed for exceeding
  /// options.max_batch_elements. These were *dropped at the door* —
  /// nothing from them was queued or sketched.
  size_t rejected_batches() const { return rejected_batches_; }

  /// Publishes that found their target shard ring full and had to block.
  /// Nonzero means producers outran workers (backpressure engaged); unlike
  /// rejection, no data was lost.
  size_t backpressure_waits() const { return backpressure_waits_; }

  /// Per-shard stream sizes (flushes first).
  std::vector<size_t> ShardStreamSizes() {
    Flush();
    std::vector<size_t> out;
    out.reserve(shards_.size());
    for (auto& shard : shards_) {
      out.push_back(shard->sketch.StreamSize());
    }
    return out;
  }

  /// Pooled batch buffers created so far. Flat across steady-state batches
  /// — the pipeline's allocation-free evidence (asserted in tests).
  size_t PooledBuffers() const { return pool_.AllocatedBuffers(); }

  size_t num_shards() const { return shards_.size(); }
  const SketchConfig& config() const { return config_; }
  const PipelineOptions& options() const { return options_; }

 private:
  static constexpr char kCheckpointMagic[4] = {'R', 'S', 'C', 'K'};
  static constexpr uint64_t kCheckpointFormatVersion = 1;

  static bool Fail(std::string* error, std::string reason) {
    if (error != nullptr) *error = std::move(reason);
    return false;
  }

  static bool CheckpointFail(std::string* error, std::string reason) {
    obs::FlightRecorder::Global().RecordError("pipeline",
                                              "checkpoint: " + reason);
    return Fail(error, std::move(reason));
  }

  static void RestoreFail(std::string* error, std::string reason) {
    obs::FlightRecorder::Global().RecordError("pipeline",
                                              "restore: " + reason);
    Fail(error, std::move(reason));
  }

  /// Admission check shared by Ingest/IngestBorrowed: counts the accept
  /// or the rejection (the silent-drop blind spot this closes: rejected
  /// work must be *visible*, not inferred from missing elements).
  bool Admit(size_t batch_size) {
    if (options_.max_batch_elements != 0 &&
        batch_size > options_.max_batch_elements) {
      ++rejected_batches_;
      obs::PipelineRejectedBatches().Increment();
      return false;
    }
    obs::PipelineIngestBatches().Increment();
    obs::PipelineIngestElements().Increment(batch_size);
    return true;
  }

  /// Makes the rename itself durable: fsync the containing directory so
  /// the new directory entry survives a crash.
  static void SyncParentDirectory(const std::string& path) {
    const size_t slash = path.find_last_of('/');
    const std::string dir =
        slash == std::string::npos ? "." : path.substr(0, slash + 1);
    const int fd = open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd >= 0) {
      fsync(fd);
      close(fd);
    }
  }

  struct Shard {
    explicit Shard(size_t ring_capacity) : ring(ring_capacity) {}

    SpscRing<BatchSlice<T>> ring;
    StreamSketch<T> sketch;  // worker-owned between quiesce points
    std::thread worker;

    // Flush protocol: the producer counts pushes (single-threaded, plain),
    // the worker publishes completions; completed == pushed means the
    // worker is idle and its sketch writes are visible (release/acquire).
    uint64_t pushed = 0;
    alignas(64) std::atomic<uint64_t> completed{0};
    std::mutex done_mu;
    std::condition_variable done_cv;
    std::atomic<bool> flush_waiting{false};

    // Cached at construction so the worker's per-batch increment never
    // takes the registry lock (null only before the constructor wires it).
    obs::Counter* elements_metric = nullptr;
  };

  static uint64_t HashElement(const T& x) {
    if constexpr (std::is_integral_v<T>) {
      // std::hash of an integer is typically the identity; mix so that
      // dense key ranges spread evenly across shards.
      return MixSeed(static_cast<uint64_t>(x), 0x9e3779b97f4a7c15ULL);
    } else {
      return MixSeed(static_cast<uint64_t>(std::hash<T>{}(x)),
                     0x9e3779b97f4a7c15ULL);
    }
  }

  /// The round-robin routing arithmetic, shared by the pooled and
  /// borrowed paths so their shard assignment stays bit-identical (the
  /// Ingest/IngestBorrowed snapshot-equality contract). `make_slice`
  /// builds the slice for one contiguous chunk [offset, offset + len).
  template <typename SliceFactory>
  void ScatterRoundRobin(size_t batch_size, SliceFactory&& make_slice) {
    const size_t n = shards_.size();
    const size_t base = batch_size / n;
    const size_t rem = batch_size % n;
    size_t offset = 0;
    for (size_t i = 0; i < n && offset < batch_size; ++i) {
      const size_t shard = (rr_start_ + i) % n;
      const size_t len = base + (i < rem ? 1 : 0);
      if (len == 0) continue;
      PushSlice(*shards_[shard], make_slice(offset, len));
      offset += len;
    }
    // Rotate so that sub-chunk-size batches do not pile onto shard 0.
    rr_start_ = (rr_start_ + 1) % n;
  }

  /// Round-robin (and the single-shard fast path of either policy): the
  /// batch is materialized once into one pooled buffer and every shard
  /// receives a span slice of it.
  void IngestShared(std::span<const T> batch) {
    BatchBuffer<T>* buffer = pool_.Acquire();
    buffer->data.assign(batch.begin(), batch.end());
    ScatterRoundRobin(batch.size(), [&](size_t offset, size_t len) {
      return pool_.MakeSlice(buffer, offset, len);
    });
    pool_.Release(buffer);  // drop the producer ref; slices keep it alive
  }

  /// Hash scatter: per-shard pooled staging buffers, refilled in place
  /// (capacity is retained across batches, so no allocation after warmup).
  void IngestHashed(std::span<const T> batch) {
    const size_t n = shards_.size();
    for (size_t s = 0; s < n; ++s) {
      staging_[s] = pool_.Acquire();
      staging_[s]->data.clear();
    }
    for (const T& x : batch) {
      staging_[static_cast<size_t>(HashElement(x) % n)]->data.push_back(x);
    }
    for (size_t s = 0; s < n; ++s) {
      BatchBuffer<T>* buffer = std::exchange(staging_[s], nullptr);
      if (!buffer->data.empty()) {
        PushSlice(*shards_[s],
                  pool_.MakeSlice(buffer, 0, buffer->data.size()));
      }
      pool_.Release(buffer);
    }
  }

  void PushSlice(Shard& shard, BatchSlice<T> slice) {
    if (shard.ring.Push(std::move(slice))) {
      ++backpressure_waits_;
      obs::PipelineBackpressureStalls().Increment();
    }
    ++shard.pushed;
    obs::PipelineRingOccupancyHwm().SetMax(
        static_cast<int64_t>(shard.ring.SizeApprox()));
  }

  void WorkerLoop(Shard* shard) {
    BatchSlice<T> slice;
    while (shard->ring.Pop(slice)) {
      shard->sketch.InsertBatch(slice.span());
      shard->elements_metric->Increment(slice.span().size());
      slice.Release();  // recycle the buffer before signaling completion
      shard->completed.fetch_add(1, std::memory_order_release);
      // Wake a Flush() waiter, if any (same declare/recheck protocol as
      // the ring's blocked edge).
      std::atomic_thread_fence(std::memory_order_seq_cst);
      if (shard->flush_waiting.load(std::memory_order_relaxed)) {
        std::lock_guard<std::mutex> lock(shard->done_mu);
        shard->done_cv.notify_all();
      }
    }
  }

  SketchConfig config_;
  PipelineOptions options_;
  BatchPool<T> pool_;  // declared before shards_: outlives the slices
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<BatchBuffer<T>*> staging_;  // per-shard scatter targets (kHash)
  size_t rr_start_ = 0;
  size_t total_ingested_ = 0;
  size_t rejected_batches_ = 0;     // producer-thread only, like Ingest
  size_t backpressure_waits_ = 0;   // producer-thread only
  bool stopped_ = false;
  uint32_t capabilities_ = 0;
};

}  // namespace robust_sampling

#endif  // ROBUST_SAMPLING_PIPELINE_SHARDED_PIPELINE_H_
