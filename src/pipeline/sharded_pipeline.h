#ifndef ROBUST_SAMPLING_PIPELINE_SHARDED_PIPELINE_H_
#define ROBUST_SAMPLING_PIPELINE_SHARDED_PIPELINE_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/check.h"
#include "core/random.h"
#include "pipeline/sketch_config.h"
#include "pipeline/sketch_registry.h"
#include "pipeline/stream_sketch.h"

namespace robust_sampling {

/// How Ingest routes elements to shards.
enum class PartitionPolicy {
  /// Content-addressed: element x always lands on shard hash(x) % N.
  /// Deterministic per element regardless of batch boundaries; the right
  /// choice when per-shard sketches answer per-key questions (CountMin,
  /// heavy hitters) or when replay determinism across different batch
  /// sizes matters.
  kHash,
  /// Each batch is split into N contiguous chunks, one per shard — zero
  /// per-element routing work, the throughput choice for samplers (a
  /// uniform sample of a union does not care how the union was cut).
  kRoundRobin,
};

/// Tuning for ShardedPipeline.
struct PipelineOptions {
  /// Number of worker shards (each owns one sketch instance and one
  /// thread). Requires >= 1.
  size_t num_shards = 4;
  PartitionPolicy partition = PartitionPolicy::kRoundRobin;
  /// Backpressure bound: Ingest blocks once a shard has this many batches
  /// queued. Requires >= 1.
  size_t mailbox_capacity = 64;
};

/// Sharded, batched stream-ingestion engine.
///
/// N worker shards each own an independently seeded sketch (instantiated
/// from one SketchConfig via SketchRegistry<T>) and a mutex-guarded
/// mailbox of pending batches. The producer thread calls
/// `Ingest(batch)`, which partitions the batch across shards and
/// enqueues; workers drain their mailboxes through the sketch's
/// `InsertBatch` hot path. `Snapshot()` folds the per-shard states into
/// one merged StreamSketch answering for the entire stream.
///
/// Adversarial-robustness note: sharding changes *when* an adversary can
/// observe state (between batches rather than between elements) but not
/// the distribution of any per-shard sample, and the merged snapshot of
/// per-shard reservoirs is distributed exactly as one global reservoir
/// over the union (ReservoirSampler::Merge). Theorem 1.2 sizing therefore
/// applies to the merged sample unchanged.
///
/// Threading contract: Ingest/Flush/Snapshot/Stop must be called from one
/// producer thread (or externally serialized); the shard workers are
/// internal. Determinism: with fixed config.seed, fixed batch sizes, and
/// kHash partitioning (or any partitioning with fixed batch sizes), the
/// merged snapshot is bit-for-bit reproducible.
template <typename T>
class ShardedPipeline {
 public:
  ShardedPipeline(const SketchConfig& config, const PipelineOptions& options)
      : config_(config), options_(options) {
    RS_CHECK_MSG(options.num_shards >= 1, "need at least one shard");
    RS_CHECK_MSG(options.mailbox_capacity >= 1,
                 "mailbox capacity must be >= 1");
    const auto& registry = SketchRegistry<T>::Global();
    shards_.reserve(options.num_shards);
    for (size_t s = 0; s < options.num_shards; ++s) {
      auto shard = std::make_unique<Shard>();
      shard->sketch =
          registry.Create(config, MixSeed(config.seed, uint64_t{s}));
      shards_.push_back(std::move(shard));
    }
    staging_.resize(options.num_shards);
    for (size_t s = 0; s < options.num_shards; ++s) {
      shards_[s]->worker = std::thread(&ShardedPipeline::WorkerLoop, this,
                                       shards_[s].get());
    }
  }

  ~ShardedPipeline() { Stop(); }

  ShardedPipeline(const ShardedPipeline&) = delete;
  ShardedPipeline& operator=(const ShardedPipeline&) = delete;

  /// Partitions one batch across the shards and enqueues the pieces.
  /// Blocks when a target mailbox is full (backpressure).
  void Ingest(std::span<const T> batch) {
    RS_CHECK_MSG(!stopped_, "Ingest after Stop");
    if (batch.empty()) return;
    total_ingested_ += batch.size();
    if (options_.partition == PartitionPolicy::kRoundRobin) {
      IngestRoundRobin(batch);
    } else {
      IngestHashed(batch);
    }
  }

  /// Blocks until every queued batch has been folded into its shard's
  /// sketch and all workers are idle.
  void Flush() {
    for (auto& shard : shards_) {
      std::unique_lock<std::mutex> lock(shard->mu);
      shard->cv.wait(lock, [&shard] {
        return shard->mailbox.empty() && shard->idle;
      });
    }
  }

  /// Flushes, then folds the per-shard sketches (in shard order) into one
  /// merged summary of the whole stream. Ingestion state is untouched —
  /// snapshots can be taken mid-stream and repeatedly; each call returns
  /// an independent deep copy. The returned handle carries the full erased
  /// query surface (Quantile / Rank / EstimateFrequency / HeavyHitters /
  /// SampleView, per Capabilities()) — merged snapshots are directly
  /// servable, no downcasting.
  StreamSketch<T> Snapshot() {
    Flush();
    StreamSketch<T> merged = CopyShardSketch(0);
    for (size_t s = 1; s < shards_.size(); ++s) {
      const StreamSketch<T> piece = CopyShardSketch(s);
      merged.MergeFrom(piece);
    }
    return merged;
  }

  /// Serving path: flushes, merges, and evaluates `query` against the
  /// merged snapshot, e.g.
  ///
  ///     double median = pipeline.Query(
  ///         [](const StreamSketch<int64_t>& s) { return s.Quantile(0.5); });
  ///
  /// Each call pays one flush + merge; batch related reads into one lambda
  /// (or hold a Snapshot()) rather than issuing many point queries. The
  /// snapshot dies when Query returns, so the lambda must return owning
  /// values — returning SampleView / span is rejected at compile time;
  /// copy the elements out or hold a Snapshot() instead.
  template <typename Fn>
  auto Query(Fn&& query) {
    using Result =
        std::remove_cvref_t<std::invoke_result_t<Fn&&,
                                                 const StreamSketch<T>&>>;
    static_assert(!std::is_same_v<Result, SketchSampleView<T>> &&
                      !std::is_same_v<Result, std::span<const T>>,
                  "Query() destroys the merged snapshot on return; a view "
                  "result would dangle. Copy the sample into a vector, or "
                  "hold pipeline.Snapshot() yourself.");
    const StreamSketch<T> snapshot = Snapshot();
    return std::forward<Fn>(query)(snapshot);
  }

  /// The query capabilities of the configured sketch kind (identical on
  /// every shard and on merged snapshots).
  uint32_t Capabilities() {
    std::lock_guard<std::mutex> lock(shards_[0]->mu);
    return shards_[0]->sketch.Capabilities();
  }

  /// Flushes remaining work and joins the worker threads. Idempotent;
  /// called by the destructor. Snapshot() remains valid afterwards.
  void Stop() {
    if (stopped_) return;
    stopped_ = true;
    for (auto& shard : shards_) {
      {
        std::lock_guard<std::mutex> lock(shard->mu);
        shard->stop = true;
      }
      shard->cv.notify_all();
    }
    for (auto& shard : shards_) {
      if (shard->worker.joinable()) shard->worker.join();
    }
  }

  /// Elements handed to Ingest so far (including ones still queued).
  size_t total_ingested() const { return total_ingested_; }

  /// Per-shard stream sizes (flushes first).
  std::vector<size_t> ShardStreamSizes() {
    Flush();
    std::vector<size_t> out;
    out.reserve(shards_.size());
    for (size_t s = 0; s < shards_.size(); ++s) {
      std::lock_guard<std::mutex> lock(shards_[s]->mu);
      out.push_back(shards_[s]->sketch.StreamSize());
    }
    return out;
  }

  size_t num_shards() const { return shards_.size(); }
  const SketchConfig& config() const { return config_; }
  const PipelineOptions& options() const { return options_; }

 private:
  struct Shard {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::vector<T>> mailbox;
    bool stop = false;
    bool idle = true;
    StreamSketch<T> sketch;  // owned by the worker between Flush points
    std::thread worker;
  };

  static uint64_t HashElement(const T& x) {
    if constexpr (std::is_integral_v<T>) {
      // std::hash of an integer is typically the identity; mix so that
      // dense key ranges spread evenly across shards.
      return MixSeed(static_cast<uint64_t>(x), 0x9e3779b97f4a7c15ULL);
    } else {
      return MixSeed(static_cast<uint64_t>(std::hash<T>{}(x)),
                     0x9e3779b97f4a7c15ULL);
    }
  }

  void IngestHashed(std::span<const T> batch) {
    const size_t n = shards_.size();
    if (n == 1) {
      Enqueue(*shards_[0], std::vector<T>(batch.begin(), batch.end()));
      return;
    }
    for (const T& x : batch) {
      staging_[static_cast<size_t>(HashElement(x) % n)].push_back(x);
    }
    for (size_t s = 0; s < n; ++s) {
      if (staging_[s].empty()) continue;
      std::vector<T> piece;
      piece.swap(staging_[s]);
      Enqueue(*shards_[s], std::move(piece));
    }
  }

  void IngestRoundRobin(std::span<const T> batch) {
    const size_t n = shards_.size();
    const size_t base = batch.size() / n;
    const size_t rem = batch.size() % n;
    size_t offset = 0;
    for (size_t i = 0; i < n && offset < batch.size(); ++i) {
      const size_t shard = (rr_start_ + i) % n;
      const size_t len = base + (i < rem ? 1 : 0);
      if (len == 0) continue;
      Enqueue(*shards_[shard],
              std::vector<T>(batch.begin() + offset,
                             batch.begin() + offset + len));
      offset += len;
    }
    // Rotate so that sub-chunk-size batches do not pile onto shard 0.
    rr_start_ = (rr_start_ + 1) % n;
  }

  void Enqueue(Shard& shard, std::vector<T> piece) {
    {
      std::unique_lock<std::mutex> lock(shard.mu);
      shard.cv.wait(lock, [&] {
        return shard.mailbox.size() < options_.mailbox_capacity;
      });
      shard.mailbox.push_back(std::move(piece));
    }
    shard.cv.notify_all();
  }

  StreamSketch<T> CopyShardSketch(size_t s) {
    std::lock_guard<std::mutex> lock(shards_[s]->mu);
    return shards_[s]->sketch;  // deep copy via StreamSketch copy ctor
  }

  void WorkerLoop(Shard* shard) {
    for (;;) {
      std::vector<T> batch;
      {
        std::unique_lock<std::mutex> lock(shard->mu);
        shard->cv.wait(lock, [shard] {
          return shard->stop || !shard->mailbox.empty();
        });
        if (shard->mailbox.empty()) return;  // stop requested, fully drained
        batch = std::move(shard->mailbox.front());
        shard->mailbox.pop_front();
        shard->idle = false;
      }
      // A mailbox slot freed: unblock a backpressured producer.
      shard->cv.notify_all();
      shard->sketch.InsertBatch(batch);
      {
        std::lock_guard<std::mutex> lock(shard->mu);
        shard->idle = true;
      }
      shard->cv.notify_all();
    }
  }

  SketchConfig config_;
  PipelineOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::vector<T>> staging_;  // per-shard scatter buffers (kHash)
  size_t rr_start_ = 0;
  size_t total_ingested_ = 0;
  bool stopped_ = false;
};

}  // namespace robust_sampling

#endif  // ROBUST_SAMPLING_PIPELINE_SHARDED_PIPELINE_H_
