#include "pipeline/sketch_config.h"

#include <cmath>
#include <string>

#include "core/check.h"

namespace robust_sampling {

std::string DescribeSketchConfig(const SketchConfig& config) {
  RS_CHECK_MSG(config.eps > 0.0 && config.eps < 1.0,
               "eps must lie in (0, 1)");
  RS_CHECK_MSG(config.delta > 0.0 && config.delta < 1.0,
               "delta must lie in (0, 1)");
  std::string out = config.kind + "(eps=" + std::to_string(config.eps) +
                    ", delta=" + std::to_string(config.delta);
  if (config.capacity > 0) {
    out += ", k=" + std::to_string(config.capacity);
  }
  if (config.probability >= 0.0) {
    out += ", p=" + std::to_string(config.probability);
  }
  if (config.kind == "count_min") {
    out += ", " + std::to_string(config.width) + "x" +
           std::to_string(config.depth);
  }
  out += ", seed=" + std::to_string(config.seed) + ")";
  return out;
}

double EffectiveLogUniverse(const SketchConfig& config) {
  if (config.log_universe > 0.0) return config.log_universe;
  RS_CHECK_MSG(config.universe_size >= 1, "universe_size must be >= 1");
  return std::log(static_cast<double>(config.universe_size));
}

}  // namespace robust_sampling
