#ifndef ROBUST_SAMPLING_PIPELINE_SPSC_RING_H_
#define ROBUST_SAMPLING_PIPELINE_SPSC_RING_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

#include "core/check.h"

namespace robust_sampling {

/// Shared consumer-side wakeup channel for a *group* of SPSC rings drained
/// by one consumer thread (the pipeline's P-producers-one-shard fan-in
/// column). The consumer declares itself waiting in `waiting`, re-checks
/// every ring in the group, and sleeps on `cv`; any ring's producer that
/// publishes into the group notifies `cv` iff it observes `waiting` after
/// its cursor store (the same Dekker-style seq_cst pairing as the ring's
/// private blocked edge, so a wakeup is never lost across the whole
/// group). Attach with SpscRing::AttachConsumerGate before the consumer
/// starts draining.
struct FanInGate {
  std::mutex mu;
  std::condition_variable cv;
  std::atomic<bool> waiting{false};
};

/// Fixed-capacity single-producer/single-consumer ring buffer.
///
/// The pipeline's per-shard mailbox: the producer thread pushes batch
/// slices, the shard's worker thread pops them. The fast path is futex-free
/// — one release store on the producer side, one acquire load on the
/// consumer side, no locks, no syscalls — so at batch granularity the
/// hand-off cost is a few nanoseconds regardless of ring occupancy.
///
/// Design notes:
///   - Indices are free-running 64-bit counters; the slot is `index &
///     (capacity - 1)` (capacity rounds up to a power of two). Wrap-around
///     would take ~585 years at 1e9 pushes/s.
///   - `head_` (consumer cursor) and `tail_` (producer cursor) live on
///     separate cache lines, and each side keeps a *cached* copy of the
///     other side's cursor (`head_cache_` / `tail_cache_`). The cache is
///     refreshed only when it implies full/empty, so steady-state pushes
///     and pops do not ping-pong the other side's cache line between
///     cores (the classic optimization from folly::ProducerConsumerQueue /
///     rigtorp::SPSCQueue).
///   - Blocking (`Push` on full, `Pop` on empty) falls back to a mutex +
///     condition variable, but the CV is touched only on the blocked edge:
///     a side declares itself waiting in an atomic flag, and the other
///     side notifies only if it observes that flag after publishing its
///     cursor. seq_cst fences pair the flag/cursor accesses (Dekker-style)
///     so a wakeup is never lost; when nobody waits, nobody notifies.
///
/// Memory visibility: a value written into a slot before the producer's
/// release store of `tail_` is fully visible to the consumer after its
/// acquire load — non-atomic payloads need no further synchronization.
template <typename V>
class SpscRing {
 public:
  /// Capacity is the backpressure bound, rounded up to a power of two.
  /// Requires min_capacity >= 1.
  explicit SpscRing(size_t min_capacity)
      : capacity_(RoundUpPow2(min_capacity)),
        mask_(capacity_ - 1),
        slots_(capacity_) {
    RS_CHECK_MSG(min_capacity >= 1, "ring capacity must be >= 1");
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  size_t capacity() const { return capacity_; }

  /// Routes consumer-side wakeups through a gate shared by several rings
  /// instead of this ring's private CV, so one consumer thread can sleep
  /// on N rings at once (the pipeline's P-producer-one-shard fan-in
  /// column). Must be called before any traffic. A gated ring's consumer
  /// must drain via TryPop + the gate's declare/recheck/sleep protocol —
  /// the blocking Pop() wakeup channel is rerouted to the gate, so Pop()
  /// would sleep through pushes. Producer-side blocking (Push on full)
  /// is untouched: each ring still has exactly one producer and its own
  /// not-full CV.
  void AttachConsumerGate(FanInGate* gate) { gate_ = gate; }

  /// Producer: attempts to move `v` into the ring. Returns false (leaving
  /// `v` untouched) when the ring is full.
  bool TryPush(V& v) {
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_cache_ == capacity_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail - head_cache_ == capacity_) return false;
    }
    slots_[tail & mask_] = std::move(v);
    tail_.store(tail + 1, std::memory_order_release);
    // Publish-then-check against the consumer's declare-then-recheck (both
    // sides are ordered by seq_cst fences): either we see its waiting flag
    // and notify, or it sees our new tail and never sleeps.
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (gate_ != nullptr) {
      if (gate_->waiting.load(std::memory_order_relaxed)) {
        std::lock_guard<std::mutex> lock(gate_->mu);
        gate_->cv.notify_one();
      }
    } else if (consumer_waiting_.load(std::memory_order_relaxed)) {
      std::lock_guard<std::mutex> lock(mu_);
      not_empty_.notify_one();
    }
    return true;
  }

  /// Producer: pushes, blocking while the ring is full (backpressure).
  /// Returns true iff the push blocked at least once — the caller's
  /// backpressure-stall signal; the push itself always succeeds.
  bool Push(V v) {
    bool stalled = false;
    while (!TryPush(v)) {
      stalled = true;
      std::unique_lock<std::mutex> lock(mu_);
      producer_waiting_.store(true, std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_seq_cst);
      not_full_.wait(lock, [this] {
        return tail_.load(std::memory_order_relaxed) -
                   head_.load(std::memory_order_acquire) <
               capacity_;
      });
      producer_waiting_.store(false, std::memory_order_relaxed);
    }
    return stalled;
  }

  /// Approximate occupancy (racy by design: relaxed loads of both
  /// cursors). For monitoring — never for flow-control decisions.
  size_t SizeApprox() const {
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    const uint64_t head = head_.load(std::memory_order_relaxed);
    return tail >= head ? static_cast<size_t>(tail - head) : 0;
  }

  /// Consumer: true when a fresh acquire load of the producer cursor shows
  /// nothing to pop. Unlike SizeApprox this is *exact from the consumer's
  /// side*: after EmptyApprox() returns true inside the fan-in gate's
  /// declare-then-recheck window, any later push is guaranteed to notify
  /// the gate (the TryPush seq_cst pairing), so the consumer may sleep.
  bool EmptyApprox() const {
    return head_.load(std::memory_order_relaxed) ==
           tail_.load(std::memory_order_acquire);
  }

  /// Consumer: attempts to pop into `out`. Returns false when empty.
  bool TryPop(V& out) {
    const uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) return false;
    }
    out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (producer_waiting_.load(std::memory_order_relaxed)) {
      std::lock_guard<std::mutex> lock(mu_);
      not_full_.notify_one();
    }
    return true;
  }

  /// Consumer: pops, blocking while the ring is empty. Returns false only
  /// once the ring has been Close()d *and* fully drained — the worker's
  /// exit condition.
  bool Pop(V& out) {
    for (;;) {
      if (TryPop(out)) return true;
      {
        std::unique_lock<std::mutex> lock(mu_);
        consumer_waiting_.store(true, std::memory_order_relaxed);
        std::atomic_thread_fence(std::memory_order_seq_cst);
        not_empty_.wait(lock, [this] {
          return closed_.load(std::memory_order_relaxed) ||
                 head_.load(std::memory_order_relaxed) !=
                     tail_.load(std::memory_order_acquire);
        });
        consumer_waiting_.store(false, std::memory_order_relaxed);
      }
      if (TryPop(out)) return true;
      if (closed_.load(std::memory_order_acquire)) return false;
    }
  }

  /// Producer: marks the ring closed. The consumer drains any remaining
  /// items, then Pop returns false. Idempotent. Notifies the fan-in gate
  /// too, so a gated consumer parked across the whole ring group wakes to
  /// observe shutdown.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_.store(true, std::memory_order_release);
    }
    not_empty_.notify_all();
    not_full_.notify_all();
    if (gate_ != nullptr) {
      std::lock_guard<std::mutex> lock(gate_->mu);
      gate_->cv.notify_all();
    }
  }

 private:
  static size_t RoundUpPow2(size_t v) {
    size_t p = 1;
    while (p < v) p <<= 1;
    return p;
  }

  const size_t capacity_;
  const size_t mask_;
  std::vector<V> slots_;

  // Producer-owned cache line: its cursor plus its stale view of head_.
  alignas(64) std::atomic<uint64_t> tail_{0};
  uint64_t head_cache_ = 0;

  // Consumer-owned cache line: its cursor plus its stale view of tail_.
  alignas(64) std::atomic<uint64_t> head_{0};
  uint64_t tail_cache_ = 0;

  // Blocked edge only; untouched while the ring is neither full nor empty.
  alignas(64) std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::atomic<bool> producer_waiting_{false};
  std::atomic<bool> consumer_waiting_{false};
  std::atomic<bool> closed_{false};

  // Optional shared consumer-side wakeup channel (multi-ring fan-in); set
  // once before traffic starts, then read-only on the hot path.
  FanInGate* gate_ = nullptr;
};

}  // namespace robust_sampling

#endif  // ROBUST_SAMPLING_PIPELINE_SPSC_RING_H_
