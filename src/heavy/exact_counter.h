#ifndef ROBUST_SAMPLING_HEAVY_EXACT_COUNTER_H_
#define ROBUST_SAMPLING_HEAVY_EXACT_COUNTER_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "heavy/frequency_estimator.h"

namespace robust_sampling {

/// Ground-truth frequencies: a full hash-map of counts. O(distinct)
/// space — the oracle the sketches are measured against.
class ExactCounter : public FrequencyEstimator {
 public:
  ExactCounter() = default;

  void Insert(int64_t x) override;
  double EstimateFrequency(int64_t x) const override;
  std::vector<HeavyHitter> HeavyHitters(double threshold) const override;
  size_t StreamSize() const override { return n_; }
  size_t SpaceItems() const override { return counts_.size(); }
  std::string Name() const override { return "exact"; }

  /// Exact count of x.
  uint64_t Count(int64_t x) const;

 private:
  std::unordered_map<int64_t, uint64_t> counts_;
  size_t n_ = 0;
};

}  // namespace robust_sampling

#endif  // ROBUST_SAMPLING_HEAVY_EXACT_COUNTER_H_
