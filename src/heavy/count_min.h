#ifndef ROBUST_SAMPLING_HEAVY_COUNT_MIN_H_
#define ROBUST_SAMPLING_HEAVY_COUNT_MIN_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "heavy/frequency_estimator.h"
#include "wire/codec.h"

namespace robust_sampling {

/// CountMin sketch (Cormode–Muthukrishnan 2005): depth x width counter
/// matrix with pairwise-independent row hashes; the estimate of x is the
/// minimum of its depth counters (one-sided overestimate; static guarantee
/// error <= e*n/width with prob. 1 - e^{-depth}).
///
/// Role in this repository: the *linear sketch* comparator. Hardt–Woodruff
/// [HW13] (cited in the paper's introduction) showed linear sketches are
/// inherently non-robust to adaptive inputs; an adversary that can observe
/// estimates can discover colliding elements and stuff the target's
/// counters. Experiment E8 runs exactly that attack, contrasting with the
/// robust sampled estimator of Corollary 1.6.
///
/// Heavy-hitter reporting tracks candidates in a side map capped at
/// `max_candidates` (the standard sketch+heap construction).
class CountMinSketch : public FrequencyEstimator {
 public:
  /// Requires width >= 2, depth >= 1. With `conservative_update` set, an
  /// insertion only raises the counters that equal the current minimum
  /// (Estan–Varghese conservative update): estimates remain one-sided
  /// overestimates but are never larger than plain CountMin's.
  CountMinSketch(size_t width, size_t depth, uint64_t seed,
                 size_t max_candidates = 1024,
                 bool conservative_update = false);

  void Insert(int64_t x) override;
  void InsertBatch(std::span<const int64_t> xs) override;

  /// Merges another CountMin sketch into this one by adding counters
  /// pointwise (linear-sketch mergeability). Requires identical geometry
  /// *and* identical row hash functions, i.e. both sketches must have been
  /// constructed from the same seed — which is how the pipeline registry
  /// instantiates per-shard CountMin sketches. Estimates remain one-sided
  /// overestimates; for conservative-update sketches the merged counters
  /// are still valid upper bounds (the sum of two per-stream upper bounds),
  /// though no longer as tight as single-stream conservative updating.
  /// Candidate maps are merged and trimmed back to `max_candidates`.
  void Merge(const CountMinSketch& other);
  double EstimateFrequency(int64_t x) const override;
  std::vector<HeavyHitter> HeavyHitters(double threshold) const override;
  size_t StreamSize() const override { return n_; }
  size_t SpaceItems() const override { return width_ * depth_; }
  std::string Name() const override;

  size_t width() const { return width_; }
  size_t depth() const { return depth_; }
  bool conservative_update() const { return conservative_update_; }

  /// Estimated absolute count (min over rows) — the raw sketch readout.
  uint64_t EstimateCount(int64_t x) const;

  /// The row-r bucket index of x (exposed so tests and the E8 adversary can
  /// reason about collisions).
  size_t Bucket(size_t row, int64_t x) const;

  /// Wire format (docs/wire.md): geometry, row seeds (so merged revivals
  /// keep hash compatibility), counters, candidate map (sorted by element
  /// for deterministic bytes) and n.
  void SerializeTo(wire::ByteSink& sink) const;

  /// Replaces this sketch's state from the wire; false on malformed
  /// input, never aborts.
  bool DeserializeFrom(wire::ByteSource& source);

 private:
  size_t width_;
  size_t depth_;
  std::vector<uint64_t> row_seeds_;
  std::vector<std::vector<uint64_t>> counters_;  // [depth][width]
  std::unordered_map<int64_t, uint64_t> candidates_;  // element -> insertions
  size_t max_candidates_;
  bool conservative_update_;
  size_t n_ = 0;
};

}  // namespace robust_sampling

#endif  // ROBUST_SAMPLING_HEAVY_COUNT_MIN_H_
