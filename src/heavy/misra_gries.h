#ifndef ROBUST_SAMPLING_HEAVY_MISRA_GRIES_H_
#define ROBUST_SAMPLING_HEAVY_MISRA_GRIES_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "heavy/frequency_estimator.h"
#include "wire/codec.h"

namespace robust_sampling {

/// Misra–Gries deterministic frequency summary with k counters.
///
/// Guarantee: true_count - n/(k+1) <= stored_count <= true_count, so with
/// k >= ceil(1/eps) counters every frequency is estimated with additive
/// error < eps (one-sided undercount).
///
/// Role in this repository: the canonical *deterministic* heavy-hitter
/// baseline for Corollary 1.6. Its output is a function of the stream
/// alone, hence automatically robust to adaptive adversaries — but it must
/// process every element, while the paper's sampled approach touches only
/// a sublinear subset (and generalizes beyond frequencies).
class MisraGries : public FrequencyEstimator {
 public:
  /// Requires num_counters >= 1.
  explicit MisraGries(size_t num_counters);

  void Insert(int64_t x) override;
  void InsertBatch(std::span<const int64_t> xs) override;

  /// Merges another Misra-Gries summary into this one (Agarwal et al.
  /// mergeable-summaries construction): counters are added pointwise, then
  /// reduced back to k counters by subtracting the (k+1)-st largest count.
  /// The merged error bound (n1 + n2)/(k + 1) is preserved.
  void Merge(const MisraGries& other);
  double EstimateFrequency(int64_t x) const override;
  std::vector<HeavyHitter> HeavyHitters(double threshold) const override;
  size_t StreamSize() const override { return n_; }
  size_t SpaceItems() const override { return counters_.size(); }
  std::string Name() const override;

  size_t num_counters() const { return k_; }

  /// Wire format (docs/wire.md): k, n, counters sorted by element.
  void SerializeTo(wire::ByteSink& sink) const;

  /// Replaces this summary's state from the wire; false on malformed
  /// input, never aborts.
  bool DeserializeFrom(wire::ByteSource& source);

 private:
  size_t k_;
  std::unordered_map<int64_t, uint64_t> counters_;
  size_t n_ = 0;
};

}  // namespace robust_sampling

#endif  // ROBUST_SAMPLING_HEAVY_MISRA_GRIES_H_
