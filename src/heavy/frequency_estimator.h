#ifndef ROBUST_SAMPLING_HEAVY_FREQUENCY_ESTIMATOR_H_
#define ROBUST_SAMPLING_HEAVY_FREQUENCY_ESTIMATOR_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace robust_sampling {

/// A reported heavy hitter: element and its estimated relative frequency.
struct HeavyHitter {
  int64_t element;
  double frequency;

  friend bool operator==(const HeavyHitter& a, const HeavyHitter& b) {
    return a.element == b.element && a.frequency == b.frequency;
  }
};

/// Common interface for streaming frequency/heavy-hitter algorithms (the
/// Corollary 1.6 application and its baselines).
///
/// The (alpha, eps) heavy hitters contract (paper Section 1.2): the output
/// list must contain every element of relative frequency >= alpha and no
/// element of relative frequency <= alpha - eps.
class FrequencyEstimator {
 public:
  virtual ~FrequencyEstimator() = default;

  /// Processes one stream element.
  virtual void Insert(int64_t x) = 0;

  /// Processes a batch of stream elements. Semantically identical to
  /// inserting each element in order; implementations override to pay the
  /// virtual dispatch once per batch instead of once per element.
  virtual void InsertBatch(std::span<const int64_t> xs) {
    for (int64_t x : xs) Insert(x);
  }

  /// Estimated relative frequency of x in the stream so far (0 if the
  /// stream is empty).
  virtual double EstimateFrequency(int64_t x) const = 0;

  /// Elements whose estimated frequency passes `threshold`, sorted by
  /// descending frequency (ties broken by ascending element).
  virtual std::vector<HeavyHitter> HeavyHitters(double threshold) const = 0;

  /// Number of stream elements processed.
  virtual size_t StreamSize() const = 0;

  /// Number of counters/items currently retained.
  virtual size_t SpaceItems() const = 0;

  /// Algorithm name for reports.
  virtual std::string Name() const = 0;
};

/// Sorts a heavy-hitter list into the canonical report order (descending
/// frequency, then ascending element).
void SortHeavyHitters(std::vector<HeavyHitter>* hitters);

}  // namespace robust_sampling

#endif  // ROBUST_SAMPLING_HEAVY_FREQUENCY_ESTIMATOR_H_
