#include "heavy/space_saving.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "core/check.h"

namespace robust_sampling {

SpaceSaving::SpaceSaving(size_t num_counters) : k_(num_counters) {
  RS_CHECK_MSG(num_counters >= 1, "need at least one counter");
}

void SpaceSaving::Bump(int64_t x, uint64_t old_count, uint64_t new_count) {
  auto range = by_count_.equal_range(old_count);
  for (auto it = range.first; it != range.second; ++it) {
    if (it->second == x) {
      by_count_.erase(it);
      break;
    }
  }
  by_count_.emplace(new_count, x);
}

void SpaceSaving::Insert(int64_t x) {
  ++n_;
  auto it = counts_.find(x);
  if (it != counts_.end()) {
    const uint64_t old_count = it->second;
    ++it->second;
    Bump(x, old_count, it->second);
    return;
  }
  if (counts_.size() < k_) {
    counts_.emplace(x, 1);
    by_count_.emplace(1, x);
    return;
  }
  // Evict the minimum-count entry; the newcomer inherits its count + 1.
  const auto min_it = by_count_.begin();
  const uint64_t min_count = min_it->first;
  const int64_t victim = min_it->second;
  by_count_.erase(min_it);
  counts_.erase(victim);
  counts_.emplace(x, min_count + 1);
  by_count_.emplace(min_count + 1, x);
}

void SpaceSaving::InsertBatch(std::span<const int64_t> xs) {
  // Devirtualized inner loop: one indirect call per batch, not per element.
  for (int64_t x : xs) SpaceSaving::Insert(x);
}

void SpaceSaving::Merge(const SpaceSaving& other) {
  RS_CHECK_MSG(k_ == other.k_,
               "cannot merge SpaceSaving summaries of different sizes");
  std::unordered_map<int64_t, uint64_t> combined = counts_;
  for (const auto& [elem, count] : other.counts_) combined[elem] += count;
  std::vector<std::pair<int64_t, uint64_t>> entries(combined.begin(),
                                                    combined.end());
  if (entries.size() > k_) {
    // Keep the k largest counts (ties broken by element for determinism).
    std::nth_element(entries.begin(), entries.begin() + (k_ - 1),
                     entries.end(), [](const auto& a, const auto& b) {
                       return a.second != b.second ? a.second > b.second
                                                   : a.first < b.first;
                     });
    entries.resize(k_);
  }
  counts_.clear();
  by_count_.clear();
  for (const auto& [elem, count] : entries) {
    counts_.emplace(elem, count);
    by_count_.emplace(count, elem);
  }
  n_ += other.n_;
}

double SpaceSaving::EstimateFrequency(int64_t x) const {
  if (n_ == 0) return 0.0;
  const auto it = counts_.find(x);
  if (it == counts_.end()) return 0.0;
  return static_cast<double>(it->second) / static_cast<double>(n_);
}

std::vector<HeavyHitter> SpaceSaving::HeavyHitters(double threshold) const {
  std::vector<HeavyHitter> out;
  if (n_ == 0) return out;
  for (const auto& [elem, count] : counts_) {
    const double f = static_cast<double>(count) / static_cast<double>(n_);
    if (f >= threshold) out.push_back(HeavyHitter{elem, f});
  }
  SortHeavyHitters(&out);
  return out;
}

void SpaceSaving::SerializeTo(wire::ByteSink& sink) const {
  wire::PutCounterSummary(sink, k_, n_, counts_);
}

bool SpaceSaving::DeserializeFrom(wire::ByteSource& source) {
  uint64_t k = 0, n = 0;
  std::unordered_map<int64_t, uint64_t> counts;
  if (!wire::GetCounterSummary(source, &k, &n, &counts)) return false;
  k_ = static_cast<size_t>(k);
  n_ = static_cast<size_t>(n);
  counts_ = std::move(counts);
  by_count_.clear();
  for (const auto& [element, count] : counts_) {
    by_count_.emplace(count, element);
  }
  return true;
}

std::string SpaceSaving::Name() const {
  return "space-saving(k=" + std::to_string(k_) + ")";
}

}  // namespace robust_sampling
