#include "heavy/space_saving.h"

#include "core/check.h"

namespace robust_sampling {

SpaceSaving::SpaceSaving(size_t num_counters) : k_(num_counters) {
  RS_CHECK_MSG(num_counters >= 1, "need at least one counter");
}

void SpaceSaving::Bump(int64_t x, uint64_t old_count, uint64_t new_count) {
  auto range = by_count_.equal_range(old_count);
  for (auto it = range.first; it != range.second; ++it) {
    if (it->second == x) {
      by_count_.erase(it);
      break;
    }
  }
  by_count_.emplace(new_count, x);
}

void SpaceSaving::Insert(int64_t x) {
  ++n_;
  auto it = counts_.find(x);
  if (it != counts_.end()) {
    const uint64_t old_count = it->second;
    ++it->second;
    Bump(x, old_count, it->second);
    return;
  }
  if (counts_.size() < k_) {
    counts_.emplace(x, 1);
    by_count_.emplace(1, x);
    return;
  }
  // Evict the minimum-count entry; the newcomer inherits its count + 1.
  const auto min_it = by_count_.begin();
  const uint64_t min_count = min_it->first;
  const int64_t victim = min_it->second;
  by_count_.erase(min_it);
  counts_.erase(victim);
  counts_.emplace(x, min_count + 1);
  by_count_.emplace(min_count + 1, x);
}

double SpaceSaving::EstimateFrequency(int64_t x) const {
  if (n_ == 0) return 0.0;
  const auto it = counts_.find(x);
  if (it == counts_.end()) return 0.0;
  return static_cast<double>(it->second) / static_cast<double>(n_);
}

std::vector<HeavyHitter> SpaceSaving::HeavyHitters(double threshold) const {
  std::vector<HeavyHitter> out;
  if (n_ == 0) return out;
  for (const auto& [elem, count] : counts_) {
    const double f = static_cast<double>(count) / static_cast<double>(n_);
    if (f >= threshold) out.push_back(HeavyHitter{elem, f});
  }
  SortHeavyHitters(&out);
  return out;
}

std::string SpaceSaving::Name() const {
  return "space-saving(k=" + std::to_string(k_) + ")";
}

}  // namespace robust_sampling
