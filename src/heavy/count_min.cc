#include "heavy/count_min.h"

#include <algorithm>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "core/check.h"
#include "core/random.h"

namespace robust_sampling {

CountMinSketch::CountMinSketch(size_t width, size_t depth, uint64_t seed,
                               size_t max_candidates,
                               bool conservative_update)
    : width_(width),
      depth_(depth),
      max_candidates_(max_candidates),
      conservative_update_(conservative_update) {
  RS_CHECK_MSG(width >= 2, "width must be >= 2");
  RS_CHECK_MSG(depth >= 1, "depth must be >= 1");
  RS_CHECK_MSG(max_candidates >= 1, "need at least one candidate slot");
  SplitMix64 sm(seed);
  row_seeds_.resize(depth_);
  for (auto& s : row_seeds_) s = sm.Next();
  counters_.assign(depth_, std::vector<uint64_t>(width_, 0));
}

size_t CountMinSketch::Bucket(size_t row, int64_t x) const {
  RS_DCHECK(row < depth_);
  SplitMix64 sm(static_cast<uint64_t>(x) ^ row_seeds_[row]);
  return static_cast<size_t>(sm.Next() % width_);
}

void CountMinSketch::Insert(int64_t x) {
  ++n_;
  if (conservative_update_) {
    // Raise only the counters at the current minimum: the estimate after
    // the update is exactly min + 1, and no counter overshoots it.
    const uint64_t target = EstimateCount(x) + 1;
    for (size_t r = 0; r < depth_; ++r) {
      uint64_t& c = counters_[r][Bucket(r, x)];
      c = std::max(c, target);
    }
  } else {
    for (size_t r = 0; r < depth_; ++r) {
      ++counters_[r][Bucket(r, x)];
    }
  }
  // Candidate tracking for heavy-hitter reporting.
  auto it = candidates_.find(x);
  if (it != candidates_.end()) {
    ++it->second;
  } else if (candidates_.size() < max_candidates_) {
    candidates_.emplace(x, 1);
  } else {
    // Evict the least-inserted candidate to make room.
    auto min_it = candidates_.begin();
    for (auto iter = candidates_.begin(); iter != candidates_.end(); ++iter) {
      if (iter->second < min_it->second) min_it = iter;
    }
    candidates_.erase(min_it);
    candidates_.emplace(x, 1);
  }
}

void CountMinSketch::InsertBatch(std::span<const int64_t> xs) {
  // Devirtualized inner loop: one indirect call per batch, not per element.
  for (int64_t x : xs) CountMinSketch::Insert(x);
}

void CountMinSketch::Merge(const CountMinSketch& other) {
  RS_CHECK_MSG(width_ == other.width_ && depth_ == other.depth_,
               "cannot merge CountMin sketches with different geometry");
  RS_CHECK_MSG(row_seeds_ == other.row_seeds_,
               "cannot merge CountMin sketches with different hash rows");
  for (size_t r = 0; r < depth_; ++r) {
    for (size_t c = 0; c < width_; ++c) {
      counters_[r][c] += other.counters_[r][c];
    }
  }
  n_ += other.n_;
  for (const auto& [elem, insertions] : other.candidates_) {
    candidates_[elem] += insertions;
  }
  if (candidates_.size() > max_candidates_) {
    // Keep the max_candidates_ most-inserted candidates in one pass
    // (ties broken by element for determinism).
    std::vector<std::pair<int64_t, uint64_t>> entries(candidates_.begin(),
                                                      candidates_.end());
    std::nth_element(entries.begin(),
                     entries.begin() + (max_candidates_ - 1), entries.end(),
                     [](const auto& a, const auto& b) {
                       return a.second != b.second ? a.second > b.second
                                                   : a.first < b.first;
                     });
    entries.resize(max_candidates_);
    candidates_ = std::unordered_map<int64_t, uint64_t>(entries.begin(),
                                                        entries.end());
  }
}

uint64_t CountMinSketch::EstimateCount(int64_t x) const {
  uint64_t best = std::numeric_limits<uint64_t>::max();
  for (size_t r = 0; r < depth_; ++r) {
    best = std::min(best, counters_[r][Bucket(r, x)]);
  }
  return best;
}

double CountMinSketch::EstimateFrequency(int64_t x) const {
  if (n_ == 0) return 0.0;
  return static_cast<double>(EstimateCount(x)) / static_cast<double>(n_);
}

std::vector<HeavyHitter> CountMinSketch::HeavyHitters(
    double threshold) const {
  std::vector<HeavyHitter> out;
  if (n_ == 0) return out;
  for (const auto& [elem, unused_insertions] : candidates_) {
    const double f = EstimateFrequency(elem);
    if (f >= threshold) out.push_back(HeavyHitter{elem, f});
  }
  SortHeavyHitters(&out);
  return out;
}

void CountMinSketch::SerializeTo(wire::ByteSink& sink) const {
  wire::PutVarint(sink, width_);
  wire::PutVarint(sink, depth_);
  wire::PutVarint(sink, max_candidates_);
  wire::PutVarint(sink, conservative_update_ ? 1 : 0);
  wire::PutVarint(sink, n_);
  wire::PutFixed64Array(sink, row_seeds_);
  // v2: each counter row is one fixed64 bulk Append (width * 8 bytes)
  // instead of width varints — this was the serializer whose per-cell
  // emission dominated snapshot shipping.
  for (const auto& row : counters_) {
    wire::PutFixed64Array(sink, row);
  }
  wire::PutCountMap(sink, candidates_);
}

bool CountMinSketch::DeserializeFrom(wire::ByteSource& source) {
  uint64_t width = 0, depth = 0, max_candidates = 0, conservative = 0, n = 0;
  if (!wire::GetVarint(source, &width) || !wire::GetVarint(source, &depth) ||
      !wire::GetVarint(source, &max_candidates) ||
      !wire::GetVarint(source, &conservative) ||
      !wire::GetVarint(source, &n)) {
    return false;
  }
  if (width < 2 || depth < 1 || conservative > 1 || max_candidates < 1 ||
      max_candidates > wire::kMaxVectorElements ||
      depth > wire::kMaxVectorElements / width) {  // overflow-safe w*d cap
    return source.Fail();
  }
  std::vector<uint64_t> row_seeds(static_cast<size_t>(depth));
  if (!wire::GetFixed64Array(source, row_seeds.data(), row_seeds.size())) {
    return false;
  }
  std::vector<std::vector<uint64_t>> counters(
      static_cast<size_t>(depth),
      std::vector<uint64_t>(static_cast<size_t>(width), 0));
  if (source.wire_version() >= wire::kWireFormatV2) {
    for (auto& row : counters) {
      if (!wire::GetFixed64Array(source, row.data(), row.size())) {
        return false;
      }
      for (uint64_t c : row) {
        // Every counter is a sum of insertion increments, so none can
        // exceed the stream length.
        if (c > n) return source.Fail();
      }
    }
  } else {
    // v1 upgrade reader: per-cell varints.
    for (auto& row : counters) {
      for (uint64_t& c : row) {
        if (!wire::GetVarint(source, &c)) return false;
        if (c > n) return source.Fail();
      }
    }
  }
  std::unordered_map<int64_t, uint64_t> candidates;
  if (!wire::GetCountMap(source, &candidates, max_candidates)) return false;
  width_ = static_cast<size_t>(width);
  depth_ = static_cast<size_t>(depth);
  max_candidates_ = static_cast<size_t>(max_candidates);
  conservative_update_ = conservative == 1;
  n_ = static_cast<size_t>(n);
  row_seeds_ = std::move(row_seeds);
  counters_ = std::move(counters);
  candidates_ = std::move(candidates);
  return true;
}

std::string CountMinSketch::Name() const {
  return std::string(conservative_update_ ? "count-min-cu(" : "count-min(") +
         std::to_string(width_) + "x" + std::to_string(depth_) + ")";
}

}  // namespace robust_sampling
