#include "heavy/misra_gries.h"

#include <algorithm>
#include <functional>
#include <utility>
#include <vector>

#include "core/check.h"

namespace robust_sampling {

MisraGries::MisraGries(size_t num_counters) : k_(num_counters) {
  RS_CHECK_MSG(num_counters >= 1, "need at least one counter");
  counters_.reserve(num_counters + 1);
}

void MisraGries::Insert(int64_t x) {
  ++n_;
  auto it = counters_.find(x);
  if (it != counters_.end()) {
    ++it->second;
    return;
  }
  if (counters_.size() < k_) {
    counters_.emplace(x, 1);
    return;
  }
  // All k counters occupied by other elements: decrement everyone and evict
  // the zeros (the classical MG step).
  for (auto iter = counters_.begin(); iter != counters_.end();) {
    if (--iter->second == 0) {
      iter = counters_.erase(iter);
    } else {
      ++iter;
    }
  }
}

void MisraGries::InsertBatch(std::span<const int64_t> xs) {
  // Devirtualized inner loop: one indirect call per batch, not per element.
  for (int64_t x : xs) MisraGries::Insert(x);
}

void MisraGries::Merge(const MisraGries& other) {
  RS_CHECK_MSG(other.k_ == k_, "merging summaries of different sizes");
  for (const auto& [elem, count] : other.counters_) {
    counters_[elem] += count;
  }
  n_ += other.n_;
  if (counters_.size() > k_) {
    // Find the (k+1)-st largest count and subtract it from everyone.
    std::vector<uint64_t> counts;
    counts.reserve(counters_.size());
    for (const auto& [elem, count] : counters_) counts.push_back(count);
    std::nth_element(counts.begin(), counts.begin() + static_cast<int64_t>(k_),
                     counts.end(), std::greater<uint64_t>());
    const uint64_t cut = counts[k_];
    for (auto it = counters_.begin(); it != counters_.end();) {
      if (it->second <= cut) {
        it = counters_.erase(it);
      } else {
        it->second -= cut;
        ++it;
      }
    }
  }
}

double MisraGries::EstimateFrequency(int64_t x) const {
  if (n_ == 0) return 0.0;
  const auto it = counters_.find(x);
  if (it == counters_.end()) return 0.0;
  return static_cast<double>(it->second) / static_cast<double>(n_);
}

std::vector<HeavyHitter> MisraGries::HeavyHitters(double threshold) const {
  std::vector<HeavyHitter> out;
  if (n_ == 0) return out;
  for (const auto& [elem, count] : counters_) {
    const double f = static_cast<double>(count) / static_cast<double>(n_);
    if (f >= threshold) out.push_back(HeavyHitter{elem, f});
  }
  SortHeavyHitters(&out);
  return out;
}

void MisraGries::SerializeTo(wire::ByteSink& sink) const {
  wire::PutCounterSummary(sink, k_, n_, counters_);
}

bool MisraGries::DeserializeFrom(wire::ByteSource& source) {
  uint64_t k = 0, n = 0;
  std::unordered_map<int64_t, uint64_t> counters;
  if (!wire::GetCounterSummary(source, &k, &n, &counters)) return false;
  k_ = static_cast<size_t>(k);
  n_ = static_cast<size_t>(n);
  counters_ = std::move(counters);
  return true;
}

std::string MisraGries::Name() const {
  return "misra-gries(k=" + std::to_string(k_) + ")";
}

}  // namespace robust_sampling
