#include "heavy/exact_counter.h"

#include <algorithm>

namespace robust_sampling {

void SortHeavyHitters(std::vector<HeavyHitter>* hitters) {
  std::sort(hitters->begin(), hitters->end(),
            [](const HeavyHitter& a, const HeavyHitter& b) {
              if (a.frequency != b.frequency) return a.frequency > b.frequency;
              return a.element < b.element;
            });
}

void ExactCounter::Insert(int64_t x) {
  ++counts_[x];
  ++n_;
}

double ExactCounter::EstimateFrequency(int64_t x) const {
  if (n_ == 0) return 0.0;
  const auto it = counts_.find(x);
  if (it == counts_.end()) return 0.0;
  return static_cast<double>(it->second) / static_cast<double>(n_);
}

uint64_t ExactCounter::Count(int64_t x) const {
  const auto it = counts_.find(x);
  return it == counts_.end() ? 0 : it->second;
}

std::vector<HeavyHitter> ExactCounter::HeavyHitters(double threshold) const {
  std::vector<HeavyHitter> out;
  if (n_ == 0) return out;
  for (const auto& [elem, count] : counts_) {
    const double f = static_cast<double>(count) / static_cast<double>(n_);
    if (f >= threshold) out.push_back(HeavyHitter{elem, f});
  }
  SortHeavyHitters(&out);
  return out;
}

}  // namespace robust_sampling
