#include "heavy/sample_heavy_hitters.h"

#include <unordered_map>

#include "core/check.h"
#include "core/sample_bounds.h"

namespace robust_sampling {

SampleHeavyHitters::SampleHeavyHitters(size_t k, uint64_t seed)
    : reservoir_(k, seed) {}

SampleHeavyHitters SampleHeavyHitters::ForAccuracy(double eps, double delta,
                                                   uint64_t universe_size,
                                                   uint64_t seed) {
  return SampleHeavyHitters(HeavyHitterK(eps, delta, universe_size), seed);
}

void SampleHeavyHitters::Insert(int64_t x) { reservoir_.Insert(x); }

double SampleHeavyHitters::EstimateFrequency(int64_t x) const {
  const std::vector<int64_t>& s = reservoir_.sample();
  if (s.empty()) return 0.0;
  size_t count = 0;
  for (int64_t v : s) count += v == x;
  return static_cast<double>(count) / static_cast<double>(s.size());
}

std::vector<HeavyHitter> SampleHeavyHitters::HeavyHitters(
    double threshold) const {
  std::vector<HeavyHitter> out;
  const std::vector<int64_t>& s = reservoir_.sample();
  if (s.empty()) return out;
  std::unordered_map<int64_t, size_t> counts;
  for (int64_t v : s) ++counts[v];
  const double m = static_cast<double>(s.size());
  for (const auto& [elem, count] : counts) {
    const double f = static_cast<double>(count) / m;
    if (f >= threshold) out.push_back(HeavyHitter{elem, f});
  }
  SortHeavyHitters(&out);
  return out;
}

std::vector<HeavyHitter> SampleHeavyHitters::Report(double alpha,
                                                    double eps) const {
  RS_CHECK(alpha > 0.0 && alpha <= 1.0);
  RS_CHECK(eps > 0.0 && eps < 1.0);
  return HeavyHitters(alpha - eps / 3.0);
}

std::string SampleHeavyHitters::Name() const {
  return "reservoir-sample-hh(k=" + std::to_string(reservoir_.capacity()) +
         ")";
}

}  // namespace robust_sampling
