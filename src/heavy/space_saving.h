#ifndef ROBUST_SAMPLING_HEAVY_SPACE_SAVING_H_
#define ROBUST_SAMPLING_HEAVY_SPACE_SAVING_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "heavy/frequency_estimator.h"
#include "wire/codec.h"

namespace robust_sampling {

/// SpaceSaving (Metwally–Agrawal–El Abbadi 2005) with k counters.
///
/// Keeps exactly k (element, count) pairs; an unseen element replaces the
/// current minimum-count entry and inherits its count + 1, giving one-sided
/// overestimates with error <= n/k. Deterministic, hence adversarially
/// robust; the second deterministic baseline for experiment E8.
///
/// Implementation: hash map element -> count plus an ordered multimap
/// count -> element for O(log k) minimum eviction.
class SpaceSaving : public FrequencyEstimator {
 public:
  /// Requires num_counters >= 1.
  explicit SpaceSaving(size_t num_counters);

  void Insert(int64_t x) override;
  void InsertBatch(std::span<const int64_t> xs) override;

  /// Merges another SpaceSaving summary into this one (Agarwal et al.
  /// mergeable-summaries semantics; SpaceSaving is isomorphic to
  /// Misra-Gries): counts are added pointwise over the union of tracked
  /// elements, then the k largest entries are retained. Estimates stay
  /// one-sided overestimates with total error <= (n1 + n2)/k. Requires
  /// equal counter budgets.
  void Merge(const SpaceSaving& other);
  double EstimateFrequency(int64_t x) const override;
  std::vector<HeavyHitter> HeavyHitters(double threshold) const override;
  size_t StreamSize() const override { return n_; }
  size_t SpaceItems() const override { return counts_.size(); }
  std::string Name() const override;

  size_t num_counters() const { return k_; }

  /// Wire format (docs/wire.md): k, n, counts sorted by element; the
  /// count-ordered eviction index is rebuilt on restore.
  void SerializeTo(wire::ByteSink& sink) const;

  /// Replaces this summary's state from the wire; false on malformed
  /// input, never aborts.
  bool DeserializeFrom(wire::ByteSource& source);

 private:
  void Bump(int64_t x, uint64_t old_count, uint64_t new_count);

  size_t k_;
  std::unordered_map<int64_t, uint64_t> counts_;
  std::multimap<uint64_t, int64_t> by_count_;
  size_t n_ = 0;
};

}  // namespace robust_sampling

#endif  // ROBUST_SAMPLING_HEAVY_SPACE_SAVING_H_
