#ifndef ROBUST_SAMPLING_HEAVY_SAMPLE_HEAVY_HITTERS_H_
#define ROBUST_SAMPLING_HEAVY_SAMPLE_HEAVY_HITTERS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/reservoir_sampler.h"
#include "heavy/frequency_estimator.h"

namespace robust_sampling {

/// The paper's robust heavy-hitter algorithm (Corollary 1.6): maintain a
/// reservoir sample sized for an eps' = eps/3 approximation w.r.t. the
/// singleton family and report every sampled element whose *sample*
/// frequency is >= alpha - eps'.
///
/// Guarantee (adaptive adversary, prob. 1 - delta): every element with
/// stream frequency >= alpha is reported, and no element with stream
/// frequency <= alpha - eps is reported.
class SampleHeavyHitters : public FrequencyEstimator {
 public:
  /// Explicit reservoir size k.
  SampleHeavyHitters(size_t k, uint64_t seed);

  /// Sized by Corollary 1.6 for the (alpha, eps, delta) contract over a
  /// universe of `universe_size` elements.
  static SampleHeavyHitters ForAccuracy(double eps, double delta,
                                        uint64_t universe_size,
                                        uint64_t seed);

  void Insert(int64_t x) override;
  double EstimateFrequency(int64_t x) const override;
  std::vector<HeavyHitter> HeavyHitters(double threshold) const override;

  /// The Corollary 1.6 report: elements with sample frequency
  /// >= alpha - eps/3. Prefer this over HeavyHitters(alpha) when the
  /// (alpha, eps) contract matters.
  std::vector<HeavyHitter> Report(double alpha, double eps) const;

  size_t StreamSize() const override { return reservoir_.stream_size(); }
  size_t SpaceItems() const override { return reservoir_.sample().size(); }
  std::string Name() const override;

  /// Read access to the underlying reservoir.
  const ReservoirSampler<int64_t>& reservoir() const { return reservoir_; }

 private:
  ReservoirSampler<int64_t> reservoir_;
};

}  // namespace robust_sampling

#endif  // ROBUST_SAMPLING_HEAVY_SAMPLE_HEAVY_HITTERS_H_
