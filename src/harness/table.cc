#include "harness/table.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <iostream>
#include <thread>

#include "core/check.h"

// Baked in by CMake (PRIVATE defines on the library target); the
// fallbacks keep non-CMake compiles (e.g. IDE single-file checks) working.
#ifndef RS_GIT_SHA
#define RS_GIT_SHA "unknown"
#endif
#ifndef RS_BUILD_TYPE
#define RS_BUILD_TYPE "unknown"
#endif

namespace robust_sampling {

namespace {

// Strict decimal-number scanner: [-]digits[.digits][(e|E)[+-]digits].
// Deliberately rejects strtod extras (nan, inf, hex, leading '+', leading
// '.') and zero-padded integers ("007") — JSON forbids leading zeros, so
// such cells must round-trip as strings to keep the output parseable.
bool IsPlainNumber(const std::string& s) {
  size_t i = 0;
  if (i < s.size() && s[i] == '-') ++i;
  const size_t int_start = i;
  size_t digits = 0;
  while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) {
    ++i;
    ++digits;
  }
  if (digits == 0) return false;
  if (digits > 1 && s[int_start] == '0') return false;
  if (i < s.size() && s[i] == '.') {
    ++i;
    digits = 0;
    while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) {
      ++i;
      ++digits;
    }
    if (digits == 0) return false;
  }
  if (i < s.size() && (s[i] == 'e' || s[i] == 'E')) {
    ++i;
    if (i < s.size() && (s[i] == '+' || s[i] == '-')) ++i;
    digits = 0;
    while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) {
      ++i;
      ++digits;
    }
    if (digits == 0) return false;
  }
  return i == s.size();
}

void AppendJsonString(const std::string& s, std::string* out) {
  *out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
  *out += '"';
}

void AppendJsonCell(const std::string& cell, std::string* out) {
  if (IsPlainNumber(cell)) {
    *out += cell;
  } else {
    AppendJsonString(cell, out);
  }
}

}  // namespace

MarkdownTable::MarkdownTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  RS_CHECK_MSG(!headers_.empty(), "table needs at least one column");
}

void MarkdownTable::AddRow(std::vector<std::string> cells) {
  RS_CHECK_MSG(cells.size() == headers_.size(),
               "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string MarkdownTable::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& cells,
                      std::string* out) {
    *out += "|";
    for (size_t c = 0; c < cells.size(); ++c) {
      *out += " " + cells[c] +
              std::string(widths[c] - cells[c].size(), ' ') + " |";
    }
    *out += "\n";
  };
  std::string out;
  emit_row(headers_, &out);
  out += "|";
  for (size_t c = 0; c < headers_.size(); ++c) {
    out += std::string(widths[c] + 2, '-') + "|";
  }
  out += "\n";
  for (const auto& row : rows_) emit_row(row, &out);
  return out;
}

void MarkdownTable::Print(std::ostream& os) const { os << ToString(); }

std::string MarkdownTable::ToJson() const {
  std::string out = "[";
  for (size_t r = 0; r < rows_.size(); ++r) {
    out += r == 0 ? "\n" : ",\n";
    out += "  {";
    for (size_t c = 0; c < headers_.size(); ++c) {
      if (c > 0) out += ", ";
      AppendJsonString(headers_[c], &out);
      out += ": ";
      AppendJsonCell(rows_[r][c], &out);
    }
    out += "}";
  }
  out += rows_.empty() ? "]" : "\n]";
  return out;
}

namespace {

std::string BuildMetaJson(
    const std::vector<std::pair<std::string, std::string>>& extra_meta) {
  std::vector<std::pair<std::string, std::string>> meta = {
      {"git_sha", RS_GIT_SHA},
      {"build_type", RS_BUILD_TYPE},
      {"hardware_threads",
       std::to_string(std::thread::hardware_concurrency())},
  };
  char stamp[32] = "unknown";
  const std::time_t now = std::time(nullptr);
  std::tm utc{};
  if (gmtime_r(&now, &utc) != nullptr) {
    std::strftime(stamp, sizeof(stamp), "%Y-%m-%dT%H:%M:%SZ", &utc);
  }
  meta.emplace_back("timestamp_utc", stamp);
  meta.insert(meta.end(), extra_meta.begin(), extra_meta.end());

  std::string out = "{";
  for (size_t i = 0; i < meta.size(); ++i) {
    if (i > 0) out += ", ";
    AppendJsonString(meta[i].first, &out);
    out += ": ";
    AppendJsonCell(meta[i].second, &out);
  }
  out += "}";
  return out;
}

}  // namespace

bool WriteBenchJson(
    const std::string& name, const MarkdownTable& table,
    const std::vector<std::pair<std::string, std::string>>& extra_meta,
    const std::string* metrics_json) {
  const std::string path = "BENCH_" + name + ".json";
  std::ofstream out(path);
  if (!out) {
    std::cerr << "warning: could not open " << path << " for writing\n";
    return false;
  }
  out << "{\"bench\": ";
  std::string tag;
  AppendJsonString(name, &tag);
  out << tag << ", \"meta\": " << BuildMetaJson(extra_meta)
      << ", \"rows\": " << table.ToJson();
  if (metrics_json != nullptr) {
    out << ", \"metrics\": " << *metrics_json;
  }
  out << "}\n";
  out.flush();
  if (!out) {
    std::cerr << "warning: failed writing " << path << "\n";
    return false;
  }
  return true;
}

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string FormatScientific(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", precision, v);
  return buf;
}

std::string FormatBool(bool v) { return v ? "yes" : "no"; }

}  // namespace robust_sampling
