#include "harness/table.h"

#include <algorithm>
#include <cstdio>

#include "core/check.h"

namespace robust_sampling {

MarkdownTable::MarkdownTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  RS_CHECK_MSG(!headers_.empty(), "table needs at least one column");
}

void MarkdownTable::AddRow(std::vector<std::string> cells) {
  RS_CHECK_MSG(cells.size() == headers_.size(),
               "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string MarkdownTable::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& cells,
                      std::string* out) {
    *out += "|";
    for (size_t c = 0; c < cells.size(); ++c) {
      *out += " " + cells[c] +
              std::string(widths[c] - cells[c].size(), ' ') + " |";
    }
    *out += "\n";
  };
  std::string out;
  emit_row(headers_, &out);
  out += "|";
  for (size_t c = 0; c < headers_.size(); ++c) {
    out += std::string(widths[c] + 2, '-') + "|";
  }
  out += "\n";
  for (const auto& row : rows_) emit_row(row, &out);
  return out;
}

void MarkdownTable::Print(std::ostream& os) const { os << ToString(); }

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string FormatScientific(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", precision, v);
  return buf;
}

std::string FormatBool(bool v) { return v ? "yes" : "no"; }

}  // namespace robust_sampling
