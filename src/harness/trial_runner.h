#ifndef ROBUST_SAMPLING_HARNESS_TRIAL_RUNNER_H_
#define ROBUST_SAMPLING_HARNESS_TRIAL_RUNNER_H_

#include <cstdint>
#include <functional>
#include <vector>

namespace robust_sampling {

/// Summary statistics over repeated experiment trials.
struct TrialStats {
  std::vector<double> values;  ///< raw per-trial metric, trial order.
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;

  /// Fraction of trials with value <= threshold (e.g. the empirical
  /// (eps, delta)-robustness success rate).
  double FractionAtMost(double threshold) const;

  /// Fraction of trials with value >= threshold (e.g. attack success rate).
  double FractionAtLeast(double threshold) const;

  /// Empirical q-quantile of the per-trial values.
  double Quantile(double q) const;
};

/// Runs `trial` num_trials times with derived, independent seeds
/// (MixSeed(base_seed, trial_index)) and aggregates the returned metric.
/// Deterministic in (num_trials, base_seed).
TrialStats RunTrials(size_t num_trials, uint64_t base_seed,
                     const std::function<double(uint64_t)>& trial);

}  // namespace robust_sampling

#endif  // ROBUST_SAMPLING_HARNESS_TRIAL_RUNNER_H_
