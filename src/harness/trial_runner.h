#ifndef ROBUST_SAMPLING_HARNESS_TRIAL_RUNNER_H_
#define ROBUST_SAMPLING_HARNESS_TRIAL_RUNNER_H_

#include <cstdint>
#include <functional>
#include <vector>

namespace robust_sampling {

/// Summary statistics over repeated experiment trials.
///
/// `values` preserves trial order (index t holds the metric of the trial
/// seeded with MixSeed(base_seed, t)), so two runs — serial or parallel,
/// any thread count — that agree on (num_trials, base_seed, trial) produce
/// identical `values` vectors, bit for bit.
struct TrialStats {
  std::vector<double> values;  ///< raw per-trial metric, trial order.
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;

  /// Fraction of trials with value <= threshold (e.g. the empirical
  /// (eps, delta)-robustness success rate).
  double FractionAtMost(double threshold) const;

  /// Fraction of trials with value >= threshold (e.g. attack success rate).
  double FractionAtLeast(double threshold) const;

  /// Empirical q-quantile of the per-trial values.
  double Quantile(double q) const;
};

/// Builds a TrialStats (mean/min/max/median) from raw per-trial values,
/// which must be in trial order and non-empty. This is the single
/// aggregation path shared by RunTrials and RunTrialsParallel, so both
/// report identical statistics for identical values.
TrialStats AggregateTrialValues(std::vector<double> values);

/// Runs `trial` num_trials times with derived, independent seeds
/// (MixSeed(base_seed, trial_index)) and aggregates the returned metric.
/// Deterministic in (num_trials, base_seed).
TrialStats RunTrials(size_t num_trials, uint64_t base_seed,
                     const std::function<double(uint64_t)>& trial);

/// Invokes `body(i)` for every i in [0, count) across `num_threads` worker
/// threads (0 = std::thread::hardware_concurrency()). Iterations are
/// claimed from a shared atomic counter, so work is balanced but the
/// *assignment* of iterations to threads is nondeterministic — `body` must
/// derive all randomness from i alone and must be safe to call
/// concurrently. Writes to distinct, pre-sized output slots indexed by i
/// are the intended result channel. Blocks until all iterations finish.
void ParallelFor(size_t count, size_t num_threads,
                 const std::function<void(size_t)>& body);

/// Multi-threaded RunTrials.
///
/// Determinism contract: trial t always receives seed
/// MixSeed(base_seed, t) and its return value is stored at values[t],
/// regardless of which worker thread ran it or in what order trials
/// completed. Therefore, for a `trial` whose result is a pure function of
/// its seed (every AttackLab game trial is: samplers, adversaries, and
/// stream generators draw all randomness from the seed), the resulting
/// TrialStats — including the raw `values` vector — is bit-for-bit
/// identical to RunTrials(num_trials, base_seed, trial) at every
/// num_threads, including 1. `trial` is invoked concurrently and must be
/// thread-safe (share nothing mutable across calls).
///
/// num_threads = 0 uses std::thread::hardware_concurrency().
TrialStats RunTrialsParallel(size_t num_trials, uint64_t base_seed,
                             const std::function<double(uint64_t)>& trial,
                             size_t num_threads = 0);

}  // namespace robust_sampling

#endif  // ROBUST_SAMPLING_HARNESS_TRIAL_RUNNER_H_
