#ifndef ROBUST_SAMPLING_HARNESS_TABLE_H_
#define ROBUST_SAMPLING_HARNESS_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

namespace robust_sampling {

/// Column-aligned markdown table emitter used by every experiment binary in
/// bench/ to print its results in a self-contained, paste-ready form.
class MarkdownTable {
 public:
  explicit MarkdownTable(std::vector<std::string> headers);

  /// Appends one row; must have exactly as many cells as headers.
  void AddRow(std::vector<std::string> cells);

  /// Renders the table with aligned columns.
  std::string ToString() const;

  /// Prints ToString() to `os`.
  void Print(std::ostream& os) const;

  size_t NumRows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision double formatting ("0.0123").
std::string FormatDouble(double v, int precision = 4);

/// Scientific formatting for very large/small magnitudes ("1.23e+18").
std::string FormatScientific(double v, int precision = 2);

/// "yes"/"no".
std::string FormatBool(bool v);

}  // namespace robust_sampling

#endif  // ROBUST_SAMPLING_HARNESS_TABLE_H_
