#ifndef ROBUST_SAMPLING_HARNESS_TABLE_H_
#define ROBUST_SAMPLING_HARNESS_TABLE_H_

#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace robust_sampling {

/// Column-aligned markdown table emitter used by every experiment binary in
/// bench/ to print its results in a self-contained, paste-ready form.
/// Cells are strings; use the formatters below to render numbers at a
/// fixed precision so columns stay comparable across rows.
class MarkdownTable {
 public:
  /// One header cell per column; column count is fixed from here on.
  explicit MarkdownTable(std::vector<std::string> headers);

  /// Appends one row; aborts unless it has exactly as many cells as
  /// headers (mismatches are always bugs in the caller's row assembly).
  void AddRow(std::vector<std::string> cells);

  /// Renders the table with aligned columns.
  std::string ToString() const;

  /// Prints ToString() to `os`.
  void Print(std::ostream& os) const;

  /// Renders the table as a JSON array of row objects keyed by header.
  /// Cells that are plain decimal numbers ("3.14", "-2", "1.23e+18") are
  /// emitted unquoted so downstream tooling can compare them numerically;
  /// everything else becomes an escaped JSON string.
  std::string ToJson() const;

  size_t NumRows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Writes `{"bench": "<name>", "meta": {...}, "rows": <table rows>}` to
/// `BENCH_<name>.json` in the current working directory — the
/// machine-readable perf-trajectory record the bench_t* binaries leave
/// behind. `meta` always carries the run provenance (git sha, build type,
/// UTC timestamp, hardware thread count) plus any bench-specific
/// `extra_meta` pairs, so tools/bench_diff.py can attribute a trend point
/// to a commit and machine shape. When `metrics_json` is non-null (the
/// bench ran with --metrics), it is embedded verbatim under `"metrics"` —
/// expected to be MetricRegistry::ToJson() output. Returns false (after
/// warning on stderr) if the file cannot be written.
bool WriteBenchJson(
    const std::string& name, const MarkdownTable& table,
    const std::vector<std::pair<std::string, std::string>>& extra_meta = {},
    const std::string* metrics_json = nullptr);

/// Fixed-precision double formatting ("0.0123").
std::string FormatDouble(double v, int precision = 4);

/// Scientific formatting for very large/small magnitudes ("1.23e+18").
std::string FormatScientific(double v, int precision = 2);

/// "yes"/"no".
std::string FormatBool(bool v);

}  // namespace robust_sampling

#endif  // ROBUST_SAMPLING_HARNESS_TABLE_H_
