#include "harness/trial_runner.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"
#include "core/random.h"

namespace robust_sampling {

double TrialStats::FractionAtMost(double threshold) const {
  if (values.empty()) return 0.0;
  size_t count = 0;
  for (double v : values) count += v <= threshold;
  return static_cast<double>(count) / static_cast<double>(values.size());
}

double TrialStats::FractionAtLeast(double threshold) const {
  if (values.empty()) return 0.0;
  size_t count = 0;
  for (double v : values) count += v >= threshold;
  return static_cast<double>(count) / static_cast<double>(values.size());
}

double TrialStats::Quantile(double q) const {
  RS_CHECK(!values.empty());
  RS_CHECK(q >= 0.0 && q <= 1.0);
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  const double n = static_cast<double>(sorted.size());
  int64_t idx = static_cast<int64_t>(std::ceil(q * n)) - 1;
  idx = std::clamp(idx, int64_t{0}, static_cast<int64_t>(sorted.size()) - 1);
  return sorted[static_cast<size_t>(idx)];
}

TrialStats RunTrials(size_t num_trials, uint64_t base_seed,
                     const std::function<double(uint64_t)>& trial) {
  RS_CHECK(num_trials >= 1);
  TrialStats stats;
  stats.values.reserve(num_trials);
  for (size_t t = 0; t < num_trials; ++t) {
    stats.values.push_back(trial(MixSeed(base_seed, t)));
  }
  std::vector<double> sorted = stats.values;
  std::sort(sorted.begin(), sorted.end());
  stats.min = sorted.front();
  stats.max = sorted.back();
  stats.median = sorted[sorted.size() / 2];
  double sum = 0.0;
  for (double v : sorted) sum += v;
  stats.mean = sum / static_cast<double>(sorted.size());
  return stats;
}

}  // namespace robust_sampling
