#include "harness/trial_runner.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <thread>

#include "core/check.h"
#include "core/random.h"

namespace robust_sampling {

double TrialStats::FractionAtMost(double threshold) const {
  if (values.empty()) return 0.0;
  size_t count = 0;
  for (double v : values) count += v <= threshold;
  return static_cast<double>(count) / static_cast<double>(values.size());
}

double TrialStats::FractionAtLeast(double threshold) const {
  if (values.empty()) return 0.0;
  size_t count = 0;
  for (double v : values) count += v >= threshold;
  return static_cast<double>(count) / static_cast<double>(values.size());
}

double TrialStats::Quantile(double q) const {
  RS_CHECK(!values.empty());
  RS_CHECK(q >= 0.0 && q <= 1.0);
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  const double n = static_cast<double>(sorted.size());
  int64_t idx = static_cast<int64_t>(std::ceil(q * n)) - 1;
  idx = std::clamp(idx, int64_t{0}, static_cast<int64_t>(sorted.size()) - 1);
  return sorted[static_cast<size_t>(idx)];
}

TrialStats AggregateTrialValues(std::vector<double> values) {
  RS_CHECK_MSG(!values.empty(), "need at least one trial value");
  TrialStats stats;
  stats.values = std::move(values);
  std::vector<double> sorted = stats.values;
  std::sort(sorted.begin(), sorted.end());
  stats.min = sorted.front();
  stats.max = sorted.back();
  stats.median = sorted[sorted.size() / 2];
  double sum = 0.0;
  for (double v : sorted) sum += v;
  stats.mean = sum / static_cast<double>(sorted.size());
  return stats;
}

TrialStats RunTrials(size_t num_trials, uint64_t base_seed,
                     const std::function<double(uint64_t)>& trial) {
  RS_CHECK(num_trials >= 1);
  std::vector<double> values;
  values.reserve(num_trials);
  for (size_t t = 0; t < num_trials; ++t) {
    values.push_back(trial(MixSeed(base_seed, t)));
  }
  return AggregateTrialValues(std::move(values));
}

void ParallelFor(size_t count, size_t num_threads,
                 const std::function<void(size_t)>& body) {
  if (count == 0) return;
  if (num_threads == 0) {
    num_threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  num_threads = std::min(num_threads, count);
  if (num_threads == 1) {
    for (size_t i = 0; i < count; ++i) body(i);
    return;
  }
  std::atomic<size_t> next{0};
  auto worker = [&]() {
    for (size_t i = next.fetch_add(1, std::memory_order_relaxed); i < count;
         i = next.fetch_add(1, std::memory_order_relaxed)) {
      body(i);
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  for (size_t w = 0; w < num_threads; ++w) threads.emplace_back(worker);
  for (auto& t : threads) t.join();
}

TrialStats RunTrialsParallel(size_t num_trials, uint64_t base_seed,
                             const std::function<double(uint64_t)>& trial,
                             size_t num_threads) {
  RS_CHECK(num_trials >= 1);
  std::vector<double> values(num_trials, 0.0);
  ParallelFor(num_trials, num_threads, [&](size_t t) {
    values[t] = trial(MixSeed(base_seed, t));
  });
  return AggregateTrialValues(std::move(values));
}

}  // namespace robust_sampling
