#ifndef ROBUST_SAMPLING_GEOMETRY_RANGE_COUNTING_H_
#define ROBUST_SAMPLING_GEOMETRY_RANGE_COUNTING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/reservoir_sampler.h"
#include "setsystem/point.h"
#include "setsystem/rectangle_family.h"

namespace robust_sampling {

/// Exact number of stream points inside the box (the ground truth).
size_t ExactBoxCount(const std::vector<Point>& points,
                     const RectangleFamily::Box& box);

/// Sample-based range counting (paper Section 1.2, "Range queries"):
/// maintain a robust reservoir sample of the point stream; answer a
/// box-count query R with  d_R(S) * n  — additive error eps*n whenever the
/// sample is an eps-approximation w.r.t. the box family, which Theorem 1.2
/// guarantees (even adversarially) at sample size
/// O((d ln m + ln(1/delta))/eps^2).
class SampleRangeCounter {
 public:
  /// Explicit reservoir size k.
  SampleRangeCounter(size_t k, uint64_t seed);

  /// Sized by Theorem 1.2 for the box family over [1..grid_size]^dims.
  static SampleRangeCounter ForAccuracy(double eps, double delta,
                                        int64_t grid_size, int dims,
                                        uint64_t seed);

  /// Processes one stream point.
  void Insert(const Point& p);

  /// Estimated number of stream points in `box`: d_box(S) * n.
  double EstimateCount(const RectangleFamily::Box& box) const;

  /// Estimated density d_box(S).
  double EstimateDensity(const RectangleFamily::Box& box) const;

  size_t StreamSize() const { return reservoir_.stream_size(); }
  size_t SampleSize() const { return reservoir_.sample().size(); }
  const ReservoirSampler<Point>& reservoir() const { return reservoir_; }

 private:
  ReservoirSampler<Point> reservoir_;
};

}  // namespace robust_sampling

#endif  // ROBUST_SAMPLING_GEOMETRY_RANGE_COUNTING_H_
