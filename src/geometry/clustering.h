#ifndef ROBUST_SAMPLING_GEOMETRY_CLUSTERING_H_
#define ROBUST_SAMPLING_GEOMETRY_CLUSTERING_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/random.h"
#include "setsystem/point.h"

namespace robust_sampling {

/// k-means clustering (Lloyd's algorithm with k-means++ seeding) — the
/// clustering substrate for the paper's "sample, cluster the sample,
/// extrapolate" framework (Section 1.2, "Clustering").

/// Result of one k-means run.
struct KMeansResult {
  std::vector<Point> centers;
  double cost = 0.0;       ///< mean squared distance to nearest center.
  int iterations = 0;      ///< Lloyd iterations performed.
};

/// Squared Euclidean distance.
double SquaredDistance(const Point& a, const Point& b);

/// Mean squared distance from each point to its nearest center.
/// Requires non-empty points and centers.
double KMeansCost(const std::vector<Point>& points,
                  const std::vector<Point>& centers);

/// k-means++ seeding: D^2-weighted center initialization.
std::vector<Point> KMeansPlusPlusInit(const std::vector<Point>& points,
                                      size_t k, Rng& rng);

/// Full pipeline: k-means++ seeding then Lloyd iterations until
/// (relative) convergence or max_iterations. Requires k >= 1,
/// points.size() >= k.
KMeansResult KMeans(const std::vector<Point>& points, size_t k,
                    uint64_t seed, int max_iterations = 50);

}  // namespace robust_sampling

#endif  // ROBUST_SAMPLING_GEOMETRY_CLUSTERING_H_
