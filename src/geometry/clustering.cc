#include "geometry/clustering.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/check.h"

namespace robust_sampling {

double SquaredDistance(const Point& a, const Point& b) {
  RS_DCHECK(a.size() == b.size());
  double sum = 0.0;
  for (size_t j = 0; j < a.size(); ++j) {
    const double d = a[j] - b[j];
    sum += d * d;
  }
  return sum;
}

namespace {

double NearestCenterDistance(const Point& p,
                             const std::vector<Point>& centers,
                             size_t* index = nullptr) {
  double best = std::numeric_limits<double>::infinity();
  size_t best_idx = 0;
  for (size_t c = 0; c < centers.size(); ++c) {
    const double d = SquaredDistance(p, centers[c]);
    if (d < best) {
      best = d;
      best_idx = c;
    }
  }
  if (index != nullptr) *index = best_idx;
  return best;
}

}  // namespace

double KMeansCost(const std::vector<Point>& points,
                  const std::vector<Point>& centers) {
  RS_CHECK_MSG(!points.empty(), "empty point set");
  RS_CHECK_MSG(!centers.empty(), "no centers");
  double total = 0.0;
  for (const Point& p : points) total += NearestCenterDistance(p, centers);
  return total / static_cast<double>(points.size());
}

std::vector<Point> KMeansPlusPlusInit(const std::vector<Point>& points,
                                      size_t k, Rng& rng) {
  RS_CHECK(k >= 1);
  RS_CHECK(points.size() >= k);
  std::vector<Point> centers;
  centers.reserve(k);
  centers.push_back(points[rng.NextBelow(points.size())]);
  std::vector<double> dist2(points.size());
  while (centers.size() < k) {
    double total = 0.0;
    for (size_t i = 0; i < points.size(); ++i) {
      dist2[i] = NearestCenterDistance(points[i], centers);
      total += dist2[i];
    }
    if (total == 0.0) {
      // All points coincide with existing centers; pad with duplicates.
      centers.push_back(centers.back());
      continue;
    }
    double target = rng.NextDouble() * total;
    size_t chosen = points.size() - 1;
    for (size_t i = 0; i < points.size(); ++i) {
      target -= dist2[i];
      if (target <= 0.0) {
        chosen = i;
        break;
      }
    }
    centers.push_back(points[chosen]);
  }
  return centers;
}

KMeansResult KMeans(const std::vector<Point>& points, size_t k,
                    uint64_t seed, int max_iterations) {
  RS_CHECK(k >= 1);
  RS_CHECK_MSG(points.size() >= k, "fewer points than clusters");
  RS_CHECK(max_iterations >= 1);
  const size_t dims = points[0].size();
  Rng rng(seed);
  KMeansResult result;
  result.centers = KMeansPlusPlusInit(points, k, rng);
  std::vector<size_t> assignment(points.size());
  double prev_cost = std::numeric_limits<double>::infinity();
  for (int iter = 0; iter < max_iterations; ++iter) {
    result.iterations = iter + 1;
    // Assignment step.
    double cost = 0.0;
    for (size_t i = 0; i < points.size(); ++i) {
      cost += NearestCenterDistance(points[i], result.centers,
                                    &assignment[i]);
    }
    cost /= static_cast<double>(points.size());
    // Update step.
    std::vector<Point> sums(k, Point(dims, 0.0));
    std::vector<size_t> counts(k, 0);
    for (size_t i = 0; i < points.size(); ++i) {
      const size_t c = assignment[i];
      ++counts[c];
      for (size_t j = 0; j < dims; ++j) sums[c][j] += points[i][j];
    }
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cluster at a random point.
        result.centers[c] = points[rng.NextBelow(points.size())];
        continue;
      }
      for (size_t j = 0; j < dims; ++j) {
        result.centers[c][j] = sums[c][j] / static_cast<double>(counts[c]);
      }
    }
    if (prev_cost - cost <= 1e-12 * std::max(1.0, cost)) {
      result.cost = cost;
      return result;
    }
    prev_cost = cost;
  }
  result.cost = KMeansCost(points, result.centers);
  return result;
}

}  // namespace robust_sampling
