#ifndef ROBUST_SAMPLING_GEOMETRY_CENTER_POINT_H_
#define ROBUST_SAMPLING_GEOMETRY_CENTER_POINT_H_

#include <cstddef>
#include <vector>

#include "setsystem/point.h"

namespace robust_sampling {

/// beta-center points (paper Section 1.2, "Center points"; [CEM+96]).
///
/// A point c is a beta-center of a point set P if every closed halfspace
/// containing c contains at least beta*|P| points of P. Equivalently, c's
/// *Tukey depth* is >= beta. In the plane a (1/3)-center always exists
/// (the classical centerpoint theorem).
///
/// This module works with a discretized direction set (matching
/// HalfspaceFamily2D): depth is evaluated over `num_directions` evenly
/// spaced halfspace normals. If a sample S is an eps-approximation of the
/// stream X w.r.t. halfspaces, then depth_X(c) >= depth_S(c) - eps for
/// every c, so a (beta + eps)-center of the sample is a beta-center of the
/// stream — computable from the (robust) sample alone.

/// The discretized Tukey depth of c in `points`: the minimum, over
/// `num_directions` halfspace normals u, of the fraction of points p with
/// u . p >= u . c (the cheapest closed halfspace containing c).
/// Requires points non-empty, 2-D.
double TukeyDepth2D(const std::vector<Point>& points, const Point& c,
                    int num_directions);

/// Whether c is a beta-center of `points` under the discretized depth.
bool IsBetaCenter2D(const std::vector<Point>& points, const Point& c,
                    double beta, int num_directions);

/// Finds the deepest point among `candidates` (argmax of TukeyDepth2D),
/// returning its index. Requires non-empty candidates and points.
size_t DeepestCandidate2D(const std::vector<Point>& points,
                          const std::vector<Point>& candidates,
                          int num_directions);

/// Computes an approximate center of `points` by searching a candidate set
/// made of (a) the points themselves and (b) the coordinate-wise median.
/// Returns the deepest candidate. With `points` = a robust sample of a
/// stream, this realizes the paper's "compute a beta-center of a stream in
/// the adversarial model" application.
Point ApproximateCenter2D(const std::vector<Point>& points,
                          int num_directions);

}  // namespace robust_sampling

#endif  // ROBUST_SAMPLING_GEOMETRY_CENTER_POINT_H_
