#include "geometry/center_point.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "core/check.h"

namespace robust_sampling {

double TukeyDepth2D(const std::vector<Point>& points, const Point& c,
                    int num_directions) {
  RS_CHECK_MSG(!points.empty(), "depth in an empty point set");
  RS_CHECK(c.size() == 2);
  RS_CHECK(num_directions >= 1);
  const double n = static_cast<double>(points.size());
  double min_fraction = 1.0;
  for (int j = 0; j < num_directions; ++j) {
    const double theta =
        2.0 * std::numbers::pi * static_cast<double>(j) / num_directions;
    const double ux = std::cos(theta), uy = std::sin(theta);
    const double cproj = ux * c[0] + uy * c[1];
    size_t count = 0;
    for (const Point& p : points) {
      RS_DCHECK(p.size() == 2);
      if (ux * p[0] + uy * p[1] >= cproj) ++count;
    }
    min_fraction = std::min(min_fraction, static_cast<double>(count) / n);
  }
  return min_fraction;
}

bool IsBetaCenter2D(const std::vector<Point>& points, const Point& c,
                    double beta, int num_directions) {
  return TukeyDepth2D(points, c, num_directions) >= beta;
}

size_t DeepestCandidate2D(const std::vector<Point>& points,
                          const std::vector<Point>& candidates,
                          int num_directions) {
  RS_CHECK_MSG(!candidates.empty(), "no candidates");
  size_t best = 0;
  double best_depth = -1.0;
  for (size_t i = 0; i < candidates.size(); ++i) {
    const double d = TukeyDepth2D(points, candidates[i], num_directions);
    if (d > best_depth) {
      best_depth = d;
      best = i;
    }
  }
  return best;
}

Point ApproximateCenter2D(const std::vector<Point>& points,
                          int num_directions) {
  RS_CHECK_MSG(!points.empty(), "empty point set");
  std::vector<Point> candidates = points;
  // Coordinate-wise median — a (1/(d+1) = 1/3)-ish center for benign data
  // and a strong candidate in general.
  std::vector<double> xs, ys;
  xs.reserve(points.size());
  ys.reserve(points.size());
  for (const Point& p : points) {
    xs.push_back(p[0]);
    ys.push_back(p[1]);
  }
  const size_t mid = points.size() / 2;
  std::nth_element(xs.begin(), xs.begin() + mid, xs.end());
  std::nth_element(ys.begin(), ys.begin() + mid, ys.end());
  candidates.push_back(Point{xs[mid], ys[mid]});
  const size_t best = DeepestCandidate2D(points, candidates, num_directions);
  return candidates[best];
}

}  // namespace robust_sampling
