#include "geometry/range_counting.h"

#include "core/check.h"
#include "core/sample_bounds.h"

namespace robust_sampling {

size_t ExactBoxCount(const std::vector<Point>& points,
                     const RectangleFamily::Box& box) {
  size_t count = 0;
  for (const Point& p : points) count += box.Contains(p);
  return count;
}

SampleRangeCounter::SampleRangeCounter(size_t k, uint64_t seed)
    : reservoir_(k, seed) {}

SampleRangeCounter SampleRangeCounter::ForAccuracy(double eps, double delta,
                                                   int64_t grid_size,
                                                   int dims, uint64_t seed) {
  const RectangleFamily family(grid_size, dims);
  return SampleRangeCounter(
      ReservoirRobustK(eps, delta, family.LogCardinality()), seed);
}

void SampleRangeCounter::Insert(const Point& p) { reservoir_.Insert(p); }

double SampleRangeCounter::EstimateDensity(
    const RectangleFamily::Box& box) const {
  const std::vector<Point>& s = reservoir_.sample();
  if (s.empty()) return 0.0;
  size_t count = 0;
  for (const Point& p : s) count += box.Contains(p);
  return static_cast<double>(count) / static_cast<double>(s.size());
}

double SampleRangeCounter::EstimateCount(
    const RectangleFamily::Box& box) const {
  return EstimateDensity(box) * static_cast<double>(StreamSize());
}

}  // namespace robust_sampling
