#ifndef ROBUST_SAMPLING_ADVERSARY_BASIC_ADVERSARIES_H_
#define ROBUST_SAMPLING_ADVERSARY_BASIC_ADVERSARIES_H_

#include <functional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/adversarial_game.h"
#include "core/check.h"
#include "core/random.h"

namespace robust_sampling {

// Baseline (non-bisection) adversary strategies for the paper's two-player
// game. All are also available by string key from
// AdversaryRegistry<T>::Global() (attacklab/adversary_registry.h):
// "static", "uniform", "greedy-gap"; see docs/registry.md.

/// A static (oblivious) adversary: replays a stream fixed in advance,
/// ignoring the sampler's state. This is exactly the classical non-adaptive
/// setting; Theorem 1.2's contrast experiments (E6) pit it against the
/// adaptive strategies. Aborts if the game runs past the end of the fixed
/// stream (the stream must have length >= n).
template <typename T>
class StaticAdversary : public Adversary<T> {
 public:
  explicit StaticAdversary(std::vector<T> stream)
      : stream_(std::move(stream)) {
    RS_CHECK_MSG(!stream_.empty(), "static stream must be non-empty");
  }

  T NextElement(std::span<const T> /*sample_before*/,
                size_t round) override {
    RS_CHECK_MSG(round <= stream_.size(), "static stream exhausted");
    return stream_[round - 1];
  }

  std::string Name() const override { return "static"; }

 private:
  std::vector<T> stream_;
};

/// An i.i.d. uniform adversary over the integer universe {1, ..., N}: the
/// benign baseline (no adaptivity, no structure).
class UniformAdversary : public Adversary<int64_t> {
 public:
  UniformAdversary(int64_t universe_size, uint64_t seed)
      : universe_size_(universe_size), rng_(seed) {
    RS_CHECK(universe_size >= 1);
  }

  int64_t NextElement(std::span<const int64_t> /*sample_before*/,
                      size_t /*round*/) override {
    return static_cast<int64_t>(
               rng_.NextBelow(static_cast<uint64_t>(universe_size_))) +
           1;
  }

  std::string Name() const override { return "uniform"; }

 private:
  int64_t universe_size_;
  Rng rng_;
};

/// A greedy range-gap adversary: fixes one target range R (given as a
/// membership predicate plus canonical in-range / out-of-range elements)
/// and, each round, submits whichever element greedily widens the current
/// gap d_R(S) - d_R(X).
///
/// Rationale: if the sample currently over-represents R (gap >= 0), padding
/// the stream with out-of-range elements lowers d_R(X) while d_R(S) only
/// drops if the pad happens to be sampled; symmetrically for
/// under-representation. This is a natural state-feedback strategy — weaker
/// than the bisection attack (it targets a single range, so Lemma 4.1's
/// martingale bound applies to it with ln|R| = 0) and used in experiments
/// as the "mild" adaptive strategy.
template <typename T>
class GreedyGapAdversary : public Adversary<T> {
 public:
  using Predicate = std::function<bool(const T&)>;

  GreedyGapAdversary(Predicate in_range, T in_exemplar, T out_exemplar)
      : in_range_(std::move(in_range)),
        in_exemplar_(std::move(in_exemplar)),
        out_exemplar_(std::move(out_exemplar)) {
    RS_CHECK_MSG(in_range_(in_exemplar_), "in_exemplar must lie in the range");
    RS_CHECK_MSG(!in_range_(out_exemplar_),
                 "out_exemplar must lie outside the range");
  }

  T NextElement(std::span<const T> sample_before, size_t round) override {
    const double n = static_cast<double>(round - 1);
    const double m = static_cast<double>(sample_before.size());
    double d_sample = 0.0;
    if (m > 0) {
      size_t c = 0;
      for (const T& x : sample_before) c += in_range_(x);
      d_sample = static_cast<double>(c) / m;
    }
    const double d_stream = n > 0 ? static_cast<double>(in_count_) / n : 0.0;
    const bool pad_out = d_sample - d_stream >= 0.0;
    const T& pick = pad_out ? out_exemplar_ : in_exemplar_;
    if (!pad_out) ++in_count_;
    return pick;
  }

  std::string Name() const override { return "greedy-gap"; }

 private:
  Predicate in_range_;
  T in_exemplar_;
  T out_exemplar_;
  size_t in_count_ = 0;
};

}  // namespace robust_sampling

#endif  // ROBUST_SAMPLING_ADVERSARY_BASIC_ADVERSARIES_H_
