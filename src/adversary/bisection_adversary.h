#ifndef ROBUST_SAMPLING_ADVERSARY_BISECTION_ADVERSARY_H_
#define ROBUST_SAMPLING_ADVERSARY_BISECTION_ADVERSARY_H_

#include <cstdint>
#include <span>
#include <string>

#include "core/adversarial_game.h"
#include "core/big_uint.h"

namespace robust_sampling {

// The paper's attack (Section 1 "Attacking sampling algorithms" and Fig. 3):
// the adversary maintains a working range [a_i, b_i] and submits
//   x_i = a_i + (1 - p') * (b_i - a_i)
// (the intro's simple version uses the midpoint, i.e. p' = 1/2). If x_i is
// sampled the range moves up (a_{i+1} = x_i); otherwise it moves down
// (b_{i+1} = x_i). Invariant (Claim 5.2): every sampled element is <= a_i,
// every unsampled element is >= b_i, so the final sample consists of
// exactly the smallest elements ever sampled — maximally unrepresentative
// w.r.t. the prefix family.
//
// Three domains are provided:
//  * BisectionAdversaryDouble — real interval [lo, hi] (the "theoretical"
//    continuous attack; limited by double precision to ~1000 effective
//    range contractions near a non-zero accumulation point).
//  * BisectionAdversaryInt64  — discrete universe {1..N}, N <= 2^62 (fast;
//    enough for moderate n since the attack stalls once b - a <= 1).
//  * BisectionAdversaryBig    — discrete universe {1..N} with N an
//    arbitrary-precision integer, faithfully realizing Theorem 1.3's
//    exponentially large universes.
//
// Each tracks whether it ran out of room (`exhausted()`, also surfaced
// through the Adversary<T>::Exhausted() diagnostic); once exhausted it
// keeps submitting the current lower endpoint, and the attack's guarantee
// degrades gracefully.
//
// All three are available from AdversaryRegistry<T>::Global() under the
// key "bisection" (the element type selects the domain), with the split
// parameter derived near-optimally from the sampler under attack when not
// given explicitly — see attacklab/game_spec.h:DeriveBisectionSplit.

/// Continuous-domain bisection attack over [lo, hi].
class BisectionAdversaryDouble : public Adversary<double> {
 public:
  /// `split` is the fraction of the current range below the submitted
  /// point: x = a + split * (b - a). Fig. 3 uses split = 1 - p'; the intro's
  /// midpoint attack is split = 0.5. Requires 0 < split < 1, lo < hi.
  BisectionAdversaryDouble(double lo, double hi, double split);

  double NextElement(std::span<const double> sample_before,
                     size_t round) override;
  void Observe(std::span<const double> sample_after, bool kept,
               size_t round) override;
  std::string Name() const override;
  bool Exhausted() const override { return exhausted_; }

  bool exhausted() const { return exhausted_; }
  double a() const { return a_; }
  double b() const { return b_; }

 private:
  double a_, b_, split_;
  double pending_ = 0.0;
  bool exhausted_ = false;
};

/// Discrete bisection attack over {1..N} with 64-bit arithmetic.
class BisectionAdversaryInt64 : public Adversary<int64_t> {
 public:
  /// Universe {1..universe_size}; split as above (Fig. 3: 1 - p').
  BisectionAdversaryInt64(int64_t universe_size, double split);

  int64_t NextElement(std::span<const int64_t> sample_before,
                      size_t round) override;
  void Observe(std::span<const int64_t> sample_after, bool kept,
               size_t round) override;
  std::string Name() const override;
  bool Exhausted() const override { return exhausted_; }

  bool exhausted() const { return exhausted_; }
  int64_t a() const { return a_; }
  int64_t b() const { return b_; }

 private:
  int64_t a_, b_;
  double split_;
  int64_t pending_ = 0;
  bool exhausted_ = false;
};

/// Discrete bisection attack over {1..N} with arbitrary-precision N —
/// the exact Fig. 3 strategy for Theorem 1.3's universe sizes
/// (ln N = Theta((ln n)^2)).
class BisectionAdversaryBig : public Adversary<BigUint> {
 public:
  BisectionAdversaryBig(BigUint universe_size, double split);

  BigUint NextElement(std::span<const BigUint> sample_before,
                      size_t round) override;
  void Observe(std::span<const BigUint> sample_after, bool kept,
               size_t round) override;
  std::string Name() const override;
  bool Exhausted() const override { return exhausted_; }

  bool exhausted() const { return exhausted_; }
  const BigUint& a() const { return a_; }
  const BigUint& b() const { return b_; }

 private:
  BigUint a_, b_;
  uint64_t split_num_;  // split as split_num_ / 2^32
  double split_;
  BigUint pending_;
  bool exhausted_ = false;
};

}  // namespace robust_sampling

#endif  // ROBUST_SAMPLING_ADVERSARY_BISECTION_ADVERSARY_H_
