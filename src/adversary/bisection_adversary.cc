#include "adversary/bisection_adversary.h"

#include <cmath>

#include "core/check.h"

namespace robust_sampling {

// ---------------------------------------------------------------- double --

BisectionAdversaryDouble::BisectionAdversaryDouble(double lo, double hi,
                                                   double split)
    : a_(lo), b_(hi), split_(split) {
  RS_CHECK_MSG(lo < hi, "range must be non-degenerate");
  RS_CHECK_MSG(split > 0.0 && split < 1.0, "split must lie in (0, 1)");
}

double BisectionAdversaryDouble::NextElement(
    std::span<const double> /*sample_before*/, size_t /*round*/) {
  double x = a_ + split_ * (b_ - a_);
  if (x <= a_ || x >= b_) {
    // Double precision exhausted: the working range no longer contains a
    // representable interior point.
    exhausted_ = true;
    x = a_;
  }
  pending_ = x;
  return x;
}

void BisectionAdversaryDouble::Observe(
    std::span<const double> /*sample_after*/, bool kept,
    size_t /*round*/) {
  if (exhausted_) return;
  if (kept) {
    a_ = pending_;
  } else {
    b_ = pending_;
  }
}

std::string BisectionAdversaryDouble::Name() const {
  return "bisection-double(split=" + std::to_string(split_) + ")";
}

// ----------------------------------------------------------------- int64 --

BisectionAdversaryInt64::BisectionAdversaryInt64(int64_t universe_size,
                                                 double split)
    : a_(1), b_(universe_size), split_(split) {
  RS_CHECK_MSG(universe_size >= 2, "universe must have >= 2 elements");
  RS_CHECK_MSG(universe_size <= (int64_t{1} << 62), "universe too large");
  RS_CHECK_MSG(split > 0.0 && split < 1.0, "split must lie in (0, 1)");
}

int64_t BisectionAdversaryInt64::NextElement(
    std::span<const int64_t> /*sample_before*/, size_t /*round*/) {
  if (b_ - a_ <= 1) {
    // Fig. 3 with floor() would now repeat a boundary element; the working
    // range is out of interior points and the attack stalls.
    exhausted_ = true;
  }
  int64_t x;
  if (exhausted_) {
    x = a_;
  } else {
    x = a_ + static_cast<int64_t>(
                 std::floor(split_ * static_cast<double>(b_ - a_)));
    // Keep x a strict interior point so Claim 5.2's invariant (sampled <= a,
    // unsampled >= b) is maintained with strict progress.
    if (x <= a_) x = a_ + 1;
    if (x >= b_) x = b_ - 1;
  }
  pending_ = x;
  return x;
}

void BisectionAdversaryInt64::Observe(
    std::span<const int64_t> /*sample_after*/, bool kept,
    size_t /*round*/) {
  if (exhausted_) return;
  if (kept) {
    a_ = pending_;
  } else {
    b_ = pending_;
  }
}

std::string BisectionAdversaryInt64::Name() const {
  return "bisection-int64(split=" + std::to_string(split_) + ")";
}

// ------------------------------------------------------------------- big --

BisectionAdversaryBig::BisectionAdversaryBig(BigUint universe_size,
                                             double split)
    : a_(1), b_(std::move(universe_size)), split_(split) {
  RS_CHECK_MSG(BigUint(2) <= b_, "universe must have >= 2 elements");
  RS_CHECK_MSG(split > 0.0 && split < 1.0, "split must lie in (0, 1)");
  split_num_ = static_cast<uint64_t>(std::ldexp(split, 32));
  if (split_num_ == 0) split_num_ = 1;
}

BigUint BisectionAdversaryBig::NextElement(
    std::span<const BigUint> /*sample_before*/, size_t /*round*/) {
  const BigUint one(1);
  if (b_ - a_ <= one) {
    exhausted_ = true;
  }
  BigUint x;
  if (exhausted_) {
    x = a_;
  } else {
    // x = a + floor(split * (b - a)), with split = split_num_ / 2^32.
    x = a_ + (b_ - a_).MulU64(split_num_).ShiftRight(32);
    if (x <= a_) x = a_ + one;
    if (x >= b_) x = b_ - one;
  }
  pending_ = x;
  return x;
}

void BisectionAdversaryBig::Observe(
    std::span<const BigUint> /*sample_after*/, bool kept,
    size_t /*round*/) {
  if (exhausted_) return;
  if (kept) {
    a_ = pending_;
  } else {
    b_ = pending_;
  }
}

std::string BisectionAdversaryBig::Name() const {
  return "bisection-big(split=" + std::to_string(split_) + ")";
}

}  // namespace robust_sampling
