#ifndef ROBUST_SAMPLING_SETSYSTEM_RECTANGLE_FAMILY_H_
#define ROBUST_SAMPLING_SETSYSTEM_RECTANGLE_FAMILY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "setsystem/point.h"
#include "setsystem/set_system.h"

namespace robust_sampling {

/// The family of all axis-aligned boxes over the grid universe U = [m]^d —
/// the set system of the paper's range-query application (Section 1.2):
/// an eps-approximation answers every box-counting query with additive
/// error eps*n, and ln|R| = O(d ln m) so the robust sample size is
/// O((d ln m + ln 1/delta) / eps^2).
///
/// A box is a product of per-dimension integer intervals [a_j, b_j] with
/// 1 <= a_j <= b_j <= m, so |R| = (m(m+1)/2)^d. VC-dimension is 2d.
class RectangleFamily : public SetSystem<Point> {
 public:
  /// An axis-aligned box: per-dimension closed bounds.
  struct Box {
    std::vector<int64_t> lo;  // a_j, inclusive
    std::vector<int64_t> hi;  // b_j, inclusive

    /// Whether p (coordinates compared after truncation toward zero is NOT
    /// applied — containment uses real-valued comparison lo <= x <= hi).
    bool Contains(const Point& p) const;
  };

  /// Family over [1..grid_size]^dims. Requires dims >= 1, grid_size >= 1,
  /// and (m(m+1)/2)^d to fit in uint64 (checked).
  RectangleFamily(int64_t grid_size, int dims);

  uint64_t NumRanges() const override;
  double LogCardinality() const override;
  bool Contains(uint64_t range_index, const Point& x) const override;
  std::string Name() const override;

  /// Decodes range_index into its box (mixed-radix over per-dimension
  /// triangular interval indices).
  Box RangeBox(uint64_t range_index) const;

  int64_t grid_size() const { return grid_size_; }
  int dims() const { return dims_; }

 private:
  int64_t grid_size_;
  int dims_;
  uint64_t intervals_per_dim_;  // m(m+1)/2
};

}  // namespace robust_sampling

#endif  // ROBUST_SAMPLING_SETSYSTEM_RECTANGLE_FAMILY_H_
