#ifndef ROBUST_SAMPLING_SETSYSTEM_SINGLETON_FAMILY_H_
#define ROBUST_SAMPLING_SETSYSTEM_SINGLETON_FAMILY_H_

#include <cstdint>
#include <string>

#include "setsystem/set_system.h"

namespace robust_sampling {

/// The singleton family R = { {a} : a in U } over U = {1, ..., N} — the set
/// system of the heavy hitters application (Corollary 1.6): an
/// eps-approximation w.r.t. singletons preserves every element's empirical
/// frequency to +-eps.
///
/// VC-dimension 1; cardinality |R| = N.
class SingletonFamily : public SetSystem<int64_t> {
 public:
  /// Family over U = {1, ..., universe_size}. Requires universe_size >= 1.
  explicit SingletonFamily(int64_t universe_size);

  uint64_t NumRanges() const override;
  bool Contains(uint64_t range_index, const int64_t& x) const override;
  std::string Name() const override;

  /// The element of range `range_index` (= range_index + 1).
  int64_t RangeElement(uint64_t range_index) const;

  int64_t universe_size() const { return universe_size_; }

 private:
  int64_t universe_size_;
};

}  // namespace robust_sampling

#endif  // ROBUST_SAMPLING_SETSYSTEM_SINGLETON_FAMILY_H_
