#include "setsystem/prefix_family.h"

#include "core/check.h"

namespace robust_sampling {

PrefixFamily::PrefixFamily(int64_t universe_size)
    : universe_size_(universe_size) {
  RS_CHECK_MSG(universe_size >= 1, "universe must be non-empty");
}

uint64_t PrefixFamily::NumRanges() const {
  return static_cast<uint64_t>(universe_size_);
}

bool PrefixFamily::Contains(uint64_t range_index, const int64_t& x) const {
  RS_DCHECK(range_index < NumRanges());
  return x >= 1 && x <= RangeEnd(range_index);
}

int64_t PrefixFamily::RangeEnd(uint64_t range_index) const {
  return static_cast<int64_t>(range_index) + 1;
}

std::string PrefixFamily::Name() const {
  return "prefixes[1.." + std::to_string(universe_size_) + "]";
}

}  // namespace robust_sampling
