#ifndef ROBUST_SAMPLING_SETSYSTEM_SET_SYSTEM_H_
#define ROBUST_SAMPLING_SETSYSTEM_SET_SYSTEM_H_

#include <cmath>
#include <cstdint>
#include <string>

namespace robust_sampling {

/// A set system (U, R) over elements of type T (paper Definition 1.1).
///
/// R is a finite, indexable family of ranges R_0, ..., R_{|R|-1}, each a
/// subset of the universe U. The two quantities that drive the paper's
/// bounds are exposed directly:
///
///  * `NumRanges()`      — |R|, the cardinality of the family;
///  * `LogCardinality()` — ln|R|, the "cardinality dimension" that replaces
///                         the VC-dimension in Theorem 1.2.
///
/// Membership is a virtual call, which is fine for the brute-force
/// discrepancy evaluator; families with structure (prefixes, intervals,
/// halfspaces) additionally have exact O((n+s) log) discrepancy fast paths
/// in setsystem/discrepancy.h that bypass this interface.
template <typename T>
class SetSystem {
 public:
  virtual ~SetSystem() = default;

  /// |R|: the number of ranges in the family.
  virtual uint64_t NumRanges() const = 0;

  /// ln|R|. Default: log of NumRanges(); families whose cardinality
  /// overflows uint64 override this directly.
  virtual double LogCardinality() const {
    return std::log(static_cast<double>(NumRanges()));
  }

  /// Whether element x belongs to range `range_index` (< NumRanges()).
  virtual bool Contains(uint64_t range_index, const T& x) const = 0;

  /// Human-readable family name for reports.
  virtual std::string Name() const = 0;
};

}  // namespace robust_sampling

#endif  // ROBUST_SAMPLING_SETSYSTEM_SET_SYSTEM_H_
