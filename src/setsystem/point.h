#ifndef ROBUST_SAMPLING_SETSYSTEM_POINT_H_
#define ROBUST_SAMPLING_SETSYSTEM_POINT_H_

#include <vector>

namespace robust_sampling {

/// A point in d-dimensional Euclidean space; the element type for the
/// geometric set systems (rectangles, halfspaces) and the geometry
/// substrate (range counting, center points, clustering).
using Point = std::vector<double>;

}  // namespace robust_sampling

#endif  // ROBUST_SAMPLING_SETSYSTEM_POINT_H_
