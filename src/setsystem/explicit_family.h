#ifndef ROBUST_SAMPLING_SETSYSTEM_EXPLICIT_FAMILY_H_
#define ROBUST_SAMPLING_SETSYSTEM_EXPLICIT_FAMILY_H_

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "core/check.h"
#include "setsystem/set_system.h"

namespace robust_sampling {

/// An arbitrary finite set system given by explicit membership predicates —
/// the fully general form of Definition 1.1. Useful for tests, for custom
/// application-defined families, and for VC-dimension experiments on small
/// hand-built systems.
template <typename T>
class ExplicitFamily : public SetSystem<T> {
 public:
  using Predicate = std::function<bool(const T&)>;

  /// Builds the family from named membership predicates. Requires at least
  /// one range.
  ExplicitFamily(std::string name, std::vector<Predicate> ranges)
      : name_(std::move(name)), ranges_(std::move(ranges)) {
    RS_CHECK_MSG(!ranges_.empty(), "a set system needs at least one range");
  }

  uint64_t NumRanges() const override { return ranges_.size(); }

  bool Contains(uint64_t range_index, const T& x) const override {
    RS_DCHECK(range_index < ranges_.size());
    return ranges_[range_index](x);
  }

  std::string Name() const override { return name_; }

  /// Appends one more range to the family.
  void AddRange(Predicate pred) { ranges_.push_back(std::move(pred)); }

 private:
  std::string name_;
  std::vector<Predicate> ranges_;
};

}  // namespace robust_sampling

#endif  // ROBUST_SAMPLING_SETSYSTEM_EXPLICIT_FAMILY_H_
