#ifndef ROBUST_SAMPLING_SETSYSTEM_DISCREPANCY_H_
#define ROBUST_SAMPLING_SETSYSTEM_DISCREPANCY_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/check.h"
#include "core/random.h"
#include "setsystem/halfspace_family.h"
#include "setsystem/point.h"
#include "setsystem/set_system.h"

namespace robust_sampling {

// Discrepancy evaluators: given the stream X and the sample S, compute
//   sup_{R in family} | d_R(X) - d_R(S) |
// (Definition 1.1). S is an eps-approximation iff this value is <= eps.
//
// Conventions shared by all evaluators:
//  * An empty sample of a non-empty stream is maximally unrepresentative:
//    the discrepancy is defined as 1 (Definition 1.1 requires S non-empty).
//  * An empty stream has discrepancy 0 by convention.
//
// The *Sorted variants require their inputs pre-sorted ascending and run in
// O(n + s); the convenience overloads copy and sort (O((n+s) log(n+s))).
// All are exact suprema over the full (implicit) family — no enumeration.

namespace internal {

template <typename T>
bool HandleTrivial(const std::vector<T>& stream, const std::vector<T>& sample,
                   double* out) {
  if (stream.empty()) {
    *out = 0.0;
    return true;
  }
  if (sample.empty()) {
    *out = 1.0;
    return true;
  }
  return false;
}

}  // namespace internal

/// Exact sup over all one-sided prefix ranges {x : x <= b} of the density
/// difference — the (two-sided) Kolmogorov–Smirnov distance between the
/// empirical distributions of X and S. Equals the discrepancy w.r.t.
/// PrefixFamily when elements come from a well-ordered universe.
template <typename T>
double PrefixDiscrepancySorted(const std::vector<T>& stream,
                               const std::vector<T>& sample) {
  double trivial;
  if (internal::HandleTrivial(stream, sample, &trivial)) return trivial;
  const double n = static_cast<double>(stream.size());
  const double m = static_cast<double>(sample.size());
  size_t ix = 0, is = 0;
  double best = 0.0;
  while (ix < stream.size() || is < sample.size()) {
    // Next distinct value v = min of the two heads.
    const bool take_stream =
        is == sample.size() ||
        (ix < stream.size() && !(sample[is] < stream[ix]));
    const T& v = take_stream ? stream[ix] : sample[is];
    while (ix < stream.size() && !(v < stream[ix])) ++ix;
    while (is < sample.size() && !(v < sample[is])) ++is;
    const double diff =
        static_cast<double>(ix) / n - static_cast<double>(is) / m;
    best = std::max(best, std::abs(diff));
  }
  return best;
}

/// Convenience overload: copies and sorts its inputs.
template <typename T>
double PrefixDiscrepancy(std::vector<T> stream, std::vector<T> sample) {
  std::sort(stream.begin(), stream.end());
  std::sort(sample.begin(), sample.end());
  return PrefixDiscrepancySorted(stream, sample);
}

/// Exact sup over all closed intervals [a, b] (a <= b, including
/// singletons) of the density difference — the discrepancy w.r.t.
/// IntervalFamily (and its continuous analogue).
///
/// Uses the identity d_[a,b] = F(b) - F(a-): writing G(v) = F_X(v) - F_S(v),
/// the supremum equals max over data values b of
///   max( G(b) - min_{a <= b} G(a-),  max_{a <= b} G(a-) - G(b) ),
/// computed in one merged scan with running prefix extrema.
template <typename T>
double IntervalDiscrepancySorted(const std::vector<T>& stream,
                                 const std::vector<T>& sample) {
  double trivial;
  if (internal::HandleTrivial(stream, sample, &trivial)) return trivial;
  const double n = static_cast<double>(stream.size());
  const double m = static_cast<double>(sample.size());
  size_t ix = 0, is = 0;
  double g_prev = 0.0;       // G just below the current value (= G(a-))
  double min_g_minus = 0.0;  // running min of G(a-) over a <= current b
  double max_g_minus = 0.0;  // running max of G(a-)
  double best = 0.0;
  while (ix < stream.size() || is < sample.size()) {
    const bool take_stream =
        is == sample.size() ||
        (ix < stream.size() && !(sample[is] < stream[ix]));
    const T& v = take_stream ? stream[ix] : sample[is];
    while (ix < stream.size() && !(v < stream[ix])) ++ix;
    while (is < sample.size() && !(v < sample[is])) ++is;
    min_g_minus = std::min(min_g_minus, g_prev);
    max_g_minus = std::max(max_g_minus, g_prev);
    const double g =
        static_cast<double>(ix) / n - static_cast<double>(is) / m;
    best = std::max(best, std::max(g - min_g_minus, max_g_minus - g));
    g_prev = g;
  }
  return best;
}

/// Convenience overload: copies and sorts its inputs.
template <typename T>
double IntervalDiscrepancy(std::vector<T> stream, std::vector<T> sample) {
  std::sort(stream.begin(), stream.end());
  std::sort(sample.begin(), sample.end());
  return IntervalDiscrepancySorted(stream, sample);
}

/// Exact sup over all singletons {v} of |freq_X(v) - freq_S(v)| — the
/// discrepancy w.r.t. SingletonFamily (heavy-hitter error).
template <typename T>
double SingletonDiscrepancySorted(const std::vector<T>& stream,
                                  const std::vector<T>& sample) {
  double trivial;
  if (internal::HandleTrivial(stream, sample, &trivial)) return trivial;
  const double n = static_cast<double>(stream.size());
  const double m = static_cast<double>(sample.size());
  size_t ix = 0, is = 0;
  double best = 0.0;
  while (ix < stream.size() || is < sample.size()) {
    const bool take_stream =
        is == sample.size() ||
        (ix < stream.size() && !(sample[is] < stream[ix]));
    const T& v = take_stream ? stream[ix] : sample[is];
    size_t cx = 0, cs = 0;
    while (ix < stream.size() && !(v < stream[ix])) ++ix, ++cx;
    while (is < sample.size() && !(v < sample[is])) ++is, ++cs;
    const double diff =
        static_cast<double>(cx) / n - static_cast<double>(cs) / m;
    best = std::max(best, std::abs(diff));
  }
  return best;
}

/// Convenience overload: copies and sorts its inputs.
template <typename T>
double SingletonDiscrepancy(std::vector<T> stream, std::vector<T> sample) {
  std::sort(stream.begin(), stream.end());
  std::sort(sample.begin(), sample.end());
  return SingletonDiscrepancySorted(stream, sample);
}

/// Brute-force discrepancy over an explicit set system: evaluates
/// |d_R(X) - d_R(S)| for every range (O(|R| * (n + s)) membership tests).
/// Exact; requires NumRanges() to be small enough to enumerate.
template <typename T>
double ExplicitDiscrepancyExact(const SetSystem<T>& family,
                                const std::vector<T>& stream,
                                const std::vector<T>& sample) {
  double trivial;
  if (internal::HandleTrivial(stream, sample, &trivial)) return trivial;
  const double n = static_cast<double>(stream.size());
  const double m = static_cast<double>(sample.size());
  double best = 0.0;
  for (uint64_t r = 0; r < family.NumRanges(); ++r) {
    size_t cx = 0, cs = 0;
    for (const T& x : stream) cx += family.Contains(r, x);
    for (const T& x : sample) cs += family.Contains(r, x);
    const double diff =
        static_cast<double>(cx) / n - static_cast<double>(cs) / m;
    best = std::max(best, std::abs(diff));
  }
  return best;
}

/// Monte-Carlo lower bound on the discrepancy for families too large to
/// enumerate: evaluates `max_ranges` ranges (all of them if NumRanges() <=
/// max_ranges, making the result exact; otherwise a uniform random subset
/// drawn with the given seed). Returns a value <= the true discrepancy.
template <typename T>
double ExplicitDiscrepancySampled(const SetSystem<T>& family,
                                  const std::vector<T>& stream,
                                  const std::vector<T>& sample,
                                  uint64_t max_ranges, uint64_t seed) {
  double trivial;
  if (internal::HandleTrivial(stream, sample, &trivial)) return trivial;
  const uint64_t total = family.NumRanges();
  if (total <= max_ranges) {
    return ExplicitDiscrepancyExact(family, stream, sample);
  }
  const double n = static_cast<double>(stream.size());
  const double m = static_cast<double>(sample.size());
  Rng rng(seed);
  double best = 0.0;
  for (uint64_t t = 0; t < max_ranges; ++t) {
    const uint64_t r = rng.NextBelow(total);
    size_t cx = 0, cs = 0;
    for (const T& x : stream) cx += family.Contains(r, x);
    for (const T& x : sample) cs += family.Contains(r, x);
    const double diff =
        static_cast<double>(cx) / n - static_cast<double>(cs) / m;
    best = std::max(best, std::abs(diff));
  }
  return best;
}

/// Exact discrepancy w.r.t. a HalfspaceFamily2D, computed per direction by
/// projecting both point sets onto the direction's normal and scanning the
/// offset grid — O(directions * ((n+s) log(n+s) + offsets)) instead of
/// O(|R| * (n+s)).
double HalfspaceDiscrepancy(const HalfspaceFamily2D& family,
                            const std::vector<Point>& stream,
                            const std::vector<Point>& sample);

/// Exact discrepancy of d-dimensional point sets w.r.t. the axis-aligned
/// box family over [1..m]^d, via enumeration of the O((n+s)^{2d}) candidate
/// canonical boxes snapped to data coordinates. Exponential in d; intended
/// for small inputs in tests (d <= 2, n+s <= a few hundred).
double BoxDiscrepancyExact(const std::vector<Point>& stream,
                           const std::vector<Point>& sample, int dims);

}  // namespace robust_sampling

#endif  // ROBUST_SAMPLING_SETSYSTEM_DISCREPANCY_H_
