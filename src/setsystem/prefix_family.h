#ifndef ROBUST_SAMPLING_SETSYSTEM_PREFIX_FAMILY_H_
#define ROBUST_SAMPLING_SETSYSTEM_PREFIX_FAMILY_H_

#include <cstdint>
#include <string>

#include "setsystem/set_system.h"

namespace robust_sampling {

/// The one-sided prefix family R = { [1, b] : b in U } over the well-ordered
/// universe U = {1, ..., N}.
///
/// This is the set system of Theorem 1.3 (the attack) and of Corollary 1.5
/// (quantile sketching): it has VC-dimension 1 but cardinality |R| = N, and
/// an eps-approximation with respect to it preserves the rank of every
/// element up to +-eps*n — i.e., all quantiles simultaneously.
class PrefixFamily : public SetSystem<int64_t> {
 public:
  /// Family over U = {1, ..., universe_size}. Requires universe_size >= 1.
  explicit PrefixFamily(int64_t universe_size);

  uint64_t NumRanges() const override;
  bool Contains(uint64_t range_index, const int64_t& x) const override;
  std::string Name() const override;

  /// The right endpoint b of range `range_index` (= range_index + 1).
  int64_t RangeEnd(uint64_t range_index) const;

  int64_t universe_size() const { return universe_size_; }

 private:
  int64_t universe_size_;
};

}  // namespace robust_sampling

#endif  // ROBUST_SAMPLING_SETSYSTEM_PREFIX_FAMILY_H_
