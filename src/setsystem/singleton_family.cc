#include "setsystem/singleton_family.h"

#include "core/check.h"

namespace robust_sampling {

SingletonFamily::SingletonFamily(int64_t universe_size)
    : universe_size_(universe_size) {
  RS_CHECK_MSG(universe_size >= 1, "universe must be non-empty");
}

uint64_t SingletonFamily::NumRanges() const {
  return static_cast<uint64_t>(universe_size_);
}

bool SingletonFamily::Contains(uint64_t range_index, const int64_t& x) const {
  RS_DCHECK(range_index < NumRanges());
  return x == RangeElement(range_index);
}

int64_t SingletonFamily::RangeElement(uint64_t range_index) const {
  return static_cast<int64_t>(range_index) + 1;
}

std::string SingletonFamily::Name() const {
  return "singletons[1.." + std::to_string(universe_size_) + "]";
}

}  // namespace robust_sampling
