#include "setsystem/discrepancy.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/check.h"

namespace robust_sampling {

double HalfspaceDiscrepancy(const HalfspaceFamily2D& family,
                            const std::vector<Point>& stream,
                            const std::vector<Point>& sample) {
  double trivial;
  if (internal::HandleTrivial(stream, sample, &trivial)) return trivial;
  const double n = static_cast<double>(stream.size());
  const double m = static_cast<double>(sample.size());
  double best = 0.0;
  std::vector<double> px, ps;
  px.reserve(stream.size());
  ps.reserve(sample.size());
  for (int j = 0; j < family.num_directions(); ++j) {
    double nx, ny;
    family.Direction(j, &nx, &ny);
    px.clear();
    ps.clear();
    for (const Point& p : stream) px.push_back(nx * p[0] + ny * p[1]);
    for (const Point& p : sample) ps.push_back(nx * p[0] + ny * p[1]);
    std::sort(px.begin(), px.end());
    std::sort(ps.begin(), ps.end());
    // Scan the offset grid with two pointers; halfspace j,i contains x iff
    // projection <= t_i.
    size_t ix = 0, is = 0;
    for (int i = 0; i < family.num_offsets(); ++i) {
      const double t =
          family.Range(static_cast<uint64_t>(j) * family.num_offsets() + i)
              .offset;
      while (ix < px.size() && px[ix] <= t) ++ix;
      while (is < ps.size() && ps[is] <= t) ++is;
      const double diff =
          static_cast<double>(ix) / n - static_cast<double>(is) / m;
      best = std::max(best, std::abs(diff));
    }
  }
  return best;
}

namespace {

struct BoxEnumState {
  const std::vector<Point>* stream;
  const std::vector<Point>* sample;
  const std::vector<std::vector<double>>* coords;  // distinct coords per dim
  int dims;
  std::vector<double> lo, hi;
  double n, m;
  double best = 0.0;
};

bool InBox(const Point& p, const std::vector<double>& lo,
           const std::vector<double>& hi, int dims) {
  for (int j = 0; j < dims; ++j) {
    if (p[j] < lo[j] || p[j] > hi[j]) return false;
  }
  return true;
}

void EnumerateBoxes(BoxEnumState* st, int dim) {
  if (dim == st->dims) {
    size_t cx = 0, cs = 0;
    for (const Point& p : *st->stream) cx += InBox(p, st->lo, st->hi, st->dims);
    for (const Point& p : *st->sample) cs += InBox(p, st->lo, st->hi, st->dims);
    const double diff =
        static_cast<double>(cx) / st->n - static_cast<double>(cs) / st->m;
    st->best = std::max(st->best, std::abs(diff));
    return;
  }
  const std::vector<double>& cs = (*st->coords)[dim];
  for (size_t a = 0; a < cs.size(); ++a) {
    for (size_t b = a; b < cs.size(); ++b) {
      st->lo[dim] = cs[a];
      st->hi[dim] = cs[b];
      EnumerateBoxes(st, dim + 1);
    }
  }
}

}  // namespace

double BoxDiscrepancyExact(const std::vector<Point>& stream,
                           const std::vector<Point>& sample, int dims) {
  RS_CHECK(dims >= 1);
  double trivial;
  if (internal::HandleTrivial(stream, sample, &trivial)) return trivial;
  // The density of a box only changes when a face crosses a data
  // coordinate, so restricting lo/hi to data coordinates is exact.
  std::vector<std::vector<double>> coords(dims);
  for (int j = 0; j < dims; ++j) {
    for (const Point& p : stream) {
      RS_CHECK(static_cast<int>(p.size()) == dims);
      coords[j].push_back(p[j]);
    }
    for (const Point& p : sample) {
      RS_CHECK(static_cast<int>(p.size()) == dims);
      coords[j].push_back(p[j]);
    }
    std::sort(coords[j].begin(), coords[j].end());
    coords[j].erase(std::unique(coords[j].begin(), coords[j].end()),
                    coords[j].end());
  }
  BoxEnumState st;
  st.stream = &stream;
  st.sample = &sample;
  st.coords = &coords;
  st.dims = dims;
  st.lo.resize(dims);
  st.hi.resize(dims);
  st.n = static_cast<double>(stream.size());
  st.m = static_cast<double>(sample.size());
  EnumerateBoxes(&st, 0);
  return st.best;
}

}  // namespace robust_sampling
