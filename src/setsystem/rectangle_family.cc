#include "setsystem/rectangle_family.h"

#include <cmath>

#include "core/check.h"

namespace robust_sampling {

namespace {

// Decodes a triangular interval index t in [0, m(m+1)/2) into (a, b),
// 1 <= a <= b <= m, ordered [1,1],[1,2],...,[1,m],[2,2],...
void DecodeInterval(uint64_t t, int64_t m, int64_t* a, int64_t* b) {
  // Left endpoint j contributes (m - j + 1) intervals. Walk with a binary
  // search over the prefix sums (a-1)*m - (a-1)(a-2)/2.
  int64_t lo = 1, hi = m;
  auto before = [m](int64_t j) {
    const uint64_t jm1 = static_cast<uint64_t>(j - 1);
    return jm1 * static_cast<uint64_t>(m) - jm1 * (jm1 - 1) / 2;
  };
  while (lo < hi) {
    const int64_t mid = lo + (hi - lo + 1) / 2;
    if (before(mid) <= t) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  *a = lo;
  *b = lo + static_cast<int64_t>(t - before(lo));
}

}  // namespace

bool RectangleFamily::Box::Contains(const Point& p) const {
  RS_DCHECK(p.size() == lo.size());
  for (size_t j = 0; j < lo.size(); ++j) {
    if (p[j] < static_cast<double>(lo[j]) ||
        p[j] > static_cast<double>(hi[j])) {
      return false;
    }
  }
  return true;
}

RectangleFamily::RectangleFamily(int64_t grid_size, int dims)
    : grid_size_(grid_size), dims_(dims) {
  RS_CHECK_MSG(grid_size >= 1, "grid must be non-empty");
  RS_CHECK_MSG(dims >= 1, "need at least one dimension");
  intervals_per_dim_ = static_cast<uint64_t>(grid_size) *
                       static_cast<uint64_t>(grid_size + 1) / 2;
  // Check (m(m+1)/2)^d fits in uint64.
  double log2_total = static_cast<double>(dims) *
                      std::log2(static_cast<double>(intervals_per_dim_));
  RS_CHECK_MSG(log2_total < 63.0,
               "rectangle family cardinality overflows uint64");
}

uint64_t RectangleFamily::NumRanges() const {
  uint64_t total = 1;
  for (int j = 0; j < dims_; ++j) total *= intervals_per_dim_;
  return total;
}

double RectangleFamily::LogCardinality() const {
  return static_cast<double>(dims_) *
         std::log(static_cast<double>(intervals_per_dim_));
}

RectangleFamily::Box RectangleFamily::RangeBox(uint64_t range_index) const {
  RS_DCHECK(range_index < NumRanges());
  Box box;
  box.lo.resize(dims_);
  box.hi.resize(dims_);
  for (int j = 0; j < dims_; ++j) {
    const uint64_t t = range_index % intervals_per_dim_;
    range_index /= intervals_per_dim_;
    DecodeInterval(t, grid_size_, &box.lo[j], &box.hi[j]);
  }
  return box;
}

bool RectangleFamily::Contains(uint64_t range_index, const Point& x) const {
  return RangeBox(range_index).Contains(x);
}

std::string RectangleFamily::Name() const {
  return "boxes[1.." + std::to_string(grid_size_) + "]^" +
         std::to_string(dims_);
}

}  // namespace robust_sampling
