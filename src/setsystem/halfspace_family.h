#ifndef ROBUST_SAMPLING_SETSYSTEM_HALFSPACE_FAMILY_H_
#define ROBUST_SAMPLING_SETSYSTEM_HALFSPACE_FAMILY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "setsystem/point.h"
#include "setsystem/set_system.h"

namespace robust_sampling {

/// A finite family of 2-D closed halfspaces
///   R = { {x : x . u_j <= t_i} : j < num_directions, i < num_offsets },
/// with u_j = (cos theta_j, sin theta_j), theta_j = 2*pi*j/num_directions,
/// and offsets t_i an even grid over [offset_lo, offset_hi].
///
/// This is the discretized halfspace system used by the beta-center-point
/// application (Section 1.2, [CEM+96]): an eps-approximation w.r.t.
/// halfspaces lets a (beta + eps)-center of the sample serve as a
/// beta-center of the stream. Discretizing directions/offsets keeps |R|
/// finite so Theorem 1.2 applies with ln|R| = ln(directions * offsets).
class HalfspaceFamily2D : public SetSystem<Point> {
 public:
  /// One halfspace {x : x . normal <= offset}.
  struct Halfspace {
    double nx, ny;   // unit normal
    double offset;   // threshold t

    bool Contains(const Point& p) const {
      return nx * p[0] + ny * p[1] <= offset;
    }
  };

  /// Requires num_directions >= 1, num_offsets >= 2, offset_lo < offset_hi.
  HalfspaceFamily2D(int num_directions, int num_offsets, double offset_lo,
                    double offset_hi);

  uint64_t NumRanges() const override;
  bool Contains(uint64_t range_index, const Point& x) const override;
  std::string Name() const override;

  /// Decodes range_index into its halfspace.
  Halfspace Range(uint64_t range_index) const;

  int num_directions() const { return num_directions_; }
  int num_offsets() const { return num_offsets_; }

  /// The unit normal of direction j.
  void Direction(int j, double* nx, double* ny) const;

 private:
  int num_directions_;
  int num_offsets_;
  double offset_lo_;
  double offset_hi_;
  std::vector<double> cos_;  // precomputed normals
  std::vector<double> sin_;
};

}  // namespace robust_sampling

#endif  // ROBUST_SAMPLING_SETSYSTEM_HALFSPACE_FAMILY_H_
