#include "setsystem/interval_family.h"

#include "core/check.h"

namespace robust_sampling {

namespace {

// Number of intervals whose left endpoint is < a (1-based): those with left
// endpoint j contribute N - j + 1 ranges.
uint64_t RangesBefore(int64_t a, int64_t n) {
  // sum_{j=1}^{a-1} (n - j + 1) = (a-1)*n - (a-1)(a-2)/2
  const uint64_t am1 = static_cast<uint64_t>(a - 1);
  return am1 * static_cast<uint64_t>(n) - am1 * (am1 - 1) / 2;
}

}  // namespace

IntervalFamily::IntervalFamily(int64_t universe_size)
    : universe_size_(universe_size) {
  RS_CHECK_MSG(universe_size >= 1, "universe must be non-empty");
  RS_CHECK_MSG(universe_size <= 6000000000LL,
               "interval family cardinality overflows uint64");
}

uint64_t IntervalFamily::NumRanges() const {
  const uint64_t n = static_cast<uint64_t>(universe_size_);
  return n * (n + 1) / 2;
}

std::pair<int64_t, int64_t> IntervalFamily::RangeBounds(
    uint64_t range_index) const {
  RS_DCHECK(range_index < NumRanges());
  // Binary search the left endpoint a in [1, N]: largest a with
  // RangesBefore(a) <= range_index.
  int64_t lo = 1, hi = universe_size_;
  while (lo < hi) {
    const int64_t mid = lo + (hi - lo + 1) / 2;
    if (RangesBefore(mid, universe_size_) <= range_index) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  const int64_t a = lo;
  const int64_t b = a + static_cast<int64_t>(
                            range_index - RangesBefore(a, universe_size_));
  RS_DCHECK(a >= 1 && a <= b && b <= universe_size_);
  return {a, b};
}

bool IntervalFamily::Contains(uint64_t range_index, const int64_t& x) const {
  const auto [a, b] = RangeBounds(range_index);
  return x >= a && x <= b;
}

std::string IntervalFamily::Name() const {
  return "intervals[1.." + std::to_string(universe_size_) + "]";
}

}  // namespace robust_sampling
