#ifndef ROBUST_SAMPLING_SETSYSTEM_VC_DIMENSION_H_
#define ROBUST_SAMPLING_SETSYSTEM_VC_DIMENSION_H_

#include <cstdint>
#include <vector>

#include "core/check.h"
#include "setsystem/set_system.h"

namespace robust_sampling {

// Exact VC-dimension computation by exhaustive shattering search.
//
// The VC-dimension of (U, R) is the size of the largest A subset of U that
// is *shattered* by R: every one of the 2^|A| subsets of A arises as
// A intersect R for some R in R. The paper's central contrast (Theorems
// 1.2/1.3) is between this quantity (which governs static sampling) and
// ln|R| (which governs adversarially robust sampling); these routines let
// tests and experiments verify the VC side of the story (e.g. that the
// attack's prefix system really has VC-dimension 1).
//
// Complexity is exponential (C(|candidates|, d) subsets, each checked
// against every range), so this is a test/verification tool: keep
// |candidates| <= ~25, max_dim <= ~5, NumRanges() <= ~10^6.

/// Whether the subset `points` is shattered by `family`.
template <typename T>
bool IsShattered(const SetSystem<T>& family, const std::vector<T>& points) {
  RS_CHECK_MSG(points.size() <= 20, "shattering check limited to 20 points");
  const size_t d = points.size();
  if (d == 0) return true;
  const uint32_t want = static_cast<uint32_t>(1) << d;
  std::vector<bool> seen(want, false);
  uint32_t found = 0;
  for (uint64_t r = 0; r < family.NumRanges(); ++r) {
    uint32_t pattern = 0;
    for (size_t i = 0; i < d; ++i) {
      if (family.Contains(r, points[i])) pattern |= (1u << i);
    }
    if (!seen[pattern]) {
      seen[pattern] = true;
      if (++found == want) return true;
    }
  }
  return found == want;
}

namespace internal {

template <typename T>
bool AnyShatteredSubset(const SetSystem<T>& family,
                        const std::vector<T>& candidates, size_t d,
                        size_t start, std::vector<T>* chosen) {
  if (chosen->size() == d) return IsShattered(family, *chosen);
  for (size_t i = start; i + (d - chosen->size()) <= candidates.size(); ++i) {
    chosen->push_back(candidates[i]);
    if (AnyShatteredSubset(family, candidates, d, i + 1, chosen)) {
      chosen->pop_back();
      return true;
    }
    chosen->pop_back();
  }
  return false;
}

}  // namespace internal

/// The exact VC-dimension of `family` restricted to the ground set
/// `candidates`, capped at `max_dim` (returns max_dim if a shattered subset
/// of that size exists; the true dimension may then be larger).
///
/// For families whose universe equals the candidate set this is the true
/// VC-dimension of (U, R).
template <typename T>
int VcDimension(const SetSystem<T>& family, const std::vector<T>& candidates,
                int max_dim = 5) {
  RS_CHECK(max_dim >= 0);
  int best = 0;
  for (int d = 1; d <= max_dim && d <= static_cast<int>(candidates.size());
       ++d) {
    std::vector<T> chosen;
    chosen.reserve(d);
    if (internal::AnyShatteredSubset(family, candidates,
                                     static_cast<size_t>(d), 0, &chosen)) {
      best = d;  // VC is monotone: keep climbing.
    } else {
      break;
    }
  }
  return best;
}

}  // namespace robust_sampling

#endif  // ROBUST_SAMPLING_SETSYSTEM_VC_DIMENSION_H_
