#ifndef ROBUST_SAMPLING_SETSYSTEM_INTERVAL_FAMILY_H_
#define ROBUST_SAMPLING_SETSYSTEM_INTERVAL_FAMILY_H_

#include <cstdint>
#include <string>
#include <utility>

#include "setsystem/set_system.h"

namespace robust_sampling {

/// The family of all consecutive intervals R = { [a, b] : a <= b in U } over
/// U = {1, ..., N}, including all singletons [a, a] — the paper's canonical
/// "representative sample" set system for well-ordered universes (Section 1,
/// "What is a representative sample?").
///
/// VC-dimension 2; cardinality |R| = N(N+1)/2, so ln|R| ~= 2 ln N.
class IntervalFamily : public SetSystem<int64_t> {
 public:
  /// Family over U = {1, ..., universe_size}. Requires universe_size in
  /// [1, ~6.07e9] so that N(N+1)/2 fits in uint64.
  explicit IntervalFamily(int64_t universe_size);

  uint64_t NumRanges() const override;
  bool Contains(uint64_t range_index, const int64_t& x) const override;
  std::string Name() const override;

  /// Decodes range_index into its (a, b) endpoints, 1 <= a <= b <= N.
  /// Ranges are ordered lexicographically: [1,1],[1,2],...,[1,N],[2,2],...
  std::pair<int64_t, int64_t> RangeBounds(uint64_t range_index) const;

  int64_t universe_size() const { return universe_size_; }

 private:
  int64_t universe_size_;
};

}  // namespace robust_sampling

#endif  // ROBUST_SAMPLING_SETSYSTEM_INTERVAL_FAMILY_H_
