#include "setsystem/halfspace_family.h"

#include <cmath>
#include <numbers>

#include "core/check.h"

namespace robust_sampling {

HalfspaceFamily2D::HalfspaceFamily2D(int num_directions, int num_offsets,
                                     double offset_lo, double offset_hi)
    : num_directions_(num_directions),
      num_offsets_(num_offsets),
      offset_lo_(offset_lo),
      offset_hi_(offset_hi) {
  RS_CHECK_MSG(num_directions >= 1, "need at least one direction");
  RS_CHECK_MSG(num_offsets >= 2, "need at least two offsets");
  RS_CHECK_MSG(offset_lo < offset_hi, "offset range must be non-degenerate");
  cos_.resize(num_directions_);
  sin_.resize(num_directions_);
  for (int j = 0; j < num_directions_; ++j) {
    const double theta =
        2.0 * std::numbers::pi * static_cast<double>(j) / num_directions_;
    cos_[j] = std::cos(theta);
    sin_[j] = std::sin(theta);
  }
}

uint64_t HalfspaceFamily2D::NumRanges() const {
  return static_cast<uint64_t>(num_directions_) *
         static_cast<uint64_t>(num_offsets_);
}

HalfspaceFamily2D::Halfspace HalfspaceFamily2D::Range(
    uint64_t range_index) const {
  RS_DCHECK(range_index < NumRanges());
  const int j = static_cast<int>(range_index / num_offsets_);
  const int i = static_cast<int>(range_index % num_offsets_);
  Halfspace h;
  h.nx = cos_[j];
  h.ny = sin_[j];
  h.offset = offset_lo_ + (offset_hi_ - offset_lo_) *
                              static_cast<double>(i) /
                              static_cast<double>(num_offsets_ - 1);
  return h;
}

bool HalfspaceFamily2D::Contains(uint64_t range_index, const Point& x) const {
  RS_DCHECK(x.size() == 2);
  return Range(range_index).Contains(x);
}

void HalfspaceFamily2D::Direction(int j, double* nx, double* ny) const {
  RS_CHECK(j >= 0 && j < num_directions_);
  *nx = cos_[j];
  *ny = sin_[j];
}

std::string HalfspaceFamily2D::Name() const {
  return "halfspaces2d[" + std::to_string(num_directions_) + " dirs x " +
         std::to_string(num_offsets_) + " offsets]";
}

}  // namespace robust_sampling
