#ifndef ROBUST_SAMPLING_STREAM_ZIPF_H_
#define ROBUST_SAMPLING_STREAM_ZIPF_H_

#include <cstdint>
#include <vector>

#include "core/random.h"

namespace robust_sampling {

/// Zipf(s) distribution over {1, ..., N}: P(i) proportional to 1/i^s.
///
/// Heavy-hitter and load-balancing experiments use Zipfian traffic as the
/// realistic skewed background workload. Implementation: exact inverse-CDF
/// sampling over a precomputed cumulative table (O(N) memory, O(log N) per
/// draw) — simple, exact, and fast enough for the universe sizes used in
/// experiments (N <= ~10^7).
class ZipfDistribution {
 public:
  /// Requires universe_size in [1, 5e7] and exponent >= 0 (0 = uniform).
  ZipfDistribution(int64_t universe_size, double exponent);

  /// Draws one variate in {1, ..., N}.
  int64_t Sample(Rng& rng) const;

  /// Exact probability of element i (1-based).
  double Probability(int64_t i) const;

  int64_t universe_size() const { return universe_size_; }
  double exponent() const { return exponent_; }

 private:
  int64_t universe_size_;
  double exponent_;
  std::vector<double> cdf_;  // cdf_[i] = P(X <= i+1)
};

}  // namespace robust_sampling

#endif  // ROBUST_SAMPLING_STREAM_ZIPF_H_
