#include "stream/zipf.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"

namespace robust_sampling {

ZipfDistribution::ZipfDistribution(int64_t universe_size, double exponent)
    : universe_size_(universe_size), exponent_(exponent) {
  RS_CHECK_MSG(universe_size >= 1, "universe must be non-empty");
  RS_CHECK_MSG(universe_size <= 50000000, "universe too large for CDF table");
  RS_CHECK_MSG(exponent >= 0.0, "exponent must be non-negative");
  cdf_.resize(universe_size);
  double acc = 0.0;
  for (int64_t i = 1; i <= universe_size; ++i) {
    acc += std::pow(static_cast<double>(i), -exponent);
    cdf_[i - 1] = acc;
  }
  const double total = acc;
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding
}

int64_t ZipfDistribution::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<int64_t>(it - cdf_.begin()) + 1;
}

double ZipfDistribution::Probability(int64_t i) const {
  RS_CHECK(i >= 1 && i <= universe_size_);
  const double lo = i == 1 ? 0.0 : cdf_[i - 2];
  return cdf_[i - 1] - lo;
}

}  // namespace robust_sampling
