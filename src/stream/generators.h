#ifndef ROBUST_SAMPLING_STREAM_GENERATORS_H_
#define ROBUST_SAMPLING_STREAM_GENERATORS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "setsystem/point.h"

namespace robust_sampling {

// Static (non-adaptive) stream workload generators. All take explicit
// seeds; all integer universes are {1, ..., N}.

/// n i.i.d. uniform elements of {1..N}.
std::vector<int64_t> UniformIntStream(size_t n, int64_t universe_size,
                                      uint64_t seed);

/// n i.i.d. Zipf(exponent) elements of {1..N} (skewed workload).
std::vector<int64_t> ZipfIntStream(size_t n, int64_t universe_size,
                                   double exponent, uint64_t seed);

/// n elements ascending with wraparound: (i mod N) + 1 — a deterministic
/// worst-case *order* for order-sensitive algorithms.
std::vector<int64_t> SortedIntStream(size_t n, int64_t universe_size);

/// n i.i.d. rounded-Gaussian elements, mean = mean_frac*N,
/// sd = sd_frac*N, clamped to {1..N} (clustered numeric workload).
std::vector<int64_t> GaussianIntStream(size_t n, int64_t universe_size,
                                       double mean_frac, double sd_frac,
                                       uint64_t seed);

/// n i.i.d. uniform doubles in [lo, hi).
std::vector<double> UniformDoubleStream(size_t n, double lo, double hi,
                                        uint64_t seed);

/// n i.i.d. uniform points in [lo, hi)^dims.
std::vector<Point> UniformPointStream(size_t n, int dims, double lo,
                                      double hi, uint64_t seed);

/// n points from an isotropic Gaussian mixture with the given centers and
/// common standard deviation (equal weights). The workload of the
/// clustering experiment (E11).
std::vector<Point> GaussianMixturePointStream(
    size_t n, const std::vector<Point>& centers, double stddev,
    uint64_t seed);

}  // namespace robust_sampling

#endif  // ROBUST_SAMPLING_STREAM_GENERATORS_H_
