#include "stream/generators.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"
#include "core/random.h"
#include "stream/zipf.h"

namespace robust_sampling {

std::vector<int64_t> UniformIntStream(size_t n, int64_t universe_size,
                                      uint64_t seed) {
  RS_CHECK(universe_size >= 1);
  Rng rng(seed);
  std::vector<int64_t> stream(n);
  for (auto& x : stream) {
    x = static_cast<int64_t>(
            rng.NextBelow(static_cast<uint64_t>(universe_size))) +
        1;
  }
  return stream;
}

std::vector<int64_t> ZipfIntStream(size_t n, int64_t universe_size,
                                   double exponent, uint64_t seed) {
  ZipfDistribution zipf(universe_size, exponent);
  Rng rng(seed);
  std::vector<int64_t> stream(n);
  for (auto& x : stream) x = zipf.Sample(rng);
  return stream;
}

std::vector<int64_t> SortedIntStream(size_t n, int64_t universe_size) {
  RS_CHECK(universe_size >= 1);
  std::vector<int64_t> stream(n);
  for (size_t i = 0; i < n; ++i) {
    stream[i] = static_cast<int64_t>(i % static_cast<size_t>(universe_size)) +
                1;
  }
  return stream;
}

std::vector<int64_t> GaussianIntStream(size_t n, int64_t universe_size,
                                       double mean_frac, double sd_frac,
                                       uint64_t seed) {
  RS_CHECK(universe_size >= 1);
  Rng rng(seed);
  const double mean = mean_frac * static_cast<double>(universe_size);
  const double sd = sd_frac * static_cast<double>(universe_size);
  std::vector<int64_t> stream(n);
  for (auto& x : stream) {
    const double v = std::round(mean + sd * rng.NextGaussian());
    x = std::clamp(static_cast<int64_t>(v), int64_t{1}, universe_size);
  }
  return stream;
}

std::vector<double> UniformDoubleStream(size_t n, double lo, double hi,
                                        uint64_t seed) {
  RS_CHECK(lo < hi);
  Rng rng(seed);
  std::vector<double> stream(n);
  for (auto& x : stream) x = rng.NextDoubleIn(lo, hi);
  return stream;
}

std::vector<Point> UniformPointStream(size_t n, int dims, double lo,
                                      double hi, uint64_t seed) {
  RS_CHECK(dims >= 1);
  RS_CHECK(lo < hi);
  Rng rng(seed);
  std::vector<Point> stream(n, Point(dims));
  for (auto& p : stream) {
    for (int j = 0; j < dims; ++j) p[j] = rng.NextDoubleIn(lo, hi);
  }
  return stream;
}

std::vector<Point> GaussianMixturePointStream(
    size_t n, const std::vector<Point>& centers, double stddev,
    uint64_t seed) {
  RS_CHECK(!centers.empty());
  RS_CHECK(stddev >= 0.0);
  const size_t dims = centers[0].size();
  for (const Point& c : centers) RS_CHECK(c.size() == dims);
  Rng rng(seed);
  std::vector<Point> stream(n, Point(dims));
  for (auto& p : stream) {
    const Point& c = centers[rng.NextBelow(centers.size())];
    for (size_t j = 0; j < dims; ++j) {
      p[j] = c[j] + stddev * rng.NextGaussian();
    }
  }
  return stream;
}

}  // namespace robust_sampling
