#include "core/sample_bounds.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"

namespace robust_sampling {

namespace {

void CheckEpsDelta(double eps, double delta) {
  RS_CHECK_MSG(eps > 0.0 && eps < 1.0, "eps must lie in (0, 1)");
  RS_CHECK_MSG(delta > 0.0 && delta < 1.0, "delta must lie in (0, 1)");
}

size_t CeilToSize(double x) {
  RS_CHECK(x >= 0.0);
  const double c = std::ceil(x);
  RS_CHECK_MSG(c < 9.0e18, "bound overflows size_t");
  return static_cast<size_t>(std::max(c, 1.0));
}

}  // namespace

double BernoulliRobustP(double eps, double delta, double log_cardinality,
                        uint64_t n) {
  CheckEpsDelta(eps, delta);
  RS_CHECK(log_cardinality >= 0.0);
  RS_CHECK(n >= 1);
  const double p = 10.0 * (log_cardinality + std::log(4.0 / delta)) /
                   (eps * eps * static_cast<double>(n));
  return std::min(p, 1.0);
}

size_t ReservoirRobustK(double eps, double delta, double log_cardinality) {
  CheckEpsDelta(eps, delta);
  RS_CHECK(log_cardinality >= 0.0);
  return CeilToSize(2.0 * (log_cardinality + std::log(2.0 / delta)) /
                    (eps * eps));
}

double BernoulliSingleRangeP(double eps, double delta, uint64_t n) {
  return BernoulliRobustP(eps, delta, /*log_cardinality=*/0.0, n);
}

size_t ReservoirSingleRangeK(double eps, double delta) {
  return ReservoirRobustK(eps, delta, /*log_cardinality=*/0.0);
}

double BernoulliStaticP(double eps, double delta, double vc_dimension,
                        uint64_t n, double c) {
  CheckEpsDelta(eps, delta);
  RS_CHECK(vc_dimension >= 0.0);
  RS_CHECK(n >= 1);
  RS_CHECK(c > 0.0);
  const double p = c * (vc_dimension + std::log(1.0 / delta)) /
                   (eps * eps * static_cast<double>(n));
  return std::min(p, 1.0);
}

size_t ReservoirStaticK(double eps, double delta, double vc_dimension,
                        double c) {
  CheckEpsDelta(eps, delta);
  RS_CHECK(vc_dimension >= 0.0);
  RS_CHECK(c > 0.0);
  return CeilToSize(c * (vc_dimension + std::log(1.0 / delta)) / (eps * eps));
}

size_t ReservoirContinuousK(double eps, double delta, double log_cardinality,
                            uint64_t n, double c) {
  CheckEpsDelta(eps, delta);
  RS_CHECK(log_cardinality >= 0.0);
  RS_CHECK(n >= 2);
  RS_CHECK(c > 0.0);
  const double lnln = std::log(std::max(std::log(static_cast<double>(n)), 1.0));
  return CeilToSize(c *
                    (log_cardinality + std::log(1.0 / delta) +
                     std::log(1.0 / eps) + lnln) /
                    (eps * eps));
}

double AttackThresholdBernoulliP(double log_cardinality, uint64_t n,
                                 double c) {
  RS_CHECK(log_cardinality > 0.0);
  RS_CHECK(n >= 2);
  RS_CHECK(c > 0.0);
  return c * log_cardinality /
         (static_cast<double>(n) * std::log(static_cast<double>(n)));
}

size_t AttackThresholdReservoirK(double log_cardinality, uint64_t n,
                                 double c) {
  RS_CHECK(log_cardinality > 0.0);
  RS_CHECK(n >= 2);
  RS_CHECK(c > 0.0);
  const double k =
      c * log_cardinality / std::log(static_cast<double>(n));
  return static_cast<size_t>(std::max(std::floor(k), 1.0));
}

size_t QuantileSketchK(double eps, double delta, uint64_t universe_size) {
  RS_CHECK(universe_size >= 1);
  return ReservoirRobustK(eps, delta,
                          std::log(static_cast<double>(universe_size)));
}

double QuantileSketchP(double eps, double delta, uint64_t universe_size,
                       uint64_t n) {
  RS_CHECK(universe_size >= 1);
  return BernoulliRobustP(eps, delta,
                          std::log(static_cast<double>(universe_size)), n);
}

size_t HeavyHitterK(double eps, double delta, uint64_t universe_size) {
  RS_CHECK(universe_size >= 1);
  // eps' = eps/3 with the singleton system (Cor. 1.6 proof).
  return ReservoirRobustK(eps / 3.0, delta,
                          std::log(static_cast<double>(universe_size)));
}

double HeavyHitterP(double eps, double delta, uint64_t universe_size,
                    uint64_t n) {
  RS_CHECK(universe_size >= 1);
  return BernoulliRobustP(eps / 3.0, delta,
                          std::log(static_cast<double>(universe_size)), n);
}

double AttackMinUniverseSize(uint64_t n) {
  RS_CHECK(n >= 2);
  const double nd = static_cast<double>(n);
  return std::ceil(std::pow(nd, 6.0) * std::log(nd));
}

}  // namespace robust_sampling
