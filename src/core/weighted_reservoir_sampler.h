#ifndef ROBUST_SAMPLING_CORE_WEIGHTED_RESERVOIR_SAMPLER_H_
#define ROBUST_SAMPLING_CORE_WEIGHTED_RESERVOIR_SAMPLER_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/check.h"
#include "core/random.h"

namespace robust_sampling {

/// Weighted reservoir sampling without replacement (Efraimidis–Spirakis
/// "A-Res", 2006) — the weighted flavor referenced in the paper's related
/// work (Section 1.3, [ES06]).
///
/// Each element x with weight w > 0 receives a key u^{1/w} with u uniform in
/// (0, 1); the sample is the k elements with the largest keys. The
/// probability that an element is selected is proportional to its weight in
/// the appropriate sequential sense (Efraimidis–Spirakis Theorem 1). With
/// all weights equal this reduces exactly to uniform reservoir sampling.
///
/// The sample is kept as a binary min-heap on keys, so insertion is
/// O(log k) worst case.
template <typename T>
class WeightedReservoirSampler {
 public:
  /// A sampled element together with its A-Res key.
  struct Entry {
    T value;
    double weight;
    double key;  // u^{1/w}; the reservoir keeps the k largest keys.
  };

  /// Creates a weighted reservoir of capacity `k`. Requires k >= 1.
  WeightedReservoirSampler(size_t k, uint64_t seed) : k_(k), rng_(seed) {
    RS_CHECK_MSG(k >= 1, "reservoir capacity must be >= 1");
    heap_.reserve(k);
  }

  /// Processes one stream element with the given positive weight.
  void Insert(const T& x, double weight) {
    RS_CHECK_MSG(weight > 0.0, "weights must be positive");
    ++stream_size_;
    // key = u^{1/w}, computed in log-space for numerical stability:
    // log key = log(u) / w.
    const double u = std::max(rng_.NextDouble(), 1e-300);
    const double key = std::exp(std::log(u) / weight);
    if (heap_.size() < k_) {
      heap_.push_back(Entry{x, weight, key});
      std::push_heap(heap_.begin(), heap_.end(), KeyGreater);
      last_kept_ = true;
      return;
    }
    if (key > heap_.front().key) {
      std::pop_heap(heap_.begin(), heap_.end(), KeyGreater);
      heap_.back() = Entry{x, weight, key};
      std::push_heap(heap_.begin(), heap_.end(), KeyGreater);
      last_kept_ = true;
    } else {
      last_kept_ = false;
    }
  }

  /// Convenience overload: unit weight (reduces to uniform reservoir
  /// sampling in distribution).
  void Insert(const T& x) { Insert(x, 1.0); }

  /// The current sample entries, in heap order (no particular sort).
  const std::vector<Entry>& entries() const { return heap_; }

  /// Copies out the sampled values (heap order).
  std::vector<T> SampleValues() const {
    std::vector<T> values;
    values.reserve(heap_.size());
    for (const Entry& e : heap_) values.push_back(e.value);
    return values;
  }

  /// Number of stream elements processed so far.
  size_t stream_size() const { return stream_size_; }

  /// Whether the most recently inserted element entered the reservoir.
  bool last_kept() const { return last_kept_; }

  /// The reservoir capacity k.
  size_t capacity() const { return k_; }

 private:
  static bool KeyGreater(const Entry& a, const Entry& b) {
    return a.key > b.key;  // min-heap on key
  }

  size_t k_;
  Rng rng_;
  std::vector<Entry> heap_;
  size_t stream_size_ = 0;
  bool last_kept_ = false;
};

}  // namespace robust_sampling

#endif  // ROBUST_SAMPLING_CORE_WEIGHTED_RESERVOIR_SAMPLER_H_
