#ifndef ROBUST_SAMPLING_CORE_ADVERSARIAL_GAME_H_
#define ROBUST_SAMPLING_CORE_ADVERSARIAL_GAME_H_

#include <algorithm>
#include <cstddef>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "core/check.h"
#include "core/checkpoints.h"
#include "core/sampler.h"

namespace robust_sampling {

/// The adaptive player of the paper's two-player game (Section 2).
///
/// In each round i the adversary sees the sampler's full state sigma_{i-1}
/// (the current sample) and chooses the next stream element x_i; after the
/// sampler updates, the adversary additionally observes sigma_i before the
/// next round. Implementations may be randomized and keep arbitrary
/// internal history.
///
/// Observations arrive as read-only spans — the same representation
/// StreamSketch<T>::SampleView() serves — so adversaries work against
/// concrete samplers and type-erased registry kinds alike, with no copy on
/// the observation path. The span is valid only for the duration of the
/// call.
template <typename T>
class Adversary {
 public:
  virtual ~Adversary() = default;

  /// Chooses x_i given sigma_{i-1}. `round` is 1-based.
  virtual T NextElement(std::span<const T> sample_before, size_t round) = 0;

  /// Observes the updated state sigma_i. `kept` is whether x_i entered the
  /// sample (fully determined by sigma_i, exposed as a convenience).
  virtual void Observe(std::span<const T> sample_after, bool kept,
                       size_t round) {
    (void)sample_after;
    (void)kept;
    (void)round;
  }

  /// Human-readable strategy name for reports.
  virtual std::string Name() const = 0;

  /// Whether the strategy has run out of moves that make progress (e.g. the
  /// bisection attack's working range has no interior point left). Purely
  /// diagnostic — an exhausted adversary must still answer NextElement.
  /// Defaults to "never exhausted".
  virtual bool Exhausted() const { return false; }
};

/// A discrepancy functional: given (stream prefix, sample), returns
/// sup_R |d_R(X) - d_R(S)| for the set system under study. The fast paths in
/// setsystem/discrepancy.h plug in directly.
template <typename T>
using DiscrepancyFn =
    std::function<double(const std::vector<T>&, const std::vector<T>&)>;

/// Outcome of one AdaptiveGame (paper Fig. 1).
template <typename T>
struct AdaptiveGameResult {
  std::vector<T> stream;  ///< x_1..x_n as chosen by the adversary.
  std::vector<T> sample;  ///< final sample S = sigma_n.
  double discrepancy = 0.0;  ///< sup_R |d_R(X) - d_R(S)| at the end.
  bool is_approximation = false;  ///< discrepancy <= eps ("game output 1").
};

/// Runs AdaptiveGame (paper Fig. 1): n rounds of adversary-vs-sampler,
/// then evaluates whether the final sample is an eps-approximation of the
/// full stream under `discrepancy`.
///
/// The sampler is taken by reference and should be freshly constructed.
template <typename T, typename SamplerT>
  requires StreamSampler<SamplerT, T>
AdaptiveGameResult<T> RunAdaptiveGame(SamplerT& sampler,
                                      Adversary<T>& adversary, size_t n,
                                      const DiscrepancyFn<T>& discrepancy,
                                      double eps) {
  RS_CHECK(n >= 1);
  RS_CHECK(eps > 0.0);
  AdaptiveGameResult<T> result;
  result.stream.reserve(n);
  for (size_t i = 1; i <= n; ++i) {
    T x = adversary.NextElement(std::span<const T>(sampler.sample()), i);
    sampler.Insert(x);
    result.stream.push_back(std::move(x));
    adversary.Observe(std::span<const T>(sampler.sample()),
                      sampler.last_kept(), i);
  }
  const std::span<const T> final_sample(sampler.sample());
  result.sample.assign(final_sample.begin(), final_sample.end());
  result.discrepancy = discrepancy(result.stream, result.sample);
  result.is_approximation = result.discrepancy <= eps;
  return result;
}

/// A StreamSampler that additionally exposes the pipeline's batched
/// insertion hot path (geometric skip sampling etc.; see
/// ReservoirSampler::InsertBatch).
template <typename S, typename T>
concept BatchStreamSampler =
    StreamSampler<S, T> && requires(S s, std::span<const T> xs) {
      { s.InsertBatch(xs) };
    };

/// Runs a *rate-limited* AdaptiveGame: the adversary must commit
/// `batch_size` elements per round, all chosen against the sampler state
/// frozen at the start of the round, and the sampler consumes each
/// committed batch through its InsertBatch hot path. Observe fires once per
/// round (with `kept` referring to the batch's final element).
///
/// This is the game the sharded pipeline actually plays against the
/// outside world: an adversary that only sees state at batch boundaries is
/// strictly weaker than the per-element adversary of Fig. 1 (batching
/// coarsens its observation points), so Theorem 1.2's guarantee applies a
/// fortiori — and the experiments bear this out: the bisection attack's
/// discrepancy degrades as batch_size grows. batch_size = 1 coincides with
/// RunAdaptiveGame up to the sampler's InsertBatch-vs-Insert seeding (the
/// two hot paths draw different random variates, so per-seed outcomes
/// differ even though the distributions agree).
template <typename T, typename SamplerT>
  requires BatchStreamSampler<SamplerT, T>
AdaptiveGameResult<T> RunBatchedAdaptiveGame(
    SamplerT& sampler, Adversary<T>& adversary, size_t n, size_t batch_size,
    const DiscrepancyFn<T>& discrepancy, double eps) {
  RS_CHECK(n >= 1);
  RS_CHECK(batch_size >= 1);
  RS_CHECK(eps > 0.0);
  AdaptiveGameResult<T> result;
  result.stream.reserve(n);
  std::vector<T> batch;
  batch.reserve(batch_size);
  for (size_t i = 1; i <= n;) {
    const size_t b = std::min(batch_size, n - i + 1);
    // sigma visible to the adversary this round; nothing mutates the
    // sampler until InsertBatch, so a view is safe (no copy).
    const std::span<const T> frozen(sampler.sample());
    batch.clear();
    for (size_t j = 0; j < b; ++j) {
      batch.push_back(adversary.NextElement(frozen, i + j));
    }
    sampler.InsertBatch(std::span<const T>(batch));
    for (T& x : batch) result.stream.push_back(std::move(x));
    i += b;
    adversary.Observe(std::span<const T>(sampler.sample()),
                      sampler.last_kept(), i - 1);
  }
  const std::span<const T> final_sample(sampler.sample());
  result.sample.assign(final_sample.begin(), final_sample.end());
  result.discrepancy = discrepancy(result.stream, result.sample);
  result.is_approximation = result.discrepancy <= eps;
  return result;
}

/// Outcome of one ContinuousAdaptiveGame (paper Fig. 2), evaluated at the
/// rounds of a CheckpointSchedule.
template <typename T>
struct ContinuousGameResult {
  std::vector<T> stream;        ///< full stream.
  std::vector<T> final_sample;  ///< S_n.
  double max_discrepancy = 0.0;  ///< max over checked rounds.
  size_t worst_round = 0;        ///< round attaining max_discrepancy.
  /// First checked round whose sample was not an eps-approximation of the
  /// prefix (0 if none — i.e. the game outputs 1).
  size_t first_violation_round = 0;
  bool continuously_approximating = false;
};

/// Runs ContinuousAdaptiveGame (paper Fig. 2): after every round in
/// `schedule`, checks that the current sample is an eps-approximation of
/// the current stream prefix. Unlike the paper's game, this runner does not
/// halt at the first violation — it records it and keeps playing, so
/// experiments can report the full max-discrepancy profile.
///
/// Passing CheckpointSchedule::All(n) reproduces the paper's game exactly;
/// the geometric schedule of Theorem 1.4 certifies the same property at
/// O(eps^{-1} ln n) cost (up to the eps/4 vs eps slack — see Claims
/// 6.1-6.3).
template <typename T, typename SamplerT>
  requires StreamSampler<SamplerT, T>
ContinuousGameResult<T> RunContinuousAdaptiveGame(
    SamplerT& sampler, Adversary<T>& adversary, size_t n,
    const DiscrepancyFn<T>& discrepancy, double eps,
    const CheckpointSchedule& schedule) {
  RS_CHECK(n >= 1);
  RS_CHECK(eps > 0.0);
  RS_CHECK(!schedule.points().empty());
  RS_CHECK_MSG(schedule.points().back() <= n,
               "schedule extends past the stream length");
  ContinuousGameResult<T> result;
  result.stream.reserve(n);
  size_t next_check_idx = 0;
  const auto& checks = schedule.points();
  // The DiscrepancyFn interface takes materialized vectors; samples are
  // copied out of the view only at checkpoints (where a discrepancy
  // evaluation dwarfs the copy anyway), never on ordinary rounds.
  const auto sample_copy = [&sampler] {
    const std::span<const T> view(sampler.sample());
    return std::vector<T>(view.begin(), view.end());
  };
  for (size_t i = 1; i <= n; ++i) {
    T x = adversary.NextElement(std::span<const T>(sampler.sample()), i);
    sampler.Insert(x);
    result.stream.push_back(std::move(x));
    adversary.Observe(std::span<const T>(sampler.sample()),
                      sampler.last_kept(), i);
    if (next_check_idx < checks.size() && checks[next_check_idx] == i) {
      ++next_check_idx;
      const double d = discrepancy(result.stream, sample_copy());
      if (d > result.max_discrepancy) {
        result.max_discrepancy = d;
        result.worst_round = i;
      }
      if (d > eps && result.first_violation_round == 0) {
        result.first_violation_round = i;
      }
    }
  }
  result.final_sample = sample_copy();
  result.continuously_approximating = result.first_violation_round == 0;
  return result;
}

}  // namespace robust_sampling

#endif  // ROBUST_SAMPLING_CORE_ADVERSARIAL_GAME_H_
