#ifndef ROBUST_SAMPLING_CORE_CHECK_H_
#define ROBUST_SAMPLING_CORE_CHECK_H_

#include <cstdio>
#include <cstdlib>

// Precondition checking for the robust_sampling library.
//
// The library does not use exceptions (Google style). API misuse — e.g. a
// sampling probability outside [0, 1], or an empty reservoir — is a
// programming error, not a recoverable condition, so a violated RS_CHECK
// prints the failing condition with its location and aborts.
//
// RS_CHECK is always on; RS_DCHECK compiles away in NDEBUG builds and should
// guard hot-path invariants only.

#define RS_CHECK(condition)                                              \
  do {                                                                   \
    if (!(condition)) {                                                  \
      std::fprintf(stderr, "RS_CHECK failed: %s at %s:%d\n", #condition, \
                   __FILE__, __LINE__);                                  \
      std::abort();                                                      \
    }                                                                    \
  } while (0)

#define RS_CHECK_MSG(condition, msg)                                         \
  do {                                                                       \
    if (!(condition)) {                                                      \
      std::fprintf(stderr, "RS_CHECK failed: %s (%s) at %s:%d\n", #condition, \
                   msg, __FILE__, __LINE__);                                 \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#ifdef NDEBUG
#define RS_DCHECK(condition) \
  do {                       \
  } while (0)
#else
#define RS_DCHECK(condition) RS_CHECK(condition)
#endif

#endif  // ROBUST_SAMPLING_CORE_CHECK_H_
