#include "core/big_uint.h"

#include <cmath>

#include "core/check.h"

namespace robust_sampling {

namespace {
constexpr double kLn2 = 0.6931471805599453;
}  // namespace

BigUint::BigUint(uint64_t value) {
  if (value != 0) limbs_.push_back(value);
}

void BigUint::Normalize() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigUint BigUint::Pow2(uint32_t bits) {
  BigUint r;
  r.limbs_.assign(bits / 64 + 1, 0);
  r.limbs_.back() = 1ULL << (bits % 64);
  return r;
}

BigUint BigUint::ApproxExp(double x) {
  RS_CHECK(x >= 0.0);
  RS_CHECK_MSG(x < 3.0e6, "exponent too large");
  const double t = x / kLn2;  // e^x = 2^t
  const double b = std::floor(t);
  const double frac = t - b;
  // mantissa = 2^frac scaled to 63 bits, in [2^63, 2^64).
  const uint64_t mantissa =
      static_cast<uint64_t>(std::ldexp(std::exp2(frac), 63));
  const int64_t shift = static_cast<int64_t>(b) - 63;
  BigUint m(mantissa);
  if (shift >= 0) return m.ShiftLeft(static_cast<uint32_t>(shift));
  const uint32_t right = static_cast<uint32_t>(-shift);
  if (right >= 64) return BigUint(0);
  return m.ShiftRight(right);
}

uint32_t BigUint::BitLength() const {
  if (limbs_.empty()) return 0;
  const uint64_t top = limbs_.back();
  const int top_bits = 64 - __builtin_clzll(top);
  return static_cast<uint32_t>((limbs_.size() - 1) * 64 + top_bits);
}

double BigUint::Log() const {
  RS_CHECK_MSG(!IsZero(), "log of zero");
  const uint32_t bits = BitLength();
  if (bits <= 64) {
    return std::log(static_cast<double>(limbs_[0]));
  }
  const BigUint top = ShiftRight(bits - 64);
  return std::log(static_cast<double>(top.limbs_[0])) +
         static_cast<double>(bits - 64) * kLn2;
}

double BigUint::ToDouble() const {
  if (IsZero()) return 0.0;
  const uint32_t bits = BitLength();
  if (bits <= 64) return static_cast<double>(limbs_[0]);
  const BigUint top = ShiftRight(bits - 64);
  return std::ldexp(static_cast<double>(top.limbs_[0]),
                    static_cast<int>(bits - 64));
}

std::string BigUint::ToHexString() const {
  if (IsZero()) return "0";
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  for (size_t i = limbs_.size(); i-- > 0;) {
    for (int nib = 15; nib >= 0; --nib) {
      const int v = static_cast<int>((limbs_[i] >> (nib * 4)) & 0xF);
      if (out.empty() && v == 0) continue;
      out.push_back(kHex[v]);
    }
  }
  return out;
}

BigUint BigUint::Add(const BigUint& other) const {
  BigUint r;
  const size_t n = std::max(limbs_.size(), other.limbs_.size());
  r.limbs_.reserve(n + 1);
  uint64_t carry = 0;
  for (size_t i = 0; i < n; ++i) {
    const uint64_t a = i < limbs_.size() ? limbs_[i] : 0;
    const uint64_t b = i < other.limbs_.size() ? other.limbs_[i] : 0;
    const __uint128_t sum =
        static_cast<__uint128_t>(a) + static_cast<__uint128_t>(b) + carry;
    r.limbs_.push_back(static_cast<uint64_t>(sum));
    carry = static_cast<uint64_t>(sum >> 64);
  }
  if (carry) r.limbs_.push_back(carry);
  return r;
}

BigUint BigUint::Sub(const BigUint& other) const {
  RS_CHECK_MSG(*this >= other, "BigUint subtraction underflow");
  BigUint r;
  r.limbs_.reserve(limbs_.size());
  uint64_t borrow = 0;
  for (size_t i = 0; i < limbs_.size(); ++i) {
    const uint64_t a = limbs_[i];
    const uint64_t b = i < other.limbs_.size() ? other.limbs_[i] : 0;
    const __uint128_t need = static_cast<__uint128_t>(b) + borrow;
    uint64_t out;
    if (static_cast<__uint128_t>(a) >= need) {
      out = a - static_cast<uint64_t>(need);
      borrow = 0;
    } else {
      out = static_cast<uint64_t>((static_cast<__uint128_t>(1) << 64) + a -
                                  need);
      borrow = 1;
    }
    r.limbs_.push_back(out);
  }
  RS_CHECK(borrow == 0);
  r.Normalize();
  return r;
}

BigUint BigUint::MulU64(uint64_t factor) const {
  if (factor == 0 || IsZero()) return BigUint(0);
  BigUint r;
  r.limbs_.reserve(limbs_.size() + 1);
  uint64_t carry = 0;
  for (uint64_t limb : limbs_) {
    const __uint128_t prod =
        static_cast<__uint128_t>(limb) * factor + carry;
    r.limbs_.push_back(static_cast<uint64_t>(prod));
    carry = static_cast<uint64_t>(prod >> 64);
  }
  if (carry) r.limbs_.push_back(carry);
  return r;
}

BigUint BigUint::DivU64(uint64_t divisor) const {
  RS_CHECK_MSG(divisor != 0, "division by zero");
  BigUint r;
  r.limbs_.assign(limbs_.size(), 0);
  __uint128_t rem = 0;
  for (size_t i = limbs_.size(); i-- > 0;) {
    const __uint128_t cur = (rem << 64) | limbs_[i];
    r.limbs_[i] = static_cast<uint64_t>(cur / divisor);
    rem = cur % divisor;
  }
  r.Normalize();
  return r;
}

uint64_t BigUint::ModU64(uint64_t divisor) const {
  RS_CHECK_MSG(divisor != 0, "division by zero");
  __uint128_t rem = 0;
  for (size_t i = limbs_.size(); i-- > 0;) {
    rem = ((rem << 64) | limbs_[i]) % divisor;
  }
  return static_cast<uint64_t>(rem);
}

BigUint BigUint::ShiftLeft(uint32_t bits) const {
  if (IsZero()) return BigUint(0);
  const uint32_t limb_shift = bits / 64;
  const uint32_t bit_shift = bits % 64;
  BigUint r;
  r.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (size_t i = 0; i < limbs_.size(); ++i) {
    r.limbs_[i + limb_shift] |= bit_shift ? (limbs_[i] << bit_shift)
                                          : limbs_[i];
    if (bit_shift) {
      r.limbs_[i + limb_shift + 1] |= limbs_[i] >> (64 - bit_shift);
    }
  }
  r.Normalize();
  return r;
}

BigUint BigUint::ShiftRight(uint32_t bits) const {
  const uint32_t limb_shift = bits / 64;
  const uint32_t bit_shift = bits % 64;
  if (limb_shift >= limbs_.size()) return BigUint(0);
  BigUint r;
  r.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (size_t i = 0; i < r.limbs_.size(); ++i) {
    r.limbs_[i] = bit_shift ? (limbs_[i + limb_shift] >> bit_shift)
                            : limbs_[i + limb_shift];
    if (bit_shift && i + limb_shift + 1 < limbs_.size()) {
      r.limbs_[i] |= limbs_[i + limb_shift + 1] << (64 - bit_shift);
    }
  }
  r.Normalize();
  return r;
}

bool operator<(const BigUint& a, const BigUint& b) {
  if (a.limbs_.size() != b.limbs_.size()) {
    return a.limbs_.size() < b.limbs_.size();
  }
  for (size_t i = a.limbs_.size(); i-- > 0;) {
    if (a.limbs_[i] != b.limbs_[i]) return a.limbs_[i] < b.limbs_[i];
  }
  return false;
}

}  // namespace robust_sampling
