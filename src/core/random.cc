#include "core/random.h"

#include <cmath>

#include "core/check.h"

namespace robust_sampling {

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t SplitMix64::Next() {
  uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Xoshiro256pp::Xoshiro256pp(uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& word : state_) word = sm.Next();
  // An all-zero state is the (single) invalid state for xoshiro; SplitMix64
  // cannot emit four consecutive zeros, but keep the guard explicit.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) {
    state_[0] = kDefaultSeed;
  }
}

uint64_t Xoshiro256pp::NextUint64() {
  const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Xoshiro256pp::NextBelow(uint64_t bound) {
  RS_CHECK(bound > 0);
  // Lemire's nearly-divisionless unbiased bounded generation.
  uint64_t x = NextUint64();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    const uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = NextUint64();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

double Xoshiro256pp::NextDouble() {
  // 53 high bits -> uniform dyadic rational in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Xoshiro256pp::NextDoubleIn(double lo, double hi) {
  RS_CHECK(lo < hi);
  return lo + (hi - lo) * NextDouble();
}

bool Xoshiro256pp::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Xoshiro256pp::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Marsaglia polar method.
  double u, v, s;
  do {
    u = 2.0 * NextDouble() - 1.0;
    v = 2.0 * NextDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_gaussian_ = v * factor;
  has_cached_gaussian_ = true;
  return u * factor;
}

void Xoshiro256pp::Jump() {
  static constexpr uint64_t kJump[] = {0x180ec6d33cfd0abaULL,
                                       0xd5a61266f0c9392cULL,
                                       0xa9582618e03fc9aaULL,
                                       0x39abdc4529b1661cULL};
  uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (uint64_t jump : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (1ULL << b)) {
        s0 ^= state_[0];
        s1 ^= state_[1];
        s2 ^= state_[2];
        s3 ^= state_[3];
      }
      NextUint64();
    }
  }
  state_[0] = s0;
  state_[1] = s1;
  state_[2] = s2;
  state_[3] = s3;
}

std::array<uint64_t, 4> Xoshiro256pp::state() const {
  return {state_[0], state_[1], state_[2], state_[3]};
}

void Xoshiro256pp::set_state(const std::array<uint64_t, 4>& words) {
  for (int i = 0; i < 4; ++i) state_[i] = words[static_cast<size_t>(i)];
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) {
    state_[0] = kDefaultSeed;
  }
  has_cached_gaussian_ = false;
}

Xoshiro256pp Xoshiro256pp::Split(uint64_t index) const {
  Xoshiro256pp child = *this;
  child.has_cached_gaussian_ = false;
  for (uint64_t i = 0; i <= index; ++i) child.Jump();
  return child;
}

uint64_t MixSeed(uint64_t a, uint64_t b) {
  // Full avalanche on `a`, then a SplitMix step keyed by `b`: for fixed `a`
  // this is a bijection in `b`, so (a, b) pairs essentially never collide.
  SplitMix64 sm_a(a);
  SplitMix64 sm_b(sm_a.Next() ^ (b * 0x9e3779b97f4a7c15ULL));
  return sm_b.Next();
}

}  // namespace robust_sampling
