#ifndef ROBUST_SAMPLING_CORE_RANDOM_H_
#define ROBUST_SAMPLING_CORE_RANDOM_H_

#include <array>
#include <cstdint>
#include <limits>

namespace robust_sampling {

/// SplitMix64: a tiny, fast 64-bit generator (Steele, Lea, Flood 2014).
///
/// Used directly for seed expansion and as the seeding procedure for
/// Xoshiro256pp. Passes BigCrush when used on sequential seeds.
class SplitMix64 {
 public:
  /// Constructs the generator from an arbitrary 64-bit seed.
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  /// Returns the next 64-bit output and advances the state.
  uint64_t Next();

 private:
  uint64_t state_;
};

/// Xoshiro256pp ("xoshiro256++ 1.0", Blackman & Vigna 2019): the library's
/// default pseudo-random generator.
///
/// All stochastic components of robust_sampling (samplers, stream
/// generators, adversaries) draw from this generator through an explicit
/// 64-bit seed, so every experiment in the repository is reproducible
/// bit-for-bit. Satisfies the C++ UniformRandomBitGenerator requirements.
class Xoshiro256pp {
 public:
  using result_type = uint64_t;

  static constexpr uint64_t kDefaultSeed = 0x9e3779b97f4a7c15ULL;

  /// Seeds the four 64-bit state words via SplitMix64 expansion of `seed`,
  /// as recommended by the xoshiro authors.
  explicit Xoshiro256pp(uint64_t seed = kDefaultSeed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<uint64_t>::max();
  }

  /// UniformRandomBitGenerator interface: next 64 random bits.
  result_type operator()() { return NextUint64(); }

  /// Returns the next 64 random bits.
  uint64_t NextUint64();

  /// Returns an unbiased uniform integer in [0, bound). Requires bound > 0.
  /// Uses Lemire's multiply-shift rejection method.
  uint64_t NextBelow(uint64_t bound);

  /// Returns a uniform double in [0, 1) with 53 bits of precision.
  double NextDouble();

  /// Returns a uniform double in [lo, hi). Requires lo < hi.
  double NextDoubleIn(double lo, double hi);

  /// Returns true with probability p (clamped to [0, 1]).
  bool NextBernoulli(double p);

  /// Returns a standard normal variate (Marsaglia polar method).
  double NextGaussian();

  /// Equivalent to 2^128 calls to NextUint64(); used to split one seed into
  /// many non-overlapping substreams.
  void Jump();

  /// Derives an independent generator: the result of jumping a copy of this
  /// generator `index + 1` times. Does not advance *this.
  Xoshiro256pp Split(uint64_t index) const;

  /// The four raw state words, for checkpoint/restore (wire/). Restoring
  /// them with set_state reproduces the exact future output stream, so a
  /// revived sampler keeps the adversarial guarantees of the original.
  std::array<uint64_t, 4> state() const;

  /// Replaces the state words; the (single, invalid) all-zero state is
  /// remapped to the seeded default. Drops any cached Gaussian variate —
  /// the polar-method cache is deliberately not part of the wire state.
  void set_state(const std::array<uint64_t, 4>& words);

 private:
  uint64_t state_[4];
  // Cached second output of the polar method; NaN when empty.
  double cached_gaussian_;
  bool has_cached_gaussian_ = false;
};

/// The library-wide default generator alias.
using Rng = Xoshiro256pp;

/// Mixes two 64-bit values into a well-distributed seed. Used to derive
/// per-trial / per-component seeds from (experiment seed, index) pairs.
uint64_t MixSeed(uint64_t a, uint64_t b);

}  // namespace robust_sampling

#endif  // ROBUST_SAMPLING_CORE_RANDOM_H_
