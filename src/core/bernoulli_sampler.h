#ifndef ROBUST_SAMPLING_CORE_BERNOULLI_SAMPLER_H_
#define ROBUST_SAMPLING_CORE_BERNOULLI_SAMPLER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/check.h"
#include "core/random.h"

namespace robust_sampling {

/// BernoulliSample(p) — the paper's first protagonist (Section 1).
///
/// Every inserted element is stored in the sample independently with
/// probability p. For a stream of length n the sample size is Bin(n, p),
/// concentrated around n*p regardless of the adversary's strategy (the
/// sampler's coins are independent of the stream content).
///
/// Robustness (Theorem 1.2): with
///   p >= 10 * (ln|R| + ln(4/delta)) / (eps^2 * n)
/// the final sample is an eps-approximation of the stream w.r.t. (U, R) with
/// probability >= 1 - delta, against any adaptive adversary. See
/// `BernoulliRobustP()` in core/sample_bounds.h.
///
/// Not continuously robust (Section 6, footnote 4): no Bernoulli parameter
/// p < 1 - delta can make every prefix representative.
template <typename T>
class BernoulliSampler {
 public:
  /// Creates a sampler that keeps each element with probability `p`.
  /// Requires p in [0, 1].
  BernoulliSampler(double p, uint64_t seed)
      : p_(p), rng_(seed) {
    RS_CHECK_MSG(p >= 0.0 && p <= 1.0, "Bernoulli p must lie in [0, 1]");
  }

  /// Processes one stream element: keeps it with probability p.
  void Insert(const T& x) {
    ++stream_size_;
    last_kept_ = rng_.NextBernoulli(p_);
    if (last_kept_) sample_.push_back(x);
  }

  /// The current sample S_i (adversary-visible state).
  const std::vector<T>& sample() const { return sample_; }

  /// Number of stream elements processed so far.
  size_t stream_size() const { return stream_size_; }

  /// Whether the most recently inserted element was kept.
  bool last_kept() const { return last_kept_; }

  /// The sampling probability p.
  double p() const { return p_; }

  /// Discards the sample and stream position, keeping the RNG state.
  void Reset() {
    sample_.clear();
    stream_size_ = 0;
    last_kept_ = false;
  }

 private:
  double p_;
  Rng rng_;
  std::vector<T> sample_;
  size_t stream_size_ = 0;
  bool last_kept_ = false;
};

}  // namespace robust_sampling

#endif  // ROBUST_SAMPLING_CORE_BERNOULLI_SAMPLER_H_
