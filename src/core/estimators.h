#ifndef ROBUST_SAMPLING_CORE_ESTIMATORS_H_
#define ROBUST_SAMPLING_CORE_ESTIMATORS_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "core/check.h"

namespace robust_sampling {

/// A density/count estimate read off a sample, with a confidence interval.
struct DensityEstimate {
  double density = 0.0;     ///< estimated d_R(X) = d_R(S).
  double count = 0.0;       ///< estimated |R ∩ X| = density * n.
  double half_width = 0.0;  ///< density confidence half-width at 1 - delta.

  double density_lo() const { return density - half_width; }
  double density_hi() const { return density + half_width; }
};

/// Hoeffding half-width for the mean of `sample_size` [0,1]-bounded draws
/// at confidence 1 - delta: sqrt(ln(2/delta) / (2 * sample_size)).
///
/// Caveat (the whole point of the paper): this is the *static* interval.
/// Under an adaptive adversary it is valid only when the sample size meets
/// the Theorem 1.2 bound for the full set system; for a single
/// post-specified range it remains a useful diagnostic.
double HoeffdingHalfWidth(size_t sample_size, double delta);

/// Estimates the density and count of the range {x : predicate(x)} in a
/// stream of length `stream_size` from its sample. Requires a non-empty
/// sample and delta in (0, 1).
template <typename T>
DensityEstimate EstimateRange(const std::vector<T>& sample,
                              size_t stream_size,
                              const std::function<bool(const T&)>& predicate,
                              double delta) {
  RS_CHECK_MSG(!sample.empty(), "cannot estimate from an empty sample");
  size_t hits = 0;
  for (const T& x : sample) hits += predicate(x);
  DensityEstimate est;
  est.density = static_cast<double>(hits) / static_cast<double>(sample.size());
  est.count = est.density * static_cast<double>(stream_size);
  est.half_width = HoeffdingHalfWidth(sample.size(), delta);
  return est;
}

/// Estimates the rank fraction (fraction of stream elements <= x) from a
/// sample of a well-ordered stream.
template <typename T>
DensityEstimate EstimateRankFraction(const std::vector<T>& sample,
                                     size_t stream_size, const T& x,
                                     double delta) {
  return EstimateRange<T>(
      sample, stream_size, [&x](const T& v) { return !(x < v); }, delta);
}

}  // namespace robust_sampling

#endif  // ROBUST_SAMPLING_CORE_ESTIMATORS_H_
