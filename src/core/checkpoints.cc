#include "core/checkpoints.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"

namespace robust_sampling {

CheckpointSchedule CheckpointSchedule::Geometric(size_t first, size_t n,
                                                 double beta) {
  RS_CHECK(first >= 1);
  RS_CHECK(first <= n);
  RS_CHECK(beta > 0.0);
  std::vector<size_t> points;
  size_t i = first;
  points.push_back(i);
  while (i < n) {
    const double grown = (1.0 + beta) * static_cast<double>(i);
    size_t next = static_cast<size_t>(std::floor(grown));
    next = std::max(next, i + 1);  // always advance
    next = std::min(next, n);
    points.push_back(next);
    i = next;
  }
  return CheckpointSchedule(std::move(points));
}

CheckpointSchedule CheckpointSchedule::Every(size_t stride, size_t n) {
  RS_CHECK(stride >= 1);
  RS_CHECK(n >= 1);
  std::vector<size_t> points;
  for (size_t i = stride; i <= n; i += stride) points.push_back(i);
  if (points.empty() || points.back() != n) points.push_back(n);
  return CheckpointSchedule(std::move(points));
}

CheckpointSchedule CheckpointSchedule::All(size_t n) {
  return Every(/*stride=*/1, n);
}

bool CheckpointSchedule::Contains(size_t i) const {
  return std::binary_search(points_.begin(), points_.end(), i);
}

}  // namespace robust_sampling
