#ifndef ROBUST_SAMPLING_CORE_RESERVOIR_SAMPLER_H_
#define ROBUST_SAMPLING_CORE_RESERVOIR_SAMPLER_H_

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "core/check.h"
#include "core/random.h"

namespace robust_sampling {

/// ReservoirSample(k) — classical reservoir sampling (Vitter's Algorithm R;
/// paper Section 2 pseudocode), the paper's second protagonist.
///
/// Maintains a uniform random subset of fixed size k: the first k elements
/// are stored with probability one; element i > k replaces a uniformly
/// random reservoir slot with probability k/i.
///
/// Robustness (Theorem 1.2): with
///   k >= 2 * (ln|R| + ln(2/delta)) / eps^2
/// the final sample is an eps-approximation w.r.t. (U, R) with probability
/// >= 1 - delta against any adaptive adversary. Continuous robustness
/// (Theorem 1.4) additionally needs only + ln(1/eps) + ln ln n inside the
/// parenthesis. See core/sample_bounds.h.
template <typename T>
class ReservoirSampler {
 public:
  /// Creates a reservoir of capacity `k`. Requires k >= 1.
  ReservoirSampler(size_t k, uint64_t seed) : k_(k), rng_(seed) {
    RS_CHECK_MSG(k >= 1, "reservoir capacity must be >= 1");
    sample_.reserve(k);
  }

  /// Processes one stream element per Algorithm R.
  void Insert(const T& x) {
    ++stream_size_;
    last_evicted_.reset();
    if (sample_.size() < k_) {
      sample_.push_back(x);
      last_kept_ = true;
      return;
    }
    // Keep with probability k/i by drawing j uniform in [0, i) and replacing
    // slot j if j < k. This is the standard single-draw formulation and is
    // exactly equivalent to the paper's two-step (flip k/i, then pick a slot).
    const uint64_t j = rng_.NextBelow(stream_size_);
    if (j < k_) {
      last_evicted_ = sample_[j];
      sample_[j] = x;
      last_kept_ = true;
    } else {
      last_kept_ = false;
    }
  }

  /// The current reservoir contents S_i (adversary-visible state).
  const std::vector<T>& sample() const { return sample_; }

  /// Number of stream elements processed so far.
  size_t stream_size() const { return stream_size_; }

  /// Whether the most recently inserted element entered the reservoir.
  bool last_kept() const { return last_kept_; }

  /// The element evicted by the most recent insertion, if any.
  const std::optional<T>& last_evicted() const { return last_evicted_; }

  /// The reservoir capacity k.
  size_t capacity() const { return k_; }

  /// Discards the sample and stream position, keeping the RNG state.
  void Reset() {
    sample_.clear();
    stream_size_ = 0;
    last_kept_ = false;
    last_evicted_.reset();
  }

 private:
  size_t k_;
  Rng rng_;
  std::vector<T> sample_;
  size_t stream_size_ = 0;
  bool last_kept_ = false;
  std::optional<T> last_evicted_;
};

/// Skip-optimized reservoir sampling ("Algorithm L", Li 1994).
///
/// Produces a sample with exactly the same distribution as
/// `ReservoirSampler` but in expected O(k (1 + log(n/k))) random draws by
/// geometrically skipping runs of rejected elements. The skip lengths are
/// chosen independently of element values, so the distribution of kept
/// *positions* matches Algorithm R even on adaptively chosen streams; it is
/// offered as the high-throughput variant (ablation T1 in DESIGN.md).
///
/// Note on the adversarial model: Algorithm L pre-commits its next
/// acceptance position, so its internal state reveals strictly more to an
/// adversary than Algorithm R's (the adversary learns which *future* round
/// will be sampled). Theorem 1.2's martingale analysis does not cover that
/// leak; use `ReservoirSampler` inside adversarial games and reserve this
/// class for static / throughput settings. (Tests verify the distributional
/// equivalence on static streams.)
template <typename T>
class SkipReservoirSampler {
 public:
  /// Creates a reservoir of capacity `k`. Requires k >= 1.
  SkipReservoirSampler(size_t k, uint64_t seed) : k_(k), rng_(seed) {
    RS_CHECK_MSG(k >= 1, "reservoir capacity must be >= 1");
    sample_.reserve(k);
  }

  /// Processes one stream element.
  void Insert(const T& x) {
    ++stream_size_;
    if (sample_.size() < k_) {
      sample_.push_back(x);
      last_kept_ = true;
      if (sample_.size() == k_) ScheduleNextAcceptance();
      return;
    }
    if (stream_size_ == next_accept_) {
      const uint64_t slot = rng_.NextBelow(k_);
      sample_[slot] = x;
      last_kept_ = true;
      ScheduleNextAcceptance();
    } else {
      last_kept_ = false;
    }
  }

  /// The current reservoir contents.
  const std::vector<T>& sample() const { return sample_; }

  /// Number of stream elements processed so far.
  size_t stream_size() const { return stream_size_; }

  /// Whether the most recently inserted element entered the reservoir.
  bool last_kept() const { return last_kept_; }

  /// The reservoir capacity k.
  size_t capacity() const { return k_; }

 private:
  void ScheduleNextAcceptance() {
    // Algorithm L: maintain w = max over the reservoir of u_i^{1/k}; the
    // number of skipped elements until the next acceptance is
    // floor(log(u) / log(1 - w)).
    w_ *= std::exp(std::log(rng_.NextDouble()) / static_cast<double>(k_));
    const double u = rng_.NextDouble();
    const double skip = std::floor(std::log(u) / std::log1p(-w_));
    // Guard against numerical blowup near w_ -> 0 (astronomically long skip).
    const double capped =
        std::min(skip, 9.0e18);  // ~2^63, unreachable in practice
    next_accept_ = stream_size_ + 1 + static_cast<uint64_t>(capped);
  }

  size_t k_;
  Rng rng_;
  std::vector<T> sample_;
  size_t stream_size_ = 0;
  uint64_t next_accept_ = 0;
  double w_ = 1.0;
  bool last_kept_ = false;
};

}  // namespace robust_sampling

#endif  // ROBUST_SAMPLING_CORE_RESERVOIR_SAMPLER_H_
