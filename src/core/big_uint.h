#ifndef ROBUST_SAMPLING_CORE_BIG_UINT_H_
#define ROBUST_SAMPLING_CORE_BIG_UINT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace robust_sampling {

/// Minimal arbitrary-precision unsigned integer.
///
/// Theorem 1.3 places the attack over a universe U = [N] whose size must be
/// (nearly) exponential in the stream length — ln N = Theta((ln n)^2) for
/// the Fig. 3 strategy to sustain n rounds, far beyond uint64 (and beyond
/// exact double representation). BigUint supplies exactly the arithmetic the
/// attack and its analysis need: comparison, add/sub, multiplication and
/// division by 64-bit words, bit length, and approximate logarithm.
///
/// Representation: little-endian 64-bit limbs, normalized (no high zero
/// limbs; the value zero has no limbs). Copyable, movable, totally ordered.
class BigUint {
 public:
  /// Zero.
  BigUint() = default;

  /// From a 64-bit value.
  explicit BigUint(uint64_t value);

  /// 2^bits.
  static BigUint Pow2(uint32_t bits);

  /// floor(e^x) for x >= 0, accurate to within a few units in the last
  /// ~50 bits (sufficient for constructing universes with a prescribed
  /// ln N). Requires x < 3e6 (about a million limbs).
  static BigUint ApproxExp(double x);

  bool IsZero() const { return limbs_.empty(); }

  /// Number of significant bits (0 for zero).
  uint32_t BitLength() const;

  /// Natural log; requires non-zero. Accurate to double precision.
  double Log() const;

  /// Lossy conversion (may overflow to +inf for huge values).
  double ToDouble() const;

  /// Lowercase hex, no leading zeros ("0" for zero).
  std::string ToHexString() const;

  // Arithmetic. Subtraction requires *this >= other (checked).
  BigUint Add(const BigUint& other) const;
  BigUint Sub(const BigUint& other) const;
  BigUint MulU64(uint64_t factor) const;
  /// Floor division; requires divisor != 0.
  BigUint DivU64(uint64_t divisor) const;
  /// Remainder of division by a 64-bit divisor; requires divisor != 0.
  uint64_t ModU64(uint64_t divisor) const;
  BigUint ShiftLeft(uint32_t bits) const;
  BigUint ShiftRight(uint32_t bits) const;

  friend bool operator==(const BigUint& a, const BigUint& b) {
    return a.limbs_ == b.limbs_;
  }
  friend bool operator!=(const BigUint& a, const BigUint& b) {
    return !(a == b);
  }
  friend bool operator<(const BigUint& a, const BigUint& b);
  friend bool operator<=(const BigUint& a, const BigUint& b) {
    return !(b < a);
  }
  friend bool operator>(const BigUint& a, const BigUint& b) { return b < a; }
  friend bool operator>=(const BigUint& a, const BigUint& b) {
    return !(a < b);
  }

  friend BigUint operator+(const BigUint& a, const BigUint& b) {
    return a.Add(b);
  }
  friend BigUint operator-(const BigUint& a, const BigUint& b) {
    return a.Sub(b);
  }

 private:
  void Normalize();

  std::vector<uint64_t> limbs_;  // little-endian
};

}  // namespace robust_sampling

#endif  // ROBUST_SAMPLING_CORE_BIG_UINT_H_
