#ifndef ROBUST_SAMPLING_CORE_SAMPLER_H_
#define ROBUST_SAMPLING_CORE_SAMPLER_H_

#include <concepts>
#include <cstddef>
#include <span>

namespace robust_sampling {

/// The streaming-sampler concept shared by every sampler in this library and
/// required by the adversarial game engine (`RunAdaptiveGame`,
/// `RunContinuousAdaptiveGame`).
///
/// In the paper's model (Section 2) the sampler's state sigma_i after round i
/// *is* the current sample, and the adversary observes it in full before
/// choosing the next element. Samplers therefore expose:
///
///  * `Insert(x)`        — process stream element x_i (sigma_{i-1} -> sigma_i);
///  * `sample()`         — the current sampled subsequence S_i (the full
///                         adversary-visible state), as anything viewable as
///                         a span over stable storage: concrete samplers
///                         return their sample vector by reference,
///                         type-erased handles (AnySampler) return the
///                         SketchSampleView span directly;
///  * `stream_size()`    — i, the number of elements processed so far;
///  * `last_kept()`      — whether the most recently inserted element was
///                         added to the sample (observable by the adversary
///                         since it sees sigma_i; exposed directly as a
///                         convenience for attack implementations).
///
/// The span must remain valid until the sampler's next mutating call — the
/// game runners hold it across adversary turns without copying.
template <typename S, typename T>
concept StreamSampler = requires(S s, const S cs, const T& x) {
  { s.Insert(x) };
  { cs.sample() } -> std::convertible_to<std::span<const T>>;
  { cs.stream_size() } -> std::convertible_to<size_t>;
  { cs.last_kept() } -> std::convertible_to<bool>;
};

}  // namespace robust_sampling

#endif  // ROBUST_SAMPLING_CORE_SAMPLER_H_
