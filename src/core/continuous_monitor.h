#ifndef ROBUST_SAMPLING_CORE_CONTINUOUS_MONITOR_H_
#define ROBUST_SAMPLING_CORE_CONTINUOUS_MONITOR_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "core/check.h"
#include "core/checkpoints.h"

namespace robust_sampling {

/// Online continuous-robustness certification (the operational form of
/// Theorem 1.4): wraps a stream + sample pair and, at the geometric
/// checkpoints of the Thm 1.4 proof, evaluates the discrepancy of the
/// current sample against the current stream prefix. If every checkpoint
/// passes at eps/2, Claims 6.1–6.3 guarantee every *round* is within eps
/// (for reservoir samples whose per-gap churn is bounded), at a total
/// certification cost of O(eps^{-1} ln n) discrepancy evaluations instead
/// of n.
///
/// The monitor owns a copy of the stream (needed to evaluate prefix
/// discrepancies); it is an observability tool, not a hot-path component.
template <typename T>
class ContinuousMonitor {
 public:
  using DiscrepancyEvaluator =
      std::function<double(const std::vector<T>&, const std::vector<T>&)>;

  /// `eps` is the *round-level* target; checkpoints are held to eps/2 on
  /// the (1 + eps/4)-geometric schedule starting at `first_checkpoint`
  /// (use the reservoir capacity k). `horizon` is the maximum stream
  /// length to pre-plan checkpoints for.
  ContinuousMonitor(double eps, size_t first_checkpoint, size_t horizon,
                    DiscrepancyEvaluator evaluator)
      : eps_(eps),
        schedule_(MakeSchedule(eps, first_checkpoint, horizon)),
        evaluator_(std::move(evaluator)) {}

  /// Records round i's element and, if i is a checkpoint, evaluates the
  /// sample. Returns true if this round was a checkpoint.
  bool Observe(const T& element, const std::vector<T>& current_sample) {
    stream_.push_back(element);
    const size_t i = stream_.size();
    if (next_idx_ >= schedule_.points().size() ||
        schedule_.points()[next_idx_] != i) {
      return false;
    }
    ++next_idx_;
    ++checks_performed_;
    const double d = evaluator_(stream_, current_sample);
    if (d > max_checkpoint_discrepancy_) {
      max_checkpoint_discrepancy_ = d;
      worst_round_ = i;
    }
    if (d > eps_ / 2.0 && first_violation_round_ == 0) {
      first_violation_round_ = i;
    }
    return true;
  }

  /// Whether every checkpoint so far passed at eps/2 — the Thm 1.4
  /// certificate that every round is within eps.
  bool certified() const { return first_violation_round_ == 0; }

  /// Largest checkpoint discrepancy observed.
  double max_checkpoint_discrepancy() const {
    return max_checkpoint_discrepancy_;
  }

  /// Round of the largest checkpoint discrepancy (0 if none evaluated).
  size_t worst_round() const { return worst_round_; }

  /// First checkpoint round exceeding eps/2 (0 if none).
  size_t first_violation_round() const { return first_violation_round_; }

  /// Number of checkpoint evaluations performed so far.
  size_t checks_performed() const { return checks_performed_; }

  /// Total planned checkpoints up to the horizon.
  size_t planned_checks() const { return schedule_.size(); }

  /// Rounds observed so far.
  size_t rounds() const { return stream_.size(); }

 private:
  static CheckpointSchedule MakeSchedule(double eps, size_t first_checkpoint,
                                         size_t horizon) {
    RS_CHECK_MSG(eps > 0.0 && eps < 1.0, "eps must lie in (0, 1)");
    return CheckpointSchedule::Geometric(first_checkpoint, horizon,
                                         eps / 4.0);
  }

  double eps_;
  CheckpointSchedule schedule_;
  DiscrepancyEvaluator evaluator_;
  std::vector<T> stream_;
  size_t next_idx_ = 0;
  size_t checks_performed_ = 0;
  double max_checkpoint_discrepancy_ = 0.0;
  size_t worst_round_ = 0;
  size_t first_violation_round_ = 0;
};

}  // namespace robust_sampling

#endif  // ROBUST_SAMPLING_CORE_CONTINUOUS_MONITOR_H_
