#ifndef ROBUST_SAMPLING_CORE_SAMPLE_BOUNDS_H_
#define ROBUST_SAMPLING_CORE_SAMPLE_BOUNDS_H_

#include <cstddef>
#include <cstdint>

namespace robust_sampling {

// Closed-form sample-size bounds from the paper. All `eps`/`delta`
// parameters must lie in (0, 1); `log_cardinality` is ln|R| (natural log of
// the number of ranges in the set system) and must be >= 0.
//
//   Theorem 1.2  adversarial robustness of Bernoulli / reservoir sampling
//   Theorem 1.3  thresholds below which the Fig. 3 attack defeats them
//   Theorem 1.4  continuous robustness of reservoir sampling
//   Static (VC)  the classical non-adaptive bounds [VC71, Tal94, LLS01]
//   Cor. 1.5/1.6 quantile sketch / heavy hitter instantiations

/// Theorem 1.2, Bernoulli case: the smallest p such that BernoulliSample(p)
/// is (eps, delta)-robust for a length-n stream w.r.t. a set system with
/// ln|R| = log_cardinality:
///   p = 10 * (log_cardinality + ln(4/delta)) / (eps^2 * n), capped at 1.
double BernoulliRobustP(double eps, double delta, double log_cardinality,
                        uint64_t n);

/// Theorem 1.2, reservoir case: the smallest integer k such that
/// ReservoirSample(k) is (eps, delta)-robust:
///   k = ceil(2 * (log_cardinality + ln(2/delta)) / eps^2).
size_t ReservoirRobustK(double eps, double delta, double log_cardinality);

/// Lemma 4.1, Bernoulli case (single fixed range R, no union bound):
///   p = 10 * ln(4/delta) / (eps^2 * n), capped at 1.
double BernoulliSingleRangeP(double eps, double delta, uint64_t n);

/// Lemma 4.1, reservoir case (single fixed range R):
///   k = ceil(2 * ln(2/delta) / eps^2).
size_t ReservoirSingleRangeK(double eps, double delta);

/// Classical static (non-adaptive) bound: p = c*(d + ln(1/delta))/(eps^2*n)
/// with d the VC-dimension. The absolute constant is not pinned down by
/// [VC71, Tal94, LLS01]; `c` defaults to 10 to parallel Theorem 1.2.
double BernoulliStaticP(double eps, double delta, double vc_dimension,
                        uint64_t n, double c = 10.0);

/// Classical static reservoir bound: k = ceil(c*(d + ln(1/delta))/eps^2),
/// with c defaulting to 2 to parallel Theorem 1.2.
size_t ReservoirStaticK(double eps, double delta, double vc_dimension,
                        double c = 2.0);

/// Theorem 1.4: reservoir size for (eps, delta)-continuous robustness:
///   k = ceil(c * (log_cardinality + ln(1/delta) + ln(1/eps) + ln ln n)
///            / eps^2).
/// The paper leaves the constant unspecified; our implementation of the
/// checkpoint argument (core/checkpoints.h) is valid with c = 32 (default).
size_t ReservoirContinuousK(double eps, double delta, double log_cardinality,
                            uint64_t n, double c = 32.0);

/// Theorem 1.3, Bernoulli case: any p *below* this threshold,
///   c * log_cardinality / (n * ln n),
/// is defeated by the Fig. 3 bisection attack (for the prefix system over a
/// universe of size N, log_cardinality = ln N, n^6 ln n <= N <= 2^(n/2)).
double AttackThresholdBernoulliP(double log_cardinality, uint64_t n,
                                 double c = 1.0 / 6.0);

/// Theorem 1.3, reservoir case: any k below
///   c * log_cardinality / ln n
/// is defeated by the attack.
size_t AttackThresholdReservoirK(double log_cardinality, uint64_t n,
                                 double c = 1.0 / 6.0);

/// Corollary 1.5: reservoir size for an (eps, delta)-robust quantile sketch
/// over a well-ordered universe of size universe_size (set system = prefixes,
/// |R| = |U|): k = ceil(2 * (ln(universe_size) + ln(2/delta)) / eps^2).
size_t QuantileSketchK(double eps, double delta, uint64_t universe_size);

/// Corollary 1.5, Bernoulli form: p = 10*(ln|U| + ln(4/delta))/(eps^2 n).
double QuantileSketchP(double eps, double delta, uint64_t universe_size,
                       uint64_t n);

/// Corollary 1.6: reservoir size for robust (alpha, eps) heavy hitters over
/// a universe of size universe_size. Internally uses the eps' = eps/3 trick
/// with the singleton system (ln|R| = ln|U|):
///   k = ceil(2 * (ln(universe_size) + ln(2/delta)) / (eps/3)^2).
size_t HeavyHitterK(double eps, double delta, uint64_t universe_size);

/// Corollary 1.6, Bernoulli form.
double HeavyHitterP(double eps, double delta, uint64_t universe_size,
                    uint64_t n);

/// Theorem 1.3 constraint on the universe size for the attack's set system:
/// returns the smallest admissible N (= ceil(n^6 ln n)) for stream length n.
/// The upper constraint N <= 2^(n/2) is the caller's to respect.
double AttackMinUniverseSize(uint64_t n);

}  // namespace robust_sampling

#endif  // ROBUST_SAMPLING_CORE_SAMPLE_BOUNDS_H_
