#ifndef ROBUST_SAMPLING_CORE_ROBUST_SAMPLE_H_
#define ROBUST_SAMPLING_CORE_ROBUST_SAMPLE_H_

#include <cmath>
#include <concepts>
#include <cstdint>
#include <span>
#include <vector>

#include "core/check.h"
#include "core/reservoir_sampler.h"
#include "core/sample_bounds.h"
#include "wire/codec.h"

namespace robust_sampling {

/// A callable usable as a range-membership test over elements of type T.
/// Constraining the query path on this concept (instead of taking a
/// `std::function`) lets the predicate inline into the scan over the
/// sample — no per-element indirect call.
template <typename P, typename T>
concept RangePredicate = std::predicate<P&, const T&>;

/// High-level facade over the paper's main result: a reservoir sampler
/// automatically sized by Theorem 1.2 so that, with probability >= 1-delta,
/// the maintained sample is an eps-approximation of the stream w.r.t. the
/// chosen set system — **even when the stream is chosen by an adaptive
/// adversary that observes the full sample after every insertion**.
///
/// Typical use:
///
///     auto s = RobustSample<int64_t>::ForQuantiles(0.05, 0.01,
///                                                  /*universe=*/1 << 20,
///                                                  /*seed=*/1);
///     for (int64_t x : stream) s.Insert(x);
///     double below = s.EstimateDensity([](int64_t v) { return v <= 100; });
///
/// Every density/count read off the sample is then eps-accurate for every
/// range of the configured family simultaneously.
template <typename T>
class RobustSample {
 public:
  /// Tuning knobs; see the factory functions for common instantiations.
  struct Options {
    double eps = 0.1;     ///< density error bound, in (0, 1).
    double delta = 0.05;  ///< failure probability, in (0, 1).
    /// ln|R| of the set system whose ranges must be preserved.
    double log_cardinality = 0.0;
    uint64_t seed = Rng::kDefaultSeed;
  };

  /// Sample sized for an arbitrary set system with the given ln|R|.
  static RobustSample ForSetSystem(const Options& options) {
    return RobustSample(options);
  }

  /// Sample sized for all quantiles over a well-ordered universe of
  /// `universe_size` values (Corollary 1.5: prefix family, ln|R| = ln|U|).
  static RobustSample ForQuantiles(double eps, double delta,
                                   uint64_t universe_size, uint64_t seed) {
    Options options;
    options.eps = eps;
    options.delta = delta;
    options.log_cardinality =
        std::log(static_cast<double>(universe_size));
    options.seed = seed;
    return RobustSample(options);
  }

  /// Sample sized for all element frequencies over a universe of
  /// `universe_size` values (Corollary 1.6: singleton family with the
  /// eps/3 slack baked in).
  static RobustSample ForFrequencies(double eps, double delta,
                                     uint64_t universe_size, uint64_t seed) {
    Options options;
    options.eps = eps / 3.0;
    options.delta = delta;
    options.log_cardinality =
        std::log(static_cast<double>(universe_size));
    options.seed = seed;
    return RobustSample(options);
  }

  /// Processes one stream element.
  void Insert(const T& x) { reservoir_.Insert(x); }

  /// Processes a batch of stream elements via the reservoir's skip-sampling
  /// hot path (see ReservoirSampler::InsertBatch for the adversarial-model
  /// discussion: batching only coarsens adaptivity, so Theorem 1.2 holds).
  void InsertBatch(std::span<const T> xs) { reservoir_.InsertBatch(xs); }

  /// Folds another RobustSample over a disjoint stream into this one. The
  /// merged reservoir is a uniform min(k, n1+n2)-subset of the union, so
  /// the Theorem 1.2 guarantee carries over to the merged sample at the
  /// same (eps, delta). Requires identical (eps, delta, log_cardinality).
  void Merge(const RobustSample& other) {
    RS_CHECK_MSG(options_.eps == other.options_.eps &&
                     options_.delta == other.options_.delta &&
                     options_.log_cardinality ==
                         other.options_.log_cardinality,
                 "cannot merge RobustSamples with different guarantees");
    reservoir_.Merge(other.reservoir_);
  }

  /// The current sample (also what an adversary would see).
  const std::vector<T>& sample() const { return reservoir_.sample(); }

  /// Stream length so far.
  size_t stream_size() const { return reservoir_.stream_size(); }

  /// Whether the most recently inserted element entered the sample —
  /// together with sample()/stream_size() this makes RobustSample satisfy
  /// the StreamSampler concept, so it can face adversaries in the game
  /// runners (core/adversarial_game.h) directly.
  bool last_kept() const { return reservoir_.last_kept(); }

  /// The Theorem 1.2 reservoir capacity this instance was sized to.
  size_t capacity() const { return reservoir_.capacity(); }

  double eps() const { return options_.eps; }
  double delta() const { return options_.delta; }

  /// Estimated density of {x : predicate(x)} in the stream. If the
  /// predicate describes a range of the configured family, the estimate is
  /// within eps of the truth with probability 1 - delta (adversarially).
  template <RangePredicate<T> P>
  double EstimateDensity(P&& predicate) const {
    const auto& s = reservoir_.sample();
    if (s.empty()) return 0.0;
    size_t hits = 0;
    for (const T& x : s) hits += static_cast<bool>(predicate(x));
    return static_cast<double>(hits) / static_cast<double>(s.size());
  }

  /// Estimated number of stream elements in the range (density * n).
  template <RangePredicate<T> P>
  double EstimateCount(P&& predicate) const {
    return EstimateDensity(predicate) *
           static_cast<double>(reservoir_.stream_size());
  }

  /// Read access to the underlying reservoir.
  const ReservoirSampler<T>& reservoir() const { return reservoir_; }

  /// Wire format (docs/wire.md): the (eps, delta, ln|R|) contract this
  /// sample was sized to, followed by the full reservoir state (RNG words
  /// included) — reviving reproduces both the guarantee and the exact
  /// sampling trajectory.
  void SerializeTo(wire::ByteSink& sink) const
    requires wire::WireValue<T>
  {
    wire::PutDouble(sink, options_.eps);
    wire::PutDouble(sink, options_.delta);
    wire::PutDouble(sink, options_.log_cardinality);
    wire::PutFixed64(sink, options_.seed);
    reservoir_.SerializeTo(sink);
  }

  /// Replaces this sample's state from the wire; false on malformed
  /// input, never aborts.
  bool DeserializeFrom(wire::ByteSource& source)
    requires wire::WireValue<T>
  {
    Options options;
    if (!wire::GetDouble(source, &options.eps) ||
        !wire::GetDouble(source, &options.delta) ||
        !wire::GetDouble(source, &options.log_cardinality) ||
        !wire::GetFixed64(source, &options.seed)) {
      return false;
    }
    if (!(options.eps > 0.0 && options.eps < 1.0) ||
        !(options.delta > 0.0 && options.delta < 1.0) ||
        !(options.log_cardinality >= 0.0)) {
      return source.Fail();
    }
    if (!reservoir_.DeserializeFrom(source)) return false;
    options_ = options;
    return true;
  }

 private:
  explicit RobustSample(const Options& options)
      : options_(options),
        reservoir_(
            ReservoirRobustK(options.eps, options.delta,
                             options.log_cardinality),
            options.seed) {
    RS_CHECK_MSG(options.log_cardinality >= 0.0,
                 "log_cardinality must be non-negative");
  }

  Options options_;
  ReservoirSampler<T> reservoir_;
};

}  // namespace robust_sampling

#endif  // ROBUST_SAMPLING_CORE_ROBUST_SAMPLE_H_
