#ifndef ROBUST_SAMPLING_CORE_CHECKPOINTS_H_
#define ROBUST_SAMPLING_CORE_CHECKPOINTS_H_

#include <cstddef>
#include <vector>

namespace robust_sampling {

/// The geometric checkpoint schedule from the proof of Theorem 1.4.
///
/// Naming note: despite the name, this module has nothing to do with
/// durability. A `CheckpointSchedule` is the sparse set of *analysis
/// rounds* at which the continuous-robustness proof inspects the sample;
/// persisting pipeline state to disk is `ShardedPipeline::Checkpoint()` /
/// `Restore()` built on the wire subsystem (src/wire/, docs/wire.md).
///
/// Continuous robustness is certified by checking the sample at a sparse set
/// of rounds k = i_1 < i_2 < ... < i_t = n with i_{j+1} <= (1 + beta) i_j
/// (beta = eps/4 in the paper): if S_{i_j} is an (eps/4)-approximation at
/// every checkpoint and at most eps*k/2 insertions happen inside each gap,
/// then S_i is an eps-approximation at *every* i (Claims 6.1–6.3). The
/// schedule has t = O(beta^{-1} ln(n/k)) points — exponentially fewer than
/// the naive union bound over all n rounds.
class CheckpointSchedule {
 public:
  /// Geometric schedule: i_1 = first, then the largest integer not exceeding
  /// (1 + beta) * i_j (always advancing by at least 1), ending at n.
  /// Requires 1 <= first <= n and beta > 0.
  static CheckpointSchedule Geometric(size_t first, size_t n, double beta);

  /// Dense schedule: every `stride`-th round plus round n (the naive
  /// union-bound alternative; used as the ablation baseline in E5).
  static CheckpointSchedule Every(size_t stride, size_t n);

  /// All rounds 1..n (exhaustive continuous checking, for tests).
  static CheckpointSchedule All(size_t n);

  /// The checkpoint rounds, strictly increasing, last element = n.
  const std::vector<size_t>& points() const { return points_; }

  /// Number of checkpoints t.
  size_t size() const { return points_.size(); }

  /// Whether round i is a checkpoint (O(log t) binary search).
  bool Contains(size_t i) const;

 private:
  explicit CheckpointSchedule(std::vector<size_t> points)
      : points_(std::move(points)) {}

  std::vector<size_t> points_;
};

}  // namespace robust_sampling

#endif  // ROBUST_SAMPLING_CORE_CHECKPOINTS_H_
