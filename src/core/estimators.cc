#include "core/estimators.h"

#include <cmath>

namespace robust_sampling {

double HoeffdingHalfWidth(size_t sample_size, double delta) {
  RS_CHECK_MSG(sample_size >= 1, "sample must be non-empty");
  RS_CHECK_MSG(delta > 0.0 && delta < 1.0, "delta must lie in (0, 1)");
  return std::sqrt(std::log(2.0 / delta) /
                   (2.0 * static_cast<double>(sample_size)));
}

}  // namespace robust_sampling
