#ifndef ROBUST_SAMPLING_WIRE_CODEC_H_
#define ROBUST_SAMPLING_WIRE_CODEC_H_

#include <algorithm>
#include <array>
#include <bit>
#include <concepts>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <optional>
#include <span>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <vector>

namespace robust_sampling {
namespace wire {

// ---------------------------------------------------------------------------
// Versioned, length-prefixed binary codec — the bottom layer of the wire
// subsystem (see docs/wire.md for the format rules and layering).
//
// Design constraints, in order:
//  * A corrupted or truncated blob must fail *cleanly*: every Get* returns
//    false and poisons the source, no RS_CHECK aborts, no unbounded
//    allocations driven by attacker-controlled length prefixes, no UB.
//  * No exceptions (library style) and no dependencies above core/, so the
//    sketch headers in core/, quantiles/ and heavy/ can implement their
//    SerializeTo/DeserializeFrom hooks against this header alone.
//  * Byte order is fixed little-endian regardless of host.
// ---------------------------------------------------------------------------

/// Abstract byte output. Append never aborts; media errors (disk full,
/// closed pipe) latch `ok() == false` and later Appends become no-ops, so
/// callers may write a whole message and check once at the end.
class ByteSink {
 public:
  virtual ~ByteSink() = default;
  virtual void Append(const void* data, size_t n) = 0;
  virtual bool ok() const = 0;
};

/// Grows an in-memory byte buffer (snapshot staging, tests).
class BufferSink final : public ByteSink {
 public:
  void Append(const void* data, size_t n) override;
  bool ok() const override { return true; }

  const std::vector<uint8_t>& bytes() const { return bytes_; }
  std::vector<uint8_t> TakeBytes() { return std::move(bytes_); }

 private:
  std::vector<uint8_t> bytes_;
};

/// Buffered writes to a file opened at construction ("wb"). `ok()` is false
/// if the open or any write failed. SyncAndClose() flushes user and kernel
/// buffers (fflush + fsync) before closing — the durability half of the
/// checkpoint write-then-rename protocol.
class FileSink final : public ByteSink {
 public:
  explicit FileSink(const std::string& path);
  ~FileSink() override;
  FileSink(const FileSink&) = delete;
  FileSink& operator=(const FileSink&) = delete;

  void Append(const void* data, size_t n) override;
  bool ok() const override { return ok_; }

  /// fflush + fsync + fclose; returns the final ok(). Idempotent.
  bool SyncAndClose();

 private:
  std::FILE* file_ = nullptr;
  bool ok_ = true;
};

/// Unbuffered writes to a caller-owned file descriptor (pipe shipping in
/// the cross-process aggregator). Retries short writes and EINTR; does not
/// close the fd. SIGPIPE-safe: the signal is blocked around each write,
/// so a hung-up reader latches ok() == false (EPIPE) instead of killing
/// the process.
class FdSink final : public ByteSink {
 public:
  explicit FdSink(int fd) : fd_(fd) {}

  void Append(const void* data, size_t n) override;
  bool ok() const override { return ok_; }

 private:
  int fd_;
  bool ok_ = true;
};

/// Abstract byte input. `Read` pulls exactly n bytes or returns false and
/// poisons the source; once failed, every subsequent Read fails. Decoders
/// may also call `Fail()` when bytes arrive but do not parse (bad varint,
/// out-of-range value), so `failed()` reports any malformation.
class ByteSource {
 public:
  virtual ~ByteSource() = default;

  bool Read(void* out, size_t n) {
    if (failed_) return false;
    if (!ReadImpl(out, n)) failed_ = true;
    return !failed_;
  }

  /// Marks the source malformed; returns false for `return src.Fail();`.
  bool Fail() {
    failed_ = true;
    return false;
  }

  bool failed() const { return failed_; }

  /// Bytes left before EOF when the medium knows (buffers, regular files);
  /// nullopt on pipes/sockets. Used to reject length prefixes that exceed
  /// the data that could possibly back them.
  virtual std::optional<uint64_t> remaining() const = 0;

 protected:
  virtual bool ReadImpl(void* out, size_t n) = 0;

 private:
  bool failed_ = false;
};

/// Reads from a caller-owned span of bytes.
class BufferSource final : public ByteSource {
 public:
  explicit BufferSource(std::span<const uint8_t> bytes) : bytes_(bytes) {}

  std::optional<uint64_t> remaining() const override {
    return bytes_.size() - pos_;
  }

 protected:
  bool ReadImpl(void* out, size_t n) override;

 private:
  std::span<const uint8_t> bytes_;
  size_t pos_ = 0;
};

/// Buffered reads from a file opened at construction ("rb").
class FileSource final : public ByteSource {
 public:
  explicit FileSource(const std::string& path);
  ~FileSource() override;
  FileSource(const FileSource&) = delete;
  FileSource& operator=(const FileSource&) = delete;

  /// False if the file could not be opened (every Read will fail).
  bool open() const { return file_ != nullptr; }

  std::optional<uint64_t> remaining() const override;

 protected:
  bool ReadImpl(void* out, size_t n) override;

 private:
  std::FILE* file_ = nullptr;
  uint64_t size_ = 0;
  uint64_t pos_ = 0;
};

/// Reads from a caller-owned file descriptor (pipe). Length is unknowable,
/// so `remaining()` is nullopt and decoders fall back to hard caps.
class FdSource final : public ByteSource {
 public:
  explicit FdSource(int fd) : fd_(fd) {}

  std::optional<uint64_t> remaining() const override { return std::nullopt; }

  /// Total bytes successfully consumed (transfer accounting — e.g. the
  /// aggregator bench's snapshot-bytes metric).
  uint64_t bytes_read() const { return bytes_read_; }

 protected:
  bool ReadImpl(void* out, size_t n) override;

 private:
  int fd_;
  uint64_t bytes_read_ = 0;
};

// --------------------------------------------------------- primitives ---

/// Hard caps applied when a length prefix cannot be validated against
/// `remaining()` (pipe sources). Generous for every in-tree sketch state,
/// tight enough that a corrupt prefix cannot drive an OOM.
inline constexpr uint64_t kMaxStringBytes = uint64_t{1} << 16;
inline constexpr uint64_t kMaxVectorElements = uint64_t{1} << 26;

/// LEB128 unsigned varint, at most 10 bytes for 64 bits.
void PutVarint(ByteSink& sink, uint64_t v);
bool GetVarint(ByteSource& source, uint64_t* out);

/// Little-endian fixed-width integers.
void PutFixed32(ByteSink& sink, uint32_t v);
void PutFixed64(ByteSink& sink, uint64_t v);
bool GetFixed32(ByteSource& source, uint32_t* out);
bool GetFixed64(ByteSource& source, uint64_t* out);

/// IEEE doubles/floats as little-endian bit patterns (exact round trip,
/// NaN payloads included).
void PutDouble(ByteSink& sink, double v);
bool GetDouble(ByteSource& source, double* out);

/// Length-prefixed byte strings. Get rejects lengths above
/// min(max_bytes, remaining()).
void PutString(ByteSink& sink, const std::string& s);
bool GetString(ByteSource& source, std::string* out,
               uint64_t max_bytes = kMaxStringBytes);

/// Length-prefixed raw byte blocks (nested payloads inside a framed body).
void PutBytes(ByteSink& sink, std::span<const uint8_t> bytes);
bool GetBytes(ByteSource& source, std::vector<uint8_t>* out,
              uint64_t max_bytes);

/// Xoshiro256pp state words, encoded as four fixed64 values — one helper
/// so every sketch puts RNG state on the wire identically.
void PutStateWords(ByteSink& sink, const std::array<uint64_t, 4>& words);
bool GetStateWords(ByteSource& source, std::array<uint64_t, 4>* words);

/// FNV-1a 64-bit — the integrity checksum appended to every framed body.
class Fnv1a64 {
 public:
  void Update(const void* data, size_t n);
  uint64_t digest() const { return state_; }

 private:
  uint64_t state_ = 0xcbf29ce484222325ULL;
};

/// Checksum of a whole buffer in one call.
uint64_t Checksum(std::span<const uint8_t> bytes);

// -------------------------------------------------------- value codec ---

/// Element types the generic samplers can put on the wire. Signed integers
/// use zigzag varints, unsigned use plain varints, floating point uses
/// fixed-width bit patterns. Types outside this concept simply leave the
/// serialize hooks undiscovered (the capability bit stays off).
template <typename T>
concept WireValue = (std::integral<T> || std::floating_point<T>) &&
                    !std::is_same_v<T, bool>;

inline uint64_t ZigzagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^
         static_cast<uint64_t>(v >> 63);
}

inline int64_t ZigzagDecode(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

template <WireValue T>
void PutValue(ByteSink& sink, const T& v) {
  if constexpr (std::floating_point<T>) {
    PutDouble(sink, static_cast<double>(v));
  } else if constexpr (std::is_signed_v<T>) {
    PutVarint(sink, ZigzagEncode(static_cast<int64_t>(v)));
  } else {
    PutVarint(sink, static_cast<uint64_t>(v));
  }
}

template <WireValue T>
bool GetValue(ByteSource& source, T* out) {
  if constexpr (std::floating_point<T>) {
    double d = 0.0;
    if (!GetDouble(source, &d)) return false;
    *out = static_cast<T>(d);
    return true;
  } else if constexpr (std::is_signed_v<T>) {
    uint64_t raw = 0;
    if (!GetVarint(source, &raw)) return false;
    const int64_t v = ZigzagDecode(raw);
    if (v < static_cast<int64_t>(std::numeric_limits<T>::min()) ||
        v > static_cast<int64_t>(std::numeric_limits<T>::max())) {
      return source.Fail();
    }
    *out = static_cast<T>(v);
    return true;
  } else {
    uint64_t v = 0;
    if (!GetVarint(source, &v)) return false;
    if (v > static_cast<uint64_t>(std::numeric_limits<T>::max())) {
      return source.Fail();
    }
    *out = static_cast<T>(v);
    return true;
  }
}

/// Count-prefixed element vectors. The count is validated against
/// `remaining()` when known (every element costs >= 1 byte) and against
/// `max_elements` always, so a corrupt prefix fails before allocating.
template <WireValue T>
void PutValueVector(ByteSink& sink, std::span<const T> values) {
  PutVarint(sink, values.size());
  for (const T& v : values) PutValue(sink, v);
}

template <WireValue T>
bool GetValueVector(ByteSource& source, std::vector<T>* out,
                    uint64_t max_elements = kMaxVectorElements) {
  uint64_t count = 0;
  if (!GetVarint(source, &count)) return false;
  if (count > max_elements) return source.Fail();
  if (const auto rem = source.remaining(); rem && count > *rem) {
    return source.Fail();
  }
  out->clear();
  // Bounded up-front reserve: on a size-blind source (pipe) the count is
  // only cap-checked, so trust it incrementally instead of allocating
  // count elements before the first byte arrives (growth stays amortized).
  out->reserve(static_cast<size_t>(std::min<uint64_t>(count, 4096)));
  for (uint64_t i = 0; i < count; ++i) {
    T v{};
    if (!GetValue(source, &v)) return false;
    out->push_back(v);
  }
  return true;
}

/// element -> count maps, the common state shape of the frequency
/// summaries (CountMin candidates, Misra-Gries counters, SpaceSaving
/// counts). Entries go on the wire sorted by element so identical states
/// serialize to identical bytes regardless of hash-table history. Get
/// rejects duplicate elements and counts of zero (no real summary stores
/// either) on top of the usual length validation.
void PutCountMap(ByteSink& sink,
                 const std::unordered_map<int64_t, uint64_t>& map);
bool GetCountMap(ByteSource& source,
                 std::unordered_map<int64_t, uint64_t>* out,
                 uint64_t max_entries = kMaxVectorElements);

/// The full wire shape shared by the counter-based summaries
/// (Misra-Gries, SpaceSaving): `k | n | count map`. Get additionally
/// validates k's range, map size <= k, and sum(counts) <= n — both
/// summaries' stored totals never exceed the stream length (MG
/// undercounts; SpaceSaving adds exactly one per insert and merging only
/// discards entries) — with an overflow-safe running sum.
void PutCounterSummary(ByteSink& sink, uint64_t k, uint64_t n,
                       const std::unordered_map<int64_t, uint64_t>& map);
bool GetCounterSummary(ByteSource& source, uint64_t* k, uint64_t* n,
                       std::unordered_map<int64_t, uint64_t>* map);

// ------------------------------------------------------ body framing ---

/// Framed-body helpers shared by snapshots and checkpoints: a message is
/// `magic (4 bytes) | format version varint | body length varint | body |
/// FNV-1a64(body) fixed64`. Integrity first: the checksum is verified
/// before any body byte is interpreted, so random corruption anywhere in
/// the body is caught up front rather than deep inside a sketch decoder.
inline constexpr uint64_t kMaxBodyBytes = uint64_t{1} << 30;

/// Returns false — writing nothing — if `body` exceeds kMaxBodyBytes: a
/// frame the reader would reject must never be produced (a "successful"
/// but unrestorable checkpoint would be worse than a failed one).
bool WriteFramedBody(ByteSink& sink, const char magic[4],
                     uint64_t format_version,
                     std::span<const uint8_t> body);

/// Reads and verifies one framed message. On failure returns false and, if
/// `error` is non-null, stores a one-line reason. `expected_version` must
/// match exactly (the format versioning rule: readers reject unknown
/// versions rather than guess — see docs/wire.md).
bool ReadFramedBody(ByteSource& source, const char magic[4],
                    uint64_t expected_version, std::vector<uint8_t>* body,
                    std::string* error);

}  // namespace wire
}  // namespace robust_sampling

#endif  // ROBUST_SAMPLING_WIRE_CODEC_H_
