#ifndef ROBUST_SAMPLING_WIRE_CODEC_H_
#define ROBUST_SAMPLING_WIRE_CODEC_H_

#include <algorithm>
#include <array>
#include <bit>
#include <concepts>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <optional>
#include <span>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <vector>

namespace robust_sampling {
namespace wire {

// ---------------------------------------------------------------------------
// Versioned, length-prefixed binary codec — the bottom layer of the wire
// subsystem (see docs/wire.md for the format rules and layering).
//
// Design constraints, in order:
//  * A corrupted or truncated blob must fail *cleanly*: every Get* returns
//    false and poisons the source, no RS_CHECK aborts, no unbounded
//    allocations driven by attacker-controlled length prefixes, no UB.
//  * No exceptions (library style) and no dependencies above core/, so the
//    sketch headers in core/, quantiles/ and heavy/ can implement their
//    SerializeTo/DeserializeFrom hooks against this header alone.
//  * Byte order is fixed little-endian regardless of host.
//  * I/O cost is amortized: bulk array primitives emit whole rows per
//    Append, and the Buffered{Sink,Source} adapters turn fd traffic into
//    one syscall per ~64 KiB window instead of one per field.
// ---------------------------------------------------------------------------

// ----------------------------------------------------- format versions ---

/// Frame format versions. v1 framed `magic | version | body_len | body |
/// checksum` with per-element varint payload encodings. v2 adds a body
/// encoding byte (none/zstd) after the version and switches the bulk
/// payload shapes (value vectors, count maps, CountMin rows) to
/// fixed-width 8-byte elements. Writers always emit kWireFormatCurrent;
/// readers accept every version in [kWireFormatV1, kWireFormatCurrent]
/// via explicit version-upgrade paths (see docs/wire.md).
inline constexpr uint64_t kWireFormatV1 = 1;
inline constexpr uint64_t kWireFormatV2 = 2;
inline constexpr uint64_t kWireFormatCurrent = kWireFormatV2;

/// Body encoding carried in the v2 frame header. kZstd is written only
/// when compiled-in support exists *and* compression actually shrinks the
/// body; otherwise writers silently fall back to kNone, so producing a
/// compressed checkpoint can never fail on a zstd-less build.
enum class BodyEncoding : uint8_t { kNone = 0, kZstd = 1 };

/// True when zstd support was compiled in (CMake found the header and
/// library). When false, WriteFramedBody ignores a kZstd request and
/// ReadFramedBody cleanly rejects zstd-encoded frames.
bool ZstdSupported();

/// Window size of the buffered adapters and of the chunked bulk reads.
inline constexpr size_t kWireBufferBytes = size_t{64} * 1024;

// ----------------------------------------------------------------- sinks ---

/// Abstract byte output. Append never aborts; media errors (disk full,
/// closed pipe) latch `ok() == false` and later Appends become no-ops, so
/// callers may write a whole message and check once at the end.
class ByteSink {
 public:
  virtual ~ByteSink() = default;
  virtual void Append(const void* data, size_t n) = 0;
  virtual bool ok() const = 0;
};

/// Grows an in-memory byte buffer (snapshot staging, tests).
class BufferSink final : public ByteSink {
 public:
  void Append(const void* data, size_t n) override;
  bool ok() const override { return true; }

  const std::vector<uint8_t>& bytes() const { return bytes_; }
  std::vector<uint8_t> TakeBytes() { return std::move(bytes_); }

 private:
  std::vector<uint8_t> bytes_;
};

/// Buffered writes to a file opened at construction ("wb"). `ok()` is false
/// if the open or any write failed. SyncAndClose() flushes user and kernel
/// buffers (fflush + fsync) before closing — the durability half of the
/// checkpoint write-then-rename protocol.
class FileSink final : public ByteSink {
 public:
  explicit FileSink(const std::string& path);
  ~FileSink() override;
  FileSink(const FileSink&) = delete;
  FileSink& operator=(const FileSink&) = delete;

  void Append(const void* data, size_t n) override;
  bool ok() const override { return ok_; }

  /// fflush + fsync + fclose; returns the final ok(). Idempotent.
  bool SyncAndClose();

 private:
  std::FILE* file_ = nullptr;
  bool ok_ = true;
};

/// Writes all `n` bytes to `fd`, retrying short writes and EINTR; returns
/// false on any unrecoverable error (the caller latches its failure
/// state). Two SIGPIPE-safety modes: with `socket_nosignal` the bytes go
/// out via send(fd, ..., MSG_NOSIGNAL) — sockets only, no per-write
/// sigmask syscalls, the hot network path — otherwise write(2) runs with
/// SIGPIPE blocked around the loop (works on any fd, costs two sigmask
/// syscalls plus a possible sigtimedwait per call). Either way a hung-up
/// reader surfaces as EPIPE -> false instead of killing the process.
/// Successful chunks count toward rs_wire_bytes_out_total.
bool WriteAllFd(int fd, const void* data, size_t n,
                bool socket_nosignal = false);

/// Unbuffered writes to a caller-owned file descriptor (pipe shipping in
/// the cross-process aggregator). Retries short writes and EINTR; does not
/// close the fd. SIGPIPE-safe: the signal is blocked around each write
/// (WriteAllFd), so a hung-up reader latches ok() == false (EPIPE)
/// instead of killing the process. Each Append costs a write(2) plus two
/// sigmask syscalls — wrap in a BufferedSink so serializers pay that per
/// window, not per field.
class FdSink final : public ByteSink {
 public:
  explicit FdSink(int fd) : fd_(fd) {}

  void Append(const void* data, size_t n) override;
  bool ok() const override { return ok_; }

 private:
  int fd_;
  bool ok_ = true;
};

/// Batches small Appends into a 64 KiB window and forwards one Append per
/// full window to the wrapped sink, so a serializer emitting per-field
/// varints through FdSink costs one syscall round per buffer instead of
/// per field. Appends at least a window in size bypass the buffer after a
/// flush (no double copy). Flushes on destruction; callers that need the
/// bytes on the wire before continuing (pipe shipping) call Flush()
/// explicitly and then check ok().
class BufferedSink final : public ByteSink {
 public:
  explicit BufferedSink(ByteSink& base, size_t capacity = kWireBufferBytes);
  ~BufferedSink() override;
  BufferedSink(const BufferedSink&) = delete;
  BufferedSink& operator=(const BufferedSink&) = delete;

  void Append(const void* data, size_t n) override;
  bool ok() const override { return base_.ok(); }

  /// Forwards all buffered bytes to the wrapped sink in one Append.
  void Flush();

 private:
  ByteSink& base_;
  std::vector<uint8_t> buf_;
  size_t capacity_;
};

// --------------------------------------------------------------- sources ---

/// Abstract byte input. `Read` pulls exactly n bytes or returns false and
/// poisons the source; once failed, every subsequent Read fails. Decoders
/// may also call `Fail()` when bytes arrive but do not parse (bad varint,
/// out-of-range value), so `failed()` reports any malformation.
class ByteSource {
 public:
  virtual ~ByteSource() = default;

  bool Read(void* out, size_t n) {
    if (failed_) return false;
    if (!ReadImpl(out, n)) failed_ = true;
    return !failed_;
  }

  /// Reads up to n bytes, returning the count delivered (0 at EOF or on a
  /// failed source). Unlike Read, a short result is not an error and does
  /// not poison the source — BufferedSource uses it to fill its window
  /// with whatever the medium has ready (one read(2) on a pipe).
  size_t ReadSome(void* out, size_t n) {
    if (failed_ || n == 0) return 0;
    return ReadSomeImpl(out, n);
  }

  /// Marks the source malformed; returns false for `return src.Fail();`.
  bool Fail() {
    failed_ = true;
    return false;
  }

  bool failed() const { return failed_; }

  /// Frame format version governing how nested payloads decode (the
  /// vector/count-map element encodings changed in v2). ReadSnapshot and
  /// ShardedPipeline::Restore stamp the version parsed from the frame
  /// header onto the payload sources they hand to DeserializeFrom; a
  /// fresh source assumes the current version.
  uint64_t wire_version() const { return wire_version_; }
  void set_wire_version(uint64_t v) { wire_version_ = v; }

  /// Bytes left before EOF when the medium knows (buffers, regular files);
  /// nullopt on pipes/sockets. Used to reject length prefixes that exceed
  /// the data that could possibly back them.
  virtual std::optional<uint64_t> remaining() const = 0;

 protected:
  virtual bool ReadImpl(void* out, size_t n) = 0;

  /// Partial-read primitive backing ReadSome. The default delegates to
  /// ReadImpl (exact-or-fail); fd-backed sources override it with a single
  /// short-read syscall, in-memory sources with a clamp to what is left.
  virtual size_t ReadSomeImpl(void* out, size_t n) {
    return ReadImpl(out, n) ? n : 0;
  }

 private:
  bool failed_ = false;
  uint64_t wire_version_ = kWireFormatCurrent;
};

/// Reads from a caller-owned span of bytes.
class BufferSource final : public ByteSource {
 public:
  explicit BufferSource(std::span<const uint8_t> bytes) : bytes_(bytes) {}

  std::optional<uint64_t> remaining() const override {
    return bytes_.size() - pos_;
  }

 protected:
  bool ReadImpl(void* out, size_t n) override;
  size_t ReadSomeImpl(void* out, size_t n) override;

 private:
  std::span<const uint8_t> bytes_;
  size_t pos_ = 0;
};

/// Buffered reads from a file opened at construction ("rb").
class FileSource final : public ByteSource {
 public:
  explicit FileSource(const std::string& path);
  ~FileSource() override;
  FileSource(const FileSource&) = delete;
  FileSource& operator=(const FileSource&) = delete;

  /// False if the file could not be opened (every Read will fail).
  bool open() const { return file_ != nullptr; }

  std::optional<uint64_t> remaining() const override;

 protected:
  bool ReadImpl(void* out, size_t n) override;
  size_t ReadSomeImpl(void* out, size_t n) override;

 private:
  std::FILE* file_ = nullptr;
  uint64_t size_ = 0;
  uint64_t pos_ = 0;
};

/// Reads from a caller-owned file descriptor (pipe). Length is unknowable,
/// so `remaining()` is nullopt and decoders fall back to hard caps. Each
/// exact Read is a read(2) loop — a varint costs one syscall per byte, so
/// wrap in a BufferedSource for anything beyond a few bytes.
class FdSource final : public ByteSource {
 public:
  explicit FdSource(int fd) : fd_(fd) {}

  std::optional<uint64_t> remaining() const override { return std::nullopt; }

  /// Total bytes successfully consumed (transfer accounting — e.g. the
  /// aggregator bench's snapshot-bytes metric).
  uint64_t bytes_read() const { return bytes_read_; }

 protected:
  bool ReadImpl(void* out, size_t n) override;
  size_t ReadSomeImpl(void* out, size_t n) override;

 private:
  int fd_;
  uint64_t bytes_read_ = 0;
};

/// Buffered adapter over another source: refills a 64 KiB window with one
/// ReadSome per refill (one read(2) on fds) and serves decoder reads from
/// memory, turning the per-varint syscall pattern into bulk transfers.
/// Reads ahead of what the decoder consumes, so wrap exactly one logical
/// stream per BufferedSource; consecutive messages on the same stream must
/// share the adapter (the look-ahead bytes belong to the next message).
class BufferedSource final : public ByteSource {
 public:
  explicit BufferedSource(ByteSource& base,
                          size_t capacity = kWireBufferBytes);
  BufferedSource(const BufferedSource&) = delete;
  BufferedSource& operator=(const BufferedSource&) = delete;

  std::optional<uint64_t> remaining() const override;

 protected:
  bool ReadImpl(void* out, size_t n) override;
  size_t ReadSomeImpl(void* out, size_t n) override;

 private:
  size_t buffered() const { return fill_ - pos_; }

  ByteSource& base_;
  std::vector<uint8_t> buf_;
  size_t pos_ = 0;   // next unconsumed byte in buf_
  size_t fill_ = 0;  // valid bytes in buf_
};

// --------------------------------------------------------- primitives ---

/// Hard caps applied when a length prefix cannot be validated against
/// `remaining()` (pipe sources). Generous for every in-tree sketch state,
/// tight enough that a corrupt prefix cannot drive an OOM.
inline constexpr uint64_t kMaxStringBytes = uint64_t{1} << 16;
inline constexpr uint64_t kMaxVectorElements = uint64_t{1} << 26;

/// LEB128 unsigned varint, at most 10 bytes for 64 bits.
void PutVarint(ByteSink& sink, uint64_t v);
bool GetVarint(ByteSource& source, uint64_t* out);

/// Little-endian fixed-width integers.
void PutFixed32(ByteSink& sink, uint32_t v);
void PutFixed64(ByteSink& sink, uint64_t v);
bool GetFixed32(ByteSource& source, uint32_t* out);
bool GetFixed64(ByteSource& source, uint64_t* out);

/// Bulk little-endian fixed64 rows: on little-endian hosts the span is a
/// single Append / Read of the raw bytes; big-endian hosts pay a
/// per-element byte swap. GetFixed64Array trusts `count` — callers
/// validate it against remaining()/caps before allocating `out`.
void PutFixed64Array(ByteSink& sink, std::span<const uint64_t> values);
bool GetFixed64Array(ByteSource& source, uint64_t* out, size_t count);

/// IEEE doubles/floats as little-endian bit patterns (exact round trip,
/// NaN payloads included).
void PutDouble(ByteSink& sink, double v);
bool GetDouble(ByteSource& source, double* out);

/// Length-prefixed byte strings. Get rejects lengths above
/// min(max_bytes, remaining()).
void PutString(ByteSink& sink, const std::string& s);
bool GetString(ByteSource& source, std::string* out,
               uint64_t max_bytes = kMaxStringBytes);

/// Length-prefixed raw byte blocks (nested payloads inside a framed body).
void PutBytes(ByteSink& sink, std::span<const uint8_t> bytes);
bool GetBytes(ByteSource& source, std::vector<uint8_t>* out,
              uint64_t max_bytes);

/// Xoshiro256pp state words, encoded as four fixed64 values — one helper
/// so every sketch puts RNG state on the wire identically.
void PutStateWords(ByteSink& sink, const std::array<uint64_t, 4>& words);
bool GetStateWords(ByteSource& source, std::array<uint64_t, 4>* words);

/// FNV-1a 64-bit — the integrity checksum appended to every framed body.
class Fnv1a64 {
 public:
  void Update(const void* data, size_t n);
  uint64_t digest() const { return state_; }

 private:
  uint64_t state_ = 0xcbf29ce484222325ULL;
};

/// Checksum of a whole buffer in one call.
uint64_t Checksum(std::span<const uint8_t> bytes);

// -------------------------------------------------------- value codec ---

/// Element types the generic samplers can put on the wire. Types outside
/// this concept simply leave the serialize hooks undiscovered (the
/// capability bit stays off).
///
/// Two element encodings exist: single scalars (PutValue/GetValue) use
/// varints — zigzag for signed, plain for unsigned, fixed64 bit patterns
/// for floating point — in every format version; bulk shapes (vectors,
/// count maps) use the same varints in v1 but fixed 8-byte rows in v2
/// (integral as two's-complement little-endian, floating point as IEEE
/// double bits), which is what makes whole-row memcpy emission possible.
template <typename T>
concept WireValue = (std::integral<T> || std::floating_point<T>) &&
                    !std::is_same_v<T, bool>;

inline uint64_t ZigzagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^
         static_cast<uint64_t>(v >> 63);
}

inline int64_t ZigzagDecode(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

template <WireValue T>
void PutValue(ByteSink& sink, const T& v) {
  if constexpr (std::floating_point<T>) {
    PutDouble(sink, static_cast<double>(v));
  } else if constexpr (std::is_signed_v<T>) {
    PutVarint(sink, ZigzagEncode(static_cast<int64_t>(v)));
  } else {
    PutVarint(sink, static_cast<uint64_t>(v));
  }
}

template <WireValue T>
bool GetValue(ByteSource& source, T* out) {
  if constexpr (std::floating_point<T>) {
    double d = 0.0;
    if (!GetDouble(source, &d)) return false;
    *out = static_cast<T>(d);
    return true;
  } else if constexpr (std::is_signed_v<T>) {
    uint64_t raw = 0;
    if (!GetVarint(source, &raw)) return false;
    const int64_t v = ZigzagDecode(raw);
    if (v < static_cast<int64_t>(std::numeric_limits<T>::min()) ||
        v > static_cast<int64_t>(std::numeric_limits<T>::max())) {
      return source.Fail();
    }
    *out = static_cast<T>(v);
    return true;
  } else {
    uint64_t v = 0;
    if (!GetVarint(source, &v)) return false;
    if (v > static_cast<uint64_t>(std::numeric_limits<T>::max())) {
      return source.Fail();
    }
    *out = static_cast<T>(v);
    return true;
  }
}

/// True when T's in-memory representation *is* the v2 wire encoding
/// (8-byte two's-complement integral or IEEE double on a little-endian
/// host) — the whole span copies with one Append/Read, no per-element
/// work.
template <typename T>
inline constexpr bool kFixed64Transparent =
    std::endian::native == std::endian::little && sizeof(T) == 8 &&
    (std::integral<T> || std::same_as<T, double>);

/// v2 fixed-width element encoding: integral values as two's-complement
/// little-endian fixed64, floating point as IEEE double bit patterns.
template <WireValue T>
uint64_t FixedEncodeValue(T v) {
  if constexpr (std::floating_point<T>) {
    return std::bit_cast<uint64_t>(static_cast<double>(v));
  } else if constexpr (std::is_signed_v<T>) {
    return static_cast<uint64_t>(static_cast<int64_t>(v));
  } else {
    return static_cast<uint64_t>(v);
  }
}

template <WireValue T>
bool FixedDecodeValue(ByteSource& source, uint64_t raw, T* out) {
  if constexpr (std::floating_point<T>) {
    *out = static_cast<T>(std::bit_cast<double>(raw));
    return true;
  } else if constexpr (std::is_signed_v<T>) {
    const int64_t v = static_cast<int64_t>(raw);
    if (v < static_cast<int64_t>(std::numeric_limits<T>::min()) ||
        v > static_cast<int64_t>(std::numeric_limits<T>::max())) {
      return source.Fail();
    }
    *out = static_cast<T>(v);
    return true;
  } else {
    if (raw > static_cast<uint64_t>(std::numeric_limits<T>::max())) {
      return source.Fail();
    }
    *out = static_cast<T>(raw);
    return true;
  }
}

/// Bulk v2 element rows (no count prefix — the caller owns that). On
/// transparent types the span goes out in one Append; otherwise elements
/// convert through a stack chunk, still one Append per chunk.
template <WireValue T>
void PutValueArray(ByteSink& sink, std::span<const T> values) {
  if constexpr (kFixed64Transparent<T>) {
    sink.Append(values.data(), values.size() * sizeof(T));
  } else {
    std::array<uint64_t, 1024> chunk;
    size_t i = 0;
    while (i < values.size()) {
      const size_t take = std::min(values.size() - i, chunk.size());
      for (size_t j = 0; j < take; ++j) {
        chunk[j] = FixedEncodeValue(values[i + j]);
      }
      PutFixed64Array(sink, std::span<const uint64_t>(chunk.data(), take));
      i += take;
    }
  }
}

/// Reads exactly `count` v2 fixed-width elements, appended to *out in
/// bounded chunks — a corrupt count on a size-blind source fails at EOF
/// after at most one chunk of over-allocation. The caller validates
/// `count` against caps/remaining() first.
template <WireValue T>
bool GetValueArray(ByteSource& source, std::vector<T>* out, uint64_t count) {
  if constexpr (kFixed64Transparent<T>) {
    constexpr size_t kChunkElems = kWireBufferBytes / sizeof(T);
    while (count > 0) {
      const size_t take =
          static_cast<size_t>(std::min<uint64_t>(count, kChunkElems));
      const size_t old_size = out->size();
      out->resize(old_size + take);
      if (!source.Read(out->data() + old_size, take * sizeof(T))) {
        return false;
      }
      count -= take;
    }
    return true;
  } else {
    std::array<uint64_t, 1024> chunk;
    while (count > 0) {
      const size_t take =
          static_cast<size_t>(std::min<uint64_t>(count, chunk.size()));
      if (!GetFixed64Array(source, chunk.data(), take)) return false;
      for (size_t j = 0; j < take; ++j) {
        T v{};
        if (!FixedDecodeValue(source, chunk[j], &v)) return false;
        out->push_back(v);
      }
      count -= take;
    }
    return true;
  }
}

/// Count-prefixed element vectors. Writers emit the current (v2) shape:
/// varint count followed by fixed 8-byte rows. The reader branches on the
/// source's wire_version() so v1 blobs (per-element varints) keep
/// decoding. The count is validated against `remaining()` when known and
/// against `max_elements` always, so a corrupt prefix fails before
/// allocating.
template <WireValue T>
void PutValueVector(ByteSink& sink, std::span<const T> values) {
  PutVarint(sink, values.size());
  PutValueArray(sink, values);
}

template <WireValue T>
bool GetValueVector(ByteSource& source, std::vector<T>* out,
                    uint64_t max_elements = kMaxVectorElements) {
  uint64_t count = 0;
  if (!GetVarint(source, &count)) return false;
  if (count > max_elements) return source.Fail();
  if (source.wire_version() >= kWireFormatV2) {
    // v2: every element costs exactly 8 bytes.
    if (const auto rem = source.remaining(); rem && count > *rem / 8) {
      return source.Fail();
    }
    out->clear();
    out->reserve(static_cast<size_t>(std::min<uint64_t>(count, 4096)));
    return GetValueArray(source, out, count);
  }
  // v1 upgrade reader: per-element varint/zigzag/fixed64 encoding, each
  // element costing >= 1 byte.
  if (const auto rem = source.remaining(); rem && count > *rem) {
    return source.Fail();
  }
  out->clear();
  // Bounded up-front reserve: on a size-blind source (pipe) the count is
  // only cap-checked, so trust it incrementally instead of allocating
  // count elements before the first byte arrives (growth stays amortized).
  out->reserve(static_cast<size_t>(std::min<uint64_t>(count, 4096)));
  for (uint64_t i = 0; i < count; ++i) {
    T v{};
    if (!GetValue(source, &v)) return false;
    out->push_back(v);
  }
  return true;
}

/// element -> count maps, the common state shape of the frequency
/// summaries (CountMin candidates, Misra-Gries counters, SpaceSaving
/// counts). Entries go on the wire sorted by element so identical states
/// serialize to identical bytes regardless of hash-table history. v2
/// stores `count | elements fixed64 row | counts fixed64 row` (two bulk
/// Appends); v1 interleaved per-entry varints, and the reader upgrades
/// transparently. Get rejects out-of-order/duplicate elements and counts
/// of zero (no real summary stores either) on top of length validation.
void PutCountMap(ByteSink& sink,
                 const std::unordered_map<int64_t, uint64_t>& map);
bool GetCountMap(ByteSource& source,
                 std::unordered_map<int64_t, uint64_t>* out,
                 uint64_t max_entries = kMaxVectorElements);

/// The full wire shape shared by the counter-based summaries
/// (Misra-Gries, SpaceSaving): `k | n | count map`. Get additionally
/// validates k's range, map size <= k, and sum(counts) <= n — both
/// summaries' stored totals never exceed the stream length (MG
/// undercounts; SpaceSaving adds exactly one per insert and merging only
/// discards entries) — with an overflow-safe running sum.
void PutCounterSummary(ByteSink& sink, uint64_t k, uint64_t n,
                       const std::unordered_map<int64_t, uint64_t>& map);
bool GetCounterSummary(ByteSource& source, uint64_t* k, uint64_t* n,
                       std::unordered_map<int64_t, uint64_t>* map);

// ------------------------------------------------------ body framing ---

/// Framed-body helpers shared by snapshots and checkpoints. A v2 message
/// is `magic (4 bytes) | format version varint | encoding byte |
/// [raw body length varint, iff encoded] | stored length varint |
/// stored body | FNV-1a64(stored body) fixed64`; v1 lacked the encoding
/// byte and raw length. Integrity first: the checksum covers the *stored*
/// (possibly compressed) bytes and is verified before decompression or
/// any body parse, so random corruption anywhere is caught up front.
inline constexpr uint64_t kMaxBodyBytes = uint64_t{1} << 30;

/// Returns false — writing nothing — if `body` exceeds kMaxBodyBytes: a
/// frame the reader would reject must never be produced (a "successful"
/// but unrestorable checkpoint would be worse than a failed one). A kZstd
/// request silently downgrades to kNone when support is missing or the
/// compressed body would not be smaller.
bool WriteFramedBody(ByteSink& sink, const char magic[4],
                     std::span<const uint8_t> body,
                     BodyEncoding encoding = BodyEncoding::kNone);

/// Reads and verifies one framed message of any supported version
/// (v1..current); on success stores the decoded (decompressed) body and,
/// when `format_version` is non-null, the frame's version so the caller
/// can stamp it onto payload sources. On failure returns false and, if
/// `error` is non-null, stores a one-line reason. Unknown future versions
/// and unknown encodings are rejected rather than guessed (see
/// docs/wire.md).
bool ReadFramedBody(ByteSource& source, const char magic[4],
                    std::vector<uint8_t>* body, std::string* error,
                    uint64_t* format_version = nullptr);

}  // namespace wire
}  // namespace robust_sampling

#endif  // ROBUST_SAMPLING_WIRE_CODEC_H_
