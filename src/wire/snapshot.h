#ifndef ROBUST_SAMPLING_WIRE_SNAPSHOT_H_
#define ROBUST_SAMPLING_WIRE_SNAPSHOT_H_

#include <concepts>
#include <cstdint>
#include <string>
#include <typeinfo>
#include <vector>

#include "obs/catalog.h"
#include "obs/metrics.h"
#include "pipeline/sketch_config.h"
#include "pipeline/sketch_registry.h"
#include "pipeline/stream_sketch.h"
#include "wire/codec.h"

namespace robust_sampling {
namespace wire {

// ---------------------------------------------------------------------------
// Self-describing sketch snapshots: registry-driven revival.
//
// A snapshot carries the sketch's registry kind key and full SketchConfig
// ahead of the state payload, so the receiving process reconstructs the
// instance with SketchRegistry<T> and then loads the exact state — no
// compile-time coupling to the concrete sketch type, and any *custom*
// registered kind whose adapter implements the serialize hooks ships the
// same way as the built-ins. Layout (after the framed-body envelope of
// codec.h, magic "RSNP"):
//
//   config block (ReadSketchConfig) | payload length varint | payload
//
// The payload is exactly what StreamSketch<T>::SerializeTo wrote. Format
// rules and the versioning policy are documented in docs/wire.md.
// ---------------------------------------------------------------------------

inline constexpr char kSnapshotMagic[4] = {'R', 'S', 'N', 'P'};

/// Canonical wire tag of a sketch's element type, written into every
/// snapshot/checkpoint and checked at revival — the config block alone is
/// type-blind, and an int64 payload must not revive as a double sketch
/// just because the bytes happen to parse. Arithmetic types get stable
/// cross-build tags ("i64", "u32", "f64", ...); anything else falls back
/// to the implementation's typeid name, so custom element types revive
/// only between builds that agree on it.
template <typename T>
std::string ElementTypeTag() {
  if constexpr (std::floating_point<T>) {
    return "f" + std::to_string(sizeof(T) * 8);
  } else if constexpr (std::integral<T> && std::is_signed_v<T>) {
    return "i" + std::to_string(sizeof(T) * 8);
  } else if constexpr (std::integral<T>) {
    return "u" + std::to_string(sizeof(T) * 8);
  } else {
    return typeid(T).name();
  }
}

/// SketchConfig <-> bytes (every field, fixed order; see docs/wire.md).
void WriteSketchConfig(ByteSink& sink, const SketchConfig& config);
bool ReadSketchConfig(ByteSource& source, SketchConfig* config);

/// Pre-revival validation: a config parsed off the wire must not be able
/// to abort the registry factories (RS_CHECK is for programming errors,
/// not wire data). Checks the generic ranges plus the built-in kinds'
/// constructor preconditions; unknown (custom) kinds get the generic
/// checks only. Returns false and fills `error` on rejection.
bool ValidateWireConfig(const SketchConfig& config, std::string* error);

namespace internal {

inline bool SnapshotError(std::string* error, const std::string& reason) {
  if (error != nullptr) *error = reason;
  return false;
}

}  // namespace internal

/// Shared revival prologue of snapshots and checkpoints: element-type tag
/// check, config parse, wire validation, registry membership. One
/// implementation so the two read paths (ReadSnapshot,
/// ShardedPipeline::Restore) cannot drift as the envelope evolves.
template <typename T>
bool ReadRevivalPrologue(ByteSource& source, SketchConfig* config,
                         std::string* error,
                         const SketchRegistry<T>& registry) {
  std::string element_tag;
  if (!GetString(source, &element_tag, /*max_bytes=*/256)) {
    return internal::SnapshotError(error, "malformed element type tag");
  }
  if (element_tag != ElementTypeTag<T>()) {
    return internal::SnapshotError(error, "element type mismatch: blob has " +
                                              element_tag +
                                              ", reader expects " +
                                              ElementTypeTag<T>());
  }
  if (!ReadSketchConfig(source, config)) {
    return internal::SnapshotError(error, "malformed config block");
  }
  if (!ValidateWireConfig(*config, error)) return false;
  if (!registry.Contains(config->kind)) {
    return internal::SnapshotError(error,
                                   "unknown sketch kind: " + config->kind);
  }
  return true;
}

/// Writes one self-describing snapshot of `sketch` to `sink`. `config`
/// must be the configuration the sketch was created from (its `kind` is
/// the revival key). Returns false — without writing a partial prefix —
/// if the sketch does not support kCapSerialize or the config falls
/// outside the wire limits ReadSnapshot enforces (write and read validate
/// with the same ValidateWireConfig, so a snapshot that writes
/// successfully always revives); otherwise returns sink.ok() after the
/// write.
template <typename T>
bool WriteSnapshot(const StreamSketch<T>& sketch, const SketchConfig& config,
                   ByteSink& sink,
                   BodyEncoding encoding = BodyEncoding::kNone) {
  obs::ScopedLatencyTimer timer(obs::WireSerializeNs(config.kind));
  if (!sketch.valid() || !sketch.Supports(kCapSerialize)) return false;
  if (!ValidateWireConfig(config, nullptr)) return false;
  BufferSink payload;
  sketch.SerializeTo(payload);
  BufferSink body;
  PutString(body, ElementTypeTag<T>());
  WriteSketchConfig(body, config);
  PutBytes(body, payload.bytes());
  obs::WireSnapshotBytes(config.kind).Observe(body.bytes().size());
  return WriteFramedBody(sink, kSnapshotMagic, body.bytes(), encoding);
}

/// Reads one snapshot and revives it through `registry`: parse + verify
/// the envelope checksum, validate the config, Create(config, config.seed)
/// the named kind, then replace its state from the payload. On any
/// malformation returns an invalid handle (`!result.valid()`) with a
/// one-line reason in `error` — corrupted and truncated input never
/// aborts. On success the returned sketch answers every query exactly as
/// the serialized instance did.
template <typename T>
StreamSketch<T> ReadSnapshot(
    ByteSource& source, std::string* error = nullptr,
    const SketchRegistry<T>& registry = SketchRegistry<T>::Global()) {
  // Timed manually (not ScopedLatencyTimer): the kind label is only known
  // once the prologue parses, and failed reads have no kind to charge.
  const uint64_t start_ns = obs::NowNanos();
  std::vector<uint8_t> body;
  uint64_t version = kWireFormatCurrent;
  if (!ReadFramedBody(source, kSnapshotMagic, &body, error, &version)) {
    return {};
  }
  // The frame version governs the nested payload encodings too (vectors,
  // count maps) — stamp it onto every source the decoders will see.
  BufferSource body_source(body);
  body_source.set_wire_version(version);
  SketchConfig config;
  if (!ReadRevivalPrologue(body_source, &config, error, registry)) {
    return {};
  }
  std::vector<uint8_t> payload;
  if (!GetBytes(body_source, &payload, kMaxBodyBytes) ||
      body_source.remaining() != uint64_t{0}) {
    internal::SnapshotError(error, "malformed snapshot payload");
    return {};
  }
  StreamSketch<T> sketch = registry.Create(config, config.seed);
  if (!sketch.Supports(kCapSerialize)) {
    internal::SnapshotError(
        error, "kind is not serializable for this element type: " +
                   config.kind);
    return {};
  }
  BufferSource payload_source(payload);
  payload_source.set_wire_version(version);
  if (!sketch.DeserializeFrom(payload_source) ||
      payload_source.remaining() != uint64_t{0}) {
    internal::SnapshotError(error, "malformed sketch state");
    return {};
  }
  obs::WireDeserializeNs(config.kind).Observe(obs::NowNanos() - start_ns);
  return sketch;
}

}  // namespace wire
}  // namespace robust_sampling

#endif  // ROBUST_SAMPLING_WIRE_SNAPSHOT_H_
