#include "wire/snapshot.h"

#include <cmath>

namespace robust_sampling {
namespace wire {

void WriteSketchConfig(ByteSink& sink, const SketchConfig& config) {
  PutString(sink, config.kind);
  PutDouble(sink, config.eps);
  PutDouble(sink, config.delta);
  PutVarint(sink, config.universe_size);
  PutDouble(sink, config.log_universe);
  PutVarint(sink, config.capacity);
  PutDouble(sink, config.probability);
  PutVarint(sink, config.expected_stream_size);
  PutVarint(sink, config.width);
  PutVarint(sink, config.depth);
  PutFixed64(sink, config.seed);
}

bool ReadSketchConfig(ByteSource& source, SketchConfig* config) {
  uint64_t universe_size = 0, capacity = 0, expected_stream_size = 0;
  uint64_t width = 0, depth = 0;
  if (!GetString(source, &config->kind, /*max_bytes=*/256) ||
      !GetDouble(source, &config->eps) ||
      !GetDouble(source, &config->delta) ||
      !GetVarint(source, &universe_size) ||
      !GetDouble(source, &config->log_universe) ||
      !GetVarint(source, &capacity) ||
      !GetDouble(source, &config->probability) ||
      !GetVarint(source, &expected_stream_size) ||
      !GetVarint(source, &width) || !GetVarint(source, &depth) ||
      !GetFixed64(source, &config->seed)) {
    return false;
  }
  config->universe_size = universe_size;
  config->capacity = static_cast<size_t>(capacity);
  config->expected_stream_size = expected_stream_size;
  config->width = static_cast<size_t>(width);
  config->depth = static_cast<size_t>(depth);
  return true;
}

bool ValidateWireConfig(const SketchConfig& config, std::string* error) {
  const auto reject = [error](const char* reason) {
    return internal::SnapshotError(error, reason);
  };
  if (config.kind.empty()) return reject("config: empty kind");
  if (!(config.eps > 0.0 && config.eps < 1.0)) {
    return reject("config: eps outside (0, 1)");
  }
  if (!(config.delta > 0.0 && config.delta < 1.0)) {
    return reject("config: delta outside (0, 1)");
  }
  if (config.universe_size < 1) return reject("config: universe_size < 1");
  if (!(config.log_universe <= 0.0) &&
      !(config.log_universe > 0.0 && config.log_universe < 1e12)) {
    return reject("config: log_universe not finite");  // rejects NaN too
  }
  // Mirrors the codec's element cap: no sketch state larger than this can
  // cross the wire anyway, so no config may ask a factory to allocate it.
  constexpr uint64_t kMaxCapacity = uint64_t{1} << 26;
  if (config.capacity > kMaxCapacity) {
    return reject("config: capacity exceeds limit");
  }
  if (config.probability >= 0.0 && !(config.probability <= 1.0)) {
    return reject("config: probability outside [0, 1]");
  }
  // probability < 0 means "derive"; any negative works, but NaN must not
  // slip through as "derive" silently — NaN fails both comparisons above
  // only if we check explicitly.
  if (!(config.probability >= 0.0) && !(config.probability < 0.0)) {
    return reject("config: probability is NaN");
  }
  if (config.expected_stream_size < 1) {
    return reject("config: expected_stream_size < 1");
  }
  // Built-in kinds: enforce the constructor preconditions their factories
  // would otherwise RS_CHECK on (wire data must fail cleanly, not abort).
  if (config.kind == "kll" && config.capacity > 0 && config.capacity < 4) {
    return reject("config: kll capacity must be 0 or >= 4");
  }
  if (config.kind == "count_min") {
    if (config.width < 2 || config.depth < 1 ||
        config.depth > (uint64_t{1} << 26) / config.width) {
      return reject("config: count_min geometry out of range");
    }
  }
  // Derived-size guard: the built-in factories size unset capacities from
  // eps/delta/ln|R| (core/sample_bounds.h); mirror those derivations in
  // doubles and reject anything the cap above would not admit directly —
  // otherwise a parseable config (e.g. eps = 1e-300) could still drive a
  // factory into a CeilToSize abort or an out-of-range double->size_t
  // cast. Custom kinds own their factories' robustness.
  const double max_capacity = static_cast<double>(kMaxCapacity);
  const double log_r = config.log_universe > 0.0
                           ? config.log_universe
                           : std::log(static_cast<double>(
                                 config.universe_size));
  if (config.kind == "robust_sample" ||
      (config.kind == "reservoir" && config.capacity == 0)) {
    const double k = 2.0 * (log_r + std::log(2.0 / config.delta)) /
                     (config.eps * config.eps);
    if (!(k < max_capacity)) {
      return reject("config: derived reservoir capacity exceeds limit");
    }
  }
  if ((config.kind == "kll" || config.kind == "misra_gries" ||
       config.kind == "space_saving") &&
      config.capacity == 0 && !(2.0 / config.eps < max_capacity)) {
    return reject("config: derived counter budget exceeds limit");
  }
  return true;
}

}  // namespace wire
}  // namespace robust_sampling
