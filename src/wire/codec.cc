#include "wire/codec.h"

#include <errno.h>
#include <pthread.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#if defined(RS_HAVE_ZSTD)
#include <zstd.h>
#endif

#include "obs/catalog.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace robust_sampling {
namespace wire {

// ----------------------------------------------------------------- sinks ---

void BufferSink::Append(const void* data, size_t n) {
  const auto* p = static_cast<const uint8_t*>(data);
  bytes_.insert(bytes_.end(), p, p + n);
}

FileSink::FileSink(const std::string& path) {
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) ok_ = false;
}

FileSink::~FileSink() {
  if (file_ != nullptr) std::fclose(file_);
}

void FileSink::Append(const void* data, size_t n) {
  if (!ok_ || n == 0) return;
  if (std::fwrite(data, 1, n, file_) != n) {
    ok_ = false;
    return;
  }
  obs::WireBytesOut().Increment(n);
}

bool FileSink::SyncAndClose() {
  if (file_ == nullptr) return ok_;
  if (std::fflush(file_) != 0) ok_ = false;
  if (ok_) {
    const uint64_t start_ns = obs::NowNanos();
    if (fsync(fileno(file_)) != 0) ok_ = false;
    obs::WireFsyncNs().Observe(obs::NowNanos() - start_ns);
  }
  if (std::fclose(file_) != 0) ok_ = false;
  file_ = nullptr;
  return ok_;
}

namespace {

// The write-everything loop shared by both WriteAllFd modes. `emit` is
// write(2) or send(2); returns false on unrecoverable error and reports
// whether that error was EPIPE (so the sigmask mode can consume the
// pending signal).
template <typename EmitFn>
bool WriteLoop(const uint8_t* p, size_t n, bool* raised_epipe,
               EmitFn&& emit) {
  while (n > 0) {
    const ssize_t written = emit(p, n);
    if (written < 0) {
      if (errno == EINTR) continue;
      *raised_epipe = errno == EPIPE;
      return false;
    }
    obs::WireBytesOut().Increment(static_cast<uint64_t>(written));
    p += written;
    n -= static_cast<size_t>(written);
  }
  return true;
}

}  // namespace

bool WriteAllFd(int fd, const void* data, size_t n, bool socket_nosignal) {
  if (n == 0) return true;
  const auto* p = static_cast<const uint8_t*>(data);
  bool raised_epipe = false;
  if (socket_nosignal) {
    // Sockets suppress SIGPIPE per call: no sigmask dance on the hot
    // network path, EPIPE comes back as a plain errno.
    return WriteLoop(p, n, &raised_epipe, [fd](const uint8_t* q, size_t m) {
      return send(fd, q, m, MSG_NOSIGNAL);
    });
  }
  // Block SIGPIPE around the write so a hung-up reader surfaces as EPIPE
  // -> false (the documented clean-failure contract) instead of the
  // default signal disposition killing the process.
  sigset_t pipe_mask, old_mask;
  sigemptyset(&pipe_mask);
  sigaddset(&pipe_mask, SIGPIPE);
  pthread_sigmask(SIG_BLOCK, &pipe_mask, &old_mask);
  const bool ok =
      WriteLoop(p, n, &raised_epipe, [fd](const uint8_t* q, size_t m) {
        return write(fd, q, m);
      });
  // Consume the SIGPIPE our own write generated (it is pending while
  // blocked) before restoring the caller's mask — unless the caller had
  // it blocked already, in which case any pending instance is theirs.
  if (raised_epipe && sigismember(&old_mask, SIGPIPE) == 0) {
    const struct timespec zero = {0, 0};
    sigtimedwait(&pipe_mask, nullptr, &zero);
  }
  pthread_sigmask(SIG_SETMASK, &old_mask, nullptr);
  return ok;
}

void FdSink::Append(const void* data, size_t n) {
  if (!ok_ || n == 0) return;
  ok_ = WriteAllFd(fd_, data, n, /*socket_nosignal=*/false);
}

BufferedSink::BufferedSink(ByteSink& base, size_t capacity)
    : base_(base), capacity_(std::max<size_t>(capacity, 1)) {
  buf_.reserve(capacity_);
}

BufferedSink::~BufferedSink() { Flush(); }

void BufferedSink::Append(const void* data, size_t n) {
  if (n >= capacity_) {
    Flush();
    base_.Append(data, n);
    return;
  }
  if (buf_.size() + n > capacity_) Flush();
  const auto* p = static_cast<const uint8_t*>(data);
  buf_.insert(buf_.end(), p, p + n);
}

void BufferedSink::Flush() {
  if (buf_.empty()) return;
  base_.Append(buf_.data(), buf_.size());
  buf_.clear();
  obs::WireBufferFlushes().Increment();
}

// --------------------------------------------------------------- sources ---

bool BufferSource::ReadImpl(void* out, size_t n) {
  if (n > bytes_.size() - pos_) return false;
  std::memcpy(out, bytes_.data() + pos_, n);
  pos_ += n;
  return true;
}

size_t BufferSource::ReadSomeImpl(void* out, size_t n) {
  const size_t take = std::min(n, bytes_.size() - pos_);
  std::memcpy(out, bytes_.data() + pos_, take);
  pos_ += take;
  return take;
}

FileSource::FileSource(const std::string& path) {
  file_ = std::fopen(path.c_str(), "rb");
  if (file_ == nullptr) return;
  if (std::fseek(file_, 0, SEEK_END) == 0) {
    const long end = std::ftell(file_);
    if (end >= 0) size_ = static_cast<uint64_t>(end);
  }
  std::rewind(file_);
}

FileSource::~FileSource() {
  if (file_ != nullptr) std::fclose(file_);
}

std::optional<uint64_t> FileSource::remaining() const {
  if (file_ == nullptr) return 0;
  return pos_ <= size_ ? size_ - pos_ : 0;
}

bool FileSource::ReadImpl(void* out, size_t n) {
  if (file_ == nullptr) return false;
  if (std::fread(out, 1, n, file_) != n) return false;
  pos_ += n;
  obs::WireBytesIn().Increment(n);
  return true;
}

size_t FileSource::ReadSomeImpl(void* out, size_t n) {
  if (file_ == nullptr) return 0;
  const size_t got = std::fread(out, 1, n, file_);
  pos_ += got;
  if (got > 0) obs::WireBytesIn().Increment(got);
  return got;
}

bool FdSource::ReadImpl(void* out, size_t n) {
  auto* p = static_cast<uint8_t*>(out);
  while (n > 0) {
    const ssize_t got = read(fd_, p, n);
    if (got < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (got == 0) return false;  // EOF mid-read: truncated stream
    obs::WireBytesIn().Increment(static_cast<uint64_t>(got));
    p += got;
    n -= static_cast<size_t>(got);
    bytes_read_ += static_cast<uint64_t>(got);
  }
  return true;
}

size_t FdSource::ReadSomeImpl(void* out, size_t n) {
  for (;;) {
    const ssize_t got = read(fd_, out, n);
    if (got < 0) {
      if (errno == EINTR) continue;
      return 0;
    }
    if (got > 0) {
      obs::WireBytesIn().Increment(static_cast<uint64_t>(got));
      bytes_read_ += static_cast<uint64_t>(got);
    }
    return static_cast<size_t>(got);
  }
}

BufferedSource::BufferedSource(ByteSource& base, size_t capacity)
    : base_(base), buf_(std::max<size_t>(capacity, 1)) {}

std::optional<uint64_t> BufferedSource::remaining() const {
  const auto rem = base_.remaining();
  if (!rem) return std::nullopt;
  return *rem + buffered();
}

bool BufferedSource::ReadImpl(void* out, size_t n) {
  auto* p = static_cast<uint8_t*>(out);
  const size_t from_buf = std::min(n, buffered());
  std::memcpy(p, buf_.data() + pos_, from_buf);
  pos_ += from_buf;
  p += from_buf;
  n -= from_buf;
  if (n == 0) return true;
  if (n >= buf_.size()) {
    // The window is drained and the rest is at least a full window:
    // transfer straight into the caller's buffer (no double copy).
    while (n > 0) {
      const size_t got = base_.ReadSome(p, n);
      if (got == 0) return false;
      p += got;
      n -= got;
    }
    return true;
  }
  while (n > 0) {
    pos_ = 0;
    fill_ = base_.ReadSome(buf_.data(), buf_.size());
    if (fill_ == 0) return false;
    const size_t take = std::min(n, fill_);
    std::memcpy(p, buf_.data(), take);
    pos_ = take;
    p += take;
    n -= take;
  }
  return true;
}

size_t BufferedSource::ReadSomeImpl(void* out, size_t n) {
  if (buffered() == 0) {
    pos_ = 0;
    fill_ = base_.ReadSome(buf_.data(), buf_.size());
  }
  const size_t take = std::min(n, buffered());
  std::memcpy(out, buf_.data() + pos_, take);
  pos_ += take;
  return take;
}

// ------------------------------------------------------------ primitives ---

void PutVarint(ByteSink& sink, uint64_t v) {
  uint8_t buf[10];
  size_t n = 0;
  while (v >= 0x80) {
    buf[n++] = static_cast<uint8_t>(v | 0x80);
    v >>= 7;
  }
  buf[n++] = static_cast<uint8_t>(v);
  sink.Append(buf, n);
}

bool GetVarint(ByteSource& source, uint64_t* out) {
  uint64_t result = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    uint8_t byte = 0;
    if (!source.Read(&byte, 1)) return false;
    // The 10th byte may carry only the final bit of a 64-bit value.
    if (shift == 63 && (byte & 0xFE) != 0) return source.Fail();
    result |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *out = result;
      return true;
    }
  }
  return source.Fail();  // continuation bit set on the 10th byte
}

void PutFixed32(ByteSink& sink, uint32_t v) {
  uint8_t buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<uint8_t>(v >> (8 * i));
  sink.Append(buf, 4);
}

void PutFixed64(ByteSink& sink, uint64_t v) {
  uint8_t buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<uint8_t>(v >> (8 * i));
  sink.Append(buf, 8);
}

bool GetFixed32(ByteSource& source, uint32_t* out) {
  uint8_t buf[4];
  if (!source.Read(buf, 4)) return false;
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(buf[i]) << (8 * i);
  *out = v;
  return true;
}

bool GetFixed64(ByteSource& source, uint64_t* out) {
  uint8_t buf[8];
  if (!source.Read(buf, 8)) return false;
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(buf[i]) << (8 * i);
  *out = v;
  return true;
}

void PutFixed64Array(ByteSink& sink, std::span<const uint64_t> values) {
  if constexpr (std::endian::native == std::endian::little) {
    sink.Append(values.data(), values.size() * sizeof(uint64_t));
  } else {
    for (uint64_t v : values) PutFixed64(sink, v);
  }
}

bool GetFixed64Array(ByteSource& source, uint64_t* out, size_t count) {
  if constexpr (std::endian::native == std::endian::little) {
    return source.Read(out, count * sizeof(uint64_t));
  } else {
    for (size_t i = 0; i < count; ++i) {
      if (!GetFixed64(source, &out[i])) return false;
    }
    return true;
  }
}

void PutDouble(ByteSink& sink, double v) {
  PutFixed64(sink, std::bit_cast<uint64_t>(v));
}

bool GetDouble(ByteSource& source, double* out) {
  uint64_t bits = 0;
  if (!GetFixed64(source, &bits)) return false;
  *out = std::bit_cast<double>(bits);
  return true;
}

void PutString(ByteSink& sink, const std::string& s) {
  PutVarint(sink, s.size());
  sink.Append(s.data(), s.size());
}

namespace {

// Reads `len` bytes in bounded chunks so a corrupt length prefix on a
// size-blind source (pipe) fails at EOF after at most one chunk of
// over-allocation — never a len-sized allocation up front.
template <typename Container>
bool ReadChunked(ByteSource& source, Container* out, uint64_t len) {
  constexpr size_t kChunk = 1 << 16;
  out->clear();
  while (len > 0) {
    const size_t take = static_cast<size_t>(std::min<uint64_t>(len, kChunk));
    const size_t old_size = out->size();
    out->resize(old_size + take);
    if (!source.Read(out->data() + old_size, take)) return false;
    len -= take;
  }
  return true;
}

}  // namespace

bool GetString(ByteSource& source, std::string* out, uint64_t max_bytes) {
  uint64_t len = 0;
  if (!GetVarint(source, &len)) return false;
  if (len > max_bytes) return source.Fail();
  if (const auto rem = source.remaining(); rem && len > *rem) {
    return source.Fail();
  }
  return ReadChunked(source, out, len);
}

void PutBytes(ByteSink& sink, std::span<const uint8_t> bytes) {
  PutVarint(sink, bytes.size());
  sink.Append(bytes.data(), bytes.size());
}

bool GetBytes(ByteSource& source, std::vector<uint8_t>* out,
              uint64_t max_bytes) {
  uint64_t len = 0;
  if (!GetVarint(source, &len)) return false;
  if (len > max_bytes) return source.Fail();
  if (const auto rem = source.remaining(); rem && len > *rem) {
    return source.Fail();
  }
  return ReadChunked(source, out, len);
}

void PutStateWords(ByteSink& sink, const std::array<uint64_t, 4>& words) {
  PutFixed64Array(sink, words);
}

bool GetStateWords(ByteSource& source, std::array<uint64_t, 4>* words) {
  return GetFixed64Array(source, words->data(), words->size());
}

void PutCountMap(ByteSink& sink,
                 const std::unordered_map<int64_t, uint64_t>& map) {
  std::vector<std::pair<int64_t, uint64_t>> entries(map.begin(), map.end());
  std::sort(entries.begin(), entries.end());
  PutVarint(sink, entries.size());
  // v2 shape: elements row then counts row, two bulk Appends total.
  std::vector<int64_t> elements;
  std::vector<uint64_t> counts;
  elements.reserve(entries.size());
  counts.reserve(entries.size());
  for (const auto& [element, count] : entries) {
    elements.push_back(element);
    counts.push_back(count);
  }
  PutValueArray<int64_t>(sink, elements);
  PutFixed64Array(sink, counts);
}

bool GetCountMap(ByteSource& source,
                 std::unordered_map<int64_t, uint64_t>* out,
                 uint64_t max_entries) {
  uint64_t count = 0;
  if (!GetVarint(source, &count)) return false;
  if (count > max_entries) return source.Fail();
  if (source.wire_version() >= kWireFormatV2) {
    // v2: every entry costs exactly 16 bytes (two fixed64 rows).
    if (const auto rem = source.remaining(); rem && count > *rem / 16) {
      return source.Fail();
    }
    std::vector<int64_t> elements;
    std::vector<uint64_t> counts;
    elements.reserve(static_cast<size_t>(std::min<uint64_t>(count, 4096)));
    counts.reserve(static_cast<size_t>(std::min<uint64_t>(count, 4096)));
    if (!GetValueArray(source, &elements, count) ||
        !GetValueArray(source, &counts, count)) {
      return false;
    }
    out->clear();
    out->reserve(static_cast<size_t>(std::min<uint64_t>(count, 4096)));
    for (uint64_t i = 0; i < count; ++i) {
      // The writer sorts, so anything non-ascending is malformed (this
      // also makes duplicates impossible).
      if (i > 0 && elements[i] <= elements[i - 1]) return source.Fail();
      if (counts[i] == 0) return source.Fail();
      out->emplace(elements[i], counts[i]);
    }
    return true;
  }
  // v1 upgrade reader: interleaved per-entry varints, >= 2 bytes each.
  if (const auto rem = source.remaining(); rem && count > *rem / 2) {
    return source.Fail();
  }
  out->clear();
  // Bounded up-front reserve: on a size-blind source the count is only
  // cap-checked, so trust it incrementally (growth stays amortized O(1)).
  out->reserve(static_cast<size_t>(std::min<uint64_t>(count, 4096)));
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t element_raw = 0, c = 0;
    if (!GetVarint(source, &element_raw) || !GetVarint(source, &c)) {
      return false;
    }
    if (c == 0) return source.Fail();
    if (!out->emplace(ZigzagDecode(element_raw), c).second) {
      return source.Fail();  // duplicate element
    }
  }
  return true;
}

void PutCounterSummary(ByteSink& sink, uint64_t k, uint64_t n,
                       const std::unordered_map<int64_t, uint64_t>& map) {
  PutVarint(sink, k);
  PutVarint(sink, n);
  PutCountMap(sink, map);
}

bool GetCounterSummary(ByteSource& source, uint64_t* k, uint64_t* n,
                       std::unordered_map<int64_t, uint64_t>* map) {
  if (!GetVarint(source, k) || !GetVarint(source, n)) return false;
  if (*k < 1 || *k > kMaxVectorElements) return source.Fail();
  if (!GetCountMap(source, map, *k)) return false;
  uint64_t total = 0;
  for (const auto& [element, count] : *map) {
    // count > n - total also keeps the running sum from overflowing.
    if (count > *n - total) return source.Fail();
    total += count;
  }
  return true;
}

void Fnv1a64::Update(const void* data, size_t n) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint64_t h = state_;
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  state_ = h;
}

uint64_t Checksum(std::span<const uint8_t> bytes) {
  Fnv1a64 fnv;
  fnv.Update(bytes.data(), bytes.size());
  return fnv.digest();
}

// ----------------------------------------------------------- body framing ---

bool ZstdSupported() {
#if defined(RS_HAVE_ZSTD)
  return true;
#else
  return false;
#endif
}

namespace {

bool ZstdCompress(std::span<const uint8_t> raw, std::vector<uint8_t>* out) {
#if defined(RS_HAVE_ZSTD)
  out->resize(ZSTD_compressBound(raw.size()));
  const size_t n = ZSTD_compress(out->data(), out->size(), raw.data(),
                                 raw.size(), /*compressionLevel=*/3);
  if (ZSTD_isError(n)) return false;
  out->resize(n);
  return true;
#else
  (void)raw;
  (void)out;
  return false;
#endif
}

bool ZstdDecompress(std::span<const uint8_t> stored, size_t raw_len,
                    std::vector<uint8_t>* out) {
#if defined(RS_HAVE_ZSTD)
  out->resize(raw_len);
  const size_t n = ZSTD_decompress(out->data(), raw_len, stored.data(),
                                   stored.size());
  return !ZSTD_isError(n) && n == raw_len;
#else
  (void)stored;
  (void)raw_len;
  (void)out;
  return false;
#endif
}

// Every frame rejection is counted and leaves a flight-recorder error
// event naming the expected frame magic and the reason, so a corrupt
// checkpoint or stream is diagnosable after the fact from the dump alone.
bool FramedError(std::string* error, const char magic[4],
                 const char* reason) {
  if (error != nullptr) *error = reason;
  obs::WireFrameFailures().Increment();
  const char frame[5] = {magic[0], magic[1], magic[2], magic[3], '\0'};
  obs::FlightRecorder::Global().RecordError(
      "wire", std::string("frame ") + frame + ": " + reason);
  return false;
}

}  // namespace

bool WriteFramedBody(ByteSink& sink, const char magic[4],
                     std::span<const uint8_t> body, BodyEncoding encoding) {
  if (body.size() > kMaxBodyBytes) return false;
  std::vector<uint8_t> compressed;
  std::span<const uint8_t> stored = body;
  if (encoding == BodyEncoding::kZstd) {
    if (!ZstdCompress(body, &compressed) ||
        compressed.size() >= body.size()) {
      // No support compiled in, or no size win: ship raw. The frame says
      // kNone, so the reader never needs zstd for this message.
      encoding = BodyEncoding::kNone;
    } else {
      stored = compressed;
      obs::WireCompressRatio().Observe(stored.size() * 100 / body.size());
    }
  }
  sink.Append(magic, 4);
  PutVarint(sink, kWireFormatCurrent);
  const uint8_t encoding_byte = static_cast<uint8_t>(encoding);
  sink.Append(&encoding_byte, 1);
  if (encoding != BodyEncoding::kNone) PutVarint(sink, body.size());
  PutVarint(sink, stored.size());
  sink.Append(stored.data(), stored.size());
  PutFixed64(sink, Checksum(stored));
  return sink.ok();
}

bool ReadFramedBody(ByteSource& source, const char magic[4],
                    std::vector<uint8_t>* body, std::string* error,
                    uint64_t* format_version) {
  char got_magic[4];
  if (!source.Read(got_magic, 4)) {
    return FramedError(error, magic, "truncated header");
  }
  if (std::memcmp(got_magic, magic, 4) != 0) {
    source.Fail();
    return FramedError(error, magic, "bad magic");
  }
  uint64_t version = 0;
  if (!GetVarint(source, &version)) {
    return FramedError(error, magic, "truncated version");
  }
  if (version < kWireFormatV1 || version > kWireFormatCurrent) {
    source.Fail();
    return FramedError(error, magic, "unsupported format version");
  }
  bool compressed = false;
  uint64_t raw_len = 0;
  if (version >= kWireFormatV2) {
    uint8_t encoding_byte = 0;
    if (!source.Read(&encoding_byte, 1)) {
      return FramedError(error, magic, "truncated encoding byte");
    }
    if (encoding_byte > static_cast<uint8_t>(BodyEncoding::kZstd)) {
      source.Fail();
      return FramedError(error, magic, "unknown body encoding");
    }
    compressed = encoding_byte == static_cast<uint8_t>(BodyEncoding::kZstd);
    if (compressed && !ZstdSupported()) {
      source.Fail();
      return FramedError(error, magic,
                         "zstd body but zstd support not compiled in");
    }
    if (compressed) {
      if (!GetVarint(source, &raw_len)) {
        return FramedError(error, magic, "truncated raw body length");
      }
      if (raw_len > kMaxBodyBytes) {
        source.Fail();
        return FramedError(error, magic, "body length exceeds limit");
      }
    }
  }
  uint64_t stored_len = 0;
  if (!GetVarint(source, &stored_len)) {
    return FramedError(error, magic, "truncated body length");
  }
  if (stored_len > kMaxBodyBytes) {
    source.Fail();
    return FramedError(error, magic, "body length exceeds limit");
  }
  // The trailing checksum costs 8 more bytes, so a known-size source must
  // still hold stored_len + 8.
  if (const auto rem = source.remaining(); rem && stored_len + 8 > *rem) {
    source.Fail();
    return FramedError(error, magic, "body length exceeds available bytes");
  }
  if (!ReadChunked(source, body, stored_len)) {
    return FramedError(error, magic, "truncated body");
  }
  uint64_t expected_checksum = 0;
  if (!GetFixed64(source, &expected_checksum)) {
    return FramedError(error, magic, "truncated checksum");
  }
  // Integrity before interpretation: the checksum covers the stored bytes,
  // so corruption is caught here and never reaches the decompressor.
  if (Checksum(*body) != expected_checksum) {
    source.Fail();
    return FramedError(error, magic, "checksum mismatch");
  }
  if (compressed) {
    std::vector<uint8_t> stored = std::move(*body);
    if (!ZstdDecompress(stored, static_cast<size_t>(raw_len), body)) {
      source.Fail();
      return FramedError(error, magic, "body decompression failed");
    }
  }
  if (format_version != nullptr) *format_version = version;
  return true;
}

}  // namespace wire
}  // namespace robust_sampling
