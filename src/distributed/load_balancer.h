#ifndef ROBUST_SAMPLING_DISTRIBUTED_LOAD_BALANCER_H_
#define ROBUST_SAMPLING_DISTRIBUTED_LOAD_BALANCER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/random.h"

namespace robust_sampling {

/// Round-based simulation of the paper's distributed-database scenario
/// (Section 1.2, "Sampling in modern data-processing systems"): every
/// incoming query is routed to one of K query-processing servers uniformly
/// at random, so each server's substream is exactly a BernoulliSample(1/K)
/// of the full query stream.
///
/// The simulation exposes everything an adaptive adversary could observe
/// (which server received each query, and every server's full substream),
/// so experiment E12 can replay the paper's attack against a chosen
/// server's "sample" and verify that Theorem 1.2 protects each server once
/// its expected substream size n/K clears the robustness bound.
class LoadBalancedCluster {
 public:
  /// Requires num_servers >= 1.
  LoadBalancedCluster(int num_servers, uint64_t seed);

  /// Routes one query to a uniformly random server; returns the server id.
  int Route(int64_t query);

  /// The server that received the most recent query.
  int last_server() const { return last_server_; }

  /// Substream of queries received by `server`.
  const std::vector<int64_t>& ServerStream(int server) const;

  /// The full query stream, in arrival order.
  const std::vector<int64_t>& FullStream() const { return full_stream_; }

  /// Total queries routed.
  size_t TotalQueries() const { return full_stream_.size(); }

  /// Per-server load (number of queries), for balance reporting.
  std::vector<size_t> Loads() const;

  /// Per-server representativeness: the Kolmogorov–Smirnov (prefix-family)
  /// discrepancy between each server's substream and the full stream.
  std::vector<double> PerServerPrefixDiscrepancy() const;

  int num_servers() const { return num_servers_; }

 private:
  int num_servers_;
  Rng rng_;
  std::vector<int64_t> full_stream_;
  std::vector<std::vector<int64_t>> server_streams_;
  int last_server_ = -1;
};

}  // namespace robust_sampling

#endif  // ROBUST_SAMPLING_DISTRIBUTED_LOAD_BALANCER_H_
