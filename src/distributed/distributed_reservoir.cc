#include "distributed/distributed_reservoir.h"

#include <algorithm>
#include <limits>

#include "core/check.h"

namespace robust_sampling {

DistributedReservoir::DistributedReservoir(int num_sites, size_t k,
                                           uint64_t seed)
    : num_sites_(num_sites), k_(k) {
  RS_CHECK_MSG(num_sites >= 1, "need at least one site");
  RS_CHECK_MSG(k >= 1, "sample capacity must be >= 1");
  site_rngs_.reserve(num_sites);
  for (int s = 0; s < num_sites; ++s) {
    site_rngs_.emplace_back(MixSeed(seed, static_cast<uint64_t>(s)));
  }
  site_thresholds_.assign(num_sites,
                          std::numeric_limits<uint64_t>::max());
  coordinator_heap_.reserve(k);
}

void DistributedReservoir::Insert(int site, int64_t value) {
  RS_CHECK(site >= 0 && site < num_sites_);
  ++total_items_;
  const uint64_t tag = site_rngs_[site].NextUint64();
  // Site-local filter: only candidates below the last broadcast threshold
  // are forwarded.
  if (tag >= site_thresholds_[site]) return;
  ++messages_sent_;
  // Coordinator side: keep the k smallest tags.
  if (coordinator_heap_.size() < k_) {
    coordinator_heap_.push_back(Tagged{tag, value});
    std::push_heap(coordinator_heap_.begin(), coordinator_heap_.end());
    if (coordinator_heap_.size() == k_) {
      // The k-th smallest tag is now finite: first threshold broadcast.
      ++broadcasts_;
      std::fill(site_thresholds_.begin(), site_thresholds_.end(),
                coordinator_heap_.front().tag);
    }
    return;
  }
  if (tag < coordinator_heap_.front().tag) {
    std::pop_heap(coordinator_heap_.begin(), coordinator_heap_.end());
    coordinator_heap_.back() = Tagged{tag, value};
    std::push_heap(coordinator_heap_.begin(), coordinator_heap_.end());
    // The k-th smallest tag dropped: broadcast the new threshold.
    ++broadcasts_;
    std::fill(site_thresholds_.begin(), site_thresholds_.end(),
              coordinator_heap_.front().tag);
  }
  // Note: a forwarded item with tag >= current max is simply discarded by
  // the coordinator (the site's threshold was stale); no broadcast needed.
}

std::vector<int64_t> DistributedReservoir::Sample() const {
  std::vector<int64_t> out;
  out.reserve(coordinator_heap_.size());
  for (const Tagged& t : coordinator_heap_) out.push_back(t.value);
  return out;
}

}  // namespace robust_sampling
