#include "distributed/load_balancer.h"

#include "core/check.h"
#include "setsystem/discrepancy.h"

namespace robust_sampling {

LoadBalancedCluster::LoadBalancedCluster(int num_servers, uint64_t seed)
    : num_servers_(num_servers), rng_(seed) {
  RS_CHECK_MSG(num_servers >= 1, "need at least one server");
  server_streams_.resize(num_servers);
}

int LoadBalancedCluster::Route(int64_t query) {
  const int server = static_cast<int>(
      rng_.NextBelow(static_cast<uint64_t>(num_servers_)));
  full_stream_.push_back(query);
  server_streams_[server].push_back(query);
  last_server_ = server;
  return server;
}

const std::vector<int64_t>& LoadBalancedCluster::ServerStream(
    int server) const {
  RS_CHECK(server >= 0 && server < num_servers_);
  return server_streams_[server];
}

std::vector<size_t> LoadBalancedCluster::Loads() const {
  std::vector<size_t> loads(num_servers_);
  for (int s = 0; s < num_servers_; ++s) {
    loads[s] = server_streams_[s].size();
  }
  return loads;
}

std::vector<double> LoadBalancedCluster::PerServerPrefixDiscrepancy() const {
  std::vector<double> out(num_servers_);
  for (int s = 0; s < num_servers_; ++s) {
    out[s] = PrefixDiscrepancy(full_stream_, server_streams_[s]);
  }
  return out;
}

}  // namespace robust_sampling
