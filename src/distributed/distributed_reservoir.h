#ifndef ROBUST_SAMPLING_DISTRIBUTED_DISTRIBUTED_RESERVOIR_H_
#define ROBUST_SAMPLING_DISTRIBUTED_DISTRIBUTED_RESERVOIR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/random.h"

namespace robust_sampling {

/// Message-efficient continuous random sampling from distributed streams —
/// the setting of Chung–Tirthapura–Woodruff (cited in the paper's related
/// work, Section 1.3 [CTW16]; see also Cormode et al. [CMYZ12]).
///
/// m sites each observe a local stream; a coordinator must continuously
/// hold a uniform (without-replacement) sample of size k of the *union* of
/// all streams, exchanging as few messages as possible.
///
/// Protocol (bottom-k by random tags, the core of the message-optimal
/// scheme): every arriving item draws a uniform 64-bit tag. A site forwards
/// an item to the coordinator only if its tag is below the site's last
/// known threshold (initially infinity); the coordinator keeps the k
/// smallest-tagged items seen, and whenever its k-th smallest tag drops it
/// broadcasts the new threshold to all sites. The k smallest tags of the
/// union are a uniform k-subset, so the coordinator's sample is exactly a
/// reservoir sample of the union — and the expected message count is
/// O((m + k log n) ) rather than n.
///
/// This simulation counts site->coordinator messages and coordinator
/// broadcasts so experiments/tests can verify the communication bound.
///
/// Relationship to src/wire/: this class studies the *communication
/// complexity* of continuous distributed sampling inside one process;
/// actually shipping sketch state across process boundaries (periodic
/// snapshot aggregation, checkpoint/restore) is the wire subsystem's job
/// — see wire/snapshot.h and the fork-based aggregator in
/// bench/bench_t4_wire_aggregator.cc for the mergeable-summaries route.
class DistributedReservoir {
 public:
  /// Requires num_sites >= 1 and k >= 1.
  DistributedReservoir(int num_sites, size_t k, uint64_t seed);

  /// Site `site` observes one item.
  void Insert(int site, int64_t value);

  /// The coordinator's current sample: a uniform min(k, n)-subset of all
  /// items observed so far, in no particular order.
  std::vector<int64_t> Sample() const;

  /// Number of items forwarded site -> coordinator.
  size_t messages_sent() const { return messages_sent_; }

  /// Number of threshold broadcasts coordinator -> sites.
  size_t broadcasts() const { return broadcasts_; }

  /// Total items observed across all sites.
  size_t total_items() const { return total_items_; }

  size_t capacity() const { return k_; }
  int num_sites() const { return num_sites_; }

 private:
  struct Tagged {
    uint64_t tag;
    int64_t value;

    bool operator<(const Tagged& other) const { return tag < other.tag; }
  };

  int num_sites_;
  size_t k_;
  std::vector<Rng> site_rngs_;
  std::vector<uint64_t> site_thresholds_;  // last broadcast threshold
  std::vector<Tagged> coordinator_heap_;   // max-heap of k smallest tags
  size_t messages_sent_ = 0;
  size_t broadcasts_ = 0;
  size_t total_items_ = 0;
};

}  // namespace robust_sampling

#endif  // ROBUST_SAMPLING_DISTRIBUTED_DISTRIBUTED_RESERVOIR_H_
