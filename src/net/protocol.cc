#include "net/protocol.h"

namespace robust_sampling {
namespace net {

bool WriteMessage(wire::ByteSink& sink, MessageType type,
                  std::span<const uint8_t> payload) {
  wire::BufferSink body;
  wire::PutVarint(body, static_cast<uint64_t>(type));
  body.Append(payload.data(), payload.size());
  if (!wire::WriteFramedBody(sink, kNetMagic, body.bytes())) return false;
  return sink.ok();
}

bool ReadMessage(wire::ByteSource& source, MessageType* type,
                 std::vector<uint8_t>* payload, std::string* error) {
  std::vector<uint8_t> body;
  if (!wire::ReadFramedBody(source, kNetMagic, &body, error)) return false;
  wire::BufferSource body_source(body);
  uint64_t raw_type = 0;
  if (!wire::GetVarint(body_source, &raw_type)) {
    if (error != nullptr) *error = "net message: missing type";
    return false;
  }
  switch (static_cast<MessageType>(raw_type)) {
    case MessageType::kShip:
    case MessageType::kShipAck:
    case MessageType::kQuery:
    case MessageType::kQueryResult:
      break;
    default:
      if (error != nullptr) *error = "net message: unknown type";
      return false;
  }
  *type = static_cast<MessageType>(raw_type);
  const uint64_t consumed = body.size() - *body_source.remaining();
  payload->assign(body.begin() + static_cast<ptrdiff_t>(consumed),
                  body.end());
  return true;
}

bool WriteStatusMessage(wire::ByteSink& sink, MessageType type,
                        Status status) {
  wire::BufferSink payload;
  wire::PutVarint(payload, static_cast<uint64_t>(status));
  return WriteMessage(sink, type, payload.bytes());
}

bool ParseStatusPayload(std::span<const uint8_t> payload, Status* status) {
  wire::BufferSource source(payload);
  uint64_t raw = 0;
  if (!wire::GetVarint(source, &raw)) return false;
  if (raw > static_cast<uint64_t>(Status::kEmpty)) return false;
  *status = static_cast<Status>(raw);
  return true;
}

}  // namespace net
}  // namespace robust_sampling
