#ifndef ROBUST_SAMPLING_NET_PROTOCOL_H_
#define ROBUST_SAMPLING_NET_PROTOCOL_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "wire/codec.h"

namespace robust_sampling {
namespace net {

// ---------------------------------------------------------------------------
// The shipper <-> collector message protocol (docs/distributed.md).
//
// Every message is one standard wire frame (magic "RNET", versioned,
// checksummed — WriteFramedBody/ReadFramedBody provide truncation and
// corruption rejection for free) whose body is `type varint | payload`.
// Payload shapes by type:
//
//   kShip        shipper_id varint | seq varint | PutBytes(snapshot frame)
//                The nested bytes are a complete self-describing "RSNP"
//                snapshot frame, checksummed independently of the outer
//                frame; the collector revives it through SketchRegistry.
//                `seq` increases per shipper; the collector keeps only the
//                newest (last-writer-wins across reconnects).
//   kShipAck     status varint
//   kQuery       kind varint | arg (kind-specific, see collector.h)
//   kQueryResult status varint | result (kind-specific)
//
// Ship payloads are cumulative state, not deltas: each snapshot fully
// replaces the previous one from the same shipper, which is what makes
// keep-latest degradation and crash recovery safe (no gap can corrupt the
// merge — at worst the collector serves slightly stale totals).
// ---------------------------------------------------------------------------

inline constexpr char kNetMagic[4] = {'R', 'N', 'E', 'T'};

enum class MessageType : uint64_t {
  kShip = 1,
  kShipAck = 2,
  kQuery = 3,
  kQueryResult = 4,
};

enum class QueryKind : uint64_t {
  kQuantile = 1,
  kHeavyHitters = 2,
  kFrequency = 3,
};

/// Response / ack status codes.
enum class Status : uint64_t {
  kOk = 0,
  kMalformed = 1,    // payload failed to parse or snapshot failed revival
  kUnsupported = 2,  // merged sketch lacks the queried capability
  kEmpty = 3,        // no snapshots merged yet
};

/// Frames `type | payload` and writes it to `sink`. Returns sink.ok().
bool WriteMessage(wire::ByteSink& sink, MessageType type,
                  std::span<const uint8_t> payload);

/// Reads one "RNET" frame and splits off the type. On failure returns
/// false with a one-line reason in `*error` (when non-null); the caller
/// decides whether that means disconnect (source failed before any byte)
/// or a corrupt peer (fail closed, drop the connection). Does NOT bump
/// metrics or the flight recorder beyond what ReadFramedBody does.
bool ReadMessage(wire::ByteSource& source, MessageType* type,
                 std::vector<uint8_t>* payload, std::string* error);

/// One-varint payloads (acks, simple statuses).
bool WriteStatusMessage(wire::ByteSink& sink, MessageType type, Status status);
bool ParseStatusPayload(std::span<const uint8_t> payload, Status* status);

}  // namespace net
}  // namespace robust_sampling

#endif  // ROBUST_SAMPLING_NET_PROTOCOL_H_
