#ifndef ROBUST_SAMPLING_NET_PROTOCOL_H_
#define ROBUST_SAMPLING_NET_PROTOCOL_H_

#include <chrono>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "wire/codec.h"

namespace robust_sampling {
namespace net {

// ---------------------------------------------------------------------------
// The shipper <-> collector message protocol (docs/distributed.md).
//
// Every message is one standard wire frame (magic "RNET", versioned,
// checksummed — WriteFramedBody/ReadFramedBody provide truncation and
// corruption rejection for free) whose body is `type varint | payload`.
// Payload shapes by type:
//
//   kShip        shipper_id varint | seq varint | PutBytes(snapshot frame)
//                | produced_ns varint | total_ingested varint
//                The nested bytes are a complete self-describing "RSNP"
//                snapshot frame, checksummed independently of the outer
//                frame; the collector revives it through SketchRegistry.
//                `seq` increases per shipper; the collector keeps only the
//                newest (last-writer-wins across reconnects). Protocol v2
//                appended the trailing freshness pair — `produced_ns`
//                (WallClockNanos at Offer time) and the shipper's
//                `total_ingested` watermark; per the docs/wire.md
//                evolution policy the collector still accepts v1 payloads
//                that end after the snapshot bytes and defaults both to 0.
//   kShipAck     status varint
//   kQuery       kind varint | arg (kind-specific, see collector.h)
//   kQueryResult status varint | freshness | result (kind-specific)
//                freshness = contributing_shippers varint | min_watermark
//                varint | max_staleness_ns varint (see QueryFreshness) —
//                every answer says what it might be missing. Rejections
//                produced before the collector consults its state
//                (malformed query payloads) are status-only.
//
// Ship payloads are cumulative state, not deltas: each snapshot fully
// replaces the previous one from the same shipper, which is what makes
// keep-latest degradation and crash recovery safe (no gap can corrupt the
// merge — at worst the collector serves slightly stale totals).
// ---------------------------------------------------------------------------

inline constexpr char kNetMagic[4] = {'R', 'N', 'E', 'T'};

enum class MessageType : uint64_t {
  kShip = 1,
  kShipAck = 2,
  kQuery = 3,
  kQueryResult = 4,
};

enum class QueryKind : uint64_t {
  kQuantile = 1,
  kHeavyHitters = 2,
  kFrequency = 3,
};

/// Response / ack status codes.
enum class Status : uint64_t {
  kOk = 0,
  kMalformed = 1,    // payload failed to parse or snapshot failed revival
  kUnsupported = 2,  // merged sketch lacks the queried capability
  kEmpty = 3,        // no snapshots merged yet
};

/// Wall-clock nanoseconds since the Unix epoch. Freshness stamps cross
/// node boundaries, so this is system_clock — not the steady clock behind
/// obs::NowNanos() — and deliberately independent of RS_METRICS (the
/// stamps are protocol data, not instrumentation).
inline uint64_t WallClockNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

/// The freshness annotation carried by every kQueryResult: how complete
/// the merged answer was at query time. `min_watermark` is the smallest
/// total_ingested across contributing shippers (every contribution covers
/// at least this many producer elements); `max_staleness_ns` is the
/// largest produce->query wall-clock age. Both are 0 when a contributing
/// shipper predates protocol v2 (no stamp shipped).
struct QueryFreshness {
  uint64_t contributing_shippers = 0;
  uint64_t min_watermark = 0;
  uint64_t max_staleness_ns = 0;
};

/// Frames `type | payload` and writes it to `sink`. Returns sink.ok().
bool WriteMessage(wire::ByteSink& sink, MessageType type,
                  std::span<const uint8_t> payload);

/// Reads one "RNET" frame and splits off the type. On failure returns
/// false with a one-line reason in `*error` (when non-null); the caller
/// decides whether that means disconnect (source failed before any byte)
/// or a corrupt peer (fail closed, drop the connection). Does NOT bump
/// metrics or the flight recorder beyond what ReadFramedBody does.
bool ReadMessage(wire::ByteSource& source, MessageType* type,
                 std::vector<uint8_t>* payload, std::string* error);

/// One-varint payloads (acks, simple statuses).
bool WriteStatusMessage(wire::ByteSink& sink, MessageType type, Status status);
bool ParseStatusPayload(std::span<const uint8_t> payload, Status* status);

}  // namespace net
}  // namespace robust_sampling

#endif  // ROBUST_SAMPLING_NET_PROTOCOL_H_
