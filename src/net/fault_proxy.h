#ifndef ROBUST_SAMPLING_NET_FAULT_PROXY_H_
#define ROBUST_SAMPLING_NET_FAULT_PROXY_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace robust_sampling {
namespace net {

// ---------------------------------------------------------------------------
// FaultProxy: a deterministic seeded TCP relay between shipper and
// collector that injects the failure matrix docs/distributed.md documents.
// Robustness claims in tests/net_test.cc are exercised, not asserted:
// every mode below must end in either recovery-via-backoff or a clean
// fail-closed rejection — never a hang, crash, or silently wrong merge.
//
// Determinism: connection i (accept order) gets `schedule[i % size]`, and
// the byte/bit positions the faulty modes corrupt derive from
// splitmix64(seed, i) — same seed, same schedule, same faults.
// ---------------------------------------------------------------------------

enum class FaultMode : uint8_t {
  /// Relay faithfully (the control arm).
  kPass = 0,
  /// Accept, then forward nothing in either direction (blackhole): the
  /// client's send succeeds but the ack never comes — exercises the
  /// io-deadline path and half-open-peer handling.
  kDrop = 1,
  /// Sleep `delay_ms` before each forwarded chunk (slow network).
  kDelay = 2,
  /// Forward a seeded prefix of the client's bytes — cut mid-frame — then
  /// close both sides.
  kTruncate = 3,
  /// Flip one seeded bit in the first forwarded chunk, relay the rest
  /// faithfully: the collector must reject the frame by checksum.
  kBitFlip = 4,
  /// Close both sides immediately on the first client byte.
  kHardClose = 5,
};

struct FaultProxyOptions {
  std::string upstream_host = "127.0.0.1";
  uint16_t upstream_port = 0;
  /// 0 binds an ephemeral loopback port.
  uint16_t listen_port = 0;
  uint64_t seed = 1;
  /// Connection i gets schedule[i % size]; empty means all-kPass.
  std::vector<FaultMode> schedule;
  int delay_ms = 20;
  /// kTruncate forwards in [cut/2, cut) bytes (seeded); keep it smaller
  /// than a frame so the cut is mid-frame.
  int truncate_cut_bytes = 64;
  int connect_timeout_ms = 1000;
  int idle_poll_ms = 20;
};

class FaultProxy {
 public:
  explicit FaultProxy(FaultProxyOptions options);
  ~FaultProxy();
  FaultProxy(const FaultProxy&) = delete;
  FaultProxy& operator=(const FaultProxy&) = delete;

  bool Start(std::string* error = nullptr);
  void Stop();

  uint16_t port() const { return port_; }
  uint64_t connections() const {
    return connections_.load(std::memory_order_relaxed);
  }
  uint64_t faults_injected() const {
    return faults_.load(std::memory_order_relaxed);
  }

 private:
  void AcceptLoop();
  void Relay(int client_fd, uint64_t index);

  const FaultProxyOptions options_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stop_{true};
  std::thread accept_thread_;
  std::mutex conns_mu_;
  std::vector<std::thread> conns_;
  std::atomic<uint64_t> connections_{0};
  std::atomic<uint64_t> faults_{0};
};

}  // namespace net
}  // namespace robust_sampling

#endif  // ROBUST_SAMPLING_NET_FAULT_PROXY_H_
