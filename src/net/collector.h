#ifndef ROBUST_SAMPLING_NET_COLLECTOR_H_
#define ROBUST_SAMPLING_NET_COLLECTOR_H_

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "heavy/frequency_estimator.h"
#include "net/protocol.h"
#include "net/socket_io.h"
#include "obs/admin_server.h"
#include "obs/catalog.h"
#include "obs/flight_recorder.h"
#include "pipeline/stream_sketch.h"
#include "wire/snapshot.h"

namespace robust_sampling {
namespace net {

// ---------------------------------------------------------------------------
// Collector: the aggregation-tier service. Accepts N shipper connections,
// revives every shipped "RSNP" snapshot through SketchRegistry<T>, folds
// the per-shipper *latest* snapshots into one merged sketch, and serves
// the erased query surface (Quantile / HeavyHitters / EstimateFrequency)
// over the same protocol.
//
// Correctness under failure rests on two invariants:
//
//  * Ships are cumulative and keyed by (shipper_id, seq): the collector
//    keeps only the newest snapshot per shipper and rebuilds the merged
//    view by folding those. A shipper that reconnects and re-ships after
//    an outage (or after the collector itself restarted) replaces its own
//    contribution — nothing is ever double-counted, at worst the merge is
//    stale by one outage.
//  * Checkpoints persist the raw per-shipper frames (each internally
//    checksummed) via the same write-tmp / fsync / rename / fsync-parent
//    protocol as ShardedPipeline::Checkpoint, so a kill -9 at any moment
//    leaves either the previous or the new complete checkpoint on disk.
//    A restarted collector restores the exact per-shipper state and
//    answers queries identically.
//
// Malformed input never propagates: a frame or snapshot that fails to
// parse is counted (rs_net_collector_rejects_total), flight-recorded, the
// shipper gets a kMalformed ack when the channel still works, and the
// connection is dropped — fail closed, never merge garbage.
// ---------------------------------------------------------------------------

namespace internal {

/// fsync on the directory containing `path` so a rename into it is
/// durable (same dance as ShardedPipeline's checkpoint, which keeps the
/// helper private).
inline void SyncParentDirectory(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  fsync(fd);
  close(fd);
}

inline constexpr char kCollectorCheckpointMagic[4] = {'R', 'N', 'C', 'K'};

}  // namespace internal

struct CollectorOptions {
  /// 0 binds an ephemeral loopback port (read it back via port()).
  uint16_t port = 0;
  /// Empty disables checkpointing.
  std::string checkpoint_path;
  /// Checkpoint after every N accepted snapshots (>= 1).
  uint64_t checkpoint_every_snapshots = 1;
  /// recv/send deadline on established connections.
  int io_timeout_ms = 2000;
  /// Granularity at which idle connection/accept loops re-check Stop().
  int idle_poll_ms = 50;
  /// Admin plane (GET /metrics, /healthz, /shippers, /trace[.json]):
  /// -1 disables it, 0 binds an ephemeral loopback port (read it back via
  /// admin_port()), anything else binds that port. A failed admin bind is
  /// recorded but never stops the collector — the data plane wins.
  int admin_port = -1;
};

template <typename T>
class Collector {
 public:
  explicit Collector(CollectorOptions options)
      : options_(std::move(options)) {}

  ~Collector() { Stop(); }
  Collector(const Collector&) = delete;
  Collector& operator=(const Collector&) = delete;

  /// Binds, restores any existing checkpoint, and starts accepting.
  /// False (with a reason) only on bind failure; a corrupt checkpoint is
  /// recorded and counted but the service starts with empty state —
  /// fail closed, stay up.
  bool Start(std::string* error = nullptr) {
    if (listen_fd_ >= 0) return true;
    listen_fd_ = ListenLoopback(options_.port, &port_);
    if (listen_fd_ < 0) {
      if (error != nullptr) *error = "collector: cannot bind loopback port";
      return false;
    }
    if (!options_.checkpoint_path.empty()) {
      std::string restore_error;
      if (!RestoreFromCheckpoint(&restore_error) && !restore_error.empty()) {
        obs::FlightRecorder::Global().RecordError(
            "net", "collector restore rejected: " + restore_error);
      }
    }
    if (options_.admin_port >= 0) {
      obs::AdminServerOptions admin_options;
      admin_options.port = static_cast<uint16_t>(options_.admin_port);
      admin_ = std::make_unique<obs::AdminServer>(admin_options);
      admin_->RegisterHandler("/shippers", "application/json",
                              [this] { return ShippersJson(); });
      std::string admin_error;
      if (!admin_->Start(&admin_error)) {
        obs::FlightRecorder::Global().RecordError(
            "net", "collector admin plane failed: " + admin_error);
        admin_.reset();
      }
    }
    stop_.store(false, std::memory_order_release);
    accept_thread_ = std::thread(&Collector::AcceptLoop, this);
    return true;
  }

  void Stop() {
    if (listen_fd_ < 0) return;
    if (admin_ != nullptr) {
      admin_->Stop();
      admin_.reset();
    }
    stop_.store(true, std::memory_order_release);
    if (accept_thread_.joinable()) accept_thread_.join();
    close(listen_fd_);
    listen_fd_ = -1;
    std::vector<std::thread> conns;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns.swap(conns_);
    }
    for (std::thread& t : conns) {
      if (t.joinable()) t.join();
    }
  }

  uint16_t port() const { return port_; }

  /// The admin plane's bound port; 0 when disabled or failed to bind.
  uint16_t admin_port() const {
    return admin_ != nullptr ? admin_->port() : 0;
  }

  uint64_t accepted_snapshots() const {
    return accepted_.load(std::memory_order_relaxed);
  }
  uint64_t rejects() const { return rejects_.load(std::memory_order_relaxed); }
  uint64_t queries_served() const {
    return queries_.load(std::memory_order_relaxed);
  }

  size_t known_shippers() const {
    std::lock_guard<std::mutex> lock(state_mu_);
    return latest_.size();
  }

  /// Local (in-process) views of the merged state — the same lock and
  /// sketch the network queries use, so a bench can compare in-process
  /// truth against over-the-wire answers.
  std::optional<double> Quantile(double q) const {
    std::lock_guard<std::mutex> lock(state_mu_);
    if (!merged_.valid() || !merged_.Supports(kCapQuantiles)) {
      return std::nullopt;
    }
    return merged_.Quantile(q);
  }

  std::optional<double> EstimateFrequency(const T& x) const {
    std::lock_guard<std::mutex> lock(state_mu_);
    if (!merged_.valid() || !merged_.Supports(kCapFrequencies)) {
      return std::nullopt;
    }
    return merged_.EstimateFrequency(x);
  }

  std::optional<std::vector<HeavyHitter>> HeavyHitters(double phi) const {
    std::lock_guard<std::mutex> lock(state_mu_);
    if (!merged_.valid() || !merged_.Supports(kCapHeavyHitters)) {
      return std::nullopt;
    }
    return merged_.HeavyHitters(phi);
  }

  /// Forces a checkpoint now (the periodic path runs automatically).
  bool Checkpoint(std::string* error = nullptr) {
    std::lock_guard<std::mutex> lock(state_mu_);
    return CheckpointLocked(error);
  }

 private:
  struct SourceState {
    uint64_t seq = 0;
    std::vector<uint8_t> frame;  // complete "RSNP" snapshot frame
    // Protocol-v2 freshness stamps (0 when the shipper sent a v1 payload).
    uint64_t produced_ns = 0;      // shipper wall clock at Offer time
    uint64_t total_ingested = 0;   // producer watermark the frame covers
    // Derived at merge time, frozen until the next accepted ship.
    uint64_t seq_lag = 0;          // snapshots superseded before this ship
    uint64_t elements_behind = 0;  // watermark delta this ship caught up
  };

  void AcceptLoop() {
    while (!stop_.load(std::memory_order_acquire)) {
      const int fd = AcceptWithTimeout(listen_fd_, options_.idle_poll_ms);
      if (fd == -1) continue;  // idle tick; re-check stop
      if (fd < 0) {
        if (stop_.load(std::memory_order_acquire)) break;
        continue;
      }
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns_.emplace_back(&Collector::ServeConnection, this, fd);
    }
  }

  void ServeConnection(int fd) {
    SetSocketDeadlines(fd, options_.io_timeout_ms, options_.io_timeout_ms);
    while (!stop_.load(std::memory_order_acquire)) {
      // Wait for the next frame with poll + MSG_PEEK so a clean
      // disconnect closes quietly instead of burning a frame-failure
      // event on the EOF.
      pollfd pfd = {fd, POLLIN, 0};
      const int rc = poll(&pfd, 1, options_.idle_poll_ms);
      if (rc < 0) {
        if (errno == EINTR) continue;
        break;
      }
      if (rc == 0) continue;  // idle; re-check stop
      uint8_t peek = 0;
      const ssize_t got = recv(fd, &peek, 1, MSG_PEEK);
      if (got == 0) break;  // peer closed between messages
      if (got < 0) {
        if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
          continue;
        }
        break;
      }
      SocketSource source(fd);
      MessageType type;
      std::vector<uint8_t> payload;
      std::string error;
      if (!ReadMessage(source, &type, &payload, &error)) {
        // Mid-frame truncation, bad magic, checksum mismatch, unknown
        // type: fail closed — count, record, drop the connection. The
        // peer's reconnect path owns recovery.
        RecordReject("collector read: " + error);
        break;
      }
      bool keep = false;
      if (type == MessageType::kShip) {
        keep = HandleShip(payload, fd);
      } else if (type == MessageType::kQuery) {
        keep = HandleQuery(payload, fd);
      } else {
        RecordReject("collector: unexpected message type");
      }
      if (!keep) break;
    }
    close(fd);
  }

  bool HandleShip(const std::vector<uint8_t>& payload, int fd) {
    uint64_t shipper_id = 0;
    uint64_t seq = 0;
    std::vector<uint8_t> frame;
    uint64_t produced_ns = 0;
    uint64_t total_ingested = 0;
    wire::BufferSource src(payload);
    std::string error;
    bool ok = wire::GetVarint(src, &shipper_id) &&
              wire::GetVarint(src, &seq) &&
              wire::GetBytes(src, &frame, wire::kMaxBodyBytes);
    if (ok && src.remaining() != uint64_t{0}) {
      // Protocol-v2 freshness tail. A v1 payload ends at the snapshot
      // bytes and keeps the zero defaults (docs/wire.md evolution policy:
      // appended fields, reader defaults them when absent).
      ok = wire::GetVarint(src, &produced_ns) &&
           wire::GetVarint(src, &total_ingested) &&
           src.remaining() == uint64_t{0};
    }
    if (ok) {
      // Full revival up front: garbage must be refused before it can
      // touch the merged state or the checkpoint.
      wire::BufferSource frame_source(frame);
      ok = wire::ReadSnapshot<T>(frame_source, &error).valid();
    }
    SocketSink sink(fd);
    if (!ok) {
      RecordReject("collector ship rejected: " +
                   (error.empty() ? std::string("malformed payload")
                                  : error));
      WriteStatusMessage(sink, MessageType::kShipAck, Status::kMalformed);
      return false;  // fail closed
    }
    {
      char span_detail[64];
      std::snprintf(span_detail, sizeof(span_detail),
                    "ship merge shipper=%llu seq=%llu",
                    static_cast<unsigned long long>(shipper_id),
                    static_cast<unsigned long long>(seq));
      obs::TraceSpan span("net", span_detail);
      std::lock_guard<std::mutex> lock(state_mu_);
      SourceState& entry = latest_[shipper_id];
      if (entry.frame.empty() || seq >= entry.seq) {
        // Derive the lag this ship closes before overwriting: seq gaps are
        // outbox supersessions, watermark deltas are the elements the
        // merged view was missing until now.
        entry.seq_lag = seq > entry.seq ? seq - entry.seq - 1 : 0;
        entry.elements_behind = total_ingested > entry.total_ingested
                                    ? total_ingested - entry.total_ingested
                                    : 0;
        entry.seq = seq;
        entry.frame = std::move(frame);
        entry.produced_ns = produced_ns;
        entry.total_ingested = total_ingested;
        const uint64_t merge_wall_ns = WallClockNanos();
        if (produced_ns != 0 && merge_wall_ns > produced_ns) {
          obs::NetE2eProduceMergeNs().Observe(merge_wall_ns - produced_ns);
        }
      }
      // An out-of-order duplicate (seq < entry.seq after a reconnect
      // race) still acks kOk: the collector already holds newer state.
      RebuildMergedLocked();
      RefreshFreshnessLocked(WallClockNanos());
      accepted_.fetch_add(1, std::memory_order_relaxed);
      obs::NetCollectorSnapshots().Increment();
      if (!options_.checkpoint_path.empty() &&
          ++since_checkpoint_ >= options_.checkpoint_every_snapshots) {
        since_checkpoint_ = 0;
        CheckpointLocked(nullptr);
      }
    }
    return WriteStatusMessage(sink, MessageType::kShipAck, Status::kOk);
  }

  bool HandleQuery(const std::vector<uint8_t>& payload, int fd) {
    wire::BufferSource src(payload);
    uint64_t raw_kind = 0;
    wire::BufferSink result;
    SocketSink sink(fd);
    if (!wire::GetVarint(src, &raw_kind)) {
      RecordReject("collector query: missing kind");
      WriteStatusMessage(sink, MessageType::kQueryResult, Status::kMalformed);
      return false;
    }
    queries_.fetch_add(1, std::memory_order_relaxed);
    obs::NetQueries().Increment();
    Status status = Status::kOk;
    switch (static_cast<QueryKind>(raw_kind)) {
      case QueryKind::kQuantile: {
        double q = 0.0;
        if (!wire::GetDouble(src, &q)) {
          status = Status::kMalformed;
          break;
        }
        std::lock_guard<std::mutex> lock(state_mu_);
        if (!merged_.valid()) {
          status = Status::kEmpty;
        } else if (!merged_.Supports(kCapQuantiles)) {
          status = Status::kUnsupported;
        } else {
          wire::PutDouble(result, merged_.Quantile(q));
        }
        break;
      }
      case QueryKind::kHeavyHitters: {
        double phi = 0.0;
        if (!wire::GetDouble(src, &phi)) {
          status = Status::kMalformed;
          break;
        }
        std::lock_guard<std::mutex> lock(state_mu_);
        if (!merged_.valid()) {
          status = Status::kEmpty;
        } else if (!merged_.Supports(kCapHeavyHitters)) {
          status = Status::kUnsupported;
        } else {
          const std::vector<HeavyHitter> hits = merged_.HeavyHitters(phi);
          wire::PutVarint(result, hits.size());
          for (const HeavyHitter& h : hits) {
            wire::PutValue<int64_t>(result, h.element);
            wire::PutDouble(result, h.frequency);
          }
        }
        break;
      }
      case QueryKind::kFrequency: {
        T x{};
        if (!wire::GetValue(src, &x)) {
          status = Status::kMalformed;
          break;
        }
        std::lock_guard<std::mutex> lock(state_mu_);
        if (!merged_.valid()) {
          status = Status::kEmpty;
        } else if (!merged_.Supports(kCapFrequencies)) {
          status = Status::kUnsupported;
        } else {
          wire::PutDouble(result, merged_.EstimateFrequency(x));
        }
        break;
      }
      default:
        status = Status::kMalformed;
    }
    if (status == Status::kMalformed) {
      RecordReject("collector query: malformed payload");
      WriteStatusMessage(sink, MessageType::kQueryResult, Status::kMalformed);
      return false;
    }
    wire::BufferSink response;
    wire::PutVarint(response, static_cast<uint64_t>(status));
    {
      // Every answer carries its freshness: callers learn what the merge
      // was missing (watermark floor, staleness ceiling) alongside the
      // result instead of assuming the view is current.
      std::lock_guard<std::mutex> lock(state_mu_);
      const QueryFreshness fresh = RefreshFreshnessLocked(WallClockNanos());
      wire::PutVarint(response, fresh.contributing_shippers);
      wire::PutVarint(response, fresh.min_watermark);
      wire::PutVarint(response, fresh.max_staleness_ns);
    }
    response.Append(result.bytes().data(), result.bytes().size());
    return WriteMessage(sink, MessageType::kQueryResult, response.bytes());
  }

  /// Recomputes the per-shipper staleness gauges against `now_wall_ns` and
  /// folds them into the fleet-wide annotation. Called with state_mu_ held
  /// on every merge, query, and /shippers render, so the gauges track the
  /// freshest view an observer could have asked for.
  QueryFreshness RefreshFreshnessLocked(uint64_t now_wall_ns) const {
    QueryFreshness fresh;
    fresh.contributing_shippers = latest_.size();
    bool first = true;
    for (const auto& [id, state] : latest_) {
      const uint64_t staleness_ns =
          state.produced_ns != 0 && now_wall_ns > state.produced_ns
              ? now_wall_ns - state.produced_ns
              : 0;
      obs::NetStalenessNs(id).Set(static_cast<int64_t>(staleness_ns));
      obs::NetStalenessSeqLag(id).Set(static_cast<int64_t>(state.seq_lag));
      obs::NetStalenessElementsBehind(id).Set(
          static_cast<int64_t>(state.elements_behind));
      if (staleness_ns > fresh.max_staleness_ns) {
        fresh.max_staleness_ns = staleness_ns;
      }
      if (first || state.total_ingested < fresh.min_watermark) {
        fresh.min_watermark = state.total_ingested;
      }
      first = false;
    }
    return fresh;
  }

  /// The /shippers admin view: one JSON row per known shipper plus the
  /// fleet-wide freshness summary a query would have been annotated with.
  std::string ShippersJson() const {
    const uint64_t now_wall_ns = WallClockNanos();
    std::lock_guard<std::mutex> lock(state_mu_);
    const QueryFreshness fresh = RefreshFreshnessLocked(now_wall_ns);
    std::string out = "{\"shippers\":[";
    bool first = true;
    for (const auto& [id, state] : latest_) {
      if (!first) out += ",";
      first = false;
      const uint64_t staleness_ns =
          state.produced_ns != 0 && now_wall_ns > state.produced_ns
              ? now_wall_ns - state.produced_ns
              : 0;
      out += "{\"shipper\":" + std::to_string(id) +
             ",\"seq\":" + std::to_string(state.seq) +
             ",\"produced_ns\":" + std::to_string(state.produced_ns) +
             ",\"total_ingested\":" + std::to_string(state.total_ingested) +
             ",\"staleness_ns\":" + std::to_string(staleness_ns) +
             ",\"seq_lag\":" + std::to_string(state.seq_lag) +
             ",\"elements_behind\":" + std::to_string(state.elements_behind) +
             ",\"frame_bytes\":" + std::to_string(state.frame.size()) + "}";
    }
    out += "],\"contributing_shippers\":" +
           std::to_string(fresh.contributing_shippers) +
           ",\"min_watermark\":" + std::to_string(fresh.min_watermark) +
           ",\"max_staleness_ns\":" + std::to_string(fresh.max_staleness_ns) +
           "}";
    return out;
  }

  /// Re-folds the latest snapshot of every shipper into merged_. Cost is
  /// O(#shippers x snapshot size) per accepted ship — the price of the
  /// no-double-count invariant under cumulative re-ships.
  void RebuildMergedLocked() {
    const uint64_t start_ns = obs::NowNanos();
    StreamSketch<T> merged;
    for (const auto& [id, state] : latest_) {
      wire::BufferSource source(state.frame);
      StreamSketch<T> revived = wire::ReadSnapshot<T>(source);
      if (!revived.valid()) continue;  // validated at accept; never here
      if (!merged.valid()) {
        merged = std::move(revived);
      } else {
        merged.MergeFrom(revived);
      }
    }
    merged_ = std::move(merged);
    obs::NetCollectorMergeNs().Observe(obs::NowNanos() - start_ns);
  }

  bool CheckpointLocked(std::string* error) {
    obs::ScopedLatencyTimer timer(obs::NetCheckpointNs());
    wire::BufferSink body;
    wire::PutVarint(body, latest_.size());
    for (const auto& [id, state] : latest_) {
      wire::PutVarint(body, id);
      wire::PutVarint(body, state.seq);
      wire::PutBytes(body, state.frame);
      // Freshness stamps survive restarts so a restored collector still
      // reports honest watermarks/staleness for state it answered from.
      wire::PutVarint(body, state.produced_ns);
      wire::PutVarint(body, state.total_ingested);
    }
    const std::string& path = options_.checkpoint_path;
    const std::string tmp = path + ".tmp";
    {
      wire::FileSink file(tmp);
      if (!wire::WriteFramedBody(file, internal::kCollectorCheckpointMagic,
                                 body.bytes()) ||
          !file.SyncAndClose()) {
        std::remove(tmp.c_str());
        return CheckpointFail(error, "collector: cannot write " + tmp);
      }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
      std::remove(tmp.c_str());
      return CheckpointFail(error, "collector: cannot rename " + path);
    }
    internal::SyncParentDirectory(path);
    return true;
  }

  /// Loads options_.checkpoint_path. False with empty error = no file
  /// (fresh start); false with a reason = corrupt file, state left empty.
  bool RestoreFromCheckpoint(std::string* error) {
    wire::FileSource file(options_.checkpoint_path);
    if (!file.open()) return false;  // fresh start, not an error
    std::vector<uint8_t> body;
    if (!wire::ReadFramedBody(file, internal::kCollectorCheckpointMagic,
                              &body, error)) {
      return false;
    }
    // Current checkpoints carry per-entry freshness stamps; pre-freshness
    // files do not. Try the new layout first and fall back to the old one
    // (the outer frame checksum already vouches for the bytes, so a parse
    // mismatch here is a layout difference, not corruption).
    std::map<uint64_t, SourceState> restored;
    if (!ParseCheckpointBody(body, /*with_freshness=*/true, &restored,
                             error) &&
        !ParseCheckpointBody(body, /*with_freshness=*/false, &restored,
                             error)) {
      return false;
    }
    std::lock_guard<std::mutex> lock(state_mu_);
    latest_ = std::move(restored);
    RebuildMergedLocked();
    return true;
  }

  bool ParseCheckpointBody(const std::vector<uint8_t>& body,
                           bool with_freshness,
                           std::map<uint64_t, SourceState>* out,
                           std::string* error) {
    wire::BufferSource source(body);
    uint64_t count = 0;
    if (!wire::GetVarint(source, &count) ||
        count > wire::kMaxVectorElements) {
      if (error != nullptr) *error = "malformed checkpoint entry count";
      return false;
    }
    std::map<uint64_t, SourceState> restored;
    for (uint64_t i = 0; i < count; ++i) {
      uint64_t id = 0;
      SourceState state;
      if (!wire::GetVarint(source, &id) ||
          !wire::GetVarint(source, &state.seq) ||
          !wire::GetBytes(source, &state.frame, wire::kMaxBodyBytes)) {
        if (error != nullptr) *error = "malformed checkpoint entry";
        return false;
      }
      if (with_freshness &&
          (!wire::GetVarint(source, &state.produced_ns) ||
           !wire::GetVarint(source, &state.total_ingested))) {
        if (error != nullptr) *error = "malformed checkpoint freshness";
        return false;
      }
      // Same gate as the live path: each frame must revive cleanly.
      wire::BufferSource frame_source(state.frame);
      std::string revive_error;
      if (!wire::ReadSnapshot<T>(frame_source, &revive_error).valid()) {
        if (error != nullptr) {
          *error = "checkpoint snapshot rejected: " + revive_error;
        }
        return false;
      }
      restored[id] = std::move(state);
    }
    if (source.remaining() != uint64_t{0}) {
      if (error != nullptr) *error = "trailing bytes after checkpoint";
      return false;
    }
    *out = std::move(restored);
    return true;
  }

  static bool CheckpointFail(std::string* error, std::string reason) {
    obs::FlightRecorder::Global().RecordError("net", reason);
    if (error != nullptr) *error = std::move(reason);
    return false;
  }

  void RecordReject(const std::string& detail) {
    rejects_.fetch_add(1, std::memory_order_relaxed);
    obs::NetCollectorRejects().Increment();
    obs::FlightRecorder::Global().RecordError("net", detail);
  }

  const CollectorOptions options_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stop_{true};
  std::thread accept_thread_;
  std::unique_ptr<obs::AdminServer> admin_;
  std::mutex conns_mu_;
  std::vector<std::thread> conns_;

  mutable std::mutex state_mu_;
  std::map<uint64_t, SourceState> latest_;  // ordered: stable checkpoints
  StreamSketch<T> merged_;
  uint64_t since_checkpoint_ = 0;

  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> rejects_{0};
  std::atomic<uint64_t> queries_{0};
};

// ---------------------------------------------------------------------------
// CollectorClient: blocking query client (benches, tests, operator
// tooling). One connection, request/response in lockstep. Every call
// returns false on transport failure or a non-kOk status — a degraded
// collector is visible, never silently wrong.
// ---------------------------------------------------------------------------

template <typename T>
class CollectorClient {
 public:
  CollectorClient() = default;
  ~CollectorClient() { Close(); }
  CollectorClient(const CollectorClient&) = delete;
  CollectorClient& operator=(const CollectorClient&) = delete;

  bool Connect(const std::string& host, uint16_t port,
               int timeout_ms = 1000) {
    Close();
    fd_ = ConnectWithDeadline(host, port, timeout_ms);
    if (fd_ < 0) return false;
    SetSocketDeadlines(fd_, timeout_ms, timeout_ms);
    return true;
  }

  void Close() {
    if (fd_ >= 0) {
      close(fd_);
      fd_ = -1;
    }
  }

  bool connected() const { return fd_ >= 0; }

  bool Quantile(double q, double* out, Status* status = nullptr,
                QueryFreshness* freshness = nullptr) {
    wire::BufferSink payload;
    wire::PutVarint(payload, static_cast<uint64_t>(QueryKind::kQuantile));
    wire::PutDouble(payload, q);
    std::vector<uint8_t> result;
    if (!RoundTrip(payload.bytes(), &result, status, freshness)) {
      return false;
    }
    wire::BufferSource src(result);
    return wire::GetDouble(src, out);
  }

  bool EstimateFrequency(const T& x, double* out, Status* status = nullptr,
                         QueryFreshness* freshness = nullptr) {
    wire::BufferSink payload;
    wire::PutVarint(payload, static_cast<uint64_t>(QueryKind::kFrequency));
    wire::PutValue(payload, x);
    std::vector<uint8_t> result;
    if (!RoundTrip(payload.bytes(), &result, status, freshness)) {
      return false;
    }
    wire::BufferSource src(result);
    return wire::GetDouble(src, out);
  }

  bool HeavyHitters(double phi, std::vector<HeavyHitter>* out,
                    Status* status = nullptr,
                    QueryFreshness* freshness = nullptr) {
    wire::BufferSink payload;
    wire::PutVarint(payload,
                    static_cast<uint64_t>(QueryKind::kHeavyHitters));
    wire::PutDouble(payload, phi);
    std::vector<uint8_t> result;
    if (!RoundTrip(payload.bytes(), &result, status, freshness)) {
      return false;
    }
    wire::BufferSource src(result);
    uint64_t count = 0;
    if (!wire::GetVarint(src, &count) || count > wire::kMaxVectorElements) {
      return false;
    }
    out->clear();
    for (uint64_t i = 0; i < count; ++i) {
      HeavyHitter h{};
      if (!wire::GetValue<int64_t>(src, &h.element) ||
          !wire::GetDouble(src, &h.frequency)) {
        return false;
      }
      out->push_back(h);
    }
    return true;
  }

 private:
  bool RoundTrip(std::span<const uint8_t> query_payload,
                 std::vector<uint8_t>* result, Status* status_out,
                 QueryFreshness* freshness_out = nullptr) {
    if (fd_ < 0) return false;
    SocketSink sink(fd_);
    if (!WriteMessage(sink, MessageType::kQuery, query_payload)) {
      Close();
      return false;
    }
    SocketSource source(fd_);
    MessageType type;
    std::vector<uint8_t> payload;
    std::string error;
    if (!ReadMessage(source, &type, &payload, &error) ||
        type != MessageType::kQueryResult) {
      Close();
      return false;
    }
    wire::BufferSource src(payload);
    uint64_t raw_status = 0;
    if (!wire::GetVarint(src, &raw_status) ||
        raw_status > static_cast<uint64_t>(Status::kEmpty)) {
      Close();
      return false;
    }
    if (status_out != nullptr) {
      *status_out = static_cast<Status>(raw_status);
    }
    // Freshness annotation (status | freshness | result). Early-rejection
    // responses are status-only; everything else carries it, so surface
    // it even on kEmpty/kUnsupported answers.
    if (src.remaining() != uint64_t{0}) {
      QueryFreshness fresh;
      if (!wire::GetVarint(src, &fresh.contributing_shippers) ||
          !wire::GetVarint(src, &fresh.min_watermark) ||
          !wire::GetVarint(src, &fresh.max_staleness_ns)) {
        Close();
        return false;
      }
      if (freshness_out != nullptr) *freshness_out = fresh;
    }
    if (static_cast<Status>(raw_status) != Status::kOk) return false;
    const uint64_t consumed = payload.size() - *src.remaining();
    result->assign(payload.begin() + static_cast<ptrdiff_t>(consumed),
                   payload.end());
    return true;
  }

  int fd_ = -1;
};

}  // namespace net
}  // namespace robust_sampling

#endif  // ROBUST_SAMPLING_NET_COLLECTOR_H_
