#include "net/snapshot_shipper.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <utility>

#include "net/protocol.h"
#include "net/socket_io.h"
#include "obs/catalog.h"
#include "obs/flight_recorder.h"

namespace robust_sampling {
namespace net {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

SnapshotShipper::SnapshotShipper(ShipperOptions options)
    : options_(std::move(options)), jitter_state_(options_.jitter_seed) {}

SnapshotShipper::~SnapshotShipper() { Stop(); }

void SnapshotShipper::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!stop_) return;
  stop_ = false;
  worker_ = std::thread(&SnapshotShipper::Run, this);
}

void SnapshotShipper::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (worker_.joinable()) worker_.join();
  CloseConnection();
}

void SnapshotShipper::Offer(std::vector<uint8_t> snapshot_frame,
                            uint64_t total_ingested) {
  PendingSnapshot snapshot;
  snapshot.frame = std::move(snapshot_frame);
  snapshot.produced_ns = WallClockNanos();
  snapshot.total_ingested = total_ingested;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (pending_.has_value()) {
      // Keep-latest degradation: the unsent frame is strictly staler
      // cumulative state than the one replacing it.
      ++superseded_;
      obs::NetSnapshotsSuperseded().Increment();
    }
    pending_ = std::move(snapshot);
    ++next_seq_;
  }
  cv_.notify_all();
}

bool SnapshotShipper::WaitUntilDrained(int timeout_ms) {
  std::unique_lock<std::mutex> lock(mu_);
  return cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms), [&] {
    return !pending_.has_value() && !in_flight_;
  });
}

uint64_t SnapshotShipper::shipped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shipped_;
}

uint64_t SnapshotShipper::superseded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return superseded_;
}

uint64_t SnapshotShipper::failures() const {
  std::lock_guard<std::mutex> lock(mu_);
  return failures_;
}

uint64_t SnapshotShipper::reconnect_attempts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reconnect_attempts_;
}

void SnapshotShipper::CloseConnection() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

bool SnapshotShipper::EnsureConnectedLocked(
    std::unique_lock<std::mutex>& lock) {
  while (!stop_ && fd_ < 0) {
    if (backoff_ms_ > 0) {
      // Decorrelated jitter on the current backoff step: sleep a uniform
      // fraction in [backoff/2, backoff] so a fleet restarting together
      // does not reconnect in lockstep. The wait is interruptible — a
      // Stop() cuts it short.
      const int jitter_ms = static_cast<int>(
          backoff_ms_ / 2 +
          SplitMix64(&jitter_state_) %
              static_cast<uint64_t>(backoff_ms_ / 2 + 1));
      obs::NetBackoffWaitNs().Observe(static_cast<uint64_t>(jitter_ms) *
                                      1000000ULL);
      cv_.wait_for(lock, std::chrono::milliseconds(jitter_ms),
                   [&] { return stop_; });
      if (stop_) return false;
    }
    ++reconnect_attempts_;
    obs::NetReconnects().Increment();
    lock.unlock();
    const int fd = ConnectWithDeadline(options_.host, options_.port,
                                      options_.connect_timeout_ms);
    lock.lock();
    if (fd >= 0) {
      SetSocketDeadlines(fd, options_.io_timeout_ms, options_.io_timeout_ms);
      fd_ = fd;
      backoff_ms_ = 0;
      return !stop_;
    }
    backoff_ms_ = backoff_ms_ == 0
                      ? options_.backoff_initial_ms
                      : std::min(backoff_ms_ * 2, options_.backoff_max_ms);
  }
  return !stop_ && fd_ >= 0;
}

bool SnapshotShipper::ShipOne(const PendingSnapshot& snapshot,
                              uint64_t seq) {
  const uint64_t start_ns = obs::NowNanos();
  SocketSink raw_sink(fd_);
  {
    wire::BufferedSink sink(raw_sink);
    wire::BufferSink payload;
    wire::PutVarint(payload, options_.shipper_id);
    wire::PutVarint(payload, seq);
    wire::PutBytes(payload, snapshot.frame);
    // Protocol v2 freshness tail (appended fields; a v1 collector never
    // sees them because it predates this writer, and the v2 collector
    // defaults them to 0 when absent).
    wire::PutVarint(payload, snapshot.produced_ns);
    wire::PutVarint(payload, snapshot.total_ingested);
    if (!WriteMessage(sink, MessageType::kShip, payload.bytes())) {
      return false;
    }
    sink.Flush();
  }
  if (!raw_sink.ok()) return false;

  SocketSource source(fd_);
  MessageType type;
  std::vector<uint8_t> ack_payload;
  std::string error;
  if (!ReadMessage(source, &type, &ack_payload, &error) ||
      type != MessageType::kShipAck) {
    return false;
  }
  Status status = Status::kMalformed;
  if (!ParseStatusPayload(ack_payload, &status) || status != Status::kOk) {
    return false;
  }
  obs::NetShipRttNs().Observe(obs::NowNanos() - start_ns);
  return true;
}

void SnapshotShipper::Run() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    cv_.wait(lock, [&] { return stop_ || pending_.has_value(); });
    if (stop_) break;
    if (!EnsureConnectedLocked(lock)) break;
    if (!pending_.has_value()) continue;  // superseded into nothing? keep it
    PendingSnapshot snapshot = std::move(*pending_);
    pending_.reset();
    const uint64_t seq = next_seq_;
    in_flight_ = true;
    lock.unlock();
    const bool ok = ShipOne(snapshot, seq);
    lock.lock();
    in_flight_ = false;
    if (ok) {
      ++shipped_;
      obs::NetSnapshotsShipped().Increment();
    } else {
      ++failures_;
      obs::NetShipFailures().Increment();
      obs::FlightRecorder::Global().RecordError(
          "net", "ship failed; will retry after reconnect", seq);
      CloseConnection();
      backoff_ms_ = backoff_ms_ == 0 ? options_.backoff_initial_ms
                                     : backoff_ms_;
      // Re-queue unless a newer offer arrived while we were shipping —
      // then the failed frame is stale and the newer one wins.
      if (!pending_.has_value()) {
        pending_ = std::move(snapshot);
      } else {
        ++superseded_;
        obs::NetSnapshotsSuperseded().Increment();
      }
    }
    cv_.notify_all();
  }
}

}  // namespace net
}  // namespace robust_sampling
