#include "net/socket_io.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cstring>

#include "obs/catalog.h"

namespace robust_sampling {
namespace net {

namespace {

timeval MsToTimeval(int ms) {
  timeval tv;
  tv.tv_sec = ms / 1000;
  tv.tv_usec = (ms % 1000) * 1000;
  return tv;
}

bool SetNonBlocking(int fd, bool nonblocking) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  const int want = nonblocking ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (want == flags) return true;
  return fcntl(fd, F_SETFL, want) == 0;
}

}  // namespace

bool SetSocketDeadlines(int fd, int recv_timeout_ms, int send_timeout_ms) {
  const timeval rcv = MsToTimeval(recv_timeout_ms);
  const timeval snd = MsToTimeval(send_timeout_ms);
  if (setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &rcv, sizeof(rcv)) != 0) {
    return false;
  }
  return setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &snd, sizeof(snd)) == 0;
}

int ConnectWithDeadline(const std::string& host, uint16_t port,
                        int connect_timeout_ms) {
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    errno = EINVAL;
    return -1;
  }

  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (!SetNonBlocking(fd, true)) {
    close(fd);
    return -1;
  }

  int rc;
  do {
    rc = connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  } while (rc < 0 && errno == EINTR);

  if (rc < 0) {
    if (errno != EINPROGRESS) {
      close(fd);
      return -1;
    }
    // Non-blocking connect in flight: poll for writability, then read the
    // socket's pending error to learn whether the handshake succeeded.
    pollfd pfd = {fd, POLLOUT, 0};
    do {
      rc = poll(&pfd, 1, connect_timeout_ms > 0 ? connect_timeout_ms : -1);
    } while (rc < 0 && errno == EINTR);
    if (rc <= 0) {
      if (rc == 0) errno = ETIMEDOUT;
      close(fd);
      return -1;
    }
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    if (getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) != 0 ||
        so_error != 0) {
      if (so_error != 0) errno = so_error;
      close(fd);
      return -1;
    }
  }

  if (!SetNonBlocking(fd, false)) {
    close(fd);
    return -1;
  }
  // Snapshot frames are latency-sensitive request/response pairs; never
  // let Nagle hold the tail of a frame.
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

int ListenLoopback(uint16_t port, uint16_t* bound_port, int backlog) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      listen(fd, backlog) != 0) {
    close(fd);
    return -1;
  }
  if (bound_port != nullptr) {
    sockaddr_in actual;
    socklen_t len = sizeof(actual);
    if (getsockname(fd, reinterpret_cast<sockaddr*>(&actual), &len) != 0) {
      close(fd);
      return -1;
    }
    *bound_port = ntohs(actual.sin_port);
  }
  return fd;
}

int AcceptWithTimeout(int listen_fd, int timeout_ms) {
  pollfd pfd = {listen_fd, POLLIN, 0};
  int rc;
  do {
    rc = poll(&pfd, 1, timeout_ms > 0 ? timeout_ms : -1);
  } while (rc < 0 && errno == EINTR);
  if (rc == 0) return -1;
  if (rc < 0) return -2;
  int fd;
  do {
    fd = accept(listen_fd, nullptr, nullptr);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) return -2;
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

void SocketSink::Append(const void* data, size_t n) {
  if (!ok_ || n == 0) return;
  ok_ = wire::WriteAllFd(fd_, data, n, /*socket_nosignal=*/true);
}

bool SocketSource::ReadImpl(void* out, size_t n) {
  auto* p = static_cast<uint8_t*>(out);
  while (n > 0) {
    const ssize_t got = recv(fd_, p, n, 0);
    if (got < 0) {
      if (errno == EINTR) continue;
      // EAGAIN/EWOULDBLOCK here means the SO_RCVTIMEO deadline expired
      // mid-read: the peer is half-open or wedged. Treat it exactly like
      // truncation — poison the stream.
      return false;
    }
    if (got == 0) return false;  // peer closed mid-object
    bytes_read_ += static_cast<uint64_t>(got);
    obs::WireBytesIn().Increment(static_cast<uint64_t>(got));
    p += got;
    n -= static_cast<size_t>(got);
  }
  return true;
}

size_t SocketSource::ReadSomeImpl(void* out, size_t n) {
  if (n == 0) return 0;
  ssize_t got;
  do {
    got = recv(fd_, out, n, 0);
  } while (got < 0 && errno == EINTR);
  if (got <= 0) return 0;
  bytes_read_ += static_cast<uint64_t>(got);
  obs::WireBytesIn().Increment(static_cast<uint64_t>(got));
  return static_cast<size_t>(got);
}

}  // namespace net
}  // namespace robust_sampling
