#ifndef ROBUST_SAMPLING_NET_SOCKET_IO_H_
#define ROBUST_SAMPLING_NET_SOCKET_IO_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

#include "wire/codec.h"

namespace robust_sampling {
namespace net {

// ---------------------------------------------------------------------------
// TCP transport primitives for the aggregation tier (docs/distributed.md).
//
// SocketSink / SocketSource layer the wire codec's ByteSink / ByteSource
// contract over a connected stream socket, so everything that already
// serializes through the codec — snapshots, checkpoints, framed bodies —
// ships over TCP unchanged. Failure semantics match the codec: any
// unrecoverable socket error (peer reset, deadline expiry, EPIPE) latches
// the sink/source failed and every later call is a no-op; nothing aborts,
// nothing raises SIGPIPE, nothing blocks forever.
//
// Deadlines are per-operation socket timeouts (SO_RCVTIMEO / SO_SNDTIMEO):
// a recv or send that makes no progress within the deadline fails the
// stream. That is the half-open-peer defence — a peer that vanished
// without a FIN costs one deadline, not a hang.
// ---------------------------------------------------------------------------

/// Applies per-operation deadlines to a connected socket. 0 disables the
/// corresponding timeout (block indefinitely). Returns false if either
/// setsockopt failed.
bool SetSocketDeadlines(int fd, int recv_timeout_ms, int send_timeout_ms);

/// Connects to host:port (numeric IPv4 host, e.g. "127.0.0.1") with a
/// connect deadline: the connect runs non-blocking and is polled until it
/// completes or `connect_timeout_ms` expires. Returns the connected fd, or
/// -1 (with errno from the failing call). EINTR-safe.
int ConnectWithDeadline(const std::string& host, uint16_t port,
                        int connect_timeout_ms);

/// Opens a loopback listener. `port` 0 binds an ephemeral port;
/// `*bound_port` receives the actual one. SO_REUSEADDR is set so a
/// restarted collector can rebind its old port immediately (the kill -9
/// recovery path). Returns the listening fd or -1.
int ListenLoopback(uint16_t port, uint16_t* bound_port, int backlog = 16);

/// Accepts one connection, waiting at most `timeout_ms` (0 = wait
/// forever). Returns the connected fd, -1 on timeout, -2 on listener
/// error. EINTR-safe.
int AcceptWithTimeout(int listen_fd, int timeout_ms);

/// ByteSink over a connected socket: WriteAllFd in its
/// send(..., MSG_NOSIGNAL) mode, so the hot ship path pays no per-write
/// sigmask syscalls and a hung-up collector surfaces as ok() == false.
/// Does not own the fd.
class SocketSink final : public wire::ByteSink {
 public:
  explicit SocketSink(int fd) : fd_(fd) {}

  void Append(const void* data, size_t n) override;
  bool ok() const override { return ok_; }

 private:
  int fd_;
  bool ok_ = true;
};

/// ByteSource over a connected socket: EINTR-safe recv loops, deadline
/// failures poison the source (mid-frame timeout == truncated stream,
/// exactly like a closed pipe). Length is unknowable, so remaining() is
/// nullopt and the codec's hard caps bound every attacker-controlled
/// length prefix. Does not own the fd.
class SocketSource final : public wire::ByteSource {
 public:
  explicit SocketSource(int fd) : fd_(fd) {}

  std::optional<uint64_t> remaining() const override { return std::nullopt; }

  /// Total bytes successfully consumed (transfer accounting).
  uint64_t bytes_read() const { return bytes_read_; }

 protected:
  bool ReadImpl(void* out, size_t n) override;
  size_t ReadSomeImpl(void* out, size_t n) override;

 private:
  int fd_;
  uint64_t bytes_read_ = 0;
};

}  // namespace net
}  // namespace robust_sampling

#endif  // ROBUST_SAMPLING_NET_SOCKET_IO_H_
