#ifndef ROBUST_SAMPLING_NET_SNAPSHOT_SHIPPER_H_
#define ROBUST_SAMPLING_NET_SNAPSHOT_SHIPPER_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

namespace robust_sampling {
namespace net {

// ---------------------------------------------------------------------------
// SnapshotShipper: the ingest-node half of the aggregation tier.
//
// Callers hand it complete serialized snapshot frames (the "RSNP" bytes
// WriteSnapshot produces — the shipper is deliberately untemplated and
// never parses them); a background thread delivers each to the collector
// and waits for the ack. Failure policy:
//
//  * Lost/never-established connection: reconnect with exponential
//    backoff + decorrelated jitter, capped at `backoff_max_ms`. Backoff
//    state resets after a successful ship.
//  * Collector unreachable for a while: the outbox keeps exactly the
//    LATEST offered snapshot. Snapshots are cumulative state, so an older
//    unsent one is strictly inferior to the newer one that replaced it —
//    superseding is counted (rs_net_snapshots_superseded_total), never
//    silent, and memory stays bounded no matter how long the outage.
//  * Ship fails mid-flight (send error, missing/bad ack): the frame stays
//    pending and re-ships after reconnect, unless a newer offer
//    superseded it meanwhile.
//
// Stop() is prompt: backoff sleeps and idle waits are condition-variable
// waits that Stop() interrupts.
// ---------------------------------------------------------------------------

struct ShipperOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  /// Identifies this shipper in the collector's per-source latest map;
  /// must be unique within a fleet (collector state is keyed by it).
  uint64_t shipper_id = 0;
  int connect_timeout_ms = 1000;
  /// recv/send deadline on the established connection (ack waits).
  int io_timeout_ms = 2000;
  int backoff_initial_ms = 10;
  int backoff_max_ms = 2000;
  /// Seed of the deterministic jitter stream (tests pin it).
  uint64_t jitter_seed = 0x5EED;
};

class SnapshotShipper {
 public:
  explicit SnapshotShipper(ShipperOptions options);
  ~SnapshotShipper();
  SnapshotShipper(const SnapshotShipper&) = delete;
  SnapshotShipper& operator=(const SnapshotShipper&) = delete;

  void Start();
  void Stop();

  /// Queues `snapshot_frame` (complete "RSNP" frame bytes) as the latest
  /// state. Replaces — and counts as superseded — any pending frame that
  /// has not shipped yet. Callable from any thread.
  ///
  /// `total_ingested` is the producer's watermark at snapshot time (how
  /// many elements the snapshot covers); it ships to the collector along
  /// with a produced_ns wall-clock stamp taken here, and comes back to
  /// query callers as the freshness annotation. 0 means "not tracked"
  /// (protocol v1 behavior).
  void Offer(std::vector<uint8_t> snapshot_frame, uint64_t total_ingested = 0);

  /// Blocks until the outbox is empty and no ship is in flight, or
  /// `timeout_ms` elapses. True on drained. A down collector makes this
  /// time out — that is the observable form of degraded mode.
  bool WaitUntilDrained(int timeout_ms);

  // Monotonic local mirrors of the rs_net_* counters (process-global
  // metrics can't be attributed per-shipper in tests).
  uint64_t shipped() const;
  uint64_t superseded() const;
  uint64_t failures() const;
  uint64_t reconnect_attempts() const;

 private:
  /// An offered frame plus the freshness stamps that ship with it.
  struct PendingSnapshot {
    std::vector<uint8_t> frame;
    uint64_t produced_ns = 0;  // WallClockNanos() at Offer time
    uint64_t total_ingested = 0;
  };

  void Run();
  /// Ensures fd_ is connected, sleeping backoff between attempts; returns
  /// false if Stop() interrupted the wait.
  bool EnsureConnectedLocked(std::unique_lock<std::mutex>& lock);
  void CloseConnection();
  /// Ships `snapshot` (seq `seq`) over the live connection and waits for
  /// the ack; true only on an explicit kOk ack.
  bool ShipOne(const PendingSnapshot& snapshot, uint64_t seq);

  const ShipperOptions options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::optional<PendingSnapshot> pending_;
  uint64_t next_seq_ = 0;
  bool in_flight_ = false;
  bool stop_ = true;
  std::thread worker_;

  int fd_ = -1;              // worker-thread only
  int backoff_ms_ = 0;       // worker-thread only; 0 = connect immediately
  uint64_t jitter_state_;    // worker-thread only (splitmix64)

  uint64_t shipped_ = 0;
  uint64_t superseded_ = 0;
  uint64_t failures_ = 0;
  uint64_t reconnect_attempts_ = 0;
};

}  // namespace net
}  // namespace robust_sampling

#endif  // ROBUST_SAMPLING_NET_SNAPSHOT_SHIPPER_H_
