#include "net/fault_proxy.h"

#include <errno.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <utility>

#include "net/socket_io.h"

namespace robust_sampling {
namespace net {

namespace {

uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

bool ForwardAll(int fd, const uint8_t* data, size_t n) {
  return wire::WriteAllFd(fd, data, n, /*socket_nosignal=*/true);
}

}  // namespace

FaultProxy::FaultProxy(FaultProxyOptions options)
    : options_(std::move(options)) {}

FaultProxy::~FaultProxy() { Stop(); }

bool FaultProxy::Start(std::string* error) {
  if (listen_fd_ >= 0) return true;
  listen_fd_ = ListenLoopback(options_.listen_port, &port_);
  if (listen_fd_ < 0) {
    if (error != nullptr) *error = "fault proxy: cannot bind loopback port";
    return false;
  }
  stop_.store(false, std::memory_order_release);
  accept_thread_ = std::thread(&FaultProxy::AcceptLoop, this);
  return true;
}

void FaultProxy::Stop() {
  if (listen_fd_ < 0) return;
  stop_.store(true, std::memory_order_release);
  if (accept_thread_.joinable()) accept_thread_.join();
  close(listen_fd_);
  listen_fd_ = -1;
  std::vector<std::thread> conns;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns.swap(conns_);
  }
  for (std::thread& t : conns) {
    if (t.joinable()) t.join();
  }
}

void FaultProxy::AcceptLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    const int fd = AcceptWithTimeout(listen_fd_, options_.idle_poll_ms);
    if (fd == -1) continue;
    if (fd < 0) {
      if (stop_.load(std::memory_order_acquire)) break;
      continue;
    }
    const uint64_t index =
        connections_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.emplace_back(&FaultProxy::Relay, this, fd, index);
  }
}

void FaultProxy::Relay(int client_fd, uint64_t index) {
  const FaultMode mode =
      options_.schedule.empty()
          ? FaultMode::kPass
          : options_.schedule[index % options_.schedule.size()];
  if (mode != FaultMode::kPass) {
    faults_.fetch_add(1, std::memory_order_relaxed);
  }
  const uint64_t rand = SplitMix64(options_.seed + index);

  const int upstream_fd =
      mode == FaultMode::kDrop
          ? -1  // blackhole never contacts the upstream
          : ConnectWithDeadline(options_.upstream_host,
                                options_.upstream_port,
                                options_.connect_timeout_ms);
  if (mode != FaultMode::kDrop && upstream_fd < 0) {
    close(client_fd);
    return;
  }

  // kTruncate: forward exactly this many client bytes, then cut. Seeded
  // into [cut/2, cut) so the cut lands at a different mid-frame offset
  // per connection but is reproducible for a given seed.
  const size_t cut =
      static_cast<size_t>(options_.truncate_cut_bytes / 2 +
                          rand % static_cast<uint64_t>(std::max(
                                     1, options_.truncate_cut_bytes / 2)));
  size_t client_bytes = 0;   // client -> upstream bytes forwarded so far
  bool flipped = false;
  uint8_t buf[4096];
  bool done = false;

  while (!done && !stop_.load(std::memory_order_acquire)) {
    pollfd pfds[2];
    pfds[0] = {client_fd, POLLIN, 0};
    pfds[1] = {upstream_fd, POLLIN, 0};
    const nfds_t nfds = upstream_fd >= 0 ? 2 : 1;
    const int rc = poll(pfds, nfds, options_.idle_poll_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (rc == 0) continue;  // idle tick; re-check stop

    // Client -> upstream: the faulty direction.
    if (pfds[0].revents & (POLLIN | POLLHUP | POLLERR)) {
      ssize_t got;
      do {
        got = recv(client_fd, buf, sizeof(buf), 0);
      } while (got < 0 && errno == EINTR);
      if (got <= 0) break;  // client gone (or error): tear down
      size_t n = static_cast<size_t>(got);
      switch (mode) {
        case FaultMode::kDrop:
          break;  // swallow
        case FaultMode::kHardClose:
          done = true;  // first byte kills the connection
          break;
        case FaultMode::kTruncate: {
          const size_t remaining =
              client_bytes < cut ? cut - client_bytes : 0;
          const size_t fwd = std::min(n, remaining);
          if (fwd > 0 && !ForwardAll(upstream_fd, buf, fwd)) done = true;
          client_bytes += fwd;
          if (client_bytes >= cut) done = true;
          break;
        }
        case FaultMode::kBitFlip: {
          if (!flipped) {
            buf[rand % n] ^= static_cast<uint8_t>(1u << ((rand >> 8) % 8));
            flipped = true;
          }
          if (!ForwardAll(upstream_fd, buf, n)) done = true;
          client_bytes += n;
          break;
        }
        case FaultMode::kDelay:
          std::this_thread::sleep_for(
              std::chrono::milliseconds(options_.delay_ms));
          [[fallthrough]];
        case FaultMode::kPass:
          if (!ForwardAll(upstream_fd, buf, n)) done = true;
          client_bytes += n;
          break;
      }
    }

    // Upstream -> client: relayed faithfully (except drop/hard-close,
    // which never get here or tear down first).
    if (!done && upstream_fd >= 0 &&
        (pfds[1].revents & (POLLIN | POLLHUP | POLLERR))) {
      ssize_t got;
      do {
        got = recv(upstream_fd, buf, sizeof(buf), 0);
      } while (got < 0 && errno == EINTR);
      if (got <= 0) break;
      if (mode == FaultMode::kDrop) continue;  // unreachable; for symmetry
      if (!ForwardAll(client_fd, buf, static_cast<size_t>(got))) break;
    }
  }

  close(client_fd);
  if (upstream_fd >= 0) close(upstream_fd);
}

}  // namespace net
}  // namespace robust_sampling
