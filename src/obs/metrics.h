#ifndef ROBUST_SAMPLING_OBS_METRICS_H_
#define ROBUST_SAMPLING_OBS_METRICS_H_

// ---------------------------------------------------------------------------
// Low-overhead runtime metrics: lock-free counters, gauges and log-bucketed
// latency histograms behind a process-global MetricRegistry.
//
// Design constraints, in order:
//  * Instrumented hot paths (per-batch pipeline publishes, per-Append wire
//    writes) must stay allocation-free and contention-free: counters and
//    histograms are striped into cache-line-padded per-thread cells (each
//    thread writes its own stripe with one relaxed fetch_add) and are
//    aggregated only at read time. Registry lookups (mutex + map) happen at
//    registration, never on the update path — call sites cache pointers.
//  * Compile-time escape hatch: configuring with -DRS_METRICS=OFF defines
//    RS_METRICS_OFF, which compiles every update to a no-op on an empty
//    type (no atomics, no clock reads, no statics with guards) while the
//    API keeps its shape so call sites build unchanged.
//  * No dependencies outside the standard library, so every layer —
//    core/, wire/, pipeline/, attacklab/ — may instrument freely.
//
// Exporters: ToJson() (a JSON array of per-metric rows, built on the
// harness MarkdownTable machinery so BENCH_*.json can embed it and
// tools/bench_diff.py can diff the numeric columns) and
// ToPrometheusText() (Prometheus text exposition format, for the future
// TCP collector tier). The metric catalog and naming convention live in
// docs/observability.md; the standard accessors in obs/catalog.h.
// ---------------------------------------------------------------------------

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#if defined(RS_METRICS_OFF)
#define RS_METRICS_ENABLED 0
#else
#define RS_METRICS_ENABLED 1
#endif

#if RS_METRICS_ENABLED
#include <bit>
#include <chrono>
#endif

namespace robust_sampling {

class MarkdownTable;  // harness/table.h — ToTable() builds one

namespace obs {

/// Optional single label attached to a metric instance (e.g. per sketch
/// kind or per shard). Instances sharing a name but differing in label are
/// distinct time series under one documented base name.
struct MetricLabel {
  std::string key;
  std::string value;
  bool empty() const { return key.empty(); }
};

/// Number of update stripes per counter/histogram. Each thread is assigned
/// a stripe round-robin on first touch, so up to kStripes threads update
/// without ever sharing a cache line; beyond that, threads share stripes
/// (still correct, briefly contended).
inline constexpr size_t kStripes = 16;

/// Histogram buckets are log2-spaced: bucket 0 holds value 0, bucket i
/// (1 <= i < kHistogramBuckets-1) holds values with bit_width == i (upper
/// bound 2^i - 1), and the last bucket is the +Inf overflow. 2^38 ns is
/// ~4.6 minutes — far past any in-process latency this repo measures.
inline constexpr size_t kHistogramBuckets = 40;

#if RS_METRICS_ENABLED

namespace internal {
/// This thread's stripe index (assigned on first use).
size_t ThreadStripe();
}  // namespace internal

/// Runtime kill switch, used by benches to measure instrumented vs
/// uninstrumented throughput in one binary (bench_t3's obs-off row). The
/// compile-time RS_METRICS=OFF hatch removes even the check.
void SetRuntimeEnabled(bool enabled);
bool RuntimeEnabled();

/// Monotonic nanoseconds (steady clock). Compiles to `return 0` under
/// RS_METRICS=OFF so manual `NowNanos()` spans vanish with the metrics.
inline uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Monotonically increasing event count. Update: one relaxed fetch_add on
/// this thread's stripe. Read: sum over stripes (racy-by-design snapshot;
/// exact once updaters quiesce).
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    if (!RuntimeEnabled()) return;
    cells_[internal::ThreadStripe()].v.fetch_add(n,
                                                 std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Cell& cell : cells_) {
      total += cell.v.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Cell {
    std::atomic<uint64_t> v{0};
  };
  Cell cells_[kStripes];
};

/// Last-write-wins instantaneous value, plus a monotone SetMax for
/// high-water marks (ring occupancy). Not striped: gauges are written at
/// coarse points (per batch at most), and a high-water mark needs one
/// authoritative cell.
class Gauge {
 public:
  void Set(int64_t v) {
    if (!RuntimeEnabled()) return;
    v_.store(v, std::memory_order_relaxed);
  }

  void Add(int64_t d) {
    if (!RuntimeEnabled()) return;
    v_.fetch_add(d, std::memory_order_relaxed);
  }

  /// Raises the gauge to `v` if `v` is larger (high-water mark).
  void SetMax(int64_t v) {
    if (!RuntimeEnabled()) return;
    int64_t cur = v_.load(std::memory_order_relaxed);
    while (v > cur &&
           !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  int64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Log2-bucketed histogram of non-negative values (latencies in ns, sizes
/// in bytes). Update: three relaxed fetch_adds on this thread's stripe.
class Histogram {
 public:
  void Observe(uint64_t value) {
    if (!RuntimeEnabled()) return;
    Stripe& stripe = stripes_[internal::ThreadStripe()];
    stripe.count.fetch_add(1, std::memory_order_relaxed);
    stripe.sum.fetch_add(value, std::memory_order_relaxed);
    stripe.buckets[BucketIndex(value)].fetch_add(1,
                                                 std::memory_order_relaxed);
  }

  struct Aggregate {
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t buckets[kHistogramBuckets] = {};

    /// Upper bound of the bucket where the cumulative count first reaches
    /// q * count (0 when empty). A log2-granular quantile estimate.
    uint64_t ApproxQuantile(double q) const;
    /// Upper bound of the highest non-empty bucket (0 when empty).
    uint64_t ApproxMax() const;
  };

  Aggregate Read() const {
    Aggregate agg;
    for (const Stripe& stripe : stripes_) {
      agg.count += stripe.count.load(std::memory_order_relaxed);
      agg.sum += stripe.sum.load(std::memory_order_relaxed);
      for (size_t b = 0; b < kHistogramBuckets; ++b) {
        agg.buckets[b] += stripe.buckets[b].load(std::memory_order_relaxed);
      }
    }
    return agg;
  }

  /// Inclusive upper bound of bucket i (2^i - 1); the last bucket is +Inf.
  static uint64_t BucketUpperBound(size_t i);

  static size_t BucketIndex(uint64_t value) {
    if (value == 0) return 0;
    const size_t width = static_cast<size_t>(std::bit_width(value));
    return width < kHistogramBuckets - 1 ? width : kHistogramBuckets - 1;
  }

 private:
  struct alignas(64) Stripe {
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum{0};
    std::atomic<uint64_t> buckets[kHistogramBuckets] = {};
  };
  Stripe stripes_[kStripes];
};

#else  // !RS_METRICS_ENABLED — every update is a no-op on an empty type.

inline void SetRuntimeEnabled(bool) {}
inline bool RuntimeEnabled() { return false; }
inline uint64_t NowNanos() { return 0; }

class Counter {
 public:
  void Increment(uint64_t = 1) {}
  uint64_t Value() const { return 0; }
};

class Gauge {
 public:
  void Set(int64_t) {}
  void Add(int64_t) {}
  void SetMax(int64_t) {}
  int64_t Value() const { return 0; }
};

class Histogram {
 public:
  void Observe(uint64_t) {}
  struct Aggregate {
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t buckets[kHistogramBuckets] = {};
    uint64_t ApproxQuantile(double) const { return 0; }
    uint64_t ApproxMax() const { return 0; }
  };
  Aggregate Read() const { return {}; }
};

#endif  // RS_METRICS_ENABLED

/// RAII latency span: records elapsed nanoseconds into `histogram` at
/// scope exit. Compiles away (no clock reads) under RS_METRICS=OFF.
class ScopedLatencyTimer {
 public:
#if RS_METRICS_ENABLED
  explicit ScopedLatencyTimer(Histogram& histogram)
      : histogram_(histogram), start_ns_(NowNanos()) {}
  ~ScopedLatencyTimer() { histogram_.Observe(NowNanos() - start_ns_); }

 private:
  Histogram& histogram_;
  uint64_t start_ns_;
#else
  explicit ScopedLatencyTimer(Histogram&) {}
#endif
  ScopedLatencyTimer(const ScopedLatencyTimer&) = delete;
  ScopedLatencyTimer& operator=(const ScopedLatencyTimer&) = delete;
};

/// Process-global metric registry. Get* registers on first use and returns
/// a pointer that stays valid for the process lifetime; repeated calls
/// with the same (name, label) return the same instance. Lookups take a
/// mutex — call once and cache the pointer on hot paths (obs/catalog.h
/// accessors do exactly that).
class MetricRegistry {
 public:
  static MetricRegistry& Global();

  Counter* GetCounter(const std::string& name, const std::string& help = "",
                      const MetricLabel& label = {});
  Gauge* GetGauge(const std::string& name, const std::string& help = "",
                  const MetricLabel& label = {});
  Histogram* GetHistogram(const std::string& name,
                          const std::string& help = "",
                          const MetricLabel& label = {});

  /// One row per registered metric, sorted by (name, label) so snapshots
  /// are deterministic. Columns: metric | type | value | count | p50 |
  /// p90 | p99 | max — counters/gauges fill `value`, histograms fill
  /// sum-in-`value` plus count and the log2-granular quantile estimates.
  MarkdownTable ToTable() const;

  /// ToTable() rendered as a JSON array of row objects (numeric cells
  /// unquoted) — the payload benches embed into BENCH_*.json under
  /// `"metrics"` when run with --metrics. "[]" under RS_METRICS=OFF.
  std::string ToJson() const;

  /// Prometheus text exposition format (# HELP/# TYPE lines, cumulative
  /// `_bucket{le=...}` histogram series). "" under RS_METRICS=OFF.
  std::string ToPrometheusText() const;

  /// Registered full names (label-qualified), sorted.
  std::vector<std::string> Names() const;

 private:
  MetricRegistry() = default;
#if RS_METRICS_ENABLED
  struct Impl;
  Impl* impl();  // lazily built, leaked on exit (threads may outlive main)
  std::atomic<Impl*> impl_{nullptr};
#endif
};

}  // namespace obs
}  // namespace robust_sampling

#endif  // ROBUST_SAMPLING_OBS_METRICS_H_
