#ifndef ROBUST_SAMPLING_OBS_ADMIN_SERVER_H_
#define ROBUST_SAMPLING_OBS_ADMIN_SERVER_H_

// ---------------------------------------------------------------------------
// Admin plane: a minimal dependency-free HTTP/1.0 server that makes the
// in-process observability state (metric registry, flight recorder, and
// whatever the embedding service registers) scrapeable while the process
// runs, instead of trapped until a --metrics dump at exit.
//
// One blocking accept thread serves one request per connection (HTTP/1.0,
// Connection: close) with socket deadlines on both directions, so a stalled
// scraper cannot wedge the plane for longer than the per-connection
// timeout. Responses go through wire::WriteAllFd with SIGPIPE masked per
// write, same as the shipping path.
//
// Built-in endpoints (all GET):
//   /metrics     Prometheus text exposition (MetricRegistry).
//   /healthz     "ok" — liveness.
//   /trace       flight-recorder dump + the last RecordError post-mortem.
//   /trace.json  chrome-trace JSON (load in Perfetto / chrome://tracing).
//
// Services add their own views with RegisterHandler ("/shippers" on
// Collector<T> is the first embedder). The server binds loopback only: it
// is an operator plane, not a public surface. Works identically under
// RS_METRICS=OFF — the exports are just empty. See docs/observability.md.
// ---------------------------------------------------------------------------

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>

namespace robust_sampling {
namespace obs {

struct AdminServerOptions {
  /// TCP port to bind on 127.0.0.1; 0 picks an ephemeral port (read it
  /// back with port() after Start).
  uint16_t port = 0;
  /// Read/write deadline per connection, so a stalled client cannot hold
  /// the single-threaded serve loop hostage.
  int io_timeout_ms = 2000;
  /// Accept-poll granularity; bounds how long Stop() waits for the accept
  /// thread to notice the stop flag.
  int idle_poll_ms = 50;
};

class AdminServer {
 public:
  /// A handler renders the current body for its path on every request.
  /// Called from the accept thread; must be safe to invoke concurrently
  /// with the embedding service's own threads.
  using Handler = std::function<std::string()>;

  explicit AdminServer(AdminServerOptions options = {});
  ~AdminServer();

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  /// Binds, listens, and starts the accept thread. Returns false (with a
  /// reason in *error when given) if the port cannot be bound.
  bool Start(std::string* error = nullptr);

  /// Stops the accept thread and closes the listening socket. Idempotent;
  /// also run by the destructor.
  void Stop();

  /// The bound port (resolves port=0 ephemeral binds); 0 before Start.
  uint16_t port() const { return port_.load(std::memory_order_acquire); }

  /// Registers (or replaces) `GET path` -> 200 with `content_type`. The
  /// built-in endpoints are registered at construction and can be
  /// overridden the same way.
  void RegisterHandler(const std::string& path, const std::string& content_type,
                       Handler handler);

 private:
  struct Endpoint {
    std::string content_type;
    Handler handler;
  };

  void AcceptLoop();
  void ServeConnection(int fd);

  AdminServerOptions options_;
  std::atomic<uint16_t> port_{0};
  int listen_fd_ = -1;
  std::atomic<bool> stop_{false};
  bool started_ = false;
  std::thread accept_thread_;

  std::mutex handlers_mu_;
  std::map<std::string, Endpoint> handlers_;
};

}  // namespace obs
}  // namespace robust_sampling

#endif  // ROBUST_SAMPLING_OBS_ADMIN_SERVER_H_
