#include "obs/flight_recorder.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <mutex>
#include <vector>

namespace robust_sampling {
namespace obs {

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* recorder = new FlightRecorder();
  return *recorder;
}

#if RS_METRICS_ENABLED

namespace {

struct ThreadRing {
  std::mutex mu;
  TraceEvent events[kFlightRecorderRingEvents];
  uint64_t recorded = 0;  // total ever; live slots = min(recorded, ring)
};

const char* KindName(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kSpanBegin:
      return "begin";
    case TraceEventKind::kSpanEnd:
      return "end";
    case TraceEventKind::kMark:
      return "mark";
    case TraceEventKind::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

struct FlightRecorder::Impl {
  std::atomic<uint64_t> next_seq{0};

  // Rings are created on a thread's first record and never destroyed (a
  // dump must be able to read events from threads that have exited), so
  // the thread_local below may hold a bare pointer safely.
  std::mutex rings_mu;
  std::vector<std::unique_ptr<ThreadRing>> rings;

  std::mutex hook_mu;
  std::function<void(const std::string&)> hook;
  std::atomic<bool> default_hook_fired{false};

  ThreadRing* ThisThreadRing() {
    thread_local ThreadRing* ring = nullptr;
    if (ring == nullptr) {
      auto fresh = std::make_unique<ThreadRing>();
      ring = fresh.get();
      std::lock_guard<std::mutex> lock(rings_mu);
      rings.push_back(std::move(fresh));
    }
    return ring;
  }
};

FlightRecorder::Impl* FlightRecorder::impl() {
  Impl* existing = impl_.load(std::memory_order_acquire);
  if (existing != nullptr) return existing;
  Impl* fresh = new Impl();
  if (impl_.compare_exchange_strong(existing, fresh,
                                    std::memory_order_acq_rel)) {
    return fresh;
  }
  delete fresh;
  return existing;
}

void FlightRecorder::Record(TraceEventKind kind, const char* category,
                            std::string_view detail, uint64_t arg) {
  if (!RuntimeEnabled()) return;
  Impl* state = impl();
  ThreadRing* ring = state->ThisThreadRing();
  const uint64_t seq =
      state->next_seq.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(ring->mu);
  TraceEvent& event =
      ring->events[ring->recorded % kFlightRecorderRingEvents];
  event.seq = seq;
  event.ns = NowNanos();
  event.kind = kind;
  event.category = category;
  const size_t n = detail.size() < sizeof(event.detail) - 1
                       ? detail.size()
                       : sizeof(event.detail) - 1;
  detail.copy(event.detail, n);
  event.detail[n] = '\0';
  event.arg = arg;
  ++ring->recorded;
}

std::string FlightRecorder::Dump() const {
  Impl* state = const_cast<FlightRecorder*>(this)->impl();
  std::vector<TraceEvent> events;
  {
    std::lock_guard<std::mutex> rings_lock(state->rings_mu);
    for (const auto& ring : state->rings) {
      std::lock_guard<std::mutex> ring_lock(ring->mu);
      const uint64_t live =
          std::min<uint64_t>(ring->recorded, kFlightRecorderRingEvents);
      for (uint64_t i = 0; i < live; ++i) events.push_back(ring->events[i]);
    }
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.seq < b.seq;
            });
  std::string out = "--- flight recorder dump (" +
                    std::to_string(events.size()) + " events) ---\n";
  for (const TraceEvent& event : events) {
    char line[224];
    std::snprintf(line, sizeof(line), "[%8llu] %14llu ns %-9s %-10s %s",
                  static_cast<unsigned long long>(event.seq),
                  static_cast<unsigned long long>(event.ns),
                  KindName(event.kind), event.category, event.detail);
    out += line;
    if (event.arg != 0) {
      out += " (arg=" + std::to_string(event.arg) + ")";
    }
    out += "\n";
  }
  return out;
}

void FlightRecorder::RecordError(const char* category,
                                 std::string_view detail, uint64_t arg) {
  if (!RuntimeEnabled()) return;
  Record(TraceEventKind::kError, category, detail, arg);
  Impl* state = impl();
  std::function<void(const std::string&)> hook;
  {
    std::lock_guard<std::mutex> lock(state->hook_mu);
    hook = state->hook;
  }
  if (hook) {
    hook(Dump());
  } else if (!state->default_hook_fired.exchange(true)) {
    const std::string dump = Dump();
    std::fputs(dump.c_str(), stderr);
  }
}

void FlightRecorder::SetErrorHook(
    std::function<void(const std::string&)> hook) {
  Impl* state = impl();
  std::lock_guard<std::mutex> lock(state->hook_mu);
  state->hook = std::move(hook);
}

#else  // !RS_METRICS_ENABLED

void FlightRecorder::Record(TraceEventKind, const char*, std::string_view,
                            uint64_t) {}
std::string FlightRecorder::Dump() const { return ""; }
void FlightRecorder::RecordError(const char*, std::string_view, uint64_t) {}
void FlightRecorder::SetErrorHook(std::function<void(const std::string&)>) {}

#endif  // RS_METRICS_ENABLED

}  // namespace obs
}  // namespace robust_sampling
