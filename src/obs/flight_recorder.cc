#include "obs/flight_recorder.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <mutex>
#include <vector>

namespace robust_sampling {
namespace obs {

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* recorder = new FlightRecorder();
  return *recorder;
}

#if RS_METRICS_ENABLED

namespace {

struct ThreadRing {
  std::mutex mu;
  TraceEvent events[kFlightRecorderRingEvents];
  uint64_t recorded = 0;  // total ever; live slots = min(recorded, ring)
  uint32_t id = 0;        // dense per-ring id, assigned at creation
};

const char* KindName(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kSpanBegin:
      return "begin";
    case TraceEventKind::kSpanEnd:
      return "end";
    case TraceEventKind::kMark:
      return "mark";
    case TraceEventKind::kError:
      return "ERROR";
  }
  return "?";
}

// chrome://tracing phase letters: spans pair up as B/E, everything else is
// an instant.
const char* PhaseName(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kSpanBegin:
      return "B";
    case TraceEventKind::kSpanEnd:
      return "E";
    case TraceEventKind::kMark:
    case TraceEventKind::kError:
      return "i";
  }
  return "i";
}

void AppendJsonEscaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

struct FlightRecorder::Impl {
  std::atomic<uint64_t> next_seq{0};

  // Rings are created on a thread's first record and never destroyed (a
  // dump must be able to read events from threads that have exited), so
  // the thread_local below may hold a bare pointer safely.
  std::mutex rings_mu;
  std::vector<std::unique_ptr<ThreadRing>> rings;

  std::mutex hook_mu;
  std::function<void(const std::string&)> hook;
  std::atomic<bool> default_hook_fired{false};

  // Most recent RecordError() dump, kept so the admin plane can serve the
  // post-mortem after the print-once default hook has already fired.
  mutable std::mutex last_error_mu;
  std::string last_error_dump;

  ThreadRing* ThisThreadRing() {
    thread_local ThreadRing* ring = nullptr;
    if (ring == nullptr) {
      auto fresh = std::make_unique<ThreadRing>();
      ring = fresh.get();
      std::lock_guard<std::mutex> lock(rings_mu);
      ring->id = static_cast<uint32_t>(rings.size() + 1);
      rings.push_back(std::move(fresh));
    }
    return ring;
  }

  /// Every ring's surviving events, merged and sorted by global seq.
  std::vector<TraceEvent> Snapshot();
};

FlightRecorder::Impl* FlightRecorder::impl() {
  Impl* existing = impl_.load(std::memory_order_acquire);
  if (existing != nullptr) return existing;
  Impl* fresh = new Impl();
  if (impl_.compare_exchange_strong(existing, fresh,
                                    std::memory_order_acq_rel)) {
    return fresh;
  }
  delete fresh;
  return existing;
}

void FlightRecorder::Record(TraceEventKind kind, const char* category,
                            std::string_view detail, uint64_t arg) {
  if (!RuntimeEnabled()) return;
  Impl* state = impl();
  ThreadRing* ring = state->ThisThreadRing();
  const uint64_t seq =
      state->next_seq.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(ring->mu);
  TraceEvent& event =
      ring->events[ring->recorded % kFlightRecorderRingEvents];
  event.seq = seq;
  event.ns = NowNanos();
  event.tid = ring->id;
  event.kind = kind;
  event.category = category;
  const size_t n = detail.size() < sizeof(event.detail) - 1
                       ? detail.size()
                       : sizeof(event.detail) - 1;
  detail.copy(event.detail, n);
  event.detail[n] = '\0';
  event.arg = arg;
  ++ring->recorded;
}

std::vector<TraceEvent> FlightRecorder::Impl::Snapshot() {
  std::vector<TraceEvent> events;
  {
    std::lock_guard<std::mutex> rings_lock(rings_mu);
    for (const auto& ring : rings) {
      std::lock_guard<std::mutex> ring_lock(ring->mu);
      const uint64_t live =
          std::min<uint64_t>(ring->recorded, kFlightRecorderRingEvents);
      for (uint64_t i = 0; i < live; ++i) events.push_back(ring->events[i]);
    }
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.seq < b.seq;
            });
  return events;
}

std::string FlightRecorder::Dump() const {
  Impl* state = const_cast<FlightRecorder*>(this)->impl();
  const std::vector<TraceEvent> events = state->Snapshot();
  std::string out = "--- flight recorder dump (" +
                    std::to_string(events.size()) + " events) ---\n";
  for (const TraceEvent& event : events) {
    char line[224];
    std::snprintf(line, sizeof(line), "[%8llu] %14llu ns %-9s %-10s %s",
                  static_cast<unsigned long long>(event.seq),
                  static_cast<unsigned long long>(event.ns),
                  KindName(event.kind), event.category, event.detail);
    out += line;
    if (event.arg != 0) {
      out += " (arg=" + std::to_string(event.arg) + ")";
    }
    out += "\n";
  }
  return out;
}

std::string FlightRecorder::DumpChromeTraceJson() const {
  Impl* state = const_cast<FlightRecorder*>(this)->impl();
  const std::vector<TraceEvent> events = state->Snapshot();
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& event : events) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"";
    AppendJsonEscaped(out, event.detail);
    out += "\",\"cat\":\"";
    AppendJsonEscaped(out, event.category);
    out += "\",\"ph\":\"";
    out += PhaseName(event.kind);
    out += "\"";
    if (event.kind == TraceEventKind::kMark ||
        event.kind == TraceEventKind::kError) {
      out += ",\"s\":\"t\"";  // instant scope: thread
    }
    // ts is microseconds by convention; keep sub-µs precision as a decimal.
    char ts[64];
    std::snprintf(ts, sizeof(ts), ",\"ts\":%llu.%03llu",
                  static_cast<unsigned long long>(event.ns / 1000),
                  static_cast<unsigned long long>(event.ns % 1000));
    out += ts;
    out += ",\"pid\":1,\"tid\":" + std::to_string(event.tid);
    out += ",\"args\":{\"seq\":" + std::to_string(event.seq);
    if (event.kind == TraceEventKind::kError) {
      out += ",\"error\":true";
    }
    if (event.arg != 0) {
      out += ",\"arg\":" + std::to_string(event.arg);
    }
    out += "}}";
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

std::string FlightRecorder::LastErrorDump() const {
  Impl* state = const_cast<FlightRecorder*>(this)->impl();
  std::lock_guard<std::mutex> lock(state->last_error_mu);
  return state->last_error_dump;
}

void FlightRecorder::RecordError(const char* category,
                                 std::string_view detail, uint64_t arg) {
  if (!RuntimeEnabled()) return;
  Record(TraceEventKind::kError, category, detail, arg);
  Impl* state = impl();
  const std::string dump = Dump();
  {
    std::lock_guard<std::mutex> lock(state->last_error_mu);
    state->last_error_dump = dump;
  }
  std::function<void(const std::string&)> hook;
  {
    std::lock_guard<std::mutex> lock(state->hook_mu);
    hook = state->hook;
  }
  if (hook) {
    hook(dump);
  } else if (!state->default_hook_fired.exchange(true)) {
    std::fputs(dump.c_str(), stderr);
  }
}

void FlightRecorder::SetErrorHook(
    std::function<void(const std::string&)> hook) {
  Impl* state = impl();
  std::lock_guard<std::mutex> lock(state->hook_mu);
  state->hook = std::move(hook);
}

#else  // !RS_METRICS_ENABLED

void FlightRecorder::Record(TraceEventKind, const char*, std::string_view,
                            uint64_t) {}
std::string FlightRecorder::Dump() const { return ""; }
std::string FlightRecorder::LastErrorDump() const { return ""; }
std::string FlightRecorder::DumpChromeTraceJson() const {
  return "{\"traceEvents\":[]}";
}
void FlightRecorder::RecordError(const char*, std::string_view, uint64_t) {}
void FlightRecorder::SetErrorHook(std::function<void(const std::string&)>) {}

#endif  // RS_METRICS_ENABLED

}  // namespace obs
}  // namespace robust_sampling
