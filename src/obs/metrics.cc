#include "obs/metrics.h"

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>
#include <utility>

#include "harness/table.h"

namespace robust_sampling {
namespace obs {

MetricRegistry& MetricRegistry::Global() {
  static MetricRegistry* registry = new MetricRegistry();
  return *registry;
}

#if RS_METRICS_ENABLED

namespace internal {

namespace {
size_t AssignStripe() {
  static std::atomic<size_t> next{0};
  return next.fetch_add(1, std::memory_order_relaxed) % kStripes;
}
}  // namespace

size_t ThreadStripe() {
  thread_local const size_t stripe = AssignStripe();
  return stripe;
}

}  // namespace internal

namespace {
std::atomic<bool> g_runtime_enabled{true};
}  // namespace

void SetRuntimeEnabled(bool enabled) {
  g_runtime_enabled.store(enabled, std::memory_order_relaxed);
}

bool RuntimeEnabled() {
  return g_runtime_enabled.load(std::memory_order_relaxed);
}

uint64_t Histogram::BucketUpperBound(size_t i) {
  if (i == 0) return 0;
  return (uint64_t{1} << i) - 1;
}

uint64_t Histogram::Aggregate::ApproxQuantile(double q) const {
  if (count == 0) return 0;
  const double target = q * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (size_t b = 0; b < kHistogramBuckets; ++b) {
    cumulative += buckets[b];
    if (static_cast<double>(cumulative) >= target && cumulative > 0) {
      return Histogram::BucketUpperBound(b);
    }
  }
  return Histogram::BucketUpperBound(kHistogramBuckets - 1);
}

uint64_t Histogram::Aggregate::ApproxMax() const {
  for (size_t b = kHistogramBuckets; b-- > 0;) {
    if (buckets[b] > 0) return Histogram::BucketUpperBound(b);
  }
  return 0;
}

namespace {

enum class MetricType { kCounter, kGauge, kHistogram };

struct Entry {
  std::string name;
  MetricLabel label;
  std::string help;
  MetricType type;
  std::unique_ptr<Counter> counter;
  std::unique_ptr<Gauge> gauge;
  std::unique_ptr<Histogram> histogram;
};

/// Label-qualified registry key; doubles as the stable sort order of every
/// export (snapshot determinism).
std::string FullName(const std::string& name, const MetricLabel& label) {
  if (label.empty()) return name;
  return name + "{" + label.key + "=\"" + label.value + "\"}";
}

const char* TypeName(MetricType type) {
  switch (type) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "?";
}

// Prometheus exposition-format escaping: label values escape backslash,
// double-quote, and line-feed; HELP text escapes backslash and line-feed.
std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string EscapeHelpText(const std::string& help) {
  std::string out;
  out.reserve(help.size());
  for (const char c : help) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

struct MetricRegistry::Impl {
  mutable std::mutex mu;
  std::map<std::string, Entry> entries;  // key: FullName

  Entry& GetOrCreate(const std::string& name, const std::string& help,
                     const MetricLabel& label, MetricType type) {
    std::lock_guard<std::mutex> lock(mu);
    auto [it, inserted] = entries.try_emplace(FullName(name, label));
    Entry& entry = it->second;
    if (inserted) {
      entry.name = name;
      entry.label = label;
      entry.help = help;
      entry.type = type;
      switch (type) {
        case MetricType::kCounter:
          entry.counter = std::make_unique<Counter>();
          break;
        case MetricType::kGauge:
          entry.gauge = std::make_unique<Gauge>();
          break;
        case MetricType::kHistogram:
          entry.histogram = std::make_unique<Histogram>();
          break;
      }
    }
    return entry;
  }
};

MetricRegistry::Impl* MetricRegistry::impl() {
  Impl* existing = impl_.load(std::memory_order_acquire);
  if (existing != nullptr) return existing;
  Impl* fresh = new Impl();
  if (impl_.compare_exchange_strong(existing, fresh,
                                    std::memory_order_acq_rel)) {
    return fresh;
  }
  delete fresh;
  return existing;
}

Counter* MetricRegistry::GetCounter(const std::string& name,
                                    const std::string& help,
                                    const MetricLabel& label) {
  return impl()->GetOrCreate(name, help, label, MetricType::kCounter)
      .counter.get();
}

Gauge* MetricRegistry::GetGauge(const std::string& name,
                                const std::string& help,
                                const MetricLabel& label) {
  return impl()->GetOrCreate(name, help, label, MetricType::kGauge)
      .gauge.get();
}

Histogram* MetricRegistry::GetHistogram(const std::string& name,
                                        const std::string& help,
                                        const MetricLabel& label) {
  return impl()->GetOrCreate(name, help, label, MetricType::kHistogram)
      .histogram.get();
}

MarkdownTable MetricRegistry::ToTable() const {
  MarkdownTable table(
      {"metric", "type", "value", "count", "p50", "p90", "p99", "max"});
  Impl* impl = const_cast<MetricRegistry*>(this)->impl();
  std::lock_guard<std::mutex> lock(impl->mu);
  for (const auto& [key, entry] : impl->entries) {
    switch (entry.type) {
      case MetricType::kCounter:
        table.AddRow({key, "counter", std::to_string(entry.counter->Value()),
                      "-", "-", "-", "-", "-"});
        break;
      case MetricType::kGauge:
        table.AddRow({key, "gauge", std::to_string(entry.gauge->Value()),
                      "-", "-", "-", "-", "-"});
        break;
      case MetricType::kHistogram: {
        const Histogram::Aggregate agg = entry.histogram->Read();
        // `value` carries the sum so every row type has its headline
        // number in one diffable column.
        table.AddRow({key, "histogram", std::to_string(agg.sum),
                      std::to_string(agg.count),
                      std::to_string(agg.ApproxQuantile(0.50)),
                      std::to_string(agg.ApproxQuantile(0.90)),
                      std::to_string(agg.ApproxQuantile(0.99)),
                      std::to_string(agg.ApproxMax())});
        break;
      }
    }
  }
  return table;
}

std::string MetricRegistry::ToJson() const { return ToTable().ToJson(); }

std::string MetricRegistry::ToPrometheusText() const {
  std::string out;
  Impl* impl = const_cast<MetricRegistry*>(this)->impl();
  std::lock_guard<std::mutex> lock(impl->mu);
  // One # HELP/# TYPE block per base name (entries is sorted by FullName,
  // so all labeled instances of a base name are contiguous).
  std::string last_base;
  for (const auto& [key, entry] : impl->entries) {
    if (entry.name != last_base) {
      last_base = entry.name;
      if (!entry.help.empty()) {
        out += "# HELP " + entry.name + " " + EscapeHelpText(entry.help) +
               "\n";
      }
      out += "# TYPE " + entry.name + " " + TypeName(entry.type) + "\n";
    }
    const std::string label_pair =
        entry.label.empty()
            ? ""
            : entry.label.key + "=\"" + EscapeLabelValue(entry.label.value) +
                  "\"";
    auto series = [&](const std::string& suffix, const std::string& extra,
                      uint64_t value) {
      out += entry.name + suffix;
      if (!label_pair.empty() || !extra.empty()) {
        out += "{" + label_pair;
        if (!label_pair.empty() && !extra.empty()) out += ",";
        out += extra + "}";
      }
      out += " " + std::to_string(value) + "\n";
    };
    switch (entry.type) {
      case MetricType::kCounter:
        series("", "", entry.counter->Value());
        break;
      case MetricType::kGauge:
        series("", "", static_cast<uint64_t>(entry.gauge->Value()));
        break;
      case MetricType::kHistogram: {
        const Histogram::Aggregate agg = entry.histogram->Read();
        uint64_t cumulative = 0;
        for (size_t b = 0; b < kHistogramBuckets; ++b) {
          cumulative += agg.buckets[b];
          const std::string le =
              b == kHistogramBuckets - 1
                  ? "+Inf"
                  : std::to_string(Histogram::BucketUpperBound(b));
          series("_bucket", "le=\"" + le + "\"", cumulative);
        }
        series("_sum", "", agg.sum);
        series("_count", "", agg.count);
        break;
      }
    }
  }
  return out;
}

std::vector<std::string> MetricRegistry::Names() const {
  std::vector<std::string> names;
  Impl* impl = const_cast<MetricRegistry*>(this)->impl();
  std::lock_guard<std::mutex> lock(impl->mu);
  names.reserve(impl->entries.size());
  for (const auto& [key, entry] : impl->entries) names.push_back(key);
  return names;
}

#else  // !RS_METRICS_ENABLED

namespace {
Counter g_dummy_counter;
Gauge g_dummy_gauge;
Histogram g_dummy_histogram;
}  // namespace

Counter* MetricRegistry::GetCounter(const std::string&, const std::string&,
                                    const MetricLabel&) {
  return &g_dummy_counter;
}

Gauge* MetricRegistry::GetGauge(const std::string&, const std::string&,
                                const MetricLabel&) {
  return &g_dummy_gauge;
}

Histogram* MetricRegistry::GetHistogram(const std::string&,
                                        const std::string&,
                                        const MetricLabel&) {
  return &g_dummy_histogram;
}

MarkdownTable MetricRegistry::ToTable() const {
  return MarkdownTable(
      {"metric", "type", "value", "count", "p50", "p90", "p99", "max"});
}

std::string MetricRegistry::ToJson() const { return "[]"; }

std::string MetricRegistry::ToPrometheusText() const { return ""; }

std::vector<std::string> MetricRegistry::Names() const { return {}; }

#endif  // RS_METRICS_ENABLED

}  // namespace obs
}  // namespace robust_sampling
