#include "obs/catalog.h"

#include <vector>

namespace robust_sampling {
namespace obs {

namespace {

// One row per metric; the accessors below must register with exactly
// these names/helps (docs_drift_test keeps docs/observability.md in step
// with this table).
constexpr MetricDescriptor kCatalog[] = {
    {"rs_pipeline_ingest_batches_total", "counter", "",
     "Batches accepted by ShardedPipeline Ingest/IngestBorrowed"},
    {"rs_pipeline_ingest_elements_total", "counter", "",
     "Elements accepted by ShardedPipeline Ingest/IngestBorrowed"},
    {"rs_pipeline_rejected_batches_total", "counter", "",
     "Batches rejected as oversized (max_batch_elements); never queued"},
    {"rs_pipeline_backpressure_stalls_total", "counter", "",
     "Publishes that blocked on a full shard ring before succeeding"},
    {"rs_pipeline_shard_elements_total", "counter", "shard",
     "Elements folded into this shard's sketch"},
    {"rs_pipeline_producer_elements_total", "counter", "producer",
     "Elements accepted through this producer handle"},
    {"rs_pipeline_ring_occupancy_hwm", "gauge", "",
     "High-water mark of shard ring occupancy (batch slices queued)"},
    {"rs_pipeline_partition_ns", "histogram", "",
     "Hash-partition pass latency per batch (hash, bucket, scatter)"},
    {"rs_pipeline_flush_ns", "histogram", "",
     "ShardedPipeline Flush latency (wait for all workers idle)"},
    {"rs_pipeline_checkpoint_ns", "histogram", "",
     "Checkpoint end-to-end duration (flush + serialize + write + rename)"},
    {"rs_pipeline_checkpoint_bytes", "histogram", "",
     "Checkpoint body size in bytes"},
    {"rs_pipeline_restore_ns", "histogram", "",
     "ShardedPipeline Restore end-to-end duration"},
    {"rs_wire_bytes_out_total", "counter", "",
     "Bytes written through wire file/fd sinks"},
    {"rs_wire_bytes_in_total", "counter", "",
     "Bytes read through wire file/fd sources"},
    {"rs_wire_frame_failures_total", "counter", "",
     "Framed-body reads rejected (magic/version/length/truncation/checksum)"},
    {"rs_wire_fsync_ns", "histogram", "",
     "fsync duration inside FileSink SyncAndClose (checkpoint durability)"},
    {"rs_wire_serialize_ns", "histogram", "kind",
     "Snapshot serialize latency per sketch kind"},
    {"rs_wire_deserialize_ns", "histogram", "kind",
     "Snapshot revive latency per sketch kind"},
    {"rs_wire_snapshot_bytes", "histogram", "kind",
     "Serialized snapshot size per sketch kind"},
    {"rs_wire_buffer_flushes_total", "counter", "",
     "BufferedSink windows forwarded to the wrapped sink (batched writes)"},
    {"rs_wire_compress_ratio", "histogram", "",
     "Compressed framed-body size as percent of raw (zstd frames only)"},
    {"rs_net_reconnects_total", "counter", "",
     "Shipper reconnect attempts (successful or not) after a lost link"},
    {"rs_net_backoff_wait_ns", "histogram", "",
     "Backoff sleep before each reconnect attempt (exponential + jitter)"},
    {"rs_net_ship_rtt_ns", "histogram", "",
     "Snapshot ship round-trip: send frame to collector ack received"},
    {"rs_net_snapshots_shipped_total", "counter", "",
     "Snapshots acknowledged by the collector"},
    {"rs_net_snapshots_superseded_total", "counter", "",
     "Snapshots dropped from the keep-latest outbox by a newer one"},
    {"rs_net_ship_failures_total", "counter", "",
     "Ship attempts that failed (send error, bad/missing ack)"},
    {"rs_net_collector_merge_ns", "histogram", "",
     "Collector latency to revive a snapshot and rebuild the merged view"},
    {"rs_net_collector_snapshots_total", "counter", "",
     "Snapshots the collector accepted and merged"},
    {"rs_net_collector_rejects_total", "counter", "",
     "Frames or snapshots the collector rejected as malformed (fail closed)"},
    {"rs_net_queries_total", "counter", "",
     "Queries served by the collector over shipper/client connections"},
    {"rs_net_checkpoint_ns", "histogram", "",
     "Collector checkpoint end-to-end duration (serialize, write, rename)"},
    {"rs_net_staleness_ns", "gauge", "shipper",
     "Wall-clock age of this shipper's latest merged snapshot"},
    {"rs_net_staleness_seq_lag", "gauge", "shipper",
     "Snapshots superseded between the two most recent merged ships"},
    {"rs_net_staleness_elements_behind", "gauge", "shipper",
     "Watermark delta between the previous and latest merged snapshots"},
    {"rs_net_e2e_produce_merge_ns", "histogram", "",
     "Produce-to-merge latency (collector merge time minus produced_ns)"},
    {"rs_attacklab_trials_total", "counter", "",
     "AttackLab game trials played"},
    {"rs_attacklab_trial_ns", "histogram", "",
     "Wall time per AttackLab game trial"},
    {"rs_attacklab_adversary_accepted_total", "counter", "",
     "Adversary budget consumed: elements the sampler ever accepted"},
};

const MetricDescriptor& Find(const char* name) {
  for (const MetricDescriptor& d : kCatalog) {
    if (std::string(d.name) == name) return d;
  }
  // Unreachable for catalog-declared accessors; returning the first entry
  // keeps this function total without pulling in check.h.
  return kCatalog[0];
}

Counter& CatalogCounter(const char* name) {
  const MetricDescriptor& d = Find(name);
  return *MetricRegistry::Global().GetCounter(d.name, d.help);
}

Gauge& CatalogGauge(const char* name) {
  const MetricDescriptor& d = Find(name);
  return *MetricRegistry::Global().GetGauge(d.name, d.help);
}

Histogram& CatalogHistogram(const char* name) {
  const MetricDescriptor& d = Find(name);
  return *MetricRegistry::Global().GetHistogram(d.name, d.help);
}

Histogram& LabeledHistogram(const char* name, const std::string& value) {
  const MetricDescriptor& d = Find(name);
  return *MetricRegistry::Global().GetHistogram(d.name, d.help,
                                                {d.label_key, value});
}

}  // namespace

const std::vector<MetricDescriptor>& AllMetricDescriptors() {
  static const std::vector<MetricDescriptor> catalog(
      std::begin(kCatalog), std::end(kCatalog));
  return catalog;
}

// Unlabeled accessors cache the registry pointer in a function-local
// static: after first use the hot path costs one guard check.

Counter& PipelineIngestBatches() {
  static Counter& c = CatalogCounter("rs_pipeline_ingest_batches_total");
  return c;
}

Counter& PipelineIngestElements() {
  static Counter& c = CatalogCounter("rs_pipeline_ingest_elements_total");
  return c;
}

Counter& PipelineRejectedBatches() {
  static Counter& c = CatalogCounter("rs_pipeline_rejected_batches_total");
  return c;
}

Counter& PipelineBackpressureStalls() {
  static Counter& c =
      CatalogCounter("rs_pipeline_backpressure_stalls_total");
  return c;
}

Counter& PipelineShardElements(size_t shard) {
  const MetricDescriptor& d = Find("rs_pipeline_shard_elements_total");
  return *MetricRegistry::Global().GetCounter(
      d.name, d.help, {d.label_key, std::to_string(shard)});
}

Counter& PipelineProducerElements(size_t producer) {
  const MetricDescriptor& d = Find("rs_pipeline_producer_elements_total");
  return *MetricRegistry::Global().GetCounter(
      d.name, d.help, {d.label_key, std::to_string(producer)});
}

Gauge& PipelineRingOccupancyHwm() {
  static Gauge& g = CatalogGauge("rs_pipeline_ring_occupancy_hwm");
  return g;
}

Histogram& PipelinePartitionNs() {
  static Histogram& h = CatalogHistogram("rs_pipeline_partition_ns");
  return h;
}

Histogram& PipelineFlushNs() {
  static Histogram& h = CatalogHistogram("rs_pipeline_flush_ns");
  return h;
}

Histogram& PipelineCheckpointNs() {
  static Histogram& h = CatalogHistogram("rs_pipeline_checkpoint_ns");
  return h;
}

Histogram& PipelineCheckpointBytes() {
  static Histogram& h = CatalogHistogram("rs_pipeline_checkpoint_bytes");
  return h;
}

Histogram& PipelineRestoreNs() {
  static Histogram& h = CatalogHistogram("rs_pipeline_restore_ns");
  return h;
}

Counter& WireBytesOut() {
  static Counter& c = CatalogCounter("rs_wire_bytes_out_total");
  return c;
}

Counter& WireBytesIn() {
  static Counter& c = CatalogCounter("rs_wire_bytes_in_total");
  return c;
}

Counter& WireFrameFailures() {
  static Counter& c = CatalogCounter("rs_wire_frame_failures_total");
  return c;
}

Histogram& WireFsyncNs() {
  static Histogram& h = CatalogHistogram("rs_wire_fsync_ns");
  return h;
}

Histogram& WireSerializeNs(const std::string& kind) {
  return LabeledHistogram("rs_wire_serialize_ns", kind);
}

Histogram& WireDeserializeNs(const std::string& kind) {
  return LabeledHistogram("rs_wire_deserialize_ns", kind);
}

Histogram& WireSnapshotBytes(const std::string& kind) {
  return LabeledHistogram("rs_wire_snapshot_bytes", kind);
}

Counter& WireBufferFlushes() {
  static Counter& c = CatalogCounter("rs_wire_buffer_flushes_total");
  return c;
}

Histogram& WireCompressRatio() {
  static Histogram& h = CatalogHistogram("rs_wire_compress_ratio");
  return h;
}

Counter& NetReconnects() {
  static Counter& c = CatalogCounter("rs_net_reconnects_total");
  return c;
}

Histogram& NetBackoffWaitNs() {
  static Histogram& h = CatalogHistogram("rs_net_backoff_wait_ns");
  return h;
}

Histogram& NetShipRttNs() {
  static Histogram& h = CatalogHistogram("rs_net_ship_rtt_ns");
  return h;
}

Counter& NetSnapshotsShipped() {
  static Counter& c = CatalogCounter("rs_net_snapshots_shipped_total");
  return c;
}

Counter& NetSnapshotsSuperseded() {
  static Counter& c = CatalogCounter("rs_net_snapshots_superseded_total");
  return c;
}

Counter& NetShipFailures() {
  static Counter& c = CatalogCounter("rs_net_ship_failures_total");
  return c;
}

Histogram& NetCollectorMergeNs() {
  static Histogram& h = CatalogHistogram("rs_net_collector_merge_ns");
  return h;
}

Counter& NetCollectorSnapshots() {
  static Counter& c = CatalogCounter("rs_net_collector_snapshots_total");
  return c;
}

Counter& NetCollectorRejects() {
  static Counter& c = CatalogCounter("rs_net_collector_rejects_total");
  return c;
}

Counter& NetQueries() {
  static Counter& c = CatalogCounter("rs_net_queries_total");
  return c;
}

Histogram& NetCheckpointNs() {
  static Histogram& h = CatalogHistogram("rs_net_checkpoint_ns");
  return h;
}

Gauge& NetStalenessNs(uint64_t shipper) {
  const MetricDescriptor& d = Find("rs_net_staleness_ns");
  return *MetricRegistry::Global().GetGauge(
      d.name, d.help, {d.label_key, std::to_string(shipper)});
}

Gauge& NetStalenessSeqLag(uint64_t shipper) {
  const MetricDescriptor& d = Find("rs_net_staleness_seq_lag");
  return *MetricRegistry::Global().GetGauge(
      d.name, d.help, {d.label_key, std::to_string(shipper)});
}

Gauge& NetStalenessElementsBehind(uint64_t shipper) {
  const MetricDescriptor& d = Find("rs_net_staleness_elements_behind");
  return *MetricRegistry::Global().GetGauge(
      d.name, d.help, {d.label_key, std::to_string(shipper)});
}

Histogram& NetE2eProduceMergeNs() {
  static Histogram& h = CatalogHistogram("rs_net_e2e_produce_merge_ns");
  return h;
}

Counter& AttacklabTrials() {
  static Counter& c = CatalogCounter("rs_attacklab_trials_total");
  return c;
}

Histogram& AttacklabTrialNs() {
  static Histogram& h = CatalogHistogram("rs_attacklab_trial_ns");
  return h;
}

Counter& AttacklabAdversaryAccepted() {
  static Counter& c =
      CatalogCounter("rs_attacklab_adversary_accepted_total");
  return c;
}

}  // namespace obs
}  // namespace robust_sampling
