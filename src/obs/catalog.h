#ifndef ROBUST_SAMPLING_OBS_CATALOG_H_
#define ROBUST_SAMPLING_OBS_CATALOG_H_

// ---------------------------------------------------------------------------
// The standard metric catalog: every metric the instrumented layers emit,
// declared in one place so (a) hot call sites get a cached reference via a
// function-local static instead of a registry lookup, and (b) the full set
// of names is enumerable without having exercised the code paths that
// register them — tests/docs_drift_test.cc walks AllMetricDescriptors()
// and fails if any name is missing from docs/observability.md.
//
// Naming convention: rs_<layer>_<what>[_<unit>], with `_total` for
// counters, `_ns` for nanosecond histograms, `_bytes` for size histograms
// and `_hwm` for high-water-mark gauges. Per-instance dimensions (sketch
// kind, shard index) are labels on a documented base name, never new
// names.
// ---------------------------------------------------------------------------

#include <cstddef>
#include <cstdint>
#include <string>

#include "obs/metrics.h"

namespace robust_sampling {
namespace obs {

struct MetricDescriptor {
  const char* name;
  const char* type;  // "counter" | "gauge" | "histogram"
  const char* label_key;  // "" when unlabeled
  const char* help;
};

/// Every standard metric, in catalog order. Available (and identical)
/// under RS_METRICS=OFF — it is static data, not registry state.
const std::vector<MetricDescriptor>& AllMetricDescriptors();

// --- pipeline (src/pipeline/) --------------------------------------------

Counter& PipelineIngestBatches();
Counter& PipelineIngestElements();
/// Batches refused by Ingest/IngestBorrowed (oversized vs
/// max_batch_elements) — distinct from backpressure, which delays but
/// never drops.
Counter& PipelineRejectedBatches();
/// Publishes that found a shard ring full and blocked (backpressure).
Counter& PipelineBackpressureStalls();
/// Elements folded into shard `shard`'s sketch (label: shard index).
Counter& PipelineShardElements(size_t shard);
/// Elements accepted through producer handle `producer` (label: producer
/// index) — the per-column view of the P x S fan-in matrix.
Counter& PipelineProducerElements(size_t producer);
Gauge& PipelineRingOccupancyHwm();
/// Hash-partition pass latency per batch (hash + bucket + scatter +
/// publish, both the vectorized and per-element paths).
Histogram& PipelinePartitionNs();
Histogram& PipelineFlushNs();
Histogram& PipelineCheckpointNs();
Histogram& PipelineCheckpointBytes();
Histogram& PipelineRestoreNs();

// --- wire (src/wire/) ----------------------------------------------------

Counter& WireBytesOut();
Counter& WireBytesIn();
/// Framed-body reads rejected (bad magic/version/length, truncation,
/// checksum mismatch). Each rejection also leaves a flight-recorder
/// error event.
Counter& WireFrameFailures();
Histogram& WireFsyncNs();
Histogram& WireSerializeNs(const std::string& kind);
Histogram& WireDeserializeNs(const std::string& kind);
Histogram& WireSnapshotBytes(const std::string& kind);
/// BufferedSink windows forwarded to the wrapped sink — each flush is one
/// batched Append where unbuffered writes would have made many.
Counter& WireBufferFlushes();
/// Compressed framed-body size as a percent of the raw body (zstd frames
/// only; uncompressed fallbacks are not observed).
Histogram& WireCompressRatio();

// --- net (src/net/) ------------------------------------------------------

/// Reconnect attempts the shipper made after losing its link (counts the
/// attempt, not just successes — a flapping collector shows up here).
Counter& NetReconnects();
Histogram& NetBackoffWaitNs();
Histogram& NetShipRttNs();
Counter& NetSnapshotsShipped();
/// Keep-latest outbox drops: a newer snapshot replaced one that never got
/// shipped. Rising while the collector is down is the designed degradation,
/// rising while it is up means shipping cannot keep pace.
Counter& NetSnapshotsSuperseded();
Counter& NetShipFailures();
Histogram& NetCollectorMergeNs();
Counter& NetCollectorSnapshots();
/// Malformed frames/snapshots the collector refused (fail closed). Each
/// rejection also leaves a flight-recorder error event.
Counter& NetCollectorRejects();
Counter& NetQueries();
Histogram& NetCheckpointNs();
/// Wall-clock age of this shipper's latest merged snapshot (label:
/// shipper id), refreshed at merge, query, and /shippers render time.
Gauge& NetStalenessNs(uint64_t shipper);
/// Snapshots superseded between the two most recent merged ships from
/// this shipper (seq gap minus one) — how much the keep-latest outbox
/// skipped while the link was down.
Gauge& NetStalenessSeqLag(uint64_t shipper);
/// Producer elements ingested between the previous and latest merged
/// snapshots from this shipper (total_ingested watermark delta) — how far
/// behind the merged view was just before the latest ship landed.
Gauge& NetStalenessElementsBehind(uint64_t shipper);
/// End-to-end produce-to-merge latency: collector merge wall time minus
/// the produced_ns the shipper stamped at Offer time.
Histogram& NetE2eProduceMergeNs();

// --- attacklab (src/attacklab/) ------------------------------------------

Counter& AttacklabTrials();
Histogram& AttacklabTrialNs();
/// Adversary move budget consumed: stream elements the sampler ever
/// accepted across trials (the adversary's observation currency).
Counter& AttacklabAdversaryAccepted();

}  // namespace obs
}  // namespace robust_sampling

#endif  // ROBUST_SAMPLING_OBS_CATALOG_H_
